//! Metal: an open architecture for developing processor features.
//!
//! Workspace facade crate: re-exports every subsystem so examples and
//! integration tests can use a single dependency. See the README for
//! the architecture overview and `metal_core` for the paper's primary
//! contribution.

pub use metal_asm as asm;
pub use metal_core as core;
pub use metal_ext as ext;
pub use metal_hwcost as hwcost;
pub use metal_isa as isa;
pub use metal_mem as mem;
pub use metal_pipeline as pipeline;
