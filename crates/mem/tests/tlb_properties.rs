//! Randomized property tests for the software-managed TLB, driven by a
//! deterministic seeded RNG.

use metal_mem::tlb::{AccessKind, Pte, Tlb, TlbConfig, TlbFault};
use metal_util::Rng;
use std::collections::HashMap;

#[derive(Clone, Debug)]
enum Op {
    Install {
        va: u32,
        pa: u32,
        flags: u32,
        asid: u16,
    },
    Translate {
        va: u32,
        asid: u16,
        kind: AccessKind,
    },
    Invalidate {
        va: u32,
        asid: u16,
    },
    FlushAsid {
        asid: u16,
    },
    FlushAll,
    SetKey {
        key: u32,
        perms: u32,
    },
}

fn rand_kind(rng: &mut Rng) -> AccessKind {
    *rng.pick(&[AccessKind::Read, AccessKind::Write, AccessKind::Execute])
}

fn rand_op(rng: &mut Rng) -> Op {
    // Small universes so collisions and evictions actually happen.
    let va = (rng.next_u64() % 16) as u32 * 0x1000;
    let pa = (rng.next_u64() % 16) as u32 * 0x1000;
    let asid = (rng.next_u64() % 3) as u16;
    match rng.next_u64() % 12 {
        0..=3 => Op::Install {
            va,
            pa,
            // Always valid; low bits choose R/W/X/G.
            flags: Pte::V | (((rng.next_u64() % 16) as u32) << 1),
            asid,
        },
        4..=7 => Op::Translate {
            va,
            asid,
            kind: rand_kind(rng),
        },
        8 => Op::Invalidate { va, asid },
        9 => Op::FlushAsid { asid },
        10 => Op::FlushAll,
        _ => Op::SetKey {
            key: (rng.next_u64() % 16) as u32,
            perms: (rng.next_u64() % 4) as u32,
        },
    }
}

/// Invariant: at most one valid entry ever matches a (vpn, asid)
/// pair — duplicates would make translation nondeterministic.
#[test]
fn no_duplicate_matches() {
    let mut rng = Rng::new(0x711b_0001);
    for _case in 0..256 {
        let mut tlb = Tlb::new(TlbConfig {
            entries: 4,
            keys: 16,
        });
        let steps = rng.range_usize(1, 120);
        for _ in 0..steps {
            match rand_op(&mut rng) {
                Op::Install {
                    va,
                    pa,
                    flags,
                    asid,
                } => tlb.install(va, Pte::new(pa, flags), asid),
                Op::Translate { va, asid, kind } => {
                    let _ = tlb.translate(va, asid, kind);
                }
                Op::Invalidate { va, asid } => tlb.invalidate(va, asid),
                Op::FlushAsid { asid } => tlb.flush_asid(asid),
                Op::FlushAll => tlb.flush_all(),
                Op::SetKey { key, perms } => tlb.set_key_perms(key, perms),
            }
            // Check the invariant after every step.
            for asid in 0u16..3 {
                for vpn in 0u32..16 {
                    let matches = tlb
                        .iter_entries()
                        .filter(|(v, a, pte)| {
                            *v == vpn && pte.valid() && (pte.global() || *a == asid)
                        })
                        .count();
                    assert!(
                        matches <= 1,
                        "vpn {vpn} asid {asid} matched {matches} entries"
                    );
                }
            }
        }
    }
}

/// A model-based check: after a sequence of installs (no global
/// entries, fixed ASID, no evictions because the TLB is large),
/// translate agrees with a HashMap model.
#[test]
fn translate_matches_model() {
    let mut rng = Rng::new(0x711b_0002);
    for _case in 0..256 {
        let mut tlb = Tlb::new(TlbConfig {
            entries: 64,
            keys: 16,
        });
        let mut model: HashMap<u32, Pte> = HashMap::new();
        for _ in 0..rng.range_usize(1, 32) {
            let vp = (rng.next_u64() % 32) as u32;
            let pp = (rng.next_u64() % 32) as u32;
            let perm = (rng.next_u64() % 8) as u32;
            let pte = Pte::new(pp << 12, Pte::V | (perm << 1));
            tlb.install(vp << 12, pte, 1);
            model.insert(vp, pte);
        }
        for _ in 0..rng.range_usize(1, 64) {
            let vp = (rng.next_u64() % 32) as u32;
            let kind = rand_kind(&mut rng);
            let got = tlb.translate((vp << 12) | 0x123, 1, kind);
            match model.get(&vp) {
                None => assert_eq!(got, Err(TlbFault::Miss)),
                Some(pte) if pte.permits(kind) => {
                    assert_eq!(got, Ok(pte.phys_base() | 0x123));
                }
                Some(_) => assert_eq!(got, Err(TlbFault::Protection)),
            }
        }
    }
}

/// Occupancy never exceeds capacity, and install of N distinct pages
/// into an N-entry TLB keeps all of them resident (LRU never evicts
/// under exact fit).
#[test]
fn capacity_respected() {
    for n in 1usize..16 {
        let mut tlb = Tlb::new(TlbConfig {
            entries: n,
            keys: 16,
        });
        for i in 0..n as u32 {
            tlb.install(i << 12, Pte::new(i << 12, Pte::V | Pte::R), 0);
        }
        assert_eq!(tlb.occupancy(), n);
        for i in 0..n as u32 {
            assert!(tlb.translate(i << 12, 0, AccessKind::Read).is_ok());
        }
        // One more distinct page evicts exactly one entry.
        tlb.install(0x8000_0000, Pte::new(0x1000, Pte::V | Pte::R), 0);
        assert_eq!(tlb.occupancy(), n);
    }
}
