//! Property tests for the software-managed TLB.

use metal_mem::tlb::{AccessKind, Pte, Tlb, TlbConfig, TlbFault};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Clone, Debug)]
enum Op {
    Install { va: u32, pa: u32, flags: u32, asid: u16 },
    Translate { va: u32, asid: u16, kind: AccessKind },
    Invalidate { va: u32, asid: u16 },
    FlushAsid { asid: u16 },
    FlushAll,
    SetKey { key: u32, perms: u32 },
}

fn arb_kind() -> impl Strategy<Value = AccessKind> {
    prop_oneof![
        Just(AccessKind::Read),
        Just(AccessKind::Write),
        Just(AccessKind::Execute)
    ]
}

fn arb_op() -> impl Strategy<Value = Op> {
    // Small universes so collisions and evictions actually happen.
    let va = (0u32..16).prop_map(|p| p << 12);
    let pa = (0u32..16).prop_map(|p| p << 12);
    let asid = 0u16..3;
    prop_oneof![
        4 => (va.clone(), pa, 0u32..16, asid.clone()).prop_map(|(va, pa, flags, asid)| {
            Op::Install {
                va,
                pa,
                // Always valid; low bits choose R/W/X/G.
                flags: Pte::V | (flags << 1),
                asid,
            }
        }),
        4 => (va.clone(), asid.clone(), arb_kind())
            .prop_map(|(va, asid, kind)| Op::Translate { va, asid, kind }),
        1 => (va, asid.clone()).prop_map(|(va, asid)| Op::Invalidate { va, asid }),
        1 => asid.prop_map(|asid| Op::FlushAsid { asid }),
        1 => Just(Op::FlushAll),
        1 => (0u32..16, 0u32..4).prop_map(|(key, perms)| Op::SetKey { key, perms }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Invariant: at most one valid entry ever matches a (vpn, asid)
    /// pair — duplicates would make translation nondeterministic.
    #[test]
    fn no_duplicate_matches(ops in proptest::collection::vec(arb_op(), 1..120)) {
        let mut tlb = Tlb::new(TlbConfig { entries: 4, keys: 16 });
        for op in ops {
            match op {
                Op::Install { va, pa, flags, asid } => tlb.install(va, Pte::new(pa, flags), asid),
                Op::Translate { va, asid, kind } => {
                    let _ = tlb.translate(va, asid, kind);
                }
                Op::Invalidate { va, asid } => tlb.invalidate(va, asid),
                Op::FlushAsid { asid } => tlb.flush_asid(asid),
                Op::FlushAll => tlb.flush_all(),
                Op::SetKey { key, perms } => tlb.set_key_perms(key, perms),
            }
            // Check the invariant after every step.
            for asid in 0u16..3 {
                for vpn in 0u32..16 {
                    let matches = tlb
                        .iter_entries()
                        .filter(|(v, a, pte)| {
                            *v == vpn && pte.valid() && (pte.global() || *a == asid)
                        })
                        .count();
                    prop_assert!(
                        matches <= 1,
                        "vpn {vpn} asid {asid} matched {matches} entries"
                    );
                }
            }
        }
    }

    /// A model-based check: after a sequence of installs (no global
    /// entries, fixed ASID, no evictions because the TLB is large),
    /// translate agrees with a HashMap model.
    #[test]
    fn translate_matches_model(
        installs in proptest::collection::vec((0u32..32, 0u32..32, 0u32..8), 1..32),
        probes in proptest::collection::vec((0u32..32, arb_kind()), 1..64),
    ) {
        let mut tlb = Tlb::new(TlbConfig { entries: 64, keys: 16 });
        let mut model: HashMap<u32, Pte> = HashMap::new();
        for (vp, pp, perm) in installs {
            let pte = Pte::new(pp << 12, Pte::V | (perm << 1));
            tlb.install(vp << 12, pte, 1);
            model.insert(vp, pte);
        }
        for (vp, kind) in probes {
            let got = tlb.translate((vp << 12) | 0x123, 1, kind);
            match model.get(&vp) {
                None => prop_assert_eq!(got, Err(TlbFault::Miss)),
                Some(pte) if pte.permits(kind) => {
                    prop_assert_eq!(got, Ok(pte.phys_base() | 0x123));
                }
                Some(_) => prop_assert_eq!(got, Err(TlbFault::Protection)),
            }
        }
    }

    /// Occupancy never exceeds capacity, and install of N distinct pages
    /// into an N-entry TLB keeps all of them resident (LRU never evicts
    /// under exact fit).
    #[test]
    fn capacity_respected(n in 1usize..16) {
        let mut tlb = Tlb::new(TlbConfig { entries: n, keys: 16 });
        for i in 0..n as u32 {
            tlb.install(i << 12, Pte::new(i << 12, Pte::V | Pte::R), 0);
        }
        prop_assert_eq!(tlb.occupancy(), n);
        for i in 0..n as u32 {
            prop_assert!(tlb.translate(i << 12, 0, AccessKind::Read).is_ok());
        }
        // One more distinct page evicts exactly one entry.
        tlb.install(0x8000_0000, Pte::new(0x1000, Pte::V | Pte::R), 0);
        prop_assert_eq!(tlb.occupancy(), n);
    }
}
