//! Memory subsystem for the Metal processor simulator.
//!
//! This crate provides everything below the pipeline:
//!
//! * [`phys::PhysMemory`] — flat physical RAM.
//! * [`bus::Bus`] — the physical address space: RAM plus memory-mapped
//!   devices (console, timer, packet device).
//! * [`tlb::Tlb`] — a software-managed TLB with address-space IDs and
//!   page keys, the architectural features the paper's prototype exposes
//!   to Metal (§2.3).
//! * [`walker::Walker`] — an x86-style two-level radix page-table walker,
//!   used by the *baseline* core for hardware-managed translation.
//! * [`cache::Cache`] — a timing-only cache model, used to account fetch
//!   and data-access latency (this is what makes the MRAM-vs-main-memory
//!   comparison meaningful).

pub mod bus;
pub mod cache;
pub mod devices;
pub mod phys;
pub mod sync;
pub mod tlb;
pub mod walker;

pub use bus::{Bus, BusSnapshot, Device};
pub use cache::{Cache, CacheConfig};
pub use phys::PhysMemory;
pub use tlb::{AccessKind, Pte, Tlb, TlbConfig, TlbFault};
pub use walker::Walker;

use core::fmt;

/// Errors raised by physical memory and bus accesses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemError {
    /// Address outside RAM and every device window.
    OutOfBounds {
        /// The faulting physical address.
        addr: u32,
    },
    /// Access not aligned to its width.
    Misaligned {
        /// The faulting physical address.
        addr: u32,
    },
    /// Device rejected the access (sub-word MMIO, bad register…).
    Device {
        /// The faulting physical address.
        addr: u32,
    },
}

impl MemError {
    /// The faulting address.
    #[must_use]
    pub fn addr(&self) -> u32 {
        match *self {
            MemError::OutOfBounds { addr }
            | MemError::Misaligned { addr }
            | MemError::Device { addr } => addr,
        }
    }
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::OutOfBounds { addr } => write!(f, "physical address {addr:#010x} unmapped"),
            MemError::Misaligned { addr } => write!(f, "misaligned access at {addr:#010x}"),
            MemError::Device { addr } => write!(f, "device rejected access at {addr:#010x}"),
        }
    }
}

impl std::error::Error for MemError {}

/// Page size used throughout: 4 KiB.
pub const PAGE_SIZE: u32 = 4096;
/// log2 of the page size.
pub const PAGE_SHIFT: u32 = 12;

/// Virtual/physical page number of an address.
#[inline]
#[must_use]
pub fn page_number(addr: u32) -> u32 {
    addr >> PAGE_SHIFT
}

/// Offset within a page.
#[inline]
#[must_use]
pub fn page_offset(addr: u32) -> u32 {
    addr & (PAGE_SIZE - 1)
}
