//! Flat physical memory.

use crate::MemError;

/// Byte-addressable physical RAM starting at address 0.
///
/// All accesses are bounds-checked; word and half-word accesses must be
/// naturally aligned (the pipeline raises a misaligned-access exception
/// on [`MemError::Misaligned`]).
#[derive(Clone)]
pub struct PhysMemory {
    data: Vec<u8>,
}

impl PhysMemory {
    /// Allocates `size` bytes of zeroed RAM.
    #[must_use]
    pub fn new(size: usize) -> PhysMemory {
        PhysMemory {
            data: vec![0; size],
        }
    }

    /// Total size in bytes.
    #[must_use]
    pub fn size(&self) -> usize {
        self.data.len()
    }

    /// True if `addr..addr+len` lies within RAM.
    #[must_use]
    pub fn contains(&self, addr: u32, len: u32) -> bool {
        (addr as u64 + len as u64) <= self.data.len() as u64
    }

    fn check(&self, addr: u32, len: u32) -> Result<usize, MemError> {
        if !self.contains(addr, len) {
            return Err(MemError::OutOfBounds { addr });
        }
        if !addr.is_multiple_of(len) {
            return Err(MemError::Misaligned { addr });
        }
        Ok(addr as usize)
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u32) -> Result<u8, MemError> {
        let i = self.check(addr, 1)?;
        Ok(self.data[i])
    }

    /// Reads a little-endian half-word.
    pub fn read_u16(&self, addr: u32) -> Result<u16, MemError> {
        let i = self.check(addr, 2)?;
        Ok(u16::from_le_bytes([self.data[i], self.data[i + 1]]))
    }

    /// Reads a little-endian word.
    pub fn read_u32(&self, addr: u32) -> Result<u32, MemError> {
        let i = self.check(addr, 4)?;
        Ok(u32::from_le_bytes([
            self.data[i],
            self.data[i + 1],
            self.data[i + 2],
            self.data[i + 3],
        ]))
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u32, value: u8) -> Result<(), MemError> {
        let i = self.check(addr, 1)?;
        self.data[i] = value;
        Ok(())
    }

    /// Writes a little-endian half-word.
    pub fn write_u16(&mut self, addr: u32, value: u16) -> Result<(), MemError> {
        let i = self.check(addr, 2)?;
        self.data[i..i + 2].copy_from_slice(&value.to_le_bytes());
        Ok(())
    }

    /// Writes a little-endian word.
    pub fn write_u32(&mut self, addr: u32, value: u32) -> Result<(), MemError> {
        let i = self.check(addr, 4)?;
        self.data[i..i + 4].copy_from_slice(&value.to_le_bytes());
        Ok(())
    }

    /// Copies a byte slice into RAM (program loading).
    pub fn load(&mut self, addr: u32, bytes: &[u8]) -> Result<(), MemError> {
        if !self.contains(addr, bytes.len() as u32) {
            return Err(MemError::OutOfBounds { addr });
        }
        let i = addr as usize;
        self.data[i..i + bytes.len()].copy_from_slice(bytes);
        Ok(())
    }

    /// Overwrites the full contents with those of `other` without
    /// reallocating — the memcpy at the heart of snapshot restore.
    ///
    /// # Panics
    ///
    /// Panics if the two memories differ in size.
    pub fn copy_from(&mut self, other: &PhysMemory) {
        assert_eq!(
            self.data.len(),
            other.data.len(),
            "RAM size mismatch on restore"
        );
        self.data.copy_from_slice(&other.data);
    }

    /// Reads a byte slice out of RAM.
    pub fn dump(&self, addr: u32, len: u32) -> Result<&[u8], MemError> {
        if !self.contains(addr, len) {
            return Err(MemError::OutOfBounds { addr });
        }
        Ok(&self.data[addr as usize..(addr + len) as usize])
    }
}

impl std::fmt::Debug for PhysMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PhysMemory({} bytes)", self.data.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_widths() {
        let mut m = PhysMemory::new(64);
        m.write_u32(0, 0x1122_3344).unwrap();
        assert_eq!(m.read_u32(0), Ok(0x1122_3344));
        assert_eq!(m.read_u16(0), Ok(0x3344));
        assert_eq!(m.read_u16(2), Ok(0x1122));
        assert_eq!(m.read_u8(3), Ok(0x11));
        m.write_u8(1, 0xAB).unwrap();
        assert_eq!(m.read_u32(0), Ok(0x1122_AB44));
        m.write_u16(2, 0xCDEF).unwrap();
        assert_eq!(m.read_u32(0), Ok(0xCDEF_AB44));
    }

    #[test]
    fn bounds_checked() {
        let mut m = PhysMemory::new(8);
        assert_eq!(m.read_u32(8), Err(MemError::OutOfBounds { addr: 8 }));
        assert_eq!(m.read_u32(6), Err(MemError::OutOfBounds { addr: 6 }));
        assert_eq!(
            m.write_u32(0xFFFF_FFFC, 0),
            Err(MemError::OutOfBounds { addr: 0xFFFF_FFFC })
        );
        assert!(m.read_u8(7).is_ok());
    }

    #[test]
    fn alignment_checked() {
        let m = PhysMemory::new(16);
        assert_eq!(m.read_u32(2), Err(MemError::Misaligned { addr: 2 }));
        assert_eq!(m.read_u16(1), Err(MemError::Misaligned { addr: 1 }));
        assert!(m.read_u8(1).is_ok());
    }

    #[test]
    fn load_and_dump() {
        let mut m = PhysMemory::new(16);
        m.load(4, &[1, 2, 3, 4]).unwrap();
        assert_eq!(m.dump(4, 4).unwrap(), &[1, 2, 3, 4]);
        assert!(m.load(14, &[0; 4]).is_err());
    }
}
