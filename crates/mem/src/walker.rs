//! Hardware page-table walker for the *baseline* core.
//!
//! Walks an x86-style two-level radix tree (10-bit directory index,
//! 10-bit table index, 12-bit offset) — the structure "the Linux kernel
//! team has pressured multiple processor vendors to implement" (paper
//! §3.2). Metal makes this walker unnecessary: the same walk is a few
//! lines of mcode in the page-fault mroutine. Keeping the hardware walker
//! lets experiment E3 compare hardware-managed, trap-based
//! software-managed, and Metal-managed TLB refills.

use crate::tlb::{AccessKind, Pte};
use crate::{MemError, PhysMemory, PAGE_SHIFT};

/// Result of a page-table walk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WalkResult {
    /// Translation found; leaf PTE returned (permissions NOT yet checked
    /// against the access kind — the caller decides fault semantics).
    Mapped(Pte),
    /// A directory or leaf entry was invalid.
    NotMapped {
        /// Walk level at which the walk stopped (0 = directory, 1 = leaf).
        level: u8,
    },
}

/// An x86-style two-level radix page-table walker.
///
/// Layout: the root table is one 4 KiB page of 1024 word-sized directory
/// entries. A directory entry with [`Pte::V`] points at a 4 KiB leaf
/// table of 1024 PTEs.
#[derive(Clone, Copy, Debug)]
pub struct Walker {
    /// Physical base address of the root directory (page-aligned).
    pub root: u32,
}

impl Walker {
    /// Creates a walker rooted at `root` (must be page-aligned).
    ///
    /// # Panics
    ///
    /// Panics if `root` is not page-aligned.
    #[must_use]
    pub fn new(root: u32) -> Walker {
        assert_eq!(root & 0xFFF, 0, "page-table root must be page-aligned");
        Walker { root }
    }

    /// Directory index of a virtual address (top 10 bits).
    #[inline]
    #[must_use]
    pub fn dir_index(va: u32) -> u32 {
        va >> 22
    }

    /// Leaf-table index of a virtual address (next 10 bits).
    #[inline]
    #[must_use]
    pub fn table_index(va: u32) -> u32 {
        (va >> PAGE_SHIFT) & 0x3FF
    }

    /// Walks the tree for `va`. Also returns the number of memory
    /// accesses performed (1 or 2), which the baseline core charges as
    /// walk latency.
    pub fn walk(&self, mem: &PhysMemory, va: u32) -> Result<(WalkResult, u32), MemError> {
        let dir_entry_addr = self.root + Walker::dir_index(va) * 4;
        let dir_entry = Pte(mem.read_u32(dir_entry_addr)?);
        if !dir_entry.valid() {
            return Ok((WalkResult::NotMapped { level: 0 }, 1));
        }
        let leaf_addr = dir_entry.phys_base() + Walker::table_index(va) * 4;
        let leaf = Pte(mem.read_u32(leaf_addr)?);
        if !leaf.valid() {
            return Ok((WalkResult::NotMapped { level: 1 }, 2));
        }
        Ok((WalkResult::Mapped(leaf), 2))
    }

    /// Convenience for tests and the mini-kernel: installs a 4 KiB
    /// mapping `va -> pa` with `flags`, allocating the leaf table from
    /// `alloc` (a bump pointer of page-aligned physical addresses) when
    /// the directory slot is empty.
    pub fn map(
        &self,
        mem: &mut PhysMemory,
        va: u32,
        pa: u32,
        flags: u32,
        alloc: &mut impl FnMut() -> u32,
    ) -> Result<(), MemError> {
        let dir_entry_addr = self.root + Walker::dir_index(va) * 4;
        let mut dir_entry = Pte(mem.read_u32(dir_entry_addr)?);
        if !dir_entry.valid() {
            let table = alloc();
            debug_assert_eq!(
                table & 0xFFF,
                0,
                "allocator must return page-aligned tables"
            );
            // Zero the new leaf table.
            for i in 0..1024 {
                mem.write_u32(table + i * 4, 0)?;
            }
            dir_entry = Pte::new(table, Pte::V);
            mem.write_u32(dir_entry_addr, dir_entry.0)?;
        }
        let leaf_addr = dir_entry.phys_base() + Walker::table_index(va) * 4;
        mem.write_u32(leaf_addr, Pte::new(pa, flags | Pte::V).0)
    }

    /// Checks a walked PTE against an access kind, mirroring the
    /// permission logic the TLB applies.
    #[must_use]
    pub fn permits(pte: Pte, kind: AccessKind) -> bool {
        pte.permits(kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (PhysMemory, Walker, Box<dyn FnMut() -> u32>) {
        let mem = PhysMemory::new(1 << 20);
        let walker = Walker::new(0x1000);
        let mut next = 0x2000u32;
        let alloc = Box::new(move || {
            let page = next;
            next += 0x1000;
            page
        });
        (mem, walker, alloc)
    }

    #[test]
    fn unmapped_at_directory() {
        let (mem, walker, _) = setup();
        let (result, accesses) = walker.walk(&mem, 0xDEAD_B000).unwrap();
        assert_eq!(result, WalkResult::NotMapped { level: 0 });
        assert_eq!(accesses, 1);
    }

    #[test]
    fn map_then_walk() {
        let (mut mem, walker, mut alloc) = setup();
        walker
            .map(
                &mut mem,
                0x0040_3000,
                0x0009_A000,
                Pte::R | Pte::W,
                &mut alloc,
            )
            .unwrap();
        let (result, accesses) = walker.walk(&mem, 0x0040_3ABC).unwrap();
        assert_eq!(accesses, 2);
        let WalkResult::Mapped(pte) = result else {
            panic!("expected a mapping");
        };
        assert_eq!(pte.phys_base(), 0x0009_A000);
        assert!(pte.permits(AccessKind::Read));
        assert!(pte.permits(AccessKind::Write));
        assert!(!pte.permits(AccessKind::Execute));
    }

    #[test]
    fn unmapped_at_leaf() {
        let (mut mem, walker, mut alloc) = setup();
        walker
            .map(&mut mem, 0x0040_3000, 0x0009_A000, Pte::R, &mut alloc)
            .unwrap();
        // Same directory, different leaf slot.
        let (result, accesses) = walker.walk(&mem, 0x0040_4000).unwrap();
        assert_eq!(result, WalkResult::NotMapped { level: 1 });
        assert_eq!(accesses, 2);
    }

    #[test]
    fn two_mappings_share_directory() {
        let (mut mem, walker, mut alloc) = setup();
        walker
            .map(&mut mem, 0x0000_1000, 0x0009_A000, Pte::R, &mut alloc)
            .unwrap();
        walker
            .map(&mut mem, 0x0000_2000, 0x0009_B000, Pte::R, &mut alloc)
            .unwrap();
        let (r1, _) = walker.walk(&mem, 0x0000_1000).unwrap();
        let (r2, _) = walker.walk(&mem, 0x0000_2000).unwrap();
        assert!(matches!(r1, WalkResult::Mapped(p) if p.phys_base() == 0x0009_A000));
        assert!(matches!(r2, WalkResult::Mapped(p) if p.phys_base() == 0x0009_B000));
    }

    #[test]
    #[should_panic(expected = "page-aligned")]
    fn rejects_misaligned_root() {
        let _ = Walker::new(0x1004);
    }
}
