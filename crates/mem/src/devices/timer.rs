//! A cycle-compare timer with an interrupt line.

use crate::bus::Device;
use crate::devices::map::TIMER_IRQ;
use crate::MemError;

const REG_CYCLE_LO: u32 = 0x0;
const REG_CYCLE_HI: u32 = 0x4;
const REG_CMP_LO: u32 = 0x8;
const REG_CMP_HI: u32 = 0xC;
const REG_CTRL: u32 = 0x10;

/// A timer that raises its IRQ when the cycle counter reaches the compare
/// value (while enabled). Writing either compare register rearms it.
pub struct Timer {
    cycle: u64,
    cmp: u64,
    enabled: bool,
    fired: bool,
}

impl Timer {
    /// Creates a disabled timer.
    #[must_use]
    pub fn new() -> Timer {
        Timer {
            cycle: 0,
            cmp: u64::MAX,
            enabled: false,
            fired: false,
        }
    }
}

impl Default for Timer {
    fn default() -> Timer {
        Timer::new()
    }
}

impl Device for Timer {
    fn name(&self) -> &'static str {
        "timer"
    }

    fn irq_line(&self) -> Option<u8> {
        Some(TIMER_IRQ)
    }

    fn read(&mut self, offset: u32) -> Result<u32, MemError> {
        match offset {
            REG_CYCLE_LO => Ok(self.cycle as u32),
            REG_CYCLE_HI => Ok((self.cycle >> 32) as u32),
            REG_CMP_LO => Ok(self.cmp as u32),
            REG_CMP_HI => Ok((self.cmp >> 32) as u32),
            REG_CTRL => Ok(u32::from(self.enabled)),
            _ => Err(MemError::Device { addr: offset }),
        }
    }

    fn write(&mut self, offset: u32, value: u32) -> Result<(), MemError> {
        match offset {
            // Writing the low word clears the high word, so a 32-bit
            // deadline needs only one store; write HI afterwards for
            // 64-bit deadlines.
            REG_CMP_LO => {
                self.cmp = u64::from(value);
                self.fired = false;
                Ok(())
            }
            REG_CMP_HI => {
                self.cmp = (self.cmp & 0xFFFF_FFFF) | (u64::from(value) << 32);
                self.fired = false;
                Ok(())
            }
            REG_CTRL => {
                self.enabled = value & 1 != 0;
                if !self.enabled {
                    self.fired = false;
                }
                Ok(())
            }
            _ => Err(MemError::Device { addr: offset }),
        }
    }

    fn tick(&mut self, cycle: u64) {
        self.cycle = cycle;
        if self.enabled && cycle >= self.cmp {
            self.fired = true;
        }
    }

    fn irq_pending(&self) -> bool {
        self.fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_at_compare() {
        let mut t = Timer::new();
        t.write(REG_CMP_LO, 100).unwrap();
        t.write(REG_CMP_HI, 0).unwrap();
        t.write(REG_CTRL, 1).unwrap();
        t.tick(99);
        assert!(!t.irq_pending());
        t.tick(100);
        assert!(t.irq_pending());
    }

    #[test]
    fn rearm_clears_irq() {
        let mut t = Timer::new();
        t.write(REG_CMP_LO, 10).unwrap();
        t.write(REG_CTRL, 1).unwrap();
        t.tick(10);
        assert!(t.irq_pending());
        t.write(REG_CMP_LO, 50).unwrap();
        assert!(!t.irq_pending());
        t.tick(49);
        assert!(!t.irq_pending());
        t.tick(50);
        assert!(t.irq_pending());
    }

    #[test]
    fn disabled_never_fires() {
        let mut t = Timer::new();
        t.write(REG_CMP_LO, 0).unwrap();
        t.tick(1000);
        assert!(!t.irq_pending());
    }

    #[test]
    fn cycle_readable() {
        let mut t = Timer::new();
        t.tick(0x1_2345_6789);
        assert_eq!(t.read(REG_CYCLE_LO), Ok(0x2345_6789));
        assert_eq!(t.read(REG_CYCLE_HI), Ok(1));
    }
}
