//! Memory-mapped devices: console, timer, and a DPDK-style packet device.

pub mod console;
pub mod nic;
pub mod timer;

pub use console::Console;
pub use nic::{Nic, NicHandle};
pub use timer::Timer;

/// Conventional MMIO layout used by the mini-kernel and the examples.
pub mod map {
    /// Console window base.
    pub const CONSOLE_BASE: u32 = 0xF000_0000;
    /// Timer window base.
    pub const TIMER_BASE: u32 = 0xF000_0100;
    /// Packet-device window base.
    pub const NIC_BASE: u32 = 0xF000_0200;
    /// Window length for each device.
    pub const WINDOW_LEN: u32 = 0x100;
    /// Timer interrupt line.
    pub const TIMER_IRQ: u8 = 0;
    /// Packet-device interrupt line.
    pub const NIC_IRQ: u8 = 1;
}
