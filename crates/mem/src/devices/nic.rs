//! A DPDK/SPDK-style packet device.
//!
//! The paper motivates user-level interrupts with kernel-bypass libraries
//! that currently *poll* NICs from userspace, burning whole cores
//! (§3.4). This device simulates that hardware: the host schedules packet
//! arrivals at future cycles; the device raises its IRQ while packets are
//! queued; the guest reads length/data words and acknowledges. Both
//! polling and interrupt-driven guests exercise the same registers, so
//! experiment E5 can compare delivery latency and CPU occupancy.

use crate::bus::Device;
use crate::devices::map::NIC_IRQ;
use crate::sync::Mutex;
use crate::MemError;
use std::collections::VecDeque;
use std::sync::Arc;

const REG_STATUS: u32 = 0x0;
const REG_LEN: u32 = 0x4;
const REG_DATA: u32 = 0x8;
const REG_ACK: u32 = 0xC;
const REG_RX_COUNT: u32 = 0x10;
const REG_ARRIVAL_LO: u32 = 0x14;
const REG_ARRIVAL_HI: u32 = 0x18;

/// A packet scheduled for delivery.
#[derive(Clone, Debug)]
struct Scheduled {
    arrival: u64,
    data: Vec<u8>,
}

/// A received-but-unacknowledged packet.
#[derive(Clone, Debug)]
struct Queued {
    arrival: u64,
    data: Vec<u8>,
    read_pos: usize,
}

#[derive(Debug, Default)]
struct Shared {
    /// Future arrivals, sorted by cycle.
    schedule: VecDeque<Scheduled>,
    /// Completed deliveries: (arrival cycle, ack cycle).
    completions: Vec<(u64, u64)>,
}

/// Host-side handle: schedule packets and collect latency statistics.
#[derive(Clone)]
pub struct NicHandle {
    shared: Arc<Mutex<Shared>>,
}

impl NicHandle {
    /// Schedules a packet to arrive at an absolute cycle. Arrivals must
    /// be pushed in non-decreasing cycle order.
    ///
    /// # Panics
    ///
    /// Panics if `arrival` is earlier than a previously scheduled packet.
    pub fn schedule(&self, arrival: u64, data: impl Into<Vec<u8>>) {
        let mut shared = self.shared.lock();
        if let Some(last) = shared.schedule.back() {
            assert!(
                arrival >= last.arrival,
                "arrivals must be scheduled in order"
            );
        }
        shared.schedule.push_back(Scheduled {
            arrival,
            data: data.into(),
        });
    }

    /// Drains the completion log: `(arrival cycle, ack cycle)` pairs.
    #[must_use]
    pub fn take_completions(&self) -> Vec<(u64, u64)> {
        std::mem::take(&mut self.shared.lock().completions)
    }

    /// Number of packets still waiting to arrive.
    #[must_use]
    pub fn pending_schedule(&self) -> usize {
        self.shared.lock().schedule.len()
    }
}

/// The packet device.
pub struct Nic {
    shared: Arc<Mutex<Shared>>,
    queue: VecDeque<Queued>,
    rx_count: u32,
    now: u64,
}

impl Nic {
    /// Creates the device and its host-side handle.
    #[must_use]
    pub fn new() -> (Nic, NicHandle) {
        let shared = Arc::new(Mutex::new(Shared::default()));
        (
            Nic {
                shared: Arc::clone(&shared),
                queue: VecDeque::new(),
                rx_count: 0,
                now: 0,
            },
            NicHandle { shared },
        )
    }

    fn head(&self) -> Option<&Queued> {
        self.queue.front()
    }
}

impl Device for Nic {
    fn name(&self) -> &'static str {
        "nic"
    }

    fn irq_line(&self) -> Option<u8> {
        Some(NIC_IRQ)
    }

    fn read(&mut self, offset: u32) -> Result<u32, MemError> {
        match offset {
            REG_STATUS => Ok(u32::from(!self.queue.is_empty())),
            REG_LEN => Ok(self.head().map_or(0, |p| p.data.len() as u32)),
            REG_DATA => {
                let Some(head) = self.queue.front_mut() else {
                    return Ok(0);
                };
                let mut word = [0u8; 4];
                for (i, byte) in word.iter_mut().enumerate() {
                    if let Some(&b) = head.data.get(head.read_pos + i) {
                        *byte = b;
                    }
                }
                head.read_pos += 4;
                Ok(u32::from_le_bytes(word))
            }
            REG_RX_COUNT => Ok(self.rx_count),
            REG_ARRIVAL_LO => Ok(self.head().map_or(0, |p| p.arrival as u32)),
            REG_ARRIVAL_HI => Ok(self.head().map_or(0, |p| (p.arrival >> 32) as u32)),
            _ => Err(MemError::Device { addr: offset }),
        }
    }

    fn write(&mut self, offset: u32, value: u32) -> Result<(), MemError> {
        match offset {
            REG_ACK => {
                if value & 1 != 0 {
                    if let Some(head) = self.queue.pop_front() {
                        self.shared
                            .lock()
                            .completions
                            .push((head.arrival, self.now));
                    }
                }
                Ok(())
            }
            _ => Err(MemError::Device { addr: offset }),
        }
    }

    fn tick(&mut self, cycle: u64) {
        self.now = cycle;
        let mut shared = self.shared.lock();
        while shared.schedule.front().is_some_and(|p| p.arrival <= cycle) {
            let p = shared.schedule.pop_front().expect("checked non-empty");
            self.queue.push_back(Queued {
                arrival: p.arrival,
                data: p.data,
                read_pos: 0,
            });
            self.rx_count = self.rx_count.wrapping_add(1);
        }
    }

    fn irq_pending(&self) -> bool {
        !self.queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_and_ack() {
        let (mut nic, handle) = Nic::new();
        handle.schedule(100, &b"\x01\x02\x03\x04\x05"[..]);
        nic.tick(50);
        assert_eq!(nic.read(REG_STATUS), Ok(0));
        assert!(!nic.irq_pending());
        nic.tick(100);
        assert!(nic.irq_pending());
        assert_eq!(nic.read(REG_LEN), Ok(5));
        assert_eq!(nic.read(REG_DATA), Ok(0x0403_0201));
        assert_eq!(nic.read(REG_DATA), Ok(0x0000_0005));
        nic.tick(120);
        nic.write(REG_ACK, 1).unwrap();
        assert!(!nic.irq_pending());
        assert_eq!(handle.take_completions(), vec![(100, 120)]);
    }

    #[test]
    fn multiple_packets_queue() {
        let (mut nic, handle) = Nic::new();
        handle.schedule(10, &b"a"[..]);
        handle.schedule(20, &b"bc"[..]);
        nic.tick(25);
        assert_eq!(nic.read(REG_RX_COUNT), Ok(2));
        assert_eq!(nic.read(REG_LEN), Ok(1));
        nic.write(REG_ACK, 1).unwrap();
        assert_eq!(nic.read(REG_LEN), Ok(2));
        assert!(nic.irq_pending());
        nic.write(REG_ACK, 1).unwrap();
        assert!(!nic.irq_pending());
    }

    #[test]
    fn arrival_cycle_readable() {
        let (mut nic, handle) = Nic::new();
        handle.schedule(0x1_0000_0005, &b"x"[..]);
        nic.tick(0x1_0000_0005);
        assert_eq!(nic.read(REG_ARRIVAL_LO), Ok(5));
        assert_eq!(nic.read(REG_ARRIVAL_HI), Ok(1));
    }

    #[test]
    #[should_panic(expected = "scheduled in order")]
    fn out_of_order_schedule_rejected() {
        let (_nic, handle) = Nic::new();
        handle.schedule(100, &b"a"[..]);
        handle.schedule(50, &b"b"[..]);
    }

    #[test]
    fn ack_empty_queue_is_noop() {
        let (mut nic, handle) = Nic::new();
        nic.write(REG_ACK, 1).unwrap();
        assert!(handle.take_completions().is_empty());
    }
}
