//! A write-only MMIO console.

use crate::bus::Device;
use crate::sync::Mutex;
use crate::MemError;
use std::sync::Arc;

/// Register offsets.
const REG_TX: u32 = 0x0;
const REG_STATUS: u32 = 0x4;

/// A console device: bytes written to `TX` accumulate in a host-visible
/// buffer.
pub struct Console {
    buffer: Arc<Mutex<Vec<u8>>>,
}

impl Console {
    /// Creates the console and a handle to its output buffer.
    #[must_use]
    pub fn new() -> (Console, Arc<Mutex<Vec<u8>>>) {
        let buffer = Arc::new(Mutex::new(Vec::new()));
        (
            Console {
                buffer: Arc::clone(&buffer),
            },
            buffer,
        )
    }
}

impl Device for Console {
    fn name(&self) -> &'static str {
        "console"
    }

    fn irq_line(&self) -> Option<u8> {
        None
    }

    fn read(&mut self, offset: u32) -> Result<u32, MemError> {
        match offset {
            // TX reads as 0; STATUS is always "ready".
            REG_TX => Ok(0),
            REG_STATUS => Ok(1),
            _ => Err(MemError::Device { addr: offset }),
        }
    }

    fn write(&mut self, offset: u32, value: u32) -> Result<(), MemError> {
        match offset {
            REG_TX => {
                self.buffer.lock().push(value as u8);
                Ok(())
            }
            _ => Err(MemError::Device { addr: offset }),
        }
    }

    fn tick(&mut self, _cycle: u64) {}

    fn irq_pending(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collects_bytes() {
        let (mut console, out) = Console::new();
        for b in b"hi!" {
            console.write(REG_TX, u32::from(*b)).unwrap();
        }
        assert_eq!(out.lock().as_slice(), b"hi!");
        assert_eq!(console.read(REG_STATUS), Ok(1));
    }

    #[test]
    fn bad_register_rejected() {
        let (mut console, _) = Console::new();
        assert!(console.read(0x40).is_err());
        assert!(console.write(0x40, 0).is_err());
    }
}
