//! Timing-only cache model.
//!
//! The simulator keeps all data in [`crate::PhysMemory`]; caches model
//! *latency* only. This is what gives the PALcode-vs-Metal comparison its
//! teeth: PALcode-style handlers are fetched through the I-cache and main
//! memory (a no-op call costs ~18 cycles on the Alpha, paper §5), while
//! mroutines come from MRAM collocated with instruction fetch at
//! single-cycle latency, and "accesses to the RAM do not alter processor
//! caches" (paper §2).

/// Geometry and latency of one cache.
#[derive(Clone, Copy, Debug)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u32,
    /// Line size in bytes (power of two).
    pub line_bytes: u32,
    /// Cycles for a hit.
    pub hit_latency: u32,
    /// Additional cycles for a miss (memory access).
    pub miss_penalty: u32,
}

impl Default for CacheConfig {
    fn default() -> CacheConfig {
        CacheConfig {
            size_bytes: 4 * 1024,
            line_bytes: 32,
            hit_latency: 1,
            miss_penalty: 15,
        }
    }
}

/// A direct-mapped, timing-only cache.
#[derive(Clone, Debug)]
pub struct Cache {
    config: CacheConfig,
    /// One tag per line; `None` = invalid.
    tags: Vec<Option<u32>>,
    /// Statistics.
    pub accesses: u64,
    /// Statistics.
    pub misses: u64,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is not a power-of-two line count.
    #[must_use]
    pub fn new(config: CacheConfig) -> Cache {
        assert!(
            config.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(
            config.size_bytes.is_multiple_of(config.line_bytes),
            "size must be a multiple of the line size"
        );
        let lines = (config.size_bytes / config.line_bytes) as usize;
        assert!(lines.is_power_of_two(), "line count must be a power of two");
        Cache {
            config,
            tags: vec![None; lines],
            accesses: 0,
            misses: 0,
        }
    }

    /// The configuration this cache was built with.
    #[must_use]
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    fn index_and_tag(&self, addr: u32) -> (usize, u32) {
        let line = addr / self.config.line_bytes;
        let index = (line as usize) & (self.tags.len() - 1);
        (index, line)
    }

    /// Performs an access and returns its latency in cycles, filling the
    /// line on a miss.
    pub fn access(&mut self, addr: u32) -> u32 {
        self.accesses += 1;
        let (index, tag) = self.index_and_tag(addr);
        if self.tags[index] == Some(tag) {
            self.config.hit_latency
        } else {
            self.misses += 1;
            self.tags[index] = Some(tag);
            self.config.hit_latency + self.config.miss_penalty
        }
    }

    /// Fault injection: flips one bit of a line's tag. Returns false
    /// (masked by construction) when the line is invalid or out of
    /// range. Tags only influence hit/miss latency, never data, so an
    /// injected flip is architecturally invisible — it models the
    /// timing-only blast radius of metadata corruption in this cache
    /// model.
    pub fn inject_tag_bit(&mut self, line: usize, bit: u8) -> bool {
        match self.tags.get_mut(line) {
            Some(Some(tag)) => {
                *tag ^= 1 << (bit & 31);
                true
            }
            _ => false,
        }
    }

    /// True if `addr` would hit, without updating state or statistics.
    #[must_use]
    pub fn peek(&self, addr: u32) -> bool {
        let (index, tag) = self.index_and_tag(addr);
        self.tags[index] == Some(tag)
    }

    /// Invalidates everything.
    pub fn flush(&mut self) {
        self.tags.fill(None);
    }

    /// Hit rate over the lifetime of the cache.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            return 0.0;
        }
        1.0 - (self.misses as f64 / self.accesses as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache() -> Cache {
        Cache::new(CacheConfig {
            size_bytes: 128,
            line_bytes: 32,
            hit_latency: 1,
            miss_penalty: 9,
        })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = cache();
        assert_eq!(c.access(0x40), 10);
        assert_eq!(c.access(0x44), 1, "same line hits");
        assert_eq!(c.access(0x5C), 1, "line covers 32 bytes");
        assert_eq!(c.access(0x60), 10, "next line misses");
    }

    #[test]
    fn conflict_eviction() {
        let mut c = cache(); // 4 lines of 32 B.
        assert_eq!(c.access(0x00), 10);
        assert_eq!(c.access(0x80), 10, "maps to the same index");
        assert_eq!(c.access(0x00), 10, "evicted by the conflict");
    }

    #[test]
    fn flush_invalidates() {
        let mut c = cache();
        c.access(0);
        assert!(c.peek(0));
        c.flush();
        assert!(!c.peek(0));
        assert_eq!(c.access(0), 10);
    }

    #[test]
    fn stats() {
        let mut c = cache();
        c.access(0);
        c.access(0);
        c.access(4);
        c.access(32);
        assert_eq!(c.accesses, 4);
        assert_eq!(c.misses, 2);
        assert!((c.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_bad_geometry() {
        let _ = Cache::new(CacheConfig {
            size_bytes: 96,
            line_bytes: 33,
            hit_latency: 1,
            miss_penalty: 1,
        });
    }
}
