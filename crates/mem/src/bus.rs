//! The physical address space: RAM plus memory-mapped devices.

use crate::{MemError, PhysMemory};
use metal_trace::{EventKind, TraceHandle};

/// Base of the MMIO window. Everything below is RAM-or-fault.
pub const MMIO_BASE: u32 = 0xF000_0000;

/// Granularity of the code-residency bitmap, in bytes. One bit tracks
/// one line; a store anywhere in a marked line bumps the generation.
pub const CODE_LINE_BYTES: u32 = 64;

/// A memory-mapped device.
///
/// Devices are word-addressed: the bus only forwards naturally aligned
/// 32-bit accesses (sub-word MMIO raises [`MemError::Device`]).
pub trait Device: Send {
    /// Short name for diagnostics.
    fn name(&self) -> &'static str;
    /// The interrupt line this device drives, if any (0..32).
    fn irq_line(&self) -> Option<u8>;
    /// Reads the word-sized register at byte `offset` from the window base.
    fn read(&mut self, offset: u32) -> Result<u32, MemError>;
    /// Writes the word-sized register at byte `offset`.
    fn write(&mut self, offset: u32, value: u32) -> Result<(), MemError>;
    /// Advances device time to `cycle`.
    fn tick(&mut self, cycle: u64);
    /// Level-triggered interrupt output.
    fn irq_pending(&self) -> bool;
}

struct Window {
    base: u32,
    len: u32,
    device: Box<dyn Device>,
}

/// The system bus: routes physical addresses to RAM or device windows and
/// aggregates interrupt lines.
pub struct Bus {
    /// System RAM at physical address 0.
    pub ram: PhysMemory,
    windows: Vec<Window>,
    /// Event sink; disabled by default.
    pub trace: TraceHandle,
    /// One bit per [`CODE_LINE_BYTES`] RAM line: set when a decode cache
    /// holds an instruction fetched from that line. Empty overhead when
    /// no consumer marks lines.
    code_lines: Vec<u64>,
    /// Bumped on every store that hits a marked line. Decode caches
    /// compare against their own snapshot and flush on mismatch, which
    /// makes cached pre-decoded instructions safe under self-modifying
    /// code.
    code_generation: u64,
}

impl Bus {
    /// Creates a bus with `ram_bytes` of RAM and no devices.
    #[must_use]
    pub fn new(ram_bytes: usize) -> Bus {
        let lines = ram_bytes.div_ceil(CODE_LINE_BYTES as usize);
        Bus {
            ram: PhysMemory::new(ram_bytes),
            windows: Vec::new(),
            trace: TraceHandle::disabled(),
            code_lines: vec![0; lines.div_ceil(64)],
            code_generation: 0,
        }
    }

    /// Marks the RAM line holding `addr` as code-resident: a later store
    /// to that line will bump [`Bus::code_generation`]. Out-of-RAM
    /// addresses are ignored.
    #[inline]
    pub fn mark_code(&mut self, addr: u32) {
        let line = (addr / CODE_LINE_BYTES) as usize;
        if let Some(word) = self.code_lines.get_mut(line / 64) {
            *word |= 1 << (line % 64);
        }
    }

    /// Clears every code-residency mark (the decode cache was flushed;
    /// nothing cached remains to protect).
    pub fn clear_code_marks(&mut self) {
        self.code_lines.fill(0);
    }

    /// Generation counter for cached code: changes whenever a store may
    /// have modified a code-resident line.
    #[inline]
    #[must_use]
    pub fn code_generation(&self) -> u64 {
        self.code_generation
    }

    /// Bumps the generation if the store at `[addr, addr + len)` touches
    /// a marked line. The counter wraps: consumers compare for
    /// *inequality* against their own snapshot, so wraparound is benign
    /// (the astronomically unlikely exact-2^64-stores alias aside).
    #[inline]
    fn note_store(&mut self, addr: u32, len: u32) {
        let first = (addr / CODE_LINE_BYTES) as usize;
        let last = ((addr + (len - 1)) / CODE_LINE_BYTES) as usize;
        for line in first..=last {
            let marked = self
                .code_lines
                .get(line / 64)
                .is_some_and(|w| w & (1 << (line % 64)) != 0);
            if marked {
                self.code_generation = self.code_generation.wrapping_add(1);
                return;
            }
        }
    }

    /// Forces the code generation counter to an arbitrary value. A test
    /// and fuzzing hook (e.g. to exercise wraparound behaviour); never
    /// needed in normal operation.
    pub fn force_code_generation(&mut self, generation: u64) {
        self.code_generation = generation;
    }

    /// Captures everything [`Bus::restore`] needs to rewind the bus:
    /// RAM contents plus the code-residency bitmap and its generation.
    /// Device windows are *not* captured — snapshot/restore serves
    /// device-less differential runs (the fuzzer resets a machine
    /// thousands of times per second); restoring a bus with devices
    /// attached leaves the devices untouched.
    #[must_use]
    pub fn snapshot(&self) -> BusSnapshot {
        BusSnapshot {
            ram: self.ram.clone(),
            code_lines: self.code_lines.clone(),
            code_generation: self.code_generation,
        }
    }

    /// Restores RAM and code-mark state from a snapshot without
    /// reallocating (a pair of memcpys).
    ///
    /// # Panics
    ///
    /// Panics if the snapshot was taken from a bus with a different RAM
    /// size.
    pub fn restore(&mut self, snap: &BusSnapshot) {
        self.ram.copy_from(&snap.ram);
        self.code_lines.copy_from_slice(&snap.code_lines);
        self.code_generation = snap.code_generation;
    }

    /// Maps `device` at `[base, base + len)`.
    ///
    /// # Panics
    ///
    /// Panics if the window overlaps RAM or an existing window.
    pub fn attach(&mut self, base: u32, len: u32, device: Box<dyn Device>) {
        assert!(
            base >= MMIO_BASE || (base as u64 >= self.ram.size() as u64),
            "device window overlaps RAM"
        );
        for w in &self.windows {
            let disjoint = base + len <= w.base || w.base + w.len <= base;
            assert!(disjoint, "device window overlaps {}", w.device.name());
        }
        self.windows.push(Window { base, len, device });
    }

    fn window_mut(&mut self, addr: u32) -> Option<(&mut Window, u32)> {
        self.windows
            .iter_mut()
            .find(|w| addr >= w.base && addr < w.base + w.len)
            .map(|w| {
                let off = addr - w.base;
                (w, off)
            })
    }

    /// Reads a word.
    pub fn read_u32(&mut self, addr: u32) -> Result<u32, MemError> {
        if self.ram.contains(addr, 4) {
            return self.ram.read_u32(addr);
        }
        match self.window_mut(addr) {
            Some((w, off)) => {
                if !addr.is_multiple_of(4) {
                    return Err(MemError::Misaligned { addr });
                }
                let result = w.device.read(off);
                self.trace
                    .emit(EventKind::MmioAccess { addr, write: false });
                result
            }
            None => Err(MemError::OutOfBounds { addr }),
        }
    }

    /// Writes a word.
    pub fn write_u32(&mut self, addr: u32, value: u32) -> Result<(), MemError> {
        if self.ram.contains(addr, 4) {
            self.note_store(addr, 4);
            return self.ram.write_u32(addr, value);
        }
        match self.window_mut(addr) {
            Some((w, off)) => {
                if !addr.is_multiple_of(4) {
                    return Err(MemError::Misaligned { addr });
                }
                let result = w.device.write(off, value);
                self.trace.emit(EventKind::MmioAccess { addr, write: true });
                result
            }
            None => Err(MemError::OutOfBounds { addr }),
        }
    }

    /// Reads a half-word (RAM only; devices are word-addressed).
    pub fn read_u16(&mut self, addr: u32) -> Result<u16, MemError> {
        if self.ram.contains(addr, 2) {
            return self.ram.read_u16(addr);
        }
        if self.window_mut(addr).is_some() {
            return Err(MemError::Device { addr });
        }
        Err(MemError::OutOfBounds { addr })
    }

    /// Reads a byte (RAM only; devices are word-addressed).
    pub fn read_u8(&mut self, addr: u32) -> Result<u8, MemError> {
        if self.ram.contains(addr, 1) {
            return self.ram.read_u8(addr);
        }
        if self.window_mut(addr).is_some() {
            return Err(MemError::Device { addr });
        }
        Err(MemError::OutOfBounds { addr })
    }

    /// Writes a half-word (RAM only).
    pub fn write_u16(&mut self, addr: u32, value: u16) -> Result<(), MemError> {
        if self.ram.contains(addr, 2) {
            self.note_store(addr, 2);
            return self.ram.write_u16(addr, value);
        }
        if self.window_mut(addr).is_some() {
            return Err(MemError::Device { addr });
        }
        Err(MemError::OutOfBounds { addr })
    }

    /// Writes a byte (RAM only).
    pub fn write_u8(&mut self, addr: u32, value: u8) -> Result<(), MemError> {
        if self.ram.contains(addr, 1) {
            self.note_store(addr, 1);
            return self.ram.write_u8(addr, value);
        }
        if self.window_mut(addr).is_some() {
            return Err(MemError::Device { addr });
        }
        Err(MemError::OutOfBounds { addr })
    }

    /// Advances all devices to `cycle` and returns the level-triggered
    /// interrupt bitmap (bit N set = IRQ line N asserted).
    pub fn tick(&mut self, cycle: u64) -> u32 {
        let mut pending = 0u32;
        for w in &mut self.windows {
            w.device.tick(cycle);
            if w.device.irq_pending() {
                if let Some(line) = w.device.irq_line() {
                    pending |= 1 << line;
                }
            }
        }
        pending
    }

    /// Current interrupt bitmap without advancing time.
    #[must_use]
    pub fn irq_bitmap(&self) -> u32 {
        let mut pending = 0u32;
        for w in &self.windows {
            if w.device.irq_pending() {
                if let Some(line) = w.device.irq_line() {
                    pending |= 1 << line;
                }
            }
        }
        pending
    }

    /// Borrows an attached device by name for host-side inspection.
    pub fn device_mut(&mut self, name: &str) -> Option<&mut (dyn Device + 'static)> {
        self.windows
            .iter_mut()
            .find(|w| w.device.name() == name)
            .map(move |w| &mut *w.device)
    }
}

/// A point-in-time copy of the bus's RAM and code-mark state (see
/// [`Bus::snapshot`]).
#[derive(Clone, Debug)]
pub struct BusSnapshot {
    ram: PhysMemory,
    code_lines: Vec<u64>,
    code_generation: u64,
}

impl std::fmt::Debug for Bus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bus(ram = {} bytes, devices = [", self.ram.size())?;
        for w in &self.windows {
            write!(f, "{}@{:#x} ", w.device.name(), w.base)?;
        }
        write!(f, "])")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial one-register device for bus routing tests.
    struct Scratch {
        value: u32,
        irq: bool,
    }

    impl Device for Scratch {
        fn name(&self) -> &'static str {
            "scratch"
        }
        fn irq_line(&self) -> Option<u8> {
            Some(5)
        }
        fn read(&mut self, offset: u32) -> Result<u32, MemError> {
            match offset {
                0 => Ok(self.value),
                _ => Err(MemError::Device { addr: offset }),
            }
        }
        fn write(&mut self, offset: u32, value: u32) -> Result<(), MemError> {
            match offset {
                0 => {
                    self.value = value;
                    self.irq = value == 0xFEED;
                    Ok(())
                }
                _ => Err(MemError::Device { addr: offset }),
            }
        }
        fn tick(&mut self, _cycle: u64) {}
        fn irq_pending(&self) -> bool {
            self.irq
        }
    }

    fn bus() -> Bus {
        let mut b = Bus::new(4096);
        b.attach(
            MMIO_BASE,
            0x100,
            Box::new(Scratch {
                value: 7,
                irq: false,
            }),
        );
        b
    }

    #[test]
    fn ram_routing() {
        let mut b = bus();
        b.write_u32(0x10, 0xABCD).unwrap();
        assert_eq!(b.read_u32(0x10), Ok(0xABCD));
        assert_eq!(b.read_u8(0x10), Ok(0xCD));
    }

    #[test]
    fn device_routing() {
        let mut b = bus();
        assert_eq!(b.read_u32(MMIO_BASE), Ok(7));
        b.write_u32(MMIO_BASE, 42).unwrap();
        assert_eq!(b.read_u32(MMIO_BASE), Ok(42));
        assert_eq!(b.read_u32(MMIO_BASE + 8), Err(MemError::Device { addr: 8 }));
    }

    #[test]
    fn unmapped_hole_faults() {
        let mut b = bus();
        assert_eq!(
            b.read_u32(0x8000),
            Err(MemError::OutOfBounds { addr: 0x8000 })
        );
        assert_eq!(
            b.read_u32(MMIO_BASE + 0x1000),
            Err(MemError::OutOfBounds {
                addr: MMIO_BASE + 0x1000
            })
        );
    }

    #[test]
    fn subword_mmio_rejected() {
        let mut b = bus();
        assert_eq!(
            b.read_u8(MMIO_BASE),
            Err(MemError::Device { addr: MMIO_BASE })
        );
        assert_eq!(
            b.write_u16(MMIO_BASE, 1),
            Err(MemError::Device { addr: MMIO_BASE })
        );
    }

    #[test]
    fn irq_aggregation() {
        let mut b = bus();
        assert_eq!(b.tick(0), 0);
        b.write_u32(MMIO_BASE, 0xFEED).unwrap();
        assert_eq!(b.tick(1), 1 << 5);
        assert_eq!(b.irq_bitmap(), 1 << 5);
    }

    #[test]
    fn code_generation_bumps_only_on_marked_lines() {
        let mut b = bus();
        assert_eq!(b.code_generation(), 0);
        // Unmarked stores never bump, wherever they land.
        b.write_u32(0x100, 1).unwrap();
        assert_eq!(b.code_generation(), 0);
        // Mark the line holding 0x100; a store to any byte of it bumps.
        b.mark_code(0x100);
        b.write_u8(0x100 + CODE_LINE_BYTES - 1, 2).unwrap();
        assert_eq!(b.code_generation(), 1);
        // Stores to adjacent lines are invisible.
        b.write_u32(0x100 + CODE_LINE_BYTES, 3).unwrap();
        assert_eq!(b.code_generation(), 1);
        // Clearing marks stops the bumping.
        b.clear_code_marks();
        b.write_u32(0x100, 4).unwrap();
        assert_eq!(b.code_generation(), 1);
        // MMIO writes never touch the counter.
        b.mark_code(0x100);
        b.write_u32(MMIO_BASE, 5).unwrap();
        assert_eq!(b.code_generation(), 1);
    }

    #[test]
    fn snapshot_restore_roundtrips_ram_and_marks() {
        let mut b = Bus::new(4096);
        b.write_u32(0x10, 0xAAAA).unwrap();
        b.mark_code(0x40);
        b.write_u32(0x40, 1).unwrap(); // bumps generation to 1
        let snap = b.snapshot();
        let generation = b.code_generation();
        // Diverge: overwrite RAM, clear marks, bump generation again.
        b.write_u32(0x10, 0xBBBB).unwrap();
        b.mark_code(0x80);
        b.write_u32(0x80, 2).unwrap();
        assert_ne!(b.code_generation(), generation);
        b.restore(&snap);
        assert_eq!(b.read_u32(0x10), Ok(0xAAAA));
        assert_eq!(b.code_generation(), generation);
        // The restored mark set is the snapshot's: 0x40 is marked (store
        // bumps), 0x80 is not (store is invisible).
        b.write_u32(0x80, 3).unwrap();
        assert_eq!(b.code_generation(), generation);
        b.write_u32(0x40, 4).unwrap();
        assert_eq!(b.code_generation(), generation + 1);
    }

    #[test]
    fn generation_wraps_instead_of_overflowing() {
        let mut b = Bus::new(4096);
        b.force_code_generation(u64::MAX);
        b.mark_code(0x0);
        b.write_u32(0x0, 1).unwrap();
        assert_eq!(b.code_generation(), 0, "wrapped, not panicked");
    }

    #[test]
    #[should_panic(expected = "RAM size mismatch")]
    fn restore_rejects_mismatched_geometry() {
        let small = Bus::new(2048);
        let mut big = Bus::new(4096);
        big.restore(&small.snapshot());
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn overlapping_windows_rejected() {
        let mut b = bus();
        b.attach(
            MMIO_BASE + 0x80,
            0x100,
            Box::new(Scratch {
                value: 0,
                irq: false,
            }),
        );
    }
}
