//! Software-managed TLB with address-space IDs and page keys.
//!
//! The paper's prototype exposes "TLB modification instructions, … page
//! keys and address space IDs" to Metal (§2.3). The TLB is *never*
//! refilled by hardware when Metal owns translation: a miss raises an
//! exception that is delivered to an mroutine, which walks whatever
//! page-table structure the OS chose and installs the mapping with
//! `mtlbw` — that is the "custom page tables" application (§3.2).

use crate::{page_number, page_offset, PAGE_SHIFT};
use metal_trace::{EventKind, TlbOutcome, TraceHandle};

/// Access type used for permission checks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Instruction fetch.
    Execute,
    /// Data load.
    Read,
    /// Data store.
    Write,
}

/// A PTE-format word: PPN in bits 31:12, flags in bits 11:0.
///
/// | bit | meaning |
/// |-----|---------|
/// | 0   | valid   |
/// | 1   | readable |
/// | 2   | writable |
/// | 3   | executable |
/// | 4   | global (matches every ASID) |
/// | 5..9| page key (4 bits) |
/// | 10  | accessed (set by software walkers) |
/// | 11  | dirty (set by software walkers) |
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Pte(pub u32);

impl Pte {
    /// Valid bit.
    pub const V: u32 = 1 << 0;
    /// Readable bit.
    pub const R: u32 = 1 << 1;
    /// Writable bit.
    pub const W: u32 = 1 << 2;
    /// Executable bit.
    pub const X: u32 = 1 << 3;
    /// Global bit.
    pub const G: u32 = 1 << 4;
    /// Accessed bit.
    pub const A: u32 = 1 << 10;
    /// Dirty bit.
    pub const D: u32 = 1 << 11;

    /// Builds a PTE from a physical page base address and flags.
    #[must_use]
    pub fn new(ppn_addr: u32, flags: u32) -> Pte {
        Pte((ppn_addr & !0xFFF) | (flags & 0xFFF))
    }

    /// The physical page number.
    #[must_use]
    pub fn ppn(self) -> u32 {
        self.0 >> PAGE_SHIFT
    }

    /// Base physical address of the page.
    #[must_use]
    pub fn phys_base(self) -> u32 {
        self.0 & !0xFFF
    }

    /// True if the valid bit is set.
    #[must_use]
    pub fn valid(self) -> bool {
        self.0 & Pte::V != 0
    }

    /// True if the global bit is set.
    #[must_use]
    pub fn global(self) -> bool {
        self.0 & Pte::G != 0
    }

    /// The 4-bit page key.
    #[must_use]
    pub fn key(self) -> u8 {
        ((self.0 >> 5) & 0xF) as u8
    }

    /// Returns a copy with the page key set.
    #[must_use]
    pub fn with_key(self, key: u8) -> Pte {
        Pte((self.0 & !(0xF << 5)) | ((u32::from(key) & 0xF) << 5))
    }

    /// True if the PTE permits the access (ignoring page keys).
    #[must_use]
    pub fn permits(self, kind: AccessKind) -> bool {
        match kind {
            AccessKind::Read => self.0 & Pte::R != 0,
            AccessKind::Write => self.0 & Pte::W != 0,
            AccessKind::Execute => self.0 & Pte::X != 0,
        }
    }
}

/// Why a TLB lookup failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TlbFault {
    /// No entry matches (software must refill).
    Miss,
    /// An entry matches but the PTE forbids this access.
    Protection,
    /// An entry matches but the page key forbids this access.
    KeyViolation,
}

/// TLB geometry and behaviour.
#[derive(Clone, Copy, Debug)]
pub struct TlbConfig {
    /// Number of entries (fully associative).
    pub entries: usize,
    /// Number of page-key slots.
    pub keys: usize,
}

impl Default for TlbConfig {
    fn default() -> TlbConfig {
        TlbConfig {
            entries: 32,
            keys: 16,
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Entry {
    vpn: u32,
    asid: u16,
    pte: Pte,
    /// LRU stamp.
    stamp: u64,
}

/// Per-key permission mask: bit 0 = read allowed, bit 1 = write allowed.
/// Execute is not key-gated (matches how protection keys work on x86).
const KEY_READ: u32 = 1 << 0;
const KEY_WRITE: u32 = 1 << 1;

/// A fully associative, software-managed TLB.
#[derive(Clone, Debug)]
pub struct Tlb {
    config: TlbConfig,
    entries: Vec<Option<Entry>>,
    key_perms: Vec<u32>,
    clock: u64,
    /// Statistics: lookups, hits.
    pub lookups: u64,
    /// Statistics: hits.
    pub hits: u64,
    /// Event sink; disabled by default.
    pub trace: TraceHandle,
}

impl Tlb {
    /// Creates an empty TLB. All page keys initially allow read+write
    /// (key 0 is the conventional "no key" default).
    #[must_use]
    pub fn new(config: TlbConfig) -> Tlb {
        Tlb {
            config,
            entries: vec![None; config.entries],
            key_perms: vec![KEY_READ | KEY_WRITE; config.keys],
            clock: 0,
            lookups: 0,
            hits: 0,
            trace: TraceHandle::disabled(),
        }
    }

    /// Number of entry slots.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.config.entries
    }

    /// Fault injection: flips one bit of the entry in `slot` — bits
    /// 0–31 hit the PTE, bits 32–63 the VPN. Returns false (a masked
    /// fault by construction) when the slot is empty or out of range.
    /// TLB entries carry no check bits, so injected flips are never
    /// detected — they surface as wrong translations or spurious
    /// faults, or stay invisible.
    pub fn inject_entry_bit(&mut self, slot: usize, bit: u8) -> bool {
        let Some(Some(entry)) = self.entries.get_mut(slot) else {
            return false;
        };
        let word = 1u32 << (bit & 31);
        if bit & 63 < 32 {
            entry.pte.0 ^= word;
        } else {
            entry.vpn ^= word;
        }
        true
    }

    /// Translates `va` under `asid` for the given access kind.
    ///
    /// On success returns the physical address and marks the entry
    /// most-recently-used.
    pub fn translate(&mut self, va: u32, asid: u16, kind: AccessKind) -> Result<u32, TlbFault> {
        self.lookups += 1;
        self.clock += 1;
        let vpn = page_number(va);
        let clock = self.clock;
        let Some(slot) = self.find(vpn, asid) else {
            self.trace.emit(EventKind::TlbLookup {
                va,
                outcome: TlbOutcome::Miss,
            });
            return Err(TlbFault::Miss);
        };
        let entry = self.entries[slot]
            .as_mut()
            .expect("find returned occupied slot");
        entry.stamp = clock;
        let pte = entry.pte;
        if !pte.permits(kind) {
            self.trace.emit(EventKind::TlbLookup {
                va,
                outcome: TlbOutcome::Protection,
            });
            return Err(TlbFault::Protection);
        }
        let key = pte.key() as usize;
        let perms = self.key_perms.get(key).copied().unwrap_or(0);
        let key_ok = match kind {
            AccessKind::Read => perms & KEY_READ != 0,
            AccessKind::Write => perms & KEY_WRITE != 0,
            AccessKind::Execute => true,
        };
        if !key_ok {
            self.trace.emit(EventKind::TlbLookup {
                va,
                outcome: TlbOutcome::KeyViolation,
            });
            return Err(TlbFault::KeyViolation);
        }
        self.hits += 1;
        self.trace.emit(EventKind::TlbLookup {
            va,
            outcome: TlbOutcome::Hit,
        });
        Ok(pte.phys_base() | page_offset(va))
    }

    fn find(&self, vpn: u32, asid: u16) -> Option<usize> {
        self.entries.iter().position(|e| {
            e.is_some_and(|e| e.vpn == vpn && e.pte.valid() && (e.pte.global() || e.asid == asid))
        })
    }

    /// Installs a mapping for `va` under `asid` (the `mtlbw` instruction).
    ///
    /// Replaces an existing entry for the same (vpn, asid) if present,
    /// otherwise evicts the least-recently-used entry.
    pub fn install(&mut self, va: u32, pte: Pte, asid: u16) {
        let vpn = page_number(va);
        self.clock += 1;
        let entry = Entry {
            vpn,
            asid,
            pte,
            stamp: self.clock,
        };
        // Evict every entry the new mapping would shadow or be shadowed
        // by — same vpn with a matching asid, or either side global —
        // so no (vpn, asid) pair can ever match two entries.
        for slot in &mut self.entries {
            let conflicts = slot.is_some_and(|e| {
                e.vpn == vpn && (e.asid == asid || e.pte.global() || pte.global())
            });
            if conflicts {
                *slot = None;
            }
        }
        if let Some(i) = self.entries.iter().position(Option::is_none) {
            self.entries[i] = Some(entry);
            return;
        }
        let victim = self
            .entries
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.map(|e| e.stamp).unwrap_or(0))
            .map(|(i, _)| i)
            .expect("TLB has at least one entry");
        self.entries[victim] = Some(entry);
    }

    /// Probes for a mapping without updating LRU or permission checks
    /// (the `mtlbp` instruction). Returns the raw PTE word or 0.
    #[must_use]
    pub fn probe(&self, va: u32, asid: u16) -> u32 {
        let vpn = page_number(va);
        self.find(vpn, asid)
            .and_then(|i| self.entries[i])
            .map_or(0, |e| e.pte.0)
    }

    /// Invalidates the entry matching `va` under `asid` (`mtlbi`).
    pub fn invalidate(&mut self, va: u32, asid: u16) {
        let vpn = page_number(va);
        if let Some(i) = self.find(vpn, asid) {
            self.entries[i] = None;
        }
    }

    /// Invalidates all non-global entries of `asid` (`mtlbi` with `x0`).
    pub fn flush_asid(&mut self, asid: u16) {
        for e in &mut self.entries {
            if e.is_some_and(|e| e.asid == asid && !e.pte.global()) {
                *e = None;
            }
        }
    }

    /// Invalidates everything (`mtlbiall`).
    pub fn flush_all(&mut self) {
        self.entries.fill(None);
    }

    /// Sets the permission mask of a page key (`mpkey`): bit 0 = read,
    /// bit 1 = write. Out-of-range keys are ignored.
    pub fn set_key_perms(&mut self, key: u32, perms: u32) {
        if let Some(slot) = self.key_perms.get_mut(key as usize) {
            *slot = perms & (KEY_READ | KEY_WRITE);
        }
    }

    /// Reads a page key's permission mask.
    #[must_use]
    pub fn key_perms(&self, key: u32) -> u32 {
        self.key_perms.get(key as usize).copied().unwrap_or(0)
    }

    /// Count of currently valid entries.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }

    /// Iterates over valid entries as `(vpn, asid, pte)` for diagnostics
    /// and invariant checks.
    pub fn iter_entries(&self) -> impl Iterator<Item = (u32, u16, Pte)> + '_ {
        self.entries
            .iter()
            .filter_map(|e| e.map(|e| (e.vpn, e.asid, e.pte)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rw_pte(base: u32) -> Pte {
        Pte::new(base, Pte::V | Pte::R | Pte::W)
    }

    #[test]
    fn miss_then_hit() {
        let mut tlb = Tlb::new(TlbConfig::default());
        assert_eq!(
            tlb.translate(0x1234, 1, AccessKind::Read),
            Err(TlbFault::Miss)
        );
        tlb.install(0x1234, rw_pte(0x8000), 1);
        assert_eq!(tlb.translate(0x1234, 1, AccessKind::Read), Ok(0x8234));
        assert_eq!(tlb.translate(0x1FFC, 1, AccessKind::Write), Ok(0x8FFC));
    }

    #[test]
    fn asid_isolation() {
        let mut tlb = Tlb::new(TlbConfig::default());
        tlb.install(0x1000, rw_pte(0x8000), 1);
        assert_eq!(
            tlb.translate(0x1000, 2, AccessKind::Read),
            Err(TlbFault::Miss)
        );
        assert!(tlb.translate(0x1000, 1, AccessKind::Read).is_ok());
    }

    #[test]
    fn global_entries_match_all_asids() {
        let mut tlb = Tlb::new(TlbConfig::default());
        tlb.install(0x1000, Pte::new(0x8000, Pte::V | Pte::R | Pte::G), 1);
        assert!(tlb.translate(0x1000, 2, AccessKind::Read).is_ok());
        // flush_asid must not remove global entries.
        tlb.flush_asid(1);
        assert!(tlb.translate(0x1000, 7, AccessKind::Read).is_ok());
        tlb.flush_all();
        assert_eq!(
            tlb.translate(0x1000, 7, AccessKind::Read),
            Err(TlbFault::Miss)
        );
    }

    #[test]
    fn protection_checked() {
        let mut tlb = Tlb::new(TlbConfig::default());
        tlb.install(0x2000, Pte::new(0x9000, Pte::V | Pte::R), 0);
        assert_eq!(
            tlb.translate(0x2000, 0, AccessKind::Write),
            Err(TlbFault::Protection)
        );
        assert_eq!(
            tlb.translate(0x2000, 0, AccessKind::Execute),
            Err(TlbFault::Protection)
        );
        assert!(tlb.translate(0x2000, 0, AccessKind::Read).is_ok());
    }

    #[test]
    fn page_keys_gate_access() {
        let mut tlb = Tlb::new(TlbConfig::default());
        let pte = Pte::new(0x9000, Pte::V | Pte::R | Pte::W).with_key(3);
        tlb.install(0x2000, pte, 0);
        assert!(tlb.translate(0x2000, 0, AccessKind::Write).is_ok());
        tlb.set_key_perms(3, 1); // read-only
        assert_eq!(
            tlb.translate(0x2000, 0, AccessKind::Write),
            Err(TlbFault::KeyViolation)
        );
        assert!(tlb.translate(0x2000, 0, AccessKind::Read).is_ok());
        tlb.set_key_perms(3, 0); // no access
        assert_eq!(
            tlb.translate(0x2000, 0, AccessKind::Read),
            Err(TlbFault::KeyViolation)
        );
        // Execute is never key-gated.
        let xpte = Pte::new(0x9000, Pte::V | Pte::X).with_key(3);
        tlb.install(0x3000, xpte, 0);
        assert!(tlb.translate(0x3000, 0, AccessKind::Execute).is_ok());
    }

    #[test]
    fn lru_eviction() {
        let mut tlb = Tlb::new(TlbConfig {
            entries: 2,
            keys: 16,
        });
        tlb.install(0x1000, rw_pte(0x8000), 0);
        tlb.install(0x2000, rw_pte(0x9000), 0);
        // Touch page 1 so page 2 is LRU.
        tlb.translate(0x1000, 0, AccessKind::Read).unwrap();
        tlb.install(0x3000, rw_pte(0xA000), 0);
        assert!(tlb.translate(0x1000, 0, AccessKind::Read).is_ok());
        assert_eq!(
            tlb.translate(0x2000, 0, AccessKind::Read),
            Err(TlbFault::Miss)
        );
    }

    #[test]
    fn reinstall_replaces_not_duplicates() {
        let mut tlb = Tlb::new(TlbConfig::default());
        tlb.install(0x1000, rw_pte(0x8000), 0);
        tlb.install(0x1000, rw_pte(0x9000), 0);
        assert_eq!(tlb.occupancy(), 1);
        assert_eq!(tlb.translate(0x1000, 0, AccessKind::Read), Ok(0x9000));
    }

    #[test]
    fn invalidate_single() {
        let mut tlb = Tlb::new(TlbConfig::default());
        tlb.install(0x1000, rw_pte(0x8000), 0);
        tlb.install(0x2000, rw_pte(0x9000), 0);
        tlb.invalidate(0x1000, 0);
        assert_eq!(
            tlb.translate(0x1000, 0, AccessKind::Read),
            Err(TlbFault::Miss)
        );
        assert!(tlb.translate(0x2000, 0, AccessKind::Read).is_ok());
    }

    #[test]
    fn probe_does_not_check_permissions() {
        let mut tlb = Tlb::new(TlbConfig::default());
        let pte = Pte::new(0x9000, Pte::V); // no R/W/X
        tlb.install(0x2000, pte, 0);
        assert_eq!(tlb.probe(0x2000, 0), pte.0);
        assert_eq!(tlb.probe(0x5000, 0), 0);
    }

    #[test]
    fn stats_track_hits() {
        let mut tlb = Tlb::new(TlbConfig::default());
        let _ = tlb.translate(0x1000, 0, AccessKind::Read);
        tlb.install(0x1000, rw_pte(0x8000), 0);
        let _ = tlb.translate(0x1000, 0, AccessKind::Read);
        assert_eq!(tlb.lookups, 2);
        assert_eq!(tlb.hits, 1);
    }
}
