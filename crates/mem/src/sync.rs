//! A tiny mutex wrapper over [`std::sync::Mutex`] whose `lock()`
//! returns the guard directly.
//!
//! The simulator has no meaningful poison story — a panicked thread
//! means the run is already dead — so propagating `PoisonError` through
//! every device and test adds noise without safety. This keeps the
//! ergonomic `handle.lock().push(..)` shape at every call site.

use std::sync::MutexGuard;

/// A mutual-exclusion primitive; `lock()` never fails.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wraps `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquires the lock, ignoring poison (the protected data is plain
    /// statistics/buffers with no invariants a panic could break).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_returns_guard_directly() {
        let m = Mutex::new(vec![1u8]);
        m.lock().push(2);
        assert_eq!(*m.lock(), vec![1, 2]);
    }

    #[test]
    fn survives_poison() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
