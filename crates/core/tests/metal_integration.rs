//! End-to-end tests of the Metal extension on the pipelined core.

use metal_core::loader::MetalBuilder;
use metal_core::mram::MRAM_BASE;
use metal_core::Metal;
use metal_core::{DispatchStyle, EntryCause, MetalConfig, MramConfig};
use metal_isa::reg::Reg;
use metal_mem::devices::{map, Timer};
use metal_mem::CacheConfig;
use metal_pipeline::state::{CoreConfig, TranslationMode};
use metal_pipeline::{Core, HaltReason, TrapCause};

fn perfect_cache() -> CacheConfig {
    CacheConfig {
        size_bytes: 64 * 1024,
        line_bytes: 32,
        hit_latency: 1,
        miss_penalty: 0,
    }
}

fn core_config() -> CoreConfig {
    CoreConfig {
        icache: perfect_cache(),
        dcache: perfect_cache(),
        ram_bytes: 2 << 20,
        ..CoreConfig::default()
    }
}

fn load_and_run(core: &mut Core<Metal>, src: &str, max: u64) -> Option<HaltReason> {
    let words = metal_asm::assemble_at(src, 0).unwrap_or_else(|e| panic!("{e}"));
    let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
    core.load_segments([(0u32, bytes.as_slice())], 0);
    core.run(max)
}

#[test]
fn menter_runs_mroutine_and_returns() {
    let mut core = MetalBuilder::new()
        .routine(3, "triple", "slli t6, a0, 1\n add a0, a0, t6\n mexit")
        .build_core(core_config())
        .unwrap();
    let halt = load_and_run(
        &mut core,
        "li a0, 5\n menter 3\n addi a0, a0, 1\n ebreak",
        10_000,
    );
    assert_eq!(halt, Some(HaltReason::Ebreak { code: 16 }));
    assert_eq!(core.hooks.stats.menters, 1);
    assert_eq!(core.hooks.stats.mexits, 1);
}

#[test]
fn menter_indirect_selects_entry() {
    let mut core = MetalBuilder::new()
        .routine(1, "inc", "addi a0, a0, 1\n mexit")
        .routine(2, "dec", "addi a0, a0, -1\n mexit")
        .build_core(core_config())
        .unwrap();
    let halt = load_and_run(
        &mut core,
        "li a0, 10\n li t0, 2\n menter t0\n li t0, 1\n menter t0\n menter t0\n ebreak",
        10_000,
    );
    assert_eq!(halt, Some(HaltReason::Ebreak { code: 11 }));
    assert_eq!(core.hooks.stats.menters, 3);
}

#[test]
fn m31_holds_return_address_and_is_writable() {
    // The mroutine redirects its return by rewriting m31 (skip the next
    // instruction after the call site).
    let mut core = MetalBuilder::new()
        .routine(
            0,
            "skipper",
            "rmr t0, m31\n addi t0, t0, 4\n wmr m31, t0\n mexit",
        )
        .build_core(core_config())
        .unwrap();
    let halt = load_and_run(
        &mut core,
        "li a0, 1\n menter 0\n li a0, 99\n ebreak", // the li a0,99 is skipped
        10_000,
    );
    assert_eq!(halt, Some(HaltReason::Ebreak { code: 1 }));
}

#[test]
fn metal_mode_only_instructions_trap_in_normal_mode() {
    for src in [
        "mexit",
        "rmr a0, m0",
        "wmr m0, a0",
        "mld a0, 0(zero)",
        "mpld a0, a1",
    ] {
        let mut core = MetalBuilder::new()
            .routine(0, "noop", "mexit")
            .build_core(core_config())
            .unwrap();
        let program = format!(
            "li t0, 0x200\n csrw mtvec, t0\n {src}\n nop\n .org 0x200\n csrr a0, mcause\n ebreak"
        );
        let halt = load_and_run(&mut core, &program, 10_000);
        assert_eq!(
            halt,
            Some(HaltReason::Ebreak {
                code: TrapCause::IllegalInstruction.code()
            }),
            "{src} should be illegal in normal mode"
        );
    }
}

#[test]
fn menter_bad_entry_traps() {
    let mut core = MetalBuilder::new()
        .routine(0, "noop", "mexit")
        .build_core(core_config())
        .unwrap();
    let halt = load_and_run(
        &mut core,
        "li t0, 0x200\n csrw mtvec, t0\n menter 9\n nop\n .org 0x200\n csrr a0, mcause\n ebreak",
        10_000,
    );
    assert_eq!(
        halt,
        Some(HaltReason::Ebreak {
            code: TrapCause::IllegalInstruction.code()
        })
    );
}

#[test]
fn normal_mode_cannot_execute_mram() {
    let mut core = MetalBuilder::new()
        .routine(0, "noop", "mexit")
        .build_core(core_config())
        .unwrap();
    let halt = load_and_run(
        &mut core,
        &format!(
            "li t0, 0x200\n csrw mtvec, t0\n li t1, {MRAM_BASE:#x}\n jr t1\n\
             .org 0x200\n csrr a0, mcause\n ebreak"
        ),
        10_000,
    );
    assert_eq!(
        halt,
        Some(HaltReason::Ebreak {
            code: TrapCause::InsnAccessFault.code()
        })
    );
}

#[test]
fn mram_data_segment_persists_across_invocations() {
    // A counter mroutine: increments a word in the MRAM data segment.
    let mut core = MetalBuilder::new()
        .routine(
            4,
            "counter",
            "mld t0, 0(zero)\n addi t0, t0, 1\n mst t0, 0(zero)\n mv a0, t0\n mexit",
        )
        .build_core(core_config())
        .unwrap();
    let halt = load_and_run(&mut core, "menter 4\n menter 4\n menter 4\n ebreak", 10_000);
    assert_eq!(halt, Some(HaltReason::Ebreak { code: 3 }));
    // Host-side view agrees.
    assert_eq!(&core.hooks.mram.data()[0..4], &3u32.to_le_bytes());
}

#[test]
fn mram_data_out_of_bounds_is_fatal_in_mroutine() {
    let mut core = MetalBuilder::new()
        .config(MetalConfig {
            mram: MramConfig {
                code_bytes: 4096,
                data_bytes: 64,
                fetch_latency: 1,
            },
            ..MetalConfig::default()
        })
        .routine(0, "oob", "li t0, 4096\n mld t1, 0(t0)\n mexit")
        .build_core(core_config())
        .unwrap();
    let halt = load_and_run(&mut core, "menter 0\n ebreak", 10_000);
    assert!(
        matches!(halt, Some(HaltReason::Fatal(ref msg)) if msg.contains("LoadAccessFault")),
        "fault in an mroutine is fatal: {halt:?}"
    );
}

#[test]
fn exception_delegation_reaches_mroutine() {
    // Delegate ecall: the handler doubles a0 and returns past the ecall.
    let mut core = MetalBuilder::new()
        .routine(
            2,
            "sys",
            "slli a0, a0, 1\n rmr t0, m31\n addi t0, t0, 4\n wmr m31, t0\n mexit",
        )
        .delegate_exception(TrapCause::Ecall, 2)
        .build_core(core_config())
        .unwrap();
    let halt = load_and_run(
        &mut core,
        "li a0, 8\n ecall\n addi a0, a0, 1\n ebreak",
        10_000,
    );
    assert_eq!(halt, Some(HaltReason::Ebreak { code: 17 }));
    assert_eq!(core.hooks.stats.delegated_exceptions, 1);
    // mcause MCR recorded the delegated cause.
    assert_eq!(
        EntryCause::decode(core.hooks.mregs.mcause),
        Some(EntryCause::Exception(TrapCause::Ecall))
    );
}

#[test]
fn undelegated_exception_falls_back_to_mtvec() {
    let mut core = MetalBuilder::new()
        .routine(0, "noop", "mexit")
        .delegate_exception(TrapCause::LoadPageFault, 0)
        .build_core(core_config())
        .unwrap();
    let halt = load_and_run(
        &mut core,
        "li t0, 0x200\n csrw mtvec, t0\n ecall\n nop\n .org 0x200\n csrr a0, mcause\n ebreak",
        10_000,
    );
    assert_eq!(
        halt,
        Some(HaltReason::Ebreak {
            code: TrapCause::Ecall.code()
        })
    );
}

#[test]
fn interrupt_delegation_and_non_interruptibility() {
    // Timer fires while a long mroutine runs; delivery must wait until
    // mexit (mroutines are non-interruptible).
    let mut core = MetalBuilder::new()
        .routine(
            1,
            "slow",
            // ~40 cycles of busy work inside Metal mode.
            "li t0, 20\nspin: addi t0, t0, -1\n bnez t0, spin\n mexit",
        )
        .routine(
            2,
            "timer_handler",
            // Record entry cycle in a0, disable the timer, and read the
            // control register back so the level-triggered line is seen
            // deasserted before mexit (the classic ack-serialization a
            // level-triggered handler needs).
            "rmr a0, mclock\n li t1, 0xF0000100\n sw zero, 16(t1)\n lw t2, 16(t1)\n mexit",
        )
        .delegate_interrupt(map::TIMER_IRQ, 2)
        .build_core(core_config())
        .unwrap();
    core.state
        .bus
        .attach(map::TIMER_BASE, map::WINDOW_LEN, Box::new(Timer::new()));
    let halt = load_and_run(
        &mut core,
        r"
        li t0, 1
        csrw mie, t0
        csrrsi zero, mstatus, 8
        li s0, 0xF0000100
        li t0, 10
        sw t0, 8(s0)       # timer fires at cycle 10
        li t0, 1
        sw t0, 16(s0)
        menter 1           # long mroutine; interrupt must wait
        wait:
        beqz a0, wait      # handler sets a0 = entry cycle
        ebreak
        ",
        100_000,
    );
    assert_eq!(core.hooks.stats.delegated_interrupts, 1, "{halt:?}");
    // The handler observed a cycle counter well after the timer fired,
    // because delivery waited for the mroutine to finish.
    let handler_cycle = match halt {
        Some(HaltReason::Ebreak { code }) => u64::from(code),
        other => panic!("unexpected halt {other:?}"),
    };
    assert!(
        handler_cycle > 40,
        "interrupt should be held during the mroutine (delivered at {handler_cycle})"
    );
}

#[test]
fn interception_redirects_and_emulates() {
    // Intercept all LOADs; the handler emulates `lw rd, off(rs1)` by
    // decoding minsn, loading via physical memory, doubling the value,
    // then skipping the intercepted instruction.
    let handler = r"
        rmr t0, minsn          # t0 = intercepted instruction word
        # rd  = bits 11:7 -> not needed: we know the victim uses a3
        # rs1 = bits 19:15, imm = bits 31:20 -- victim uses 0(s0)
        mpld t1, s0            # physical load from the victim's address
        slli a3, t1, 1         # a3 = 2 * mem[s0]
        rmr t2, m31
        addi t2, t2, 4         # skip the intercepted lw
        wmr m31, t2
        mexit
    ";
    // tstart-like toggle mroutines.
    let arm = r"
        li t0, 0x03            # opcode-class LOAD selector
        li t1, 0x0B            # entry 5, enable: (5 << 1) | 1
        mintercept t0, t1
        li t2, 1
        wmr mstatus, t2        # master enable
        mexit
    ";
    let disarm = r"
        li t0, 0x03
        mintercept t0, zero    # disable the rule
        mexit
    ";
    let mut core = MetalBuilder::new()
        .routine(5, "load_handler", handler)
        .routine(6, "arm", arm)
        .routine(7, "disarm", disarm)
        .build_core(core_config())
        .unwrap();
    let halt = load_and_run(
        &mut core,
        r"
        li s0, 0x4000
        li t0, 21
        sw t0, 0(s0)
        menter 6           # arm interception of loads
        lw a3, 0(s0)       # intercepted: a3 = 42, not 21
        menter 7           # disarm
        lw a4, 0(s0)       # normal again: a4 = 21
        add a0, a3, a4
        ebreak
        ",
        100_000,
    );
    assert_eq!(halt, Some(HaltReason::Ebreak { code: 63 }));
    assert_eq!(core.hooks.stats.intercepts, 1);
}

#[test]
fn tlb_management_from_mcode() {
    // An mroutine installs a mapping, switches to SoftTlb translation is
    // host-side; the guest then accesses the virtual page.
    let mut core = MetalBuilder::new()
        .routine(
            0,
            "mapper",
            r"
            # a0 = va, a1 = pte
            mtlbw a0, a1
            mexit
            ",
        )
        .build_core(core_config())
        .unwrap();
    // Identity-map the code page and data page, then enable SoftTlb.
    // Easier: run in Bare, call the mapper, switch to SoftTlb via host,
    // then verify the TLB contents directly.
    let halt = load_and_run(
        &mut core,
        r"
        li a0, 0x00005000      # va
        li a1, 0x00009007      # pa 0x9000 | V|R|W
        menter 0
        ebreak
        ",
        10_000,
    );
    assert_eq!(halt, Some(HaltReason::Ebreak { code: 0x5000 }));
    use metal_mem::tlb::AccessKind;
    assert_eq!(
        core.state.tlb.translate(0x5004, 0, AccessKind::Read),
        Ok(0x9004)
    );
}

#[test]
fn page_keys_and_asid_from_mcode() {
    let mut core = MetalBuilder::new()
        .routine(
            0,
            "setup",
            r"
            li a0, 0x00005000
            li a1, 0x000090A7      # pa 0x9000 | key 5 | V|R|W (key bits 9:5 = 5 -> 0xA0)
            mtlbw a0, a1
            li t0, 5
            li t1, 1               # read-only
            mpkey t0, t1
            li t2, 7
            masid t2
            mexit
            ",
        )
        .build_core(core_config())
        .unwrap();
    let halt = load_and_run(&mut core, "menter 0\n ebreak", 10_000);
    // a0 still holds the va the setup routine loaded.
    assert_eq!(halt, Some(HaltReason::Ebreak { code: 0x5000 }));
    assert_eq!(core.state.asid, 7);
    assert_eq!(core.state.tlb.key_perms(5), 1);
    use metal_mem::tlb::AccessKind;
    // Mapping was installed under ASID 0 (set before masid ran).
    assert_eq!(
        core.state.tlb.translate(0x5000, 0, AccessKind::Read),
        Ok(0x9000)
    );
    assert_eq!(
        core.state.tlb.translate(0x5000, 0, AccessKind::Write),
        Err(metal_mem::tlb::TlbFault::KeyViolation)
    );
}

#[test]
fn menter_mexit_near_zero_overhead() {
    // Cycle cost of `menter N; mexit` (a no-op mroutine) compared
    // against straight-line code. Paper §2.2: "virtually zero overhead".
    let mut with_call = MetalBuilder::new()
        .routine(0, "noop", "mexit")
        .build_core(core_config())
        .unwrap();
    load_and_run(&mut with_call, "nop\n menter 0\n nop\n ebreak", 10_000);
    let call_cycles = with_call.state.perf.cycles;

    let mut without = MetalBuilder::new()
        .routine(0, "noop", "mexit")
        .build_core(core_config())
        .unwrap();
    load_and_run(&mut without, "nop\n nop\n nop\n ebreak", 10_000);
    let base_cycles = without.state.perf.cycles;

    // menter+mexit replace two slots with two replacement slots; allow
    // at most 2 cycles of slack (cold I-cache effects on return fetch).
    assert!(
        call_cycles <= base_cycles + 2,
        "Metal transition should be near-zero overhead: {call_cycles} vs {base_cycles}"
    );
}

#[test]
fn palcode_dispatch_costs_many_cycles() {
    // Same no-op call, PALcode-style (mroutines in main memory, cold
    // I-cache): should cost on the order of the Alpha's ~18 cycles.
    let palcode_config = CoreConfig {
        icache: CacheConfig {
            size_bytes: 4 * 1024,
            line_bytes: 32,
            hit_latency: 1,
            miss_penalty: 15,
        },
        dcache: perfect_cache(),
        ram_bytes: 2 << 20,
        ..CoreConfig::default()
    };
    let mut pal = MetalBuilder::new()
        .palcode(0x10_0000)
        .routine(0, "noop", "mexit")
        .build_core(palcode_config)
        .unwrap();
    load_and_run(&mut pal, "nop\n menter 0\n nop\n ebreak", 10_000);
    let pal_cycles = pal.state.perf.cycles;

    let mut mram = MetalBuilder::new()
        .routine(0, "noop", "mexit")
        .build_core(CoreConfig {
            icache: CacheConfig {
                size_bytes: 4 * 1024,
                line_bytes: 32,
                hit_latency: 1,
                miss_penalty: 15,
            },
            dcache: perfect_cache(),
            ram_bytes: 2 << 20,
            ..CoreConfig::default()
        })
        .unwrap();
    load_and_run(&mut mram, "nop\n menter 0\n nop\n ebreak", 10_000);
    let mram_cycles = mram.state.perf.cycles;

    assert!(
        pal_cycles >= mram_cycles + 15,
        "PALcode no-op call should pay the memory round trip: {pal_cycles} vs {mram_cycles}"
    );
}

#[test]
fn nested_layers_intercept_higher_first_then_propagate() {
    // Layer 1 (higher) and layer 0 (lower) both intercept STOREs. The
    // layer-1 handler re-executes the store, which then propagates to
    // the layer-0 handler ("the intercept propagates downward", §3.5).
    // Each handler bumps its own counter in MRAM data, then skips /
    // emulates.
    // Chained intercepts overwrite m31, so a handler that re-executes
    // the instruction must save its own return address first — the
    // reentrancy obligation the paper calls out for nested Metal (§3.5).
    let l1_handler = r"
        rmr t1, m31
        wmr m2, t1            # save the application return address
        mld t0, 0(zero)
        addi t0, t0, 1
        mst t0, 0(zero)       # count layer-1 hits at data[0]
        # Re-execute the intercepted store: sw a1, 0(s0). In Metal mode
        # the store matches layer 0's rule and chains downward (the
        # layer-0 handler emulates it and skips back to here).
        sw a1, 0(s0)
        rmr t1, m2
        addi t1, t1, 4
        wmr m31, t1           # skip the original store
        mexit
    ";
    let l0_handler = r"
        mld t0, 4(zero)
        addi t0, t0, 1
        mst t0, 4(zero)       # count layer-0 hits at data[4]
        mpst s0, a1           # emulate the store physically
        rmr t1, m31
        addi t1, t1, 4
        wmr m31, t1           # skip the re-executed store
        mexit
    ";
    let mut core = MetalBuilder::new()
        .layers(2)
        .routine(1, "l1_store", l1_handler)
        .routine(2, "l0_store", l0_handler)
        .routine(
            3,
            "arm_both",
            r"
            # Program layer 0's table.
            mlayer zero
            li t0, 0x23           # STORE opcode class
            li t1, 0x05           # entry 2, enable
            mintercept t0, t1
            # Program layer 1's table.
            li t2, 1
            mlayer t2
            li t1, 0x03           # entry 1, enable
            mintercept t0, t1
            li t2, 1
            wmr mstatus, t2       # master enable
            mexit
            ",
        )
        .build_core(core_config())
        .unwrap();
    let halt = load_and_run(
        &mut core,
        r"
        li s0, 0x4000
        li a1, 77
        menter 3
        sw a1, 0(s0)        # intercepted by layer 1, chained to layer 0
        lw a0, 0(s0)        # verify the store landed (via layer-0 mpst)
        ebreak
        ",
        100_000,
    );
    assert_eq!(halt, Some(HaltReason::Ebreak { code: 77 }));
    assert_eq!(core.hooks.stats.intercepts, 2, "both layers fired");
    assert_eq!(&core.hooks.mram.data()[0..4], &1u32.to_le_bytes());
    assert_eq!(&core.hooks.mram.data()[4..8], &1u32.to_le_bytes());
}

#[test]
fn soft_tlb_page_fault_delegation_refills() {
    // The custom-page-table pattern in miniature: data page faults are
    // delegated to an mroutine that installs an identity mapping and
    // retries (m31 already points at the faulting instruction).
    // The handler must preserve the application's registers: Metal
    // registers are exactly the scratch space for that (paper §2.1).
    let refill = r"
        wmr m0, t0
        wmr m1, t1
        rmr t0, mbadaddr
        li t1, 0xFFFFF000
        and t0, t0, t1        # page base
        ori t1, t0, 0x7       # V|R|W identity
        mtlbw t0, t1
        rmr t0, m0
        rmr t1, m1
        mexit                 # m31 = faulting pc: retry
    ";
    let mut core = MetalBuilder::new()
        .routine(0, "tlb_refill", refill)
        .delegate_exception(TrapCause::LoadPageFault, 0)
        .delegate_exception(TrapCause::StorePageFault, 0)
        .build_core(core_config())
        .unwrap();
    // Identity-map the code page so fetch keeps working, then enable
    // SoftTlb translation.
    use metal_mem::tlb::Pte;
    core.state.tlb.install(
        0x0,
        Pte::new(0x0, Pte::V | Pte::R | Pte::W | Pte::X | Pte::G),
        0,
    );
    core.state.translation = TranslationMode::SoftTlb;
    let halt = load_and_run(
        &mut core,
        r"
        li s0, 0x4000
        li t0, 123
        sw t0, 0(s0)       # store page fault -> refill -> retry
        lw a0, 0(s0)       # now hits the TLB
        ebreak
        ",
        100_000,
    );
    assert_eq!(halt, Some(HaltReason::Ebreak { code: 123 }));
    assert_eq!(
        core.hooks.stats.delegated_exceptions, 1,
        "one fault, one refill"
    );
}

#[test]
fn stats_and_mcr_entry_number() {
    let mut core = MetalBuilder::new()
        .routine(9, "probe", "rmr a1, mentry\n mexit")
        .build_core(core_config())
        .unwrap();
    load_and_run(&mut core, "menter 9\n mv a0, a1\n ebreak", 10_000);
    assert_eq!(core.state.regs.get(Reg::A0), 9);
}

#[test]
fn dispatch_style_reflects_entry_pc() {
    let (metal, _, _) = MetalBuilder::new()
        .routine(0, "a", "mexit")
        .routine(1, "b", "mexit")
        .build()
        .unwrap();
    assert_eq!(metal.entry_pc(0), Some(MRAM_BASE));
    assert_eq!(metal.entry_pc(1), Some(MRAM_BASE + 4));
    assert_eq!(metal.entry_pc(2), None);
    assert!(matches!(metal.config().dispatch, DispatchStyle::Mram));
}
