//! Property tests for the mroutine static verifier: it must accept
//! exactly the programs its rules allow, on arbitrary instruction mixes.

use metal_core::mram::MRAM_BASE;
use metal_core::verify::{has_errors, verify_routine, Severity, VerifyContext};
use metal_isa::insn::{AluOp, Cond, Insn};
use metal_isa::reg::Reg;
use metal_isa::{decode, encode};
use proptest::prelude::*;

const WINDOW: u32 = 0x4000;

fn ctx(nested: bool) -> VerifyContext {
    VerifyContext {
        base_pc: MRAM_BASE,
        window_start: MRAM_BASE,
        window_end: MRAM_BASE + WINDOW,
        nested_allowed: nested,
    }
}

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(|n| Reg::new(n).unwrap())
}

/// Instructions the verifier must always accept.
fn arb_benign(len: usize) -> impl Strategy<Value = Vec<u32>> {
    let insn = prop_oneof![
        (arb_reg(), arb_reg(), -512i32..512).prop_map(|(rd, rs1, imm)| Insn::AluImm {
            op: AluOp::Add,
            rd,
            rs1,
            imm
        }),
        (arb_reg(), arb_reg(), arb_reg()).prop_map(|(rd, rs1, rs2)| Insn::Alu {
            op: AluOp::Xor,
            rd,
            rs1,
            rs2
        }),
        (arb_reg(), 0u16..32).prop_map(|(rd, n)| Insn::Rmr {
            rd,
            idx: metal_isa::MregIdx::mreg(n as u8).unwrap()
        }),
        (arb_reg(), arb_reg(), -64i32..64)
            .prop_map(|(rd, rs1, off)| Insn::Mld { rd, rs1, offset: off & !3 }),
        Just(Insn::Fence),
    ];
    proptest::collection::vec(insn.prop_map(|i| encode(&i)), len..len + 1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Benign bodies terminated by mexit verify cleanly (no errors).
    #[test]
    fn benign_routines_accepted(mut words in arb_benign(12)) {
        words.push(encode(&Insn::Mexit));
        let issues = verify_routine(&words, &ctx(false));
        prop_assert!(!has_errors(&issues), "{issues:?}");
    }

    /// Inserting any environment instruction anywhere is an error.
    #[test]
    fn environment_instructions_rejected(
        mut words in arb_benign(8),
        pos in 0usize..8,
        which in 0usize..3,
    ) {
        let bad = [Insn::Ecall, Insn::Mret, Insn::Wfi][which];
        words.insert(pos, encode(&bad));
        words.push(encode(&Insn::Mexit));
        let issues = verify_routine(&words, &ctx(false));
        prop_assert!(has_errors(&issues));
        // The error points at the exact offending offset.
        prop_assert!(issues
            .iter()
            .any(|i| i.severity == Severity::Error && i.offset == (pos as u32) * 4));
    }

    /// In-window branches are fine; any branch that escapes the MRAM
    /// window is an error, wherever it sits.
    #[test]
    fn branch_window_enforced(len in 2usize..16, at in 0usize..16, escape in proptest::bool::ANY) {
        let at = at % len;
        let mut words: Vec<u32> = (0..len).map(|_| encode(&Insn::NOP)).collect();
        let offset = if escape {
            // Below the window start (the routine sits at its base), and
            // within the B-format's 13-bit range.
            -4096i32
        } else {
            // To the start of the routine: always inside.
            -((at as i32) * 4)
        };
        words[at] = encode(&Insn::Branch {
            cond: Cond::Eq,
            rs1: Reg::A0,
            rs2: Reg::A0,
            offset,
        });
        words.push(encode(&Insn::Mexit));
        let issues = verify_routine(&words, &ctx(false));
        prop_assert_eq!(has_errors(&issues), escape, "{:?}", issues);
    }

    /// The verifier never panics on arbitrary words and flags illegal
    /// encodings as errors.
    #[test]
    fn total_on_garbage(words in proptest::collection::vec(any::<u32>(), 0..32)) {
        let issues = verify_routine(&words, &ctx(false));
        for w in &words {
            if decode(*w).is_err() {
                prop_assert!(has_errors(&issues));
                break;
            }
        }
    }

    /// Nested menter flips from error to accepted when layers permit it.
    #[test]
    fn nested_gate(entry in 0u32..64) {
        let words = vec![
            encode(&Insn::Menter { rs1: Reg::ZERO, entry }),
            encode(&Insn::Mexit),
        ];
        prop_assert!(has_errors(&verify_routine(&words, &ctx(false))));
        prop_assert!(!has_errors(&verify_routine(&words, &ctx(true))));
    }
}
