//! Property tests for the mroutine static verifier: it must accept
//! exactly the programs its rules allow, on arbitrary instruction mixes.

use metal_core::mram::MRAM_BASE;
use metal_core::verify::{has_errors, verify_routine, Severity, VerifyContext};
use metal_isa::insn::{AluOp, Cond, Insn};
use metal_isa::reg::Reg;
use metal_isa::{decode, encode};
use metal_util::Rng;

const WINDOW: u32 = 0x4000;

fn ctx(nested: bool) -> VerifyContext {
    VerifyContext {
        base_pc: MRAM_BASE,
        window_start: MRAM_BASE,
        window_end: MRAM_BASE + WINDOW,
        nested_allowed: nested,
        data_bytes: 4096,
    }
}

fn rand_reg(rng: &mut Rng) -> Reg {
    Reg::new(rng.range_u32(0, 32) as u8).unwrap()
}

/// Instructions the verifier must always accept.
fn rand_benign(rng: &mut Rng, len: usize) -> Vec<u32> {
    (0..len)
        .map(|_| {
            let insn = match rng.range_u32(0, 5) {
                0 => Insn::AluImm {
                    op: AluOp::Add,
                    rd: rand_reg(rng),
                    rs1: rand_reg(rng),
                    imm: rng.range_i32(-512, 512),
                },
                1 => Insn::Alu {
                    op: AluOp::Xor,
                    rd: rand_reg(rng),
                    rs1: rand_reg(rng),
                    rs2: rand_reg(rng),
                },
                2 => Insn::Rmr {
                    rd: rand_reg(rng),
                    idx: metal_isa::MregIdx::mreg(rng.range_u32(0, 32) as u8).unwrap(),
                },
                3 => Insn::Mld {
                    rd: rand_reg(rng),
                    rs1: rand_reg(rng),
                    offset: rng.range_i32(-64, 64) & !3,
                },
                _ => Insn::Fence,
            };
            encode(&insn)
        })
        .collect()
}

/// Benign bodies terminated by mexit verify cleanly (no errors).
#[test]
fn benign_routines_accepted() {
    let mut rng = Rng::new(0x7e51_0001);
    for _ in 0..256 {
        let mut words = rand_benign(&mut rng, 12);
        words.push(encode(&Insn::Mexit));
        let issues = verify_routine(&words, &ctx(false));
        assert!(!has_errors(&issues), "{issues:?}");
    }
}

/// Inserting any environment instruction anywhere is an error.
#[test]
fn environment_instructions_rejected() {
    let mut rng = Rng::new(0x7e51_0002);
    for _ in 0..256 {
        let mut words = rand_benign(&mut rng, 8);
        let pos = rng.range_usize(0, 8);
        let bad = *rng.pick(&[Insn::Ecall, Insn::Mret, Insn::Wfi]);
        words.insert(pos, encode(&bad));
        words.push(encode(&Insn::Mexit));
        let issues = verify_routine(&words, &ctx(false));
        assert!(has_errors(&issues));
        // The error points at the exact offending offset.
        assert!(issues
            .iter()
            .any(|i| i.severity == Severity::Error && i.offset == (pos as u32) * 4));
    }
}

/// In-window branches are fine; any branch that escapes the MRAM
/// window is an error, wherever it sits.
#[test]
fn branch_window_enforced() {
    let mut rng = Rng::new(0x7e51_0003);
    for _ in 0..256 {
        let len = rng.range_usize(2, 16);
        let at = rng.range_usize(0, 16) % len;
        let escape = rng.chance();
        let mut words: Vec<u32> = (0..len).map(|_| encode(&Insn::NOP)).collect();
        let offset = if escape {
            // Below the window start (the routine sits at its base), and
            // within the B-format's 13-bit range.
            -4096i32
        } else {
            // To the start of the routine: always inside.
            -((at as i32) * 4)
        };
        words[at] = encode(&Insn::Branch {
            cond: Cond::Eq,
            rs1: Reg::A0,
            rs2: Reg::A0,
            offset,
        });
        words.push(encode(&Insn::Mexit));
        let issues = verify_routine(&words, &ctx(false));
        assert_eq!(has_errors(&issues), escape, "{issues:?}");
    }
}

/// The verifier never panics on arbitrary words and flags illegal
/// encodings as errors.
#[test]
fn total_on_garbage() {
    let mut rng = Rng::new(0x7e51_0004);
    for _ in 0..256 {
        let words: Vec<u32> = (0..rng.range_usize(0, 32))
            .map(|_| rng.next_u32())
            .collect();
        let issues = verify_routine(&words, &ctx(false));
        for w in &words {
            if decode(*w).is_err() {
                assert!(has_errors(&issues));
                break;
            }
        }
    }
}

/// Nested menter flips from error to accepted when layers permit it.
#[test]
fn nested_gate() {
    for entry in 0u32..64 {
        let words = vec![
            encode(&Insn::Menter {
                rs1: Reg::ZERO,
                entry,
            }),
            encode(&Insn::Mexit),
        ];
        assert!(has_errors(&verify_routine(&words, &ctx(false))));
        assert!(!has_errors(&verify_routine(&words, &ctx(true))));
    }
}
