//! MRAM: the RAM collocated with the instruction fetch unit.
//!
//! "Critically, Metal stores mroutines in a RAM collocated with the
//! processor's instruction fetch unit to offer microcode level overhead.
//! … The RAM partitions code and data into separate segments, which hold
//! mroutines and mroutine private data. Accesses to the RAM do not alter
//! processor caches." (paper §2)
//!
//! MRAM code occupies the physical-address window starting at
//! [`MRAM_BASE`]; fetches from that window are served by the Metal fetch
//! hook in one cycle and never touch the I-cache. The data segment is a
//! separate little address space reachable only through `mld`/`mst`.

use crate::ecc::{EccCheck, EccMode};
use crate::MetalError;
use metal_isa::metal::MAX_MROUTINES;
use metal_isa::{decode_to, DecodedInsn};

/// Base address of the MRAM code window. mroutine PCs live here.
pub const MRAM_BASE: u32 = 0xFFF0_0000;

/// Geometry of the MRAM.
#[derive(Clone, Copy, Debug)]
pub struct MramConfig {
    /// Code segment size in bytes.
    pub code_bytes: u32,
    /// Data segment size in bytes.
    pub data_bytes: u32,
    /// Fetch latency from MRAM in cycles (1 = collocated, the design
    /// point; larger values ablate the collocation claim).
    pub fetch_latency: u32,
}

impl Default for MramConfig {
    fn default() -> MramConfig {
        MramConfig {
            code_bytes: 16 * 1024,
            data_bytes: 4 * 1024,
            fetch_latency: 1,
        }
    }
}

/// One installed mroutine.
#[derive(Clone, Debug)]
pub struct MroutineInfo {
    /// Entry number (0..64).
    pub entry: u8,
    /// Human-readable name (diagnostics only).
    pub name: String,
    /// Byte offset of the first instruction in the code segment.
    pub offset: u32,
    /// Length in bytes.
    pub len: u32,
}

/// The MRAM: code segment, data segment, and the 64-entry table. Code
/// is kept in two parallel forms: the raw words and their pre-decoded
/// [`DecodedInsn`]s, filled at install time — the software analogue of
/// the paper's decode-collocated MRAM, so mroutine fetches never pay a
/// per-cycle decode.
#[derive(Clone, Debug)]
pub struct Mram {
    config: MramConfig,
    code: Vec<u32>,
    decoded: Vec<DecodedInsn>,
    data: Vec<u8>,
    entries: Vec<Option<MroutineInfo>>,
    next_offset: u32,
    generation: u64,
    /// Check-bit scheme protecting both segments ([`EccMode::None`]
    /// disables verification entirely — the zero-cost default).
    ecc: EccMode,
    /// Per-word check bits for the code / data segments, recomputed on
    /// every legitimate write. Fault injection flips only the primary
    /// arrays, leaving these stale — exactly how a real particle strike
    /// presents to the detection hardware.
    code_check: Vec<u8>,
    data_check: Vec<u8>,
    /// Golden copy of the code segment: the install image. Code is
    /// read-only after install, so this never goes stale and `mscrub`
    /// can repair any corrupted code word from it.
    golden_code: Vec<u32>,
    /// Write-through mirror of the data segment, updated on every
    /// `data_store`: a redundant protected copy that tracks legitimate
    /// updates, so scrubbing a corrupted data word is always correct.
    golden_data: Vec<u8>,
}

impl Mram {
    /// Creates an empty MRAM.
    #[must_use]
    pub fn new(config: MramConfig) -> Mram {
        let words = (config.code_bytes / 4) as usize;
        Mram {
            code: vec![0; words],
            // Word 0 has no legal decoding, so the empty pre-decoded
            // segment is consistent with the empty code segment.
            decoded: vec![DecodedInsn::illegal(0); words],
            data: vec![0; config.data_bytes as usize],
            entries: vec![None; MAX_MROUTINES],
            next_offset: 0,
            config,
            generation: 0,
            ecc: EccMode::None,
            code_check: vec![0; words],
            data_check: vec![0; (config.data_bytes / 4) as usize],
            golden_code: vec![0; words],
            golden_data: vec![0; config.data_bytes as usize],
        }
    }

    /// The active check-bit scheme.
    #[must_use]
    pub fn ecc(&self) -> EccMode {
        self.ecc
    }

    /// Switches the check-bit scheme and recomputes all check bits and
    /// golden copies from the current (trusted) contents. Host-side
    /// writes through [`Mram::data_mut`] made after this call must be
    /// followed by another `set_ecc` to stay consistent.
    pub fn set_ecc(&mut self, mode: EccMode) {
        self.ecc = mode;
        for (i, &w) in self.code.iter().enumerate() {
            self.code_check[i] = mode.encode(w);
        }
        for i in 0..self.data_check.len() {
            self.data_check[i] = mode.encode(self.data_word_at(i as u32));
        }
        self.golden_code.copy_from_slice(&self.code);
        self.golden_data.copy_from_slice(&self.data);
    }

    /// The geometry.
    #[must_use]
    pub fn config(&self) -> MramConfig {
        self.config
    }

    /// Installs an mroutine's code at the next free offset and binds it
    /// to `entry`. Returns the mroutine's PC.
    pub fn install(&mut self, entry: u8, name: &str, words: &[u32]) -> Result<u32, MetalError> {
        if usize::from(entry) >= MAX_MROUTINES {
            return Err(MetalError::BadEntry { entry });
        }
        if self.entries[usize::from(entry)].is_some() {
            return Err(MetalError::EntryInUse { entry });
        }
        let len = (words.len() * 4) as u32;
        if self.next_offset + len > self.config.code_bytes {
            return Err(MetalError::CodeOverflow {
                needed: self.next_offset + len,
                capacity: self.config.code_bytes,
            });
        }
        let offset = self.next_offset;
        let word_base = (offset / 4) as usize;
        self.code[word_base..word_base + words.len()].copy_from_slice(words);
        self.golden_code[word_base..word_base + words.len()].copy_from_slice(words);
        // Pre-decode at load time; bump the generation so any consumer
        // holding stale decoded state can notice the (re)load.
        for (i, &word) in words.iter().enumerate() {
            self.decoded[word_base + i] = decode_to(word);
            self.code_check[word_base + i] = self.ecc.encode(word);
        }
        self.generation += 1;
        self.next_offset += len;
        self.entries[usize::from(entry)] = Some(MroutineInfo {
            entry,
            name: name.to_owned(),
            offset,
            len,
        });
        Ok(MRAM_BASE + offset)
    }

    /// Looks up an entry; `None` if unbound.
    #[must_use]
    pub fn entry(&self, entry: u8) -> Option<&MroutineInfo> {
        self.entries.get(usize::from(entry))?.as_ref()
    }

    /// PC of an entry's first instruction.
    #[must_use]
    pub fn entry_pc(&self, entry: u8) -> Option<u32> {
        self.entry(entry).map(|info| MRAM_BASE + info.offset)
    }

    /// True if `pc` lies inside the MRAM code window.
    #[must_use]
    pub fn contains_pc(&self, pc: u32) -> bool {
        pc >= MRAM_BASE && pc < MRAM_BASE + self.config.code_bytes
    }

    /// Reads the code word at an MRAM PC.
    pub fn code_word(&self, pc: u32) -> Result<u32, MetalError> {
        if !self.contains_pc(pc) || !pc.is_multiple_of(4) {
            return Err(MetalError::CodeFetch { pc });
        }
        Ok(self.code[((pc - MRAM_BASE) / 4) as usize])
    }

    /// Reads the pre-decoded instruction at an MRAM PC. Always agrees
    /// with [`Mram::code_word`]: both views are written together by
    /// `install`.
    pub fn code_decoded(&self, pc: u32) -> Result<DecodedInsn, MetalError> {
        if !self.contains_pc(pc) || !pc.is_multiple_of(4) {
            return Err(MetalError::CodeFetch { pc });
        }
        Ok(self.decoded[((pc - MRAM_BASE) / 4) as usize])
    }

    /// Bumped on every `install` (MRAM code (re)load): consumers caching
    /// decoded MRAM state can use this to detect staleness.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Fetch latency for MRAM code.
    #[must_use]
    pub fn fetch_latency(&self) -> u32 {
        self.config.fetch_latency
    }

    /// Loads a word from the data segment (`mld`).
    pub fn data_load(&self, addr: u32) -> Result<u32, MetalError> {
        if !addr.is_multiple_of(4) || addr + 4 > self.config.data_bytes {
            return Err(MetalError::DataAccess { addr });
        }
        let i = addr as usize;
        Ok(u32::from_le_bytes([
            self.data[i],
            self.data[i + 1],
            self.data[i + 2],
            self.data[i + 3],
        ]))
    }

    /// Stores a word to the data segment (`mst`).
    pub fn data_store(&mut self, addr: u32, value: u32) -> Result<(), MetalError> {
        if !addr.is_multiple_of(4) || addr + 4 > self.config.data_bytes {
            return Err(MetalError::DataAccess { addr });
        }
        let i = addr as usize;
        self.data[i..i + 4].copy_from_slice(&value.to_le_bytes());
        self.golden_data[i..i + 4].copy_from_slice(&value.to_le_bytes());
        self.data_check[i / 4] = self.ecc.encode(value);
        Ok(())
    }

    /// Host-side view of the data segment (for tests and loaders that
    /// pre-initialize mroutine private data).
    #[must_use]
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Host-side mutable view of the data segment.
    pub fn data_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Number of 32-bit words in the code segment.
    #[must_use]
    pub fn code_words(&self) -> u32 {
        self.config.code_bytes / 4
    }

    /// Number of 32-bit words in the data segment.
    #[must_use]
    pub fn data_words(&self) -> u32 {
        self.config.data_bytes / 4
    }

    /// Raw code word by word index (fault-injection harness).
    #[must_use]
    pub fn code_word_at(&self, index: u32) -> u32 {
        self.code[index as usize]
    }

    /// Raw data word by word index (fault-injection harness).
    #[must_use]
    pub fn data_word_at(&self, index: u32) -> u32 {
        let i = index as usize * 4;
        u32::from_le_bytes([
            self.data[i],
            self.data[i + 1],
            self.data[i + 2],
            self.data[i + 3],
        ])
    }

    /// Validates the code word at an MRAM PC against its check bits.
    /// `None` = clean (or ECC off); `Some(syndrome)` = machine check.
    #[must_use]
    pub fn code_verify(&self, pc: u32) -> Option<u8> {
        if self.ecc == EccMode::None || !self.contains_pc(pc) || !pc.is_multiple_of(4) {
            return None;
        }
        let i = ((pc - MRAM_BASE) / 4) as usize;
        match self.ecc.check(self.code[i], self.code_check[i]) {
            EccCheck::Clean => None,
            EccCheck::Error { syndrome, .. } => Some(syndrome),
        }
    }

    /// Validates the data word holding `addr` against its check bits.
    #[must_use]
    pub fn data_verify(&self, addr: u32) -> Option<u8> {
        if self.ecc == EccMode::None || !addr.is_multiple_of(4) || addr + 4 > self.config.data_bytes
        {
            return None;
        }
        let i = addr / 4;
        match self
            .ecc
            .check(self.data_word_at(i), self.data_check[i as usize])
        {
            EccCheck::Clean => None,
            EccCheck::Error { syndrome, .. } => Some(syndrome),
        }
    }

    /// Flips one bit of the code word at `index`, re-decoding the
    /// parallel pre-decoded view so both stay coherent. Check bits and
    /// the golden copy are deliberately left alone — that is what makes
    /// the flip detectable and repairable. Returns `false` out of range.
    pub fn inject_code_bit(&mut self, index: u32, bit: u8) -> bool {
        let Some(word) = self.code.get_mut(index as usize) else {
            return false;
        };
        *word ^= 1 << (bit & 31);
        self.decoded[index as usize] = decode_to(*word);
        true
    }

    /// Flips one bit of the data word at `index` (primary copy only).
    /// Returns `false` out of range.
    pub fn inject_data_bit(&mut self, index: u32, bit: u8) -> bool {
        let i = index as usize * 4;
        if i + 4 > self.data.len() {
            return false;
        }
        let word = self.data_word_at(index) ^ (1 << (bit & 31));
        self.data[i..i + 4].copy_from_slice(&word.to_le_bytes());
        true
    }

    /// Repairs the code word at `index` from the golden install image,
    /// recomputing its check bits and pre-decoded view. Returns `false`
    /// out of range.
    pub fn scrub_code(&mut self, index: u32) -> bool {
        let i = index as usize;
        if i >= self.code.len() {
            return false;
        }
        self.code[i] = self.golden_code[i];
        self.decoded[i] = decode_to(self.code[i]);
        self.code_check[i] = self.ecc.encode(self.code[i]);
        true
    }

    /// Repairs the data word at `index` from the write-through mirror.
    /// Returns `false` out of range.
    pub fn scrub_data(&mut self, index: u32) -> bool {
        let i = index as usize * 4;
        if i + 4 > self.data.len() {
            return false;
        }
        let (dst, src) = (&mut self.data[i..i + 4], &self.golden_data[i..i + 4]);
        dst.copy_from_slice(src);
        self.data_check[index as usize] = self.ecc.encode(self.data_word_at(index));
        true
    }

    /// Bytes of code segment still free.
    #[must_use]
    pub fn code_free(&self) -> u32 {
        self.config.code_bytes - self.next_offset
    }

    /// Iterates over installed mroutines.
    pub fn routines(&self) -> impl Iterator<Item = &MroutineInfo> {
        self.entries.iter().filter_map(Option::as_ref)
    }

    /// Captures the full MRAM contents (code, pre-decoded code, data,
    /// entry table) for a later [`Mram::restore`].
    #[must_use]
    pub fn snapshot(&self) -> MramSnapshot {
        MramSnapshot {
            code: self.code.clone(),
            decoded: self.decoded.clone(),
            data: self.data.clone(),
            entries: self.entries.clone(),
            next_offset: self.next_offset,
            generation: self.generation,
            ecc: self.ecc,
            code_check: self.code_check.clone(),
            data_check: self.data_check.clone(),
            golden_code: self.golden_code.clone(),
            golden_data: self.golden_data.clone(),
        }
    }

    /// Rewinds the MRAM to a snapshot without reallocating the code or
    /// data segments — the per-case reset path of the fuzzer, which
    /// mainly exists to roll back `mst` writes to mroutine private data.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot was taken from an MRAM with different
    /// geometry.
    pub fn restore(&mut self, snap: &MramSnapshot) {
        self.code.copy_from_slice(&snap.code);
        self.decoded.copy_from_slice(&snap.decoded);
        self.data.copy_from_slice(&snap.data);
        self.entries.clone_from(&snap.entries);
        self.next_offset = snap.next_offset;
        self.generation = snap.generation;
        self.ecc = snap.ecc;
        self.code_check.copy_from_slice(&snap.code_check);
        self.data_check.copy_from_slice(&snap.data_check);
        self.golden_code.copy_from_slice(&snap.golden_code);
        self.golden_data.copy_from_slice(&snap.golden_data);
    }
}

/// A point-in-time copy of an [`Mram`], taken with [`Mram::snapshot`]
/// and applied with [`Mram::restore`]. Geometry (the [`MramConfig`]) is
/// not captured: a snapshot only restores onto an MRAM with the same
/// configuration it was taken from.
#[derive(Clone, Debug)]
pub struct MramSnapshot {
    code: Vec<u32>,
    decoded: Vec<DecodedInsn>,
    data: Vec<u8>,
    entries: Vec<Option<MroutineInfo>>,
    next_offset: u32,
    generation: u64,
    ecc: EccMode,
    code_check: Vec<u8>,
    data_check: Vec<u8>,
    golden_code: Vec<u32>,
    golden_data: Vec<u8>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_and_fetch() {
        let mut mram = Mram::new(MramConfig::default());
        let pc = mram.install(3, "demo", &[0x11, 0x22, 0x33]).unwrap();
        assert_eq!(pc, MRAM_BASE);
        assert_eq!(mram.entry_pc(3), Some(MRAM_BASE));
        assert_eq!(mram.code_word(pc), Ok(0x11));
        assert_eq!(mram.code_word(pc + 8), Ok(0x33));
        assert!(mram.contains_pc(pc + 8));
        // Second routine goes after the first.
        let pc2 = mram.install(4, "demo2", &[0xAA]).unwrap();
        assert_eq!(pc2, MRAM_BASE + 12);
        assert_eq!(mram.code_word(pc2), Ok(0xAA));
    }

    #[test]
    fn entry_bounds_and_duplicates() {
        let mut mram = Mram::new(MramConfig::default());
        assert!(matches!(
            mram.install(64, "x", &[0]),
            Err(MetalError::BadEntry { entry: 64 })
        ));
        mram.install(5, "a", &[0]).unwrap();
        assert!(matches!(
            mram.install(5, "b", &[0]),
            Err(MetalError::EntryInUse { entry: 5 })
        ));
    }

    #[test]
    fn code_overflow_detected() {
        let mut mram = Mram::new(MramConfig {
            code_bytes: 16,
            data_bytes: 16,
            fetch_latency: 1,
        });
        mram.install(0, "a", &[0; 3]).unwrap();
        assert!(matches!(
            mram.install(1, "b", &[0; 2]),
            Err(MetalError::CodeOverflow { .. })
        ));
        // Exactly filling works.
        mram.install(1, "b", &[0]).unwrap();
        assert_eq!(mram.code_free(), 0);
    }

    #[test]
    fn data_segment_roundtrip() {
        let mut mram = Mram::new(MramConfig::default());
        mram.data_store(8, 0xDEAD_BEEF).unwrap();
        assert_eq!(mram.data_load(8), Ok(0xDEAD_BEEF));
        assert!(mram.data_load(2).is_err(), "misaligned");
        let last = MramConfig::default().data_bytes - 4;
        mram.data_store(last, 1).unwrap();
        assert!(mram.data_store(last + 4, 1).is_err(), "out of bounds");
    }

    #[test]
    fn snapshot_restore_rolls_back_installs_and_data() {
        let mut mram = Mram::new(MramConfig::default());
        mram.install(0, "keep", &[0x0000_0013]).unwrap();
        mram.data_store(0, 0x1111).unwrap();
        let snap = mram.snapshot();
        // Diverge: another install, a data write.
        mram.install(1, "scratch", &[0x02A0_0513]).unwrap();
        mram.data_store(0, 0x2222).unwrap();
        mram.restore(&snap);
        assert!(mram.entry(1).is_none(), "install rolled back");
        assert_eq!(mram.data_load(0), Ok(0x1111), "data write rolled back");
        assert_eq!(mram.code_word(MRAM_BASE), Ok(0x0000_0013));
        assert_eq!(mram.code_free(), MramConfig::default().code_bytes - 4);
        // The freed slot is reusable after restore.
        mram.install(1, "again", &[0xAA]).unwrap();
        assert_eq!(mram.entry_pc(1), Some(MRAM_BASE + 4));
    }

    #[test]
    fn injected_code_flip_is_detected_and_scrubbed() {
        let mut mram = Mram::new(MramConfig::default());
        let pc = mram.install(0, "r", &[0x0000_0013, 0x0010_0073]).unwrap();
        mram.set_ecc(EccMode::Secded);
        assert_eq!(mram.code_verify(pc), None);
        assert!(mram.inject_code_bit(0, 7));
        // Primary word and decoded view flipped together; check bits
        // stale, so verification reports a locatable syndrome.
        assert_eq!(mram.code_word(pc), Ok(0x0000_0013 ^ 0x80));
        let syndrome = mram.code_verify(pc).expect("flip detected");
        assert_eq!(syndrome & 0x80, 0, "single-bit flip is locatable");
        assert!(mram.scrub_code(0));
        assert_eq!(mram.code_verify(pc), None);
        assert_eq!(mram.code_word(pc), Ok(0x0000_0013));
        assert_eq!(
            mram.code_decoded(pc).unwrap().word,
            0x0000_0013,
            "decoded view repaired too"
        );
    }

    #[test]
    fn data_mirror_tracks_stores_so_scrub_is_fresh() {
        let mut mram = Mram::new(MramConfig::default());
        mram.set_ecc(EccMode::Parity);
        mram.data_store(16, 0xAAAA_0001).unwrap();
        assert!(mram.inject_data_bit(4, 0));
        assert_eq!(mram.data_verify(16), Some(0x80), "parity cannot locate");
        assert!(mram.scrub_data(4));
        assert_eq!(mram.data_verify(16), None);
        assert_eq!(
            mram.data_load(16),
            Ok(0xAAAA_0001),
            "scrub restores the latest legitimate store, not stale install data"
        );
    }

    #[test]
    fn ecc_off_never_verifies() {
        let mut mram = Mram::new(MramConfig::default());
        let pc = mram.install(0, "r", &[0x13]).unwrap();
        assert!(mram.inject_code_bit(0, 3));
        assert_eq!(mram.code_verify(pc), None, "EccMode::None is silent");
    }

    #[test]
    fn code_fetch_bounds() {
        let mram = Mram::new(MramConfig::default());
        assert!(mram.code_word(MRAM_BASE - 4).is_err());
        assert!(mram.code_word(MRAM_BASE + 2).is_err());
        assert!(mram
            .code_word(MRAM_BASE + MramConfig::default().code_bytes)
            .is_err());
    }
}
