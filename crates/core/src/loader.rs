//! The boot-time mroutine loader.
//!
//! "At boot time, Metal loads a collection of mcode subroutines called
//! mroutines, which extend the architecture's instruction set." (paper
//! §2) [`MetalBuilder`] is that boot flow: assemble each mroutine
//! against its final address, statically verify it, install it into
//! MRAM, program delegations, and construct the core. For PALcode-style
//! dispatch the same image is placed in main memory instead.

use crate::ecc::EccMode;
use crate::metal::{DispatchStyle, Metal, MetalConfig};
use crate::verify::{has_errors, lint_routine, verify_routine, Issue, VerifyContext};
use crate::MetalError;
use metal_asm::assemble_at;
use metal_pipeline::state::CoreConfig;
use metal_pipeline::trap::TrapCause;
use metal_pipeline::{Core, Engine};

/// The output of [`MetalBuilder::build`]: the extension, the main-memory
/// image PALcode dispatch needs, and accumulated verifier warnings.
pub type BuildOutput = (Metal, Vec<(u32, Vec<u8>)>, Vec<(String, Issue)>);

/// A delegation request recorded before build.
#[derive(Clone, Debug)]
enum Delegation {
    Exception {
        layer: usize,
        cause: TrapCause,
        entry: u8,
    },
    AllExceptions {
        layer: usize,
        entry: u8,
    },
    Interrupt {
        layer: usize,
        line: u8,
        entry: u8,
    },
}

/// Builder for a Metal-enabled machine.
///
/// # Examples
///
/// ```
/// use metal_core::loader::MetalBuilder;
/// use metal_pipeline::state::CoreConfig;
///
/// let core = MetalBuilder::new()
///     .routine(0, "add_one", "rmr t0, m31\n addi a0, a0, 1\n mexit")
///     .build_core(CoreConfig::default())
///     .unwrap();
/// assert!(core.hooks.mram.entry(0).is_some());
/// ```
#[derive(Clone, Debug)]
pub struct MetalBuilder {
    config: MetalConfig,
    routines: Vec<(u8, String, String)>,
    delegations: Vec<Delegation>,
    lint_clean: bool,
    /// Warnings accumulated during the build (available afterwards).
    pub warnings: Vec<(String, Issue)>,
}

impl MetalBuilder {
    /// An empty builder with the default configuration.
    #[must_use]
    pub fn new() -> MetalBuilder {
        MetalBuilder {
            config: MetalConfig::default(),
            routines: Vec::new(),
            delegations: Vec::new(),
            lint_clean: false,
            warnings: Vec::new(),
        }
    }

    /// Requires every mroutine to pass the *full* static-analysis
    /// battery (`metal-lint` dataflow checks: MRAM bounds, return-address
    /// clobbers, secret leaks, instruction budget, intercept arms), not
    /// just the historical privilege/structure set. Any denial aborts
    /// the build.
    #[must_use]
    pub fn require_lint_clean(mut self) -> MetalBuilder {
        self.lint_clean = true;
        self
    }

    /// Overrides the Metal configuration.
    #[must_use]
    pub fn config(mut self, config: MetalConfig) -> MetalBuilder {
        self.config = config;
        self
    }

    /// Protects MRAM words and the Metal register file with the given
    /// check-bit scheme (detected errors raise machine checks).
    #[must_use]
    pub fn ecc(mut self, mode: EccMode) -> MetalBuilder {
        self.config.ecc = mode;
        self
    }

    /// Uses PALcode-style dispatch from main memory at `base` (the E1
    /// ablation).
    #[must_use]
    pub fn palcode(mut self, base: u32) -> MetalBuilder {
        self.config.dispatch = DispatchStyle::Palcode { base };
        self
    }

    /// Sets the number of nested-Metal layers.
    #[must_use]
    pub fn layers(mut self, layers: usize) -> MetalBuilder {
        self.config.layers = layers.max(1);
        self
    }

    /// Adds an mroutine (assembly source) bound to `entry`.
    #[must_use]
    pub fn routine(mut self, entry: u8, name: &str, src: &str) -> MetalBuilder {
        self.routines.push((entry, name.to_owned(), src.to_owned()));
        self
    }

    /// Delegates an exception cause to an entry (layer 0).
    #[must_use]
    pub fn delegate_exception(self, cause: TrapCause, entry: u8) -> MetalBuilder {
        self.delegate_exception_on(0, cause, entry)
    }

    /// Delegates an exception cause to an entry on a specific layer.
    #[must_use]
    pub fn delegate_exception_on(
        mut self,
        layer: usize,
        cause: TrapCause,
        entry: u8,
    ) -> MetalBuilder {
        self.delegations.push(Delegation::Exception {
            layer,
            cause,
            entry,
        });
        self
    }

    /// Delegates all otherwise-unhandled exceptions to an entry (layer 0).
    #[must_use]
    pub fn delegate_all_exceptions(mut self, entry: u8) -> MetalBuilder {
        self.delegations
            .push(Delegation::AllExceptions { layer: 0, entry });
        self
    }

    /// Delegates an interrupt line to an entry (layer 0).
    #[must_use]
    pub fn delegate_interrupt(self, line: u8, entry: u8) -> MetalBuilder {
        self.delegate_interrupt_on(0, line, entry)
    }

    /// Delegates an interrupt line to an entry on a specific layer.
    #[must_use]
    pub fn delegate_interrupt_on(mut self, layer: usize, line: u8, entry: u8) -> MetalBuilder {
        self.delegations
            .push(Delegation::Interrupt { layer, line, entry });
        self
    }

    /// Assembles, verifies, and installs everything, producing the Metal
    /// extension plus the main-memory image PALcode dispatch needs.
    pub fn build(mut self) -> Result<BuildOutput, MetalError> {
        let mut metal = Metal::new(self.config);
        let mut palcode_image: Vec<(u32, Vec<u8>)> = Vec::new();
        let (window_start, window_end) = match self.config.dispatch {
            DispatchStyle::Mram => (
                crate::mram::MRAM_BASE,
                crate::mram::MRAM_BASE + self.config.mram.code_bytes,
            ),
            DispatchStyle::Palcode { base } => (base, base + self.config.mram.code_bytes),
        };
        for (entry, name, src) in &self.routines {
            let base = metal.next_routine_pc();
            let words = assemble_at(src, base).map_err(|e| MetalError::Assemble {
                routine: name.clone(),
                message: e.to_string(),
            })?;
            let ctx = VerifyContext {
                base_pc: base,
                window_start,
                window_end,
                nested_allowed: self.config.layers > 1,
                data_bytes: self.config.mram.data_bytes,
            };
            let issues = if self.lint_clean {
                lint_routine(&words, &ctx)
            } else {
                verify_routine(&words, &ctx)
            };
            if has_errors(&issues) {
                return Err(MetalError::Verify {
                    routine: name.clone(),
                    issues,
                });
            }
            for issue in issues {
                self.warnings.push((name.clone(), issue));
            }
            metal.install_routine(*entry, name, &words)?;
            if let DispatchStyle::Palcode { .. } = self.config.dispatch {
                let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
                palcode_image.push((base, bytes));
            }
        }
        for d in &self.delegations {
            match *d {
                Delegation::Exception {
                    layer,
                    cause,
                    entry,
                } => metal.layers[layer]
                    .delegation
                    .delegate_exception(cause, entry)?,
                Delegation::AllExceptions { layer, entry } => {
                    metal.layers[layer]
                        .delegation
                        .delegate_all_exceptions(entry)?;
                }
                Delegation::Interrupt { layer, line, entry } => {
                    metal.layers[layer]
                        .delegation
                        .delegate_interrupt(line, entry)?;
                }
            }
        }
        Ok((metal, palcode_image, self.warnings))
    }

    /// Builds a complete machine of either engine type with the Metal
    /// extension attached (and the PALcode image, if any, loaded into
    /// RAM).
    pub fn build_engine<E: Engine<Hooks = Metal>>(
        self,
        core_config: CoreConfig,
    ) -> Result<E, MetalError> {
        let (metal, palcode_image, _warnings) = self.build()?;
        let mut engine = E::new(core_config, metal);
        let had_image = !palcode_image.is_empty();
        for (base, bytes) in palcode_image {
            engine
                .state_mut()
                .bus
                .ram
                .load(base, &bytes)
                .map_err(|_| MetalError::PalcodeImage { base })?;
        }
        if had_image {
            // The image went in behind the bus's back; drop any decoded
            // state so fetches re-read it.
            engine.state_mut().invalidate_decode_cache();
        }
        Ok(engine)
    }

    /// Builds a complete pipelined core with the Metal extension
    /// attached (and the PALcode image, if any, loaded into RAM).
    pub fn build_core(self, core_config: CoreConfig) -> Result<Core<Metal>, MetalError> {
        self.build_engine(core_config)
    }
}

impl Default for MetalBuilder {
    fn default() -> MetalBuilder {
        MetalBuilder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_installs() {
        let (metal, image, warnings) = MetalBuilder::new()
            .routine(0, "nopr", "mexit")
            .routine(5, "bump", "addi a0, a0, 1\n mexit")
            .delegate_exception(TrapCause::Ecall, 0)
            .delegate_interrupt(1, 5)
            .build()
            .unwrap();
        assert!(image.is_empty(), "MRAM dispatch has no RAM image");
        assert!(warnings.is_empty(), "{warnings:?}");
        assert!(metal.mram.entry(0).is_some());
        assert!(metal.mram.entry(5).is_some());
        assert_eq!(metal.layers[0].delegation.lookup(TrapCause::Ecall), Some(0));
        assert_eq!(
            metal.layers[0].delegation.lookup(TrapCause::Interrupt(1)),
            Some(5)
        );
    }

    #[test]
    fn verification_failure_names_routine() {
        let err = MetalBuilder::new()
            .routine(0, "bad", "ecall\n mexit")
            .build()
            .unwrap_err();
        match err {
            MetalError::Verify { routine, issues } => {
                assert_eq!(routine, "bad");
                assert!(!issues.is_empty());
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn assembly_failure_names_routine() {
        let err = MetalBuilder::new()
            .routine(0, "syntax", "frobnicate a0\n")
            .build()
            .unwrap_err();
        assert!(matches!(err, MetalError::Assemble { ref routine, .. } if routine == "syntax"));
    }

    #[test]
    fn palcode_build_produces_image() {
        let (metal, image, _) = MetalBuilder::new()
            .palcode(0x10_0000)
            .routine(0, "nopr", "mexit")
            .build()
            .unwrap();
        assert_eq!(image.len(), 1);
        assert_eq!(image[0].0, 0x10_0000);
        assert_eq!(metal.entry_pc(0), Some(0x10_0000));
    }

    #[test]
    fn lint_clean_gate_rejects_oob_store() {
        // The default verifier lets a statically-OOB mst through (it
        // faults at runtime); the opt-in lint gate refuses the install.
        let src = "li t0, 4096\n mst a0, 0(t0)\n mexit";
        assert!(MetalBuilder::new().routine(0, "oob", src).build().is_ok());
        let err = MetalBuilder::new()
            .require_lint_clean()
            .routine(0, "oob", src)
            .build()
            .unwrap_err();
        match err {
            MetalError::Verify { routine, issues } => {
                assert_eq!(routine, "oob");
                assert!(issues.iter().any(|i| i.message.contains("data segment")));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn lint_clean_gate_accepts_clean_routine() {
        let core = MetalBuilder::new()
            .require_lint_clean()
            .routine(0, "bump", "addi a0, a0, 1\n mexit")
            .build_core(CoreConfig::default())
            .unwrap();
        assert!(core.hooks.mram.entry(0).is_some());
    }

    #[test]
    fn warnings_surface() {
        let (_, _, warnings) = MetalBuilder::new()
            .routine(0, "noexit", "addi a0, a0, 1")
            .build()
            .unwrap();
        assert_eq!(warnings.len(), 1);
        assert!(warnings[0].1.message.contains("never returns"));
    }
}
