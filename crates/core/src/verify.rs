//! Static verification of mroutines.
//!
//! "Static allocation and non-interruptibility improve performance,
//! security and reliability by eliminating potential resource exhaustion
//! and simplifying mroutine verification." (paper §2.1) The loader
//! verifies every mroutine before installing it. The analysis itself
//! lives in the `metal-lint` crate; this module adapts its diagnostics
//! to the loader's [`Issue`] form and selects which checks gate an
//! install:
//!
//! * [`verify_routine`] runs the historical install set — privilege
//!   (environment instructions, illegal words, nested `menter`) and
//!   structure (window escapes, `jalr`, `ebreak`, missing `mexit`) —
//!   with message texts and ordering identical to the pre-lint verifier;
//! * [`lint_routine`] runs the full dataflow battery (bounds, retaddr,
//!   leak, budget, intercept) for builders that opt in via
//!   `MetalBuilder::require_lint_clean`.

use metal_lint::{lint_words, CheckSet, Level, LintConfig, UnitKind};

/// Severity of a verification finding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Severity {
    /// Installation is refused.
    Error,
    /// Installation proceeds; the finding is reported.
    Warning,
}

/// One verification finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Issue {
    /// Severity.
    pub severity: Severity,
    /// Byte offset of the offending instruction within the routine.
    pub offset: u32,
    /// Description.
    pub message: String,
}

/// What the verifier needs to know about the installation context.
#[derive(Clone, Copy, Debug)]
pub struct VerifyContext {
    /// Base PC the routine will run at.
    pub base_pc: u32,
    /// Start of the MRAM code window.
    pub window_start: u32,
    /// End (exclusive) of the MRAM code window.
    pub window_end: u32,
    /// Whether nested `menter` from Metal mode is legal (layers > 1).
    pub nested_allowed: bool,
    /// Size of the MRAM data segment, for the bounds check.
    pub data_bytes: u32,
}

impl VerifyContext {
    fn lint_config(&self, checks: CheckSet) -> LintConfig {
        LintConfig {
            kind: UnitKind::Mroutine,
            base: self.base_pc,
            window: Some((self.window_start, self.window_end)),
            data_bytes: self.data_bytes,
            nested_allowed: self.nested_allowed,
            budget: 4096,
            checks,
        }
    }

    fn run(&self, words: &[u32], checks: CheckSet) -> Vec<Issue> {
        lint_words(words, &self.lint_config(checks))
            .into_iter()
            .map(|d| Issue {
                severity: match d.level {
                    Level::Deny => Severity::Error,
                    Level::Warn => Severity::Warning,
                },
                offset: d.pc.wrapping_sub(self.base_pc),
                message: d.message,
            })
            .collect()
    }
}

/// Verifies an assembled mroutine with the install-gating check set.
/// Returns all findings; installation should be refused if any has
/// [`Severity::Error`].
#[must_use]
pub fn verify_routine(words: &[u32], ctx: &VerifyContext) -> Vec<Issue> {
    ctx.run(words, CheckSet::install())
}

/// Verifies an assembled mroutine with every lint check enabled,
/// including the dataflow battery (bounds, retaddr, leak, budget,
/// intercept) and dead-code warnings.
#[must_use]
pub fn lint_routine(words: &[u32], ctx: &VerifyContext) -> Vec<Issue> {
    ctx.run(words, CheckSet::all())
}

/// True if any finding is an error.
#[must_use]
pub fn has_errors(issues: &[Issue]) -> bool {
    issues.iter().any(|i| i.severity == Severity::Error)
}

#[cfg(test)]
mod tests {
    use super::*;
    use metal_asm::assemble_at;

    fn ctx(base: u32) -> VerifyContext {
        VerifyContext {
            base_pc: base,
            window_start: base & !0xFFFF,
            window_end: (base & !0xFFFF) + 0x4000,
            nested_allowed: false,
            data_bytes: 4096,
        }
    }

    fn verify_src(src: &str) -> Vec<Issue> {
        let base = 0xFFF0_0100;
        let words = assemble_at(src, base).unwrap();
        verify_routine(&words, &ctx(base))
    }

    #[test]
    fn clean_routine_passes() {
        let issues = verify_src("rmr t0, m0\n addi t0, t0, 1\n wmr m0, t0\n mexit");
        assert!(issues.is_empty(), "{issues:?}");
    }

    #[test]
    fn ecall_rejected() {
        let issues = verify_src("ecall\n mexit");
        assert!(has_errors(&issues));
        assert!(issues[0].message.contains("environment instruction"));
    }

    #[test]
    fn escaping_branch_rejected() {
        // A jal that targets normal memory (outside the MRAM window).
        let base = 0xFFF0_0100u32;
        let words = assemble_at("jal zero, . - 0x200\n mexit", base).unwrap();
        let issues = verify_routine(&words, &ctx(base));
        assert!(has_errors(&issues), "{issues:?}");
    }

    #[test]
    fn internal_loop_allowed() {
        let issues = verify_src("li t0, 4\nloop: addi t0, t0, -1\n bnez t0, loop\n mexit");
        assert!(!has_errors(&issues), "{issues:?}");
    }

    #[test]
    fn missing_mexit_warns() {
        let issues = verify_src("addi t0, t0, 1");
        assert!(!has_errors(&issues));
        assert!(issues.iter().any(|i| i.message.contains("never returns")));
    }

    #[test]
    fn nested_menter_gated() {
        let base = 0xFFF0_0100;
        let words = assemble_at("menter 5\n mexit", base).unwrap();
        let mut context = ctx(base);
        let issues = verify_routine(&words, &context);
        assert!(has_errors(&issues));
        context.nested_allowed = true;
        let issues = verify_routine(&words, &context);
        assert!(!has_errors(&issues), "{issues:?}");
    }

    #[test]
    fn illegal_word_rejected() {
        let issues = verify_routine(&[0xFFFF_FFFF], &ctx(0xFFF0_0000));
        assert!(has_errors(&issues));
    }

    #[test]
    fn full_lint_catches_oob_store() {
        let base = 0xFFF0_0100;
        let words = assemble_at("li t0, 4096\n mst a0, 0(t0)\n mexit", base).unwrap();
        let issues = lint_routine(&words, &ctx(base));
        assert!(has_errors(&issues), "{issues:?}");
        // The install set deliberately lets it through (runtime faults
        // instead): legacy behavior.
        assert!(!has_errors(&verify_routine(&words, &ctx(base))));
    }

    #[test]
    fn lint_geometry_matches_core() {
        assert_eq!(metal_lint::MRAM_BASE, crate::mram::MRAM_BASE);
        let mram = crate::mram::MramConfig::default();
        assert_eq!(metal_lint::MRAM_CODE_BYTES, mram.code_bytes);
        assert_eq!(metal_lint::MRAM_DATA_BYTES, mram.data_bytes);
    }
}
