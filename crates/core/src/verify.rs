//! Static verification of mroutines.
//!
//! "Static allocation and non-interruptibility improve performance,
//! security and reliability by eliminating potential resource exhaustion
//! and simplifying mroutine verification." (paper §2.1) The loader
//! verifies every mroutine before installing it:
//!
//! * no environment instructions (`ecall`, `mret`, `wfi`) — mroutines
//!   *are* the environment;
//! * direct control flow stays inside the mroutine code window
//!   (`jal`/branches may target shared MRAM helpers but never leave the
//!   window);
//! * nested `menter` only when the layered configuration allows it;
//! * warnings for `jalr` (targets cannot be checked statically) and for
//!   missing `mexit` reachability.

use metal_isa::insn::Insn;
use metal_isa::metal::MENTER_INDIRECT;
use metal_isa::{decode, INSN_BYTES};

/// Severity of a verification finding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Severity {
    /// Installation is refused.
    Error,
    /// Installation proceeds; the finding is reported.
    Warning,
}

/// One verification finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Issue {
    /// Severity.
    pub severity: Severity,
    /// Byte offset of the offending instruction within the routine.
    pub offset: u32,
    /// Description.
    pub message: String,
}

/// What the verifier needs to know about the installation context.
#[derive(Clone, Copy, Debug)]
pub struct VerifyContext {
    /// Base PC the routine will run at.
    pub base_pc: u32,
    /// Start of the MRAM code window.
    pub window_start: u32,
    /// End (exclusive) of the MRAM code window.
    pub window_end: u32,
    /// Whether nested `menter` from Metal mode is legal (layers > 1).
    pub nested_allowed: bool,
}

/// Verifies an assembled mroutine. Returns all findings; installation
/// should be refused if any has [`Severity::Error`].
#[must_use]
pub fn verify_routine(words: &[u32], ctx: &VerifyContext) -> Vec<Issue> {
    let mut issues = Vec::new();
    let mut saw_exit_path = false;
    for (i, &word) in words.iter().enumerate() {
        let offset = i as u32 * INSN_BYTES;
        let pc = ctx.base_pc + offset;
        let insn = match decode(word) {
            Ok(insn) => insn,
            Err(_) => {
                issues.push(Issue {
                    severity: Severity::Error,
                    offset,
                    message: format!("illegal instruction word {word:#010x}"),
                });
                continue;
            }
        };
        match insn {
            Insn::Ecall | Insn::Mret | Insn::Wfi => {
                issues.push(Issue {
                    severity: Severity::Error,
                    offset,
                    message: format!(
                        "environment instruction {:?} is not allowed in an mroutine",
                        insn
                    ),
                });
            }
            Insn::Menter { entry, .. } => {
                if !ctx.nested_allowed {
                    issues.push(Issue {
                        severity: Severity::Error,
                        offset,
                        message: "nested menter requires a layered (nested Metal) configuration"
                            .to_owned(),
                    });
                } else if entry == MENTER_INDIRECT {
                    issues.push(Issue {
                        severity: Severity::Warning,
                        offset,
                        message: "indirect nested menter cannot be checked statically".to_owned(),
                    });
                }
            }
            Insn::Mexit => {
                saw_exit_path = true;
            }
            Insn::Jal { offset: joff, .. } => {
                let target = pc.wrapping_add(joff as u32);
                if target < ctx.window_start || target >= ctx.window_end {
                    issues.push(Issue {
                        severity: Severity::Error,
                        offset,
                        message: format!(
                            "jal target {target:#010x} leaves the mroutine code window"
                        ),
                    });
                }
            }
            Insn::Branch { offset: boff, .. } => {
                let target = pc.wrapping_add(boff as u32);
                if target < ctx.window_start || target >= ctx.window_end {
                    issues.push(Issue {
                        severity: Severity::Error,
                        offset,
                        message: format!(
                            "branch target {target:#010x} leaves the mroutine code window"
                        ),
                    });
                }
            }
            Insn::Jalr { .. } => {
                issues.push(Issue {
                    severity: Severity::Warning,
                    offset,
                    message: "jalr target cannot be checked statically".to_owned(),
                });
                saw_exit_path = true; // may be a computed return
            }
            Insn::Ebreak => {
                issues.push(Issue {
                    severity: Severity::Warning,
                    offset,
                    message: "ebreak halts the machine; debug use only".to_owned(),
                });
            }
            _ => {}
        }
    }
    if !saw_exit_path && !words.is_empty() {
        issues.push(Issue {
            severity: Severity::Warning,
            offset: 0,
            message: "no mexit (or computed jump) found: the mroutine never returns".to_owned(),
        });
    }
    issues
}

/// True if any finding is an error.
#[must_use]
pub fn has_errors(issues: &[Issue]) -> bool {
    issues.iter().any(|i| i.severity == Severity::Error)
}

#[cfg(test)]
mod tests {
    use super::*;
    use metal_asm::assemble_at;

    fn ctx(base: u32) -> VerifyContext {
        VerifyContext {
            base_pc: base,
            window_start: base & !0xFFFF,
            window_end: (base & !0xFFFF) + 0x4000,
            nested_allowed: false,
        }
    }

    fn verify_src(src: &str) -> Vec<Issue> {
        let base = 0xFFF0_0100;
        let words = assemble_at(src, base).unwrap();
        verify_routine(&words, &ctx(base))
    }

    #[test]
    fn clean_routine_passes() {
        let issues = verify_src("rmr t0, m0\n addi t0, t0, 1\n wmr m0, t0\n mexit");
        assert!(issues.is_empty(), "{issues:?}");
    }

    #[test]
    fn ecall_rejected() {
        let issues = verify_src("ecall\n mexit");
        assert!(has_errors(&issues));
        assert!(issues[0].message.contains("environment instruction"));
    }

    #[test]
    fn escaping_branch_rejected() {
        // A jal that targets normal memory (outside the MRAM window).
        let base = 0xFFF0_0100u32;
        let words = assemble_at("jal zero, . - 0x200\n mexit", base).unwrap();
        let issues = verify_routine(&words, &ctx(base));
        assert!(has_errors(&issues), "{issues:?}");
    }

    #[test]
    fn internal_loop_allowed() {
        let issues = verify_src("li t0, 4\nloop: addi t0, t0, -1\n bnez t0, loop\n mexit");
        assert!(!has_errors(&issues), "{issues:?}");
    }

    #[test]
    fn missing_mexit_warns() {
        let issues = verify_src("addi t0, t0, 1");
        assert!(!has_errors(&issues));
        assert!(issues.iter().any(|i| i.message.contains("never returns")));
    }

    #[test]
    fn nested_menter_gated() {
        let base = 0xFFF0_0100;
        let words = assemble_at("menter 5\n mexit", base).unwrap();
        let mut context = ctx(base);
        let issues = verify_routine(&words, &context);
        assert!(has_errors(&issues));
        context.nested_allowed = true;
        let issues = verify_routine(&words, &context);
        assert!(!has_errors(&issues), "{issues:?}");
    }

    #[test]
    fn illegal_word_rejected() {
        let issues = verify_routine(&[0xFFFF_FFFF], &ctx(0xFFF0_0000));
        assert!(has_errors(&issues));
    }
}
