//! The Metal register file (`m0..m31`) and Metal control registers.
//!
//! "We add … a Metal register file (MReg.) containing 32 Metal exclusive
//! registers m0-m31 to store Metal's internal state" (paper §2). `m31`
//! receives the caller's return address on `menter` (Table 1). The MCR
//! space (indices ≥ 0x400) carries the event-entry metadata the
//! processor exposes: cause, faulting address, intercepted instruction
//! word, and so on.

use metal_isa::metal::Mcr;
use metal_isa::reg::MregIdx;
use metal_pipeline::state::MachineState;
use metal_pipeline::trap::TrapCause;

/// Why the current mroutine was entered; the low byte of the `mcause`
/// MCR, with event detail in bits 15:8.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EntryCause {
    /// Explicit `menter` from normal mode.
    Call,
    /// A delegated exception.
    Exception(TrapCause),
    /// A delegated interrupt.
    Interrupt(u8),
    /// An intercepted instruction.
    Intercept,
}

impl EntryCause {
    /// Kind code for `menter` calls.
    pub const KIND_CALL: u32 = 0;
    /// Kind code for delegated exceptions.
    pub const KIND_EXCEPTION: u32 = 1;
    /// Kind code for delegated interrupts.
    pub const KIND_INTERRUPT: u32 = 2;
    /// Kind code for intercepted instructions.
    pub const KIND_INTERCEPT: u32 = 3;

    /// Encodes to the `mcause` MCR value.
    #[must_use]
    pub fn encode(self) -> u32 {
        match self {
            EntryCause::Call => Self::KIND_CALL,
            EntryCause::Exception(cause) => Self::KIND_EXCEPTION | (cause.code() << 8),
            EntryCause::Interrupt(line) => Self::KIND_INTERRUPT | (u32::from(line) << 8),
            EntryCause::Intercept => Self::KIND_INTERCEPT,
        }
    }

    /// Decodes an `mcause` MCR value.
    #[must_use]
    pub fn decode(word: u32) -> Option<EntryCause> {
        match word & 0xFF {
            Self::KIND_CALL => Some(EntryCause::Call),
            Self::KIND_EXCEPTION => TrapCause::from_code(word >> 8).map(EntryCause::Exception),
            Self::KIND_INTERRUPT => Some(EntryCause::Interrupt(((word >> 8) & 0xFF) as u8)),
            Self::KIND_INTERCEPT => Some(EntryCause::Intercept),
            _ => None,
        }
    }
}

/// `mstatus` MCR bit: interception master enable.
pub const MSTATUS_INTERCEPT_ENABLE: u32 = 1 << 0;

/// The Metal register file plus writable MCR state.
#[derive(Clone, Debug)]
pub struct MregFile {
    regs: [u32; 32],
    /// `mcause` MCR.
    pub mcause: u32,
    /// `mbadaddr` MCR.
    pub mbadaddr: u32,
    /// `minsn` MCR (intercepted instruction word).
    pub minsn: u32,
    /// `mstatus` MCR (intercept enable, active layer).
    pub mstatus: u32,
    /// `mscratch` MCR.
    pub mscratch: u32,
    /// `mentry` MCR (entry number of the running mroutine).
    pub mentry: u32,
    /// Software interrupt-pending latch (set on delegation, cleared by
    /// `miack`).
    pub soft_ipend: u32,
}

impl MregFile {
    /// All-zero reset state.
    #[must_use]
    pub fn new() -> MregFile {
        MregFile {
            regs: [0; 32],
            mcause: 0,
            mbadaddr: 0,
            minsn: 0,
            mstatus: 0,
            mscratch: 0,
            mentry: 0,
            soft_ipend: 0,
        }
    }

    /// Reads Metal register `mN`.
    #[must_use]
    pub fn get(&self, n: usize) -> u32 {
        self.regs[n & 31]
    }

    /// Writes Metal register `mN`.
    pub fn set(&mut self, n: usize, value: u32) {
        self.regs[n & 31] = value;
    }

    /// The `m31` return address.
    #[must_use]
    pub fn return_address(&self) -> u32 {
        self.regs[31]
    }

    /// Executes `rmr`: read a Metal register or MCR.
    ///
    /// Unknown MCR indices read as zero (matching how the prototype's
    /// unused register file slots would read).
    #[must_use]
    pub fn read(&self, idx: MregIdx, state: &MachineState) -> u32 {
        if let Some(n) = idx.mreg_index() {
            return self.regs[n];
        }
        match Mcr::from_index(idx) {
            Some(Mcr::Mcause) => self.mcause,
            Some(Mcr::Mbadaddr) => self.mbadaddr,
            Some(Mcr::Minsn) => self.minsn,
            Some(Mcr::Mstatus) => self.mstatus,
            Some(Mcr::MasidCur) => u32::from(state.asid),
            Some(Mcr::Mclock) => state.perf.cycles as u32,
            Some(Mcr::Mentry) => self.mentry,
            Some(Mcr::Mipending) => state.perf.mip_snapshot | self.soft_ipend,
            Some(Mcr::Minstret) => state.perf.instret as u32,
            Some(Mcr::Mscratch) => self.mscratch,
            None => 0,
        }
    }

    /// Executes `wmr`: write a Metal register or MCR. Writes to
    /// read-only or unknown MCRs are ignored.
    pub fn write(&mut self, idx: MregIdx, value: u32) {
        if let Some(n) = idx.mreg_index() {
            self.regs[n] = value;
            return;
        }
        match Mcr::from_index(idx) {
            Some(Mcr::Mcause) => self.mcause = value,
            Some(Mcr::Mbadaddr) => self.mbadaddr = value,
            Some(Mcr::Minsn) => self.minsn = value,
            Some(Mcr::Mstatus) => self.mstatus = value,
            Some(Mcr::Mscratch) => self.mscratch = value,
            Some(mcr) if mcr.read_only() => {}
            _ => {}
        }
    }
}

impl Default for MregFile {
    fn default() -> MregFile {
        MregFile::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metal_pipeline::state::CoreConfig;

    #[test]
    fn entry_cause_roundtrip() {
        let causes = [
            EntryCause::Call,
            EntryCause::Exception(TrapCause::LoadPageFault),
            EntryCause::Exception(TrapCause::Ecall),
            EntryCause::Interrupt(7),
            EntryCause::Intercept,
        ];
        for c in causes {
            assert_eq!(EntryCause::decode(c.encode()), Some(c), "{c:?}");
        }
        assert_eq!(EntryCause::decode(0xFF), None);
    }

    #[test]
    fn mreg_read_write() {
        let mut f = MregFile::new();
        let state = MachineState::new(&CoreConfig::default());
        f.set(0, 7);
        f.set(31, 0x1000);
        assert_eq!(f.get(0), 7);
        assert_eq!(f.return_address(), 0x1000);
        let m0 = MregIdx::mreg(0).unwrap();
        assert_eq!(f.read(m0, &state), 7);
        f.write(m0, 9);
        assert_eq!(f.get(0), 9);
    }

    #[test]
    fn mcr_access() {
        let mut f = MregFile::new();
        let mut state = MachineState::new(&CoreConfig::default());
        state.perf.cycles = 1234;
        state.asid = 5;
        f.write(Mcr::Mcause.index(), 0x42);
        assert_eq!(f.read(Mcr::Mcause.index(), &state), 0x42);
        assert_eq!(f.read(Mcr::Mclock.index(), &state), 1234);
        assert_eq!(f.read(Mcr::MasidCur.index(), &state), 5);
        // Read-only MCR writes ignored.
        f.write(Mcr::Mclock.index(), 0);
        assert_eq!(f.read(Mcr::Mclock.index(), &state), 1234);
        // Unknown MCR reads as zero.
        assert_eq!(f.read(MregIdx::from_field(0x7FF), &state), 0);
    }
}
