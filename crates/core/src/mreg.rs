//! The Metal register file (`m0..m31`) and Metal control registers.
//!
//! "We add … a Metal register file (MReg.) containing 32 Metal exclusive
//! registers m0-m31 to store Metal's internal state" (paper §2). `m31`
//! receives the caller's return address on `menter` (Table 1). The MCR
//! space (indices ≥ 0x400) carries the event-entry metadata the
//! processor exposes: cause, faulting address, intercepted instruction
//! word, and so on.

use crate::ecc::{EccCheck, EccMode};
use metal_isa::metal::Mcr;
use metal_isa::reg::MregIdx;
use metal_pipeline::state::MachineState;
use metal_pipeline::trap::TrapCause;

/// Why the current mroutine was entered; the low byte of the `mcause`
/// MCR, with event detail in bits 15:8.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EntryCause {
    /// Explicit `menter` from normal mode.
    Call,
    /// A delegated exception.
    Exception(TrapCause),
    /// A delegated interrupt.
    Interrupt(u8),
    /// An intercepted instruction.
    Intercept,
}

impl EntryCause {
    /// Kind code for `menter` calls.
    pub const KIND_CALL: u32 = 0;
    /// Kind code for delegated exceptions.
    pub const KIND_EXCEPTION: u32 = 1;
    /// Kind code for delegated interrupts.
    pub const KIND_INTERRUPT: u32 = 2;
    /// Kind code for intercepted instructions.
    pub const KIND_INTERCEPT: u32 = 3;

    /// Encodes to the `mcause` MCR value.
    #[must_use]
    pub fn encode(self) -> u32 {
        match self {
            EntryCause::Call => Self::KIND_CALL,
            EntryCause::Exception(cause) => Self::KIND_EXCEPTION | (cause.code() << 8),
            EntryCause::Interrupt(line) => Self::KIND_INTERRUPT | (u32::from(line) << 8),
            EntryCause::Intercept => Self::KIND_INTERCEPT,
        }
    }

    /// Decodes an `mcause` MCR value.
    #[must_use]
    pub fn decode(word: u32) -> Option<EntryCause> {
        match word & 0xFF {
            Self::KIND_CALL => Some(EntryCause::Call),
            Self::KIND_EXCEPTION => TrapCause::from_code(word >> 8).map(EntryCause::Exception),
            Self::KIND_INTERRUPT => Some(EntryCause::Interrupt(((word >> 8) & 0xFF) as u8)),
            Self::KIND_INTERCEPT => Some(EntryCause::Intercept),
            _ => None,
        }
    }
}

/// `mstatus` MCR bit: interception master enable.
pub const MSTATUS_INTERCEPT_ENABLE: u32 = 1 << 0;

/// The Metal register file plus writable MCR state.
#[derive(Clone, Debug)]
pub struct MregFile {
    regs: [u32; 32],
    /// Per-register check bits (see [`EccMode`]); recomputed on every
    /// legitimate write, left stale by fault injection.
    check: [u8; 32],
    /// Check-bit scheme protecting the register file.
    ecc: EccMode,
    /// `mcause` MCR.
    pub mcause: u32,
    /// `mbadaddr` MCR.
    pub mbadaddr: u32,
    /// `minsn` MCR (intercepted instruction word).
    pub minsn: u32,
    /// `mstatus` MCR (intercept enable, active layer).
    pub mstatus: u32,
    /// `mscratch` MCR.
    pub mscratch: u32,
    /// `mentry` MCR (entry number of the running mroutine).
    pub mentry: u32,
    /// Software interrupt-pending latch (set on delegation, cleared by
    /// `miack`).
    pub soft_ipend: u32,
}

impl MregFile {
    /// All-zero reset state.
    #[must_use]
    pub fn new() -> MregFile {
        MregFile {
            regs: [0; 32],
            check: [0; 32],
            ecc: EccMode::None,
            mcause: 0,
            mbadaddr: 0,
            minsn: 0,
            mstatus: 0,
            mscratch: 0,
            mentry: 0,
            soft_ipend: 0,
        }
    }

    /// The active check-bit scheme.
    #[must_use]
    pub fn ecc(&self) -> EccMode {
        self.ecc
    }

    /// Switches the check-bit scheme, recomputing every register's
    /// check bits from its current (trusted) value.
    pub fn set_ecc(&mut self, mode: EccMode) {
        self.ecc = mode;
        for n in 0..32 {
            self.check[n] = mode.encode(self.regs[n]);
        }
    }

    /// Reads Metal register `mN`.
    #[must_use]
    pub fn get(&self, n: usize) -> u32 {
        self.regs[n & 31]
    }

    /// Writes Metal register `mN`.
    pub fn set(&mut self, n: usize, value: u32) {
        self.regs[n & 31] = value;
        self.check[n & 31] = self.ecc.encode(value);
    }

    /// Validates `mN` against its check bits. `None` = clean (or ECC
    /// off); `Some(syndrome)` = machine check.
    #[must_use]
    pub fn verify(&self, n: usize) -> Option<u8> {
        match self.ecc.check(self.regs[n & 31], self.check[n & 31]) {
            EccCheck::Clean => None,
            EccCheck::Error { syndrome, .. } => Some(syndrome),
        }
    }

    /// Flips one bit of `mN` (primary flop only; check bits stay
    /// stale, which is what makes the flip detectable).
    pub fn inject_bit(&mut self, n: usize, bit: u8) {
        self.regs[n & 31] ^= 1 << (bit & 31);
    }

    /// Attempts syndrome correction of `mN`: with SECDED a single-bit
    /// error is repaired in place. Returns `false` when the check bits
    /// cannot locate the error (parity, double-bit) — the register has
    /// no golden copy, so such faults are uncorrectable.
    pub fn scrub(&mut self, n: usize) -> bool {
        match self.ecc.check(self.regs[n & 31], self.check[n & 31]) {
            EccCheck::Clean => true,
            EccCheck::Error {
                corrected: Some(word),
                ..
            } => {
                self.regs[n & 31] = word;
                self.check[n & 31] = self.ecc.encode(word);
                true
            }
            EccCheck::Error {
                corrected: None, ..
            } => false,
        }
    }

    /// Raw `(value, check-bits)` pair of `mN`, for fault-transparent
    /// banking across machine-check delivery (a plain [`Self::get`] +
    /// [`Self::set`] round trip would re-encode the check bits and
    /// launder an undetected corruption into a "clean" word).
    #[must_use]
    pub fn raw(&self, n: usize) -> (u32, u8) {
        (self.regs[n & 31], self.check[n & 31])
    }

    /// Restores a pair captured by [`Self::raw`]; check bits are kept
    /// verbatim, not recomputed.
    pub fn set_raw(&mut self, n: usize, raw: (u32, u8)) {
        self.regs[n & 31] = raw.0;
        self.check[n & 31] = raw.1;
    }

    /// Repairs a banked raw pair: `Some` is the (possibly corrected)
    /// clean pair, `None` means the error is not locatable.
    #[must_use]
    pub fn scrub_raw(&self, raw: (u32, u8)) -> Option<(u32, u8)> {
        match self.ecc.check(raw.0, raw.1) {
            EccCheck::Clean => Some(raw),
            EccCheck::Error {
                corrected: Some(word),
                ..
            } => Some((word, self.ecc.encode(word))),
            EccCheck::Error {
                corrected: None, ..
            } => None,
        }
    }

    /// The `m31` return address.
    #[must_use]
    pub fn return_address(&self) -> u32 {
        self.regs[31]
    }

    /// Executes `rmr`: read a Metal register or MCR.
    ///
    /// Unknown MCR indices read as zero (matching how the prototype's
    /// unused register file slots would read).
    #[must_use]
    pub fn read(&self, idx: MregIdx, state: &MachineState) -> u32 {
        if let Some(n) = idx.mreg_index() {
            return self.regs[n];
        }
        match Mcr::from_index(idx) {
            Some(Mcr::Mcause) => self.mcause,
            Some(Mcr::Mbadaddr) => self.mbadaddr,
            Some(Mcr::Minsn) => self.minsn,
            Some(Mcr::Mstatus) => self.mstatus,
            Some(Mcr::MasidCur) => u32::from(state.asid),
            Some(Mcr::Mclock) => state.perf.cycles as u32,
            Some(Mcr::Mentry) => self.mentry,
            Some(Mcr::Mipending) => state.perf.mip_snapshot | self.soft_ipend,
            Some(Mcr::Minstret) => state.perf.instret as u32,
            Some(Mcr::Mscratch) => self.mscratch,
            // Write-sensitive: the abort side effect happens in the
            // Metal extension's `wmr` intercept; reads see nothing.
            Some(Mcr::Mabort) => 0,
            None => 0,
        }
    }

    /// Executes `wmr`: write a Metal register or MCR. Writes to
    /// read-only or unknown MCRs are ignored.
    pub fn write(&mut self, idx: MregIdx, value: u32) {
        if let Some(n) = idx.mreg_index() {
            // The write port computes check bits alongside the data,
            // like `set` — a written register always verifies clean.
            self.set(n, value);
            return;
        }
        match Mcr::from_index(idx) {
            Some(Mcr::Mcause) => self.mcause = value,
            Some(Mcr::Mbadaddr) => self.mbadaddr = value,
            Some(Mcr::Minsn) => self.minsn = value,
            Some(Mcr::Mstatus) => self.mstatus = value,
            Some(Mcr::Mscratch) => self.mscratch = value,
            Some(mcr) if mcr.read_only() => {}
            _ => {}
        }
    }
}

impl Default for MregFile {
    fn default() -> MregFile {
        MregFile::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metal_pipeline::state::CoreConfig;

    #[test]
    fn entry_cause_roundtrip() {
        let causes = [
            EntryCause::Call,
            EntryCause::Exception(TrapCause::LoadPageFault),
            EntryCause::Exception(TrapCause::Ecall),
            EntryCause::Interrupt(7),
            EntryCause::Intercept,
            EntryCause::Exception(TrapCause::MachineCheck {
                site: metal_trace::FaultSite::Mreg,
                syndrome: 0x80,
            }),
        ];
        for c in causes {
            assert_eq!(EntryCause::decode(c.encode()), Some(c), "{c:?}");
        }
        assert_eq!(EntryCause::decode(0xFF), None);
    }

    #[test]
    fn mreg_read_write() {
        let mut f = MregFile::new();
        let state = MachineState::new(&CoreConfig::default());
        f.set(0, 7);
        f.set(31, 0x1000);
        assert_eq!(f.get(0), 7);
        assert_eq!(f.return_address(), 0x1000);
        let m0 = MregIdx::mreg(0).unwrap();
        assert_eq!(f.read(m0, &state), 7);
        f.write(m0, 9);
        assert_eq!(f.get(0), 9);
    }

    #[test]
    fn mcr_access() {
        let mut f = MregFile::new();
        let mut state = MachineState::new(&CoreConfig::default());
        state.perf.cycles = 1234;
        state.asid = 5;
        f.write(Mcr::Mcause.index(), 0x42);
        assert_eq!(f.read(Mcr::Mcause.index(), &state), 0x42);
        assert_eq!(f.read(Mcr::Mclock.index(), &state), 1234);
        assert_eq!(f.read(Mcr::MasidCur.index(), &state), 5);
        // Read-only MCR writes ignored.
        f.write(Mcr::Mclock.index(), 0);
        assert_eq!(f.read(Mcr::Mclock.index(), &state), 1234);
        // Unknown MCR reads as zero.
        assert_eq!(f.read(MregIdx::from_field(0x7FF), &state), 0);
    }

    #[test]
    fn mreg_inject_verify_scrub() {
        let mut f = MregFile::new();
        f.set_ecc(EccMode::Secded);
        f.set(5, 0xDEAD_BEEF);
        assert_eq!(f.verify(5), None);
        f.inject_bit(5, 13);
        let syn = f.verify(5).expect("flip detected");
        assert_eq!(syn & 0x80, 0, "single-bit syndrome is locatable");
        assert!(f.scrub(5));
        assert_eq!(f.get(5), 0xDEAD_BEEF);
        assert_eq!(f.verify(5), None);
        // Double flip: detected but not repairable in place.
        f.inject_bit(5, 1);
        f.inject_bit(5, 2);
        assert!(f.verify(5).is_some());
        assert!(!f.scrub(5));
    }

    #[test]
    fn mreg_ecc_off_never_verifies() {
        let mut f = MregFile::new();
        f.set(3, 0x1234);
        f.inject_bit(3, 0);
        assert_eq!(f.verify(3), None);
    }
}
