//! The Metal extension: operation modes, fast transitions, architectural
//! feature dispatch, interception, and trap delegation.
//!
//! This type implements [`metal_pipeline::Hooks`] and is the heart of
//! the reproduction:
//!
//! * **Metal mode** (paper §2): a privileged operation mode orthogonal
//!   to any OS-visible privilege level. `menter` is deliberately *not*
//!   privileged; everything else in the extension is Metal-mode-only.
//! * **Fast transitions** (§2.2): `menter`/`mexit` are replaced in the
//!   decode stage by the first instruction of the target stream, with
//!   MRAM supplying mroutine code at collocated-RAM latency.
//! * **Architectural features** (§2.3): physical memory access, TLB
//!   modification, ASIDs, page keys, interception, and interrupt state,
//!   all exposed through `march.*` sub-operations executed at EX.
//! * **Delegation** (§2.3): exceptions and interrupts route to
//!   mroutines; undelegated causes fall back to the baseline path.
//! * **Non-interruptibility** (§2.1): interrupts are held while an
//!   mroutine runs; a fault inside an mroutine is fatal (mroutines are
//!   statically verified instead — see [`crate::verify`]).
//! * **Nested layers** (§3.5): interception searches higher layers
//!   first and propagates downward; interrupt delegation searches lower
//!   layers first.

use crate::delegate::DelegationMap;
use crate::ecc::EccMode;
use crate::intercept::InterceptTable;
use crate::mram::{Mram, MramConfig, MRAM_BASE};
use crate::mreg::{EntryCause, MregFile, MSTATUS_INTERCEPT_ENABLE};
use crate::MetalError;
use metal_isa::insn::Insn;
use metal_isa::metal::{MarchOp, Mcr, MENTER_INDIRECT};
use metal_isa::reg::Reg;
use metal_isa::{decode_to, DecodedInsn};
use metal_pipeline::hooks::{CustomExec, DecodeOutcome, Hooks, TrapDisposition, TrapEvent};
use metal_pipeline::state::{HaltReason, MachineState};
use metal_pipeline::trap::{Trap, TrapCause};
use metal_trace::{
    EventKind, FaultSite, MetricsSnapshot, RecoveryAction, TransitionCause, TransitionTable,
};

/// Where mroutine code physically lives — the ablation axis of
/// experiment E1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DispatchStyle {
    /// MRAM collocated with instruction fetch (the Metal design point).
    Mram,
    /// PALcode-style: mroutines live in main memory at `base` and are
    /// fetched through the normal I-cache path (the Alpha design the
    /// paper cites at ~18 cycles per no-op call, §5).
    Palcode {
        /// Physical base address of the mroutine image.
        base: u32,
    },
}

/// Metal configuration.
#[derive(Clone, Copy, Debug)]
pub struct MetalConfig {
    /// MRAM geometry.
    pub mram: MramConfig,
    /// Where mroutine code lives.
    pub dispatch: DispatchStyle,
    /// Model the decode-stage replacement fast path (§2.2). When false,
    /// `menter`/`mexit` cost a full redirect flush — the second ablation
    /// axis of E1.
    pub decode_replacement: bool,
    /// Number of nested-Metal layers (1 = the base design).
    pub layers: usize,
    /// Extra dispatch cycles charged for PALcode-style entry (pipeline
    /// drain on the Alpha).
    pub palcode_drain: u32,
    /// Check-bit scheme protecting MRAM words and the Metal register
    /// file. Detected errors raise [`TrapCause::MachineCheck`].
    pub ecc: EccMode,
}

impl Default for MetalConfig {
    fn default() -> MetalConfig {
        MetalConfig {
            mram: MramConfig::default(),
            dispatch: DispatchStyle::Mram,
            decode_replacement: true,
            layers: 1,
            palcode_drain: 2,
            ecc: EccMode::None,
        }
    }
}

/// One nested-Metal layer: its interception rules and delegation tables.
#[derive(Clone, Debug, Default)]
pub struct Layer {
    /// Interception rules of this layer.
    pub intercepts: InterceptTable,
    /// Trap delegation of this layer.
    pub delegation: DelegationMap,
}

/// Execution mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Normal (application/OS) execution.
    Normal,
    /// Executing an mroutine on behalf of `layer`.
    Metal {
        /// The layer whose tables triggered entry (intercept chaining
        /// searches strictly below this).
        layer: usize,
    },
}

/// Event counters for the extension.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MetalStats {
    /// `menter` transitions.
    pub menters: u64,
    /// `mexit` transitions.
    pub mexits: u64,
    /// Intercepted instructions.
    pub intercepts: u64,
    /// Exceptions delivered to mroutines.
    pub delegated_exceptions: u64,
    /// Interrupts delivered to mroutines.
    pub delegated_interrupts: u64,
    /// Nested `menter` calls from Metal mode.
    pub nested_calls: u64,
    /// Machine checks raised by check-bit verification.
    pub machine_checks: u64,
    /// Successful `march.mscrub` repairs.
    pub scrubs: u64,
}

/// One in-flight transition on the entry stack.
#[derive(Clone, Copy, Debug)]
struct EntryFrame {
    /// Entry-table slot.
    entry: u8,
    /// Entry cycle, for latency attribution at `mexit`.
    entered_at: u64,
    /// True for machine-check delivery frames: a further machine check
    /// while one is live is fatal (no recursive recovery).
    mcheck: bool,
    /// The interrupted mroutine's `m31` as a raw (value, check-bits)
    /// pair, banked when a machine check preempts Metal mode; restored
    /// verbatim at `mexit`.
    saved_m31: Option<(u32, u8)>,
}

/// The Metal extension state.
#[derive(Clone, Debug)]
pub struct Metal {
    /// The MRAM (code + data + entry table).
    pub mram: Mram,
    /// Metal registers and control registers.
    pub mregs: MregFile,
    /// Nested layers (index 0 is the lowest/outermost, e.g. the VMM).
    pub layers: Vec<Layer>,
    /// Event counters.
    pub stats: MetalStats,
    /// Per-mroutine transition accounting: entry counts and enter→exit
    /// latency histograms, keyed by entry-table slot.
    pub transitions: TransitionTable,
    config: MetalConfig,
    /// Stack of Metal-mode contexts (the layer each entry executes on
    /// behalf of). Empty = normal mode. Chained intercepts and nested
    /// `menter` push; `mexit` pops — hardware tracks the mode nesting,
    /// while saving/restoring `m31` across nested entries is software's
    /// responsibility (the reentrancy requirement of paper §3.5).
    mode_stack: Vec<usize>,
    /// Parallel to `mode_stack`: the entry-table slot and entry cycle of
    /// each in-flight transition, for latency attribution at `mexit`.
    entry_stack: Vec<EntryFrame>,
    /// Site and word/register index of the last delivered machine
    /// check — the implicit operand of `march.mscrub`.
    last_mcheck: Option<(FaultSite, u32)>,
    /// Layer whose tables `mintercept`/`mlayer` currently target, and
    /// the layer attributed to `menter` entries.
    active_layer: usize,
}

impl Metal {
    /// Creates the extension with no mroutines installed (use
    /// [`crate::loader::MetalBuilder`] for the full flow).
    #[must_use]
    pub fn new(config: MetalConfig) -> Metal {
        let layers = config.layers.max(1);
        let mut mram = Mram::new(config.mram);
        mram.set_ecc(config.ecc);
        let mut mregs = MregFile::new();
        mregs.set_ecc(config.ecc);
        Metal {
            mram,
            mregs,
            layers: vec![Layer::default(); layers],
            stats: MetalStats::default(),
            transitions: TransitionTable::new(),
            config,
            mode_stack: Vec::new(),
            entry_stack: Vec::new(),
            last_mcheck: None,
            active_layer: layers - 1,
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &MetalConfig {
        &self.config
    }

    /// Current operation mode.
    #[must_use]
    pub fn mode(&self) -> Mode {
        match self.mode_stack.last() {
            Some(&layer) => Mode::Metal { layer },
            None => Mode::Normal,
        }
    }

    /// Nesting depth (0 = normal mode).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.mode_stack.len()
    }

    /// The layer new `menter` entries and table programming target.
    #[must_use]
    pub fn active_layer(&self) -> usize {
        self.active_layer
    }

    /// Sets the active layer (host-side; guest code uses `mlayer`).
    pub fn set_active_layer(&mut self, layer: usize) {
        self.active_layer = layer.min(self.layers.len() - 1);
    }

    /// Convenience: the lowest layer's delegation map (the common case
    /// for single-layer systems).
    pub fn delegation_mut(&mut self) -> &mut DelegationMap {
        &mut self.layers[0].delegation
    }

    /// PC of an entry's first instruction under the configured dispatch
    /// style.
    #[must_use]
    pub fn entry_pc(&self, entry: u8) -> Option<u32> {
        let info = self.mram.entry(entry)?;
        Some(match self.config.dispatch {
            DispatchStyle::Mram => MRAM_BASE + info.offset,
            DispatchStyle::Palcode { base } => base + info.offset,
        })
    }

    /// Reads the first word of an entry's code and the decode-stall its
    /// dispatch costs.
    fn dispatch_fetch(&mut self, state: &mut MachineState, pc: u32) -> Result<(u32, u32), Trap> {
        match self.config.dispatch {
            DispatchStyle::Mram => {
                if let Some(trap) = self.verify_mram_code(pc) {
                    return Err(trap);
                }
                let word = self
                    .mram
                    .code_word(pc)
                    .map_err(|_| Trap::new(TrapCause::InsnAccessFault, pc))?;
                Ok((word, self.mram.fetch_latency().saturating_sub(1)))
            }
            DispatchStyle::Palcode { .. } => {
                // PALcode runs with instruction translation disabled
                // (as on the Alpha): fetch physically through the
                // I-cache path.
                let (word, latency) = Self::palcode_fetch(state, pc)?;
                Ok((word, latency.saturating_sub(1) + self.config.palcode_drain))
            }
        }
    }

    /// Physical (untranslated) fetch through the I-cache, used for
    /// PALcode-style mroutine code.
    fn palcode_fetch(state: &mut MachineState, pc: u32) -> Result<(u32, u32), Trap> {
        let word = state
            .bus
            .read_u32(pc)
            .map_err(|e| Trap::new(TrapCause::InsnAccessFault, e.addr()))?;
        let latency = state.icache.access(pc);
        Ok((word, latency))
    }

    /// True if `pc` lies in the PALcode image region.
    fn in_palcode(&self, pc: u32) -> bool {
        match self.config.dispatch {
            DispatchStyle::Palcode { base } => {
                pc >= base && pc < base + self.config.mram.code_bytes
            }
            DispatchStyle::Mram => false,
        }
    }

    /// Enters Metal mode for `cause` at `entry`, returning the decode
    /// replacement. `return_pc` is stored in `m31`.
    fn enter(
        &mut self,
        state: &mut MachineState,
        entry: u8,
        cause: EntryCause,
        return_pc: u32,
    ) -> Result<DecodeOutcome, Trap> {
        let Some(pc) = self.entry_pc(entry) else {
            return Err(Trap::new(TrapCause::IllegalInstruction, u32::from(entry)));
        };
        let (word, mut stall) = self.dispatch_fetch(state, pc)?;
        if !self.config.decode_replacement {
            stall += 2; // full redirect instead of in-slot replacement
        }
        self.mregs.set(31, return_pc);
        self.mregs.mcause = cause.encode();
        self.mregs.mentry = u32::from(entry);
        let (layer, transition_cause) = match self.mode() {
            Mode::Normal => (
                self.active_layer,
                match cause {
                    EntryCause::Intercept => TransitionCause::Intercept,
                    _ => TransitionCause::Call,
                },
            ),
            Mode::Metal { layer } => (
                layer,
                match cause {
                    EntryCause::Intercept => TransitionCause::Intercept,
                    _ => TransitionCause::NestedCall,
                },
            ),
        };
        self.mode_stack.push(layer);
        self.transitions.record_entry(entry);
        self.entry_stack.push(EntryFrame {
            entry,
            entered_at: state.perf.cycles,
            mcheck: false,
            saved_m31: None,
        });
        state.trace.emit(EventKind::MEnter {
            entry,
            cause: transition_cause,
            pc,
        });
        Ok(DecodeOutcome::Replace {
            word,
            pc,
            next_fetch: pc.wrapping_add(4),
            stall,
        })
    }

    /// The entry that intercepts `word` when executing in `mode`, if any.
    fn intercept_lookup(&self, word: u32) -> Option<(u8, usize)> {
        if self.mregs.mstatus & MSTATUS_INTERCEPT_ENABLE == 0 {
            return None;
        }
        let upper = match self.mode() {
            // Normal mode: all layers, highest first (paper §3.5).
            Mode::Normal => self.layers.len(),
            // Metal mode at layer L: only strictly lower layers — the
            // downward propagation rule.
            Mode::Metal { layer } => layer,
        };
        (0..upper)
            .rev()
            .find_map(|l| self.layers[l].intercepts.lookup(word).map(|e| (e, l)))
    }

    /// Delegation lookup: lowest layer first ("interrupts propagate from
    /// lower to higher layers", §3.5; exceptions likewise reach the
    /// outermost software first, as with nested page tables).
    fn delegation_lookup(&self, cause: TrapCause) -> Option<(u8, usize)> {
        (0..self.layers.len()).find_map(|l| self.layers[l].delegation.lookup(cause).map(|e| (e, l)))
    }

    /// True while a machine-check recovery mroutine is on the stack.
    fn in_mcheck(&self) -> bool {
        self.entry_stack.iter().any(|f| f.mcheck)
    }

    /// Check-bit validation of an MRAM code fetch; `Some` is the
    /// machine-check trap to raise instead of using the word.
    fn verify_mram_code(&self, pc: u32) -> Option<Trap> {
        let syndrome = self.mram.code_verify(pc)?;
        Some(Trap::new(
            TrapCause::MachineCheck {
                site: FaultSite::MramCode,
                syndrome,
            },
            pc,
        ))
    }
}

impl Hooks for Metal {
    fn fetch(&mut self, state: &mut MachineState, pc: u32) -> Option<Result<(u32, u32), Trap>> {
        // PALcode-style mroutines execute with translation off.
        if self.in_palcode(pc) && self.mode() != Mode::Normal {
            return Some(Self::palcode_fetch(state, pc));
        }
        if !self.mram.contains_pc(pc) {
            return None;
        }
        // MRAM is executable only in Metal mode; normal-mode jumps into
        // the window fault.
        if self.mode() == Mode::Normal {
            return Some(Err(Trap::new(TrapCause::InsnAccessFault, pc)));
        }
        if let Some(trap) = self.verify_mram_code(pc) {
            return Some(Err(trap));
        }
        Some(
            self.mram
                .code_word(pc)
                .map(|word| (word, self.mram.fetch_latency()))
                .map_err(|_| Trap::new(TrapCause::InsnAccessFault, pc)),
        )
    }

    fn fetch_decoded(
        &mut self,
        state: &mut MachineState,
        pc: u32,
    ) -> Option<Result<(DecodedInsn, u32), Trap>> {
        if self.in_palcode(pc) && self.mode() != Mode::Normal {
            return Some(Self::palcode_fetch(state, pc).map(|(word, lat)| (decode_to(word), lat)));
        }
        if !self.mram.contains_pc(pc) {
            return None;
        }
        if self.mode() == Mode::Normal {
            return Some(Err(Trap::new(TrapCause::InsnAccessFault, pc)));
        }
        if let Some(trap) = self.verify_mram_code(pc) {
            return Some(Err(trap));
        }
        // MRAM code is pre-decoded at install time; fetches from the
        // window never pay a per-cycle decode.
        Some(
            self.mram
                .code_decoded(pc)
                .map(|decoded| (decoded, self.mram.fetch_latency()))
                .map_err(|_| Trap::new(TrapCause::InsnAccessFault, pc)),
        )
    }

    fn decode_is_sensitive(&self, _state: &MachineState, word: u32, insn: &Insn) -> bool {
        matches!(insn, Insn::Menter { .. } | Insn::Mexit) || self.intercept_lookup(word).is_some()
    }

    fn decode(
        &mut self,
        state: &mut MachineState,
        pc: u32,
        word: u32,
        insn: &Insn,
    ) -> DecodeOutcome {
        // Interception first: it applies to ordinary instructions.
        if !insn.is_metal() {
            if let Some((entry, layer)) = self.intercept_lookup(word) {
                self.stats.intercepts += 1;
                // m31 = the intercepted instruction itself: the handler
                // advances it past the instruction after emulating, or
                // leaves it to re-execute.
                self.mregs.minsn = word;
                return match self.enter(state, entry, EntryCause::Intercept, pc) {
                    Ok(outcome) => {
                        // Execution is attributed to the layer owning the
                        // matched rule, so chained intercepts keep
                        // propagating strictly downward.
                        if let Some(top) = self.mode_stack.last_mut() {
                            *top = layer;
                        }
                        outcome
                    }
                    Err(trap) => DecodeOutcome::Fault { trap, pc: None },
                };
            }
            return DecodeOutcome::Pass;
        }
        match (*insn, self.mode()) {
            (Insn::Menter { rs1, entry }, mode) => {
                let entry = if entry == MENTER_INDIRECT {
                    // Register-indirect entry; the pipeline's decode
                    // interlock guarantees rs1 is not in flight.
                    (state.regs.get(rs1) & 0x3F) as u8
                } else {
                    entry as u8
                };
                if mode != Mode::Normal {
                    if self.config.layers <= 1 {
                        // Nested calls need the layered design.
                        return DecodeOutcome::Fault {
                            trap: Trap::illegal(word),
                            pc: None,
                        };
                    }
                    self.stats.nested_calls += 1;
                } else {
                    self.stats.menters += 1;
                }
                match self.enter(state, entry, EntryCause::Call, pc.wrapping_add(4)) {
                    Ok(outcome) => outcome,
                    Err(trap) => DecodeOutcome::Fault { trap, pc: None },
                }
            }
            (Insn::Mexit, Mode::Metal { .. }) => {
                // A corrupted return address must be caught before it
                // is consumed. The frame stays intact, so after the
                // recovery mroutine scrubs `m31` this mexit retries.
                if let Some(syndrome) = self.mregs.verify(31) {
                    return DecodeOutcome::Fault {
                        trap: Trap::new(
                            TrapCause::MachineCheck {
                                site: FaultSite::Mreg,
                                syndrome,
                            },
                            31,
                        ),
                        pc: None,
                    };
                }
                let target = self.mregs.return_address();
                self.stats.mexits += 1;
                self.mode_stack.pop();
                if let Some(frame) = self.entry_stack.pop() {
                    self.transitions.record_exit(
                        frame.entry,
                        state.perf.cycles.saturating_sub(frame.entered_at),
                    );
                    state.trace.emit(EventKind::MExit {
                        entry: frame.entry,
                        target,
                    });
                    if let Some(banked) = frame.saved_m31 {
                        self.mregs.set_raw(31, banked);
                    }
                }
                // A nested mexit unwinds into the *outer mroutine*, whose
                // code lives in MRAM; only the outermost mexit returns to
                // the normal fetch path.
                let fetched = if self.mram.contains_pc(target) {
                    if self.mode() == Mode::Normal {
                        Err(Trap::new(TrapCause::InsnAccessFault, target))
                    } else if let Some(trap) = self.verify_mram_code(target) {
                        Err(trap)
                    } else {
                        self.mram
                            .code_word(target)
                            .map(|word| (word, self.mram.fetch_latency()))
                            .map_err(|_| Trap::new(TrapCause::InsnAccessFault, target))
                    }
                } else if self.in_palcode(target) && self.mode() != Mode::Normal {
                    Self::palcode_fetch(state, target)
                } else {
                    state.fetch(target)
                };
                match fetched {
                    Ok((word, latency)) => {
                        let mut stall = latency.saturating_sub(1);
                        if !self.config.decode_replacement {
                            stall += 2;
                        }
                        DecodeOutcome::Replace {
                            word,
                            pc: target,
                            next_fetch: target.wrapping_add(4),
                            stall,
                        }
                    }
                    // The return fetch faulted: the fault belongs to the
                    // return address, taken in normal mode.
                    Err(trap) => DecodeOutcome::Fault {
                        trap,
                        pc: Some(target),
                    },
                }
            }
            // Metal-mode-only instructions in normal mode trap (Table 1).
            (_, Mode::Normal) => DecodeOutcome::Fault {
                trap: Trap::illegal(word),
                pc: None,
            },
            // rmr/wmr/mld/mst/march in Metal mode execute at EX.
            _ => DecodeOutcome::Pass,
        }
    }

    fn exec_custom(
        &mut self,
        state: &mut MachineState,
        _pc: u32,
        word: u32,
        insn: &Insn,
        rs1: u32,
        rs2: u32,
    ) -> Result<CustomExec, Trap> {
        debug_assert!(
            matches!(self.mode(), Mode::Metal { .. }),
            "decode gate lets Metal instructions reach EX only in Metal mode"
        );
        match *insn {
            Insn::Rmr { idx, .. } => {
                if let Some(n) = idx.mreg_index() {
                    if let Some(syndrome) = self.mregs.verify(n) {
                        return Err(Trap::new(
                            TrapCause::MachineCheck {
                                site: FaultSite::Mreg,
                                syndrome,
                            },
                            n as u32,
                        ));
                    }
                }
                Ok(CustomExec {
                    writeback: Some(self.mregs.read(idx, state)),
                    extra_cycles: 0,
                })
            }
            Insn::Wmr { idx, .. } => {
                // `mabort` is write-sensitive: the recovery mroutine's
                // declaration that the machine check is unrecoverable.
                if matches!(Mcr::from_index(idx), Some(Mcr::Mabort)) {
                    if rs1 != 0 {
                        state.trace.emit(EventKind::Recovery {
                            action: RecoveryAction::Abort,
                        });
                        state.halted = Some(HaltReason::Fatal(format!(
                            "machine-check recovery abort (mabort = {rs1:#x})"
                        )));
                    }
                    return Ok(CustomExec::default());
                }
                self.mregs.write(idx, rs1);
                Ok(CustomExec::default())
            }
            Insn::Mld { offset, .. } => {
                let addr = rs1.wrapping_add(offset as u32);
                if let Some(syndrome) = self.mram.data_verify(addr) {
                    return Err(Trap::new(
                        TrapCause::MachineCheck {
                            site: FaultSite::MramData,
                            syndrome,
                        },
                        addr,
                    ));
                }
                let value = self
                    .mram
                    .data_load(addr)
                    .map_err(|_| Trap::new(TrapCause::LoadAccessFault, addr))?;
                state.trace.emit(EventKind::MramData { addr, write: false });
                Ok(CustomExec {
                    writeback: Some(value),
                    extra_cycles: 0,
                })
            }
            Insn::Mst { offset, .. } => {
                let addr = rs1.wrapping_add(offset as u32);
                self.mram
                    .data_store(addr, rs2)
                    .map_err(|_| Trap::new(TrapCause::StoreAccessFault, addr))?;
                state.trace.emit(EventKind::MramData { addr, write: true });
                Ok(CustomExec::default())
            }
            Insn::March { op, .. } => self.exec_march(state, op, insn, rs1, rs2),
            _ => Err(Trap::illegal(word)),
        }
    }

    fn on_trap(&mut self, state: &mut MachineState, event: &TrapEvent) -> TrapDisposition {
        let is_mcheck = if let TrapCause::MachineCheck { site, syndrome } = event.cause {
            self.stats.machine_checks += 1;
            state.trace.emit(EventKind::MachineCheck {
                site,
                syndrome,
                addr: event.tval,
            });
            // Record which word faulted — the implicit `mscrub` operand.
            self.last_mcheck = Some((
                site,
                match site {
                    FaultSite::MramCode => event.tval.wrapping_sub(MRAM_BASE) / 4,
                    FaultSite::MramData => event.tval / 4,
                    _ => event.tval,
                },
            ));
            true
        } else {
            false
        };
        if let Mode::Metal { .. } = self.mode() {
            // A fault inside a non-interruptible mroutine: there is no
            // handler to recurse into. Static verification is supposed
            // to prevent this (paper §2.1). The one exception is a
            // machine check — transient hardware faults cannot be
            // verified away — which preempts the mroutine unless
            // recovery itself is already on the stack (recursing into
            // possibly-corrupted recovery code cannot terminate).
            if !is_mcheck || self.in_mcheck() {
                return TrapDisposition::Fatal;
            }
        }
        let Some((entry, layer)) = self.delegation_lookup(event.cause) else {
            // The baseline mtvec path is a normal-mode construct; an
            // undelegated machine check caught mid-mroutine has no
            // handler at all.
            if is_mcheck && self.mode() != Mode::Normal {
                return TrapDisposition::Fatal;
            }
            return TrapDisposition::Default;
        };
        let Some(pc) = self.entry_pc(entry) else {
            return TrapDisposition::Fatal;
        };
        let (cause, transition_cause) = match event.cause {
            TrapCause::Interrupt(line) => {
                self.stats.delegated_interrupts += 1;
                self.mregs.soft_ipend |= 1 << line;
                (EntryCause::Interrupt(line), TransitionCause::Interrupt)
            }
            other => {
                self.stats.delegated_exceptions += 1;
                (EntryCause::Exception(other), TransitionCause::Exception)
            }
        };
        // A machine check may preempt Metal mode: bank the interrupted
        // mroutine's `m31` (raw, check bits and all — it may itself be
        // the corrupted word) so recovery's `mexit` can restore it.
        let saved_m31 = match self.mode() {
            Mode::Metal { .. } => Some(self.mregs.raw(31)),
            Mode::Normal => None,
        };
        self.mregs.set(31, event.pc);
        self.mregs.mcause = cause.encode();
        self.mregs.mbadaddr = event.tval;
        self.mregs.mentry = u32::from(entry);
        self.mode_stack.push(layer);
        self.transitions.record_entry(entry);
        self.entry_stack.push(EntryFrame {
            entry,
            entered_at: state.perf.cycles,
            mcheck: is_mcheck,
            saved_m31,
        });
        state.trace.emit(EventKind::TrapDelegated {
            entry,
            layer: layer as u8,
            code: self.mregs.mcause,
        });
        state.trace.emit(EventKind::MEnter {
            entry,
            cause: transition_cause,
            pc,
        });
        // Delegated dispatch still reads the handler from MRAM next
        // fetch; charge only the non-MRAM penalty.
        let stall = match self.config.dispatch {
            DispatchStyle::Mram => 0,
            DispatchStyle::Palcode { .. } => self.config.palcode_drain,
        };
        TrapDisposition::Redirect { target: pc, stall }
    }

    fn interrupts_allowed(&self, _state: &MachineState) -> bool {
        // "Metal mroutines are non-interruptible" (paper §2.1).
        self.mode() == Mode::Normal
    }
}

impl Metal {
    fn exec_march(
        &mut self,
        state: &mut MachineState,
        op: MarchOp,
        insn: &Insn,
        rs1: u32,
        rs2: u32,
    ) -> Result<CustomExec, Trap> {
        let mut exec = CustomExec::default();
        match op {
            MarchOp::Mpld => {
                let (value, latency) = state.phys_load(rs1)?;
                exec.writeback = Some(value);
                exec.extra_cycles = latency.saturating_sub(1);
            }
            MarchOp::Mpst => {
                let latency = state.phys_store(rs1, rs2)?;
                exec.extra_cycles = latency.saturating_sub(1);
            }
            MarchOp::Mtlbw => {
                state.tlb.install(rs1, metal_mem::tlb::Pte(rs2), state.asid);
            }
            MarchOp::Mtlbi => {
                // `mtlbi x0` flushes the current ASID (register identity,
                // not value: va 0 remains invalidatable).
                let is_x0 = matches!(insn, Insn::March { rs1: r, .. } if *r == Reg::ZERO);
                if is_x0 {
                    let asid = state.asid;
                    state.tlb.flush_asid(asid);
                } else {
                    let asid = state.asid;
                    state.tlb.invalidate(rs1, asid);
                }
            }
            MarchOp::Mtlbp => {
                exec.writeback = Some(state.tlb.probe(rs1, state.asid));
            }
            MarchOp::Masid => {
                state.asid = rs1 as u16;
            }
            MarchOp::Mpkey => {
                state.tlb.set_key_perms(rs1, rs2);
            }
            MarchOp::Mintercept => {
                let ok = self.layers[self.active_layer].intercepts.program(rs1, rs2);
                if !ok {
                    return Err(Trap::new(TrapCause::IllegalInstruction, rs1));
                }
            }
            MarchOp::Mipend => {
                exec.writeback = Some(state.perf.mip_snapshot | self.mregs.soft_ipend);
            }
            MarchOp::Miack => {
                self.mregs.soft_ipend &= !(1 << (rs1 & 31));
            }
            MarchOp::Mlayer => {
                let layer = (rs1 as usize).min(self.layers.len() - 1);
                self.active_layer = layer;
                // Executing code may also reassign its own layer for
                // downward-intercept attribution.
                if let Some(top) = self.mode_stack.last_mut() {
                    *top = layer;
                }
            }
            MarchOp::Mtlbiall => {
                state.tlb.flush_all();
            }
            MarchOp::Mscrub => {
                let repaired = match self.last_mcheck {
                    Some((FaultSite::MramCode, index)) => self.mram.scrub_code(index),
                    Some((FaultSite::MramData, index)) => self.mram.scrub_data(index),
                    Some((FaultSite::Mreg, n)) => {
                        let n = (n & 31) as usize;
                        let banked = self
                            .entry_stack
                            .last()
                            .filter(|f| f.mcheck)
                            .and_then(|f| f.saved_m31);
                        match (n, banked) {
                            // Delivery banked the corrupted `m31` into
                            // the frame before repointing the live
                            // register at the faulting pc; the flop to
                            // repair is the banked copy.
                            (31, Some(raw)) => match self.mregs.scrub_raw(raw) {
                                Some(fixed) => {
                                    self.entry_stack
                                        .last_mut()
                                        .expect("frame existence checked above")
                                        .saved_m31 = Some(fixed);
                                    true
                                }
                                None => false,
                            },
                            _ => self.mregs.scrub(n),
                        }
                    }
                    _ => false,
                };
                if repaired {
                    self.stats.scrubs += 1;
                    state.trace.emit(EventKind::Recovery {
                        action: RecoveryAction::Retry,
                    });
                }
                exec.writeback = Some(u32::from(repaired));
            }
        }
        Ok(exec)
    }

    /// Publishes the extension's counters and per-mroutine transition
    /// statistics (entry counts, enter→exit latency histograms) into
    /// `snapshot`, alongside whatever the machine already wrote there.
    pub fn publish_metrics(&self, snapshot: &mut MetricsSnapshot) {
        snapshot.set_counter("metal.menters", self.stats.menters);
        snapshot.set_counter("metal.mexits", self.stats.mexits);
        snapshot.set_counter("metal.intercepts", self.stats.intercepts);
        snapshot.set_counter(
            "metal.delegated_exceptions",
            self.stats.delegated_exceptions,
        );
        snapshot.set_counter(
            "metal.delegated_interrupts",
            self.stats.delegated_interrupts,
        );
        snapshot.set_counter("metal.nested_calls", self.stats.nested_calls);
        snapshot.set_counter("metal.machine_checks", self.stats.machine_checks);
        snapshot.set_counter("metal.scrubs", self.stats.scrubs);
        self.transitions.publish(snapshot, "transition");
    }

    /// Installs an mroutine from pre-assembled words. Most callers use
    /// [`crate::loader::MetalBuilder`] instead, which assembles and
    /// verifies sources.
    pub fn install_routine(
        &mut self,
        entry: u8,
        name: &str,
        words: &[u32],
    ) -> Result<u32, MetalError> {
        self.mram.install(entry, name, words)?;
        Ok(self.entry_pc(entry).expect("just installed"))
    }

    /// The PC where the *next* routine will be installed (assemble
    /// sources against this base).
    #[must_use]
    pub fn next_routine_pc(&self) -> u32 {
        let offset = self.mram.config().code_bytes - self.mram.code_free();
        match self.config.dispatch {
            DispatchStyle::Mram => MRAM_BASE + offset,
            DispatchStyle::Palcode { base } => base + offset,
        }
    }
}
