//! Metal: an open architecture for developing processor features.
//!
//! This crate is the paper's primary contribution, implemented against
//! the `metal-pipeline` 5-stage core via its extension-hook interface:
//!
//! * [`mram`] — the RAM collocated with instruction fetch that holds up
//!   to 64 mroutines and their private data.
//! * [`mreg`] — the Metal register file `m0..m31` and control registers.
//! * [`metal`] — Metal mode, the `menter`/`mexit` decode-stage fast
//!   path, interception, delegation, and the `march.*` architectural
//!   features (physical memory, TLB, ASIDs, page keys).
//! * [`intercept`] — the instruction-interception table.
//! * [`delegate`] — exception/interrupt delegation maps.
//! * [`loader`] / [`verify`] — the boot-time mroutine loader and static
//!   verifier.
//!
//! # Quick start
//!
//! ```
//! use metal_core::loader::MetalBuilder;
//! use metal_pipeline::state::CoreConfig;
//! use metal_pipeline::HaltReason;
//!
//! // An mroutine that doubles a0, bound to entry 7.
//! let mut core = MetalBuilder::new()
//!     .routine(7, "double", "slli a0, a0, 1\n mexit")
//!     .build_core(CoreConfig::default())
//!     .unwrap();
//!
//! // A guest program that invokes it.
//! let program = metal_asm::assemble_at("li a0, 21\n menter 7\n ebreak", 0).unwrap();
//! let bytes: Vec<u8> = program.iter().flat_map(|w| w.to_le_bytes()).collect();
//! core.load_segments([(0u32, bytes.as_slice())], 0);
//! assert_eq!(core.run(10_000), Some(HaltReason::Ebreak { code: 42 }));
//! ```

pub mod delegate;
pub mod ecc;
pub mod intercept;
pub mod loader;
pub mod metal;
pub mod mram;
pub mod mreg;
pub mod verify;

pub use ecc::{EccCheck, EccMode};
pub use intercept::{InterceptRule, InterceptTable};
pub use loader::MetalBuilder;
pub use metal::{DispatchStyle, Layer, Metal, MetalConfig, MetalStats, Mode};
pub use mram::{Mram, MramConfig, MramSnapshot, MRAM_BASE};
pub use mreg::{EntryCause, MregFile};

use core::fmt;

/// Errors from MRAM management and the mroutine loader.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MetalError {
    /// Entry number outside the 64-entry table.
    BadEntry {
        /// The offending entry number.
        entry: u8,
    },
    /// Entry already bound to another mroutine.
    EntryInUse {
        /// The occupied entry.
        entry: u8,
    },
    /// A trap cause passed to the wrong delegation API (an interrupt
    /// cause to the exception map, or vice versa).
    BadCause {
        /// The misused cause code.
        code: u32,
    },
    /// MRAM code segment exhausted.
    CodeOverflow {
        /// Bytes that would be needed.
        needed: u32,
        /// Segment capacity.
        capacity: u32,
    },
    /// Code fetch outside the MRAM window or misaligned.
    CodeFetch {
        /// The bad PC.
        pc: u32,
    },
    /// Data-segment access out of bounds or misaligned.
    DataAccess {
        /// The bad offset.
        addr: u32,
    },
    /// An mroutine failed to assemble.
    Assemble {
        /// Routine name.
        routine: String,
        /// Assembler error text.
        message: String,
    },
    /// An mroutine failed static verification.
    Verify {
        /// Routine name.
        routine: String,
        /// The findings.
        issues: Vec<verify::Issue>,
    },
    /// The PALcode image does not fit in RAM.
    PalcodeImage {
        /// Image base address.
        base: u32,
    },
}

impl fmt::Display for MetalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetalError::BadEntry { entry } => write!(f, "entry {entry} outside the entry table"),
            MetalError::EntryInUse { entry } => write!(f, "entry {entry} already bound"),
            MetalError::BadCause { code } => {
                write!(f, "cause {code:#x} passed to the wrong delegation API")
            }
            MetalError::CodeOverflow { needed, capacity } => {
                write!(f, "MRAM code overflow: need {needed} of {capacity} bytes")
            }
            MetalError::CodeFetch { pc } => write!(f, "bad MRAM code fetch at {pc:#010x}"),
            MetalError::DataAccess { addr } => {
                write!(f, "bad MRAM data access at offset {addr:#x}")
            }
            MetalError::Assemble { routine, message } => {
                write!(f, "mroutine {routine:?} failed to assemble: {message}")
            }
            MetalError::Verify { routine, issues } => {
                write!(f, "mroutine {routine:?} failed verification: ")?;
                for issue in issues {
                    write!(
                        f,
                        "[{:?} at +{:#x}: {}] ",
                        issue.severity, issue.offset, issue.message
                    )?;
                }
                Ok(())
            }
            MetalError::PalcodeImage { base } => {
                write!(f, "PALcode image at {base:#010x} does not fit in RAM")
            }
        }
    }
}

impl std::error::Error for MetalError {}
