//! Exception and interrupt delegation.
//!
//! "Our processor delegates all exception and interrupt delivery to
//! Metal. We assign specific mroutines to handle interrupts and
//! exceptions." (paper §2.3) A cause with no delegated mroutine falls
//! back to the baseline `mtvec` path, so partially-delegated systems
//! also work.

use metal_pipeline::trap::TrapCause;

/// Per-layer delegation tables: exception cause → entry, IRQ line →
/// entry.
#[derive(Clone, Debug, Default)]
pub struct DelegationMap {
    exceptions: [Option<u8>; 32],
    interrupts: [Option<u8>; 32],
    /// Catch-all for exceptions with no specific entry.
    all_exceptions: Option<u8>,
}

impl DelegationMap {
    /// An empty map (everything falls back to the baseline path).
    #[must_use]
    pub fn new() -> DelegationMap {
        DelegationMap::default()
    }

    /// Delegates one exception cause to an mroutine entry.
    ///
    /// # Panics
    ///
    /// Panics if called with an interrupt cause (use
    /// [`DelegationMap::delegate_interrupt`]).
    pub fn delegate_exception(&mut self, cause: TrapCause, entry: u8) {
        assert!(
            !cause.is_interrupt(),
            "use delegate_interrupt for interrupt causes"
        );
        self.exceptions[cause.code() as usize & 31] = Some(entry);
    }

    /// Delegates every exception without a specific entry to `entry`.
    pub fn delegate_all_exceptions(&mut self, entry: u8) {
        self.all_exceptions = Some(entry);
    }

    /// Delegates an interrupt line to an mroutine entry.
    pub fn delegate_interrupt(&mut self, line: u8, entry: u8) {
        self.interrupts[usize::from(line) & 31] = Some(entry);
    }

    /// Removes an interrupt delegation.
    pub fn undelegate_interrupt(&mut self, line: u8) {
        self.interrupts[usize::from(line) & 31] = None;
    }

    /// The entry handling `cause`, if delegated.
    #[must_use]
    pub fn lookup(&self, cause: TrapCause) -> Option<u8> {
        match cause {
            TrapCause::Interrupt(line) => self.interrupts[usize::from(line) & 31],
            other => self.exceptions[other.code() as usize & 31].or(self.all_exceptions),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specific_beats_catch_all() {
        let mut d = DelegationMap::new();
        d.delegate_all_exceptions(9);
        d.delegate_exception(TrapCause::Ecall, 3);
        assert_eq!(d.lookup(TrapCause::Ecall), Some(3));
        assert_eq!(d.lookup(TrapCause::LoadPageFault), Some(9));
    }

    #[test]
    fn interrupts_separate_from_exceptions() {
        let mut d = DelegationMap::new();
        d.delegate_interrupt(1, 4);
        assert_eq!(d.lookup(TrapCause::Interrupt(1)), Some(4));
        assert_eq!(d.lookup(TrapCause::Interrupt(0)), None);
        assert_eq!(d.lookup(TrapCause::Ecall), None);
        d.undelegate_interrupt(1);
        assert_eq!(d.lookup(TrapCause::Interrupt(1)), None);
    }

    #[test]
    #[should_panic(expected = "delegate_interrupt")]
    fn exception_api_rejects_interrupts() {
        let mut d = DelegationMap::new();
        d.delegate_exception(TrapCause::Interrupt(0), 1);
    }
}
