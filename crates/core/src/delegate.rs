//! Exception and interrupt delegation.
//!
//! "Our processor delegates all exception and interrupt delivery to
//! Metal. We assign specific mroutines to handle interrupts and
//! exceptions." (paper §2.3) A cause with no delegated mroutine falls
//! back to the baseline `mtvec` path, so partially-delegated systems
//! also work.

use crate::MetalError;
use metal_pipeline::trap::TrapCause;

/// Entries in the MRAM entry table; delegations must name one of them.
const ENTRY_SLOTS: u8 = 64;

/// Per-layer delegation tables: exception cause → entry, IRQ line →
/// entry.
#[derive(Clone, Debug, Default)]
pub struct DelegationMap {
    exceptions: [Option<u8>; 32],
    interrupts: [Option<u8>; 32],
    /// Catch-all for exceptions with no specific entry.
    all_exceptions: Option<u8>,
}

impl DelegationMap {
    /// An empty map (everything falls back to the baseline path).
    #[must_use]
    pub fn new() -> DelegationMap {
        DelegationMap::default()
    }

    fn check_entry(entry: u8) -> Result<(), MetalError> {
        if entry >= ENTRY_SLOTS {
            return Err(MetalError::BadEntry { entry });
        }
        Ok(())
    }

    fn check_exception(cause: TrapCause) -> Result<(), MetalError> {
        if cause.is_interrupt() {
            return Err(MetalError::BadCause { code: cause.code() });
        }
        Ok(())
    }

    /// Delegates one exception cause to an mroutine entry.
    ///
    /// # Errors
    ///
    /// [`MetalError::BadCause`] for an interrupt cause (use
    /// [`DelegationMap::delegate_interrupt`]); [`MetalError::BadEntry`]
    /// for an entry outside the 64-slot table.
    pub fn delegate_exception(&mut self, cause: TrapCause, entry: u8) -> Result<(), MetalError> {
        Self::check_exception(cause)?;
        Self::check_entry(entry)?;
        self.exceptions[cause.code() as usize & 31] = Some(entry);
        Ok(())
    }

    /// Removes an exception delegation (the cause falls back to the
    /// catch-all, then to the baseline path).
    ///
    /// # Errors
    ///
    /// [`MetalError::BadCause`] for an interrupt cause.
    pub fn undelegate_exception(&mut self, cause: TrapCause) -> Result<(), MetalError> {
        Self::check_exception(cause)?;
        self.exceptions[cause.code() as usize & 31] = None;
        Ok(())
    }

    /// Delegates every exception without a specific entry to `entry`.
    ///
    /// # Errors
    ///
    /// [`MetalError::BadEntry`] for an entry outside the table.
    pub fn delegate_all_exceptions(&mut self, entry: u8) -> Result<(), MetalError> {
        Self::check_entry(entry)?;
        self.all_exceptions = Some(entry);
        Ok(())
    }

    /// Delegates an interrupt line to an mroutine entry.
    ///
    /// # Errors
    ///
    /// [`MetalError::BadEntry`] for an entry outside the table.
    pub fn delegate_interrupt(&mut self, line: u8, entry: u8) -> Result<(), MetalError> {
        Self::check_entry(entry)?;
        self.interrupts[usize::from(line) & 31] = Some(entry);
        Ok(())
    }

    /// Removes an interrupt delegation.
    pub fn undelegate_interrupt(&mut self, line: u8) {
        self.interrupts[usize::from(line) & 31] = None;
    }

    /// The entry handling `cause`, if delegated.
    #[must_use]
    pub fn lookup(&self, cause: TrapCause) -> Option<u8> {
        match cause {
            TrapCause::Interrupt(line) => self.interrupts[usize::from(line) & 31],
            other => self.exceptions[other.code() as usize & 31].or(self.all_exceptions),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specific_beats_catch_all() {
        let mut d = DelegationMap::new();
        d.delegate_all_exceptions(9).unwrap();
        d.delegate_exception(TrapCause::Ecall, 3).unwrap();
        assert_eq!(d.lookup(TrapCause::Ecall), Some(3));
        assert_eq!(d.lookup(TrapCause::LoadPageFault), Some(9));
    }

    #[test]
    fn interrupts_separate_from_exceptions() {
        let mut d = DelegationMap::new();
        d.delegate_interrupt(1, 4).unwrap();
        assert_eq!(d.lookup(TrapCause::Interrupt(1)), Some(4));
        assert_eq!(d.lookup(TrapCause::Interrupt(0)), None);
        assert_eq!(d.lookup(TrapCause::Ecall), None);
        d.undelegate_interrupt(1);
        assert_eq!(d.lookup(TrapCause::Interrupt(1)), None);
    }

    #[test]
    fn exception_api_rejects_interrupts() {
        let mut d = DelegationMap::new();
        assert!(matches!(
            d.delegate_exception(TrapCause::Interrupt(0), 1),
            Err(MetalError::BadCause { .. })
        ));
        assert!(matches!(
            d.undelegate_exception(TrapCause::Interrupt(3)),
            Err(MetalError::BadCause { .. })
        ));
        assert_eq!(d.lookup(TrapCause::Interrupt(0)), None);
    }

    #[test]
    fn out_of_table_entries_rejected() {
        let mut d = DelegationMap::new();
        for result in [
            d.delegate_exception(TrapCause::Ecall, 64),
            d.delegate_all_exceptions(200),
            d.delegate_interrupt(0, 64),
        ] {
            assert!(matches!(result, Err(MetalError::BadEntry { .. })));
        }
        assert_eq!(d.lookup(TrapCause::Ecall), None);
        assert_eq!(d.lookup(TrapCause::Interrupt(0)), None);
        // 63 is the last valid slot.
        d.delegate_exception(TrapCause::Ecall, 63).unwrap();
        assert_eq!(d.lookup(TrapCause::Ecall), Some(63));
    }

    #[test]
    fn undelegation_restores_fallbacks() {
        let mut d = DelegationMap::new();
        d.delegate_all_exceptions(9).unwrap();
        d.delegate_exception(TrapCause::Ecall, 3).unwrap();
        d.undelegate_exception(TrapCause::Ecall).unwrap();
        // The specific slot is gone; the catch-all still applies.
        assert_eq!(d.lookup(TrapCause::Ecall), Some(9));
        // Undelegating an already-clear cause is a no-op, not an error.
        d.undelegate_exception(TrapCause::IllegalInstruction)
            .unwrap();
        assert_eq!(d.lookup(TrapCause::IllegalInstruction), Some(9));
    }
}
