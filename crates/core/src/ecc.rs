//! Parity/ECC metadata modeled on MRAM and the Metal register file.
//!
//! The fault-tolerance story of the paper's architecture (reliability
//! features *in mcode*) needs detection hardware the mcode can react
//! to. This module models the per-word check bits: a single parity bit
//! (detects any odd number of flipped bits, corrects nothing) or a
//! SECDED Hamming code over the 32 data bits plus an overall parity
//! bit (corrects single-bit errors via the syndrome, detects
//! double-bit errors). Detection raises
//! `TrapCause::MachineCheck { site, syndrome }`; repair is left to a
//! recovery mroutine (`mscrub`), keeping the hardware model minimal.
//!
//! Syndrome byte convention: bit 7 set means syndrome decoding cannot
//! locate the error (parity detection, double-bit error, or an invalid
//! Hamming position) — the word is uncorrectable in place and recovery
//! must fall back to a golden copy or checkpoint rollback.

/// Which check-bit scheme protects a structure.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EccMode {
    /// No check bits; faults are silent (the baseline).
    #[default]
    None,
    /// One parity bit per word: detects odd-weight errors, corrects
    /// nothing.
    Parity,
    /// Hamming SECDED over 32 data bits (6 syndrome bits + overall
    /// parity): corrects single-bit errors, detects double-bit errors.
    Secded,
}

impl EccMode {
    /// Stable label used in CLI flags and reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            EccMode::None => "none",
            EccMode::Parity => "parity",
            EccMode::Secded => "secded",
        }
    }

    /// Parses a CLI label.
    #[must_use]
    pub fn parse(s: &str) -> Option<EccMode> {
        match s {
            "none" => Some(EccMode::None),
            "parity" => Some(EccMode::Parity),
            "secded" => Some(EccMode::Secded),
            _ => None,
        }
    }

    /// Computes the check byte for a data word.
    #[must_use]
    pub fn encode(self, word: u32) -> u8 {
        match self {
            EccMode::None => 0,
            EccMode::Parity => (word.count_ones() & 1) as u8,
            EccMode::Secded => {
                let c = hamming_checks(word);
                let overall = (word.count_ones() + u32::from(c).count_ones()) & 1;
                c | ((overall as u8) << 6)
            }
        }
    }

    /// Validates a stored word against its check byte.
    #[must_use]
    pub fn check(self, word: u32, check: u8) -> EccCheck {
        match self {
            EccMode::None => EccCheck::Clean,
            EccMode::Parity => {
                if (word.count_ones() & 1) as u8 == check & 1 {
                    EccCheck::Clean
                } else {
                    EccCheck::Error {
                        corrected: None,
                        syndrome: 0x80,
                    }
                }
            }
            EccMode::Secded => {
                let syn = hamming_checks(word) ^ (check & 0x3F);
                let total = (word.count_ones() + u32::from(check & 0x7F).count_ones()) & 1;
                match (syn, total) {
                    (0, 0) => EccCheck::Clean,
                    // Odd error weight: a single flipped bit the
                    // syndrome locates (or an error confined to the
                    // check bits, leaving the data word intact).
                    (syn, 1) => match locate_data_bit(syn) {
                        Some(bit) => EccCheck::Error {
                            corrected: Some(word ^ (1 << bit)),
                            syndrome: syn,
                        },
                        None if syn == 0 || u32::from(syn).is_power_of_two() => EccCheck::Error {
                            corrected: Some(word),
                            syndrome: syn,
                        },
                        None => EccCheck::Error {
                            corrected: None,
                            syndrome: 0x80 | syn,
                        },
                    },
                    // Even error weight with a nonzero syndrome:
                    // double-bit error, detected but not locatable.
                    (syn, _) => EccCheck::Error {
                        corrected: None,
                        syndrome: 0x80 | syn,
                    },
                }
            }
        }
    }
}

/// Result of validating a word against its check bits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EccCheck {
    /// Word and check bits agree.
    Clean,
    /// Mismatch. `corrected` carries the repaired data word when the
    /// syndrome locates the error; `syndrome` is reported in the
    /// machine-check cause (bit 7 set = not locatable).
    Error {
        /// The repaired word, when single-bit correction applies.
        corrected: Option<u32>,
        /// The reported syndrome.
        syndrome: u8,
    },
}

/// Codeword position of each data bit (positions that are powers of
/// two hold check bits, as in a classic Hamming layout).
const DATA_POS: [u8; 32] = build_data_positions();

const fn build_data_positions() -> [u8; 32] {
    let mut table = [0u8; 32];
    let mut pos: u8 = 0;
    let mut i = 0;
    while i < 32 {
        pos += 1;
        if !pos.is_power_of_two() {
            table[i] = pos;
            i += 1;
        }
    }
    table
}

/// The 6 Hamming check bits of a data word.
fn hamming_checks(word: u32) -> u8 {
    let mut c = 0u8;
    for (i, &pos) in DATA_POS.iter().enumerate() {
        if word >> i & 1 == 1 {
            c ^= pos;
        }
    }
    c
}

/// Maps a syndrome back to the data-bit index it names, if any.
fn locate_data_bit(syn: u8) -> Option<u32> {
    DATA_POS.iter().position(|&p| p == syn).map(|i| i as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use metal_util::Rng;

    #[test]
    fn clean_words_verify() {
        let mut rng = Rng::new(0x5EED);
        for mode in [EccMode::None, EccMode::Parity, EccMode::Secded] {
            for _ in 0..200 {
                let w = rng.next_u32();
                assert_eq!(mode.check(w, mode.encode(w)), EccCheck::Clean);
            }
        }
    }

    #[test]
    fn parity_detects_single_flips_without_correcting() {
        let mut rng = Rng::new(1);
        for _ in 0..200 {
            let w = rng.next_u32();
            let check = EccMode::Parity.encode(w);
            let bit = rng.below(32) as u32;
            match EccMode::Parity.check(w ^ (1 << bit), check) {
                EccCheck::Error {
                    corrected: None,
                    syndrome,
                } => assert_eq!(syndrome, 0x80),
                other => panic!("parity flip not detected: {other:?}"),
            }
        }
    }

    #[test]
    fn secded_corrects_every_single_bit_flip() {
        let mut rng = Rng::new(2);
        for _ in 0..50 {
            let w = rng.next_u32();
            let check = EccMode::Secded.encode(w);
            for bit in 0..32u32 {
                match EccMode::Secded.check(w ^ (1 << bit), check) {
                    EccCheck::Error {
                        corrected: Some(fixed),
                        syndrome,
                    } => {
                        assert_eq!(fixed, w, "bit {bit}");
                        assert_eq!(syndrome & 0x80, 0, "bit {bit}");
                    }
                    other => panic!("single flip of bit {bit} not corrected: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn secded_flags_double_bit_flips_uncorrectable() {
        let mut rng = Rng::new(3);
        for _ in 0..200 {
            let w = rng.next_u32();
            let check = EccMode::Secded.encode(w);
            let a = rng.below(32) as u32;
            let mut b = rng.below(32) as u32;
            while b == a {
                b = rng.below(32) as u32;
            }
            match EccMode::Secded.check(w ^ (1 << a) ^ (1 << b), check) {
                EccCheck::Error {
                    corrected: None,
                    syndrome,
                } => assert_ne!(syndrome & 0x80, 0, "bits {a},{b}"),
                other => panic!("double flip {a},{b} misclassified: {other:?}"),
            }
        }
    }

    #[test]
    fn data_positions_skip_check_slots() {
        for pos in DATA_POS {
            assert!(!pos.is_power_of_two());
            assert!(pos <= 38);
        }
    }
}
