//! The instruction-interception table.
//!
//! "Our implementation allows intercepting any instruction with an
//! mroutine. For instance, developers can intercept loads and stores
//! dynamically to implement transactional memory or patch an insecure
//! instruction at runtime." (paper §2.3)
//!
//! Rules are programmed with the `mintercept` instruction:
//! `rs1` = an [`InterceptSelector`] word, `rs2` = `(entry << 1) | enable`.

use metal_isa::metal::InterceptSelector;

/// One interception rule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InterceptRule {
    /// Which instructions it matches.
    pub selector: InterceptSelector,
    /// The mroutine that handles matches.
    pub entry: u8,
}

/// A fixed-capacity interception table (a small CAM in hardware).
#[derive(Clone, Debug)]
pub struct InterceptTable {
    rules: Vec<Option<InterceptRule>>,
}

/// Default number of rule slots (each slot is a comparator in hardware,
/// so the table is small).
pub const DEFAULT_SLOTS: usize = 8;

impl InterceptTable {
    /// An empty table with [`DEFAULT_SLOTS`] slots.
    #[must_use]
    pub fn new() -> InterceptTable {
        InterceptTable::with_slots(DEFAULT_SLOTS)
    }

    /// An empty table with `slots` slots.
    #[must_use]
    pub fn with_slots(slots: usize) -> InterceptTable {
        InterceptTable {
            rules: vec![None; slots],
        }
    }

    /// Programs the table from `mintercept` operands. Enabling installs
    /// or updates the rule for `selector`; disabling removes it.
    /// Returns `false` if the table is full.
    pub fn program(&mut self, selector_word: u32, target: u32) -> bool {
        let selector = InterceptSelector::decode(selector_word);
        let enable = target & 1 != 0;
        let entry = ((target >> 1) & 0x3F) as u8;
        // Update or remove an existing rule for this selector.
        for slot in &mut self.rules {
            if slot.is_some_and(|r| r.selector == selector) {
                *slot = enable.then_some(InterceptRule { selector, entry });
                return true;
            }
        }
        if !enable {
            return true; // disabling a non-existent rule is a no-op
        }
        for slot in &mut self.rules {
            if slot.is_none() {
                *slot = Some(InterceptRule { selector, entry });
                return true;
            }
        }
        false
    }

    /// Returns the handling entry for an instruction word, if any rule
    /// matches. The first matching slot wins.
    #[must_use]
    pub fn lookup(&self, insn_word: u32) -> Option<u8> {
        self.rules
            .iter()
            .flatten()
            .find(|r| r.selector.matches(insn_word))
            .map(|r| r.entry)
    }

    /// Number of active rules.
    #[must_use]
    pub fn active(&self) -> usize {
        self.rules.iter().flatten().count()
    }

    /// Removes every rule.
    pub fn clear(&mut self) {
        self.rules.fill(None);
    }
}

impl Default for InterceptTable {
    fn default() -> InterceptTable {
        InterceptTable::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metal_isa::encode::opcodes;

    fn load_class() -> u32 {
        InterceptSelector::OpcodeClass {
            opcode: opcodes::LOAD,
        }
        .encode()
    }

    fn store_class() -> u32 {
        InterceptSelector::OpcodeClass {
            opcode: opcodes::STORE,
        }
        .encode()
    }

    #[test]
    fn program_and_lookup() {
        let mut t = InterceptTable::new();
        assert!(t.program(load_class(), (5 << 1) | 1));
        // lw a0, 0(a1)
        assert_eq!(t.lookup(0x0005_A503), Some(5));
        // sw not intercepted.
        assert_eq!(t.lookup(0x00A5_A023), None);
        assert_eq!(t.active(), 1);
    }

    #[test]
    fn disable_removes_rule() {
        let mut t = InterceptTable::new();
        t.program(load_class(), (5 << 1) | 1);
        t.program(load_class(), 0);
        assert_eq!(t.lookup(0x0005_A503), None);
        assert_eq!(t.active(), 0);
        // Disabling again is a no-op.
        assert!(t.program(load_class(), 0));
    }

    #[test]
    fn update_in_place() {
        let mut t = InterceptTable::new();
        t.program(load_class(), (5 << 1) | 1);
        t.program(load_class(), (9 << 1) | 1);
        assert_eq!(t.lookup(0x0005_A503), Some(9));
        assert_eq!(t.active(), 1);
    }

    #[test]
    fn table_capacity() {
        let mut t = InterceptTable::with_slots(2);
        assert!(t.program(load_class(), (1 << 1) | 1));
        assert!(t.program(store_class(), (2 << 1) | 1));
        let third = InterceptSelector::OpcodeClass { opcode: 0x33 }.encode();
        assert!(!t.program(third, (3 << 1) | 1), "table full");
        t.clear();
        assert!(t.program(third, (3 << 1) | 1));
    }

    #[test]
    fn exact_rule_matches_only_variant() {
        let mut t = InterceptTable::new();
        let lw_only = InterceptSelector::Exact {
            opcode: opcodes::LOAD,
            funct3: 0b010,
            funct7: None,
        }
        .encode();
        t.program(lw_only, (7 << 1) | 1);
        assert_eq!(t.lookup(0x0005_A503), Some(7)); // lw
        assert_eq!(t.lookup(0x0005_8503), None); // lb
    }
}
