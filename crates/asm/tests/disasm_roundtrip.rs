//! Property test: re-assembling the disassembly of any decodable
//! instruction reproduces the same instruction word.
//!
//! This closes the loop `decode -> disassemble -> assemble -> encode` and
//! pins the assembler and disassembler to the same syntax.

use metal_asm::assemble_at;
use metal_isa::{decode, disassemble, encode};
use metal_util::Rng;

/// Draws a word that decodes successfully and whose canonical
/// re-encoding equals the decoded form (non-canonical fields zeroed).
fn canonical_word(rng: &mut Rng) -> Option<u32> {
    let insn = decode(rng.next_u32()).ok()?;
    let canonical = metal_isa::try_encode(&insn).ok()?;
    // Skip instructions whose disassembly is not meant to re-parse
    // (unknown MCR indices print as `mcr:0x...`).
    let text = disassemble(&insn);
    if text.contains("mcr:") {
        return None;
    }
    Some(canonical)
}

#[test]
fn disassembly_reassembles() {
    let mut rng = Rng::new(0xd15a_0001);
    let mut cases = 0;
    // Random 32-bit words rarely decode, so draw until 1500 canonical
    // instructions have been exercised.
    while cases < 1500 {
        let Some(word) = canonical_word(&mut rng) else {
            continue;
        };
        cases += 1;
        let insn = decode(word).expect("canonical_word yields decodable words");
        let text = disassemble(&insn);
        let words =
            assemble_at(&text, 0).unwrap_or_else(|e| panic!("cannot reassemble {text:?}: {e}"));
        assert_eq!(words.len(), 1, "{}", &text);
        let reparsed = decode(words[0]).expect("assembler output decodes");
        assert_eq!(encode(&reparsed), word, "text was {:?}", &text);
    }
}
