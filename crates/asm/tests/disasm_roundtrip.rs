//! Property test: re-assembling the disassembly of any decodable
//! instruction reproduces the same instruction word.
//!
//! This closes the loop `decode -> disassemble -> assemble -> encode` and
//! pins the assembler and disassembler to the same syntax.

use metal_asm::assemble_at;
use metal_isa::{decode, disassemble, encode};
use proptest::prelude::*;

/// Words that decode successfully and whose canonical re-encoding equals
/// the decoded form (non-canonical fields zeroed).
fn canonical_word() -> impl Strategy<Value = u32> {
    any::<u32>().prop_filter_map("not a canonical instruction", |w| {
        let insn = decode(w).ok()?;
        let canonical = metal_isa::try_encode(&insn).ok()?;
        // Skip instructions whose disassembly is not meant to re-parse
        // (unknown MCR indices print as `mcr:0x...`).
        let text = disassemble(&insn);
        if text.contains("mcr:") {
            return None;
        }
        Some(canonical)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1500))]

    #[test]
    fn disassembly_reassembles(word in canonical_word()) {
        let insn = decode(word).expect("strategy yields decodable words");
        let text = disassemble(&insn);
        let words = assemble_at(&text, 0)
            .unwrap_or_else(|e| panic!("cannot reassemble {text:?}: {e}"));
        prop_assert_eq!(words.len(), 1, "{}", &text);
        let reparsed = decode(words[0]).expect("assembler output decodes");
        prop_assert_eq!(encode(&reparsed), word, "text was {:?}", &text);
    }
}
