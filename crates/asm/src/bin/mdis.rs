//! `mdis` — disassemble a flat binary image.
//!
//! ```text
//! mdis image.bin [--base 0xADDR]
//! ```

use metal_isa::{decode, disassemble};
use metal_util::cli::{parse_u32, usage};
use std::io::Write as _;
use std::process::ExitCode;

const USAGE: &str = "mdis image.bin [--base 0xADDR]";

fn main() -> ExitCode {
    let mut input: Option<String> = None;
    let mut base = 0u32;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--base" => match args.next().and_then(|v| parse_u32(&v)) {
                Some(v) => base = v,
                None => return usage("mdis", USAGE, "bad --base value"),
            },
            "-h" | "--help" => return usage("mdis", USAGE, ""),
            other if input.is_none() && !other.starts_with('-') => {
                input = Some(other.to_owned());
            }
            other => return usage("mdis", USAGE, &format!("unknown argument {other:?}")),
        }
    }
    let Some(input) = input else {
        return usage("mdis", USAGE, "no input image");
    };
    let bytes = match std::fs::read(&input) {
        Ok(bytes) => bytes,
        Err(e) => {
            eprintln!("mdis: cannot read {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for (i, chunk) in bytes.chunks(4).enumerate() {
        let mut word = [0u8; 4];
        word[..chunk.len()].copy_from_slice(chunk);
        let word = u32::from_le_bytes(word);
        // Listings of images near the top of the address space wrap
        // rather than overflow.
        let addr = base.wrapping_add((i as u32).wrapping_mul(4));
        let line = match decode(word) {
            Ok(insn) => format!("{addr:#010x}: {word:08x}  {}", disassemble(&insn)),
            Err(_) => format!("{addr:#010x}: {word:08x}  .word {word:#010x}"),
        };
        // A closed pipe (e.g. `mdis … | head`) is a normal way to stop.
        if writeln!(out, "{line}").is_err() {
            break;
        }
    }
    ExitCode::SUCCESS
}
