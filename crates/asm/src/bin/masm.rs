//! `masm` — assemble an mcode/guest source file to a flat binary image.
//!
//! ```text
//! masm input.s [-o out.bin] [--base 0x0] [--symbols]
//! ```
//!
//! The output is the flattened little-endian image starting at `--base`
//! (gaps zero-filled). `--symbols` prints the symbol table to stderr.

use metal_asm::{assemble, Options};
use metal_util::cli::{fail, parse_u32, usage};
use std::process::ExitCode;

const USAGE: &str = "masm input.s [-o out.bin] [--base 0xADDR] [--symbols]";

fn main() -> ExitCode {
    let mut input: Option<String> = None;
    let mut output = "a.bin".to_owned();
    let mut base = 0u32;
    let mut symbols = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-o" => match args.next() {
                Some(path) => output = path,
                None => return usage("masm", USAGE, "missing argument to -o"),
            },
            "--base" => match args.next().and_then(|v| parse_u32(&v)) {
                Some(v) => base = v,
                None => return usage("masm", USAGE, "bad --base value"),
            },
            "--symbols" => symbols = true,
            "-h" | "--help" => return usage("masm", USAGE, ""),
            other if input.is_none() && !other.starts_with('-') => {
                input = Some(other.to_owned());
            }
            other => return usage("masm", USAGE, &format!("unknown argument {other:?}")),
        }
    }
    let Some(input) = input else {
        return usage("masm", USAGE, "no input file");
    };
    let src = match std::fs::read_to_string(&input) {
        Ok(src) => src,
        Err(e) => return fail("masm", &format!("cannot read {input}: {e}")),
    };
    // The data segment sits 64 KiB past the text base; a base near the
    // top of the 32-bit space leaves it no room.
    let Some(data_base) = base.checked_add(0x1_0000) else {
        return fail(
            "masm",
            &format!("--base {base:#x} leaves no address space for the data segment"),
        );
    };
    let assembled = match assemble(
        &src,
        Options {
            text_base: base,
            data_base,
        },
    ) {
        Ok(out) => out,
        Err(e) => return fail("masm", &format!("{input}:{e}")),
    };
    let image = match assembled.flatten(base) {
        Ok(image) => image,
        Err(msg) => return fail("masm", &msg),
    };
    if let Err(e) = std::fs::write(&output, &image) {
        return fail("masm", &format!("cannot write {output}: {e}"));
    }
    if symbols {
        for (name, value) in &assembled.symbols {
            eprintln!("{:#010x} {name}", *value as u32);
        }
    }
    eprintln!("masm: wrote {} bytes to {output}", image.len());
    ExitCode::SUCCESS
}
