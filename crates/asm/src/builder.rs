//! A structured mcode generator.
//!
//! The paper closes with: "With compiler support, it can be practical
//! to write hardware features in high level languages such as C." This
//! module is a step in that direction for Rust hosts: a typed builder
//! that composes mcode with structured control flow (blocks, ifs,
//! loops) and unique label management, instead of hand-written strings.
//! The extension kits' idioms (save/restore scratch to Metal registers,
//! skip-the-intercepted-instruction epilogues) are single calls.
//!
//! # Examples
//!
//! ```
//! use metal_asm::builder::McodeBuilder;
//! use metal_isa::Reg;
//!
//! // An mroutine that clamps a0 to [0, 100].
//! let mut b = McodeBuilder::new();
//! b.if_negative(Reg::A0, |b| {
//!     b.li(Reg::A0, 0);
//! });
//! b.li(Reg::T0, 100);
//! b.if_greater(Reg::A0, Reg::T0, |b| {
//!     b.mv(Reg::A0, Reg::T0);
//! });
//! b.mexit();
//! let src = b.finish();
//! assert!(metal_asm::assemble_at(&src, 0xFFF0_0000).is_ok());
//! ```

use core::fmt::Write as _;
use metal_isa::Reg;

/// A structured mcode builder. Emits assembler text accepted by
/// [`crate::assemble()`], with machine-generated labels guaranteed unique.
#[derive(Debug, Default)]
pub struct McodeBuilder {
    out: String,
    next_label: usize,
}

impl McodeBuilder {
    /// An empty builder.
    #[must_use]
    pub fn new() -> McodeBuilder {
        McodeBuilder::default()
    }

    /// Returns the generated source.
    #[must_use]
    pub fn finish(self) -> String {
        self.out
    }

    fn fresh(&mut self, stem: &str) -> String {
        let label = format!("__{stem}_{}", self.next_label);
        self.next_label += 1;
        label
    }

    /// Appends a raw assembly line (escape hatch).
    pub fn raw(&mut self, line: &str) -> &mut Self {
        let _ = writeln!(self.out, "    {line}");
        self
    }

    /// Defines a label at the current position.
    pub fn label(&mut self, name: &str) -> &mut Self {
        let _ = writeln!(self.out, "{name}:");
        self
    }

    // ---- straight-line instructions ----

    /// `li rd, imm`.
    pub fn li(&mut self, rd: Reg, imm: i64) -> &mut Self {
        self.raw(&format!("li {rd}, {imm}"))
    }

    /// `mv rd, rs`.
    pub fn mv(&mut self, rd: Reg, rs: Reg) -> &mut Self {
        self.raw(&format!("mv {rd}, {rs}"))
    }

    /// `addi rd, rs, imm`.
    pub fn addi(&mut self, rd: Reg, rs: Reg, imm: i32) -> &mut Self {
        self.raw(&format!("addi {rd}, {rs}, {imm}"))
    }

    /// `add rd, a, b`.
    pub fn add(&mut self, rd: Reg, a: Reg, b: Reg) -> &mut Self {
        self.raw(&format!("add {rd}, {a}, {b}"))
    }

    /// Reads Metal register `mN` into `rd`.
    pub fn rmr(&mut self, rd: Reg, mreg: u8) -> &mut Self {
        self.raw(&format!("rmr {rd}, m{mreg}"))
    }

    /// Writes `rs` into Metal register `mN`.
    pub fn wmr(&mut self, mreg: u8, rs: Reg) -> &mut Self {
        self.raw(&format!("wmr m{mreg}, {rs}"))
    }

    /// Reads a Metal control register by name (`mcause`, `minsn`, …).
    pub fn rmr_mcr(&mut self, rd: Reg, mcr: &str) -> &mut Self {
        self.raw(&format!("rmr {rd}, {mcr}"))
    }

    /// `mld rd, offset(base)` — MRAM data-segment load.
    pub fn mld(&mut self, rd: Reg, offset: i32, base: Reg) -> &mut Self {
        self.raw(&format!("mld {rd}, {offset}({base})"))
    }

    /// `mst rs, offset(base)` — MRAM data-segment store.
    pub fn mst(&mut self, rs: Reg, offset: i32, base: Reg) -> &mut Self {
        self.raw(&format!("mst {rs}, {offset}({base})"))
    }

    /// `mexit`.
    pub fn mexit(&mut self) -> &mut Self {
        self.raw("mexit")
    }

    // ---- structured control flow ----

    /// Emits `body` only when `reg == 0`.
    pub fn if_zero(&mut self, reg: Reg, body: impl FnOnce(&mut Self)) -> &mut Self {
        let end = self.fresh("endif");
        self.raw(&format!("bnez {reg}, {end}"));
        body(self);
        self.label(&end)
    }

    /// Emits `body` only when `reg != 0`.
    pub fn if_nonzero(&mut self, reg: Reg, body: impl FnOnce(&mut Self)) -> &mut Self {
        let end = self.fresh("endif");
        self.raw(&format!("beqz {reg}, {end}"));
        body(self);
        self.label(&end)
    }

    /// Emits `body` only when `reg < 0` (signed).
    pub fn if_negative(&mut self, reg: Reg, body: impl FnOnce(&mut Self)) -> &mut Self {
        let end = self.fresh("endif");
        self.raw(&format!("bgez {reg}, {end}"));
        body(self);
        self.label(&end)
    }

    /// Emits `body` only when `a > b` (signed).
    pub fn if_greater(&mut self, a: Reg, b: Reg, body: impl FnOnce(&mut Self)) -> &mut Self {
        let end = self.fresh("endif");
        self.raw(&format!("ble {a}, {b}, {end}"));
        body(self);
        self.label(&end)
    }

    /// If/else on `reg == 0`.
    pub fn if_else_zero(
        &mut self,
        reg: Reg,
        then_body: impl FnOnce(&mut Self),
        else_body: impl FnOnce(&mut Self),
    ) -> &mut Self {
        let els = self.fresh("else");
        let end = self.fresh("endif");
        self.raw(&format!("bnez {reg}, {els}"));
        then_body(self);
        self.raw(&format!("j {end}"));
        self.label(&els);
        else_body(self);
        self.label(&end)
    }

    /// A counted loop: `counter` runs from its current value down to 0.
    /// The body must not clobber `counter`.
    pub fn count_down(&mut self, counter: Reg, body: impl FnOnce(&mut Self)) -> &mut Self {
        let top = self.fresh("loop");
        let end = self.fresh("endloop");
        self.label(&top);
        self.raw(&format!("beqz {counter}, {end}"));
        body(self);
        self.raw(&format!("addi {counter}, {counter}, -1"));
        self.raw(&format!("j {top}"));
        self.label(&end)
    }

    /// Loops `body` while `reg != 0` (re-evaluated each iteration).
    pub fn while_nonzero(&mut self, reg: Reg, body: impl FnOnce(&mut Self)) -> &mut Self {
        let top = self.fresh("loop");
        let end = self.fresh("endloop");
        self.label(&top);
        self.raw(&format!("beqz {reg}, {end}"));
        body(self);
        self.raw(&format!("j {top}"));
        self.label(&end)
    }

    // ---- mcode idioms ----

    /// Saves scratch GPRs into Metal registers (the transparent-handler
    /// prologue), returning the list for [`McodeBuilder::restore_scratch`].
    pub fn save_scratch(&mut self, pairs: &[(Reg, u8)]) -> &mut Self {
        for (reg, mreg) in pairs {
            self.wmr(*mreg, *reg);
        }
        self
    }

    /// Restores GPRs saved by [`McodeBuilder::save_scratch`].
    pub fn restore_scratch(&mut self, pairs: &[(Reg, u8)]) -> &mut Self {
        for (reg, mreg) in pairs {
            self.rmr(*reg, *mreg);
        }
        self
    }

    /// The intercept epilogue: advance `m31` past the intercepted
    /// instruction (using `tmp`) so `mexit` skips it.
    pub fn skip_intercepted(&mut self, tmp: Reg) -> &mut Self {
        self.rmr(tmp, 31);
        self.addi(tmp, tmp, 4);
        self.wmr(31, tmp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assemble_at;

    #[test]
    fn straight_line_assembles() {
        let mut b = McodeBuilder::new();
        b.li(Reg::T0, 5)
            .addi(Reg::T0, Reg::T0, 1)
            .wmr(3, Reg::T0)
            .mexit();
        let words = assemble_at(&b.finish(), 0xFFF0_0000).unwrap();
        assert!(words.len() >= 4);
    }

    #[test]
    fn labels_are_unique_across_nested_blocks() {
        let mut b = McodeBuilder::new();
        b.if_zero(Reg::A0, |b| {
            b.if_zero(Reg::A1, |b| {
                b.li(Reg::A2, 1);
            });
        });
        b.if_zero(Reg::A0, |b| {
            b.li(Reg::A3, 2);
        });
        b.mexit();
        // Duplicate labels would fail assembly.
        assert!(assemble_at(&b.finish(), 0xFFF0_0000).is_ok());
    }

    #[test]
    fn generated_routine_runs() {
        // abs-diff: a0 = |a0 - a1|, via structured if/else.
        let mut b = McodeBuilder::new();
        b.raw("sub t0, a0, a1");
        b.if_negative(Reg::T0, |b| {
            b.raw("neg t0, t0");
        });
        b.mv(Reg::A0, Reg::T0);
        b.mexit();
        let src = b.finish();

        let mut core = metal_core_stub::build(&src);
        let program = assemble_at("li a0, 3\n li a1, 10\n menter 0\n ebreak", 0).unwrap();
        let bytes: Vec<u8> = program.iter().flat_map(|w| w.to_le_bytes()).collect();
        core.load_segments([(0u32, bytes.as_slice())], 0);
        match core.run(100_000) {
            Some(metal_pipeline::HaltReason::Ebreak { code }) => assert_eq!(code, 7),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn count_down_loops() {
        // sum 1..=n with a structured loop.
        let mut b = McodeBuilder::new();
        b.li(Reg::T0, 0);
        b.count_down(Reg::A0, |b| {
            b.add(Reg::T0, Reg::T0, Reg::A0);
        });
        b.mv(Reg::A0, Reg::T0);
        b.mexit();
        let src = b.finish();
        let mut core = metal_core_stub::build(&src);
        let program = assemble_at("li a0, 10\n menter 0\n ebreak", 0).unwrap();
        let bytes: Vec<u8> = program.iter().flat_map(|w| w.to_le_bytes()).collect();
        core.load_segments([(0u32, bytes.as_slice())], 0);
        match core.run(100_000) {
            Some(metal_pipeline::HaltReason::Ebreak { code }) => assert_eq!(code, 55),
            other => panic!("{other:?}"),
        }
    }

    /// Test-only indirection: metal-core depends on this crate, so the
    /// builder's end-to-end tests construct the machine through the
    /// dev-dependency.
    mod metal_core_stub {
        pub fn build(src: &str) -> metal_pipeline::Core<metal_core::Metal> {
            metal_core::MetalBuilder::new()
                .routine(0, "generated", src)
                .build_core(metal_pipeline::state::CoreConfig::default())
                .unwrap()
        }
    }
}
