//! Constant-expression parsing and evaluation.
//!
//! Expressions appear in immediates, directives, and `li`/`la` operands:
//! integers, symbols, `.` (the current location counter), parentheses,
//! unary `-`/`~`, binary `+ - * / & | ^ << >>`, and the `%hi`/`%lo`
//! relocation operators.

use crate::lexer::Token;
use crate::AsmError;

/// Symbol-resolution context for expression evaluation.
pub trait SymEnv {
    /// Value of a symbol, or `None` if (not yet) defined.
    fn lookup(&self, name: &str) -> Option<i64>;
    /// The current location counter (address of the statement).
    fn dot(&self) -> i64;
}

/// Evaluates an expression starting at `toks[pos]`.
///
/// Returns the value and the index of the first token *after* the
/// expression.
pub fn eval(
    toks: &[Token],
    pos: usize,
    env: &dyn SymEnv,
    lineno: usize,
) -> Result<(i64, usize), AsmError> {
    parse_binary(toks, pos, env, lineno, 0)
}

/// Operator precedence levels, loosest first.
const LEVELS: &[&[BinOp]] = &[
    &[BinOp::Or],
    &[BinOp::Xor],
    &[BinOp::And],
    &[BinOp::Shl, BinOp::Shr],
    &[BinOp::Add, BinOp::Sub],
    &[BinOp::Mul, BinOp::Div],
];

#[derive(Clone, Copy, PartialEq, Eq)]
enum BinOp {
    Or,
    Xor,
    And,
    Shl,
    Shr,
    Add,
    Sub,
    Mul,
    Div,
}

/// Tries to match a binary operator at `toks[pos]`; returns (op, next pos).
fn match_op(toks: &[Token], pos: usize) -> Option<(BinOp, usize)> {
    match toks.get(pos)? {
        Token::Punct('|') => Some((BinOp::Or, pos + 1)),
        Token::Punct('^') => Some((BinOp::Xor, pos + 1)),
        Token::Punct('&') => Some((BinOp::And, pos + 1)),
        Token::Punct('<') if toks.get(pos + 1) == Some(&Token::Punct('<')) => {
            Some((BinOp::Shl, pos + 2))
        }
        Token::Punct('>') if toks.get(pos + 1) == Some(&Token::Punct('>')) => {
            Some((BinOp::Shr, pos + 2))
        }
        Token::Punct('+') => Some((BinOp::Add, pos + 1)),
        Token::Punct('-') => Some((BinOp::Sub, pos + 1)),
        Token::Punct('*') => Some((BinOp::Mul, pos + 1)),
        Token::Punct('/') => Some((BinOp::Div, pos + 1)),
        _ => None,
    }
}

fn parse_binary(
    toks: &[Token],
    pos: usize,
    env: &dyn SymEnv,
    lineno: usize,
    level: usize,
) -> Result<(i64, usize), AsmError> {
    if level >= LEVELS.len() {
        return parse_unary(toks, pos, env, lineno);
    }
    let (mut lhs, mut pos) = parse_binary(toks, pos, env, lineno, level + 1)?;
    while let Some((op, next)) = match_op(toks, pos) {
        if !LEVELS[level].contains(&op) {
            break;
        }
        let (rhs, after) = parse_binary(toks, next, env, lineno, level + 1)?;
        lhs = apply(op, lhs, rhs, lineno)?;
        pos = after;
    }
    Ok((lhs, pos))
}

fn apply(op: BinOp, a: i64, b: i64, lineno: usize) -> Result<i64, AsmError> {
    Ok(match op {
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::And => a & b,
        BinOp::Shl => a.wrapping_shl(b as u32 & 63),
        BinOp::Shr => ((a as u64).wrapping_shr(b as u32 & 63)) as i64,
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Div => {
            if b == 0 {
                return Err(AsmError::new(lineno, "division by zero in expression"));
            }
            a / b
        }
    })
}

fn parse_unary(
    toks: &[Token],
    pos: usize,
    env: &dyn SymEnv,
    lineno: usize,
) -> Result<(i64, usize), AsmError> {
    match toks.get(pos) {
        Some(Token::Punct('-')) => {
            let (v, next) = parse_unary(toks, pos + 1, env, lineno)?;
            Ok((v.wrapping_neg(), next))
        }
        Some(Token::Punct('~')) => {
            let (v, next) = parse_unary(toks, pos + 1, env, lineno)?;
            Ok((!v, next))
        }
        Some(Token::Punct('+')) => parse_unary(toks, pos + 1, env, lineno),
        _ => parse_primary(toks, pos, env, lineno),
    }
}

fn parse_primary(
    toks: &[Token],
    pos: usize,
    env: &dyn SymEnv,
    lineno: usize,
) -> Result<(i64, usize), AsmError> {
    match toks.get(pos) {
        Some(Token::Int(v)) => Ok((*v, pos + 1)),
        Some(Token::Ident(name)) if name == "." => Ok((env.dot(), pos + 1)),
        Some(Token::Ident(name)) => match env.lookup(name) {
            Some(v) => Ok((v, pos + 1)),
            None => Err(AsmError::new(lineno, format!("undefined symbol {name:?}"))),
        },
        Some(Token::Punct('(')) => {
            let (v, next) = eval(toks, pos + 1, env, lineno)?;
            if toks.get(next) != Some(&Token::Punct(')')) {
                return Err(AsmError::new(lineno, "missing ')' in expression"));
            }
            Ok((v, next + 1))
        }
        Some(Token::Percent(kind)) => {
            if toks.get(pos + 1) != Some(&Token::Punct('(')) {
                return Err(AsmError::new(lineno, format!("%{kind} requires '('")));
            }
            let (v, next) = eval(toks, pos + 2, env, lineno)?;
            if toks.get(next) != Some(&Token::Punct(')')) {
                return Err(AsmError::new(lineno, "missing ')' in expression"));
            }
            let v = v as i32;
            let out = match kind.as_str() {
                // %hi compensates for the sign extension of the matching %lo.
                "hi" => i64::from((v.wrapping_add(0x800) as u32) >> 12),
                "lo" => i64::from((v << 20) >> 20),
                other => return Err(AsmError::new(lineno, format!("unknown operator %{other}"))),
            };
            Ok((out, next + 1))
        }
        other => Err(AsmError::new(
            lineno,
            format!("expected expression, found {other:?}"),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize_line;
    use std::collections::HashMap;

    struct Env {
        syms: HashMap<String, i64>,
        dot: i64,
    }

    impl SymEnv for Env {
        fn lookup(&self, name: &str) -> Option<i64> {
            self.syms.get(name).copied()
        }
        fn dot(&self) -> i64 {
            self.dot
        }
    }

    fn ev(src: &str) -> i64 {
        let mut syms = HashMap::new();
        syms.insert("sym".to_owned(), 0x1234_5678i64);
        syms.insert("two".to_owned(), 2);
        let env = Env { syms, dot: 0x100 };
        let toks = tokenize_line(src, 1).unwrap();
        let (v, next) = eval(&toks, 0, &env, 1).unwrap();
        assert_eq!(next, toks.len(), "trailing tokens in {src:?}");
        v
    }

    #[test]
    fn precedence() {
        assert_eq!(ev("1 + 2 * 3"), 7);
        assert_eq!(ev("(1 + 2) * 3"), 9);
        assert_eq!(ev("1 << 4 + 1"), 1 << 5, "shift binds looser than +");
        assert_eq!(ev("0xF0 | 0x0F & 0x3"), 0xF3);
        assert_eq!(ev("6 / two"), 3);
    }

    #[test]
    fn unary() {
        assert_eq!(ev("-4"), -4);
        assert_eq!(ev("~0"), -1);
        assert_eq!(ev("- - 5"), 5);
        assert_eq!(ev("10 - -3"), 13);
    }

    #[test]
    fn dot_and_symbols() {
        assert_eq!(ev("."), 0x100);
        assert_eq!(ev(". + 8"), 0x108);
        assert_eq!(ev("sym"), 0x1234_5678);
    }

    #[test]
    fn hi_lo_recombine() {
        // For any value: (%hi(v) << 12) + sext(%lo(v)) == v.
        for v in [0x1234_5678i64, 0x0000_0800, 0xFFFF_F800u32 as i64, 0, -1] {
            let mut syms = HashMap::new();
            syms.insert("v".to_owned(), v);
            let env = Env { syms, dot: 0 };
            let hi = eval(&tokenize_line("%hi(v)", 1).unwrap(), 0, &env, 1)
                .unwrap()
                .0;
            let lo = eval(&tokenize_line("%lo(v)", 1).unwrap(), 0, &env, 1)
                .unwrap()
                .0;
            let recombined = ((hi as u32) << 12).wrapping_add(lo as u32);
            assert_eq!(recombined, v as u32, "v = {v:#x}");
        }
    }

    #[test]
    fn errors() {
        let env = Env {
            syms: HashMap::new(),
            dot: 0,
        };
        let toks = tokenize_line("missing", 3).unwrap();
        let err = eval(&toks, 0, &env, 3).unwrap_err();
        assert!(err.msg.contains("undefined symbol"));
        let toks = tokenize_line("1 / 0", 1).unwrap();
        assert!(eval(&toks, 0, &env, 1).is_err());
        let toks = tokenize_line("(1", 1).unwrap();
        assert!(eval(&toks, 0, &env, 1).is_err());
    }
}
