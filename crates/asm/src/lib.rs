//! Two-pass assembler for mcode and guest programs.
//!
//! Metal's programming interface, *mcode*, "consists of the host
//! processor's native assembly plus several Metal specific instructions"
//! (paper §2). This crate assembles that language: the RV32IM-compatible
//! base ISA, the Metal extension mnemonics, the usual pseudo-instructions
//! (`li`, `la`, `j`, `call`, `ret`, …), labels, expressions with
//! `%hi`/`%lo`, and data directives.
//!
//! # Examples
//!
//! ```
//! use metal_asm::assemble_at;
//!
//! let words = assemble_at(
//!     r#"
//!     start:
//!         li   a0, 40
//!         addi a0, a0, 2
//!         j    start
//!     "#,
//!     0x1000,
//! )
//! .unwrap();
//! assert_eq!(words.len(), 3);
//! ```

pub mod assemble;
pub mod builder;
pub mod expr;
pub mod lexer;
pub mod parser;

pub use assemble::{assemble, assemble_at, Assembled, Options, Segment, SourceSpan};

use core::fmt;

/// An assembly error with source-line context.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line number.
    pub line: usize,
    /// Human-readable description.
    pub msg: String,
}

impl AsmError {
    pub(crate) fn new(line: usize, msg: impl Into<String>) -> AsmError {
        AsmError {
            line,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for AsmError {}
