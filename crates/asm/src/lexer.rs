//! Line-oriented tokenizer for the assembler.

use crate::AsmError;

/// One token of an assembly source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Token {
    /// Identifier, mnemonic, register name, or directive (starts with `.`).
    Ident(String),
    /// Integer literal (always non-negative; `-` is an operator token).
    Int(i64),
    /// String literal (quotes removed, escapes applied).
    Str(String),
    /// `%hi` / `%lo` relocation operator.
    Percent(String),
    /// Single punctuation or operator: `, ( ) : + - * / & | ^ ~ < > =`.
    /// Shift operators are delivered as two consecutive `<`/`>` tokens.
    Punct(char),
}

/// Tokenizes a single source line. Comments (`#`, `;`, `//`) terminate the
/// line.
pub fn tokenize_line(line: &str, lineno: usize) -> Result<Vec<Token>, AsmError> {
    tokenize_line_cols(line, lineno).map(|(toks, _)| toks)
}

/// [`tokenize_line`] plus the 1-based starting column of each token, so
/// diagnostics can point into the source line rather than just at it.
pub fn tokenize_line_cols(line: &str, lineno: usize) -> Result<(Vec<Token>, Vec<usize>), AsmError> {
    let mut out = Vec::new();
    let mut cols = Vec::new();
    let bytes: Vec<char> = line.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        let col = i + 1;
        match c {
            ' ' | '\t' | '\r' => i += 1,
            '#' | ';' => break,
            '/' if bytes.get(i + 1) == Some(&'/') => break,
            '"' => {
                let (s, next) = lex_string(&bytes, i + 1, lineno)?;
                out.push(Token::Str(s));
                cols.push(col);
                i = next;
            }
            '\'' => {
                let (s, next) = lex_char(&bytes, i + 1, lineno)?;
                out.push(Token::Int(s));
                cols.push(col);
                i = next;
            }
            '%' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && (bytes[j].is_alphanumeric() || bytes[j] == '_') {
                    j += 1;
                }
                if j == start {
                    return Err(AsmError::new(lineno, "dangling '%'"));
                }
                out.push(Token::Percent(bytes[start..j].iter().collect()));
                cols.push(col);
                i = j;
            }
            '0'..='9' => {
                let (v, next) = lex_number(&bytes, i, lineno)?;
                out.push(Token::Int(v));
                cols.push(col);
                i = next;
            }
            c if c.is_alphabetic() || c == '_' || c == '.' => {
                let mut j = i + 1;
                while j < bytes.len()
                    && (bytes[j].is_alphanumeric() || bytes[j] == '_' || bytes[j] == '.')
                {
                    j += 1;
                }
                out.push(Token::Ident(bytes[i..j].iter().collect()));
                cols.push(col);
                i = j;
            }
            ',' | '(' | ')' | ':' | '+' | '-' | '*' | '/' | '&' | '|' | '^' | '~' | '<' | '>'
            | '=' => {
                out.push(Token::Punct(c));
                cols.push(col);
                i += 1;
            }
            other => {
                return Err(AsmError::new(
                    lineno,
                    format!("unexpected character {other:?}"),
                ))
            }
        }
    }
    Ok((out, cols))
}

fn lex_number(chars: &[char], start: usize, lineno: usize) -> Result<(i64, usize), AsmError> {
    let mut i = start;
    let (radix, digits_start) = if chars[i] == '0' && matches!(chars.get(i + 1), Some('x' | 'X')) {
        (16, i + 2)
    } else if chars[i] == '0' && matches!(chars.get(i + 1), Some('b' | 'B')) {
        (2, i + 2)
    } else {
        (10, i)
    };
    i = digits_start;
    let mut text = String::new();
    while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
        if chars[i] != '_' {
            text.push(chars[i]);
        }
        i += 1;
    }
    if text.is_empty() {
        return Err(AsmError::new(lineno, "malformed number"));
    }
    let value = i64::from_str_radix(&text, radix)
        .map_err(|_| AsmError::new(lineno, format!("malformed number {text:?}")))?;
    Ok((value, i))
}

fn lex_string(chars: &[char], start: usize, lineno: usize) -> Result<(String, usize), AsmError> {
    let mut out = String::new();
    let mut i = start;
    while i < chars.len() {
        match chars[i] {
            '"' => return Ok((out, i + 1)),
            '\\' => {
                let (c, next) = lex_escape(chars, i + 1, lineno)?;
                out.push(c);
                i = next;
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    Err(AsmError::new(lineno, "unterminated string literal"))
}

fn lex_char(chars: &[char], start: usize, lineno: usize) -> Result<(i64, usize), AsmError> {
    let (c, next) = match chars.get(start) {
        Some('\\') => lex_escape(chars, start + 1, lineno)?,
        Some(&c) => (c, start + 1),
        None => return Err(AsmError::new(lineno, "unterminated char literal")),
    };
    if chars.get(next) != Some(&'\'') {
        return Err(AsmError::new(lineno, "unterminated char literal"));
    }
    Ok((c as i64, next + 1))
}

fn lex_escape(chars: &[char], i: usize, lineno: usize) -> Result<(char, usize), AsmError> {
    match chars.get(i) {
        Some('n') => Ok(('\n', i + 1)),
        Some('t') => Ok(('\t', i + 1)),
        Some('r') => Ok(('\r', i + 1)),
        Some('0') => Ok(('\0', i + 1)),
        Some('\\') => Ok(('\\', i + 1)),
        Some('"') => Ok(('"', i + 1)),
        Some('\'') => Ok(('\'', i + 1)),
        Some(c) => Err(AsmError::new(lineno, format!("unknown escape \\{c}"))),
        None => Err(AsmError::new(lineno, "dangling backslash")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_instruction() {
        let toks = tokenize_line("  addi a0, a1, -4 # comment", 1).unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("addi".into()),
                Token::Ident("a0".into()),
                Token::Punct(','),
                Token::Ident("a1".into()),
                Token::Punct(','),
                Token::Punct('-'),
                Token::Int(4),
            ]
        );
    }

    #[test]
    fn tokenize_numbers() {
        let toks = tokenize_line("0x10 0b101 42 1_000", 1).unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Int(16),
                Token::Int(5),
                Token::Int(42),
                Token::Int(1000)
            ]
        );
    }

    #[test]
    fn tokenize_label_and_directive() {
        let toks = tokenize_line("loop: .word 1, 2", 1).unwrap();
        assert_eq!(toks[0], Token::Ident("loop".into()));
        assert_eq!(toks[1], Token::Punct(':'));
        assert_eq!(toks[2], Token::Ident(".word".into()));
    }

    #[test]
    fn tokenize_string_escapes() {
        let toks = tokenize_line(r#".asciz "hi\n\t\"q\"""#, 1).unwrap();
        assert_eq!(toks[1], Token::Str("hi\n\t\"q\"".into()));
    }

    #[test]
    fn tokenize_char_literal() {
        let toks = tokenize_line("li a0, 'A'", 1).unwrap();
        assert_eq!(toks.last(), Some(&Token::Int(65)));
    }

    #[test]
    fn tokenize_percent() {
        let toks = tokenize_line("lui a0, %hi(sym)", 1).unwrap();
        assert!(toks.contains(&Token::Percent("hi".into())));
    }

    #[test]
    fn comment_styles() {
        for line in ["nop # x", "nop ; x", "nop // x"] {
            let toks = tokenize_line(line, 1).unwrap();
            assert_eq!(toks, vec![Token::Ident("nop".into())], "{line}");
        }
    }

    #[test]
    fn errors_carry_line() {
        let err = tokenize_line("`", 7).unwrap_err();
        assert_eq!(err.line, 7);
        assert!(tokenize_line("\"abc", 1).is_err());
        assert!(tokenize_line("0x", 1).is_err());
    }
}
