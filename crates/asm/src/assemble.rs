//! The two-pass assembler driver: layout (pass 1) and encoding (pass 2).

use crate::expr::{eval, SymEnv};
use crate::lexer::Token;
use crate::parser::{parse, Located, Stmt};
use crate::AsmError;
use metal_isa::insn::{AluOp, Cond, CsrOp, CsrSrc, Insn, LoadOp, MulOp, StoreOp};
use metal_isa::metal::{MarchOp, Mcr, MENTER_INDIRECT};
use metal_isa::reg::{MregIdx, Reg};
use metal_isa::{fits_simm, try_encode};
use std::collections::BTreeMap;

/// Base addresses for the `.text` and `.data` sections.
#[derive(Clone, Copy, Debug)]
pub struct Options {
    /// Initial location counter of `.text` (the default section).
    pub text_base: u32,
    /// Initial location counter of `.data`.
    pub data_base: u32,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            text_base: 0,
            data_base: 0x1_0000,
        }
    }
}

/// A contiguous run of assembled bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Segment {
    /// Start address.
    pub base: u32,
    /// Raw bytes.
    pub data: Vec<u8>,
}

impl Segment {
    /// Address one past the last byte.
    #[must_use]
    pub fn end(&self) -> u32 {
        self.base + self.data.len() as u32
    }
}

/// Maps a run of assembled bytes back to the source statement that
/// produced it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SourceSpan {
    /// Start address of the emitted bytes.
    pub addr: u32,
    /// Number of bytes emitted (a pseudo-instruction may cover several
    /// words).
    pub len: u32,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column of the statement's first token.
    pub col: u32,
}

/// The output of a successful assembly.
#[derive(Clone, Debug, Default)]
pub struct Assembled {
    /// Merged, address-sorted segments.
    pub segments: Vec<Segment>,
    /// All defined symbols (labels and `.equ`/`=` definitions).
    pub symbols: BTreeMap<String, i64>,
    /// Address-sorted source spans for every emitting statement.
    pub spans: Vec<SourceSpan>,
}

impl Assembled {
    /// Looks up a label address.
    #[must_use]
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.symbols.get(name).map(|&v| v as u32)
    }

    /// The source span covering `addr`, if any statement emitted it.
    #[must_use]
    pub fn span_at(&self, addr: u32) -> Option<SourceSpan> {
        let idx = match self.spans.binary_search_by_key(&addr, |s| s.addr) {
            Ok(i) => i,
            Err(0) => return None,
            Err(i) => i - 1,
        };
        let span = self.spans[idx];
        (addr >= span.addr && addr < span.addr + span.len).then_some(span)
    }

    /// Flattens the image into a zero-filled byte vector starting at
    /// `base`. Returns an error message if any segment lies below `base`.
    pub fn flatten(&self, base: u32) -> Result<Vec<u8>, String> {
        let mut out = Vec::new();
        for seg in &self.segments {
            if seg.base < base {
                return Err(format!(
                    "segment at {:#x} lies below flatten base {base:#x}",
                    seg.base
                ));
            }
            let offset = (seg.base - base) as usize;
            if out.len() < offset + seg.data.len() {
                out.resize(offset + seg.data.len(), 0);
            }
            out[offset..offset + seg.data.len()].copy_from_slice(&seg.data);
        }
        Ok(out)
    }

    /// The image as little-endian words from `base` (zero-filled gaps).
    pub fn words(&self, base: u32) -> Result<Vec<u32>, String> {
        let mut bytes = self.flatten(base)?;
        while bytes.len() % 4 != 0 {
            bytes.push(0);
        }
        Ok(bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    }
}

/// Assembles a source file.
pub fn assemble(src: &str, options: Options) -> Result<Assembled, AsmError> {
    let stmts = parse(src)?;
    let mut asm = Assembler::new(options);
    asm.pass1(&stmts)?;
    asm.run_pass2(&stmts, options)?;
    asm.finish()
}

/// Assembles a single-section program at `base` and returns its words.
///
/// Convenience for tests and mroutines: the whole image is flattened from
/// `base` with zero fill.
pub fn assemble_at(src: &str, base: u32) -> Result<Vec<u32>, AsmError> {
    let out = assemble(
        src,
        Options {
            text_base: base,
            data_base: base + 0x1_0000,
        },
    )?;
    out.words(base).map_err(|msg| AsmError::new(0, msg))
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Section {
    Text,
    Data,
}

struct Assembler {
    loc_text: u32,
    loc_data: u32,
    section: Section,
    symbols: BTreeMap<String, i64>,
    chunks: Vec<(u32, Vec<u8>)>,
    spans: Vec<SourceSpan>,
}

struct Env<'a> {
    symbols: &'a BTreeMap<String, i64>,
    dot: i64,
}

impl SymEnv for Env<'_> {
    fn lookup(&self, name: &str) -> Option<i64> {
        self.symbols.get(name).copied()
    }
    fn dot(&self) -> i64 {
        self.dot
    }
}

/// An environment with no symbols at all, used to decide `li` expansion
/// deterministically across passes.
struct ConstEnv;

impl SymEnv for ConstEnv {
    fn lookup(&self, _name: &str) -> Option<i64> {
        None
    }
    fn dot(&self) -> i64 {
        0
    }
}

/// Decides whether `li` fits a single `addi`: only when the operand is a
/// symbol-free constant expression within the 12-bit signed range. The
/// choice must not depend on symbol values so that pass 1 and pass 2
/// agree on instruction sizes.
fn li_is_short(operand: &[Token]) -> bool {
    match eval(operand, 0, &ConstEnv, 0) {
        Ok((v, next)) if next == operand.len() => fits_simm(v, 12),
        _ => false,
    }
}

impl Assembler {
    fn new(options: Options) -> Assembler {
        Assembler {
            loc_text: options.text_base,
            loc_data: options.data_base,
            section: Section::Text,
            symbols: BTreeMap::new(),
            chunks: Vec::new(),
            spans: Vec::new(),
        }
    }

    fn loc(&mut self) -> &mut u32 {
        match self.section {
            Section::Text => &mut self.loc_text,
            Section::Data => &mut self.loc_data,
        }
    }

    /// Pass 1: compute section layout and define all labels.
    fn pass1(&mut self, stmts: &[Located]) -> Result<(), AsmError> {
        for Located { line, stmt, .. } in stmts {
            let line = *line;
            match stmt {
                Stmt::Label(name) => {
                    let addr = i64::from(*self.loc());
                    if self.symbols.insert(name.clone(), addr).is_some() {
                        return Err(AsmError::new(line, format!("duplicate label {name:?}")));
                    }
                }
                Stmt::Assign { name, expr } => {
                    let dot = i64::from(*self.loc());
                    let env = Env {
                        symbols: &self.symbols,
                        dot,
                    };
                    let (v, next) = eval(expr, 0, &env, line)?;
                    expect_end(expr, next, line)?;
                    self.symbols.insert(name.clone(), v);
                }
                Stmt::Directive { name, args } => {
                    self.directive(line, name, args, None)?;
                }
                Stmt::Insn { mnemonic, operands } => {
                    let words = insn_size(line, mnemonic, operands)?;
                    *self.loc() += 4 * words;
                }
            }
        }
        // Reset counters for pass 2.
        Ok(())
    }

    fn finish(self) -> Result<Assembled, AsmError> {
        let mut chunks = self.chunks;
        chunks.sort_by_key(|c| c.0);
        let mut segments: Vec<Segment> = Vec::new();
        for (base, data) in chunks {
            if data.is_empty() {
                continue;
            }
            if let Some(last) = segments.last_mut() {
                if base < last.end() {
                    return Err(AsmError::new(
                        0,
                        format!("overlapping output at address {base:#x}"),
                    ));
                }
                if base == last.end() {
                    last.data.extend_from_slice(&data);
                    continue;
                }
            }
            segments.push(Segment { base, data });
        }
        let mut spans = self.spans;
        spans.sort_by_key(|s| s.addr);
        Ok(Assembled {
            segments,
            symbols: self.symbols,
            spans,
        })
    }

    fn emit(&mut self, bytes: &[u8]) {
        let at = *self.loc();
        self.chunks.push((at, bytes.to_vec()));
        *self.loc() += bytes.len() as u32;
    }

    fn record_span(&mut self, addr: u32, len: u32, line: usize, col: usize) {
        if len > 0 {
            self.spans.push(SourceSpan {
                addr,
                len,
                line: line as u32,
                col: col as u32,
            });
        }
    }

    /// Handles a directive. In pass 1 (`emit == None`) only layout effects
    /// apply; in pass 2 data is emitted.
    fn directive(
        &mut self,
        line: usize,
        name: &str,
        args: &[Vec<Token>],
        emit: Option<()>,
    ) -> Result<(), AsmError> {
        let emitting = emit.is_some();
        match name {
            "text" => self.section = Section::Text,
            "data" => self.section = Section::Data,
            "globl" | "global" | "section" | "p2align_ignored" => {}
            "org" => {
                let v = self.eval_one(line, args, 0)?;
                *self.loc() = v as u32;
            }
            "align" => {
                let v = self.eval_one(line, args, 0)?;
                if !(0..=16).contains(&v) {
                    return Err(AsmError::new(line, ".align power out of range"));
                }
                let align = 1u32 << v;
                let loc = *self.loc();
                let pad = (align - (loc % align)) % align;
                if emitting {
                    self.emit(&vec![0u8; pad as usize]);
                } else {
                    *self.loc() += pad;
                }
            }
            "space" | "skip" => {
                let n = self.eval_one(line, args, 0)?;
                if n < 0 {
                    return Err(AsmError::new(line, ".space size is negative"));
                }
                let fill = if args.len() > 1 {
                    self.eval_one(line, args, 1)? as u8
                } else {
                    0
                };
                if emitting {
                    self.emit(&vec![fill; n as usize]);
                } else {
                    *self.loc() += n as u32;
                }
            }
            "word" | "half" | "byte" => {
                let width = match name {
                    "word" => 4,
                    "half" => 2,
                    _ => 1,
                };
                if emitting {
                    let mut bytes = Vec::with_capacity(args.len() * width);
                    for idx in 0..args.len() {
                        let v = self.eval_one(line, args, idx)?;
                        bytes.extend_from_slice(&v.to_le_bytes()[..width]);
                    }
                    self.emit(&bytes);
                } else {
                    *self.loc() += (args.len() * width) as u32;
                }
            }
            "ascii" | "asciz" => {
                let mut bytes = Vec::new();
                for arg in args {
                    match arg.as_slice() {
                        [Token::Str(s)] => bytes.extend_from_slice(s.as_bytes()),
                        _ => return Err(AsmError::new(line, format!(".{name} expects strings"))),
                    }
                    if name == "asciz" {
                        bytes.push(0);
                    }
                }
                if emitting {
                    self.emit(&bytes);
                } else {
                    *self.loc() += bytes.len() as u32;
                }
            }
            "equ" | "set" => {
                if args.len() != 2 {
                    return Err(AsmError::new(line, ".equ expects name, value"));
                }
                let sym = match args[0].as_slice() {
                    [Token::Ident(n)] => n.clone(),
                    _ => return Err(AsmError::new(line, ".equ name must be an identifier")),
                };
                let v = self.eval_one(line, args, 1)?;
                self.symbols.insert(sym, v);
            }
            other => {
                return Err(AsmError::new(line, format!("unknown directive .{other}")));
            }
        }
        Ok(())
    }

    fn eval_one(&mut self, line: usize, args: &[Vec<Token>], idx: usize) -> Result<i64, AsmError> {
        let Some(arg) = args.get(idx) else {
            return Err(AsmError::new(line, "missing directive argument"));
        };
        let dot = i64::from(*self.loc());
        let env = Env {
            symbols: &self.symbols,
            dot,
        };
        let (v, next) = eval(arg, 0, &env, line)?;
        expect_end(arg, next, line)?;
        Ok(v)
    }
}

fn expect_end(toks: &[Token], next: usize, line: usize) -> Result<(), AsmError> {
    if next != toks.len() {
        Err(AsmError::new(line, "trailing tokens after expression"))
    } else {
        Ok(())
    }
}

/// The number of 4-byte words a (pseudo-)instruction occupies. Must agree
/// exactly with [`expand`].
fn insn_size(line: usize, mnemonic: &str, operands: &[Vec<Token>]) -> Result<u32, AsmError> {
    Ok(match mnemonic {
        "li" => {
            if operands.len() != 2 {
                return Err(AsmError::new(line, "li expects rd, imm"));
            }
            if li_is_short(&operands[1]) {
                1
            } else {
                2
            }
        }
        "la" => 2,
        _ => 1,
    })
}

/// Parses an operand as a GPR.
fn as_reg(toks: &[Token], line: usize) -> Result<Reg, AsmError> {
    match toks {
        [Token::Ident(name)] => Reg::parse(name)
            .ok_or_else(|| AsmError::new(line, format!("unknown register {name:?}"))),
        other => Err(AsmError::new(line, format!("expected register: {other:?}"))),
    }
}

/// True if the operand syntactically names a GPR.
fn is_reg(toks: &[Token]) -> bool {
    matches!(toks, [Token::Ident(name)] if Reg::parse(name).is_some())
}

/// Parses `offset(reg)` or `(reg)`.
fn as_mem(toks: &[Token], env: &dyn SymEnv, line: usize) -> Result<(i32, Reg), AsmError> {
    // Find the top-level '(' that starts the register part: it must be
    // followed by exactly [Ident, ')'] at the end of the operand.
    if toks.len() < 3 || toks[toks.len() - 1] != Token::Punct(')') {
        return Err(AsmError::new(line, "expected offset(register) operand"));
    }
    let open = toks.len() - 3;
    if toks[open] != Token::Punct('(') {
        return Err(AsmError::new(line, "expected offset(register) operand"));
    }
    let reg = match &toks[open + 1] {
        Token::Ident(name) => Reg::parse(name)
            .ok_or_else(|| AsmError::new(line, format!("unknown register {name:?}")))?,
        other => return Err(AsmError::new(line, format!("expected register: {other:?}"))),
    };
    let offset = if open == 0 {
        0
    } else {
        let (v, next) = eval(&toks[..open], 0, env, line)?;
        if next != open {
            return Err(AsmError::new(line, "malformed memory offset"));
        }
        v as i32
    };
    Ok((offset, reg))
}

/// Parses an `rmr`/`wmr` Metal-register operand: `mN`, an MCR name, or an
/// integer expression.
fn as_mreg(toks: &[Token], env: &dyn SymEnv, line: usize) -> Result<MregIdx, AsmError> {
    if let [Token::Ident(name)] = toks {
        if let Some(rest) = name.strip_prefix('m') {
            if let Ok(n) = rest.parse::<u8>() {
                return MregIdx::mreg(n)
                    .ok_or_else(|| AsmError::new(line, format!("no Metal register m{n}")));
            }
        }
        if let Some(mcr) = Mcr::parse(name) {
            return Ok(mcr.index());
        }
    }
    let (v, next) = eval(toks, 0, env, line)?;
    expect_end(toks, next, line)?;
    if !(0..0x1000).contains(&v) {
        return Err(AsmError::new(line, "Metal register index out of range"));
    }
    Ok(MregIdx::from_field(v as u32))
}

/// Parses a CSR operand: symbolic name or integer expression.
fn as_csr(toks: &[Token], env: &dyn SymEnv, line: usize) -> Result<u16, AsmError> {
    if let [Token::Ident(name)] = toks {
        if let Some(csr) = metal_isa::csr::parse(name) {
            return Ok(csr);
        }
    }
    let (v, next) = eval(toks, 0, env, line)?;
    expect_end(toks, next, line)?;
    if !(0..0x1000).contains(&v) {
        return Err(AsmError::new(line, "CSR address out of range"));
    }
    Ok(v as u16)
}

fn as_expr(toks: &[Token], env: &dyn SymEnv, line: usize) -> Result<i64, AsmError> {
    let (v, next) = eval(toks, 0, env, line)?;
    expect_end(toks, next, line)?;
    Ok(v)
}

/// Branch/jump target: an expression giving the target *address*; the
/// encoder receives `target - pc`.
fn as_target(toks: &[Token], env: &dyn SymEnv, pc: u32, line: usize) -> Result<i32, AsmError> {
    let v = as_expr(toks, env, line)?;
    Ok((v as u32).wrapping_sub(pc) as i32)
}

fn arity(line: usize, mnemonic: &str, operands: &[Vec<Token>], n: usize) -> Result<(), AsmError> {
    if operands.len() != n {
        Err(AsmError::new(
            line,
            format!("{mnemonic} expects {n} operand(s), got {}", operands.len()),
        ))
    } else {
        Ok(())
    }
}

/// Expands one (pseudo-)instruction at address `pc` into machine
/// instructions. The expansion length must agree with [`insn_size`].
#[allow(clippy::too_many_lines)]
fn expand(
    line: usize,
    mnemonic: &str,
    operands: &[Vec<Token>],
    env: &dyn SymEnv,
    pc: u32,
) -> Result<Vec<Insn>, AsmError> {
    let ops = operands;
    let branch =
        |cond: Cond, rs1: Reg, rs2: Reg, target: &[Token]| -> Result<Vec<Insn>, AsmError> {
            Ok(vec![Insn::Branch {
                cond,
                rs1,
                rs2,
                offset: as_target(target, env, pc, line)?,
            }])
        };
    let alu_imm = |op: AluOp| -> Result<Vec<Insn>, AsmError> {
        arity(line, mnemonic, ops, 3)?;
        Ok(vec![Insn::AluImm {
            op,
            rd: as_reg(&ops[0], line)?,
            rs1: as_reg(&ops[1], line)?,
            imm: as_expr(&ops[2], env, line)? as i32,
        }])
    };
    let alu = |op: AluOp| -> Result<Vec<Insn>, AsmError> {
        arity(line, mnemonic, ops, 3)?;
        Ok(vec![Insn::Alu {
            op,
            rd: as_reg(&ops[0], line)?,
            rs1: as_reg(&ops[1], line)?,
            rs2: as_reg(&ops[2], line)?,
        }])
    };
    let muldiv = |op: MulOp| -> Result<Vec<Insn>, AsmError> {
        arity(line, mnemonic, ops, 3)?;
        Ok(vec![Insn::MulDiv {
            op,
            rd: as_reg(&ops[0], line)?,
            rs1: as_reg(&ops[1], line)?,
            rs2: as_reg(&ops[2], line)?,
        }])
    };
    let load = |op: LoadOp| -> Result<Vec<Insn>, AsmError> {
        arity(line, mnemonic, ops, 2)?;
        let (offset, rs1) = as_mem(&ops[1], env, line)?;
        Ok(vec![Insn::Load {
            op,
            rd: as_reg(&ops[0], line)?,
            rs1,
            offset,
        }])
    };
    let store = |op: StoreOp| -> Result<Vec<Insn>, AsmError> {
        arity(line, mnemonic, ops, 2)?;
        let (offset, rs1) = as_mem(&ops[1], env, line)?;
        Ok(vec![Insn::Store {
            op,
            rs2: as_reg(&ops[0], line)?,
            rs1,
            offset,
        }])
    };
    let csr_reg = |op: CsrOp| -> Result<Vec<Insn>, AsmError> {
        arity(line, mnemonic, ops, 3)?;
        Ok(vec![Insn::Csr {
            op,
            rd: as_reg(&ops[0], line)?,
            csr: as_csr(&ops[1], env, line)?,
            src: CsrSrc::Reg(as_reg(&ops[2], line)?),
        }])
    };
    let csr_imm = |op: CsrOp| -> Result<Vec<Insn>, AsmError> {
        arity(line, mnemonic, ops, 3)?;
        let imm = as_expr(&ops[2], env, line)?;
        if !(0..32).contains(&imm) {
            return Err(AsmError::new(line, "CSR immediate out of range"));
        }
        Ok(vec![Insn::Csr {
            op,
            rd: as_reg(&ops[0], line)?,
            csr: as_csr(&ops[1], env, line)?,
            src: CsrSrc::Imm(imm as u8),
        }])
    };
    // `march` R-type helpers.
    let march_rd_rs1 = |op: MarchOp| -> Result<Vec<Insn>, AsmError> {
        arity(line, mnemonic, ops, 2)?;
        Ok(vec![Insn::March {
            op,
            rd: as_reg(&ops[0], line)?,
            rs1: as_reg(&ops[1], line)?,
            rs2: Reg::ZERO,
        }])
    };
    let march_rs1_rs2 = |op: MarchOp| -> Result<Vec<Insn>, AsmError> {
        arity(line, mnemonic, ops, 2)?;
        Ok(vec![Insn::March {
            op,
            rd: Reg::ZERO,
            rs1: as_reg(&ops[0], line)?,
            rs2: as_reg(&ops[1], line)?,
        }])
    };
    let march_rs1 = |op: MarchOp| -> Result<Vec<Insn>, AsmError> {
        arity(line, mnemonic, ops, 1)?;
        Ok(vec![Insn::March {
            op,
            rd: Reg::ZERO,
            rs1: as_reg(&ops[0], line)?,
            rs2: Reg::ZERO,
        }])
    };

    match mnemonic {
        // --- base ALU immediate ---
        "addi" => alu_imm(AluOp::Add),
        "slti" => alu_imm(AluOp::Slt),
        "sltiu" => alu_imm(AluOp::Sltu),
        "xori" => alu_imm(AluOp::Xor),
        "ori" => alu_imm(AluOp::Or),
        "andi" => alu_imm(AluOp::And),
        "slli" => alu_imm(AluOp::Sll),
        "srli" => alu_imm(AluOp::Srl),
        "srai" => alu_imm(AluOp::Sra),
        // --- base ALU register ---
        "add" => alu(AluOp::Add),
        "sub" => alu(AluOp::Sub),
        "sll" => alu(AluOp::Sll),
        "slt" => alu(AluOp::Slt),
        "sltu" => alu(AluOp::Sltu),
        "xor" => alu(AluOp::Xor),
        "srl" => alu(AluOp::Srl),
        "sra" => alu(AluOp::Sra),
        "or" => alu(AluOp::Or),
        "and" => alu(AluOp::And),
        // --- RV32M ---
        "mul" => muldiv(MulOp::Mul),
        "mulh" => muldiv(MulOp::Mulh),
        "mulhsu" => muldiv(MulOp::Mulhsu),
        "mulhu" => muldiv(MulOp::Mulhu),
        "div" => muldiv(MulOp::Div),
        "divu" => muldiv(MulOp::Divu),
        "rem" => muldiv(MulOp::Rem),
        "remu" => muldiv(MulOp::Remu),
        // --- loads/stores ---
        "lb" => load(LoadOp::Lb),
        "lh" => load(LoadOp::Lh),
        "lw" => load(LoadOp::Lw),
        "lbu" => load(LoadOp::Lbu),
        "lhu" => load(LoadOp::Lhu),
        "sb" => store(StoreOp::Sb),
        "sh" => store(StoreOp::Sh),
        "sw" => store(StoreOp::Sw),
        // --- upper immediates ---
        "lui" | "auipc" => {
            arity(line, mnemonic, ops, 2)?;
            let rd = as_reg(&ops[0], line)?;
            let imm = as_expr(&ops[1], env, line)?;
            if !(0..(1 << 20)).contains(&imm) {
                return Err(AsmError::new(line, "upper immediate out of range"));
            }
            let imm20 = imm as u32;
            Ok(vec![if mnemonic == "lui" {
                Insn::Lui { rd, imm20 }
            } else {
                Insn::Auipc { rd, imm20 }
            }])
        }
        // --- jumps ---
        "jal" => match ops.len() {
            1 => Ok(vec![Insn::Jal {
                rd: Reg::RA,
                offset: as_target(&ops[0], env, pc, line)?,
            }]),
            2 => Ok(vec![Insn::Jal {
                rd: as_reg(&ops[0], line)?,
                offset: as_target(&ops[1], env, pc, line)?,
            }]),
            n => Err(AsmError::new(
                line,
                format!("jal expects 1-2 operands, got {n}"),
            )),
        },
        "jalr" => match ops.len() {
            1 => {
                let (offset, rs1) = if is_reg(&ops[0]) {
                    (0, as_reg(&ops[0], line)?)
                } else {
                    as_mem(&ops[0], env, line)?
                };
                Ok(vec![Insn::Jalr {
                    rd: Reg::RA,
                    rs1,
                    offset,
                }])
            }
            2 => {
                let (offset, rs1) = as_mem(&ops[1], env, line)?;
                Ok(vec![Insn::Jalr {
                    rd: as_reg(&ops[0], line)?,
                    rs1,
                    offset,
                }])
            }
            n => Err(AsmError::new(
                line,
                format!("jalr expects 1-2 operands, got {n}"),
            )),
        },
        // --- branches ---
        "beq" | "bne" | "blt" | "bge" | "bltu" | "bgeu" => {
            arity(line, mnemonic, ops, 3)?;
            let cond = match mnemonic {
                "beq" => Cond::Eq,
                "bne" => Cond::Ne,
                "blt" => Cond::Lt,
                "bge" => Cond::Ge,
                "bltu" => Cond::Ltu,
                _ => Cond::Geu,
            };
            branch(
                cond,
                as_reg(&ops[0], line)?,
                as_reg(&ops[1], line)?,
                &ops[2],
            )
        }
        "bgt" | "ble" | "bgtu" | "bleu" => {
            arity(line, mnemonic, ops, 3)?;
            let cond = match mnemonic {
                "bgt" => Cond::Lt,
                "ble" => Cond::Ge,
                "bgtu" => Cond::Ltu,
                _ => Cond::Geu,
            };
            // Swapped-operand forms.
            branch(
                cond,
                as_reg(&ops[1], line)?,
                as_reg(&ops[0], line)?,
                &ops[2],
            )
        }
        "beqz" | "bnez" | "bltz" | "bgez" => {
            arity(line, mnemonic, ops, 2)?;
            let cond = match mnemonic {
                "beqz" => Cond::Eq,
                "bnez" => Cond::Ne,
                "bltz" => Cond::Lt,
                _ => Cond::Ge,
            };
            branch(cond, as_reg(&ops[0], line)?, Reg::ZERO, &ops[1])
        }
        "blez" | "bgtz" => {
            arity(line, mnemonic, ops, 2)?;
            let cond = if mnemonic == "blez" {
                Cond::Ge
            } else {
                Cond::Lt
            };
            branch(cond, Reg::ZERO, as_reg(&ops[0], line)?, &ops[1])
        }
        // --- system ---
        "ecall" => Ok(vec![Insn::Ecall]),
        "ebreak" => Ok(vec![Insn::Ebreak]),
        "mret" => Ok(vec![Insn::Mret]),
        "wfi" => Ok(vec![Insn::Wfi]),
        "fence" => Ok(vec![Insn::Fence]),
        "csrrw" => csr_reg(CsrOp::Rw),
        "csrrs" => csr_reg(CsrOp::Rs),
        "csrrc" => csr_reg(CsrOp::Rc),
        "csrrwi" => csr_imm(CsrOp::Rw),
        "csrrsi" => csr_imm(CsrOp::Rs),
        "csrrci" => csr_imm(CsrOp::Rc),
        "csrr" => {
            arity(line, mnemonic, ops, 2)?;
            Ok(vec![Insn::Csr {
                op: CsrOp::Rs,
                rd: as_reg(&ops[0], line)?,
                csr: as_csr(&ops[1], env, line)?,
                src: CsrSrc::Reg(Reg::ZERO),
            }])
        }
        "csrw" => {
            arity(line, mnemonic, ops, 2)?;
            Ok(vec![Insn::Csr {
                op: CsrOp::Rw,
                rd: Reg::ZERO,
                csr: as_csr(&ops[0], env, line)?,
                src: CsrSrc::Reg(as_reg(&ops[1], line)?),
            }])
        }
        // --- pseudo-instructions ---
        "nop" => Ok(vec![Insn::NOP]),
        "li" => {
            arity(line, mnemonic, ops, 2)?;
            let rd = as_reg(&ops[0], line)?;
            let v = as_expr(&ops[1], env, line)? as i32;
            if li_is_short(&ops[1]) {
                Ok(vec![Insn::AluImm {
                    op: AluOp::Add,
                    rd,
                    rs1: Reg::ZERO,
                    imm: v,
                }])
            } else {
                let hi = ((v.wrapping_add(0x800)) as u32) >> 12;
                let lo = (v << 20) >> 20;
                Ok(vec![
                    Insn::Lui { rd, imm20: hi },
                    Insn::AluImm {
                        op: AluOp::Add,
                        rd,
                        rs1: rd,
                        imm: lo,
                    },
                ])
            }
        }
        "la" => {
            arity(line, mnemonic, ops, 2)?;
            let rd = as_reg(&ops[0], line)?;
            let v = as_expr(&ops[1], env, line)? as i32;
            let hi = ((v.wrapping_add(0x800)) as u32) >> 12;
            let lo = (v << 20) >> 20;
            Ok(vec![
                Insn::Lui { rd, imm20: hi },
                Insn::AluImm {
                    op: AluOp::Add,
                    rd,
                    rs1: rd,
                    imm: lo,
                },
            ])
        }
        "mv" => {
            arity(line, mnemonic, ops, 2)?;
            Ok(vec![Insn::AluImm {
                op: AluOp::Add,
                rd: as_reg(&ops[0], line)?,
                rs1: as_reg(&ops[1], line)?,
                imm: 0,
            }])
        }
        "not" => {
            arity(line, mnemonic, ops, 2)?;
            Ok(vec![Insn::AluImm {
                op: AluOp::Xor,
                rd: as_reg(&ops[0], line)?,
                rs1: as_reg(&ops[1], line)?,
                imm: -1,
            }])
        }
        "neg" => {
            arity(line, mnemonic, ops, 2)?;
            Ok(vec![Insn::Alu {
                op: AluOp::Sub,
                rd: as_reg(&ops[0], line)?,
                rs1: Reg::ZERO,
                rs2: as_reg(&ops[1], line)?,
            }])
        }
        "seqz" => {
            arity(line, mnemonic, ops, 2)?;
            Ok(vec![Insn::AluImm {
                op: AluOp::Sltu,
                rd: as_reg(&ops[0], line)?,
                rs1: as_reg(&ops[1], line)?,
                imm: 1,
            }])
        }
        "snez" => {
            arity(line, mnemonic, ops, 2)?;
            Ok(vec![Insn::Alu {
                op: AluOp::Sltu,
                rd: as_reg(&ops[0], line)?,
                rs1: Reg::ZERO,
                rs2: as_reg(&ops[1], line)?,
            }])
        }
        "j" | "tail" => {
            arity(line, mnemonic, ops, 1)?;
            Ok(vec![Insn::Jal {
                rd: Reg::ZERO,
                offset: as_target(&ops[0], env, pc, line)?,
            }])
        }
        "jr" => {
            arity(line, mnemonic, ops, 1)?;
            Ok(vec![Insn::Jalr {
                rd: Reg::ZERO,
                rs1: as_reg(&ops[0], line)?,
                offset: 0,
            }])
        }
        "call" => {
            arity(line, mnemonic, ops, 1)?;
            Ok(vec![Insn::Jal {
                rd: Reg::RA,
                offset: as_target(&ops[0], env, pc, line)?,
            }])
        }
        "ret" => Ok(vec![Insn::Jalr {
            rd: Reg::ZERO,
            rs1: Reg::RA,
            offset: 0,
        }]),
        // --- Metal extension ---
        "menter" => {
            arity(line, mnemonic, ops, 1)?;
            if is_reg(&ops[0]) {
                Ok(vec![Insn::Menter {
                    rs1: as_reg(&ops[0], line)?,
                    entry: MENTER_INDIRECT,
                }])
            } else {
                let entry = as_expr(&ops[0], env, line)?;
                if !(0..64).contains(&entry) {
                    return Err(AsmError::new(line, "mroutine entry out of range"));
                }
                Ok(vec![Insn::Menter {
                    rs1: Reg::ZERO,
                    entry: entry as u32,
                }])
            }
        }
        "mexit" => Ok(vec![Insn::Mexit]),
        "rmr" => {
            arity(line, mnemonic, ops, 2)?;
            Ok(vec![Insn::Rmr {
                rd: as_reg(&ops[0], line)?,
                idx: as_mreg(&ops[1], env, line)?,
            }])
        }
        "wmr" => {
            arity(line, mnemonic, ops, 2)?;
            Ok(vec![Insn::Wmr {
                idx: as_mreg(&ops[0], env, line)?,
                rs1: as_reg(&ops[1], line)?,
            }])
        }
        "mld" => {
            arity(line, mnemonic, ops, 2)?;
            let (offset, rs1) = as_mem(&ops[1], env, line)?;
            Ok(vec![Insn::Mld {
                rd: as_reg(&ops[0], line)?,
                rs1,
                offset,
            }])
        }
        "mst" => {
            arity(line, mnemonic, ops, 2)?;
            let (offset, rs1) = as_mem(&ops[1], env, line)?;
            Ok(vec![Insn::Mst {
                rs2: as_reg(&ops[0], line)?,
                rs1,
                offset,
            }])
        }
        "mpld" => march_rd_rs1(MarchOp::Mpld),
        "mtlbp" => march_rd_rs1(MarchOp::Mtlbp),
        "mpst" => march_rs1_rs2(MarchOp::Mpst),
        "mtlbw" => march_rs1_rs2(MarchOp::Mtlbw),
        "mpkey" => march_rs1_rs2(MarchOp::Mpkey),
        "mintercept" => march_rs1_rs2(MarchOp::Mintercept),
        "mtlbi" => march_rs1(MarchOp::Mtlbi),
        "masid" => march_rs1(MarchOp::Masid),
        "miack" => march_rs1(MarchOp::Miack),
        "mlayer" => march_rs1(MarchOp::Mlayer),
        "mipend" => {
            arity(line, mnemonic, ops, 1)?;
            Ok(vec![Insn::March {
                op: MarchOp::Mipend,
                rd: as_reg(&ops[0], line)?,
                rs1: Reg::ZERO,
                rs2: Reg::ZERO,
            }])
        }
        "mscrub" => {
            arity(line, mnemonic, ops, 1)?;
            Ok(vec![Insn::March {
                op: MarchOp::Mscrub,
                rd: as_reg(&ops[0], line)?,
                rs1: Reg::ZERO,
                rs2: Reg::ZERO,
            }])
        }
        "mtlbiall" => {
            arity(line, mnemonic, ops, 0)?;
            Ok(vec![Insn::March {
                op: MarchOp::Mtlbiall,
                rd: Reg::ZERO,
                rs1: Reg::ZERO,
                rs2: Reg::ZERO,
            }])
        }
        other => Err(AsmError::new(line, format!("unknown mnemonic {other:?}"))),
    }
}

impl Assembler {
    fn run_pass2(&mut self, stmts: &[Located], options: Options) -> Result<(), AsmError> {
        self.loc_text = options.text_base;
        self.loc_data = options.data_base;
        self.section = Section::Text;
        for Located { line, col, stmt } in stmts {
            let (line, col) = (*line, *col);
            match stmt {
                Stmt::Label(_) | Stmt::Assign { .. } => {}
                Stmt::Directive { name, args } => {
                    let args = args.clone();
                    let section = self.section;
                    let at = *self.loc();
                    self.directive(line, name, &args, Some(()))?;
                    // `.org` moves the location counter without emitting;
                    // only data-emitting directives get a span.
                    let emits = matches!(
                        name.as_str(),
                        "word" | "half" | "byte" | "ascii" | "asciz" | "space" | "skip" | "align"
                    );
                    let end = *self.loc();
                    if emits && self.section == section && end > at {
                        self.record_span(at, end - at, line, col);
                    }
                }
                Stmt::Insn { mnemonic, operands } => {
                    let pc = *self.loc();
                    let env = Env {
                        symbols: &self.symbols,
                        dot: i64::from(pc),
                    };
                    let insns = expand(line, mnemonic, operands, &env, pc)?;
                    let expected = insn_size(line, mnemonic, operands)?;
                    debug_assert_eq!(insns.len() as u32, expected, "size mismatch: {mnemonic}");
                    let mut bytes = Vec::with_capacity(insns.len() * 4);
                    for insn in &insns {
                        let word = try_encode(insn)
                            .map_err(|e| AsmError::new(line, format!("{mnemonic}: {e}")))?;
                        bytes.extend_from_slice(&word.to_le_bytes());
                    }
                    self.emit(&bytes);
                    self.record_span(pc, bytes.len() as u32, line, col);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metal_isa::decode;

    fn asm(src: &str) -> Vec<u32> {
        assemble_at(src, 0).unwrap_or_else(|e| panic!("{e}"))
    }

    #[test]
    fn simple_program() {
        let words = asm("addi a0, zero, 5\naddi a0, a0, -1\n");
        assert_eq!(words.len(), 2);
        assert_eq!(
            decode(words[0]).unwrap(),
            Insn::AluImm {
                op: AluOp::Add,
                rd: Reg::A0,
                rs1: Reg::ZERO,
                imm: 5
            }
        );
    }

    #[test]
    fn labels_and_branches() {
        let words = asm("loop:\n addi a0, a0, 1\n bne a0, a1, loop\n j done\ndone:\n nop");
        // bne at pc=4 targets 0 => offset -4.
        assert_eq!(
            decode(words[1]).unwrap(),
            Insn::Branch {
                cond: Cond::Ne,
                rs1: Reg::A0,
                rs2: Reg::A1,
                offset: -4
            }
        );
        // j at pc=8 targets 12 => offset 4.
        assert_eq!(
            decode(words[2]).unwrap(),
            Insn::Jal {
                rd: Reg::ZERO,
                offset: 4
            }
        );
    }

    #[test]
    fn li_expansion() {
        let short = asm("li a0, 100");
        assert_eq!(short.len(), 1);
        let long = asm("li a0, 0x12345678");
        assert_eq!(long.len(), 2);
        let Insn::Lui { imm20, .. } = decode(long[0]).unwrap() else {
            panic!("expected lui");
        };
        let Insn::AluImm { imm, .. } = decode(long[1]).unwrap() else {
            panic!("expected addi");
        };
        assert_eq!(((imm20 << 12).wrapping_add(imm as u32)), 0x1234_5678);
    }

    #[test]
    fn li_negative_large() {
        let words = asm("li a0, -74565");
        let Insn::Lui { imm20, .. } = decode(words[0]).unwrap() else {
            panic!("expected lui");
        };
        let Insn::AluImm { imm, .. } = decode(words[1]).unwrap() else {
            panic!("expected addi");
        };
        assert_eq!((imm20 << 12).wrapping_add(imm as u32), (-74565i32) as u32);
    }

    #[test]
    fn la_uses_symbol() {
        let out = assemble(
            ".text\nla a0, buf\nret\n.data\nbuf: .word 1",
            Options {
                text_base: 0,
                data_base: 0x8000,
            },
        )
        .unwrap();
        assert_eq!(out.symbol("buf"), Some(0x8000));
    }

    #[test]
    fn data_directives() {
        let out = assemble(
            ".data\nv: .word 0x11223344, 2\nh: .half 0x5566\nb: .byte 1, 2\ns: .asciz \"ab\"",
            Options {
                text_base: 0,
                data_base: 0x100,
            },
        )
        .unwrap();
        let seg = &out.segments[0];
        assert_eq!(seg.base, 0x100);
        assert_eq!(
            seg.data,
            vec![0x44, 0x33, 0x22, 0x11, 2, 0, 0, 0, 0x66, 0x55, 1, 2, b'a', b'b', 0]
        );
    }

    #[test]
    fn align_and_org() {
        let out = assemble(
            ".data\n.byte 1\n.align 2\nw: .word 2\n.org 0x40\nq: .word 3",
            Options {
                text_base: 0,
                data_base: 0,
            },
        )
        .unwrap();
        assert_eq!(out.symbol("w"), Some(4));
        assert_eq!(out.symbol("q"), Some(0x40));
    }

    #[test]
    fn equ_and_assign() {
        let words = asm("FOO = 40\n.equ BAR, FOO + 2\nli a0, BAR");
        // BAR = 42 — symbolic, so li takes the 2-word form.
        assert_eq!(words.len(), 2);
    }

    #[test]
    fn metal_instructions() {
        let words = asm(
            "menter 3\nmenter a0\nmexit\nrmr a0, m31\nwmr m0, a1\nwmr mcause, a2\n\
             mld t0, 8(t1)\nmst t0, 4(t2)\nmpld a0, a1\nmtlbw a0, a1\nmtlbiall",
        );
        assert_eq!(
            decode(words[0]).unwrap(),
            Insn::Menter {
                rs1: Reg::ZERO,
                entry: 3
            }
        );
        assert_eq!(
            decode(words[1]).unwrap(),
            Insn::Menter {
                rs1: Reg::A0,
                entry: MENTER_INDIRECT
            }
        );
        assert_eq!(decode(words[2]).unwrap(), Insn::Mexit);
        assert_eq!(
            decode(words[5]).unwrap(),
            Insn::Wmr {
                rs1: Reg::A2,
                idx: Mcr::Mcause.index()
            }
        );
    }

    #[test]
    fn pseudo_instructions() {
        let words = asm("mv a0, a1\nnot a0, a0\nneg a1, a0\nseqz a2, a1\nsnez a3, a1\nret");
        assert_eq!(words.len(), 6);
        assert_eq!(
            decode(words[5]).unwrap(),
            Insn::Jalr {
                rd: Reg::ZERO,
                rs1: Reg::RA,
                offset: 0
            }
        );
    }

    #[test]
    fn swapped_branches() {
        let words = asm("x: bgt a0, a1, x\nble a0, a1, x\nbgtu a0, a1, x\nbleu a0, a1, x");
        let Insn::Branch { cond, rs1, rs2, .. } = decode(words[0]).unwrap() else {
            panic!("not a branch");
        };
        assert_eq!((cond, rs1, rs2), (Cond::Lt, Reg::A1, Reg::A0));
    }

    #[test]
    fn duplicate_label_rejected() {
        let err = assemble_at("a:\na:\n", 0).unwrap_err();
        assert!(err.msg.contains("duplicate label"));
    }

    #[test]
    fn undefined_symbol_rejected() {
        let err = assemble_at("j nowhere", 0).unwrap_err();
        assert!(err.msg.contains("undefined symbol"));
    }

    #[test]
    fn branch_out_of_range_rejected() {
        let src = "start: nop\n.org 0x2000\n beq a0, a1, start\n".to_string();
        let err = assemble_at(&src, 0).unwrap_err();
        assert!(err.msg.contains("branch offset"), "{err}");
    }

    #[test]
    fn unknown_mnemonic_rejected() {
        let err = assemble_at("frobnicate a0", 0).unwrap_err();
        assert!(err.msg.contains("unknown mnemonic"));
    }

    #[test]
    fn overlap_rejected() {
        let err = assemble_at(".org 0\n.word 1\n.org 0\n.word 2", 0).unwrap_err();
        assert!(err.msg.contains("overlapping"));
    }

    #[test]
    fn dot_relative_branch() {
        let words = asm("beq a0, a1, . + 8\nnop\nnop");
        assert_eq!(
            decode(words[0]).unwrap(),
            Insn::Branch {
                cond: Cond::Eq,
                rs1: Reg::A0,
                rs2: Reg::A1,
                offset: 8
            }
        );
    }

    #[test]
    fn hi_lo_pair() {
        let words = asm("lui a0, %hi(0xDEADBEEF)\naddi a0, a0, %lo(0xDEADBEEF)");
        let Insn::Lui { imm20, .. } = decode(words[0]).unwrap() else {
            panic!("expected lui");
        };
        let Insn::AluImm { imm, .. } = decode(words[1]).unwrap() else {
            panic!("expected addi");
        };
        assert_eq!((imm20 << 12).wrapping_add(imm as u32), 0xDEAD_BEEF);
    }
}
