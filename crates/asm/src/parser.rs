//! Statement-level parsing: lines → labels, directives, instructions.

use crate::lexer::{tokenize_line_cols, Token};
use crate::AsmError;

/// One parsed statement, tagged with its source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Stmt {
    /// `name:` — a label definition at the current location.
    Label(String),
    /// `.directive args…` — args split at top-level commas.
    Directive {
        /// Directive name, without the leading dot.
        name: String,
        /// Comma-separated argument token groups.
        args: Vec<Vec<Token>>,
    },
    /// `name = expr` — symbol assignment.
    Assign {
        /// Symbol name.
        name: String,
        /// Expression tokens.
        expr: Vec<Token>,
    },
    /// An instruction or pseudo-instruction.
    Insn {
        /// Lower-cased mnemonic.
        mnemonic: String,
        /// Comma-separated operand token groups.
        operands: Vec<Vec<Token>>,
    },
}

/// A statement with its 1-based source line and column.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Located {
    /// 1-based line number.
    pub line: usize,
    /// 1-based column of the statement's first token.
    pub col: usize,
    /// The statement.
    pub stmt: Stmt,
}

/// Splits a token list at top-level commas (commas inside parentheses do
/// not split — the assembler's grammar never nests commas, but be safe).
fn split_commas(toks: &[Token]) -> Vec<Vec<Token>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut depth = 0usize;
    for t in toks {
        match t {
            Token::Punct('(') => {
                depth += 1;
                cur.push(t.clone());
            }
            Token::Punct(')') => {
                depth = depth.saturating_sub(1);
                cur.push(t.clone());
            }
            Token::Punct(',') if depth == 0 => {
                out.push(std::mem::take(&mut cur));
            }
            other => cur.push(other.clone()),
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Parses a whole source file into located statements.
pub fn parse(src: &str) -> Result<Vec<Located>, AsmError> {
    let mut out = Vec::new();
    for (idx, raw) in src.lines().enumerate() {
        let line = idx + 1;
        let (mut toks, mut cols) = tokenize_line_cols(raw, line)?;
        // Leading labels: `ident :` possibly several on one line.
        while toks.len() >= 2 {
            let is_label = matches!(&toks[0], Token::Ident(name) if !name.starts_with('.'))
                && toks[1] == Token::Punct(':');
            if !is_label {
                break;
            }
            let Token::Ident(name) = toks.remove(0) else {
                unreachable!("matched above");
            };
            let col = cols.remove(0);
            toks.remove(0); // ':'
            cols.remove(0);
            out.push(Located {
                line,
                col,
                stmt: Stmt::Label(name),
            });
        }
        if toks.is_empty() {
            continue;
        }
        let col = cols[0];
        // Assignment: `name = expr`.
        if toks.len() >= 3 && toks[1] == Token::Punct('=') {
            if let Token::Ident(name) = &toks[0] {
                out.push(Located {
                    line,
                    col,
                    stmt: Stmt::Assign {
                        name: name.clone(),
                        expr: toks[2..].to_vec(),
                    },
                });
                continue;
            }
        }
        match &toks[0] {
            Token::Ident(head) if head.starts_with('.') => {
                let name = head[1..].to_owned();
                if name.is_empty() {
                    return Err(AsmError::new(line, "empty directive name"));
                }
                out.push(Located {
                    line,
                    col,
                    stmt: Stmt::Directive {
                        name,
                        args: split_commas(&toks[1..]),
                    },
                });
            }
            Token::Ident(head) => {
                let mnemonic = head.to_lowercase();
                out.push(Located {
                    line,
                    col,
                    stmt: Stmt::Insn {
                        mnemonic,
                        operands: split_commas(&toks[1..]),
                    },
                });
            }
            other => {
                return Err(AsmError::new(
                    line,
                    format!("expected label, directive, or mnemonic, found {other:?}"),
                ))
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_insn_on_one_line() {
        let stmts = parse("a: b: addi a0, a0, 1").unwrap();
        assert_eq!(stmts.len(), 3);
        assert_eq!(stmts[0].stmt, Stmt::Label("a".into()));
        assert_eq!(stmts[1].stmt, Stmt::Label("b".into()));
        assert!(matches!(&stmts[2].stmt, Stmt::Insn { mnemonic, operands }
            if mnemonic == "addi" && operands.len() == 3));
    }

    #[test]
    fn directive_args_split() {
        let stmts = parse(".word 1, 2 + 3, sym").unwrap();
        let Stmt::Directive { name, args } = &stmts[0].stmt else {
            panic!("not a directive");
        };
        assert_eq!(name, "word");
        assert_eq!(args.len(), 3);
    }

    #[test]
    fn memory_operand_stays_joined() {
        let stmts = parse("lw a0, 8(sp)").unwrap();
        let Stmt::Insn { operands, .. } = &stmts[0].stmt else {
            panic!("not an instruction");
        };
        assert_eq!(operands.len(), 2);
        assert_eq!(operands[1].len(), 4, "offset ( reg )");
    }

    #[test]
    fn assignment() {
        let stmts = parse("FOO = 1 << 4").unwrap();
        assert!(matches!(&stmts[0].stmt, Stmt::Assign { name, .. } if name == "FOO"));
    }

    #[test]
    fn blank_and_comment_lines_skipped() {
        let stmts = parse("\n# only a comment\n\nnop\n").unwrap();
        assert_eq!(stmts.len(), 1);
        assert_eq!(stmts[0].line, 4);
    }

    #[test]
    fn mnemonics_case_insensitive() {
        let stmts = parse("NOP").unwrap();
        assert!(matches!(&stmts[0].stmt, Stmt::Insn { mnemonic, .. } if mnemonic == "nop"));
    }
}
