//! Functional reference interpreter (instruction-set simulator).
//!
//! Executes one instruction per step with no pipeline timing. It shares
//! [`MachineState`] and the [`Hooks`] interface with the pipelined core,
//! so the two can run the same program side by side; the differential
//! property tests assert architectural-state equality.

use crate::hooks::{DecodeOutcome, Hooks, NoHooks, TrapDisposition, TrapEvent};
use crate::state::{CoreConfig, HaltReason, MachineState};
use crate::trap::TrapCause;
use metal_isa::insn::{CsrOp, CsrSrc, Insn};
use metal_isa::reg::Reg;
use metal_isa::{csr, decode_to};

/// The reference interpreter.
pub struct Interp<H: Hooks = NoHooks> {
    /// Shared machine state.
    pub state: MachineState,
    /// Extension hooks.
    pub hooks: H,
    /// Architectural PC.
    pub pc: u32,
}

impl<H: Hooks> Interp<H> {
    /// Builds an interpreter with the given configuration and hooks.
    #[must_use]
    pub fn new(config: CoreConfig, hooks: H) -> Interp<H> {
        Interp {
            state: MachineState::new(&config),
            hooks,
            pc: config.reset_pc,
        }
    }

    /// Loads program segments into RAM and sets the PC.
    ///
    /// # Panics
    ///
    /// Panics if a segment does not fit in RAM.
    pub fn load_segments<'a>(
        &mut self,
        segments: impl IntoIterator<Item = (u32, &'a [u8])>,
        entry: u32,
    ) {
        self.state.load_image(segments);
        self.pc = entry;
    }

    fn handle_trap(&mut self, cause: TrapCause, tval: u32, pc: u32) {
        if cause.is_interrupt() {
            self.state.perf.interrupts += 1;
        } else {
            self.state.perf.exceptions += 1;
        }
        let event = TrapEvent { cause, tval, pc };
        match self.hooks.on_trap(&mut self.state, &event) {
            TrapDisposition::Default => {
                self.state.csr.mepc = pc;
                self.state.csr.mcause = cause.code();
                self.state.csr.mtval = tval;
                let mie = self.state.csr.mstatus & csr::MSTATUS_MIE != 0;
                self.state.csr.mstatus &= !(csr::MSTATUS_MIE | csr::MSTATUS_MPIE);
                if mie {
                    self.state.csr.mstatus |= csr::MSTATUS_MPIE;
                }
                self.pc = self.state.csr.mtvec;
            }
            TrapDisposition::Redirect { target, .. } => {
                self.state.perf.metal_entries += 1;
                self.pc = target;
            }
            TrapDisposition::Fatal => {
                self.state.halted = Some(HaltReason::Fatal(format!(
                    "unhandled trap {cause} at pc {pc:#010x} (tval {tval:#010x})"
                )));
            }
        }
    }

    /// Lowest pending, enabled interrupt line, if delivery is allowed.
    fn pending_interrupt(&self) -> Option<u8> {
        let pending = self.state.perf.mip_snapshot & self.state.csr.mie;
        if pending == 0 || self.state.csr.mstatus & csr::MSTATUS_MIE == 0 {
            return None;
        }
        if !self.hooks.interrupts_allowed(&self.state) {
            return None;
        }
        Some(pending.trailing_zeros() as u8)
    }

    /// Executes one instruction (or takes one trap).
    pub fn step(&mut self) {
        if self.state.halted.is_some() {
            return;
        }
        // One "cycle" per step so devices make progress.
        self.state.perf.cycles += 1;
        let cycle = self.state.perf.cycles;
        self.state.perf.mip_snapshot = self.state.bus.tick(cycle);

        if let Some(line) = self.pending_interrupt() {
            self.handle_trap(TrapCause::Interrupt(line), 0, self.pc);
            return;
        }

        let pc = self.pc;
        // Fetch pre-decoded: the decode cache (or the extension's MRAM)
        // has already paid the word→Insn cost at most once per word.
        let decoded = match self.hooks.fetch_decoded(&mut self.state, pc) {
            Some(Ok((d, _))) => d,
            Some(Err(trap)) => {
                self.handle_trap(trap.cause, trap.tval, pc);
                return;
            }
            None => match self.state.fetch_decoded(pc) {
                Ok((d, _)) => d,
                Err(trap) => {
                    self.handle_trap(trap.cause, trap.tval, pc);
                    return;
                }
            },
        };
        if decoded.is_illegal() {
            self.handle_trap(TrapCause::IllegalInstruction, decoded.word, pc);
            return;
        }
        // Chain decode-hook replacements exactly like the pipeline does
        // (an mexit's return stream may begin with another menter).
        let mut cur_pc = pc;
        let mut cur = decoded;
        for _ in 0..16 {
            match self
                .hooks
                .decode(&mut self.state, cur_pc, cur.word, &cur.insn)
            {
                DecodeOutcome::Pass => {
                    self.exec(cur_pc, cur.word, cur.insn);
                    return;
                }
                DecodeOutcome::Replace {
                    word: word2,
                    pc: pc2,
                    ..
                } => {
                    self.state.perf.metal_entries += 1;
                    let d2 = decode_to(word2);
                    if d2.is_illegal() {
                        self.handle_trap(TrapCause::IllegalInstruction, word2, pc2);
                        return;
                    }
                    cur_pc = pc2;
                    cur = d2;
                }
                DecodeOutcome::Fault {
                    trap,
                    pc: override_pc,
                } => {
                    self.handle_trap(trap.cause, trap.tval, override_pc.unwrap_or(cur_pc));
                    return;
                }
            }
        }
        self.handle_trap(TrapCause::IllegalInstruction, cur.word, cur_pc);
    }

    fn exec(&mut self, pc: u32, word: u32, insn: Insn) {
        let regs = &self.state.regs;
        let fallthrough = pc.wrapping_add(4);
        match insn {
            Insn::Lui { rd, imm20 } => {
                self.retire_wb(pc, insn, rd, imm20 << 12, fallthrough);
            }
            Insn::Auipc { rd, imm20 } => {
                self.retire_wb(pc, insn, rd, pc.wrapping_add(imm20 << 12), fallthrough);
            }
            Insn::AluImm { op, rd, rs1, imm } => {
                let v = op.eval(regs.get(rs1), imm as u32);
                self.retire_wb(pc, insn, rd, v, fallthrough);
            }
            Insn::Alu { op, rd, rs1, rs2 } => {
                let v = op.eval(regs.get(rs1), regs.get(rs2));
                self.retire_wb(pc, insn, rd, v, fallthrough);
            }
            Insn::MulDiv { op, rd, rs1, rs2 } => {
                let v = op.eval(regs.get(rs1), regs.get(rs2));
                self.retire_wb(pc, insn, rd, v, fallthrough);
            }
            Insn::Jal { rd, offset } => {
                let target = pc.wrapping_add(offset as u32);
                self.retire_wb(pc, insn, rd, fallthrough, target);
            }
            Insn::Jalr { rd, rs1, offset } => {
                let target = regs.get(rs1).wrapping_add(offset as u32) & !1;
                self.retire_wb(pc, insn, rd, fallthrough, target);
            }
            Insn::Branch {
                cond,
                rs1,
                rs2,
                offset,
            } => {
                let taken = cond.eval(regs.get(rs1), regs.get(rs2));
                let next = if taken {
                    pc.wrapping_add(offset as u32)
                } else {
                    fallthrough
                };
                self.retire(pc, insn, next);
            }
            Insn::Load {
                op,
                rd,
                rs1,
                offset,
            } => {
                let addr = regs.get(rs1).wrapping_add(offset as u32);
                match self.state.load(addr, op) {
                    Ok((v, _)) => self.retire_wb(pc, insn, rd, v, fallthrough),
                    Err(trap) => self.handle_trap(trap.cause, trap.tval, pc),
                }
            }
            Insn::Store {
                op,
                rs2,
                rs1,
                offset,
            } => {
                let addr = regs.get(rs1).wrapping_add(offset as u32);
                let value = regs.get(rs2);
                match self.state.store(addr, op, value) {
                    Ok(_) => self.retire(pc, insn, fallthrough),
                    Err(trap) => self.handle_trap(trap.cause, trap.tval, pc),
                }
            }
            Insn::Csr {
                op,
                rd,
                csr: addr,
                src,
            } => {
                let Some(old) = self.state.csr.read(addr, &self.state.perf) else {
                    self.handle_trap(TrapCause::IllegalInstruction, word, pc);
                    return;
                };
                let operand = match src {
                    CsrSrc::Reg(r) => self.state.regs.get(r),
                    CsrSrc::Imm(i) => u32::from(i),
                };
                let new = match op {
                    CsrOp::Rw => Some(operand),
                    CsrOp::Rs => (operand != 0).then_some(old | operand),
                    CsrOp::Rc => (operand != 0).then_some(old & !operand),
                };
                if let Some(new) = new {
                    if !self.state.csr.write(addr, new) {
                        self.handle_trap(TrapCause::IllegalInstruction, word, pc);
                        return;
                    }
                }
                self.retire_wb(pc, insn, rd, old, fallthrough);
            }
            Insn::Ecall => self.handle_trap(TrapCause::Ecall, 0, pc),
            Insn::Ebreak => {
                self.state.halted = Some(HaltReason::Ebreak {
                    code: self.state.regs.get(Reg::A0),
                });
            }
            Insn::Mret => {
                let mpie = self.state.csr.mstatus & csr::MSTATUS_MPIE != 0;
                self.state.csr.mstatus |= csr::MSTATUS_MPIE;
                self.state.csr.mstatus &= !csr::MSTATUS_MIE;
                if mpie {
                    self.state.csr.mstatus |= csr::MSTATUS_MIE;
                }
                let target = self.state.csr.mepc;
                self.retire(pc, insn, target);
            }
            Insn::Wfi | Insn::Fence => {
                // The interpreter has no pipeline to idle; WFI is a NOP
                // (excluded from differential tests).
                self.retire(pc, insn, fallthrough);
            }
            // Metal instructions: delegate to the hooks (illegal under
            // NoHooks).
            other => {
                let [s1, s2] = other.sources();
                let rs1 = s1.map_or(0, |r| self.state.regs.get(r));
                let rs2 = s2.map_or(0, |r| self.state.regs.get(r));
                match self
                    .hooks
                    .exec_custom(&mut self.state, pc, word, &other, rs1, rs2)
                {
                    Ok(result) => {
                        if let (Some(rd), Some(v)) = (other.dest(), result.writeback) {
                            self.state.regs.set(rd, v);
                        }
                        self.retire(pc, other, fallthrough);
                    }
                    Err(trap) => self.handle_trap(trap.cause, trap.tval, pc),
                }
            }
        }
    }

    fn retire_wb(&mut self, pc: u32, insn: Insn, rd: Reg, value: u32, next: u32) {
        self.state.regs.set(rd, value);
        self.retire(pc, insn, next);
    }

    fn retire(&mut self, pc: u32, insn: Insn, next: u32) {
        self.state.perf.instret += 1;
        self.hooks.on_retire(&mut self.state, pc, &insn);
        self.pc = next;
    }

    /// Steps until halt or `max_steps` instructions/traps.
    pub fn run(&mut self, max_steps: u64) -> Option<HaltReason> {
        for _ in 0..max_steps {
            if self.state.halted.is_some() {
                break;
            }
            self.step();
        }
        self.state.halted.clone()
    }

    /// Runs until `instret` increases by `n` or the machine halts.
    /// Mirrors [`crate::Core::step_insns`] so injection harnesses can
    /// position both engines at the same retired-instruction boundary.
    pub fn step_insns(&mut self, n: u64) {
        let target = self.state.perf.instret + n;
        while self.state.halted.is_none() && self.state.perf.instret < target {
            self.step();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metal_isa::encode;
    use metal_isa::insn::AluOp;

    fn program(words: &[u32]) -> Interp {
        let mut interp = Interp::new(CoreConfig::default(), NoHooks);
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        interp.load_segments([(0u32, bytes.as_slice())], 0);
        interp
    }

    #[test]
    fn add_loop_halts() {
        // li a0, 0; li a1, 10; loop: addi a0, a0, 1; bne a0, a1, loop; ebreak
        let words = [
            encode(&Insn::AluImm {
                op: AluOp::Add,
                rd: Reg::A0,
                rs1: Reg::ZERO,
                imm: 0,
            }),
            encode(&Insn::AluImm {
                op: AluOp::Add,
                rd: Reg::A1,
                rs1: Reg::ZERO,
                imm: 10,
            }),
            encode(&Insn::AluImm {
                op: AluOp::Add,
                rd: Reg::A0,
                rs1: Reg::A0,
                imm: 1,
            }),
            encode(&Insn::Branch {
                cond: metal_isa::insn::Cond::Ne,
                rs1: Reg::A0,
                rs2: Reg::A1,
                offset: -4,
            }),
            encode(&Insn::Ebreak),
        ];
        let mut interp = program(&words);
        let halt = interp.run(1000);
        assert_eq!(halt, Some(HaltReason::Ebreak { code: 10 }));
        assert_eq!(interp.state.regs.get(Reg::A0), 10);
    }

    #[test]
    fn ecall_vectors_to_mtvec() {
        let words = [
            encode(&Insn::Ecall),
            encode(&Insn::NOP),
            // handler at 0x8:
            encode(&Insn::Ebreak),
        ];
        let mut interp = program(&words);
        interp.state.csr.mtvec = 8;
        let halt = interp.run(10);
        assert_eq!(halt, Some(HaltReason::Ebreak { code: 0 }));
        assert_eq!(interp.state.csr.mepc, 0);
        assert_eq!(interp.state.csr.mcause, TrapCause::Ecall.code());
    }

    #[test]
    fn illegal_instruction_traps() {
        let mut interp = program(&[0xFFFF_FFFF, 0, encode(&Insn::Ebreak)]);
        interp.state.csr.mtvec = 8;
        interp.run(10);
        assert_eq!(
            interp.state.csr.mcause,
            TrapCause::IllegalInstruction.code()
        );
        assert_eq!(interp.state.csr.mtval, 0xFFFF_FFFF);
    }
}
