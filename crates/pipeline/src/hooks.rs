//! The extension-hook interface between the pipeline and an ISA
//! extension.
//!
//! The paper's thesis is that the processor should expose its fundamental
//! building blocks and let software build the rest. This trait is the
//! simulator's rendering of that boundary: the pipeline implements the
//! base ISA and calls out at exactly the points where Metal attaches —
//! instruction fetch (MRAM), decode (menter/mexit replacement and
//! interception), execute (the Metal instructions), and trap delivery
//! (delegation to mroutines).

use crate::state::MachineState;
use crate::trap::{Trap, TrapCause};
use metal_isa::{decode_to, DecodedInsn, Insn};

/// What the decode-stage hook decided about an instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodeOutcome {
    /// Let the instruction proceed normally.
    Pass,
    /// Replace the instruction in the decode slot (the `menter`/`mexit`
    /// fast path, paper §2.2, and instruction interception, §2.3).
    Replace {
        /// The instruction word now occupying the decode slot.
        word: u32,
        /// The PC to attribute to the replacement (its own address).
        pc: u32,
        /// Where fetch continues after the replacement.
        next_fetch: u32,
        /// Extra decode-stall cycles (0 for MRAM-resident mroutines;
        /// the memory round trip for PALcode-style dispatch).
        stall: u32,
    },
    /// Raise a trap instead of executing (e.g. a Metal-mode-only
    /// instruction in normal mode). `pc` overrides the PC attributed to
    /// the trap (used when an `mexit` return fetch faults: the fault
    /// belongs to the return address, not the mroutine).
    Fault {
        /// The trap to raise.
        trap: Trap,
        /// PC override; `None` = the decoded instruction's own PC.
        pc: Option<u32>,
    },
}

/// A trap event offered to the extension before default handling.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TrapEvent {
    /// The cause.
    pub cause: TrapCause,
    /// The trap value (faulting address / instruction word).
    pub tval: u32,
    /// PC of the faulting (or interrupted) instruction.
    pub pc: u32,
}

/// How the extension wants a trap handled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrapDisposition {
    /// Use the baseline path: CSRs + `mtvec` vector.
    Default,
    /// Redirect to an extension-provided handler (an mroutine).
    Redirect {
        /// New PC.
        target: u32,
        /// Extra cycles for the dispatch (0 when the handler comes from
        /// MRAM).
        stall: u32,
    },
    /// The machine cannot continue (e.g. a double fault in Metal mode).
    Fatal,
}

/// Result of executing a custom instruction: optional writeback value and
/// extra execute-stage cycles.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CustomExec {
    /// Value written to `rd`, if the instruction produces one.
    pub writeback: Option<u32>,
    /// Extra EX cycles beyond the base 1.
    pub extra_cycles: u32,
}

/// Extension hooks. The baseline core uses [`NoHooks`]; `metal-core`
/// provides the Metal implementation.
pub trait Hooks {
    /// Overrides instruction fetch at `pc`. Returning `Some((word,
    /// latency))` bypasses translation, the I-cache, and the bus — this
    /// is how MRAM-resident mroutines are fetched. `Err` faults the
    /// fetch.
    fn fetch(&mut self, state: &mut MachineState, pc: u32) -> Option<Result<(u32, u32), Trap>> {
        let _ = (state, pc);
        None
    }

    /// Pre-decoded variant of [`Hooks::fetch`] — the entry point both
    /// engines actually use. The default wraps `fetch` and decodes the
    /// word; extensions that hold pre-decoded code (MRAM) override this
    /// to skip the per-fetch decode entirely. Implementations must stay
    /// consistent with `fetch`: same `Some`/`None`/`Err` decisions, and
    /// a returned `DecodedInsn` whose `word` is what `fetch` would
    /// return.
    fn fetch_decoded(
        &mut self,
        state: &mut MachineState,
        pc: u32,
    ) -> Option<Result<(DecodedInsn, u32), Trap>> {
        self.fetch(state, pc)
            .map(|r| r.map(|(word, latency)| (decode_to(word), latency)))
    }

    /// True if [`Hooks::decode`] would do more than `Pass` for this
    /// instruction (mode transitions, interception). The pipeline holds
    /// such instructions in ID until no older in-flight instruction can
    /// still fault, keeping exceptions precise across decode-stage side
    /// effects. Must be side-effect free.
    fn decode_is_sensitive(&self, state: &MachineState, word: u32, insn: &Insn) -> bool {
        let _ = (state, word, insn);
        false
    }

    /// Inspects an instruction in the decode stage.
    fn decode(
        &mut self,
        state: &mut MachineState,
        pc: u32,
        word: u32,
        insn: &Insn,
    ) -> DecodeOutcome {
        let _ = (state, pc, word, insn);
        DecodeOutcome::Pass
    }

    /// Executes a custom (Metal) instruction at the execute stage.
    fn exec_custom(
        &mut self,
        state: &mut MachineState,
        pc: u32,
        word: u32,
        insn: &Insn,
        rs1: u32,
        rs2: u32,
    ) -> Result<CustomExec, Trap> {
        let _ = (state, pc, insn, rs1, rs2);
        Err(Trap::illegal(word))
    }

    /// Offered every trap before baseline handling.
    fn on_trap(&mut self, state: &mut MachineState, event: &TrapEvent) -> TrapDisposition {
        let _ = (state, event);
        TrapDisposition::Default
    }

    /// Whether external interrupts may be delivered right now. Metal
    /// returns `false` while an mroutine runs (paper §2.1: "Metal
    /// mroutines are non-interruptible").
    fn interrupts_allowed(&self, state: &MachineState) -> bool {
        let _ = state;
        true
    }

    /// Called when an instruction retires (tracing/statistics).
    fn on_retire(&mut self, state: &mut MachineState, pc: u32, insn: &Insn) {
        let _ = (state, pc, insn);
    }
}

/// The baseline core: no extension. All Metal instructions raise
/// illegal-instruction traps, and traps vector through `mtvec`.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoHooks;

impl Hooks for NoHooks {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{CoreConfig, MachineState};

    #[test]
    fn nohooks_defaults() {
        let mut h = NoHooks;
        let mut m = MachineState::new(&CoreConfig::default());
        assert!(h.fetch(&mut m, 0).is_none());
        assert!(h.interrupts_allowed(&m));
        let insn = Insn::Mexit;
        assert_eq!(h.decode(&mut m, 0, 0, &insn), DecodeOutcome::Pass);
        let err = h.exec_custom(&mut m, 0, 0xABCD, &insn, 0, 0).unwrap_err();
        assert_eq!(err.cause, TrapCause::IllegalInstruction);
        assert_eq!(err.tval, 0xABCD);
        let ev = TrapEvent {
            cause: TrapCause::Ecall,
            tval: 0,
            pc: 0x100,
        };
        assert_eq!(h.on_trap(&mut m, &ev), TrapDisposition::Default);
    }
}
