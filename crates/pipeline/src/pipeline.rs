//! The 5-stage in-order pipeline: IF, ID, EX, MEM, WB.
//!
//! Classic organization, cycle-ticked with explicit inter-stage latches:
//!
//! * **Forwarding**: stages are evaluated oldest-first within a tick, so
//!   the value produced by the instruction one ahead (in MEM this tick)
//!   is forwarded from the MEM/WB latch; older results are already in
//!   the register file. This is timing-equivalent to the textbook
//!   EX/MEM + MEM/WB forwarding network.
//! * **Load-use hazard**: detected in ID against the load executing in
//!   EX; one bubble.
//! * **Control flow**: branches and jumps resolve in EX; taken redirects
//!   flush the two younger slots (2-cycle penalty).
//! * **Variable latency**: I-fetch, data access, and multi-cycle EX
//!   (mul/div) hold their stage and stall upstream stages.
//! * **Extension hooks**: fetch/decode/execute/trap hook calls at the
//!   exact attachment points Metal needs (see [`crate::hooks::Hooks`]).
//!   The `menter`/`mexit` decode-stage replacement (paper §2.2) is the
//!   [`DecodeOutcome::Replace`] path: the decode slot is rewritten in
//!   place and fetch is redirected with *zero* bubbles when the
//!   replacement source is 1-cycle (MRAM).

use crate::hooks::{DecodeOutcome, Hooks, TrapDisposition, TrapEvent};
use crate::state::{CoreConfig, HaltReason, MachineState};
use crate::trap::{Trap, TrapCause};
use metal_isa::insn::{CsrOp, CsrSrc, Insn, MulOp};
use metal_isa::reg::Reg;
use metal_isa::{csr, decode_to, DecodedInsn};
use metal_trace::{EventKind, StallKind};

/// Maximum chained decode-slot replacements in one cycle before the
/// pipeline declares a runaway and faults.
const MAX_REPLACE_CHAIN: usize = 16;

/// IF → ID latch. Fetch delivers instructions pre-decoded (the decode
/// cache does the word→[`DecodedInsn`] work at most once per word); ID
/// keeps only the hazard checks and the extension decode hook.
#[derive(Clone, Copy, Debug)]
struct IfId {
    pc: u32,
    decoded: DecodedInsn,
    fault: Option<Trap>,
}

/// ID → EX latch.
#[derive(Clone, Copy, Debug)]
struct IdEx {
    pc: u32,
    decoded: DecodedInsn,
    fault: Option<Trap>,
}

/// EX → MEM latch.
#[derive(Clone, Copy, Debug)]
struct ExMem {
    pc: u32,
    decoded: DecodedInsn,
    /// Memory address for loads/stores; writeback value otherwise.
    alu: u32,
    /// Store data (resolved in EX).
    store_val: u32,
    /// Writeback value if already known in EX.
    wb: Option<u32>,
}

/// MEM → WB latch.
#[derive(Clone, Copy, Debug)]
struct MemWb {
    pc: u32,
    insn: Insn,
    rd: Option<Reg>,
    value: u32,
}

/// The pipelined core, generic over the extension hooks.
pub struct Core<H: Hooks> {
    /// Shared machine state (registers, memory system, CSRs, counters).
    pub state: MachineState,
    /// The ISA extension (Metal, or [`crate::hooks::NoHooks`]).
    pub hooks: H,
    config: CoreConfig,
    pc: u32,
    if_id: Option<IfId>,
    if_pending: Option<IfId>,
    if_busy: u32,
    id_ex: Option<IdEx>,
    id_hold: Option<IdEx>,
    id_stall: u32,
    ex_mem: Option<ExMem>,
    ex_hold: Option<ExMem>,
    ex_busy: u32,
    mem_wb: Option<MemWb>,
    mem_hold: Option<MemWb>,
    mem_busy: u32,
    wfi: bool,
}

impl<H: Hooks> Core<H> {
    /// Builds a core with the given configuration and hooks.
    #[must_use]
    pub fn new(config: CoreConfig, hooks: H) -> Core<H> {
        Core {
            state: MachineState::new(&config),
            hooks,
            pc: config.reset_pc,
            config,
            if_id: None,
            if_pending: None,
            if_busy: 0,
            id_ex: None,
            id_hold: None,
            id_stall: 0,
            ex_mem: None,
            ex_hold: None,
            ex_busy: 0,
            mem_wb: None,
            mem_hold: None,
            mem_busy: 0,
            wfi: false,
        }
    }

    /// The configuration this core was built with.
    #[must_use]
    pub fn config(&self) -> &CoreConfig {
        &self.config
    }

    /// The next fetch address (useful in tests and after halts).
    #[must_use]
    pub fn fetch_pc(&self) -> u32 {
        self.pc
    }

    /// Redirects fetch (used by loaders and test harnesses). Clears all
    /// in-flight instructions.
    pub fn set_pc(&mut self, pc: u32) {
        self.pc = pc;
        self.squash_frontend();
        self.id_ex = None;
        self.id_hold = None;
        self.id_stall = 0;
        self.ex_mem = None;
        self.ex_hold = None;
        self.ex_busy = 0;
        self.mem_wb = None;
        self.mem_hold = None;
        self.mem_busy = 0;
        self.wfi = false;
    }

    fn squash_frontend(&mut self) {
        self.if_id = None;
        self.if_pending = None;
        self.if_busy = 0;
    }

    fn flush_for_redirect(&mut self, target: u32) {
        self.pc = target;
        self.squash_frontend();
        self.id_hold = None;
        self.id_stall = 0;
        self.state.perf.flush_cycles += 2;
        self.state.trace.emit(EventKind::Flush { target });
    }

    /// Takes a trap whose faulting/interrupted PC is `pc`.
    fn take_trap(&mut self, cause: TrapCause, tval: u32, pc: u32) {
        if cause.is_interrupt() {
            self.state.perf.interrupts += 1;
        } else {
            self.state.perf.exceptions += 1;
        }
        self.state.trace.emit(EventKind::Trap {
            code: cause.code(),
            tval,
            pc,
        });
        let event = TrapEvent { cause, tval, pc };
        match self.hooks.on_trap(&mut self.state, &event) {
            TrapDisposition::Default => {
                let code = cause.code();
                self.state.csr.mepc = pc;
                self.state.csr.mcause = code;
                self.state.csr.mtval = tval;
                // Stack MIE into MPIE and disable interrupts.
                let mie = self.state.csr.mstatus & csr::MSTATUS_MIE != 0;
                self.state.csr.mstatus &= !(csr::MSTATUS_MIE | csr::MSTATUS_MPIE);
                if mie {
                    self.state.csr.mstatus |= csr::MSTATUS_MPIE;
                }
                let target = self.state.csr.mtvec;
                self.flush_for_redirect(target);
            }
            TrapDisposition::Redirect { target, stall } => {
                self.flush_for_redirect(target);
                self.if_busy = 0;
                self.id_stall = stall;
                if stall > 0 {
                    self.state.trace.emit(EventKind::Stall {
                        kind: StallKind::Decode,
                        cycles: stall,
                    });
                }
                self.state.perf.metal_entries += 1;
            }
            TrapDisposition::Fatal => {
                self.state.halted = Some(HaltReason::Fatal(format!(
                    "unhandled trap {cause} at pc {pc:#010x} (tval {tval:#010x})"
                )));
            }
        }
        // Squash everything younger than the trap point.
        self.id_ex = None;
        self.squash_id_flush_keep_stall();
    }

    fn squash_id_flush_keep_stall(&mut self) {
        self.if_id = None;
        self.if_pending = None;
        self.if_busy = 0;
        self.id_hold = None;
    }

    /// Forwards a register read at EX: the youngest completed value wins
    /// (MEM/WB latch, then the register file).
    fn forward(&self, r: Reg) -> u32 {
        if r == Reg::ZERO {
            return 0;
        }
        if let Some(wb) = &self.mem_wb {
            if wb.rd == Some(r) {
                return wb.value;
            }
        }
        if let Some(hold) = &self.mem_hold {
            if hold.rd == Some(r) {
                return hold.value;
            }
        }
        self.state.regs.get(r)
    }

    /// Lowest pending, enabled interrupt line, if delivery is allowed.
    fn pending_interrupt(&self) -> Option<u8> {
        let pending = self.state.perf.mip_snapshot & self.state.csr.mie;
        if pending == 0 {
            return None;
        }
        if self.state.csr.mstatus & csr::MSTATUS_MIE == 0 {
            return None;
        }
        if !self.hooks.interrupts_allowed(&self.state) {
            return None;
        }
        Some(pending.trailing_zeros() as u8)
    }

    /// Advances the machine one cycle.
    pub fn tick(&mut self) {
        if self.state.halted.is_some() {
            return;
        }
        self.state.perf.cycles += 1;
        let cycle = self.state.perf.cycles;
        self.state.trace.set_now(cycle);
        self.state.perf.mip_snapshot = self.state.bus.tick(cycle);

        // Snapshot for load-use hazard detection: the instruction that
        // executes in EX *this* tick.
        let ex_load_rd = self.id_ex.as_ref().and_then(|d| {
            if d.decoded.tag.is_load() {
                d.decoded.dest
            } else {
                None
            }
        });

        // ---------------- WB ----------------
        if let Some(wb) = self.mem_wb.take() {
            if let Some(rd) = wb.rd {
                self.state.regs.set(rd, wb.value);
            }
            self.state.perf.instret += 1;
            let insn = wb.insn;
            let pc = wb.pc;
            self.state.trace.emit(EventKind::Retire { pc });
            self.hooks.on_retire(&mut self.state, pc, &insn);
        }

        // ---------------- MEM ----------------
        let mut flushed = false;
        if self.mem_busy > 0 {
            self.mem_busy -= 1;
            self.state.perf.mem_stall += 1;
            if self.mem_busy == 0 {
                self.mem_wb = self.mem_hold.take();
            }
        } else if let Some(xm) = self.ex_mem.take() {
            match self.run_mem(&xm) {
                Ok((value, extra)) => {
                    let latch = MemWb {
                        pc: xm.pc,
                        insn: xm.decoded.insn,
                        rd: xm.decoded.dest,
                        value,
                    };
                    if extra == 0 {
                        self.mem_wb = Some(latch);
                    } else {
                        self.mem_hold = Some(latch);
                        self.mem_busy = extra;
                        self.state.trace.emit(EventKind::Stall {
                            kind: StallKind::Mem,
                            cycles: extra,
                        });
                    }
                }
                Err(trap) => {
                    self.take_trap(trap.cause, trap.tval, xm.pc);
                    flushed = true;
                }
            }
        }

        // ---------------- EX ----------------
        if !flushed {
            if self.ex_busy > 0 {
                self.ex_busy -= 1;
                self.state.perf.ex_stall += 1;
                if self.ex_busy == 0 {
                    self.ex_mem = self.ex_hold.take();
                }
            } else if self.mem_busy == 0 && self.ex_mem.is_none() {
                if let Some(d) = self.id_ex.take() {
                    flushed = self.run_ex(d);
                }
            }
        }

        // ---------------- ID ----------------
        if !flushed {
            if self.id_stall > 0 {
                self.id_stall -= 1;
                self.state.perf.fetch_stall += 1;
                if self.id_stall == 0 && self.id_ex.is_none() {
                    self.id_ex = self.id_hold.take();
                }
            } else if self.id_ex.is_none() {
                if let Some(held) = self.id_hold.take() {
                    self.id_ex = Some(held);
                } else if let Some(f) = self.if_id {
                    self.run_id(f, ex_load_rd);
                }
            }
        }

        // ---------------- IF ----------------
        if !flushed {
            self.run_if();
        }
    }

    /// MEM-stage work: data access for loads/stores, pass-through
    /// otherwise. Returns (writeback value, extra hold cycles).
    fn run_mem(&mut self, xm: &ExMem) -> Result<(u32, u32), Trap> {
        match xm.decoded.insn {
            Insn::Load { op, .. } => {
                let (value, lat) = self.state.load(xm.alu, op)?;
                Ok((value, lat.saturating_sub(1)))
            }
            Insn::Store { op, .. } => {
                let lat = self.state.store(xm.alu, op, xm.store_val)?;
                Ok((0, lat.saturating_sub(1)))
            }
            _ => Ok((xm.wb.unwrap_or(0), 0)),
        }
    }

    /// EX-stage work. Returns true if the pipeline was flushed (trap or
    /// redirect).
    #[allow(clippy::too_many_lines)]
    fn run_ex(&mut self, d: IdEx) -> bool {
        if let Some(trap) = d.fault {
            self.take_trap(trap.cause, trap.tval, d.pc);
            return true;
        }
        let push = |core: &mut Core<H>, wb: Option<u32>, alu: u32, store_val: u32, extra: u32| {
            let latch = ExMem {
                pc: d.pc,
                decoded: d.decoded,
                alu,
                store_val,
                wb,
            };
            if extra == 0 {
                core.ex_mem = Some(latch);
            } else {
                core.ex_hold = Some(latch);
                core.ex_busy = extra;
                core.state.trace.emit(EventKind::Stall {
                    kind: StallKind::Ex,
                    cycles: extra,
                });
            }
        };
        match d.decoded.insn {
            Insn::Lui { imm20, .. } => {
                push(self, Some(imm20 << 12), 0, 0, 0);
            }
            Insn::Auipc { imm20, .. } => {
                push(self, Some(d.pc.wrapping_add(imm20 << 12)), 0, 0, 0);
            }
            Insn::AluImm { op, rs1, imm, .. } => {
                let v = op.eval(self.forward(rs1), imm as u32);
                push(self, Some(v), 0, 0, 0);
            }
            Insn::Alu { op, rs1, rs2, .. } => {
                let v = op.eval(self.forward(rs1), self.forward(rs2));
                push(self, Some(v), 0, 0, 0);
            }
            Insn::MulDiv { op, rs1, rs2, .. } => {
                let v = op.eval(self.forward(rs1), self.forward(rs2));
                let extra = match op {
                    MulOp::Mul | MulOp::Mulh | MulOp::Mulhsu | MulOp::Mulhu => {
                        self.config.mul_latency
                    }
                    _ => self.config.div_latency,
                };
                push(self, Some(v), 0, 0, extra);
            }
            Insn::Load { rs1, offset, .. } => {
                let addr = self.forward(rs1).wrapping_add(offset as u32);
                push(self, None, addr, 0, 0);
            }
            Insn::Store {
                rs1, rs2, offset, ..
            } => {
                let addr = self.forward(rs1).wrapping_add(offset as u32);
                let val = self.forward(rs2);
                push(self, None, addr, val, 0);
            }
            Insn::Jal { offset, .. } => {
                let link = d.pc.wrapping_add(4);
                let target = d.pc.wrapping_add(offset as u32);
                push(self, Some(link), 0, 0, 0);
                self.flush_for_redirect(target);
                return true;
            }
            Insn::Jalr { rs1, offset, .. } => {
                let link = d.pc.wrapping_add(4);
                let target = self.forward(rs1).wrapping_add(offset as u32) & !1;
                push(self, Some(link), 0, 0, 0);
                self.flush_for_redirect(target);
                return true;
            }
            Insn::Branch {
                cond,
                rs1,
                rs2,
                offset,
            } => {
                let taken = cond.eval(self.forward(rs1), self.forward(rs2));
                push(self, None, 0, 0, 0);
                if taken {
                    let target = d.pc.wrapping_add(offset as u32);
                    self.flush_for_redirect(target);
                    return true;
                }
            }
            Insn::Csr {
                op, csr: addr, src, ..
            } => {
                let Some(old) = self.state.csr.read(addr, &self.state.perf) else {
                    self.take_trap(TrapCause::IllegalInstruction, d.decoded.word, d.pc);
                    return true;
                };
                let operand = match src {
                    CsrSrc::Reg(r) => self.forward(r),
                    CsrSrc::Imm(i) => u32::from(i),
                };
                let new = match op {
                    CsrOp::Rw => Some(operand),
                    CsrOp::Rs => (operand != 0).then_some(old | operand),
                    CsrOp::Rc => (operand != 0).then_some(old & !operand),
                };
                if let Some(new) = new {
                    if !self.state.csr.write(addr, new) {
                        self.take_trap(TrapCause::IllegalInstruction, d.decoded.word, d.pc);
                        return true;
                    }
                }
                push(self, Some(old), 0, 0, 0);
            }
            Insn::Ecall => {
                self.take_trap(TrapCause::Ecall, 0, d.pc);
                return true;
            }
            Insn::Ebreak => {
                // Halt only once every older instruction has written back,
                // so the architectural state (notably `a0`) is final.
                if self.mem_wb.is_some() {
                    self.id_ex = Some(d);
                    return false;
                }
                self.state.halted = Some(HaltReason::Ebreak {
                    code: self.state.regs.get(Reg::A0),
                });
                return true;
            }
            Insn::Mret => {
                // Restore the stacked interrupt enable.
                let mpie = self.state.csr.mstatus & csr::MSTATUS_MPIE != 0;
                self.state.csr.mstatus |= csr::MSTATUS_MPIE;
                self.state.csr.mstatus &= !csr::MSTATUS_MIE;
                if mpie {
                    self.state.csr.mstatus |= csr::MSTATUS_MIE;
                }
                let target = self.state.csr.mepc;
                push(self, None, 0, 0, 0);
                self.flush_for_redirect(target);
                return true;
            }
            Insn::Wfi => {
                self.wfi = true;
                push(self, None, 0, 0, 0);
                self.flush_for_redirect(d.pc.wrapping_add(4));
                return true;
            }
            Insn::Fence => {
                push(self, None, 0, 0, 0);
            }
            // Metal instructions reach EX only when the decode hook let
            // them pass (rmr/wmr/mld/mst/march in Metal mode) or under
            // NoHooks (illegal).
            _ => {
                let [s1, s2] = d.decoded.srcs;
                let rs1 = s1.map_or(0, |r| self.forward(r));
                let rs2 = s2.map_or(0, |r| self.forward(r));
                match self.hooks.exec_custom(
                    &mut self.state,
                    d.pc,
                    d.decoded.word,
                    &d.decoded.insn,
                    rs1,
                    rs2,
                ) {
                    Ok(result) => {
                        push(self, result.writeback, 0, 0, result.extra_cycles);
                    }
                    Err(trap) => {
                        self.take_trap(trap.cause, trap.tval, d.pc);
                        return true;
                    }
                }
            }
        }
        false
    }

    /// ID-stage work: hazard checks and the extension decode hook. The
    /// word was already decoded at fetch (via the decode cache), so the
    /// stage re-inspects nothing.
    fn run_id(&mut self, f: IfId, ex_load_rd: Option<Reg>) {
        if let Some(trap) = f.fault {
            self.if_id = None;
            self.id_ex = Some(IdEx {
                pc: f.pc,
                decoded: f.decoded,
                fault: Some(trap),
            });
            return;
        }
        if f.decoded.is_illegal() {
            self.if_id = None;
            self.id_ex = Some(IdEx {
                pc: f.pc,
                decoded: f.decoded,
                fault: Some(Trap::illegal(f.decoded.word)),
            });
            return;
        }
        // Load-use hazard: one bubble.
        if let Some(rd) = ex_load_rd {
            if f.decoded.srcs.iter().flatten().any(|&s| s == rd) {
                self.state.perf.loaduse_stall += 1;
                self.state.trace.emit(EventKind::Stall {
                    kind: StallKind::LoadUse,
                    cycles: 1,
                });
                return; // keep if_id; id_ex stays empty (bubble)
            }
        }
        // Decode-stage side effects (Metal mode transitions, interception)
        // must not commit while an older instruction can still fault, or
        // exceptions would become imprecise. Hold the instruction in ID
        // until the hazard clears.
        if self
            .hooks
            .decode_is_sensitive(&self.state, f.decoded.word, &f.decoded.insn)
        {
            let older_may_fault = self
                .ex_mem
                .as_ref()
                .is_some_and(|x| x.decoded.tag.may_fault());
            let reads_gpr_at_decode = matches!(
                f.decoded.insn,
                Insn::Menter {
                    entry: metal_isa::metal::MENTER_INDIRECT,
                    ..
                }
            );
            let gpr_in_flight = reads_gpr_at_decode && {
                let rs1 = match f.decoded.insn {
                    Insn::Menter { rs1, .. } => rs1,
                    _ => Reg::ZERO,
                };
                let hit = |i: Option<Reg>| i == Some(rs1);
                hit(self.ex_hold.as_ref().and_then(|l| l.decoded.dest))
                    || hit(self.ex_mem.as_ref().and_then(|l| l.decoded.dest))
                    || hit(self.mem_hold.as_ref().and_then(|l| l.rd))
                    || hit(self.mem_wb.as_ref().and_then(|l| l.rd))
            };
            if older_may_fault || gpr_in_flight {
                return; // keep if_id; bubble into EX
            }
        }
        // The decode hook may replace the instruction in the slot
        // (menter/mexit/interception), and the replacement may itself be
        // replaced — e.g. an mexit whose return stream begins with
        // another menter. Chain the hook with a runaway bound.
        let mut cur_pc = f.pc;
        let mut cur = f.decoded;
        let mut total_stall = 0u32;
        for round in 0..MAX_REPLACE_CHAIN {
            match self
                .hooks
                .decode(&mut self.state, cur_pc, cur.word, &cur.insn)
            {
                DecodeOutcome::Pass => {
                    self.if_id = None;
                    let latch = IdEx {
                        pc: cur_pc,
                        decoded: cur,
                        fault: None,
                    };
                    if total_stall == 0 {
                        self.id_ex = Some(latch);
                    } else {
                        self.id_hold = Some(latch);
                        self.id_stall = total_stall;
                        self.state.trace.emit(EventKind::Stall {
                            kind: StallKind::Decode,
                            cycles: total_stall,
                        });
                    }
                    return;
                }
                DecodeOutcome::Replace {
                    word,
                    pc,
                    next_fetch,
                    stall,
                } => {
                    self.if_id = None;
                    self.if_pending = None;
                    self.if_busy = 0;
                    self.pc = next_fetch;
                    self.state.perf.metal_entries += 1;
                    self.state.trace.emit(EventKind::DecodeReplace {
                        pc: cur_pc,
                        target: pc,
                    });
                    total_stall += stall;
                    cur_pc = pc;
                    cur = decode_to(word);
                    if cur.is_illegal() {
                        self.id_ex = Some(IdEx {
                            pc,
                            decoded: cur,
                            fault: Some(Trap::illegal(word)),
                        });
                        return;
                    }
                    let _ = round;
                }
                DecodeOutcome::Fault { trap, pc } => {
                    self.if_id = None;
                    self.id_ex = Some(IdEx {
                        pc: pc.unwrap_or(cur_pc),
                        decoded: cur,
                        fault: Some(trap),
                    });
                    return;
                }
            }
        }
        // Runaway replacement chain: treat as an illegal instruction.
        self.if_id = None;
        self.id_ex = Some(IdEx {
            pc: cur_pc,
            decoded: DecodedInsn::illegal(cur.word),
            fault: Some(Trap::illegal(cur.word)),
        });
    }

    /// IF-stage work: interrupt injection and instruction fetch.
    fn run_if(&mut self) {
        if self.if_busy > 0 {
            self.if_busy -= 1;
            self.state.perf.fetch_stall += 1;
            if self.if_busy == 0 && self.if_id.is_none() {
                self.if_id = self.if_pending.take();
            }
            return;
        }
        if self.if_id.is_some() {
            return;
        }
        if self.wfi {
            // Wake when any enabled interrupt is pending, regardless of
            // the global enable (RISC-V WFI semantics).
            if self.state.perf.mip_snapshot & self.state.csr.mie != 0 {
                self.wfi = false;
            } else {
                return;
            }
        }
        if let Some(line) = self.pending_interrupt() {
            // Inject the interrupt as a faulted fetch slot: it traps when
            // it reaches EX, by which point every older instruction has
            // completed — precise interrupt delivery. (Trapping here at
            // IF would squash older, not-yet-executed instructions
            // sitting in ID/EX.)
            let pc = self.pc;
            self.pc = pc.wrapping_add(4);
            self.state.trace.emit(EventKind::InterruptInjected { line });
            self.if_id = Some(IfId {
                pc,
                decoded: DecodedInsn::illegal(0),
                fault: Some(Trap::new(TrapCause::Interrupt(line), 0)),
            });
            return;
        }
        let pc = self.pc;
        let fetched = match self.hooks.fetch_decoded(&mut self.state, pc) {
            Some(result) => result,
            None => self.state.fetch_decoded(pc),
        };
        match fetched {
            Ok((decoded, latency)) => {
                let latch = IfId {
                    pc,
                    decoded,
                    fault: None,
                };
                self.pc = pc.wrapping_add(4);
                if latency <= 1 {
                    self.if_id = Some(latch);
                } else {
                    self.if_pending = Some(latch);
                    self.if_busy = latency - 1;
                    self.state.trace.emit(EventKind::Stall {
                        kind: StallKind::Fetch,
                        cycles: latency - 1,
                    });
                }
            }
            Err(trap) => {
                self.pc = pc.wrapping_add(4);
                self.if_id = Some(IfId {
                    pc,
                    decoded: DecodedInsn::illegal(0),
                    fault: Some(trap),
                });
            }
        }
    }

    /// Runs until the machine halts or `max_cycles` elapse. Returns the
    /// halt reason if the machine stopped.
    pub fn run(&mut self, max_cycles: u64) -> Option<HaltReason> {
        let start = self.state.perf.cycles;
        let mut last_retire = (self.state.perf.cycles, self.state.perf.instret);
        while self.state.halted.is_none() && self.state.perf.cycles - start < max_cycles {
            self.tick();
            if self.state.perf.instret != last_retire.1 {
                last_retire = (self.state.perf.cycles, self.state.perf.instret);
            } else if !self.wfi && self.state.perf.cycles - last_retire.0 > 100_000 {
                self.state.halted = Some(HaltReason::Fatal(format!(
                    "livelock: no instruction retired for 100000 cycles near pc {:#010x}",
                    self.pc
                )));
            }
        }
        self.state.halted.clone()
    }

    /// Runs until `instret` increases by `n` or the machine halts.
    pub fn step_insns(&mut self, n: u64) {
        let target = self.state.perf.instret + n;
        while self.state.halted.is_none() && self.state.perf.instret < target {
            self.tick();
        }
    }

    /// True when no live instruction is in flight: every inter-stage
    /// latch is empty and no stage is mid-way through a multi-cycle
    /// access. A halted core always qualifies — anything still latched
    /// behind the halting instruction is abandoned, never resumed, and
    /// invisible to a snapshot/restore cycle. Snapshots of the
    /// pipelined core are only faithful at such points (see
    /// [`crate::engine::EngineSnapshot`]).
    #[must_use]
    pub fn is_quiescent(&self) -> bool {
        self.state.halted.is_some()
            || self.if_id.is_none()
                && self.if_pending.is_none()
                && self.if_busy == 0
                && self.id_ex.is_none()
                && self.id_hold.is_none()
                && self.id_stall == 0
                && self.ex_mem.is_none()
                && self.ex_hold.is_none()
                && self.ex_busy == 0
                && self.mem_wb.is_none()
                && self.mem_hold.is_none()
                && self.mem_busy == 0
    }

    /// Flips one bit in an occupied inter-stage latch (fault-injection
    /// harness). `stage`: 0 = IF/ID, 1 = ID/EX, 2 = EX/MEM, 3 = MEM/WB.
    /// Bits 0–31 hit the in-flight instruction word (IF/ID, ID/EX, which
    /// re-decode) or the latched data value (EX/MEM `alu`, MEM/WB
    /// `value`); bits 32–63 hit the latched PC. Returns `false` when the
    /// latch is empty — an injection into a bubble is architecturally
    /// masked by construction.
    pub fn inject_latch_bit(&mut self, stage: u8, bit: u8) -> bool {
        let bit = bit & 63;
        let word_bit = 1u32 << (bit & 31);
        match stage & 3 {
            0 => match &mut self.if_id {
                Some(l) => {
                    if bit < 32 {
                        l.decoded = decode_to(l.decoded.word ^ word_bit);
                    } else {
                        l.pc ^= word_bit;
                    }
                    true
                }
                None => false,
            },
            1 => match &mut self.id_ex {
                Some(l) => {
                    if bit < 32 {
                        l.decoded = decode_to(l.decoded.word ^ word_bit);
                    } else {
                        l.pc ^= word_bit;
                    }
                    true
                }
                None => false,
            },
            2 => match &mut self.ex_mem {
                Some(l) => {
                    if bit < 32 {
                        l.alu ^= word_bit;
                    } else {
                        l.pc ^= word_bit;
                    }
                    true
                }
                None => false,
            },
            _ => match &mut self.mem_wb {
                Some(l) => {
                    if bit < 32 {
                        l.value ^= word_bit;
                    } else {
                        l.pc ^= word_bit;
                    }
                    true
                }
                None => false,
            },
        }
    }
}

impl<H: Hooks> Core<H> {
    /// Loads program segments into RAM and points fetch at `entry`.
    ///
    /// All in-flight pipeline state (including a pending WFI) and any
    /// previous halt are cleared: the core is ready to `run` the new
    /// program.
    ///
    /// # Panics
    ///
    /// Panics if a segment does not fit in RAM (a build-setup error, not
    /// a runtime condition).
    pub fn load_segments<'a>(
        &mut self,
        segments: impl IntoIterator<Item = (u32, &'a [u8])>,
        entry: u32,
    ) {
        self.state.load_image(segments);
        self.set_pc(entry);
    }
}
