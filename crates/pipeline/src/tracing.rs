//! A tracing decorator over the extension-hook interface.
//!
//! [`TracingHooks`] wraps any [`Hooks`] implementation and emits trace
//! events for the extension activity the pipeline itself cannot see:
//! overridden instruction fetches (MRAM), custom-instruction execution,
//! and trap redirection. Everything else is forwarded verbatim, so
//! wrapping an extension changes observed behaviour and timing not at
//! all — the zero-perturbation property the differential tests assert.
//!
//! Events go to the machine's own [`TraceHandle`]
//! (`state.trace`), so enabling tracing is one
//! [`crate::state::MachineState::set_trace`] call whether or not the
//! decorator is used; the decorator only adds the hook-level events.
//!
//! [`TraceHandle`]: metal_trace::TraceHandle

use crate::hooks::{CustomExec, DecodeOutcome, Hooks, TrapDisposition, TrapEvent};
use crate::state::MachineState;
use crate::trap::Trap;
use metal_isa::{DecodedInsn, Insn};
use metal_trace::EventKind;

/// Wraps `H`, emitting hook-level trace events.
#[derive(Clone, Copy, Debug, Default)]
pub struct TracingHooks<H> {
    /// The wrapped extension.
    pub inner: H,
}

impl<H> TracingHooks<H> {
    /// Wraps `inner`.
    pub fn new(inner: H) -> TracingHooks<H> {
        TracingHooks { inner }
    }

    /// Unwraps back to the inner extension.
    pub fn into_inner(self) -> H {
        self.inner
    }
}

impl<H: Hooks> Hooks for TracingHooks<H> {
    #[inline]
    fn fetch(&mut self, state: &mut MachineState, pc: u32) -> Option<Result<(u32, u32), Trap>> {
        let result = self.inner.fetch(state, pc);
        if matches!(result, Some(Ok(_))) {
            // An extension-provided fetch is an MRAM fetch under Metal.
            state.trace.emit(EventKind::MramFetch { pc });
        }
        result
    }

    #[inline]
    fn fetch_decoded(
        &mut self,
        state: &mut MachineState,
        pc: u32,
    ) -> Option<Result<(DecodedInsn, u32), Trap>> {
        // Forward to the inner hook's own override (MRAM pre-decode),
        // emitting the event here so it appears exactly once per fetch.
        let result = self.inner.fetch_decoded(state, pc);
        if matches!(result, Some(Ok(_))) {
            state.trace.emit(EventKind::MramFetch { pc });
        }
        result
    }

    #[inline]
    fn decode_is_sensitive(&self, state: &MachineState, word: u32, insn: &Insn) -> bool {
        self.inner.decode_is_sensitive(state, word, insn)
    }

    #[inline]
    fn decode(
        &mut self,
        state: &mut MachineState,
        pc: u32,
        word: u32,
        insn: &Insn,
    ) -> DecodeOutcome {
        // The pipeline emits DecodeReplace on the Replace path itself, so
        // the decorator only forwards.
        self.inner.decode(state, pc, word, insn)
    }

    fn exec_custom(
        &mut self,
        state: &mut MachineState,
        pc: u32,
        word: u32,
        insn: &Insn,
        rs1: u32,
        rs2: u32,
    ) -> Result<CustomExec, Trap> {
        let result = self.inner.exec_custom(state, pc, word, insn, rs1, rs2);
        if result.is_ok() {
            state.trace.emit(EventKind::CustomExec { pc, word });
        }
        result
    }

    fn on_trap(&mut self, state: &mut MachineState, event: &TrapEvent) -> TrapDisposition {
        let disposition = self.inner.on_trap(state, event);
        if let TrapDisposition::Redirect { target, .. } = disposition {
            state.trace.emit(EventKind::Marker {
                name: "trap.redirect",
                value: u64::from(target),
            });
        }
        disposition
    }

    #[inline]
    fn interrupts_allowed(&self, state: &MachineState) -> bool {
        self.inner.interrupts_allowed(state)
    }

    #[inline]
    fn on_retire(&mut self, state: &mut MachineState, pc: u32, insn: &Insn) {
        self.inner.on_retire(state, pc, insn);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hooks::NoHooks;
    use crate::state::CoreConfig;
    use metal_trace::{TraceConfig, TraceHandle};

    #[test]
    fn decorator_forwards_defaults() {
        let mut hooks = TracingHooks::new(NoHooks);
        let mut state = MachineState::new(&CoreConfig::default());
        state.set_trace(TraceHandle::enabled(TraceConfig::default()));
        assert!(hooks.fetch(&mut state, 0).is_none());
        assert!(hooks.interrupts_allowed(&state));
        let insn = Insn::Mexit;
        assert_eq!(hooks.decode(&mut state, 0, 0, &insn), DecodeOutcome::Pass);
        assert!(hooks.exec_custom(&mut state, 0, 0, &insn, 0, 0).is_err());
        // NoHooks never overrides fetch or executes custom ops, so no
        // hook-level events were emitted.
        assert!(state.trace.events().is_empty());
    }

    #[test]
    fn redirect_is_marked() {
        struct Redirecting;
        impl Hooks for Redirecting {
            fn on_trap(&mut self, _: &mut MachineState, _: &TrapEvent) -> TrapDisposition {
                TrapDisposition::Redirect {
                    target: 0xF00,
                    stall: 0,
                }
            }
        }
        let mut hooks = TracingHooks::new(Redirecting);
        let mut state = MachineState::new(&CoreConfig::default());
        state.set_trace(TraceHandle::enabled(TraceConfig::default()));
        let event = TrapEvent {
            cause: crate::trap::TrapCause::Ecall,
            tval: 0,
            pc: 0,
        };
        hooks.on_trap(&mut state, &event);
        let events = state.trace.events();
        assert_eq!(events.len(), 1);
        assert!(matches!(
            events[0].kind,
            EventKind::Marker {
                name: "trap.redirect",
                value: 0xF00
            }
        ));
    }
}
