//! Cycle-level 5-stage pipelined RISC core.
//!
//! The paper prototypes Metal "on a 5-stage pipelined RISC processor"
//! (§2); this crate is that processor as a cycle-level simulator:
//!
//! * [`pipeline::Core`] — IF/ID/EX/MEM/WB with forwarding, load-use
//!   hazards, branch flushes, variable-latency memory, and traps.
//! * [`func::Interp`] — a functional reference interpreter used for
//!   differential testing (same [`state::MachineState`], no timing).
//! * [`engine::Engine`] — the common trait over both engines
//!   (construct / load / run / inspect), so harnesses are written once.
//! * [`hooks::Hooks`] — the extension interface Metal attaches to
//!   (fetch, decode replacement, custom execute, trap delegation).
//!
//! Both engines fetch through [`state::DecodeCache`], a shared
//! physical-address-keyed cache of pre-decoded instructions kept
//! coherent with self-modifying code by a bus generation counter.
//!
//! The baseline (non-Metal) processor is `Core<NoHooks>`: Metal
//! instructions raise illegal-instruction traps and all traps vector
//! through `mtvec`, exactly the conventional design Metal replaces.

pub mod engine;
pub mod func;
pub mod hooks;
pub mod pipeline;
pub mod state;
pub mod tracing;
pub mod trap;

pub use engine::{Engine, EngineSnapshot};
pub use func::Interp;
pub use hooks::{CustomExec, DecodeOutcome, Hooks, NoHooks, TrapDisposition, TrapEvent};
pub use pipeline::Core;
pub use state::{
    CoreConfig, CsrFile, DecodeCache, HaltReason, MachineSnapshot, MachineState, PerfCounters,
    RegFile, TranslationMode,
};
pub use tracing::TracingHooks;
pub use trap::{Trap, TrapCause, MACHINE_CHECK_BASE};
