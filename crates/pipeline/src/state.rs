//! Architectural and micro-architectural machine state shared by the
//! pipelined core and the functional reference interpreter.

use crate::trap::{Trap, TrapCause};
use metal_isa::csr;
use metal_isa::decoded::{decode_to, DecodedInsn};
use metal_isa::insn::{LoadOp, StoreOp};
use metal_isa::reg::Reg;
use metal_mem::bus::MMIO_BASE;
use metal_mem::tlb::{AccessKind, TlbFault};
use metal_mem::walker::{WalkResult, Walker};
use metal_mem::{Bus, BusSnapshot, Cache, CacheConfig, MemError, Tlb, TlbConfig};
use metal_trace::{CacheKind, EventKind, MetricsSnapshot, TraceHandle};

/// The 32 general-purpose registers with `x0` hard-wired to zero.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegFile {
    regs: [u32; 32],
}

impl RegFile {
    /// All-zero register file.
    #[must_use]
    pub fn new() -> RegFile {
        RegFile { regs: [0; 32] }
    }

    /// Reads a register (`x0` is always 0).
    #[inline]
    #[must_use]
    pub fn get(&self, r: Reg) -> u32 {
        self.regs[r.index()]
    }

    /// Writes a register (writes to `x0` are discarded).
    #[inline]
    pub fn set(&mut self, r: Reg, value: u32) {
        if r != Reg::ZERO {
            self.regs[r.index()] = value;
        }
    }

    /// Snapshot of all registers (for differential testing).
    #[must_use]
    pub fn snapshot(&self) -> [u32; 32] {
        self.regs
    }
}

impl Default for RegFile {
    fn default() -> RegFile {
        RegFile::new()
    }
}

/// The baseline core's control and status registers.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CsrFile {
    /// Machine status (MIE/MPIE bits).
    pub mstatus: u32,
    /// Trap vector base.
    pub mtvec: u32,
    /// Trap scratch.
    pub mscratch: u32,
    /// Exception PC.
    pub mepc: u32,
    /// Trap cause.
    pub mcause: u32,
    /// Trap value.
    pub mtval: u32,
    /// Interrupt enable bitmap.
    pub mie: u32,
}

impl CsrFile {
    /// Reads a CSR (`None` = unimplemented, an illegal-instruction
    /// condition). `cycle`/`instret` come from the performance counters.
    #[must_use]
    pub fn read(&self, addr: u16, perf: &PerfCounters) -> Option<u32> {
        Some(match addr {
            csr::MSTATUS => self.mstatus,
            csr::MTVEC => self.mtvec,
            csr::MSCRATCH => self.mscratch,
            csr::MEPC => self.mepc,
            csr::MCAUSE => self.mcause,
            csr::MTVAL => self.mtval,
            csr::MIE => self.mie,
            csr::MIP => perf.mip_snapshot,
            csr::CYCLE => perf.cycles as u32,
            csr::CYCLEH => (perf.cycles >> 32) as u32,
            csr::INSTRET => perf.instret as u32,
            csr::INSTRETH => (perf.instret >> 32) as u32,
            _ => return None,
        })
    }

    /// Writes a CSR; returns false for read-only counters and unknown
    /// addresses (an illegal-instruction condition).
    pub fn write(&mut self, addr: u16, value: u32) -> bool {
        match addr {
            csr::MSTATUS => self.mstatus = value,
            csr::MTVEC => self.mtvec = value & !0x3,
            csr::MSCRATCH => self.mscratch = value,
            csr::MEPC => self.mepc = value & !0x1,
            csr::MCAUSE => self.mcause = value,
            csr::MTVAL => self.mtval = value,
            csr::MIE => self.mie = value,
            _ => return false,
        }
        true
    }
}

/// How data and fetch addresses are translated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TranslationMode {
    /// Physical addressing (va == pa).
    Bare,
    /// Software-managed TLB: a miss is a page fault delivered to software
    /// (an mroutine under Metal, the kernel trap handler otherwise).
    SoftTlb,
    /// Hardware walker: a TLB miss triggers a radix-tree walk; only a
    /// failed walk or permission violation faults.
    HwWalker {
        /// Physical base of the root page directory.
        root: u32,
    },
}

/// Why the machine stopped.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HaltReason {
    /// Guest executed `ebreak`; the exit code convention is `a0`.
    Ebreak {
        /// Value of `a0` at the breakpoint.
        code: u32,
    },
    /// An unrecoverable situation (e.g. a fault inside an mroutine).
    Fatal(String),
    /// A watchdog fuel budget expired ([`crate::Engine::run_fuel`]):
    /// the guest was still running when its instruction/cycle budget
    /// ran out. Distinct from `None` (out of `run` limit but not under
    /// a watchdog) so campaign harnesses can classify hangs.
    Timeout,
}

/// Micro-architectural event counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PerfCounters {
    /// Elapsed cycles.
    pub cycles: u64,
    /// Retired instructions.
    pub instret: u64,
    /// Cycles lost to instruction-fetch latency beyond 1.
    pub fetch_stall: u64,
    /// Cycles lost to data-access latency beyond 1.
    pub mem_stall: u64,
    /// Cycles lost to load-use hazards.
    pub loaduse_stall: u64,
    /// Cycles lost to control-flow flushes (branches, jumps, mret).
    pub flush_cycles: u64,
    /// Cycles lost to multi-cycle execute (mul/div).
    pub ex_stall: u64,
    /// Exceptions taken.
    pub exceptions: u64,
    /// Interrupts taken.
    pub interrupts: u64,
    /// Metal-mode entries (menter, intercepts, delegated traps).
    pub metal_entries: u64,
    /// TLB refills performed by the hardware walker.
    pub hw_refills: u64,
    /// Latest interrupt-pending bitmap (for the `mip` CSR).
    pub mip_snapshot: u32,
}

/// Timing and translation configuration of a core.
#[derive(Clone, Copy, Debug)]
pub struct CoreConfig {
    /// Instruction cache geometry/latency.
    pub icache: CacheConfig,
    /// Data cache geometry/latency.
    pub dcache: CacheConfig,
    /// TLB geometry.
    pub tlb: TlbConfig,
    /// Extra EX cycles for `mul*`.
    pub mul_latency: u32,
    /// Extra EX cycles for `div*`/`rem*`.
    pub div_latency: u32,
    /// Fixed latency of an MMIO data access.
    pub mmio_latency: u32,
    /// Latency of an uncached physical access (`mpld`/`mpst`).
    pub phys_latency: u32,
    /// Translation mode at reset.
    pub translation: TranslationMode,
    /// PC at reset.
    pub reset_pc: u32,
    /// RAM size in bytes.
    pub ram_bytes: usize,
    /// Enables the shared pre-decoded instruction cache (host-side
    /// speedup only; simulated timing is identical either way).
    pub decode_cache: bool,
}

impl Default for CoreConfig {
    fn default() -> CoreConfig {
        CoreConfig {
            icache: CacheConfig::default(),
            dcache: CacheConfig::default(),
            tlb: TlbConfig::default(),
            mul_latency: 2,
            div_latency: 16,
            mmio_latency: 3,
            phys_latency: 6,
            translation: TranslationMode::Bare,
            reset_pc: 0,
            ram_bytes: 4 << 20,
            decode_cache: true,
        }
    }
}

/// Direct-mapped slots in the decode cache (a 16 KiB code window at one
/// slot per 4-byte word).
const DECODE_CACHE_SLOTS: usize = 4096;

/// Sentinel physical address marking an empty slot (real fetch
/// addresses are always 4-aligned).
const DECODE_SLOT_EMPTY: u32 = 1;

#[derive(Clone, Copy, Debug)]
struct DecodeSlot {
    pa: u32,
    data: DecodedInsn,
}

/// A direct-mapped cache of pre-decoded instructions keyed by physical
/// address, shared by both execution engines via
/// [`MachineState::fetch_decoded`].
///
/// Coherence uses a generation protocol: every insert marks the
/// containing RAM line code-resident on the bus, the bus bumps its
/// generation on any store to a marked line, and the next fetch flushes
/// the whole cache on a generation mismatch — so self-modifying code
/// always re-decodes. Host-side RAM writes that bypass the bus (program
/// loads) must call [`MachineState::invalidate_decode_cache`].
///
/// The cache is a *host-side* optimization only: a hit skips the RAM
/// read and the decode, but the icache/TLB timing models and their
/// trace events run identically on hits and misses, so enabling it
/// perturbs no simulated observable.
#[derive(Clone, Debug)]
pub struct DecodeCache {
    slots: Vec<DecodeSlot>,
    enabled: bool,
    /// Snapshot of the bus generation the cached contents are valid for.
    generation: u64,
    hits: u64,
    misses: u64,
    invalidations: u64,
}

impl DecodeCache {
    fn new(enabled: bool) -> DecodeCache {
        DecodeCache {
            slots: vec![
                DecodeSlot {
                    pa: DECODE_SLOT_EMPTY,
                    data: DecodedInsn::illegal(0),
                };
                DECODE_CACHE_SLOTS
            ],
            enabled,
            generation: 0,
            hits: 0,
            misses: 0,
            invalidations: 0,
        }
    }

    /// Whether fetches consult the cache at all.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Fetches served from a cached pre-decoded entry.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Fetches that had to read and decode the word.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Whole-cache flushes (generation mismatches and program loads).
    #[must_use]
    pub fn invalidations(&self) -> u64 {
        self.invalidations
    }

    #[inline]
    fn index(pa: u32) -> usize {
        ((pa >> 2) as usize) & (DECODE_CACHE_SLOTS - 1)
    }

    #[inline]
    fn lookup(&mut self, pa: u32) -> Option<DecodedInsn> {
        let slot = &self.slots[Self::index(pa)];
        if slot.pa == pa {
            self.hits += 1;
            Some(slot.data)
        } else {
            self.misses += 1;
            None
        }
    }

    #[inline]
    fn insert(&mut self, pa: u32, data: DecodedInsn) {
        self.slots[Self::index(pa)] = DecodeSlot { pa, data };
    }

    fn flush(&mut self) {
        for slot in &mut self.slots {
            slot.pa = DECODE_SLOT_EMPTY;
        }
        self.invalidations += 1;
    }

    /// Allocation-free restore of all slots and counters from a snapshot
    /// of another cache with the same geometry.
    fn copy_from(&mut self, other: &DecodeCache) {
        self.slots.copy_from_slice(&other.slots);
        self.enabled = other.enabled;
        self.generation = other.generation;
        self.hits = other.hits;
        self.misses = other.misses;
        self.invalidations = other.invalidations;
    }
}

/// A point-in-time copy of every architectural and micro-architectural
/// field of a [`MachineState`], taken with [`MachineState::snapshot`] and
/// applied with [`MachineState::restore`].
///
/// The trace handle is deliberately *not* captured: trace rings are
/// shared observation channels, not machine state, and a restored
/// machine keeps whatever handle it currently has (subsystem handles are
/// reattached by `restore`). Device windows on the bus are likewise not
/// captured — see [`Bus::snapshot`].
#[derive(Clone, Debug)]
pub struct MachineSnapshot {
    regs: RegFile,
    csr: CsrFile,
    bus: BusSnapshot,
    tlb: Tlb,
    icache: Cache,
    dcache: Cache,
    translation: TranslationMode,
    asid: u16,
    perf: PerfCounters,
    halted: Option<HaltReason>,
    decode_cache: DecodeCache,
}

/// Everything the pipeline, the reference interpreter, and the extension
/// hooks share: registers, CSRs, memory system, translation state, and
/// performance counters.
pub struct MachineState {
    /// General-purpose registers.
    pub regs: RegFile,
    /// Baseline CSRs.
    pub csr: CsrFile,
    /// The physical address space.
    pub bus: Bus,
    /// The software-managed TLB.
    pub tlb: Tlb,
    /// Instruction cache (timing only).
    pub icache: Cache,
    /// Data cache (timing only).
    pub dcache: Cache,
    /// Active translation mode.
    pub translation: TranslationMode,
    /// Current address-space ID.
    pub asid: u16,
    /// Performance counters.
    pub perf: PerfCounters,
    /// Set when the machine has stopped.
    pub halted: Option<HaltReason>,
    /// Fixed MMIO access latency.
    pub mmio_latency: u32,
    /// Fixed uncached physical access latency.
    pub phys_latency: u32,
    /// Event sink; disabled by default (see [`MachineState::set_trace`]).
    pub trace: TraceHandle,
    /// Shared pre-decoded instruction cache (see [`DecodeCache`]).
    pub decode_cache: DecodeCache,
}

impl MachineState {
    /// Builds machine state from a core configuration.
    #[must_use]
    pub fn new(config: &CoreConfig) -> MachineState {
        MachineState {
            regs: RegFile::new(),
            csr: CsrFile::default(),
            bus: Bus::new(config.ram_bytes),
            tlb: Tlb::new(config.tlb),
            icache: Cache::new(config.icache),
            dcache: Cache::new(config.dcache),
            translation: config.translation,
            asid: 0,
            perf: PerfCounters::default(),
            halted: None,
            mmio_latency: config.mmio_latency,
            phys_latency: config.phys_latency,
            trace: TraceHandle::disabled(),
            decode_cache: DecodeCache::new(config.decode_cache),
        }
    }

    /// Installs a trace handle on the machine and on every subsystem
    /// that emits events directly (TLB lookups, bus MMIO accesses).
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.tlb.trace = trace.clone();
        self.bus.trace = trace.clone();
        self.trace = trace;
    }

    /// Captures every architectural and micro-architectural field into a
    /// [`MachineSnapshot`] for later [`MachineState::restore`].
    #[must_use]
    pub fn snapshot(&self) -> MachineSnapshot {
        MachineSnapshot {
            regs: self.regs.clone(),
            csr: self.csr.clone(),
            bus: self.bus.snapshot(),
            tlb: self.tlb.clone(),
            icache: self.icache.clone(),
            dcache: self.dcache.clone(),
            translation: self.translation,
            asid: self.asid,
            perf: self.perf.clone(),
            halted: self.halted.clone(),
            decode_cache: self.decode_cache.clone(),
        }
    }

    /// Rewinds the machine to a previously captured snapshot without
    /// reallocating RAM or cache arrays — the hot reset path of the
    /// fuzzer, which restores between every generated case.
    ///
    /// The machine keeps its *current* trace handle; subsystem handles
    /// (TLB, bus) are reattached to it so events keep flowing to whatever
    /// ring is installed now, not the one live at snapshot time.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot was taken from a machine with different
    /// RAM geometry.
    pub fn restore(&mut self, snap: &MachineSnapshot) {
        self.regs = snap.regs.clone();
        self.csr = snap.csr.clone();
        self.bus.restore(&snap.bus);
        self.tlb.clone_from(&snap.tlb);
        self.tlb.trace = self.trace.clone();
        self.icache.clone_from(&snap.icache);
        self.dcache.clone_from(&snap.dcache);
        self.translation = snap.translation;
        self.asid = snap.asid;
        self.perf = snap.perf.clone();
        self.halted = snap.halted.clone();
        self.decode_cache.copy_from(&snap.decode_cache);
    }

    /// The unified metrics view: performance counters, stall breakdown,
    /// and cache/TLB statistics in one snapshot. Extensions append their
    /// own metrics (e.g. Metal's per-mroutine transition latencies) to
    /// the returned snapshot.
    #[must_use]
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::new();
        let p = &self.perf;
        snap.set_counter("cycles", p.cycles);
        snap.set_counter("instret", p.instret);
        if p.instret > 0 {
            snap.set_gauge("cpi", p.cycles as f64 / p.instret as f64);
        }
        snap.set_counter("stall.fetch", p.fetch_stall);
        snap.set_counter("stall.mem", p.mem_stall);
        snap.set_counter("stall.loaduse", p.loaduse_stall);
        snap.set_counter("stall.ex", p.ex_stall);
        snap.set_counter("flush.cycles", p.flush_cycles);
        snap.set_counter("trap.exceptions", p.exceptions);
        snap.set_counter("trap.interrupts", p.interrupts);
        snap.set_counter("metal.entries", p.metal_entries);
        snap.set_counter("icache.accesses", self.icache.accesses);
        snap.set_counter("icache.misses", self.icache.misses);
        snap.set_gauge("icache.hit_rate", self.icache.hit_rate());
        snap.set_counter("dcache.accesses", self.dcache.accesses);
        snap.set_counter("dcache.misses", self.dcache.misses);
        snap.set_gauge("dcache.hit_rate", self.dcache.hit_rate());
        snap.set_counter("tlb.lookups", self.tlb.lookups);
        snap.set_counter("tlb.hits", self.tlb.hits);
        if self.tlb.lookups > 0 {
            snap.set_gauge(
                "tlb.hit_rate",
                self.tlb.hits as f64 / self.tlb.lookups as f64,
            );
        }
        snap.set_counter("tlb.hw_refills", p.hw_refills);
        snap.set_counter("decode_cache.hit", self.decode_cache.hits);
        snap.set_counter("decode_cache.miss", self.decode_cache.misses);
        snap.set_counter("decode_cache.invalidate", self.decode_cache.invalidations);
        snap
    }

    fn fault_for(kind: AccessKind, fault: TlbFault, va: u32) -> Trap {
        let cause = match (kind, fault) {
            (AccessKind::Execute, _) => TrapCause::InsnPageFault,
            (AccessKind::Read, TlbFault::KeyViolation) => TrapCause::LoadKeyViolation,
            (AccessKind::Read, _) => TrapCause::LoadPageFault,
            (AccessKind::Write, TlbFault::KeyViolation) => TrapCause::StoreKeyViolation,
            (AccessKind::Write, _) => TrapCause::StorePageFault,
        };
        Trap::new(cause, va)
    }

    /// Translates a virtual address. Returns the physical address and any
    /// extra cycles spent (hardware walker memory accesses).
    pub fn translate(&mut self, va: u32, kind: AccessKind) -> Result<(u32, u32), Trap> {
        match self.translation {
            TranslationMode::Bare => Ok((va, 0)),
            TranslationMode::SoftTlb => match self.tlb.translate(va, self.asid, kind) {
                Ok(pa) => Ok((pa, 0)),
                Err(fault) => Err(Self::fault_for(kind, fault, va)),
            },
            TranslationMode::HwWalker { root } => {
                match self.tlb.translate(va, self.asid, kind) {
                    Ok(pa) => Ok((pa, 0)),
                    Err(TlbFault::Miss) => {
                        let walker = Walker::new(root);
                        let (result, accesses) = walker
                            .walk(&self.bus.ram, va)
                            .map_err(|e| Self::mem_trap(kind, e))?;
                        // Each walk access costs a memory round trip.
                        let walk_cycles = accesses * self.dcache.config().miss_penalty;
                        match result {
                            WalkResult::Mapped(pte) => {
                                self.tlb.install(va, pte, self.asid);
                                self.perf.hw_refills += 1;
                                self.trace.emit(EventKind::HwRefill { va });
                                match self.tlb.translate(va, self.asid, kind) {
                                    Ok(pa) => Ok((pa, walk_cycles)),
                                    Err(fault) => Err(Self::fault_for(kind, fault, va)),
                                }
                            }
                            WalkResult::NotMapped { .. } => {
                                Err(Self::fault_for(kind, TlbFault::Miss, va))
                            }
                        }
                    }
                    Err(fault) => Err(Self::fault_for(kind, fault, va)),
                }
            }
        }
    }

    fn mem_trap(kind: AccessKind, e: MemError) -> Trap {
        let addr = e.addr();
        let cause = match (kind, e) {
            (AccessKind::Execute, MemError::Misaligned { .. }) => TrapCause::InsnMisaligned,
            (AccessKind::Execute, _) => TrapCause::InsnAccessFault,
            (AccessKind::Read, MemError::Misaligned { .. }) => TrapCause::LoadMisaligned,
            (AccessKind::Read, _) => TrapCause::LoadAccessFault,
            (AccessKind::Write, MemError::Misaligned { .. }) => TrapCause::StoreMisaligned,
            (AccessKind::Write, _) => TrapCause::StoreAccessFault,
        };
        Trap::new(cause, addr)
    }

    /// Fetches an instruction word. Returns the word and the fetch
    /// latency in cycles (icache hit = 1).
    pub fn fetch(&mut self, pc: u32) -> Result<(u32, u32), Trap> {
        self.fetch_decoded(pc).map(|(d, latency)| (d.word, latency))
    }

    /// Charges the icache model for the fetch of `pa` and emits the
    /// access event — identical on decode-cache hits and misses.
    #[inline]
    fn icache_access(&mut self, pa: u32) -> u32 {
        let latency = self.icache.access(pa);
        self.trace.emit(EventKind::CacheAccess {
            which: CacheKind::ICache,
            addr: pa,
            hit: latency == self.icache.config().hit_latency,
        });
        latency
    }

    /// Fetches a pre-decoded instruction, consulting the decode cache.
    /// Returns the decoded form and the fetch latency in cycles (icache
    /// hit = 1). Words with no legal decoding are returned with
    /// [`metal_isa::DispatchTag::Illegal`], not as errors — the trap is
    /// raised where the word would execute.
    pub fn fetch_decoded(&mut self, pc: u32) -> Result<(DecodedInsn, u32), Trap> {
        if !pc.is_multiple_of(4) {
            return Err(Trap::new(TrapCause::InsnMisaligned, pc));
        }
        let (pa, walk_cycles) = self.translate(pc, AccessKind::Execute)?;
        if pa >= MMIO_BASE {
            return Err(Trap::new(TrapCause::InsnAccessFault, pc));
        }
        if self.decode_cache.enabled {
            if self.decode_cache.generation != self.bus.code_generation() {
                // A store hit a code-resident line since we last looked:
                // drop every cached entry and start a fresh epoch.
                self.decode_cache.flush();
                self.bus.clear_code_marks();
                self.decode_cache.generation = self.bus.code_generation();
            }
            if let Some(d) = self.decode_cache.lookup(pa) {
                let latency = self.icache_access(pa);
                return Ok((d, latency + walk_cycles));
            }
        }
        let word = self
            .bus
            .read_u32(pa)
            .map_err(|e| Self::mem_trap(AccessKind::Execute, e))?;
        let latency = self.icache_access(pa);
        let d = decode_to(word);
        if self.decode_cache.enabled {
            self.decode_cache.insert(pa, d);
            self.bus.mark_code(pa);
        }
        Ok((d, latency + walk_cycles))
    }

    /// Flushes the decode cache and its bus-side code marks. Must be
    /// called after host-side RAM writes that bypass the bus (program
    /// loads), which the generation protocol cannot observe.
    pub fn invalidate_decode_cache(&mut self) {
        if self.decode_cache.enabled {
            self.decode_cache.flush();
            self.bus.clear_code_marks();
            self.decode_cache.generation = self.bus.code_generation();
        }
    }

    /// Loads raw segments into RAM, clears any halt, and invalidates the
    /// decode cache. The shared tail of both engines' `load_segments`.
    ///
    /// # Panics
    ///
    /// Panics if a segment does not fit in RAM.
    pub fn load_image<'a>(&mut self, segments: impl IntoIterator<Item = (u32, &'a [u8])>) {
        for (base, data) in segments {
            self.bus
                .ram
                .load(base, data)
                .unwrap_or_else(|e| panic!("segment at {base:#x} does not fit in RAM: {e}"));
        }
        self.halted = None;
        self.invalidate_decode_cache();
    }

    /// Performs a data load. Returns the (sign/zero-extended) value and
    /// the access latency in cycles.
    pub fn load(&mut self, va: u32, op: LoadOp) -> Result<(u32, u32), Trap> {
        if !va.is_multiple_of(op.bytes()) {
            return Err(Trap::new(TrapCause::LoadMisaligned, va));
        }
        let (pa, walk_cycles) = self.translate(va, AccessKind::Read)?;
        let raw = match op {
            LoadOp::Lb => self.bus.read_u8(pa).map(|b| b as i8 as i32 as u32),
            LoadOp::Lbu => self.bus.read_u8(pa).map(u32::from),
            LoadOp::Lh => self.bus.read_u16(pa).map(|h| h as i16 as i32 as u32),
            LoadOp::Lhu => self.bus.read_u16(pa).map(u32::from),
            LoadOp::Lw => self.bus.read_u32(pa),
        }
        .map_err(|e| Self::mem_trap(AccessKind::Read, e))?;
        let latency = if pa >= MMIO_BASE {
            self.mmio_latency
        } else {
            let latency = self.dcache.access(pa);
            self.trace.emit(EventKind::CacheAccess {
                which: CacheKind::DCache,
                addr: pa,
                hit: latency == self.dcache.config().hit_latency,
            });
            latency
        };
        Ok((raw, latency + walk_cycles))
    }

    /// Performs a data store. Returns the access latency in cycles.
    pub fn store(&mut self, va: u32, op: StoreOp, value: u32) -> Result<u32, Trap> {
        if !va.is_multiple_of(op.bytes()) {
            return Err(Trap::new(TrapCause::StoreMisaligned, va));
        }
        let (pa, walk_cycles) = self.translate(va, AccessKind::Write)?;
        match op {
            StoreOp::Sb => self.bus.write_u8(pa, value as u8),
            StoreOp::Sh => self.bus.write_u16(pa, value as u16),
            StoreOp::Sw => self.bus.write_u32(pa, value),
        }
        .map_err(|e| Self::mem_trap(AccessKind::Write, e))?;
        let latency = if pa >= MMIO_BASE {
            self.mmio_latency
        } else {
            let latency = self.dcache.access(pa);
            self.trace.emit(EventKind::CacheAccess {
                which: CacheKind::DCache,
                addr: pa,
                hit: latency == self.dcache.config().hit_latency,
            });
            latency
        };
        Ok(latency + walk_cycles)
    }

    /// Physical (MMU-bypassing) word load for `mpld`. Never allocates in
    /// the data cache (paper §2: MRAM/physical paths avoid cache side
    /// effects); costs [`MachineState::phys_latency`].
    pub fn phys_load(&mut self, pa: u32) -> Result<(u32, u32), Trap> {
        let value = self
            .bus
            .read_u32(pa)
            .map_err(|e| Self::mem_trap(AccessKind::Read, e))?;
        Ok((value, self.phys_latency))
    }

    /// Physical word store for `mpst`.
    pub fn phys_store(&mut self, pa: u32, value: u32) -> Result<u32, Trap> {
        self.bus
            .write_u32(pa, value)
            .map_err(|e| Self::mem_trap(AccessKind::Write, e))?;
        Ok(self.phys_latency)
    }
}

impl std::fmt::Debug for MachineState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MachineState")
            .field("asid", &self.asid)
            .field("translation", &self.translation)
            .field("halted", &self.halted)
            .field("cycles", &self.perf.cycles)
            .field("instret", &self.perf.instret)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metal_mem::tlb::Pte;

    fn machine() -> MachineState {
        MachineState::new(&CoreConfig {
            ram_bytes: 1 << 20,
            ..CoreConfig::default()
        })
    }

    #[test]
    fn regfile_x0_pinned() {
        let mut r = RegFile::new();
        r.set(Reg::ZERO, 55);
        assert_eq!(r.get(Reg::ZERO), 0);
        r.set(Reg::A0, 55);
        assert_eq!(r.get(Reg::A0), 55);
    }

    #[test]
    fn csr_read_write() {
        let mut c = CsrFile::default();
        let perf = PerfCounters {
            cycles: 0x1_0000_0007,
            ..PerfCounters::default()
        };
        assert!(c.write(csr::MTVEC, 0x1003));
        assert_eq!(c.read(csr::MTVEC, &perf), Some(0x1000), "low bits masked");
        assert_eq!(c.read(csr::CYCLE, &perf), Some(7));
        assert_eq!(c.read(csr::CYCLEH, &perf), Some(1));
        assert!(!c.write(csr::CYCLE, 0), "counters are read-only");
        assert!(c.read(0x123, &perf).is_none());
    }

    #[test]
    fn bare_translation_passthrough() {
        let mut m = machine();
        m.bus.ram.write_u32(0x100, 0xABCD).unwrap();
        let (v, _) = m.load(0x100, LoadOp::Lw).unwrap();
        assert_eq!(v, 0xABCD);
    }

    #[test]
    fn load_sign_extension() {
        let mut m = machine();
        m.bus.ram.write_u32(0x100, 0xFFFF_FF80).unwrap();
        assert_eq!(m.load(0x100, LoadOp::Lb).unwrap().0, 0xFFFF_FF80);
        assert_eq!(m.load(0x100, LoadOp::Lbu).unwrap().0, 0x80);
        assert_eq!(m.load(0x100, LoadOp::Lh).unwrap().0, 0xFFFF_FF80);
        assert_eq!(m.load(0x100, LoadOp::Lhu).unwrap().0, 0xFF80);
    }

    #[test]
    fn soft_tlb_miss_is_page_fault() {
        let mut m = machine();
        m.translation = TranslationMode::SoftTlb;
        let err = m.load(0x5000, LoadOp::Lw).unwrap_err();
        assert_eq!(err.cause, TrapCause::LoadPageFault);
        assert_eq!(err.tval, 0x5000);
        // Install a mapping (page-granular) and retry through it.
        m.tlb.install(0x5000, Pte::new(0x1000, Pte::V | Pte::R), 0);
        m.bus.ram.write_u32(0x1100, 99).unwrap();
        assert_eq!(m.load(0x5100, LoadOp::Lw).unwrap().0, 99);
        // Store to a read-only page faults differently.
        let err = m.store(0x5000, StoreOp::Sw, 0).unwrap_err();
        assert_eq!(err.cause, TrapCause::StorePageFault);
    }

    #[test]
    fn hw_walker_refills() {
        let mut m = machine();
        // Build a page table rooted at 0x10000 mapping va 0x40000 -> pa 0x200.
        let root = 0x1_0000;
        let walker = Walker::new(root);
        let mut next = 0x2_0000u32;
        let mut alloc = || {
            let p = next;
            next += 0x1000;
            p
        };
        walker
            .map(&mut m.bus.ram, 0x4_0000, 0x0, Pte::R | Pte::W, &mut alloc)
            .unwrap();
        m.bus.ram.write_u32(0x0, 0x1234).unwrap();
        m.translation = TranslationMode::HwWalker { root };
        let (v, cycles) = m.load(0x4_0000, LoadOp::Lw).unwrap();
        assert_eq!(v, 0x1234);
        assert!(cycles > 1, "walk charged extra cycles, got {cycles}");
        assert_eq!(m.perf.hw_refills, 1);
        // Second access hits the TLB: cheap.
        let (_, cycles2) = m.load(0x4_0000, LoadOp::Lw).unwrap();
        assert!(cycles2 < cycles);
        assert_eq!(m.perf.hw_refills, 1);
    }

    #[test]
    fn misaligned_accesses_trap() {
        let mut m = machine();
        assert_eq!(
            m.load(0x101, LoadOp::Lw).unwrap_err().cause,
            TrapCause::LoadMisaligned
        );
        assert_eq!(
            m.store(0x102, StoreOp::Sw, 0).unwrap_err().cause,
            TrapCause::StoreMisaligned
        );
        assert_eq!(m.fetch(0x2).unwrap_err().cause, TrapCause::InsnMisaligned);
    }

    #[test]
    fn fetch_from_mmio_faults() {
        let mut m = machine();
        assert_eq!(
            m.fetch(MMIO_BASE).unwrap_err().cause,
            TrapCause::InsnAccessFault
        );
    }

    #[test]
    fn decode_cache_hits_and_invalidates_on_bus_stores() {
        let mut m = machine();
        m.bus.ram.write_u32(0x100, 0x0000_0013).unwrap(); // nop
        m.invalidate_decode_cache();
        let inv_base = m.decode_cache.invalidations();
        let (d1, _) = m.fetch_decoded(0x100).unwrap();
        assert_eq!(m.decode_cache.misses(), 1);
        let (d2, _) = m.fetch_decoded(0x100).unwrap();
        assert_eq!(m.decode_cache.hits(), 1);
        assert_eq!(d1, d2);
        // A store through the bus to the fetched line flushes the cache;
        // the next fetch sees the new word.
        m.store(0x100, StoreOp::Sw, 0x02A0_0513).unwrap(); // addi a0, x0, 42
        let (d3, _) = m.fetch_decoded(0x100).unwrap();
        assert_eq!(m.decode_cache.invalidations(), inv_base + 1);
        assert_eq!(d3.word, 0x02A0_0513);
        // A store elsewhere does not flush.
        m.store(0x2000, StoreOp::Sw, 7).unwrap();
        let (_, _) = m.fetch_decoded(0x100).unwrap();
        assert_eq!(m.decode_cache.invalidations(), inv_base + 1);
    }

    #[test]
    fn decode_cache_is_timing_invisible() {
        let observe = |enabled: bool| {
            let mut m = MachineState::new(&CoreConfig {
                ram_bytes: 1 << 20,
                decode_cache: enabled,
                ..CoreConfig::default()
            });
            m.bus.ram.write_u32(0x40, 0x0000_0013).unwrap();
            let mut latencies = Vec::new();
            for _ in 0..5 {
                latencies.push(m.fetch_decoded(0x40).unwrap().1);
            }
            (latencies, m.icache.accesses, m.icache.misses)
        };
        assert_eq!(observe(false), observe(true));
    }

    #[test]
    fn phys_access_bypasses_translation() {
        let mut m = machine();
        m.translation = TranslationMode::SoftTlb;
        // Virtual load faults, physical load succeeds.
        assert!(m.load(0x300, LoadOp::Lw).is_err());
        m.phys_store(0x300, 77).unwrap();
        assert_eq!(m.phys_load(0x300).unwrap().0, 77);
    }

    #[test]
    fn decode_cache_survives_generation_wraparound() {
        let mut m = machine();
        m.bus.ram.write_u32(0x100, 0x0000_0013).unwrap(); // nop
        m.invalidate_decode_cache();
        // Park the bus generation at the wrap boundary. The decode
        // cache resynchronizes on the next fetch (inequality, not
        // ordering, drives the protocol).
        m.bus.force_code_generation(u64::MAX);
        let (d1, _) = m.fetch_decoded(0x100).unwrap();
        assert_eq!(d1.word, 0x0000_0013);
        let (_, _) = m.fetch_decoded(0x100).unwrap();
        assert_eq!(m.decode_cache.hits(), 1, "stable across the boundary");
        // The store wraps the generation to 0; the stale entry must
        // still be dropped even though the counter went "backwards".
        m.store(0x100, StoreOp::Sw, 0x02A0_0513).unwrap(); // addi a0, x0, 42
        assert_eq!(m.bus.code_generation(), 0, "generation wrapped");
        let (d2, _) = m.fetch_decoded(0x100).unwrap();
        assert_eq!(d2.word, 0x02A0_0513, "stale decode served after wrap");
    }

    #[test]
    fn load_image_invalidates_line_straddling_install() {
        let mut m = machine();
        // Cache decodes on both sides of a 64-byte code-line boundary.
        m.bus.ram.write_u32(0x13C, 0x0000_0013).unwrap(); // nop (line 0x100)
        m.bus.ram.write_u32(0x140, 0x0000_0013).unwrap(); // nop (line 0x140)
        m.invalidate_decode_cache();
        let (_, _) = m.fetch_decoded(0x13C).unwrap();
        let (_, _) = m.fetch_decoded(0x140).unwrap();
        // Install a segment straddling that boundary host-side (the
        // path an MRAM/program install takes — invisible to the bus
        // generation protocol, so load_image must flush explicitly).
        let addi_a0 = 0x02A0_0513u32.to_le_bytes(); // addi a0, x0, 42
        let addi_a1 = 0x0150_0593u32.to_le_bytes(); // addi a1, x0, 21
        let mut seg = Vec::new();
        seg.extend_from_slice(&addi_a0);
        seg.extend_from_slice(&addi_a1);
        m.load_image([(0x13C, seg.as_slice())]);
        let (d1, _) = m.fetch_decoded(0x13C).unwrap();
        let (d2, _) = m.fetch_decoded(0x140).unwrap();
        assert_eq!(d1.word, 0x02A0_0513, "pre-boundary word stale");
        assert_eq!(d2.word, 0x0150_0593, "post-boundary word stale");
    }

    #[test]
    fn snapshot_restore_rewinds_all_state() {
        let mut m = machine();
        m.translation = TranslationMode::SoftTlb;
        m.asid = 3;
        m.tlb.install(0x5000, Pte::new(0x1000, Pte::V | Pte::R), 3);
        m.bus.ram.write_u32(0x1100, 99).unwrap();
        m.bus.ram.write_u32(0x100, 0x0000_0013).unwrap();
        m.invalidate_decode_cache();
        m.regs.set(Reg::A0, 7);
        m.csr.mscratch = 0xDEAD;
        m.perf.cycles = 1234;
        let snap = m.snapshot();

        // Diverge everything the snapshot covers.
        m.translation = TranslationMode::Bare;
        let (_, _) = m.fetch_decoded(0x100).unwrap();
        m.translation = TranslationMode::SoftTlb;
        m.tlb.flush_all();
        m.bus.ram.write_u32(0x1100, 0).unwrap();
        m.store(0x100, StoreOp::Sw, 0xFFFF_FFFF).ok();
        m.regs.set(Reg::A0, 0);
        m.csr.mscratch = 0;
        m.perf.cycles = 0;
        m.asid = 9;
        m.halted = Some(HaltReason::Ebreak { code: 1 });

        m.restore(&snap);
        assert_eq!(m.regs.get(Reg::A0), 7);
        assert_eq!(m.csr.mscratch, 0xDEAD);
        assert_eq!(m.perf.cycles, 1234);
        assert_eq!(m.asid, 3);
        assert_eq!(m.halted, None);
        assert_eq!(m.translation, TranslationMode::SoftTlb);
        // TLB entry and RAM contents came back.
        assert_eq!(m.load(0x5100, LoadOp::Lw).unwrap().0, 99);
        // Decode-cache counters rewound with the rest.
        assert_eq!(m.decode_cache.hits(), snap.decode_cache.hits);
        assert_eq!(m.decode_cache.misses(), snap.decode_cache.misses);
    }
}
