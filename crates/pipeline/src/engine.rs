//! The common interface over both execution engines.
//!
//! [`Core`] (cycle-accurate 5-stage pipeline) and [`Interp`] (functional
//! reference) share [`MachineState`] and the [`Hooks`] extension
//! interface but historically exposed separate inherent APIs, forcing
//! every harness — tests, benches, the CLI — to duplicate its setup per
//! engine. [`Engine`] is the shared surface: construct, load a program,
//! run, inspect state and metrics. Code written against it (e.g.
//! `msim --engine pipeline|interp`, the root-test harness in
//! `tests/common/`) is engine-agnostic by construction.
//!
//! The trait is statically dispatched (generic `load_segments` makes it
//! non-object-safe), which is what the differential harnesses want:
//! both engines fully monomorphized, no dynamic overhead in either.

use crate::func::Interp;
use crate::hooks::Hooks;
use crate::pipeline::Core;
use crate::state::{CoreConfig, HaltReason, MachineSnapshot, MachineState};
use metal_trace::MetricsSnapshot;

/// A point-in-time copy of an engine: the machine state, the extension
/// hooks, and the program counter. Taken with [`Engine::snapshot`] and
/// applied with [`Engine::restore`].
///
/// Restoring redirects execution via [`Engine::set_pc`], which clears
/// any in-flight pipeline latches — so for the pipelined core a
/// snapshot is only faithful when taken at a quiescent point (after
/// reset, a halt, or `load_segments`, before `run`). The interpreter
/// has no in-flight state and can snapshot anywhere.
#[derive(Clone, Debug)]
pub struct EngineSnapshot<H: Hooks + Clone> {
    machine: MachineSnapshot,
    hooks: H,
    pc: u32,
}

/// A machine that can load and run guest programs: the pipelined core
/// or the reference interpreter.
pub trait Engine: Sized {
    /// The extension-hook type this engine was built with.
    type Hooks: Hooks;

    /// Builds an engine from a configuration and extension hooks.
    fn new(config: CoreConfig, hooks: Self::Hooks) -> Self;

    /// Short engine name for CLI flags and diagnostics (`"pipeline"`,
    /// `"interp"`).
    fn name() -> &'static str;

    /// Shared machine state (registers, memory system, counters).
    fn state(&self) -> &MachineState;

    /// Mutable machine state (device attachment, trace installation).
    fn state_mut(&mut self) -> &mut MachineState;

    /// The extension hooks.
    fn hooks(&self) -> &Self::Hooks;

    /// Mutable extension hooks.
    fn hooks_mut(&mut self) -> &mut Self::Hooks;

    /// The next fetch address.
    fn pc(&self) -> u32;

    /// Redirects execution to `pc`, clearing any in-flight work.
    fn set_pc(&mut self, pc: u32);

    /// Loads program segments into RAM and points execution at `entry`.
    /// Clears any previous halt and invalidates the decode cache.
    ///
    /// # Panics
    ///
    /// Panics if a segment does not fit in RAM.
    fn load_segments<'a>(
        &mut self,
        segments: impl IntoIterator<Item = (u32, &'a [u8])>,
        entry: u32,
    );

    /// Runs until the machine halts or `limit` units elapse (cycles for
    /// the pipelined core, steps for the interpreter). Returns the halt
    /// reason if the machine stopped.
    fn run(&mut self, limit: u64) -> Option<HaltReason>;

    /// Runs under a watchdog: like [`Engine::run`], but when the fuel
    /// budget expires with the guest still running the machine is
    /// halted with [`HaltReason::Timeout`] instead of being left
    /// resumable. Campaign harnesses (`mfuzz --replay`, `mfault`) use
    /// this so no single case can wedge a run on livelocked guest code.
    fn run_fuel(&mut self, fuel: u64) -> HaltReason {
        match self.run(fuel) {
            Some(halt) => halt,
            None => {
                self.state_mut().halted = Some(HaltReason::Timeout);
                HaltReason::Timeout
            }
        }
    }

    /// Runs until `n` more instructions retire or the machine halts.
    /// Both engines agree on the meaning (retired-instruction count),
    /// so a harness can position either engine at the same
    /// architectural boundary — e.g. to inject a fault mid-run.
    fn step_insns(&mut self, n: u64);

    /// True when the engine holds no in-flight microarchitectural
    /// state and a [`Engine::snapshot`] would be faithful. Always true
    /// for the interpreter; the pipelined core requires all
    /// inter-stage latches empty.
    fn is_quiescent(&self) -> bool {
        true
    }

    /// The unified metrics view of the machine state.
    fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.state().metrics_snapshot()
    }

    /// Captures machine state, hooks, and PC for a later
    /// [`Engine::restore`]. See [`EngineSnapshot`] for the
    /// quiescent-point caveat on the pipelined core.
    fn snapshot(&self) -> EngineSnapshot<Self::Hooks>
    where
        Self::Hooks: Clone,
    {
        EngineSnapshot {
            machine: self.state().snapshot(),
            hooks: self.hooks().clone(),
            pc: self.pc(),
        }
    }

    /// Rewinds the engine to a snapshot: machine state is restored
    /// in-place (no RAM reallocation), hooks are overwritten with the
    /// captured copy, and execution is redirected to the captured PC
    /// (clearing any in-flight work).
    fn restore(&mut self, snap: &EngineSnapshot<Self::Hooks>)
    where
        Self::Hooks: Clone,
    {
        self.state_mut().restore(&snap.machine);
        self.hooks_mut().clone_from(&snap.hooks);
        self.set_pc(snap.pc);
    }
}

impl<H: Hooks> Engine for Core<H> {
    type Hooks = H;

    fn new(config: CoreConfig, hooks: H) -> Core<H> {
        Core::new(config, hooks)
    }

    fn name() -> &'static str {
        "pipeline"
    }

    fn state(&self) -> &MachineState {
        &self.state
    }

    fn state_mut(&mut self) -> &mut MachineState {
        &mut self.state
    }

    fn hooks(&self) -> &H {
        &self.hooks
    }

    fn hooks_mut(&mut self) -> &mut H {
        &mut self.hooks
    }

    fn pc(&self) -> u32 {
        self.fetch_pc()
    }

    fn set_pc(&mut self, pc: u32) {
        Core::set_pc(self, pc);
    }

    fn load_segments<'a>(
        &mut self,
        segments: impl IntoIterator<Item = (u32, &'a [u8])>,
        entry: u32,
    ) {
        Core::load_segments(self, segments, entry);
    }

    fn run(&mut self, limit: u64) -> Option<HaltReason> {
        Core::run(self, limit)
    }

    fn step_insns(&mut self, n: u64) {
        Core::step_insns(self, n);
    }

    fn is_quiescent(&self) -> bool {
        Core::is_quiescent(self)
    }

    /// Pipelined-core snapshots are only faithful at retired-instruction
    /// boundaries: restore redirects fetch via `set_pc`, which discards
    /// in-flight latches, so a mid-instruction snapshot would silently
    /// lose work on restore. Enforce the precondition instead of
    /// documenting it.
    ///
    /// # Panics
    ///
    /// Panics if any inter-stage latch is occupied or a stage is mid-way
    /// through a multi-cycle access.
    fn snapshot(&self) -> EngineSnapshot<H>
    where
        H: Clone,
    {
        assert!(
            Core::is_quiescent(self),
            "pipeline snapshot requires a quiescent core (no in-flight instructions); \
             snapshot at reset, halt, or a step_insns boundary after the pipeline drains"
        );
        EngineSnapshot {
            machine: self.state.snapshot(),
            hooks: self.hooks.clone(),
            pc: self.fetch_pc(),
        }
    }
}

impl<H: Hooks> Engine for Interp<H> {
    type Hooks = H;

    fn new(config: CoreConfig, hooks: H) -> Interp<H> {
        Interp::new(config, hooks)
    }

    fn name() -> &'static str {
        "interp"
    }

    fn state(&self) -> &MachineState {
        &self.state
    }

    fn state_mut(&mut self) -> &mut MachineState {
        &mut self.state
    }

    fn hooks(&self) -> &H {
        &self.hooks
    }

    fn hooks_mut(&mut self) -> &mut H {
        &mut self.hooks
    }

    fn pc(&self) -> u32 {
        self.pc
    }

    fn set_pc(&mut self, pc: u32) {
        self.pc = pc;
    }

    fn load_segments<'a>(
        &mut self,
        segments: impl IntoIterator<Item = (u32, &'a [u8])>,
        entry: u32,
    ) {
        Interp::load_segments(self, segments, entry);
    }

    fn run(&mut self, limit: u64) -> Option<HaltReason> {
        Interp::run(self, limit)
    }

    fn step_insns(&mut self, n: u64) {
        Interp::step_insns(self, n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hooks::NoHooks;

    /// The same generic driver runs either engine — the deduplication
    /// the trait exists for.
    fn run_countdown<E: Engine<Hooks = NoHooks>>() -> (u32, Option<HaltReason>) {
        // li a0, 5; loop: addi a0, a0, -1; bnez a0, loop; ebreak
        let words: [u32; 4] = [0x0050_0513, 0xFFF5_0513, 0xFE05_1EE3, 0x0010_0073];
        let image: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        let mut engine = E::new(CoreConfig::default(), NoHooks);
        engine.load_segments([(0u32, image.as_slice())], 0);
        let halt = engine.run(10_000);
        (engine.state().regs.get(metal_isa::Reg::A0), halt)
    }

    #[test]
    fn both_engines_run_generically() {
        let (core_a0, core_halt) = run_countdown::<Core<NoHooks>>();
        let (interp_a0, interp_halt) = run_countdown::<Interp<NoHooks>>();
        assert_eq!(core_halt, Some(HaltReason::Ebreak { code: 0 }));
        assert_eq!(core_halt, interp_halt);
        assert_eq!(core_a0, 0);
        assert_eq!(core_a0, interp_a0);
        assert_eq!(Core::<NoHooks>::name(), "pipeline");
        assert_eq!(Interp::<NoHooks>::name(), "interp");
    }
}
