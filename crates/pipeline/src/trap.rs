//! Trap causes and trap values.

use core::fmt;

/// Why a trap was raised. Cause codes follow RISC-V numbering where one
/// exists; page-key violations use custom codes 24/25.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TrapCause {
    /// Instruction fetch not 4-byte aligned.
    InsnMisaligned,
    /// Instruction fetch hit unmapped physical memory or device space.
    InsnAccessFault,
    /// No legal decoding / privileged instruction in normal mode.
    IllegalInstruction,
    /// `ebreak`.
    Breakpoint,
    /// Misaligned data load.
    LoadMisaligned,
    /// Data load from unmapped physical memory.
    LoadAccessFault,
    /// Misaligned data store.
    StoreMisaligned,
    /// Data store to unmapped physical memory.
    StoreAccessFault,
    /// `ecall`.
    Ecall,
    /// Instruction-fetch translation failure (TLB miss or no-execute).
    InsnPageFault,
    /// Load translation failure (TLB miss or no-read permission).
    LoadPageFault,
    /// Store translation failure (TLB miss or no-write permission).
    StorePageFault,
    /// Load blocked by a page-key permission mask.
    LoadKeyViolation,
    /// Store blocked by a page-key permission mask.
    StoreKeyViolation,
    /// External interrupt on the given line.
    Interrupt(u8),
}

impl TrapCause {
    /// The numeric cause code (interrupts have bit 31 set).
    #[must_use]
    pub fn code(self) -> u32 {
        match self {
            TrapCause::InsnMisaligned => 0,
            TrapCause::InsnAccessFault => 1,
            TrapCause::IllegalInstruction => 2,
            TrapCause::Breakpoint => 3,
            TrapCause::LoadMisaligned => 4,
            TrapCause::LoadAccessFault => 5,
            TrapCause::StoreMisaligned => 6,
            TrapCause::StoreAccessFault => 7,
            TrapCause::Ecall => 8,
            TrapCause::InsnPageFault => 12,
            TrapCause::LoadPageFault => 13,
            TrapCause::StorePageFault => 15,
            TrapCause::LoadKeyViolation => 24,
            TrapCause::StoreKeyViolation => 25,
            TrapCause::Interrupt(line) => 0x8000_0000 | u32::from(line),
        }
    }

    /// Reconstructs a cause from its code.
    #[must_use]
    pub fn from_code(code: u32) -> Option<TrapCause> {
        if code & 0x8000_0000 != 0 {
            let line = code & 0x7FFF_FFFF;
            return if line < 32 {
                Some(TrapCause::Interrupt(line as u8))
            } else {
                None
            };
        }
        Some(match code {
            0 => TrapCause::InsnMisaligned,
            1 => TrapCause::InsnAccessFault,
            2 => TrapCause::IllegalInstruction,
            3 => TrapCause::Breakpoint,
            4 => TrapCause::LoadMisaligned,
            5 => TrapCause::LoadAccessFault,
            6 => TrapCause::StoreMisaligned,
            7 => TrapCause::StoreAccessFault,
            8 => TrapCause::Ecall,
            12 => TrapCause::InsnPageFault,
            13 => TrapCause::LoadPageFault,
            15 => TrapCause::StorePageFault,
            24 => TrapCause::LoadKeyViolation,
            25 => TrapCause::StoreKeyViolation,
            _ => return None,
        })
    }

    /// True for interrupt causes.
    #[must_use]
    pub fn is_interrupt(self) -> bool {
        matches!(self, TrapCause::Interrupt(_))
    }
}

impl fmt::Display for TrapCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrapCause::Interrupt(line) => write!(f, "interrupt(line {line})"),
            other => write!(f, "{other:?}"),
        }
    }
}

/// A trap: cause plus the trap value (faulting address or instruction
/// word, mirroring `mtval` semantics).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Trap {
    /// Why.
    pub cause: TrapCause,
    /// Faulting address or offending instruction word.
    pub tval: u32,
}

impl Trap {
    /// Shorthand constructor.
    #[must_use]
    pub fn new(cause: TrapCause, tval: u32) -> Trap {
        Trap { cause, tval }
    }

    /// An illegal-instruction trap carrying the offending word.
    #[must_use]
    pub fn illegal(word: u32) -> Trap {
        Trap::new(TrapCause::IllegalInstruction, word)
    }
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (tval = {:#010x})", self.cause, self.tval)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_roundtrip() {
        let causes = [
            TrapCause::InsnMisaligned,
            TrapCause::InsnAccessFault,
            TrapCause::IllegalInstruction,
            TrapCause::Breakpoint,
            TrapCause::LoadMisaligned,
            TrapCause::LoadAccessFault,
            TrapCause::StoreMisaligned,
            TrapCause::StoreAccessFault,
            TrapCause::Ecall,
            TrapCause::InsnPageFault,
            TrapCause::LoadPageFault,
            TrapCause::StorePageFault,
            TrapCause::LoadKeyViolation,
            TrapCause::StoreKeyViolation,
            TrapCause::Interrupt(0),
            TrapCause::Interrupt(31),
        ];
        for c in causes {
            assert_eq!(TrapCause::from_code(c.code()), Some(c), "{c}");
        }
        assert_eq!(TrapCause::from_code(9), None);
        assert_eq!(TrapCause::from_code(0x8000_0020), None);
    }

    #[test]
    fn interrupt_bit() {
        assert!(TrapCause::Interrupt(3).is_interrupt());
        assert!(!TrapCause::Ecall.is_interrupt());
        assert_eq!(TrapCause::Interrupt(3).code(), 0x8000_0003);
    }
}
