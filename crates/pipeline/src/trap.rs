//! Trap causes and trap values.

use core::fmt;
use metal_trace::FaultSite;

/// Why a trap was raised. Cause codes follow RISC-V numbering where one
/// exists; page-key violations use custom codes 24/25.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TrapCause {
    /// Instruction fetch not 4-byte aligned.
    InsnMisaligned,
    /// Instruction fetch hit unmapped physical memory or device space.
    InsnAccessFault,
    /// No legal decoding / privileged instruction in normal mode.
    IllegalInstruction,
    /// `ebreak`.
    Breakpoint,
    /// Misaligned data load.
    LoadMisaligned,
    /// Data load from unmapped physical memory.
    LoadAccessFault,
    /// Misaligned data store.
    StoreMisaligned,
    /// Data store to unmapped physical memory.
    StoreAccessFault,
    /// `ecall`.
    Ecall,
    /// Instruction-fetch translation failure (TLB miss or no-execute).
    InsnPageFault,
    /// Load translation failure (TLB miss or no-read permission).
    LoadPageFault,
    /// Store translation failure (TLB miss or no-write permission).
    StorePageFault,
    /// Load blocked by a page-key permission mask.
    LoadKeyViolation,
    /// Store blocked by a page-key permission mask.
    StoreKeyViolation,
    /// Parity/ECC detection hardware found a corrupted word. The site
    /// and syndrome are packed into the cause code so a recovery
    /// mroutine can recover them from `mcause` alone.
    MachineCheck {
        /// The structure where the error was detected.
        site: FaultSite,
        /// ECC syndrome (0 for parity; bit 7 set marks uncorrectable).
        syndrome: u8,
    },
    /// External interrupt on the given line.
    Interrupt(u8),
}

/// Base cause code shared by every machine check: `code & 31 == 16`
/// regardless of site/syndrome, so one [`DelegationMap`] slot covers
/// them all.
///
/// [`DelegationMap`]: https://docs.rs/metal-core
pub const MACHINE_CHECK_BASE: u32 = 16;

impl TrapCause {
    /// The numeric cause code (interrupts have bit 31 set).
    #[must_use]
    pub fn code(self) -> u32 {
        match self {
            TrapCause::InsnMisaligned => 0,
            TrapCause::InsnAccessFault => 1,
            TrapCause::IllegalInstruction => 2,
            TrapCause::Breakpoint => 3,
            TrapCause::LoadMisaligned => 4,
            TrapCause::LoadAccessFault => 5,
            TrapCause::StoreMisaligned => 6,
            TrapCause::StoreAccessFault => 7,
            TrapCause::Ecall => 8,
            TrapCause::InsnPageFault => 12,
            TrapCause::LoadPageFault => 13,
            TrapCause::StorePageFault => 15,
            TrapCause::LoadKeyViolation => 24,
            TrapCause::StoreKeyViolation => 25,
            TrapCause::MachineCheck { site, syndrome } => {
                MACHINE_CHECK_BASE | (site.code() << 5) | (u32::from(syndrome) << 8)
            }
            TrapCause::Interrupt(line) => 0x8000_0000 | u32::from(line),
        }
    }

    /// Reconstructs a cause from its code.
    #[must_use]
    pub fn from_code(code: u32) -> Option<TrapCause> {
        if code & 0x8000_0000 != 0 {
            let line = code & 0x7FFF_FFFF;
            return if line < 32 {
                Some(TrapCause::Interrupt(line as u8))
            } else {
                None
            };
        }
        if code & 31 == MACHINE_CHECK_BASE {
            if code >> 16 != 0 {
                return None;
            }
            let site = FaultSite::from_code((code >> 5) & 7)?;
            let syndrome = (code >> 8) as u8;
            return Some(TrapCause::MachineCheck { site, syndrome });
        }
        Some(match code {
            0 => TrapCause::InsnMisaligned,
            1 => TrapCause::InsnAccessFault,
            2 => TrapCause::IllegalInstruction,
            3 => TrapCause::Breakpoint,
            4 => TrapCause::LoadMisaligned,
            5 => TrapCause::LoadAccessFault,
            6 => TrapCause::StoreMisaligned,
            7 => TrapCause::StoreAccessFault,
            8 => TrapCause::Ecall,
            12 => TrapCause::InsnPageFault,
            13 => TrapCause::LoadPageFault,
            15 => TrapCause::StorePageFault,
            24 => TrapCause::LoadKeyViolation,
            25 => TrapCause::StoreKeyViolation,
            _ => return None,
        })
    }

    /// True for interrupt causes.
    #[must_use]
    pub fn is_interrupt(self) -> bool {
        matches!(self, TrapCause::Interrupt(_))
    }
}

impl fmt::Display for TrapCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrapCause::Interrupt(line) => write!(f, "interrupt(line {line})"),
            TrapCause::MachineCheck { site, syndrome } => {
                write!(
                    f,
                    "machine-check({}, syndrome {syndrome:#04x})",
                    site.label()
                )
            }
            other => write!(f, "{other:?}"),
        }
    }
}

/// A trap: cause plus the trap value (faulting address or instruction
/// word, mirroring `mtval` semantics).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Trap {
    /// Why.
    pub cause: TrapCause,
    /// Faulting address or offending instruction word.
    pub tval: u32,
}

impl Trap {
    /// Shorthand constructor.
    #[must_use]
    pub fn new(cause: TrapCause, tval: u32) -> Trap {
        Trap { cause, tval }
    }

    /// An illegal-instruction trap carrying the offending word.
    #[must_use]
    pub fn illegal(word: u32) -> Trap {
        Trap::new(TrapCause::IllegalInstruction, word)
    }
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (tval = {:#010x})", self.cause, self.tval)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_roundtrip() {
        let causes = [
            TrapCause::InsnMisaligned,
            TrapCause::InsnAccessFault,
            TrapCause::IllegalInstruction,
            TrapCause::Breakpoint,
            TrapCause::LoadMisaligned,
            TrapCause::LoadAccessFault,
            TrapCause::StoreMisaligned,
            TrapCause::StoreAccessFault,
            TrapCause::Ecall,
            TrapCause::InsnPageFault,
            TrapCause::LoadPageFault,
            TrapCause::StorePageFault,
            TrapCause::LoadKeyViolation,
            TrapCause::StoreKeyViolation,
            TrapCause::Interrupt(0),
            TrapCause::Interrupt(31),
        ];
        for c in causes {
            assert_eq!(TrapCause::from_code(c.code()), Some(c), "{c}");
        }
        assert_eq!(TrapCause::from_code(9), None);
        assert_eq!(TrapCause::from_code(0x8000_0020), None);
    }

    #[test]
    fn machine_check_roundtrip() {
        for site in FaultSite::ALL {
            for syndrome in [0u8, 1, 0x3F, 0x80, 0xFF] {
                let c = TrapCause::MachineCheck { site, syndrome };
                // Every machine check lands in the same 5-bit delegation
                // slot, and the packed code stays inside 16 bits so the
                // EntryCause encoding (`code << 8`) cannot truncate it.
                assert_eq!(c.code() & 31, MACHINE_CHECK_BASE);
                assert!(c.code() >> 16 == 0);
                assert!(!c.is_interrupt());
                assert_eq!(TrapCause::from_code(c.code()), Some(c), "{c}");
            }
        }
        // Reserved site code 7 does not decode.
        assert_eq!(TrapCause::from_code(MACHINE_CHECK_BASE | (7 << 5)), None);
        // Bits above the 16-bit pack do not decode.
        assert_eq!(TrapCause::from_code(MACHINE_CHECK_BASE | (1 << 16)), None);
    }

    #[test]
    fn interrupt_bit() {
        assert!(TrapCause::Interrupt(3).is_interrupt());
        assert!(!TrapCause::Ecall.is_interrupt());
        assert_eq!(TrapCause::Interrupt(3).code(), 0x8000_0003);
    }
}
