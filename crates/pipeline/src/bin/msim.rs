//! `msim` — run a flat binary image on either execution engine.
//!
//! ```text
//! msim image.bin [--engine pipeline|interp] [--base 0xADDR] [--entry 0xADDR]
//!      [--max-cycles N] [--perf] [--trace out.json] [--metrics out.json]
//! ```
//!
//! Runs the baseline (non-Metal) machine with a console at 0xF0000000
//! and a timer at 0xF0000100. Exits with the guest's `ebreak` code.
//!
//! `--engine` selects the cycle-accurate pipelined core (the default)
//! or the functional reference interpreter; both go through the same
//! [`Engine`] trait, so everything below the flag is engine-agnostic.
//!
//! `--trace` records the run as a Chrome trace-event file (open it in
//! `chrome://tracing` or Perfetto); `--metrics` writes the unified
//! metrics snapshot (cycles, instret, stall breakdown, cache/TLB hit
//! rates, decode-cache counters) as JSON. Neither flag perturbs
//! architectural state or cycle counts.

use metal_mem::devices::{map, Console, Timer};
use metal_pipeline::{Core, CoreConfig, Engine, HaltReason, Interp, NoHooks, TracingHooks};
use metal_trace::{TraceConfig, TraceHandle};
use metal_util::cli::{fail, parse_num, usage};
use std::process::ExitCode;

const USAGE: &str = "msim image.bin [--engine pipeline|interp] [--base 0xADDR] [--entry 0xADDR] [--max-cycles N] [--perf] [--trace out.json] [--metrics out.json]";

struct Opts {
    image: Vec<u8>,
    base: u32,
    entry: u32,
    max_cycles: u64,
    perf: bool,
    trace_path: Option<String>,
    metrics_path: Option<String>,
}

fn main() -> ExitCode {
    let mut input: Option<String> = None;
    let mut engine_name = "pipeline".to_owned();
    let mut base = 0u32;
    let mut entry: Option<u32> = None;
    let mut max_cycles = 100_000_000u64;
    let mut perf = false;
    let mut trace_path: Option<String> = None;
    let mut metrics_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--engine" => match args.next() {
                Some(name) => engine_name = name,
                None => return usage("msim", USAGE, "missing argument to --engine"),
            },
            "--base" => match args.next().and_then(|v| parse_num(&v)) {
                Some(v) => base = v as u32,
                None => return usage("msim", USAGE, "bad --base"),
            },
            "--entry" => match args.next().and_then(|v| parse_num(&v)) {
                Some(v) => entry = Some(v as u32),
                None => return usage("msim", USAGE, "bad --entry"),
            },
            "--max-cycles" => match args.next().and_then(|v| parse_num(&v)) {
                Some(v) => max_cycles = v,
                None => return usage("msim", USAGE, "bad --max-cycles"),
            },
            "--perf" => perf = true,
            "--trace" => match args.next() {
                Some(path) => trace_path = Some(path),
                None => return usage("msim", USAGE, "missing argument to --trace"),
            },
            "--metrics" => match args.next() {
                Some(path) => metrics_path = Some(path),
                None => return usage("msim", USAGE, "missing argument to --metrics"),
            },
            "-h" | "--help" => return usage("msim", USAGE, ""),
            other if input.is_none() && !other.starts_with('-') => {
                input = Some(other.to_owned());
            }
            other => return usage("msim", USAGE, &format!("unknown argument {other:?}")),
        }
    }
    let Some(input) = input else {
        return usage("msim", USAGE, "no input image");
    };
    let image = match std::fs::read(&input) {
        Ok(image) => image,
        Err(e) => return fail("msim", &format!("cannot read {input}: {e}")),
    };
    // `load_segments` treats an out-of-RAM segment as a programming
    // error and panics; turn a bad --base into a proper CLI error.
    let ram = CoreConfig::default().ram_bytes;
    if (base as usize).saturating_add(image.len()) > ram {
        return fail(
            "msim",
            &format!(
                "image of {} bytes at --base {base:#x} does not fit in {ram}-byte RAM",
                image.len()
            ),
        );
    }
    let opts = Opts {
        image,
        base,
        entry: entry.unwrap_or(base),
        max_cycles,
        perf,
        trace_path,
        metrics_path,
    };
    match engine_name.as_str() {
        "pipeline" => run_sim::<Core<TracingHooks<NoHooks>>>(&opts),
        "interp" => run_sim::<Interp<TracingHooks<NoHooks>>>(&opts),
        other => usage("msim", USAGE, &format!("unknown engine {other:?}")),
    }
}

fn run_sim<E: Engine<Hooks = TracingHooks<NoHooks>>>(opts: &Opts) -> ExitCode {
    let mut machine = E::new(CoreConfig::default(), TracingHooks::new(NoHooks));
    if opts.trace_path.is_some() {
        machine
            .state_mut()
            .set_trace(TraceHandle::enabled(TraceConfig::default()));
    }
    let (console, out) = Console::new();
    machine
        .state_mut()
        .bus
        .attach(map::CONSOLE_BASE, map::WINDOW_LEN, Box::new(console));
    machine
        .state_mut()
        .bus
        .attach(map::TIMER_BASE, map::WINDOW_LEN, Box::new(Timer::new()));
    machine.load_segments([(opts.base, opts.image.as_slice())], opts.entry);
    let halt = machine.run(opts.max_cycles);
    let bytes = out.lock().clone();
    if !bytes.is_empty() {
        print!("{}", String::from_utf8_lossy(&bytes));
    }
    if opts.perf {
        let state = machine.state();
        let p = &state.perf;
        eprintln!(
            "engine {} | cycles {} instret {} CPI {:.2} | stalls: fetch {} mem {} loaduse {} flush {}",
            E::name(),
            p.cycles,
            p.instret,
            p.cycles as f64 / p.instret.max(1) as f64,
            p.fetch_stall,
            p.mem_stall,
            p.loaduse_stall,
            p.flush_cycles
        );
        let pct = |hits: u64, total: u64| {
            if total == 0 {
                100.0
            } else {
                hits as f64 / total as f64 * 100.0
            }
        };
        let icache = &state.icache;
        let dcache = &state.dcache;
        let tlb = &state.tlb;
        eprintln!(
            "icache {}/{} hits ({:.1}%) | dcache {}/{} hits ({:.1}%) | tlb {}/{} hits ({:.1}%), {} hw refills",
            icache.accesses - icache.misses,
            icache.accesses,
            icache.hit_rate() * 100.0,
            dcache.accesses - dcache.misses,
            dcache.accesses,
            dcache.hit_rate() * 100.0,
            tlb.hits,
            tlb.lookups,
            pct(tlb.hits, tlb.lookups),
            p.hw_refills,
        );
        let dc = &state.decode_cache;
        eprintln!(
            "decode cache {} | {}/{} hits ({:.1}%), {} invalidations",
            if dc.enabled() { "on" } else { "off" },
            dc.hits(),
            dc.hits() + dc.misses(),
            pct(dc.hits(), dc.hits() + dc.misses()),
            dc.invalidations(),
        );
    }
    if let Some(path) = &opts.trace_path {
        if let Err(e) = std::fs::write(path, machine.state().trace.export_chrome()) {
            eprintln!("msim: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("msim: wrote trace to {path}");
    }
    if let Some(path) = &opts.metrics_path {
        let snapshot = machine.metrics_snapshot();
        if let Err(e) = std::fs::write(path, snapshot.to_json_string()) {
            eprintln!("msim: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("msim: wrote metrics to {path}");
    }
    match halt {
        Some(HaltReason::Ebreak { code }) => {
            eprintln!("msim: ebreak with code {code}");
            ExitCode::from((code & 0xFF) as u8)
        }
        Some(HaltReason::Fatal(msg)) => {
            eprintln!("msim: fatal: {msg}");
            ExitCode::FAILURE
        }
        Some(HaltReason::Timeout) | None => {
            eprintln!("msim: cycle limit ({}) reached", opts.max_cycles);
            ExitCode::FAILURE
        }
    }
}
