//! `msim` — run a flat binary image on the pipelined core.
//!
//! ```text
//! msim image.bin [--base 0xADDR] [--entry 0xADDR] [--max-cycles N] [--perf]
//! ```
//!
//! Runs the baseline (non-Metal) core with a console at 0xF0000000 and
//! a timer at 0xF0000100. Exits with the guest's `ebreak` code.

use metal_mem::devices::{map, Console, Timer};
use metal_pipeline::{Core, CoreConfig, HaltReason, NoHooks};
use std::process::ExitCode;

fn parse_num(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn main() -> ExitCode {
    let mut input: Option<String> = None;
    let mut base = 0u32;
    let mut entry: Option<u32> = None;
    let mut max_cycles = 100_000_000u64;
    let mut perf = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--base" => match args.next().and_then(|v| parse_num(&v)) {
                Some(v) => base = v as u32,
                None => return usage("bad --base"),
            },
            "--entry" => match args.next().and_then(|v| parse_num(&v)) {
                Some(v) => entry = Some(v as u32),
                None => return usage("bad --entry"),
            },
            "--max-cycles" => match args.next().and_then(|v| parse_num(&v)) {
                Some(v) => max_cycles = v,
                None => return usage("bad --max-cycles"),
            },
            "--perf" => perf = true,
            "-h" | "--help" => return usage(""),
            other if input.is_none() && !other.starts_with('-') => {
                input = Some(other.to_owned());
            }
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }
    let Some(input) = input else {
        return usage("no input image");
    };
    let image = match std::fs::read(&input) {
        Ok(image) => image,
        Err(e) => {
            eprintln!("msim: cannot read {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut core = Core::new(CoreConfig::default(), NoHooks);
    let (console, out) = Console::new();
    core.state
        .bus
        .attach(map::CONSOLE_BASE, map::WINDOW_LEN, Box::new(console));
    core.state
        .bus
        .attach(map::TIMER_BASE, map::WINDOW_LEN, Box::new(Timer::new()));
    core.load_segments([(base, image.as_slice())], entry.unwrap_or(base));
    let halt = core.run(max_cycles);
    let bytes = out.lock().clone();
    if !bytes.is_empty() {
        print!("{}", String::from_utf8_lossy(&bytes));
    }
    if perf {
        let p = &core.state.perf;
        eprintln!(
            "cycles {} instret {} CPI {:.2} | stalls: fetch {} mem {} loaduse {} flush {}",
            p.cycles,
            p.instret,
            p.cycles as f64 / p.instret.max(1) as f64,
            p.fetch_stall,
            p.mem_stall,
            p.loaduse_stall,
            p.flush_cycles
        );
    }
    match halt {
        Some(HaltReason::Ebreak { code }) => {
            eprintln!("msim: ebreak with code {code}");
            ExitCode::from((code & 0xFF) as u8)
        }
        Some(HaltReason::Fatal(msg)) => {
            eprintln!("msim: fatal: {msg}");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("msim: cycle limit ({max_cycles}) reached");
            ExitCode::FAILURE
        }
    }
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("msim: {err}");
    }
    eprintln!("usage: msim image.bin [--base 0xADDR] [--entry 0xADDR] [--max-cycles N] [--perf]");
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
