//! Differential testing: the pipelined core and the functional reference
//! interpreter must produce identical architectural state on randomly
//! generated programs.
//!
//! The generator produces self-contained programs: ALU ops over all
//! registers, loads/stores confined to an aligned data window, short
//! forward branches, and a terminating `ebreak`. Any divergence in
//! registers, data memory, or retirement count is a pipeline bug
//! (forwarding, hazard, flush, or trap-precision).

use metal_isa::encode;
use metal_isa::insn::{AluOp, Cond, Insn, LoadOp, MulOp, StoreOp};
use metal_isa::reg::Reg;
use metal_mem::CacheConfig;
use metal_pipeline::{Core, CoreConfig, Interp, NoHooks};
use metal_util::Rng;

const DATA_BASE: u32 = 0x8000;
const DATA_WORDS: u32 = 64;

fn rand_reg(rng: &mut Rng) -> Reg {
    Reg::new(rng.range_u32(0, 32) as u8).unwrap()
}

/// Destinations exclude s0, the reserved data base pointer.
fn rand_dest(rng: &mut Rng) -> Reg {
    loop {
        let r = rand_reg(rng);
        if r != Reg::S0 {
            return r;
        }
    }
}

fn rand_alu_op(rng: &mut Rng) -> AluOp {
    *rng.pick(&[
        AluOp::Add,
        AluOp::Sub,
        AluOp::Sll,
        AluOp::Slt,
        AluOp::Sltu,
        AluOp::Xor,
        AluOp::Srl,
        AluOp::Sra,
        AluOp::Or,
        AluOp::And,
    ])
}

fn rand_cond(rng: &mut Rng) -> Cond {
    *rng.pick(&[Cond::Eq, Cond::Ne, Cond::Lt, Cond::Ge, Cond::Ltu, Cond::Geu])
}

/// One random instruction. `index`/`len` allow forward-only branches
/// that stay inside the program.
fn rand_insn(rng: &mut Rng, index: usize, len: usize) -> Insn {
    // A branch at body slot `index` may skip at most the remaining body
    // instructions, landing no further than the terminating ebreak
    // (skip = 0 targets the next instruction).
    let max_skip = ((len - index - 1).min(6)) as i32;
    // Weights mirror the original distribution: 6 ALU, 6 ALU-imm,
    // 2 mul/div, 2 lui, 3 load, 3 store, 2 branch (total 24).
    match rng.range_u32(0, 24) {
        0..=5 => Insn::Alu {
            op: rand_alu_op(rng),
            rd: rand_dest(rng),
            rs1: rand_reg(rng),
            rs2: rand_reg(rng),
        },
        6..=11 => {
            let op = loop {
                let op = rand_alu_op(rng);
                if op != AluOp::Sub {
                    break op; // no subi encoding
                }
            };
            let imm = rng.range_i32(-2048, 2048);
            let imm = match op {
                AluOp::Sll | AluOp::Srl | AluOp::Sra => imm.rem_euclid(32),
                _ => imm,
            };
            Insn::AluImm {
                op,
                rd: rand_dest(rng),
                rs1: rand_reg(rng),
                imm,
            }
        }
        12..=13 => Insn::MulDiv {
            op: MulOp::from_funct3(rng.range_u32(0, 8)).unwrap(),
            rd: rand_dest(rng),
            rs1: rand_reg(rng),
            rs2: rand_reg(rng),
        },
        14..=15 => Insn::Lui {
            rd: rand_dest(rng),
            imm20: rng.range_u32(0, 1 << 20),
        },
        16..=18 => Insn::Load {
            op: *rng.pick(&[LoadOp::Lb, LoadOp::Lh, LoadOp::Lw, LoadOp::Lbu, LoadOp::Lhu]),
            rd: rand_dest(rng),
            rs1: Reg::S0,
            offset: (rng.range_u32(0, DATA_WORDS) * 4) as i32,
        },
        19..=21 => Insn::Store {
            op: *rng.pick(&[StoreOp::Sb, StoreOp::Sh, StoreOp::Sw]),
            rs2: rand_reg(rng),
            rs1: Reg::S0,
            offset: (rng.range_u32(0, DATA_WORDS) * 4) as i32,
        },
        _ => Insn::Branch {
            cond: rand_cond(rng),
            rs1: rand_reg(rng),
            rs2: rand_reg(rng),
            offset: (rng.range_i32(0, max_skip + 1) + 1) * 4,
        },
    }
}

/// A whole program: seeded registers, N body instructions, `ebreak`.
fn rand_program(rng: &mut Rng) -> (Vec<u32>, Vec<Insn>) {
    let seeds = (0..8).map(|_| rng.next_u32()).collect();
    let len = rng.range_usize(4, 60);
    let body = (0..len).map(|i| rand_insn(rng, i, len)).collect();
    (seeds, body)
}

fn build_image(seeds: &[u32], body: &[Insn]) -> Vec<u8> {
    let mut words: Vec<u32> = Vec::new();
    // Seed s0 with the data base: lui s0, DATA_BASE >> 12.
    words.push(encode(&Insn::Lui {
        rd: Reg::S0,
        imm20: DATA_BASE >> 12,
    }));
    // Seed a few registers with arbitrary values (two insns each).
    for (i, &v) in seeds.iter().enumerate() {
        let rd = Reg::new(10 + i as u8).unwrap(); // a0..a7
        let hi = (v.wrapping_add(0x800)) >> 12;
        let lo = (v & 0xFFF) as i32;
        let lo = (lo << 20) >> 20;
        words.push(encode(&Insn::Lui {
            rd,
            imm20: hi & 0xF_FFFF,
        }));
        words.push(encode(&Insn::AluImm {
            op: AluOp::Add,
            rd,
            rs1: rd,
            imm: lo,
        }));
    }
    for insn in body {
        words.push(encode(insn));
    }
    words.push(encode(&Insn::Ebreak));
    words.iter().flat_map(|w| w.to_le_bytes()).collect()
}

fn config() -> CoreConfig {
    CoreConfig {
        icache: CacheConfig {
            size_bytes: 1024,
            line_bytes: 16,
            hit_latency: 1,
            miss_penalty: 7,
        },
        dcache: CacheConfig {
            size_bytes: 512,
            line_bytes: 16,
            hit_latency: 1,
            miss_penalty: 11,
        },
        ram_bytes: 1 << 17,
        ..CoreConfig::default()
    }
}

#[test]
fn pipeline_matches_reference() {
    let mut rng = Rng::new(0xd1ff_0001);
    for case in 0..256 {
        let (seeds, body) = rand_program(&mut rng);
        let image = build_image(&seeds, &body);

        let mut core = Core::new(config(), NoHooks);
        core.load_segments([(0u32, image.as_slice())], 0);
        let core_halt = core.run(500_000);

        let mut interp = Interp::new(config(), NoHooks);
        interp.load_segments([(0u32, image.as_slice())], 0);
        let interp_halt = interp.run(250_000);

        assert_eq!(&core_halt, &interp_halt, "case {case}: halt reasons differ");
        assert!(core_halt.is_some(), "case {case}: program must halt");
        assert_eq!(
            core.state.regs.snapshot(),
            interp.state.regs.snapshot(),
            "case {case}: register files diverged"
        );
        assert_eq!(
            core.state.perf.instret, interp.state.perf.instret,
            "case {case}: retirement counts diverged"
        );
        let core_data = core
            .state
            .bus
            .ram
            .dump(DATA_BASE, DATA_WORDS * 4)
            .unwrap()
            .to_vec();
        let interp_data = interp
            .state
            .bus
            .ram
            .dump(DATA_BASE, DATA_WORDS * 4)
            .unwrap()
            .to_vec();
        assert_eq!(core_data, interp_data, "case {case}: data memory diverged");
    }
}
