//! Differential testing: the pipelined core and the functional reference
//! interpreter must produce identical architectural state on randomly
//! generated programs.
//!
//! The generator produces self-contained programs: ALU ops over all
//! registers, loads/stores confined to an aligned data window, short
//! forward branches, and a terminating `ebreak`. Any divergence in
//! registers, data memory, or retirement count is a pipeline bug
//! (forwarding, hazard, flush, or trap-precision).

use metal_isa::encode;
use metal_isa::insn::{AluOp, Cond, Insn, LoadOp, MulOp, StoreOp};
use metal_isa::reg::Reg;
use metal_mem::CacheConfig;
use metal_pipeline::{Core, CoreConfig, Interp, NoHooks};
use proptest::prelude::*;

const DATA_BASE: u32 = 0x8000;
const DATA_WORDS: u32 = 64;

fn arb_reg() -> impl Strategy<Value = Reg> {
    // Exclude s0 (data base pointer) from destinations via a separate
    // strategy; sources may use anything.
    (0u8..32).prop_map(|n| Reg::new(n).unwrap())
}

fn arb_dest() -> impl Strategy<Value = Reg> {
    arb_reg().prop_filter("s0 is the reserved data pointer", |r| *r != Reg::S0)
}

/// One random instruction. `index`/`len` allow forward-only branches that
/// stay inside the program.
fn arb_insn(index: usize, len: usize) -> impl Strategy<Value = Insn> {
    // A branch at body slot `index` may skip at most the remaining body
    // instructions, landing no further than the terminating ebreak
    // (skip = 0 targets the next instruction).
    let max_skip = ((len - index - 1).min(6)) as i32;
    prop_oneof![
        6 => (arb_alu_op(), arb_dest(), arb_reg(), arb_reg())
            .prop_map(|(op, rd, rs1, rs2)| Insn::Alu { op, rd, rs1, rs2 }),
        6 => (arb_alu_imm_op(), arb_dest(), arb_reg(), -2048i32..2048).prop_map(
            |(op, rd, rs1, imm)| {
                let imm = match op {
                    AluOp::Sll | AluOp::Srl | AluOp::Sra => imm.rem_euclid(32),
                    _ => imm,
                };
                Insn::AluImm { op, rd, rs1, imm }
            }
        ),
        2 => (arb_mul_op(), arb_dest(), arb_reg(), arb_reg())
            .prop_map(|(op, rd, rs1, rs2)| Insn::MulDiv { op, rd, rs1, rs2 }),
        2 => (arb_dest(), 0u32..(1 << 20)).prop_map(|(rd, imm20)| Insn::Lui { rd, imm20 }),
        3 => (arb_load_op(), arb_dest(), 0u32..DATA_WORDS).prop_map(|(op, rd, slot)| {
            Insn::Load {
                op,
                rd,
                rs1: Reg::S0,
                offset: (slot * 4) as i32,
            }
        }),
        3 => (arb_store_op(), arb_reg(), 0u32..DATA_WORDS).prop_map(|(op, rs2, slot)| {
            Insn::Store {
                op,
                rs2,
                rs1: Reg::S0,
                offset: (slot * 4) as i32,
            }
        }),
        2 => (arb_cond(), arb_reg(), arb_reg(), 0i32..=max_skip).prop_map(
            move |(cond, rs1, rs2, skip)| Insn::Branch {
                cond,
                rs1,
                rs2,
                offset: (skip + 1) * 4,
            }
        ),
    ]
}

fn arb_alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Sll),
        Just(AluOp::Slt),
        Just(AluOp::Sltu),
        Just(AluOp::Xor),
        Just(AluOp::Srl),
        Just(AluOp::Sra),
        Just(AluOp::Or),
        Just(AluOp::And),
    ]
}

fn arb_alu_imm_op() -> impl Strategy<Value = AluOp> {
    arb_alu_op().prop_filter("no subi", |op| *op != AluOp::Sub)
}

fn arb_mul_op() -> impl Strategy<Value = MulOp> {
    (0u32..8).prop_map(|f| MulOp::from_funct3(f).unwrap())
}

fn arb_load_op() -> impl Strategy<Value = LoadOp> {
    prop_oneof![
        Just(LoadOp::Lb),
        Just(LoadOp::Lh),
        Just(LoadOp::Lw),
        Just(LoadOp::Lbu),
        Just(LoadOp::Lhu),
    ]
}

fn arb_store_op() -> impl Strategy<Value = StoreOp> {
    prop_oneof![Just(StoreOp::Sb), Just(StoreOp::Sh), Just(StoreOp::Sw)]
}

fn arb_cond() -> impl Strategy<Value = Cond> {
    prop_oneof![
        Just(Cond::Eq),
        Just(Cond::Ne),
        Just(Cond::Lt),
        Just(Cond::Ge),
        Just(Cond::Ltu),
        Just(Cond::Geu),
    ]
}

/// A whole program: seeded registers, N body instructions, `ebreak`.
fn arb_program() -> impl Strategy<Value = (Vec<u32>, Vec<Insn>)> {
    (
        proptest::collection::vec(any::<u32>(), 8),
        (4usize..60).prop_flat_map(|len| {
            let mut insns = Vec::with_capacity(len);
            for i in 0..len {
                insns.push(arb_insn(i, len));
            }
            insns
        }),
    )
}

fn build_image(seeds: &[u32], body: &[Insn]) -> Vec<u8> {
    let mut words: Vec<u32> = Vec::new();
    // Seed s0 with the data base: lui s0, DATA_BASE >> 12.
    words.push(encode(&Insn::Lui {
        rd: Reg::S0,
        imm20: DATA_BASE >> 12,
    }));
    // Seed a few registers with arbitrary values (two insns each).
    for (i, &v) in seeds.iter().enumerate() {
        let rd = Reg::new(10 + i as u8).unwrap(); // a0..a7
        let hi = (v.wrapping_add(0x800)) >> 12;
        let lo = (v & 0xFFF) as i32;
        let lo = (lo << 20) >> 20;
        words.push(encode(&Insn::Lui {
            rd,
            imm20: hi & 0xF_FFFF,
        }));
        words.push(encode(&Insn::AluImm {
            op: AluOp::Add,
            rd,
            rs1: rd,
            imm: lo,
        }));
    }
    for insn in body {
        words.push(encode(insn));
    }
    words.push(encode(&Insn::Ebreak));
    words.iter().flat_map(|w| w.to_le_bytes()).collect()
}

fn config() -> CoreConfig {
    CoreConfig {
        icache: CacheConfig {
            size_bytes: 1024,
            line_bytes: 16,
            hit_latency: 1,
            miss_penalty: 7,
        },
        dcache: CacheConfig {
            size_bytes: 512,
            line_bytes: 16,
            hit_latency: 1,
            miss_penalty: 11,
        },
        ram_bytes: 1 << 17,
        ..CoreConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn pipeline_matches_reference((seeds, body) in arb_program()) {
        let image = build_image(&seeds, &body);

        let mut core = Core::new(config(), NoHooks);
        core.load_segments([(0u32, image.as_slice())], 0);
        let core_halt = core.run(500_000);

        let mut interp = Interp::new(config(), NoHooks);
        interp.load_segments([(0u32, image.as_slice())], 0);
        let interp_halt = interp.run(250_000);

        prop_assert_eq!(&core_halt, &interp_halt, "halt reasons differ");
        prop_assert!(core_halt.is_some(), "program must halt");
        prop_assert_eq!(
            core.state.regs.snapshot(),
            interp.state.regs.snapshot(),
            "register files diverged"
        );
        prop_assert_eq!(
            core.state.perf.instret,
            interp.state.perf.instret,
            "retirement counts diverged"
        );
        let core_data = core
            .state
            .bus
            .ram
            .dump(DATA_BASE, DATA_WORDS * 4)
            .unwrap()
            .to_vec();
        let interp_data = interp
            .state
            .bus
            .ram
            .dump(DATA_BASE, DATA_WORDS * 4)
            .unwrap()
            .to_vec();
        prop_assert_eq!(core_data, interp_data, "data memory diverged");
    }
}
