//! Pipeline corner cases: interactions between hazards, variable
//! latency, traps, and interrupts.

use metal_asm::assemble_at;
use metal_isa::reg::Reg;
use metal_mem::devices::{map, Timer};
use metal_mem::CacheConfig;
use metal_pipeline::{Core, CoreConfig, HaltReason, NoHooks, TrapCause};

fn perfect() -> CacheConfig {
    CacheConfig {
        size_bytes: 64 * 1024,
        line_bytes: 32,
        hit_latency: 1,
        miss_penalty: 0,
    }
}

fn core() -> Core<NoHooks> {
    Core::new(
        CoreConfig {
            icache: perfect(),
            dcache: perfect(),
            ram_bytes: 1 << 20,
            ..CoreConfig::default()
        },
        NoHooks,
    )
}

fn run(core: &mut Core<NoHooks>, src: &str) -> HaltReason {
    let words = assemble_at(src, 0).unwrap_or_else(|e| panic!("{e}"));
    let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
    core.load_segments([(0u32, bytes.as_slice())], 0);
    core.run(1_000_000).expect("program should halt")
}

#[test]
fn store_to_load_same_address_back_to_back() {
    let mut c = core();
    let halt = run(
        &mut c,
        "li s0, 0x2000\n li t0, 99\n sw t0, 0(s0)\n lw a0, 0(s0)\n ebreak",
    );
    assert_eq!(halt, HaltReason::Ebreak { code: 99 });
}

#[test]
fn load_use_into_branch() {
    // A branch whose comparand comes straight from a load: the hazard
    // bubble plus EX resolution must still produce correct control flow.
    let mut c = core();
    let halt = run(
        &mut c,
        r"
        li s0, 0x2000
        li t0, 1
        sw t0, 0(s0)
        lw t1, 0(s0)
        bnez t1, taken
        li a0, 0
        ebreak
    taken:
        li a0, 7
        ebreak
        ",
    );
    assert_eq!(halt, HaltReason::Ebreak { code: 7 });
}

#[test]
fn branch_immediately_after_div() {
    // Control flow depending on a multi-cycle EX result.
    let mut c = core();
    let halt = run(
        &mut c,
        r"
        li a0, 100
        li a1, 7
        div a2, a0, a1
        li t0, 14
        bne a2, t0, bad
        li a0, 1
        ebreak
    bad:
        li a0, 0
        ebreak
        ",
    );
    assert_eq!(halt, HaltReason::Ebreak { code: 1 });
}

#[test]
fn back_to_back_taken_branches() {
    let mut c = core();
    let halt = run(
        &mut c,
        r"
        j a
    dead1:
        li a0, 0
        ebreak
    a:
        j b
    dead2:
        li a0, 0
        ebreak
    b:
        li a0, 3
        ebreak
        ",
    );
    assert_eq!(halt, HaltReason::Ebreak { code: 3 });
    assert_eq!(c.state.perf.flush_cycles, 4, "two taken jumps");
}

#[test]
fn interrupt_during_multicycle_div_is_precise() {
    // The timer fires mid-division; the interrupt must wait for the
    // division to retire and resume exactly after it.
    let mut c = core();
    c.state
        .bus
        .attach(map::TIMER_BASE, map::WINDOW_LEN, Box::new(Timer::new()));
    let halt = run(
        &mut c,
        r"
        li t0, 0x300
        csrw mtvec, t0
        li t0, 1
        csrw mie, t0
        li s0, 0xF0000100
        li t0, 26
        sw t0, 8(s0)        # timer hits inside the div below
        li t0, 1
        sw t0, 16(s0)
        csrrsi zero, mstatus, 8
        li a0, 1000
        li a1, 10
        div a2, a0, a1      # ~16 extra cycles
        addi a2, a2, 1      # must still execute exactly once
        mv a0, a2
        ebreak
        .org 0x300
        # handler: disable timer, count in s5, return
        li s4, 0xF0000100
        sw zero, 16(s4)
        lw s6, 16(s4)       # readback serializes the deassert
        addi s5, s5, 1
        mret
        ",
    );
    assert_eq!(halt, HaltReason::Ebreak { code: 101 });
    assert_eq!(c.state.regs.get(Reg::S5), 1, "exactly one interrupt");
    assert_eq!(c.state.perf.interrupts, 1);
}

#[test]
fn trap_in_branch_shadow_is_precise() {
    // A faulting load sits right after a taken branch: it must never
    // trap (it is squashed).
    let mut c = core();
    let halt = run(
        &mut c,
        r"
        li t0, 0x300
        csrw mtvec, t0
        li s0, 0x800000     # out of RAM: would fault if executed
        j skip
        lw a0, 0(s0)        # squashed
    skip:
        li a0, 5
        ebreak
        .org 0x300
        li a0, 0xBAD
        ebreak
        ",
    );
    assert_eq!(halt, HaltReason::Ebreak { code: 5 });
    assert_eq!(c.state.perf.exceptions, 0, "squashed loads must not trap");
}

#[test]
fn faulting_load_after_good_store_keeps_the_store() {
    // Precision the other way: the store (older) must land even though
    // the next instruction faults at MEM.
    let mut c = core();
    let halt = run(
        &mut c,
        r"
        li t0, 0x300
        csrw mtvec, t0
        li s0, 0x2000
        li s1, 0x800000
        li t0, 42
        sw t0, 0(s0)
        lw a0, 0(s1)        # LoadAccessFault
        ebreak
        .org 0x300
        li s2, 0x2000
        lw a0, 0(s2)        # the store must be visible
        ebreak
        ",
    );
    assert_eq!(halt, HaltReason::Ebreak { code: 42 });
    assert_eq!(c.state.csr.mcause, TrapCause::LoadAccessFault.code());
}

#[test]
fn dcache_miss_stalls_do_not_reorder() {
    // Alternate hits and conflict misses; values must stay exact.
    let mut c = Core::new(
        CoreConfig {
            icache: perfect(),
            dcache: CacheConfig {
                size_bytes: 64,
                line_bytes: 32,
                hit_latency: 1,
                miss_penalty: 13,
            },
            ram_bytes: 1 << 20,
            ..CoreConfig::default()
        },
        NoHooks,
    );
    let halt = run(
        &mut c,
        r"
        li s0, 0x2000
        li s1, 0x2040       # conflicts with s0 in a 2-line cache
        li t0, 1
        sw t0, 0(s0)
        li t0, 2
        sw t0, 0(s1)
        lw t1, 0(s0)
        lw t2, 0(s1)
        add t3, t1, t2
        lw t4, 0(s0)
        add a0, t3, t4
        ebreak
        ",
    );
    assert_eq!(halt, HaltReason::Ebreak { code: 4 });
    assert!(c.state.perf.mem_stall > 20, "misses really stalled");
}

#[test]
fn jalr_link_and_target_with_forwarded_base() {
    // jalr whose base register was computed the previous instruction.
    let mut c = core();
    let halt = run(
        &mut c,
        r"
        la t0, func
        jalr ra, 0(t0)
        ebreak              # returns here; a0 set by func
    func:
        li a0, 9
        jr ra
        ",
    );
    assert_eq!(halt, HaltReason::Ebreak { code: 9 });
}

#[test]
fn mret_without_pending_trap_jumps_to_mepc() {
    let mut c = core();
    let halt = run(
        &mut c,
        r"
        la t0, target
        csrw mepc, t0
        mret
        li a0, 0
        ebreak
    target:
        li a0, 4
        ebreak
        ",
    );
    assert_eq!(halt, HaltReason::Ebreak { code: 4 });
}

#[test]
fn csr_read_modify_write_sequence() {
    let mut c = core();
    let halt = run(
        &mut c,
        r"
        li t0, 0xF0
        csrw mscratch, t0
        csrrsi t1, mscratch, 0xF    # t1 = 0xF0, mscratch = 0xFF
        csrrci t2, mscratch, 0x3    # t2 = 0xFF, mscratch = 0xFC
        csrr t3, mscratch
        add a0, t1, t2
        add a0, a0, t3              # 0xF0 + 0xFF + 0xFC = 0x2EB
        ebreak
        ",
    );
    assert_eq!(halt, HaltReason::Ebreak { code: 0x2EB });
}
