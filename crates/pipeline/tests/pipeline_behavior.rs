//! Behavioural and timing tests for the pipelined core, driven by
//! assembled programs.

use metal_asm::assemble_at;
use metal_isa::reg::Reg;
use metal_mem::CacheConfig;
use metal_pipeline::{Core, CoreConfig, HaltReason, NoHooks, TrapCause};

fn perfect_cache() -> CacheConfig {
    CacheConfig {
        size_bytes: 64 * 1024,
        line_bytes: 32,
        hit_latency: 1,
        miss_penalty: 0,
    }
}

/// A core with single-cycle memory everywhere, so cycle counts are pure
/// pipeline behaviour.
fn ideal_core() -> Core<NoHooks> {
    Core::new(
        CoreConfig {
            icache: perfect_cache(),
            dcache: perfect_cache(),
            ram_bytes: 1 << 20,
            ..CoreConfig::default()
        },
        NoHooks,
    )
}

fn run_asm(core: &mut Core<NoHooks>, src: &str) -> HaltReason {
    let words = assemble_at(src, 0).unwrap_or_else(|e| panic!("{e}"));
    let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
    core.load_segments([(0u32, bytes.as_slice())], 0);
    core.run(1_000_000).expect("program should halt")
}

#[test]
fn arithmetic_and_halt() {
    let mut core = ideal_core();
    let halt = run_asm(&mut core, "li a0, 6\n li a1, 7\n mul a0, a0, a1\n ebreak");
    assert_eq!(halt, HaltReason::Ebreak { code: 42 });
}

#[test]
fn forwarding_chain_correct() {
    // Each instruction consumes the previous one's result immediately.
    let mut core = ideal_core();
    let halt = run_asm(
        &mut core,
        "li a0, 1\n addi a0, a0, 1\n addi a0, a0, 1\n addi a0, a0, 1\n\
         slli a0, a0, 4\n addi a0, a0, 2\n ebreak",
    );
    assert_eq!(halt, HaltReason::Ebreak { code: 66 });
}

#[test]
fn steady_state_cpi_is_one() {
    // 100 independent ALU ops: cycles ≈ instret + pipeline fill.
    let body = "addi a1, a1, 1\n".repeat(100);
    let mut core = ideal_core();
    run_asm(&mut core, &format!("{body}ebreak"));
    let perf = &core.state.perf;
    assert!(
        perf.cycles <= perf.instret + 8,
        "CPI should be ~1: {} cycles for {} insns",
        perf.cycles,
        perf.instret
    );
}

#[test]
fn load_use_stalls_one_cycle() {
    // Version A: load immediately consumed. Version B: independent insn
    // between. A must take exactly one cycle more than B.
    let prologue = "li s0, 0x1000\n li t1, 7\n sw t1, 0(s0)\n";
    let a = format!("{prologue} lw a1, 0(s0)\n addi a2, a1, 1\n addi a3, zero, 0\n ebreak");
    let b = format!("{prologue} lw a1, 0(s0)\n addi a3, zero, 0\n addi a2, a1, 1\n ebreak");
    let mut core_a = ideal_core();
    run_asm(&mut core_a, &a);
    let mut core_b = ideal_core();
    run_asm(&mut core_b, &b);
    assert_eq!(core_a.state.regs.get(Reg::A2), 8);
    assert_eq!(core_b.state.regs.get(Reg::A2), 8);
    assert_eq!(
        core_a.state.perf.cycles,
        core_b.state.perf.cycles + 1,
        "load-use should cost exactly one bubble"
    );
    assert_eq!(core_a.state.perf.loaduse_stall, 1);
    assert_eq!(core_b.state.perf.loaduse_stall, 0);
}

#[test]
fn taken_branch_costs_two_cycles() {
    // Taken vs not-taken branch over the same instruction count.
    let taken = "li a0, 1\n beq a0, a0, skip\n nop\nskip: nop\n ebreak";
    let not_taken = "li a0, 1\n beq a0, zero, skip\n nop\nskip: nop\n ebreak";
    let mut core_t = ideal_core();
    run_asm(&mut core_t, taken);
    let mut core_n = ideal_core();
    run_asm(&mut core_n, not_taken);
    // Taken path retires one fewer instruction (skips the nop) but pays
    // the 2-cycle flush: net +1 cycle.
    assert_eq!(core_t.state.perf.flush_cycles, 2);
    assert_eq!(core_n.state.perf.flush_cycles, 0);
    assert_eq!(core_t.state.perf.cycles, core_n.state.perf.cycles + 1);
}

#[test]
fn icache_miss_stalls_fetch() {
    let mut cold = Core::new(
        CoreConfig {
            icache: CacheConfig {
                size_bytes: 256,
                line_bytes: 4, // every fetch its own line -> every fetch misses once
                hit_latency: 1,
                miss_penalty: 10,
            },
            dcache: perfect_cache(),
            ram_bytes: 1 << 20,
            ..CoreConfig::default()
        },
        NoHooks,
    );
    run_asm(&mut cold, "nop\n nop\n nop\n ebreak");
    let mut warm = ideal_core();
    run_asm(&mut warm, "nop\n nop\n nop\n ebreak");
    assert!(
        cold.state.perf.cycles > warm.state.perf.cycles + 3 * 10 - 5,
        "cold fetches should pay the miss penalty: {} vs {}",
        cold.state.perf.cycles,
        warm.state.perf.cycles
    );
    assert!(cold.state.perf.fetch_stall >= 30);
}

#[test]
fn memory_operations_produce_correct_state() {
    let mut core = ideal_core();
    run_asm(
        &mut core,
        "li s0, 0x2000\n li t0, -2\n sw t0, 0(s0)\n sh t0, 4(s0)\n sb t0, 8(s0)\n\
         lw a1, 0(s0)\n lhu a2, 4(s0)\n lbu a3, 8(s0)\n lb a4, 8(s0)\n ebreak",
    );
    assert_eq!(core.state.regs.get(Reg::A1), 0xFFFF_FFFE);
    assert_eq!(core.state.regs.get(Reg::A2), 0xFFFE);
    assert_eq!(core.state.regs.get(Reg::A3), 0xFE);
    assert_eq!(core.state.regs.get(Reg::A4), 0xFFFF_FFFE);
}

#[test]
fn ecall_vectors_and_mret_returns() {
    let mut core = ideal_core();
    let halt = run_asm(
        &mut core,
        r"
        .equ HANDLER, 0x100
        li t0, HANDLER
        csrw mtvec, t0
        li a0, 5
        ecall            # handler doubles a0
        addi a0, a0, 1
        ebreak
        .org HANDLER
        slli a0, a0, 1
        csrr t1, mepc
        addi t1, t1, 4
        csrw mepc, t1
        mret
        ",
    );
    assert_eq!(halt, HaltReason::Ebreak { code: 11 });
    assert_eq!(core.state.csr.mcause, TrapCause::Ecall.code());
    assert_eq!(core.state.perf.exceptions, 1);
}

#[test]
fn illegal_instruction_reports_word() {
    let mut core = ideal_core();
    let halt = run_asm(
        &mut core,
        r"
        li t0, 0x100
        csrw mtvec, t0
        .word 0xFFFFFFFF
        nop
        .org 0x100
        ebreak
        ",
    );
    assert_eq!(halt, HaltReason::Ebreak { code: 0 });
    assert_eq!(core.state.csr.mcause, TrapCause::IllegalInstruction.code());
    assert_eq!(core.state.csr.mtval, 0xFFFF_FFFF);
}

#[test]
fn metal_insns_are_illegal_without_extension() {
    let mut core = ideal_core();
    let halt = run_asm(
        &mut core,
        r"
        li t0, 0x100
        csrw mtvec, t0
        menter 3
        nop
        .org 0x100
        csrr a0, mcause
        ebreak
        ",
    );
    assert_eq!(
        halt,
        HaltReason::Ebreak {
            code: TrapCause::IllegalInstruction.code()
        }
    );
}

#[test]
fn fetch_fault_on_unmapped_pc() {
    let mut core = ideal_core();
    let halt = run_asm(
        &mut core,
        r"
        li t0, 0x100
        csrw mtvec, t0
        li t1, 0x800000     # beyond 1 MiB RAM
        jr t1
        .org 0x100
        csrr a0, mcause
        ebreak
        ",
    );
    assert_eq!(
        halt,
        HaltReason::Ebreak {
            code: TrapCause::InsnAccessFault.code()
        }
    );
    assert_eq!(core.state.csr.mtval, 0x80_0000);
}

#[test]
fn store_load_to_mmio_console() {
    use metal_mem::devices::{map, Console};
    let mut core = ideal_core();
    let (console, out) = Console::new();
    core.state
        .bus
        .attach(map::CONSOLE_BASE, map::WINDOW_LEN, Box::new(console));
    run_asm(
        &mut core,
        r"
        li s0, 0xF0000000
        li t0, 'H'
        sw t0, 0(s0)
        li t0, 'i'
        sw t0, 0(s0)
        ebreak
        ",
    );
    assert_eq!(out.lock().as_slice(), b"Hi");
}

#[test]
fn timer_interrupt_delivered() {
    use metal_mem::devices::{map, Timer};
    let mut core = ideal_core();
    core.state
        .bus
        .attach(map::TIMER_BASE, map::WINDOW_LEN, Box::new(Timer::new()));
    let halt = run_asm(
        &mut core,
        r"
        li t0, 0x200
        csrw mtvec, t0
        li t0, 1            # enable timer line (bit 0)
        csrw mie, t0
        li s0, 0xF0000100
        li t0, 50
        sw t0, 8(s0)        # cmp = 50
        li t0, 1
        sw t0, 16(s0)       # ctrl = enable
        csrrsi zero, mstatus, 8   # set MIE
        spin:
        j spin
        .org 0x200
        csrr a0, mcause
        ebreak
        ",
    );
    assert_eq!(
        halt,
        HaltReason::Ebreak {
            code: TrapCause::Interrupt(map::TIMER_IRQ).code()
        }
    );
    assert_eq!(core.state.perf.interrupts, 1);
}

#[test]
fn wfi_waits_for_interrupt() {
    use metal_mem::devices::{map, Timer};
    let mut core = ideal_core();
    core.state
        .bus
        .attach(map::TIMER_BASE, map::WINDOW_LEN, Box::new(Timer::new()));
    let halt = run_asm(
        &mut core,
        r"
        li t0, 1
        csrw mie, t0
        li s0, 0xF0000100
        li t0, 500
        sw t0, 8(s0)
        li t0, 1
        sw t0, 16(s0)
        wfi                 # MIE is off: wake without trapping
        ebreak
        ",
    );
    assert_eq!(halt, HaltReason::Ebreak { code: 0 });
    assert!(
        core.state.perf.cycles >= 500,
        "WFI should sleep until the timer: {} cycles",
        core.state.perf.cycles
    );
    assert_eq!(core.state.perf.interrupts, 0, "MIE off: no trap");
}

#[test]
fn livelock_detected() {
    let mut core = ideal_core();
    // Jump into an infinite fault loop: mtvec = faulting address itself.
    let words = assemble_at("j 0x0", 0x0).unwrap();
    let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
    core.load_segments([(0u32, bytes.as_slice())], 0);
    // An infinite `j 0` loop retires instructions forever, so use a cycle
    // cap instead and assert it did not halt.
    assert_eq!(core.run(10_000), None);
    assert!(core.state.perf.instret > 1000);
}

#[test]
fn division_latency_charged() {
    let mut fast = ideal_core();
    run_asm(&mut fast, "li a0, 100\n li a1, 7\n add a2, a0, a1\n ebreak");
    let mut slow = ideal_core();
    run_asm(&mut slow, "li a0, 100\n li a1, 7\n div a2, a0, a1\n ebreak");
    assert_eq!(slow.state.regs.get(Reg::A2), 14);
    assert_eq!(
        slow.state.perf.cycles,
        fast.state.perf.cycles + u64::from(slow.config().div_latency),
        "div should cost its configured extra latency"
    );
}
