//! metal-trace: structured observability for the Metal simulator.
//!
//! Three pieces:
//!
//! 1. **Event tracing** — a [`TraceHandle`] that every layer of the
//!    simulator (bus, TLB, pipeline, Metal extension) can clone and emit
//!    typed [`Event`]s into. Events land in a fixed-capacity ring
//!    buffer; a disabled handle is a `None` and costs one branch per
//!    emission site, so tracing never perturbs timing when off.
//! 2. **Chrome export** — [`chrome::export`] turns the ring into a
//!    `chrome://tracing` / Perfetto-loadable JSON document, with
//!    mroutine transitions as a flame graph.
//! 3. **Metrics** — [`MetricsSnapshot`] unifies the pipeline's perf
//!    counters, the cache/TLB statistics, and Metal's per-mroutine
//!    transition latencies into one JSON-serializable document.
//!
//! The crate depends only on `metal-util`; events are plain data so the
//! memory system can emit them without a dependency cycle through the
//! pipeline.

pub mod chrome;
pub mod event;
pub mod metrics;
pub mod ring;

pub use event::{
    CacheKind, Event, EventKind, FaultSite, RecoveryAction, StallKind, TlbOutcome, TransitionCause,
};
pub use metrics::{Histogram, Metric, MetricsSnapshot, TransitionSlot, TransitionTable};
pub use ring::Ring;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// How much to record.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Detail {
    /// Transitions, stalls, flushes, traps, interrupts — the events
    /// whose volume is bounded by control flow.
    Transitions,
    /// Everything, including per-access cache/TLB/MRAM/retire events.
    #[default]
    Full,
}

/// Tracer configuration.
#[derive(Clone, Copy, Debug)]
pub struct TraceConfig {
    /// Ring capacity in events.
    pub capacity: usize,
    /// Recording granularity.
    pub detail: Detail,
}

impl Default for TraceConfig {
    fn default() -> TraceConfig {
        TraceConfig {
            capacity: 1 << 20,
            detail: Detail::Full,
        }
    }
}

/// The enabled-tracer recording path, deliberately out of line.
#[cold]
#[inline(never)]
fn record(shared: &Shared, cycle: u64, kind: EventKind) {
    if shared.detail == Detail::Transitions && kind.is_fine_grained() {
        return;
    }
    shared
        .ring
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(Event { cycle, kind });
}

struct Shared {
    /// Current simulation cycle, published by the pipeline once per
    /// tick so emitters below the pipeline (bus, TLB) can timestamp
    /// events without threading the cycle through every call.
    now: AtomicU64,
    detail: Detail,
    ring: Mutex<Ring>,
}

/// A cloneable handle to a tracer, or a no-op when disabled.
///
/// The handle is `Send + Sync` (atomics + a mutex around the ring), so
/// cores stay movable across threads. The hot-path contract: when
/// disabled, [`TraceHandle::emit`] is a single `Option` check.
#[derive(Clone, Default)]
pub struct TraceHandle(Option<Arc<Shared>>);

impl std::fmt::Debug for TraceHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            None => write!(f, "TraceHandle(disabled)"),
            Some(shared) => write!(
                f,
                "TraceHandle(enabled, {} events)",
                shared.ring.lock().unwrap_or_else(|e| e.into_inner()).len()
            ),
        }
    }
}

impl TraceHandle {
    /// A handle that records nothing.
    #[must_use]
    pub fn disabled() -> TraceHandle {
        TraceHandle(None)
    }

    /// A handle that records into a fresh ring.
    #[must_use]
    pub fn enabled(config: TraceConfig) -> TraceHandle {
        TraceHandle(Some(Arc::new(Shared {
            now: AtomicU64::new(0),
            detail: config.detail,
            ring: Mutex::new(Ring::new(config.capacity)),
        })))
    }

    /// True when events are being recorded. Use to skip argument
    /// computation that only feeds [`TraceHandle::emit`].
    #[inline]
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Publishes the current cycle (called by the pipeline each tick).
    #[inline]
    pub fn set_now(&self, cycle: u64) {
        if let Some(shared) = &self.0 {
            shared.now.store(cycle, Ordering::Relaxed);
        }
    }

    /// The last published cycle (0 until the first tick).
    #[must_use]
    pub fn now(&self) -> u64 {
        match &self.0 {
            Some(shared) => shared.now.load(Ordering::Relaxed),
            None => 0,
        }
    }

    /// Records `kind` at the current cycle. No-op when disabled; when
    /// the ring is full the oldest event is evicted.
    ///
    /// The recording path is kept out of line (`#[cold]`) so the
    /// dozens of inlined emission sites in the simulator's hot loops
    /// cost only a null check when tracing is off.
    #[inline]
    pub fn emit(&self, kind: EventKind) {
        if let Some(shared) = &self.0 {
            record(shared, shared.now.load(Ordering::Relaxed), kind);
        }
    }

    /// Records `kind` at an explicit cycle (for emitters that know a
    /// more precise timestamp than the published tick).
    #[inline]
    pub fn emit_at(&self, cycle: u64, kind: EventKind) {
        if let Some(shared) = &self.0 {
            record(shared, cycle, kind);
        }
    }

    /// A snapshot of the retained events, oldest first. Empty when
    /// disabled.
    #[must_use]
    pub fn events(&self) -> Vec<Event> {
        match &self.0 {
            Some(shared) => shared
                .ring
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .to_vec(),
            None => Vec::new(),
        }
    }

    /// Events evicted because the ring was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        match &self.0 {
            Some(shared) => shared
                .ring
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .dropped(),
            None => 0,
        }
    }

    /// Exports the retained events as a Chrome trace-event JSON
    /// document (see [`chrome::export`]).
    #[must_use]
    pub fn export_chrome(&self) -> String {
        chrome::export(&self.events(), self.dropped())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let t = TraceHandle::disabled();
        assert!(!t.is_enabled());
        t.set_now(99);
        t.emit(EventKind::Flush { target: 4 });
        assert_eq!(t.now(), 0);
        assert!(t.events().is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn clones_share_one_ring() {
        let t = TraceHandle::enabled(TraceConfig::default());
        let u = t.clone();
        t.set_now(10);
        u.emit(EventKind::Flush { target: 8 });
        t.emit(EventKind::Retire { pc: 0 });
        let events = t.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].cycle, 10);
    }

    #[test]
    fn transitions_detail_drops_fine_grained() {
        let t = TraceHandle::enabled(TraceConfig {
            capacity: 16,
            detail: Detail::Transitions,
        });
        t.emit(EventKind::Retire { pc: 0 });
        t.emit(EventKind::TlbLookup {
            va: 0,
            outcome: TlbOutcome::Hit,
        });
        t.emit(EventKind::MEnter {
            entry: 1,
            cause: TransitionCause::Call,
            pc: 0,
        });
        let events = t.events();
        assert_eq!(events.len(), 1);
        assert!(matches!(events[0].kind, EventKind::MEnter { .. }));
    }

    #[test]
    fn ring_capacity_is_respected_via_handle() {
        let t = TraceHandle::enabled(TraceConfig {
            capacity: 4,
            detail: Detail::Full,
        });
        for i in 0..10 {
            t.set_now(i);
            t.emit(EventKind::Retire { pc: i as u32 });
        }
        assert_eq!(t.events().len(), 4);
        assert_eq!(t.dropped(), 6);
        assert_eq!(t.events()[0].cycle, 6);
    }

    #[test]
    fn export_of_empty_handle_parses() {
        let t = TraceHandle::enabled(TraceConfig::default());
        let doc = metal_util::Json::parse(&t.export_chrome()).unwrap();
        assert!(doc.get("traceEvents").is_some());
    }
}
