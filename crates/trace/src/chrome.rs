//! Chrome trace-event exporter.
//!
//! Produces the JSON object format (`{"traceEvents": [...]}`) that
//! `chrome://tracing` and Perfetto load directly. One simulated cycle
//! maps to one microsecond of trace time.
//!
//! Track layout (all under pid 0):
//! - tid 0 "transitions": `menter`/`mexit` as begin/end duration pairs,
//!   so nested mroutines render as a flame graph.
//! - tid 1 "pipeline": stalls, flushes, traps, interrupts as instants
//!   (stall length rides in `args.cycles`).
//! - tid 2 "memory": fine-grained cache/TLB/MRAM/MMIO instants.
//!
//! Events are written in stream order, which is cycle order, so the
//! `ts` sequence is monotonically non-decreasing — a property the test
//! suite asserts after parsing the export back.

use crate::event::{Event, EventKind};
use metal_util::json::{write_num, write_str};

const TID_TRANSITIONS: u32 = 0;
const TID_PIPELINE: u32 = 1;
const TID_MEMORY: u32 = 2;

/// Serializes `events` (oldest first) into a Chrome trace-event JSON
/// document. `dropped` is recorded in `otherData` so a truncated ring
/// is visible in the viewer.
#[must_use]
pub fn export(events: &[Event], dropped: u64) -> String {
    let mut out = String::with_capacity(64 + events.len() * 96);
    out.push_str("{\"traceEvents\":[");
    let mut wrote_any = false;
    // Entries currently open on the transition track; a `mexit` with no
    // matching `menter` (its begin fell off the ring) is skipped so the
    // begin/end pairs always balance.
    let mut open_entries: Vec<u8> = Vec::new();
    let mut last_cycle = 0u64;

    for event in events {
        last_cycle = event.cycle;
        match event.kind {
            EventKind::MEnter { entry, cause, pc } => {
                open_entries.push(entry);
                write_event(
                    &mut out,
                    &mut wrote_any,
                    &EventJson {
                        name: &format!("mroutine[{entry}]"),
                        cat: "transition",
                        ph: "B",
                        ts: event.cycle,
                        tid: TID_TRANSITIONS,
                        dur: None,
                        args: &[
                            ("entry", Arg::Num(u64::from(entry))),
                            ("cause", Arg::Str(cause.label())),
                            ("pc", Arg::Hex(pc)),
                        ],
                    },
                );
            }
            EventKind::MExit { entry, target } => {
                let Some(open_at) = open_entries.iter().rposition(|&e| e == entry) else {
                    continue;
                };
                // Close anything the ring left dangling above the match.
                while open_entries.len() > open_at {
                    open_entries.pop();
                    write_event(
                        &mut out,
                        &mut wrote_any,
                        &EventJson {
                            name: "",
                            cat: "transition",
                            ph: "E",
                            ts: event.cycle,
                            tid: TID_TRANSITIONS,
                            dur: None,
                            args: &[("target", Arg::Hex(target))],
                        },
                    );
                }
            }
            EventKind::Stall { cycles, .. } => {
                write_event(
                    &mut out,
                    &mut wrote_any,
                    &EventJson {
                        name: event.kind.name(),
                        cat: "pipeline",
                        ph: "X",
                        ts: event.cycle,
                        tid: TID_PIPELINE,
                        dur: Some(u64::from(cycles)),
                        args: &[("cycles", Arg::Num(u64::from(cycles)))],
                    },
                );
            }
            EventKind::Flush { target } => {
                write_instant(
                    &mut out,
                    &mut wrote_any,
                    event,
                    TID_PIPELINE,
                    &[("target", Arg::Hex(target))],
                );
            }
            EventKind::Trap { code, tval, pc } => {
                write_instant(
                    &mut out,
                    &mut wrote_any,
                    event,
                    TID_PIPELINE,
                    &[
                        ("code", Arg::Num(u64::from(code))),
                        ("tval", Arg::Hex(tval)),
                        ("pc", Arg::Hex(pc)),
                    ],
                );
            }
            EventKind::TrapDelegated { entry, layer, code } => {
                write_instant(
                    &mut out,
                    &mut wrote_any,
                    event,
                    TID_PIPELINE,
                    &[
                        ("entry", Arg::Num(u64::from(entry))),
                        ("layer", Arg::Num(u64::from(layer))),
                        ("code", Arg::Num(u64::from(code))),
                    ],
                );
            }
            EventKind::InterruptInjected { line } => {
                write_instant(
                    &mut out,
                    &mut wrote_any,
                    event,
                    TID_PIPELINE,
                    &[("line", Arg::Num(u64::from(line)))],
                );
            }
            EventKind::Retire { pc } => {
                write_instant(
                    &mut out,
                    &mut wrote_any,
                    event,
                    TID_PIPELINE,
                    &[("pc", Arg::Hex(pc))],
                );
            }
            EventKind::DecodeReplace { pc, target } => {
                write_instant(
                    &mut out,
                    &mut wrote_any,
                    event,
                    TID_PIPELINE,
                    &[("pc", Arg::Hex(pc)), ("target", Arg::Hex(target))],
                );
            }
            EventKind::CustomExec { pc, word } => {
                write_instant(
                    &mut out,
                    &mut wrote_any,
                    event,
                    TID_PIPELINE,
                    &[("pc", Arg::Hex(pc)), ("word", Arg::Hex(word))],
                );
            }
            EventKind::MramFetch { pc } => {
                write_instant(
                    &mut out,
                    &mut wrote_any,
                    event,
                    TID_MEMORY,
                    &[("pc", Arg::Hex(pc))],
                );
            }
            EventKind::MramData { addr, write } => {
                write_instant(
                    &mut out,
                    &mut wrote_any,
                    event,
                    TID_MEMORY,
                    &[("addr", Arg::Hex(addr)), ("write", Arg::Bool(write))],
                );
            }
            EventKind::CacheAccess { addr, hit, .. } => {
                write_instant(
                    &mut out,
                    &mut wrote_any,
                    event,
                    TID_MEMORY,
                    &[("addr", Arg::Hex(addr)), ("hit", Arg::Bool(hit))],
                );
            }
            EventKind::TlbLookup { va, outcome } => {
                write_instant(
                    &mut out,
                    &mut wrote_any,
                    event,
                    TID_MEMORY,
                    &[
                        ("va", Arg::Hex(va)),
                        (
                            "outcome",
                            Arg::Str(match outcome {
                                crate::event::TlbOutcome::Hit => "hit",
                                crate::event::TlbOutcome::Miss => "miss",
                                crate::event::TlbOutcome::Protection => "protection",
                                crate::event::TlbOutcome::KeyViolation => "key_violation",
                            }),
                        ),
                    ],
                );
            }
            EventKind::HwRefill { va } => {
                write_instant(
                    &mut out,
                    &mut wrote_any,
                    event,
                    TID_MEMORY,
                    &[("va", Arg::Hex(va))],
                );
            }
            EventKind::MmioAccess { addr, write } => {
                write_instant(
                    &mut out,
                    &mut wrote_any,
                    event,
                    TID_MEMORY,
                    &[("addr", Arg::Hex(addr)), ("write", Arg::Bool(write))],
                );
            }
            EventKind::FaultInjected { site, addr, bit } => {
                write_instant(
                    &mut out,
                    &mut wrote_any,
                    event,
                    TID_PIPELINE,
                    &[
                        ("site", Arg::Str(site.label())),
                        ("addr", Arg::Hex(addr)),
                        ("bit", Arg::Num(u64::from(bit))),
                    ],
                );
            }
            EventKind::MachineCheck {
                site,
                syndrome,
                addr,
            } => {
                write_instant(
                    &mut out,
                    &mut wrote_any,
                    event,
                    TID_PIPELINE,
                    &[
                        ("site", Arg::Str(site.label())),
                        ("syndrome", Arg::Num(u64::from(syndrome))),
                        ("addr", Arg::Hex(addr)),
                    ],
                );
            }
            EventKind::Recovery { .. } => {
                write_instant(&mut out, &mut wrote_any, event, TID_PIPELINE, &[]);
            }
            EventKind::Marker { value, .. } => {
                write_instant(
                    &mut out,
                    &mut wrote_any,
                    event,
                    TID_PIPELINE,
                    &[("value", Arg::Num(value))],
                );
            }
        }
    }

    // Close transitions still open at the end of the run so every "B"
    // has an "E" and the flame graph renders.
    while open_entries.pop().is_some() {
        write_event(
            &mut out,
            &mut wrote_any,
            &EventJson {
                name: "",
                cat: "transition",
                ph: "E",
                ts: last_cycle,
                tid: TID_TRANSITIONS,
                dur: None,
                args: &[],
            },
        );
    }

    out.push_str("],\"displayTimeUnit\":\"ms\",\"otherData\":{\"clock\":\"cycles\",\"dropped\":");
    write_num(&mut out, dropped as f64);
    out.push_str("}}");
    out
}

enum Arg<'a> {
    Num(u64),
    Hex(u32),
    Str(&'a str),
    Bool(bool),
}

struct EventJson<'a> {
    name: &'a str,
    cat: &'a str,
    ph: &'a str,
    ts: u64,
    tid: u32,
    dur: Option<u64>,
    args: &'a [(&'a str, Arg<'a>)],
}

fn write_instant(
    out: &mut String,
    wrote_any: &mut bool,
    event: &Event,
    tid: u32,
    args: &[(&str, Arg<'_>)],
) {
    write_event(
        out,
        wrote_any,
        &EventJson {
            name: event.kind.name(),
            cat: "sim",
            ph: "i",
            ts: event.cycle,
            tid,
            dur: None,
            args,
        },
    );
}

fn write_event(out: &mut String, wrote_any: &mut bool, ev: &EventJson<'_>) {
    if *wrote_any {
        out.push(',');
    }
    *wrote_any = true;
    out.push_str("{\"name\":");
    write_str(out, ev.name);
    out.push_str(",\"cat\":");
    write_str(out, ev.cat);
    out.push_str(",\"ph\":\"");
    out.push_str(ev.ph);
    out.push_str("\",\"ts\":");
    write_num(out, ev.ts as f64);
    if let Some(dur) = ev.dur {
        out.push_str(",\"dur\":");
        write_num(out, dur as f64);
    }
    out.push_str(",\"pid\":0,\"tid\":");
    write_num(out, f64::from(ev.tid));
    if ev.ph == "i" {
        // Instant scope: thread.
        out.push_str(",\"s\":\"t\"");
    }
    if !ev.args.is_empty() {
        out.push_str(",\"args\":{");
        for (i, (key, value)) in ev.args.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_str(out, key);
            out.push(':');
            match value {
                Arg::Num(n) => write_num(out, *n as f64),
                Arg::Hex(h) => write_str(out, &format!("{h:#010x}")),
                Arg::Str(s) => write_str(out, s),
                Arg::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            }
        }
        out.push('}');
    }
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, StallKind, TransitionCause};
    use metal_util::Json;

    fn sample_events() -> Vec<Event> {
        vec![
            Event {
                cycle: 5,
                kind: EventKind::MEnter {
                    entry: 2,
                    cause: TransitionCause::Call,
                    pc: 0xFFF0_0000,
                },
            },
            Event {
                cycle: 8,
                kind: EventKind::Stall {
                    kind: StallKind::Fetch,
                    cycles: 3,
                },
            },
            Event {
                cycle: 20,
                kind: EventKind::MExit {
                    entry: 2,
                    target: 0x100,
                },
            },
            Event {
                cycle: 22,
                kind: EventKind::Trap {
                    code: 8,
                    tval: 0,
                    pc: 0x104,
                },
            },
        ]
    }

    #[test]
    fn export_parses_and_is_monotonic() {
        let text = export(&sample_events(), 7);
        let doc = Json::parse(&text).unwrap();
        let events = doc.get("traceEvents").and_then(Json::as_array).unwrap();
        assert!(!events.is_empty());
        let mut last = f64::MIN;
        for ev in events {
            let ts = ev.get("ts").and_then(Json::as_f64).unwrap();
            assert!(ts >= last, "timestamps went backwards: {ts} < {last}");
            last = ts;
        }
        assert_eq!(
            doc.get("otherData")
                .and_then(|o| o.get("dropped"))
                .and_then(Json::as_f64),
            Some(7.0)
        );
    }

    #[test]
    fn begin_end_pairs_balance() {
        let text = export(&sample_events(), 0);
        let doc = Json::parse(&text).unwrap();
        let events = doc.get("traceEvents").and_then(Json::as_array).unwrap();
        let begins = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("B"))
            .count();
        let ends = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("E"))
            .count();
        assert_eq!(begins, 1);
        assert_eq!(begins, ends);
    }

    #[test]
    fn unmatched_exit_is_skipped() {
        let events = [Event {
            cycle: 3,
            kind: EventKind::MExit {
                entry: 9,
                target: 0,
            },
        }];
        let text = export(&events, 0);
        let doc = Json::parse(&text).unwrap();
        assert_eq!(
            doc.get("traceEvents")
                .and_then(Json::as_array)
                .map(<[Json]>::len),
            Some(0)
        );
    }

    #[test]
    fn dangling_begin_is_closed() {
        let events = [Event {
            cycle: 1,
            kind: EventKind::MEnter {
                entry: 0,
                cause: TransitionCause::Exception,
                pc: 0,
            },
        }];
        let text = export(&events, 0);
        let doc = Json::parse(&text).unwrap();
        let evs = doc.get("traceEvents").and_then(Json::as_array).unwrap();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[1].get("ph").and_then(Json::as_str), Some("E"));
    }
}
