//! A fixed-capacity ring buffer of trace events.
//!
//! When full, the oldest events are overwritten and counted in
//! `dropped`, so a long run keeps the most recent window instead of
//! growing without bound or silently truncating the interesting tail.

use crate::event::Event;

/// Fixed-capacity event storage with overwrite-oldest semantics.
#[derive(Debug)]
pub struct Ring {
    buf: Vec<Event>,
    capacity: usize,
    /// Index of the oldest event once the buffer has wrapped.
    head: usize,
    dropped: u64,
}

impl Ring {
    /// Creates an empty ring holding at most `capacity` events
    /// (a zero capacity is bumped to one).
    #[must_use]
    pub fn new(capacity: usize) -> Ring {
        Ring {
            buf: Vec::new(),
            capacity: capacity.max(1),
            head: 0,
            dropped: 0,
        }
    }

    /// Appends an event, evicting the oldest when full.
    pub fn push(&mut self, event: Event) {
        if self.buf.len() < self.capacity {
            self.buf.push(event);
        } else {
            self.buf[self.head] = event;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Number of events currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no events are held.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Number of events evicted by overwrite.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The retained events, oldest first.
    #[must_use]
    pub fn to_vec(&self) -> Vec<Event> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn marker(cycle: u64) -> Event {
        Event {
            cycle,
            kind: EventKind::Marker {
                name: "t",
                value: cycle,
            },
        }
    }

    #[test]
    fn keeps_everything_under_capacity() {
        let mut ring = Ring::new(4);
        for c in 0..3 {
            ring.push(marker(c));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 0);
        let cycles: Vec<u64> = ring.to_vec().iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![0, 1, 2]);
    }

    #[test]
    fn overwrites_oldest_when_full() {
        let mut ring = Ring::new(4);
        for c in 0..10 {
            ring.push(marker(c));
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.dropped(), 6);
        let cycles: Vec<u64> = ring.to_vec().iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![6, 7, 8, 9]);
    }
}
