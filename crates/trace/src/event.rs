//! Typed trace events.
//!
//! Events are plain `Copy` data — no allocation on the hot path — and
//! deliberately reference nothing from the simulator crates, so every
//! layer (memory system, pipeline, Metal extension) can emit them
//! without dependency cycles.

/// Which pipeline resource a stall was charged to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StallKind {
    /// Instruction-fetch latency beyond one cycle.
    Fetch,
    /// Data-access latency beyond one cycle.
    Mem,
    /// Load-use hazard bubble.
    LoadUse,
    /// Multi-cycle execute (mul/div, custom ops).
    Ex,
    /// Decode-stage hold (mroutine dispatch, PALcode fetch).
    Decode,
}

/// Which cache an access went through.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheKind {
    /// Instruction cache.
    ICache,
    /// Data cache.
    DCache,
}

/// Result of a TLB lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TlbOutcome {
    /// Translated successfully.
    Hit,
    /// No matching entry.
    Miss,
    /// PTE permission violation.
    Protection,
    /// Page-key violation.
    KeyViolation,
}

/// A hardware structure in which a fault can be injected or detected.
///
/// Lives here (rather than in the ISA or core crates) for the same
/// reason every other event payload does: the memory system, the
/// pipeline, and the Metal extension all need to name fault sites
/// without a dependency cycle. The 3-bit `code` is packed into the
/// machine-check `mcause` encoding, so it is architecturally visible.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultSite {
    /// An MRAM code word.
    MramCode,
    /// An MRAM data word.
    MramData,
    /// A Metal register (`m0`–`m31`).
    Mreg,
    /// A guest general-purpose register.
    GuestReg,
    /// A TLB entry.
    Tlb,
    /// A cache tag.
    Cache,
    /// An inter-stage pipeline latch (pipelined core only).
    Latch,
}

impl FaultSite {
    /// All sites, in `code` order.
    pub const ALL: [FaultSite; 7] = [
        FaultSite::MramCode,
        FaultSite::MramData,
        FaultSite::Mreg,
        FaultSite::GuestReg,
        FaultSite::Tlb,
        FaultSite::Cache,
        FaultSite::Latch,
    ];

    /// The 3-bit site code packed into the machine-check cause.
    #[must_use]
    pub fn code(self) -> u32 {
        match self {
            FaultSite::MramCode => 0,
            FaultSite::MramData => 1,
            FaultSite::Mreg => 2,
            FaultSite::GuestReg => 3,
            FaultSite::Tlb => 4,
            FaultSite::Cache => 5,
            FaultSite::Latch => 6,
        }
    }

    /// Decodes a 3-bit site code (7 is reserved).
    #[must_use]
    pub fn from_code(code: u32) -> Option<FaultSite> {
        FaultSite::ALL.get(code as usize).copied()
    }

    /// Stable label used in CLI flags, JSON reports, and event names.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FaultSite::MramCode => "mram-code",
            FaultSite::MramData => "mram-data",
            FaultSite::Mreg => "mreg",
            FaultSite::GuestReg => "guest-reg",
            FaultSite::Tlb => "tlb",
            FaultSite::Cache => "cache",
            FaultSite::Latch => "latch",
        }
    }

    /// Parses a CLI label back into a site.
    #[must_use]
    pub fn parse(s: &str) -> Option<FaultSite> {
        FaultSite::ALL.into_iter().find(|site| site.label() == s)
    }
}

/// What a machine-check recovery mroutine (or the campaign harness on
/// its behalf) did about a detected fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoveryAction {
    /// The fault was scrubbed in place and the faulting instruction
    /// retried (`mscrub` succeeded).
    Retry,
    /// State was rewound to a checkpoint snapshot.
    Rollback,
    /// Recovery gave up (`wmr mabort`): the fault is uncorrectable.
    Abort,
}

/// Why the machine entered Metal mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransitionCause {
    /// An explicit `menter`.
    Call,
    /// A nested `menter` from Metal mode.
    NestedCall,
    /// Instruction interception.
    Intercept,
    /// A delegated exception.
    Exception,
    /// A delegated interrupt.
    Interrupt,
}

impl TransitionCause {
    /// Short label used in exports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            TransitionCause::Call => "call",
            TransitionCause::NestedCall => "nested_call",
            TransitionCause::Intercept => "intercept",
            TransitionCause::Exception => "exception",
            TransitionCause::Interrupt => "interrupt",
        }
    }
}

/// One trace event payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// An instruction retired (WB stage).
    Retire {
        /// PC of the retired instruction.
        pc: u32,
    },
    /// A stall of `cycles` began.
    Stall {
        /// The resource charged.
        kind: StallKind,
        /// Length in cycles.
        cycles: u32,
    },
    /// A control-flow flush redirected fetch.
    Flush {
        /// The redirect target.
        target: u32,
    },
    /// A trap was taken through the baseline path.
    Trap {
        /// Encoded `mcause` value.
        code: u32,
        /// Trap value (faulting address / instruction word).
        tval: u32,
        /// Faulting or interrupted PC.
        pc: u32,
    },
    /// A trap was delegated to an mroutine.
    TrapDelegated {
        /// The handling entry.
        entry: u8,
        /// The layer whose table matched.
        layer: u8,
        /// Encoded cause.
        code: u32,
    },
    /// An external interrupt was injected into the pipeline.
    InterruptInjected {
        /// The interrupt line.
        line: u8,
    },
    /// Metal-mode entry (a transition begins).
    MEnter {
        /// Entry-table index of the mroutine.
        entry: u8,
        /// Why the transition happened.
        cause: TransitionCause,
        /// First PC of the mroutine.
        pc: u32,
    },
    /// Metal-mode exit (the matching transition ends).
    MExit {
        /// Entry-table index of the finishing mroutine.
        entry: u8,
        /// Where execution resumes.
        target: u32,
    },
    /// An MRAM code fetch.
    MramFetch {
        /// The fetched PC.
        pc: u32,
    },
    /// An MRAM data access (`mld`/`mst`).
    MramData {
        /// MRAM data-segment address.
        addr: u32,
        /// True for `mst`.
        write: bool,
    },
    /// A cache access.
    CacheAccess {
        /// Which cache.
        which: CacheKind,
        /// Physical address.
        addr: u32,
        /// True on hit.
        hit: bool,
    },
    /// A TLB lookup.
    TlbLookup {
        /// Virtual address.
        va: u32,
        /// The outcome.
        outcome: TlbOutcome,
    },
    /// The hardware walker refilled the TLB.
    HwRefill {
        /// Virtual address that missed.
        va: u32,
    },
    /// An MMIO device access.
    MmioAccess {
        /// Physical address.
        addr: u32,
        /// True for writes.
        write: bool,
    },
    /// A decode-slot replacement observed by a generic hooks decorator
    /// (the extension-agnostic view of `menter`/`mexit`/interception).
    DecodeReplace {
        /// PC of the replaced slot.
        pc: u32,
        /// PC attributed to the replacement.
        target: u32,
    },
    /// A custom (extension) instruction executed at EX.
    CustomExec {
        /// PC of the instruction.
        pc: u32,
        /// The instruction word.
        word: u32,
    },
    /// A fault was injected into a hardware structure (campaign
    /// harness only — real workloads never emit this).
    FaultInjected {
        /// The structure hit.
        site: FaultSite,
        /// Site-relative address (word address, register index, slot).
        addr: u32,
        /// Bit position flipped or pinned.
        bit: u8,
    },
    /// Detection hardware (parity/ECC) raised a machine check.
    MachineCheck {
        /// The structure where the error was detected.
        site: FaultSite,
        /// ECC syndrome (0 for parity).
        syndrome: u8,
        /// Site-relative address of the corrupted word.
        addr: u32,
    },
    /// A recovery decision was made for a delivered machine check.
    Recovery {
        /// What the recovery path did.
        action: RecoveryAction,
    },
    /// A free-form marker for experiments.
    Marker {
        /// Static label.
        name: &'static str,
        /// Payload.
        value: u64,
    },
}

impl EventKind {
    /// Display name used by exporters.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::Retire { .. } => "retire",
            EventKind::Stall { kind, .. } => match kind {
                StallKind::Fetch => "stall.fetch",
                StallKind::Mem => "stall.mem",
                StallKind::LoadUse => "stall.loaduse",
                StallKind::Ex => "stall.ex",
                StallKind::Decode => "stall.decode",
            },
            EventKind::Flush { .. } => "flush",
            EventKind::Trap { .. } => "trap",
            EventKind::TrapDelegated { .. } => "trap.delegated",
            EventKind::InterruptInjected { .. } => "interrupt",
            EventKind::MEnter { .. } => "menter",
            EventKind::MExit { .. } => "mexit",
            EventKind::MramFetch { .. } => "mram.fetch",
            EventKind::MramData { .. } => "mram.data",
            EventKind::CacheAccess { which, .. } => match which {
                CacheKind::ICache => "icache",
                CacheKind::DCache => "dcache",
            },
            EventKind::TlbLookup { .. } => "tlb",
            EventKind::HwRefill { .. } => "tlb.hw_refill",
            EventKind::MmioAccess { .. } => "mmio",
            EventKind::DecodeReplace { .. } => "decode.replace",
            EventKind::CustomExec { .. } => "exec.custom",
            EventKind::FaultInjected { .. } => "fault.injected",
            EventKind::MachineCheck { .. } => "mcheck.delivered",
            EventKind::Recovery { action } => match action {
                RecoveryAction::Retry => "recovery.retry",
                RecoveryAction::Rollback => "recovery.rollback",
                RecoveryAction::Abort => "recovery.abort",
            },
            EventKind::Marker { name, .. } => name,
        }
    }

    /// True for per-access events that dominate volume; the tracer skips
    /// them at [`crate::Detail::Transitions`].
    #[must_use]
    pub fn is_fine_grained(&self) -> bool {
        matches!(
            self,
            EventKind::Retire { .. }
                | EventKind::CacheAccess { .. }
                | EventKind::TlbLookup { .. }
                | EventKind::MramFetch { .. }
                | EventKind::MramData { .. }
                | EventKind::MmioAccess { .. }
                | EventKind::CustomExec { .. }
        )
    }
}

/// A timestamped event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// The cycle at which the event occurred.
    pub cycle: u64,
    /// The payload.
    pub kind: EventKind,
}
