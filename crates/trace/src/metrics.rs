//! The unified metrics registry: counters, gauges, and power-of-two
//! latency histograms, snapshotted into one JSON document.
//!
//! Every subsystem that previously kept private statistics
//! (`PerfCounters` in the pipeline, hit/miss tallies in the caches and
//! TLB, Metal's transition stats) flows into a [`MetricsSnapshot`] so
//! experiments get a single machine-readable file instead of scraping
//! text reports.

use metal_util::Json;
use std::collections::BTreeMap;

/// Number of power-of-two buckets (covers the full `u64` range).
pub const HIST_BUCKETS: usize = 64;

/// A histogram with power-of-two buckets: bucket `i` counts values `v`
/// with `v < 2^i` (and `v >= 2^(i-1)` for `i > 0`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; HIST_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Histogram {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; HIST_BUCKETS],
        }
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        let bucket = (u64::BITS - value.leading_zeros()) as usize;
        self.buckets[bucket.min(HIST_BUCKETS - 1)] += 1;
    }

    /// Number of recorded values.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value, or 0 when empty.
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean, or 0.0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
    }

    /// JSON form: summary stats plus the non-empty buckets as
    /// `{le, count}` pairs (`le` is the exclusive power-of-two bound).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut obj = BTreeMap::new();
        obj.insert("count".to_owned(), Json::Num(self.count as f64));
        obj.insert("sum".to_owned(), Json::Num(self.sum as f64));
        obj.insert("min".to_owned(), Json::Num(self.min() as f64));
        obj.insert("max".to_owned(), Json::Num(self.max as f64));
        obj.insert("mean".to_owned(), Json::Num(self.mean()));
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| {
                let mut b = BTreeMap::new();
                // Bucket i holds values < 2^i; 2^64 has no u64 form so
                // the last bound saturates.
                let le = if i >= 64 { u64::MAX } else { 1u64 << i };
                b.insert("le".to_owned(), Json::Num(le as f64));
                b.insert("count".to_owned(), Json::Num(n as f64));
                Json::Obj(b)
            })
            .collect();
        obj.insert("buckets".to_owned(), Json::Arr(buckets));
        Json::Obj(obj)
    }
}

/// One registered metric.
#[derive(Clone, Debug, PartialEq)]
pub enum Metric {
    /// A monotonically accumulated count.
    Counter(u64),
    /// A point-in-time value (rates, ratios).
    Gauge(f64),
    /// A value distribution (boxed: a histogram dwarfs the scalars).
    Hist(Box<Histogram>),
}

/// A flat, ordered name→metric map with dotted-path keys
/// (`"stall.fetch"`, `"dcache.hit_rate"`, `"transition.latency"`).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    entries: BTreeMap<String, Metric>,
}

impl MetricsSnapshot {
    /// An empty snapshot.
    #[must_use]
    pub fn new() -> MetricsSnapshot {
        MetricsSnapshot::default()
    }

    /// Sets a counter.
    pub fn set_counter(&mut self, name: &str, value: u64) {
        self.entries.insert(name.to_owned(), Metric::Counter(value));
    }

    /// Sets a gauge.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.entries.insert(name.to_owned(), Metric::Gauge(value));
    }

    /// Sets a histogram.
    pub fn set_hist(&mut self, name: &str, hist: &Histogram) {
        self.entries
            .insert(name.to_owned(), Metric::Hist(Box::new(hist.clone())));
    }

    /// Reads a counter back.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.entries.get(name) {
            Some(Metric::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// Reads a gauge back.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.entries.get(name) {
            Some(Metric::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// Reads a histogram back.
    #[must_use]
    pub fn hist(&self, name: &str) -> Option<&Histogram> {
        match self.entries.get(name) {
            Some(Metric::Hist(h)) => Some(h.as_ref()),
            _ => None,
        }
    }

    /// Iterates entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Metric)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// The JSON object form (counters/gauges as numbers, histograms as
    /// nested objects).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut obj = BTreeMap::new();
        for (name, metric) in &self.entries {
            let value = match metric {
                Metric::Counter(v) => Json::Num(*v as f64),
                Metric::Gauge(v) => Json::Num(*v),
                Metric::Hist(h) => h.to_json(),
            };
            obj.insert(name.clone(), value);
        }
        Json::Obj(obj)
    }

    /// Serialized JSON document.
    #[must_use]
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string_compact()
    }
}

/// Per-mroutine transition accounting: entry/exit counts and a latency
/// histogram per entry-table slot.
#[derive(Clone, Debug, Default)]
pub struct TransitionTable {
    slots: BTreeMap<u8, TransitionSlot>,
}

/// Accounting for one entry-table slot.
#[derive(Clone, Debug, Default)]
pub struct TransitionSlot {
    /// Completed enter→exit round trips.
    pub completions: u64,
    /// Total entries (may exceed completions while one is in flight).
    pub entries: u64,
    /// Enter→exit latency in cycles.
    pub latency: Histogram,
}

impl TransitionTable {
    /// An empty table.
    #[must_use]
    pub fn new() -> TransitionTable {
        TransitionTable::default()
    }

    /// Records an mroutine entry.
    pub fn record_entry(&mut self, entry: u8) {
        self.slots.entry(entry).or_default().entries += 1;
    }

    /// Records a completed transition with its cycle latency.
    pub fn record_exit(&mut self, entry: u8, latency_cycles: u64) {
        let slot = self.slots.entry(entry).or_default();
        slot.completions += 1;
        slot.latency.record(latency_cycles);
    }

    /// The slot for `entry`, if it ever ran.
    #[must_use]
    pub fn slot(&self, entry: u8) -> Option<&TransitionSlot> {
        self.slots.get(&entry)
    }

    /// Iterates slots in entry order.
    pub fn iter(&self) -> impl Iterator<Item = (u8, &TransitionSlot)> {
        self.slots.iter().map(|(&e, s)| (e, s))
    }

    /// Latency over every slot combined.
    #[must_use]
    pub fn combined_latency(&self) -> Histogram {
        let mut all = Histogram::new();
        for slot in self.slots.values() {
            all.merge(&slot.latency);
        }
        all
    }

    /// Writes the table into `snapshot` under `prefix`
    /// (e.g. `transition.entry3.latency`).
    pub fn publish(&self, snapshot: &mut MetricsSnapshot, prefix: &str) {
        for (entry, slot) in &self.slots {
            let base = format!("{prefix}.entry{entry}");
            snapshot.set_counter(&format!("{base}.entries"), slot.entries);
            snapshot.set_counter(&format!("{base}.completions"), slot.completions);
            snapshot.set_hist(&format!("{base}.latency"), &slot.latency);
        }
        snapshot.set_hist(&format!("{prefix}.latency"), &self.combined_latency());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        let mut h = Histogram::new();
        h.record(0); // bucket 0: v < 1
        h.record(1); // bucket 1: v < 2
        h.record(2); // bucket 2: v < 4
        h.record(3); // bucket 2
        h.record(1000); // bucket 10: v < 1024
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1006);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1000);
        let json = h.to_json();
        let buckets = json.get("buckets").and_then(Json::as_array).unwrap();
        let les: Vec<f64> = buckets
            .iter()
            .map(|b| b.get("le").and_then(Json::as_f64).unwrap())
            .collect();
        assert_eq!(les, vec![1.0, 2.0, 4.0, 1024.0]);
    }

    #[test]
    fn empty_histogram_is_sane() {
        let h = Histogram::new();
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert!((h.mean() - 0.0).abs() < f64::EPSILON);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Histogram::new();
        a.record(5);
        let mut b = Histogram::new();
        b.record(100);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 5);
        assert_eq!(a.max(), 100);
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let mut snap = MetricsSnapshot::new();
        snap.set_counter("cycles", 12345);
        snap.set_gauge("dcache.hit_rate", 0.96875);
        let mut h = Histogram::new();
        h.record(7);
        snap.set_hist("transition.latency", &h);

        let parsed = Json::parse(&snap.to_json_string()).unwrap();
        assert_eq!(parsed.get("cycles").and_then(Json::as_f64), Some(12345.0));
        assert_eq!(
            parsed.get("dcache.hit_rate").and_then(Json::as_f64),
            Some(0.96875)
        );
        assert_eq!(
            parsed
                .get("transition.latency")
                .and_then(|h| h.get("count"))
                .and_then(Json::as_f64),
            Some(1.0)
        );
    }

    #[test]
    fn transition_table_attributes_per_entry() {
        let mut t = TransitionTable::new();
        t.record_entry(3);
        t.record_exit(3, 40);
        t.record_entry(3);
        t.record_exit(3, 44);
        t.record_entry(7);
        t.record_exit(7, 900);

        let s3 = t.slot(3).unwrap();
        assert_eq!(s3.completions, 2);
        assert_eq!(s3.latency.min(), 40);
        assert_eq!(s3.latency.max(), 44);
        assert_eq!(t.combined_latency().count(), 3);

        let mut snap = MetricsSnapshot::new();
        t.publish(&mut snap, "transition");
        assert_eq!(snap.counter("transition.entry3.completions"), Some(2));
        assert_eq!(snap.counter("transition.entry7.entries"), Some(1));
        assert_eq!(snap.hist("transition.latency").unwrap().count(), 3);
    }
}
