//! Property tests on the hardware-cost model: the estimator must behave
//! like synthesis would — monotone in every geometry knob, additive in
//! the Metal block, and never free.

use metal_hwcost::processor::{metal_block, MetalHwConfig, ProcessorConfig};
use metal_hwcost::{baseline_processor, metal_processor, table2};
use proptest::prelude::*;

fn arb_proc() -> impl Strategy<Value = ProcessorConfig> {
    (
        prop_oneof![Just(1024u64), Just(2048), Just(4096), Just(8192), Just(16384)],
        prop_oneof![Just(1024u64), Just(2048), Just(4096), Just(8192)],
        prop_oneof![Just(16u64), Just(32), Just(64)],
        8u64..64,
    )
        .prop_map(|(icache_bytes, dcache_bytes, line_bytes, tlb_entries)| ProcessorConfig {
            icache_bytes,
            dcache_bytes,
            line_bytes,
            tlb_entries,
            xlen: 32,
        })
}

fn arb_metal() -> impl Strategy<Value = MetalHwConfig> {
    (
        prop_oneof![Just(256u64), Just(512), Just(1024), Just(2048), Just(4096)],
        prop_oneof![Just(128u64), Just(256), Just(512)],
        8u64..=64,
        prop_oneof![Just(4u64), Just(8), Just(16)],
    )
        .prop_map(
            |(mram_code_bytes, mram_data_bytes, entry_slots, intercept_slots)| MetalHwConfig {
                mram_code_bytes,
                mram_data_bytes,
                mreg_count: 32,
                entry_slots,
                intercept_slots,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Metal is additive: total(metal processor) = total(baseline) +
    /// total(metal block). Nothing is double-counted or dropped.
    #[test]
    fn metal_is_strictly_additive(p in arb_proc(), m in arb_metal()) {
        let base = baseline_processor(&p).total();
        let block = metal_block(&m, p.xlen).total();
        let combined = metal_processor(&p, &m).total();
        prop_assert_eq!(combined.cells, base.cells + block.cells);
        prop_assert_eq!(combined.wires, base.wires + block.wires);
    }

    /// Overheads are positive and finite for every geometry.
    #[test]
    fn overhead_positive(p in arb_proc(), m in arb_metal()) {
        let t = table2(&p, &m);
        prop_assert!(t.cells_pct > 0.0 && t.cells_pct < 400.0, "{:?}", t);
        prop_assert!(t.wires_pct > 0.0 && t.wires_pct < 400.0, "{:?}", t);
    }

    /// Growing any Metal knob never reduces the Metal block's cost.
    #[test]
    fn metal_block_monotone(m in arb_metal()) {
        let base = metal_block(&m, 32).total();
        let grow = |f: &dyn Fn(&mut MetalHwConfig)| {
            let mut bigger = m;
            f(&mut bigger);
            metal_block(&bigger, 32).total()
        };
        prop_assert!(grow(&|c| c.mram_code_bytes *= 2).cells >= base.cells);
        prop_assert!(grow(&|c| c.mram_data_bytes *= 2).cells >= base.cells);
        prop_assert!(grow(&|c| c.entry_slots += 8).cells >= base.cells);
        prop_assert!(grow(&|c| c.intercept_slots += 4).cells >= base.cells);
        prop_assert!(grow(&|c| c.mreg_count += 8).cells >= base.cells);
    }

    /// Growing the baseline (bigger caches) never increases the
    /// *relative* Metal overhead — Table 2 is an upper bound.
    #[test]
    fn bigger_cores_dilute_the_overhead(p in arb_proc(), m in arb_metal()) {
        let small = table2(&p, &m);
        let bigger = ProcessorConfig {
            icache_bytes: p.icache_bytes * 2,
            dcache_bytes: p.dcache_bytes * 2,
            ..p
        };
        let big = table2(&bigger, &m);
        prop_assert!(
            big.cells_pct <= small.cells_pct + 1e-9,
            "{} -> {}",
            small.cells_pct,
            big.cells_pct
        );
    }
}
