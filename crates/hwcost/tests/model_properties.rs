//! Property tests on the hardware-cost model: the estimator must behave
//! like synthesis would — monotone in every geometry knob, additive in
//! the Metal block, and never free.

use metal_hwcost::processor::{metal_block, MetalHwConfig, ProcessorConfig};
use metal_hwcost::{baseline_processor, metal_processor, table2};
use metal_util::Rng;

fn rand_proc(rng: &mut Rng) -> ProcessorConfig {
    ProcessorConfig {
        icache_bytes: *rng.pick(&[1024u64, 2048, 4096, 8192, 16384]),
        dcache_bytes: *rng.pick(&[1024u64, 2048, 4096, 8192]),
        line_bytes: *rng.pick(&[16u64, 32, 64]),
        tlb_entries: 8 + rng.below(56),
        xlen: 32,
    }
}

fn rand_metal(rng: &mut Rng) -> MetalHwConfig {
    MetalHwConfig {
        mram_code_bytes: *rng.pick(&[256u64, 512, 1024, 2048, 4096]),
        mram_data_bytes: *rng.pick(&[128u64, 256, 512]),
        mreg_count: 32,
        entry_slots: 8 + rng.below(57),
        intercept_slots: *rng.pick(&[4u64, 8, 16]),
    }
}

/// Metal is additive: total(metal processor) = total(baseline) +
/// total(metal block). Nothing is double-counted or dropped.
#[test]
fn metal_is_strictly_additive() {
    let mut rng = Rng::new(0x4c05_0001);
    for _ in 0..128 {
        let p = rand_proc(&mut rng);
        let m = rand_metal(&mut rng);
        let base = baseline_processor(&p).total();
        let block = metal_block(&m, p.xlen).total();
        let combined = metal_processor(&p, &m).total();
        assert_eq!(combined.cells, base.cells + block.cells);
        assert_eq!(combined.wires, base.wires + block.wires);
    }
}

/// Overheads are positive and finite for every geometry.
#[test]
fn overhead_positive() {
    let mut rng = Rng::new(0x4c05_0002);
    for _ in 0..128 {
        let p = rand_proc(&mut rng);
        let m = rand_metal(&mut rng);
        let t = table2(&p, &m);
        assert!(t.cells_pct > 0.0 && t.cells_pct < 400.0, "{t:?}");
        assert!(t.wires_pct > 0.0 && t.wires_pct < 400.0, "{t:?}");
    }
}

/// Growing any Metal knob never reduces the Metal block's cost.
#[test]
fn metal_block_monotone() {
    let mut rng = Rng::new(0x4c05_0003);
    for _ in 0..128 {
        let m = rand_metal(&mut rng);
        let base = metal_block(&m, 32).total();
        let grow = |f: &dyn Fn(&mut MetalHwConfig)| {
            let mut bigger = m;
            f(&mut bigger);
            metal_block(&bigger, 32).total()
        };
        assert!(grow(&|c| c.mram_code_bytes *= 2).cells >= base.cells);
        assert!(grow(&|c| c.mram_data_bytes *= 2).cells >= base.cells);
        assert!(grow(&|c| c.entry_slots += 8).cells >= base.cells);
        assert!(grow(&|c| c.intercept_slots += 4).cells >= base.cells);
        assert!(grow(&|c| c.mreg_count += 8).cells >= base.cells);
    }
}

/// Growing the baseline (bigger caches) never increases the
/// *relative* Metal overhead — Table 2 is an upper bound.
#[test]
fn bigger_cores_dilute_the_overhead() {
    let mut rng = Rng::new(0x4c05_0004);
    for _ in 0..128 {
        let p = rand_proc(&mut rng);
        let m = rand_metal(&mut rng);
        let small = table2(&p, &m);
        let bigger = ProcessorConfig {
            icache_bytes: p.icache_bytes * 2,
            dcache_bytes: p.dcache_bytes * 2,
            ..p
        };
        let big = table2(&bigger, &m);
        assert!(
            big.cells_pct <= small.cells_pct + 1e-9,
            "{} -> {}",
            small.cells_pct,
            big.cells_pct
        );
    }
}
