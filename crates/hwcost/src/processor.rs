//! Block-level composition of the baseline and Metal processors.

use crate::blocks::Component;
use crate::library as lib;

/// Geometry of the baseline 5-stage core.
///
/// The paper does not publish its prototype's cache/TLB geometry; the
/// [`ProcessorConfig::paper`] values are chosen so the *baseline* cell
/// count lands at the scale of Table 2 (≈180 k cells) under this cost
/// model — memories synthesized to flop arrays dominate, exactly as
/// they would under Yosys with a standard-cell library.
#[derive(Clone, Copy, Debug)]
pub struct ProcessorConfig {
    /// Instruction-cache capacity in bytes.
    pub icache_bytes: u64,
    /// Data-cache capacity in bytes.
    pub dcache_bytes: u64,
    /// Cache line size in bytes.
    pub line_bytes: u64,
    /// TLB entries.
    pub tlb_entries: u64,
    /// Register width.
    pub xlen: u64,
}

impl ProcessorConfig {
    /// The calibration point for Table 2.
    #[must_use]
    pub fn paper() -> ProcessorConfig {
        ProcessorConfig {
            icache_bytes: 4096,
            dcache_bytes: 4096,
            line_bytes: 32,
            tlb_entries: 32,
            xlen: 32,
        }
    }
}

impl Default for ProcessorConfig {
    fn default() -> ProcessorConfig {
        ProcessorConfig::paper()
    }
}

/// Geometry of the Metal extension hardware.
#[derive(Clone, Copy, Debug)]
pub struct MetalHwConfig {
    /// MRAM code-segment bytes.
    pub mram_code_bytes: u64,
    /// MRAM data-segment bytes.
    pub mram_data_bytes: u64,
    /// Metal registers.
    pub mreg_count: u64,
    /// Entry-table slots.
    pub entry_slots: u64,
    /// Interception-table slots.
    pub intercept_slots: u64,
}

impl MetalHwConfig {
    /// The calibration point for Table 2 (the paper does not publish its
    /// MRAM geometry; this size reproduces its reported overhead).
    #[must_use]
    pub fn paper() -> MetalHwConfig {
        MetalHwConfig {
            mram_code_bytes: 768,
            mram_data_bytes: 256,
            mreg_count: 32,
            entry_slots: 64,
            intercept_slots: 8,
        }
    }
}

impl Default for MetalHwConfig {
    fn default() -> MetalHwConfig {
        MetalHwConfig::paper()
    }
}

fn cache(name: &str, bytes: u64, line_bytes: u64, xlen: u64) -> Component {
    let lines = bytes / line_bytes;
    let tag_bits = 32 - (bytes as f64).log2() as u64 + 2; // tag + valid/dirty
    Component::node(
        name,
        vec![
            Component::leaf("data_array", lib::memory(bytes / 4, 32, 1, 1)),
            Component::leaf("tag_array", lib::memory(lines, tag_bits, 1, 1)),
            Component::leaf("tag_compare", lib::comparator(tag_bits)),
            Component::leaf("refill_control", lib::random_logic(400)),
            Component::leaf("line_mux", lib::mux(line_bytes / 4, xlen)),
        ],
    )
}

/// The baseline (non-Metal) 5-stage pipelined processor.
#[must_use]
pub fn baseline_processor(cfg: &ProcessorConfig) -> Component {
    let xlen = cfg.xlen;
    Component::node(
        "baseline_core",
        vec![
            Component::node(
                "fetch",
                vec![
                    Component::leaf("pc", lib::flops(xlen)),
                    Component::leaf("pc_adder", lib::adder(xlen)),
                    Component::leaf("redirect_mux", lib::mux(3, xlen)),
                    Component::leaf("if_id_latch", lib::flops(2 * xlen + 2)),
                ],
            ),
            cache("icache", cfg.icache_bytes, cfg.line_bytes, xlen),
            Component::node(
                "decode",
                vec![
                    Component::leaf("decoder", lib::random_logic(700)),
                    Component::leaf("imm_gen", lib::random_logic(220)),
                    Component::leaf("regfile", lib::memory(32, xlen, 2, 1)),
                    Component::leaf("hazard_unit", lib::random_logic(180)),
                    Component::leaf("id_ex_latch", lib::flops(3 * xlen + 40)),
                ],
            ),
            Component::node(
                "execute",
                vec![
                    Component::leaf("alu", lib::alu(xlen)),
                    Component::leaf("muldiv", lib::muldiv(xlen)),
                    Component::leaf("forward_mux_a", lib::mux(3, xlen)),
                    Component::leaf("forward_mux_b", lib::mux(3, xlen)),
                    Component::leaf("branch_compare", lib::comparator(xlen)),
                    Component::leaf("ex_mem_latch", lib::flops(3 * xlen + 8)),
                ],
            ),
            Component::node(
                "memory",
                vec![
                    Component::leaf("align", lib::random_logic(320)),
                    Component::leaf("mem_wb_latch", lib::flops(2 * xlen + 8)),
                ],
            ),
            cache("dcache", cfg.dcache_bytes, cfg.line_bytes, xlen),
            Component::node(
                "mmu",
                vec![
                    Component::leaf("tlb", lib::cam(cfg.tlb_entries, 28, 24)),
                    Component::leaf("pkey_regs", lib::flops(16 * 2)),
                    Component::leaf("walker", lib::random_logic(650)),
                ],
            ),
            Component::node(
                "system",
                vec![
                    Component::leaf("csr_file", lib::flops(7 * xlen)),
                    Component::leaf("csr_logic", lib::random_logic(450)),
                    Component::leaf("trap_unit", lib::random_logic(520)),
                    Component::leaf("interrupt_ctl", lib::random_logic(260)),
                    Component::leaf("bus_interface", lib::random_logic(800)),
                ],
            ),
        ],
    )
}

/// The Metal extension block.
#[must_use]
pub fn metal_block(cfg: &MetalHwConfig, xlen: u64) -> Component {
    // An entry-table slot holds a code offset plus a valid bit; the
    // offset must address the code segment.
    let entry_bits = ((cfg.mram_code_bytes as f64).log2().ceil() as u64).max(1) + 1;
    Component::node(
        "metal",
        vec![
            Component::leaf("mram_code", lib::memory(cfg.mram_code_bytes / 4, 32, 1, 1)),
            Component::leaf("mram_data", lib::memory(cfg.mram_data_bytes / 4, 32, 1, 1)),
            Component::leaf("mreg_file", lib::memory(cfg.mreg_count, xlen, 1, 1)),
            Component::leaf(
                "entry_table",
                lib::memory(cfg.entry_slots, entry_bits, 1, 1),
            ),
            Component::leaf("intercept_table", lib::cam(cfg.intercept_slots, 32, 8)),
            Component::leaf("mcr_regs", lib::flops(6 * xlen)),
            Component::leaf("mode_unit", lib::random_logic(300)),
            Component::leaf("replace_unit", lib::random_logic(420)),
            Component::leaf("march_decode", lib::random_logic(360)),
            Component::leaf("delegate_table", lib::memory(64, 7, 1, 1)),
            // Cross-stage interconnect: Metal taps instruction fetch
            // (MRAM mux), decode (replacement path), execute (march
            // operand buses), and the trap unit — routing-dominated.
            Component::leaf("stage_taps", crate::blocks::Cost::new(210, 3100)),
        ],
    )
}

/// The Metal-enabled processor: the baseline plus the Metal block.
#[must_use]
pub fn metal_processor(base: &ProcessorConfig, metal: &MetalHwConfig) -> Component {
    let mut core = baseline_processor(base);
    core.name = "metal_core".to_owned();
    core.children.push(metal_block(metal, base.xlen));
    core
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metal_strictly_adds() {
        let base = baseline_processor(&ProcessorConfig::paper());
        let metal = metal_processor(&ProcessorConfig::paper(), &MetalHwConfig::paper());
        assert!(metal.total().cells > base.total().cells);
        assert!(metal.total().wires > base.total().wires);
    }

    #[test]
    fn bigger_mram_costs_more() {
        let small = MetalHwConfig {
            mram_code_bytes: 512,
            ..MetalHwConfig::paper()
        };
        let big = MetalHwConfig {
            mram_code_bytes: 4096,
            ..MetalHwConfig::paper()
        };
        let cfg = ProcessorConfig::paper();
        assert!(
            metal_processor(&cfg, &big).total().cells > metal_processor(&cfg, &small).total().cells
        );
    }

    #[test]
    fn caches_dominate_the_baseline() {
        let base = baseline_processor(&ProcessorConfig::paper());
        let icache = base.find("icache").unwrap().total();
        let dcache = base.find("dcache").unwrap().total();
        let total = base.total();
        assert!(
            (icache.cells + dcache.cells) * 2 > total.cells,
            "flop-array memories should dominate standard-cell synthesis"
        );
    }
}
