//! Table 2 generation.

use crate::blocks::Cost;
use crate::processor::{baseline_processor, metal_processor, MetalHwConfig, ProcessorConfig};

/// Paper Table 2 values for comparison.
pub mod paper {
    /// Baseline wires.
    pub const BASELINE_WIRES: u64 = 170_264;
    /// Baseline cells.
    pub const BASELINE_CELLS: u64 = 180_546;
    /// Metal wires.
    pub const METAL_WIRES: u64 = 197_705;
    /// Metal cells.
    pub const METAL_CELLS: u64 = 206_384;
    /// Wire overhead (%).
    pub const WIRES_PCT: f64 = 16.1;
    /// Cell overhead (%).
    pub const CELLS_PCT: f64 = 14.3;
}

/// The reproduced Table 2.
#[derive(Clone, Copy, Debug)]
pub struct Table2 {
    /// Baseline processor cost.
    pub baseline: Cost,
    /// Metal processor cost.
    pub metal: Cost,
    /// Wire overhead in percent.
    pub wires_pct: f64,
    /// Cell overhead in percent.
    pub cells_pct: f64,
}

impl Table2 {
    /// The machine-readable form used by `reproduce` output.
    #[must_use]
    pub fn to_json(&self) -> metal_util::Json {
        use metal_util::Json;
        use std::collections::BTreeMap;
        let cost = |c: &Cost| {
            let mut obj = BTreeMap::new();
            obj.insert("cells".to_owned(), Json::Num(c.cells as f64));
            obj.insert("wires".to_owned(), Json::Num(c.wires as f64));
            Json::Obj(obj)
        };
        let mut obj = BTreeMap::new();
        obj.insert("baseline".to_owned(), cost(&self.baseline));
        obj.insert("metal".to_owned(), cost(&self.metal));
        obj.insert("wires_pct".to_owned(), Json::Num(self.wires_pct));
        obj.insert("cells_pct".to_owned(), Json::Num(self.cells_pct));
        Json::Obj(obj)
    }

    /// Renders the table in the paper's layout.
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "                 Baseline     Metal   %Change\n\
             Number of Wires {:>9} {:>9}   {:>5.1}%\n\
             Number of Cells {:>9} {:>9}   {:>5.1}%\n",
            self.baseline.wires,
            self.metal.wires,
            self.wires_pct,
            self.baseline.cells,
            self.metal.cells,
            self.cells_pct,
        )
    }
}

/// Computes Table 2 for the given geometries.
#[must_use]
pub fn table2(base: &ProcessorConfig, metal: &MetalHwConfig) -> Table2 {
    let baseline = baseline_processor(base).total();
    let with_metal = metal_processor(base, metal).total();
    let pct = |b: u64, m: u64| (m as f64 - b as f64) / b as f64 * 100.0;
    Table2 {
        baseline,
        metal: with_metal,
        wires_pct: pct(baseline.wires, with_metal.wires),
        cells_pct: pct(baseline.cells, with_metal.cells),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_paper_overheads() {
        let t = table2(&ProcessorConfig::paper(), &MetalHwConfig::paper());
        // The paper reports +14.3% cells and +16.1% wires. The absolute
        // counts are calibration, but the relative overhead must emerge
        // from the structure within a reasonable band.
        assert!(
            (t.cells_pct - paper::CELLS_PCT).abs() < 3.0,
            "cells overhead {:.1}% vs paper {:.1}%",
            t.cells_pct,
            paper::CELLS_PCT
        );
        assert!(
            (t.wires_pct - paper::WIRES_PCT).abs() < 3.0,
            "wires overhead {:.1}% vs paper {:.1}%",
            t.wires_pct,
            paper::WIRES_PCT
        );
        // Absolute scale: within 2x of the paper's counts.
        assert!(t.baseline.cells > paper::BASELINE_CELLS / 2);
        assert!(t.baseline.cells < paper::BASELINE_CELLS * 2);
    }

    #[test]
    fn render_contains_rows() {
        let t = table2(&ProcessorConfig::paper(), &MetalHwConfig::paper());
        let s = t.render();
        assert!(s.contains("Number of Wires"));
        assert!(s.contains("Number of Cells"));
        assert!(s.contains('%'));
    }
}
