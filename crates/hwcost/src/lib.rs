//! Structural hardware-cost model for the Metal processor.
//!
//! The paper evaluates hardware cost by synthesizing the prototype "with
//! and without Metal" using Yosys and a Synopsys standard-cell library
//! and counting wires and cells (Table 2): Metal costs **+16.1% wires**
//! and **+14.3% cells** on a 5-stage pipelined core.
//!
//! We have no HDL toolchain in this environment, so the substitution is
//! a *structural estimator*: the processor is described as a hierarchy
//! of parameterized blocks (flop arrays, register files, CAMs, ALUs,
//! muxes, random logic), each mapped to standard-cell counts with
//! constants representative of a NAND2-equivalent library. The headline
//! number — the **relative** cost of adding Metal — then emerges from
//! which blocks Metal adds (MRAM, the Metal register file, the entry
//! table, the intercept CAM, mode/replacement logic) versus what a
//! 5-stage core already contains.
//!
//! Absolute counts are calibrated to the paper's scale via
//! [`ProcessorConfig::paper`] (the paper does not publish its cache or
//! MRAM geometry; we pick sizes that reproduce its baseline cell count
//! and document them in EXPERIMENTS.md). The ablation API
//! ([`processor::metal_processor`] over custom [`MetalHwConfig`]) sweeps
//! MRAM size, entry-table slots, and intercept slots for experiment E8.

pub mod blocks;
pub mod library;
pub mod processor;
pub mod report;

pub use blocks::{Component, Cost};
pub use processor::{baseline_processor, metal_processor, MetalHwConfig, ProcessorConfig};
pub use report::{table2, Table2};
