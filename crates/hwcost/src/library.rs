//! The primitive block library: parameterized cell/wire cost functions.
//!
//! Constants approximate a NAND2-equivalent standard-cell mapping of the
//! kind Yosys emits against a generic Synopsys library: a flip-flop is
//! one sequential cell plus fan-in logic, memories synthesize to flop
//! arrays with read muxes and write decoders (no SRAM macros — exactly
//! why Table 2's counts are as large as they are for a small core).

use crate::blocks::Cost;

/// Cells per flip-flop bit (the DFF itself plus average enable/clock
/// gating share).
const CELLS_PER_FLOP: f64 = 1.35;
/// Wires per flop (D and Q nets amortized with clock distribution).
const WIRES_PER_FLOP: f64 = 1.25;
/// Cells per 2:1 mux bit.
const CELLS_PER_MUX2: f64 = 1.0;
/// Cells per full-adder bit.
const CELLS_PER_ADDER_BIT: f64 = 5.0;
/// Cells per comparator bit (XOR + tree share).
const CELLS_PER_CMP_BIT: f64 = 1.6;
/// Wires per combinational cell.
const WIRES_PER_CELL: f64 = 1.05;

fn comb(cells: f64) -> Cost {
    Cost {
        cells: cells.round() as u64,
        wires: (cells * WIRES_PER_CELL).round() as u64,
    }
}

/// An array of `bits` flip-flops.
#[must_use]
pub fn flops(bits: u64) -> Cost {
    Cost {
        cells: (bits as f64 * CELLS_PER_FLOP).round() as u64,
        wires: (bits as f64 * WIRES_PER_FLOP).round() as u64,
    }
}

/// A `words x width` memory synthesized to flops: storage, a write
/// decoder, and a read mux per read port.
#[must_use]
pub fn memory(words: u64, width: u64, read_ports: u64, write_ports: u64) -> Cost {
    let storage = flops(words * width);
    // Read: a words:1 mux per bit per port costs ~(words - 1) mux2 bits.
    let read = comb((words.saturating_sub(1) * width * read_ports) as f64 * CELLS_PER_MUX2);
    // Write: decoder (~2 cells per word) and enable fan-out per port.
    let write = comb((words * 2 * write_ports) as f64);
    storage + read + write
}

/// A content-addressable memory: `entries` of `tag_bits` with a
/// comparator each, plus `data_bits` of payload storage and a read mux.
#[must_use]
pub fn cam(entries: u64, tag_bits: u64, data_bits: u64) -> Cost {
    let tags = flops(entries * tag_bits);
    let compare = comb((entries * tag_bits) as f64 * CELLS_PER_CMP_BIT);
    let data = memory(entries, data_bits, 1, 1);
    let priority = comb(entries as f64 * 3.0);
    tags + compare + data + priority
}

/// An `inputs`:1 mux of `width` bits.
#[must_use]
pub fn mux(inputs: u64, width: u64) -> Cost {
    comb((inputs.saturating_sub(1) * width) as f64 * CELLS_PER_MUX2)
}

/// A `width`-bit carry-propagate adder.
#[must_use]
pub fn adder(width: u64) -> Cost {
    comb(width as f64 * CELLS_PER_ADDER_BIT)
}

/// A `width`-bit ALU (add/sub/logic/shift/compare).
#[must_use]
pub fn alu(width: u64) -> Cost {
    // Adder + logic unit + barrel shifter (log2(w) mux levels) + compare.
    let shifter = (width as f64) * (width as f64).log2() * CELLS_PER_MUX2;
    comb(
        width as f64 * CELLS_PER_ADDER_BIT
            + width as f64 * 3.0
            + shifter
            + width as f64 * CELLS_PER_CMP_BIT,
    )
}

/// A radix-4 multiplier/divider unit for `width` bits.
#[must_use]
pub fn muldiv(width: u64) -> Cost {
    // Partial-product rows + iterative divider datapath + control.
    comb(width as f64 * width as f64 * 0.55 + width as f64 * 30.0)
}

/// A `width`-bit equality/magnitude comparator.
#[must_use]
pub fn comparator(width: u64) -> Cost {
    comb(width as f64 * CELLS_PER_CMP_BIT)
}

/// An n-bit binary decoder (2^n outputs).
#[must_use]
pub fn decoder(in_bits: u64) -> Cost {
    comb((1u64 << in_bits) as f64 * 1.2)
}

/// Unstructured random logic measured in gate-equivalents.
#[must_use]
pub fn random_logic(gates: u64) -> Cost {
    comb(gates as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flops_scale_linearly() {
        let one = flops(100);
        let ten = flops(1000);
        assert!(ten.cells >= one.cells * 9 && ten.cells <= one.cells * 11);
        assert!(one.wires > 0);
    }

    #[test]
    fn memory_dominated_by_storage() {
        let m = memory(1024, 32, 1, 1);
        let s = flops(1024 * 32);
        assert!(m.cells > s.cells, "read/write logic adds cost");
        assert!(m.cells < s.cells * 3, "but storage dominates");
    }

    #[test]
    fn more_ports_cost_more() {
        let one = memory(32, 32, 1, 1);
        let two = memory(32, 32, 2, 1);
        assert!(two.cells > one.cells);
    }

    #[test]
    fn cam_more_expensive_than_plain_memory_per_entry() {
        let c = cam(32, 20, 32);
        let m = memory(32, 52, 1, 1);
        assert!(c.cells > m.cells, "comparators cost extra");
    }

    #[test]
    fn alu_bigger_than_adder() {
        assert!(alu(32).cells > adder(32).cells);
    }

    #[test]
    fn monotonicity() {
        assert!(memory(64, 32, 1, 1).cells > memory(32, 32, 1, 1).cells);
        assert!(cam(64, 20, 32).cells > cam(32, 20, 32).cells);
        assert!(decoder(6).cells > decoder(5).cells);
    }
}
