//! Cost arithmetic and the component hierarchy.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Mul};

/// Synthesis cost of a block: standard cells and wires.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Cost {
    /// Standard-cell count (NAND2-equivalent mapping).
    pub cells: u64,
    /// Wire count (driven nets).
    pub wires: u64,
}

impl Cost {
    /// A cost literal.
    #[must_use]
    pub const fn new(cells: u64, wires: u64) -> Cost {
        Cost { cells, wires }
    }
}

impl Add for Cost {
    type Output = Cost;
    fn add(self, rhs: Cost) -> Cost {
        Cost {
            cells: self.cells + rhs.cells,
            wires: self.wires + rhs.wires,
        }
    }
}

impl AddAssign for Cost {
    fn add_assign(&mut self, rhs: Cost) {
        *self = *self + rhs;
    }
}

impl Mul<u64> for Cost {
    type Output = Cost;
    fn mul(self, rhs: u64) -> Cost {
        Cost {
            cells: self.cells * rhs,
            wires: self.wires * rhs,
        }
    }
}

impl Sum for Cost {
    fn sum<I: Iterator<Item = Cost>>(iter: I) -> Cost {
        iter.fold(Cost::default(), Add::add)
    }
}

impl fmt::Display for Cost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cells / {} wires", self.cells, self.wires)
    }
}

/// A named block in the design hierarchy.
#[derive(Clone, Debug)]
pub struct Component {
    /// Instance name.
    pub name: String,
    /// Cost of this block's own logic (excluding children).
    pub local: Cost,
    /// Sub-blocks.
    pub children: Vec<Component>,
}

impl Component {
    /// A leaf block.
    #[must_use]
    pub fn leaf(name: &str, cost: Cost) -> Component {
        Component {
            name: name.to_owned(),
            local: cost,
            children: Vec::new(),
        }
    }

    /// A hierarchical block.
    #[must_use]
    pub fn node(name: &str, children: Vec<Component>) -> Component {
        Component {
            name: name.to_owned(),
            local: Cost::default(),
            children,
        }
    }

    /// Total cost including children.
    #[must_use]
    pub fn total(&self) -> Cost {
        self.local + self.children.iter().map(Component::total).sum()
    }

    /// A per-block breakdown, indented by depth.
    #[must_use]
    pub fn tree_report(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, 0);
        out
    }

    fn render(&self, out: &mut String, depth: usize) {
        use core::fmt::Write as _;
        let total = self.total();
        let _ = writeln!(
            out,
            "{:indent$}{:<28} {:>9} cells {:>9} wires",
            "",
            self.name,
            total.cells,
            total.wires,
            indent = depth * 2
        );
        for child in &self.children {
            child.render(out, depth + 1);
        }
    }

    /// Finds a child block by name (depth-first).
    #[must_use]
    pub fn find(&self, name: &str) -> Option<&Component> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_arithmetic() {
        let a = Cost::new(10, 12);
        let b = Cost::new(1, 2);
        assert_eq!(a + b, Cost::new(11, 14));
        assert_eq!(b * 3, Cost::new(3, 6));
        let total: Cost = [a, b, b].into_iter().sum();
        assert_eq!(total, Cost::new(12, 16));
    }

    #[test]
    fn hierarchy_totals() {
        let tree = Component::node(
            "top",
            vec![
                Component::leaf("a", Cost::new(5, 6)),
                Component::node("b", vec![Component::leaf("c", Cost::new(2, 1))]),
            ],
        );
        assert_eq!(tree.total(), Cost::new(7, 7));
        assert!(tree.find("c").is_some());
        assert!(tree.find("zzz").is_none());
        let report = tree.tree_report();
        assert!(report.contains("top"));
        assert!(report.contains("c"));
    }
}
