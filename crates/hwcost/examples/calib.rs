fn main() {
    let t = metal_hwcost::table2(
        &metal_hwcost::ProcessorConfig::paper(),
        &metal_hwcost::MetalHwConfig::paper(),
    );
    println!("{}", t.render());
    println!("paper: wires +16.1%, cells +14.3%; baseline 170264/180546");
}
