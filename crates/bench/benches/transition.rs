//! Criterion bench for E1: host-time cost of simulating the no-op
//! mroutine call loop under each dispatch design (the cycle-level
//! numbers come from `reproduce -- e1`).

use criterion::{criterion_group, criterion_main, Criterion};
use metal_bench::harness::{run_to_halt, std_config};
use metal_core::MetalBuilder;

fn call_loop(palcode: bool) {
    let mut builder = MetalBuilder::new().routine(0, "noop", "mexit");
    if palcode {
        builder = builder.palcode(0x20_0000);
    }
    let mut core = builder.build_core(std_config()).unwrap();
    run_to_halt(
        &mut core,
        "li s1, 200\nloop:\n menter 0\n addi s1, s1, -1\n bnez s1, loop\n ebreak",
        10_000_000,
    );
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("transition");
    group.bench_function("metal_noop_calls", |b| b.iter(|| call_loop(false)));
    group.bench_function("palcode_noop_calls", |b| b.iter(|| call_loop(true)));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
