//! Microbench for E1: host-time cost of simulating the no-op mroutine
//! call loop under each dispatch design (the cycle-level numbers come
//! from `reproduce -- e1`).

use metal_bench::harness::{run_to_halt, std_config};
use metal_bench::microbench::bench_fn;
use metal_core::MetalBuilder;

fn call_loop(palcode: bool) {
    let mut builder = MetalBuilder::new().routine(0, "noop", "mexit");
    if palcode {
        builder = builder.palcode(0x20_0000);
    }
    let mut core = builder.build_core(std_config()).unwrap();
    run_to_halt(
        &mut core,
        "li s1, 200\nloop:\n menter 0\n addi s1, s1, -1\n bnez s1, loop\n ebreak",
        10_000_000,
    );
}

fn main() {
    bench_fn("transition", "metal_noop_calls", || call_loop(false));
    bench_fn("transition", "palcode_noop_calls", || call_loop(true));
}
