//! Criterion bench for E3: simulating the TLB-refill workload.

use criterion::{criterion_group, criterion_main, Criterion};
use metal_bench::experiments::pagetable_exp;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("tlb_refill");
    group.sample_size(10);
    group.bench_function("all_variants", |b| {
        b.iter(pagetable_exp::measure);
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
