//! Microbench for E3: simulating the TLB-refill workload.

use metal_bench::experiments::pagetable_exp;
use metal_bench::microbench::{bench_fn, black_box};

fn main() {
    bench_fn("tlb_refill", "all_variants", || {
        black_box(pagetable_exp::measure());
    });
}
