//! Microbench for E5: simulating interrupt delivery.

use metal_bench::experiments::uintr_exp;
use metal_bench::microbench::{bench_fn, black_box};

fn main() {
    bench_fn("uintr", "report_slice", || {
        black_box(uintr_exp::report().len());
    });
}
