//! Criterion bench for E5: simulating interrupt delivery.

use criterion::{criterion_group, criterion_main, Criterion};
use metal_bench::experiments::uintr_exp;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("uintr");
    group.sample_size(10);
    group.bench_function("report_slice", |b| {
        b.iter(|| uintr_exp::report().len());
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
