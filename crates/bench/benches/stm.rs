//! Microbench for E4: simulating STM transactions.

use metal_bench::experiments::stm_exp;
use metal_bench::microbench::{bench_fn, black_box};

fn main() {
    bench_fn("stm", "rmw4_transactions", || {
        black_box(stm_exp::tx_cost(4));
    });
    bench_fn("stm", "conflict_rounds", || {
        black_box(stm_exp::abort_rate(50));
    });
}
