//! Criterion bench for E4: simulating STM transactions.

use criterion::{criterion_group, criterion_main, Criterion};
use metal_bench::experiments::stm_exp;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("stm");
    group.sample_size(10);
    group.bench_function("rmw4_transactions", |b| {
        b.iter(|| stm_exp::tx_cost(4));
    });
    group.bench_function("conflict_rounds", |b| {
        b.iter(|| stm_exp::abort_rate(50));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
