//! Simulator throughput: simulated instructions per host second for the
//! pipelined core and the functional reference interpreter.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use metal_bench::harness::std_config;
use metal_pipeline::{Core, Interp, NoHooks};

const LOOPS: u64 = 5_000;

fn program() -> Vec<u8> {
    let src = format!(
        "li s1, {LOOPS}\nloop:\n addi a0, a0, 1\n xor a1, a1, a0\n addi s1, s1, -1\n bnez s1, loop\n ebreak"
    );
    metal_asm::assemble_at(&src, 0)
        .unwrap()
        .iter()
        .flat_map(|w| w.to_le_bytes())
        .collect()
}

fn bench(c: &mut Criterion) {
    let image = program();
    let mut group = c.benchmark_group("sim_throughput");
    group.throughput(Throughput::Elements(LOOPS * 4));
    group.bench_function("pipelined_core", |b| {
        b.iter(|| {
            let mut core = Core::new(std_config(), NoHooks);
            core.load_segments([(0u32, image.as_slice())], 0);
            core.run(10_000_000)
        });
    });
    group.bench_function("reference_interp", |b| {
        b.iter(|| {
            let mut interp = Interp::new(std_config(), NoHooks);
            interp.load_segments([(0u32, image.as_slice())], 0);
            interp.run(10_000_000)
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
