//! Simulator throughput: simulated instructions per host second for the
//! pipelined core and the functional reference interpreter — plus the
//! disabled-tracing configuration, which must stay within noise of the
//! untraced core (the observability layer's zero-overhead claim).

use metal_bench::harness::std_config;
use metal_bench::microbench::{bench_fn, bench_pair, black_box};
use metal_pipeline::{Core, Interp, NoHooks, TracingHooks};

const LOOPS: u64 = 5_000;

fn program() -> Vec<u8> {
    let src = format!(
        "li s1, {LOOPS}\nloop:\n addi a0, a0, 1\n xor a1, a1, a0\n addi s1, s1, -1\n bnez s1, loop\n ebreak"
    );
    metal_asm::assemble_at(&src, 0)
        .unwrap()
        .iter()
        .flat_map(|w| w.to_le_bytes())
        .collect()
}

fn main() {
    let image = program();
    // Tracing hooks installed but the trace handle disabled: the hot
    // path sees one predictable branch per emission point. Interleaved
    // batches so host drift cancels out of the overhead estimate.
    let pair = bench_pair(
        "sim_throughput",
        "pipelined_core",
        || {
            let mut core = Core::new(std_config(), NoHooks);
            core.load_segments([(0u32, image.as_slice())], 0);
            black_box(core.run(10_000_000));
        },
        "pipelined_core_trace_disabled",
        || {
            let mut core = Core::new(std_config(), TracingHooks::new(NoHooks));
            core.load_segments([(0u32, image.as_slice())], 0);
            black_box(core.run(10_000_000));
        },
    );
    println!(
        "sim_throughput/trace_disabled_overhead: {:+.2}% (paired median)",
        pair.rel_diff * 100.0
    );
    bench_fn("sim_throughput", "reference_interp", || {
        let mut interp = Interp::new(std_config(), NoHooks);
        interp.load_segments([(0u32, image.as_slice())], 0);
        black_box(interp.run(10_000_000));
    });
}
