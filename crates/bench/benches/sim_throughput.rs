//! Simulator throughput: simulated instructions per host second for the
//! pipelined core and the functional reference interpreter — plus the
//! disabled-tracing configuration, which must stay within noise of the
//! untraced core (the observability layer's zero-overhead claim), and
//! the decode-cache A/B comparison on both engines (the shared
//! pre-decoded instruction cache must pay for itself).
//!
//! Results land in `BENCH_sim_throughput.json` (unified metrics format)
//! so successive runs can be diffed by machine.

use metal_bench::harness::std_config;
use metal_bench::microbench::{bench_fn, bench_pair, black_box, fast_mode, Pair};
use metal_pipeline::{Core, CoreConfig, Engine, Interp, NoHooks, TracingHooks};
use metal_trace::MetricsSnapshot;

const LOOPS: u64 = 5_000;

fn program() -> Vec<u8> {
    let src = format!(
        "li s1, {LOOPS}\nloop:\n addi a0, a0, 1\n xor a1, a1, a0\n addi s1, s1, -1\n bnez s1, loop\n ebreak"
    );
    metal_asm::assemble_at(&src, 0)
        .unwrap()
        .iter()
        .flat_map(|w| w.to_le_bytes())
        .collect()
}

/// One full simulation of the loop program on either engine.
fn sim_once<E: Engine<Hooks = NoHooks>>(config: CoreConfig, image: &[u8]) {
    let mut engine = E::new(config, NoHooks);
    engine.load_segments([(0u32, image)], 0);
    black_box(engine.run(10_000_000));
}

/// Decode-cache off vs on for one engine; returns the paired result.
fn decode_cache_ab<E: Engine<Hooks = NoHooks>>(image: &[u8]) -> Pair {
    let off = CoreConfig {
        decode_cache: false,
        ..std_config()
    };
    let on = std_config();
    let pair = bench_pair(
        "sim_throughput",
        &format!("{}_decode_cache_off", E::name()),
        || sim_once::<E>(off, image),
        &format!("{}_decode_cache_on", E::name()),
        || sim_once::<E>(on, image),
    );
    if !fast_mode() {
        println!(
            "sim_throughput/{}_decode_cache_speedup: {:.2}x (off {:.1} ns / on {:.1} ns)",
            E::name(),
            pair.a / pair.b,
            pair.a,
            pair.b
        );
    }
    pair
}

fn main() {
    let image = program();
    // Tracing hooks installed but the trace handle disabled: the hot
    // path sees one predictable branch per emission point. Interleaved
    // batches so host drift cancels out of the overhead estimate.
    let trace_pair = bench_pair(
        "sim_throughput",
        "pipelined_core",
        || {
            let mut core = Core::new(std_config(), NoHooks);
            core.load_segments([(0u32, image.as_slice())], 0);
            black_box(core.run(10_000_000));
        },
        "pipelined_core_trace_disabled",
        || {
            let mut core = Core::new(std_config(), TracingHooks::new(NoHooks));
            core.load_segments([(0u32, image.as_slice())], 0);
            black_box(core.run(10_000_000));
        },
    );
    if !fast_mode() {
        println!(
            "sim_throughput/trace_disabled_overhead: {:+.2}% (paired median)",
            trace_pair.rel_diff * 100.0
        );
    }
    let interp_ns = bench_fn("sim_throughput", "reference_interp", || {
        sim_once::<Interp<NoHooks>>(std_config(), &image);
    });
    // The decode cache A/B, on both engines through the same generic
    // setup: off is the A side, on is the B side, so speedup = a/b.
    let core_pair = decode_cache_ab::<Core<NoHooks>>(&image);
    let interp_pair = decode_cache_ab::<Interp<NoHooks>>(&image);
    if fast_mode() {
        return;
    }
    let mut snap = MetricsSnapshot::new();
    snap.set_gauge("bench.pipelined_core.ns_per_run", core_pair.b);
    snap.set_gauge("bench.reference_interp.ns_per_run", interp_ns);
    snap.set_gauge("bench.trace_disabled.rel_overhead", trace_pair.rel_diff);
    for (engine, pair) in [("pipeline", &core_pair), ("interp", &interp_pair)] {
        snap.set_gauge(
            &format!("bench.{engine}.decode_cache_off.ns_per_run"),
            pair.a,
        );
        snap.set_gauge(
            &format!("bench.{engine}.decode_cache_on.ns_per_run"),
            pair.b,
        );
        if pair.b > 0.0 {
            snap.set_gauge(
                &format!("bench.{engine}.decode_cache_speedup"),
                pair.a / pair.b,
            );
        }
    }
    // Workspace root, so successive runs diff the same file regardless
    // of the bench binary's working directory.
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_sim_throughput.json"
    );
    match std::fs::write(path, snap.to_json_string()) {
        Ok(()) => println!("sim_throughput: wrote BENCH_sim_throughput.json"),
        Err(e) => eprintln!("sim_throughput: cannot write {path}: {e}"),
    }
}
