//! Criterion bench for T2/E8: the hardware-cost model itself.

use criterion::{criterion_group, criterion_main, Criterion};
use metal_hwcost::{table2, MetalHwConfig, ProcessorConfig};

fn bench(c: &mut Criterion) {
    c.bench_function("hwcost_table2", |b| {
        b.iter(|| table2(&ProcessorConfig::paper(), &MetalHwConfig::paper()));
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
