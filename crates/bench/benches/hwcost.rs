//! Microbench for T2/E8: the hardware-cost model itself.

use metal_bench::microbench::{bench_fn, black_box};
use metal_hwcost::{table2, MetalHwConfig, ProcessorConfig};

fn main() {
    bench_fn("hwcost", "table2", || {
        black_box(table2(&ProcessorConfig::paper(), &MetalHwConfig::paper()));
    });
}
