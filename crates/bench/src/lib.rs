//! Benchmark harness: regenerates every table and figure of the paper.
//!
//! Each experiment in [`experiments`] corresponds to a row of the
//! per-experiment index in `DESIGN.md`:
//!
//! | id | artifact |
//! |----|----------|
//! | T1 | Table 1 — the Metal instructions |
//! | F1 | Figure 1 — workflow / hardware components |
//! | F2 | Figure 2 — kenter/kexit mroutines (plus a live syscall) |
//! | T2 | Table 2 — hardware cost (wires/cells) |
//! | E1 | mode-transition overhead: Metal vs PALcode vs trap |
//! | E2 | user-defined privilege levels: syscall + ring-ladder cost |
//! | E3 | custom page tables: TLB-refill latency, three designs |
//! | E4 | STM: throughput, abort rates, instruction counts |
//! | E5 | user-level interrupts: latency + polling CPU occupancy |
//! | E6 | in-process isolation: vault-gate cost |
//! | E7 | nested Metal: chained interception |
//! | E8 | hardware-cost ablation over MRAM geometry |
//! | E9 | shadow stack: call-heavy workload overhead |
//!
//! Run `cargo run -p metal-bench --bin reproduce -- all` to print
//! everything (or a single id, lower-cased, e.g. `-- e1`).

pub mod experiments;
pub mod harness;
pub mod microbench;

pub use harness::{cycles_of, run_to_halt, std_config};
