//! E2: user-defined privilege levels — transition costs.
//!
//! Paper §3.1: Metal implements the traditional kernel/user model in two
//! mroutines (Figure 2) and generalizes to arbitrary rings. Measured:
//! the null-syscall round trip (`kenter` + `kexit`) against the
//! conventional trap-based syscall on the baseline core, and the cost
//! of a full ring-call ladder as the number of rings grows.

use crate::harness::{per_op, run_to_halt, std_config};
use metal_core::{Metal, MetalBuilder};
use metal_ext::privilege;
use metal_pipeline::{Core, NoHooks};
use std::fmt::Write as _;

const CALLS: u64 = 200;

fn metal_machine() -> Core<Metal> {
    privilege::install(MetalBuilder::new())
        .build_core(std_config())
        .unwrap()
}

/// Null syscall via kenter/kexit: the kernel handler immediately kexits.
fn metal_syscall() -> f64 {
    // Syscall 0's handler at the table slot returns immediately.
    let program = |call: bool| {
        let body = if call {
            "li a0, 0\n menter 0"
        } else {
            "nop\n nop"
        };
        format!(
            r"
            la a0, kfault
            menter 2
            li s1, {CALLS}
        loop:
            {body}
            addi s1, s1, -1
            bnez s1, loop
            ebreak
        kfault:
            li a0, 0xdead
            ebreak
            # syscall table at 0x400: entry 0 -> knull
            .org 0x400
            .word knull
            .org 0x600
        knull:
            menter 1
            "
        )
    };
    let mut with = metal_machine();
    run_to_halt(&mut with, &program(true), 10_000_000);
    let with_cycles = with.state.perf.cycles;
    let mut without = metal_machine();
    run_to_halt(&mut without, &program(false), 10_000_000);
    per_op(with_cycles, without.state.perf.cycles, CALLS)
}

/// Null syscall via ecall/mret on the baseline core.
fn trap_syscall() -> f64 {
    let program = |call: bool| {
        let body = if call {
            "li a0, 0\n ecall"
        } else {
            "nop\n nop"
        };
        format!(
            r"
            li t0, 0x400
            csrw mtvec, t0
            li s1, {CALLS}
        loop:
            {body}
            addi s1, s1, -1
            bnez s1, loop
            ebreak
            .org 0x400
            # dispatch on the syscall number like a real kernel entry
            csrr t0, mepc
            addi t0, t0, 4
            csrw mepc, t0
            slli t0, a0, 2
            li t1, 0x500
            add t0, t0, t1
            lw t0, 0(t0)
            jr t0
            .org 0x500
            .word knull
        knull:
            mret
            "
        )
    };
    let mut with = Core::new(std_config(), NoHooks);
    run_to_halt(&mut with, &program(true), 10_000_000);
    let with_cycles = with.state.perf.cycles;
    let mut without = Core::new(std_config(), NoHooks);
    run_to_halt(&mut without, &program(false), 10_000_000);
    per_op(with_cycles, without.state.perf.cycles, CALLS)
}

/// Ring-gate round trip: the user ring calls ring 0's registered gate,
/// which immediately returns (`ring_call` + `ring_return`).
fn ring_gate_roundtrip() -> f64 {
    let program = |calls: u64| {
        format!(
            r"
            la a0, kfault
            menter 2
            li a0, 0
            la a1, gate0
            menter {sg}          # set_gate(ring 0, gate0)
            la ra, user
            menter 1             # kexit: drop to ring 1
        kfault:
            li a0, 0xdead
            ebreak
        gate0:
            menter {rr}          # ring_return
        user:
            li s1, {calls}
        loop:
            li a0, 0
            menter {rc}          # ring_call(0) -> gate0 -> back
            addi s1, s1, -1
            bnez s1, loop
            ebreak
            ",
            sg = privilege::entries::SET_GATE,
            rr = privilege::entries::RING_RETURN,
            rc = privilege::entries::RING_CALL,
        )
    };
    let mut with = metal_machine();
    run_to_halt(&mut with, &program(CALLS), 20_000_000);
    let with_cycles = with.state.perf.cycles;
    let mut without = metal_machine();
    run_to_halt(&mut without, &program(1), 20_000_000);
    per_op(with_cycles, without.state.perf.cycles, CALLS - 1)
}

/// The E2 report.
#[must_use]
pub fn report() -> String {
    let metal = metal_syscall();
    let trap = trap_syscall();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== E2: privilege-transition cost (cycles/round trip) ==\n"
    );
    let _ = writeln!(out, "{:<42} {:>10}", "design", "cyc");
    let _ = writeln!(
        out,
        "{:<42} {:>10.2}",
        "Metal kenter/kexit (paper Fig. 2)", metal
    );
    let _ = writeln!(
        out,
        "{:<42} {:>10.2}",
        "trap-based ecall/mret + dispatch", trap
    );
    let _ = writeln!(
        out,
        "\nring-call gate round trip (user ring -> ring 0 -> back): {:.2} cyc",
        ring_gate_roundtrip()
    );
    let _ = writeln!(
        out,
        "\npaper anchor: \"processor privilege switching involves setting\n\
         architectural state and returning control to the target entry point\n\
         regardless of the number of privilege levels\" — the Metal gate cost\n\
         is flat in the number of rings and avoids the trap machinery."
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metal_syscall_beats_trap_syscall() {
        let metal = metal_syscall();
        let trap = trap_syscall();
        assert!(
            metal < trap,
            "Metal {metal:.2} should beat trap {trap:.2} cycles"
        );
        assert!(metal > 0.0, "a syscall is not free: {metal:.2}");
    }

    #[test]
    fn ring_gate_cost_is_modest() {
        let cost = ring_gate_roundtrip();
        assert!(cost > 0.0 && cost < 120.0, "gate round trip {cost:.2}");
    }
}
