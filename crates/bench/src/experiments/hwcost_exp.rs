//! T2 + E8: hardware cost and its ablation.

use metal_hwcost::processor::MetalHwConfig;
use metal_hwcost::{baseline_processor, metal_processor, table2, ProcessorConfig};
use std::fmt::Write as _;

/// Table 2 in the paper's layout, with the paper's numbers alongside.
#[must_use]
pub fn table2_report() -> String {
    let t = table2(&ProcessorConfig::paper(), &MetalHwConfig::paper());
    let mut out = String::new();
    let _ = writeln!(out, "== Table 2: hardware resources for adding Metal ==\n");
    let _ = write!(out, "{}", t.render());
    let _ = writeln!(
        out,
        "\npaper:          Baseline     Metal   %Change\n\
         Number of Wires   170,264   197,705    16.1%\n\
         Number of Cells   180,546   206,384    14.3%"
    );
    let base = baseline_processor(&ProcessorConfig::paper());
    let metal = metal_processor(&ProcessorConfig::paper(), &MetalHwConfig::paper());
    let _ = writeln!(out, "\nbaseline breakdown:\n{}", base.tree_report());
    let _ = writeln!(
        out,
        "metal block breakdown:\n{}",
        metal
            .find("metal")
            .expect("metal block present")
            .tree_report()
    );
    out
}

/// E8: overhead as a function of the Metal geometry.
#[must_use]
pub fn ablation_report() -> String {
    let base_cfg = ProcessorConfig::paper();
    let mut out = String::new();
    let _ = writeln!(out, "== E8: hardware-cost ablation ==\n");
    let _ = writeln!(out, "MRAM code size sweep (cells overhead %):");
    let _ = writeln!(
        out,
        "{:<12} {:>10} {:>10}",
        "code bytes", "cells %", "wires %"
    );
    for code in [256u64, 512, 768, 1024, 2048, 4096, 8192] {
        let cfg = MetalHwConfig {
            mram_code_bytes: code,
            ..MetalHwConfig::paper()
        };
        let t = table2(&base_cfg, &cfg);
        let _ = writeln!(
            out,
            "{code:<12} {:>9.1}% {:>9.1}%",
            t.cells_pct, t.wires_pct
        );
    }
    let _ = writeln!(out, "\nentry-table slots sweep:");
    let _ = writeln!(out, "{:<12} {:>10}", "slots", "cells %");
    for slots in [16u64, 32, 64, 128] {
        let cfg = MetalHwConfig {
            entry_slots: slots,
            ..MetalHwConfig::paper()
        };
        let t = table2(&base_cfg, &cfg);
        let _ = writeln!(out, "{slots:<12} {:>9.1}%", t.cells_pct);
    }
    let _ = writeln!(out, "\ninterception slots sweep:");
    let _ = writeln!(out, "{:<12} {:>10}", "slots", "cells %");
    for slots in [4u64, 8, 16, 32] {
        let cfg = MetalHwConfig {
            intercept_slots: slots,
            ..MetalHwConfig::paper()
        };
        let t = table2(&base_cfg, &cfg);
        let _ = writeln!(out, "{slots:<12} {:>9.1}%", t.cells_pct);
    }
    let _ = writeln!(
        out,
        "\nnote: the paper calls Table 2 an upper bound because real cores\n\
         are bigger; the same effect appears here by growing the caches:"
    );
    let _ = writeln!(out, "{:<16} {:>10}", "cache KiB each", "cells %");
    for kib in [2u64, 4, 8, 16, 32] {
        let cfg = ProcessorConfig {
            icache_bytes: kib * 1024,
            dcache_bytes: kib * 1024,
            ..ProcessorConfig::paper()
        };
        let t = table2(&cfg, &MetalHwConfig::paper());
        let _ = writeln!(out, "{kib:<16} {:>9.1}%", t.cells_pct);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_shrinks_on_bigger_cores() {
        let small = table2(
            &ProcessorConfig {
                icache_bytes: 2048,
                dcache_bytes: 2048,
                ..ProcessorConfig::paper()
            },
            &MetalHwConfig::paper(),
        );
        let big = table2(
            &ProcessorConfig {
                icache_bytes: 32 * 1024,
                dcache_bytes: 32 * 1024,
                ..ProcessorConfig::paper()
            },
            &MetalHwConfig::paper(),
        );
        assert!(
            big.cells_pct < small.cells_pct / 3.0,
            "Table 2 is an upper bound: {:.1}% vs {:.1}%",
            big.cells_pct,
            small.cells_pct
        );
    }

    #[test]
    fn mram_size_drives_the_overhead() {
        let base = ProcessorConfig::paper();
        let small = table2(
            &base,
            &MetalHwConfig {
                mram_code_bytes: 256,
                ..MetalHwConfig::paper()
            },
        );
        let big = table2(
            &base,
            &MetalHwConfig {
                mram_code_bytes: 8192,
                ..MetalHwConfig::paper()
            },
        );
        assert!(big.cells_pct > small.cells_pct * 2.0);
    }

    #[test]
    fn reports_render() {
        assert!(table2_report().contains("Number of Cells"));
        assert!(ablation_report().contains("sweep"));
    }
}
