//! E4: software transactional memory via interception.
//!
//! Paper §3.3: transactions intercept loads and stores at runtime — no
//! compiler instrumentation — with TL2-style validation, in "under 100
//! instructions" of mcode. Measured: per-transaction cost against the
//! raw (non-transactional) loop, abort rate as two interleaved
//! transactions overlap more, and the kit's instruction counts.

use crate::harness::{run_to_halt, std_config};
use metal_core::{Metal, MetalBuilder};
use metal_ext::stm;
use metal_pipeline::Core;
use std::fmt::Write as _;

const LOCKTAB: u32 = 0x30_0000;
const TXS: u32 = 64;

fn stm_core() -> Core<Metal> {
    let mut core = stm::install(MetalBuilder::new())
        .build_core(std_config())
        .unwrap();
    core.hooks.mram.data_mut()[1028..1032].copy_from_slice(&LOCKTAB.to_le_bytes());
    core
}

/// A read-modify-write transaction over `words` words, repeated TXS
/// times. `transactional` toggles the STM wrapping.
fn rmw_program(words: u32, transactional: bool) -> String {
    let (start, commit) = if transactional {
        (
            format!("li a0, 0\n menter {}", stm::entries::TSTART),
            format!("menter {}", stm::entries::TCOMMIT),
        )
    } else {
        ("nop".to_owned(), "nop".to_owned())
    };
    format!(
        r"
        li s1, {TXS}
        li s2, 0x40000
    txloop:
        {start}
        li s3, {words}
        mv s4, s2
    body:
        lw t3, 0(s4)
        addi t3, t3, 1
        sw t3, 0(s4)
        addi s4, s4, 4
        addi s3, s3, -1
        bnez s3, body
        {commit}
        addi s1, s1, -1
        bnez s1, txloop
        ebreak
        "
    )
}

/// Cycles per transaction for a `words`-word RMW body, and the raw
/// equivalent.
#[must_use]
pub fn tx_cost(words: u32) -> (f64, f64) {
    let mut with = stm_core();
    run_to_halt(&mut with, &rmw_program(words, true), 100_000_000);
    let with_cycles = with.state.perf.cycles as f64 / f64::from(TXS);
    let mut without = stm_core();
    run_to_halt(&mut without, &rmw_program(words, false), 100_000_000);
    let without_cycles = without.state.perf.cycles as f64 / f64::from(TXS);
    (with_cycles, without_cycles)
}

/// Interleaved-conflict abort rate: T1 reads a probe word, T0 then runs
/// to commit writing either the same word (conflict) or a private word,
/// then T1 commits. `conflict_pct` of the rounds collide.
#[must_use]
pub fn abort_rate(conflict_pct: u32) -> f64 {
    let rounds: u32 = 50;
    let conflicts = rounds * conflict_pct / 100;
    let program = format!(
        r"
        li s1, {rounds}
        li s5, 0               # round counter
        li s6, 0               # aborts observed
        li s7, {conflicts}
        li s2, 0x40000         # shared word
        li s3, 0x50004         # private word (distinct lock slot)
    round:
        # --- T1 (ctx 1) starts, reads the shared word ---
        li a0, 1
        menter {tstart}
        lw s8, 0(s2)
        menter {tsuspend}
        # --- T0 (ctx 0) full transaction ---
        li a0, 0
        menter {tstart}
        blt s5, s7, collide
        lw t3, 0(s3)           # private: no conflict
        addi t3, t3, 1
        sw t3, 0(s3)
        j t0commit
    collide:
        lw t3, 0(s2)           # shared: conflicts with T1's read
        addi t3, t3, 1
        sw t3, 0(s2)
    t0commit:
        menter {tcommit}
        # --- T1 resumes and commits ---
        li a0, 1
        menter {tresume}
        addi s8, s8, 1
        sw s8, 0(s2)
        menter {tcommit}
        bnez a0, committed
        addi s6, s6, 1         # T1 aborted
    committed:
        addi s5, s5, 1
        blt s5, s1, round
        mv a0, s6
        ebreak
        ",
        tstart = stm::entries::TSTART,
        tsuspend = stm::entries::TSUSPEND,
        tresume = stm::entries::TRESUME,
        tcommit = stm::entries::TCOMMIT,
    );
    let mut core = stm_core();
    let aborts = run_to_halt(&mut core, &program, 500_000_000);
    f64::from(aborts) / f64::from(rounds) * 100.0
}

/// The E4 report.
#[must_use]
pub fn report() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== E4: software transactional memory ==\n");
    let _ = writeln!(out, "transaction cost (read-modify-write of N words):");
    let _ = writeln!(
        out,
        "{:<8} {:>14} {:>12} {:>10}",
        "words", "tx cyc", "raw cyc", "factor"
    );
    for words in [1u32, 2, 4, 8] {
        let (tx, raw) = tx_cost(words);
        let _ = writeln!(out, "{words:<8} {tx:>14.1} {raw:>12.1} {:>9.1}x", tx / raw);
    }
    let _ = writeln!(
        out,
        "\nabort rate vs conflict probability (interleaved TL2):"
    );
    let _ = writeln!(out, "{:<16} {:>12}", "conflict %", "abort %");
    for pct in [0u32, 25, 50, 75, 100] {
        let _ = writeln!(out, "{pct:<16} {:>12.0}", abort_rate(pct));
    }
    let _ = writeln!(out, "\nmroutine sizes (paper: \"under 100 instructions\"):");
    for (name, count) in stm::instruction_counts() {
        let _ = writeln!(out, "  {name:<10} {count:>4} insns");
    }
    let _ = writeln!(
        out,
        "\nnote: ~64% of tread/twrite is the 32-way register-dispatch stub\n\
         tables (2 insns/reg); the TL2 logic itself is ~230 instructions,\n\
         the same order as the paper's claim."
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abort_rate_tracks_conflicts() {
        assert_eq!(abort_rate(0), 0.0, "disjoint transactions never abort");
        let half = abort_rate(50);
        assert!((45.0..=55.0).contains(&half), "got {half}");
        assert_eq!(abort_rate(100), 100.0);
    }

    #[test]
    fn transactions_cost_more_than_raw_but_bounded() {
        let (tx, raw) = tx_cost(4);
        assert!(tx > raw, "instrumentation is not free");
        assert!(
            tx / raw < 60.0,
            "per-access emulation should stay bounded: {:.1}x",
            tx / raw
        );
    }
}
