//! E1: Metal-mode transition overhead.
//!
//! Paper claims: "When returning to the application, Metal achieves
//! virtually zero overhead" (§2.2) and "A no-op PALcode call takes
//! approximately 18 cycles on the Alpha … making it impractical to
//! encapsulate or emulate low latency instructions, unlike Metal" (§5).
//!
//! Measured: cycles per no-op mroutine call under four designs —
//! Metal (MRAM + decode replacement), Metal without decode replacement
//! (redirect flush, the ablation), PALcode-style warm (handler resident
//! in the I-cache), and PALcode-style cold (every call misses). Plus a
//! trap-based `ecall`/`mret` round trip for comparison, and a sweep of
//! the memory miss penalty for the cold PALcode case.

use crate::harness::{per_op, run_to_halt, std_config};
use metal_core::{Metal, MetalBuilder, MetalConfig, MramConfig};
use metal_pipeline::state::CoreConfig;
use metal_pipeline::{Core, NoHooks};
use std::fmt::Write as _;

const CALLS: u64 = 200;

fn call_program(calls: u64) -> String {
    format!("li s1, {calls}\nloop:\n menter 0\n addi s1, s1, -1\n bnez s1, loop\n ebreak")
}

fn nocall_program(calls: u64) -> String {
    format!("li s1, {calls}\nloop:\n nop\n addi s1, s1, -1\n bnez s1, loop\n ebreak")
}

fn metal_core(config: CoreConfig, decode_replacement: bool, palcode: bool) -> Core<Metal> {
    let mut builder = MetalBuilder::new()
        .config(MetalConfig {
            decode_replacement,
            ..MetalConfig::default()
        })
        .routine(0, "noop", "mexit");
    if palcode {
        builder = builder.palcode(0x20_0100); // off the loop's I-cache set
    }
    builder.build_core(config).unwrap()
}

fn cycles(core: &mut Core<Metal>, src: &str) -> u64 {
    run_to_halt(core, src, 10_000_000);
    core.state.perf.cycles
}

/// Cycles per no-op call for one variant: run the call loop and the
/// nop loop on identical cores and divide the difference.
fn per_call(decode_replacement: bool, palcode: bool, miss_penalty: u32) -> f64 {
    let mut config = std_config();
    config.icache.miss_penalty = miss_penalty;
    config.dcache.miss_penalty = miss_penalty;
    let mut with = metal_core(config, decode_replacement, palcode);
    let with_cycles = cycles(&mut with, &call_program(CALLS));
    let mut without = metal_core(config, decode_replacement, palcode);
    let without_cycles = cycles(&mut without, &nocall_program(CALLS));
    per_op(with_cycles, without_cycles, CALLS)
}

/// Cold-dispatch cost: a single call on a cold machine.
fn cold_call(palcode: bool, miss_penalty: u32) -> f64 {
    let mut config = std_config();
    config.icache.miss_penalty = miss_penalty;
    let mut with = metal_core(config, !palcode, palcode);
    let with_cycles = cycles(&mut with, "menter 0\n ebreak");
    let mut without = metal_core(config, !palcode, palcode);
    let without_cycles = cycles(&mut without, "nop\n ebreak");
    with_cycles as f64 - without_cycles as f64
}

/// Trap-based round trip (`ecall` to a vectored handler + `mret`).
fn trap_round_trip() -> f64 {
    let handler = r"
        .org 0x400
        csrr t0, mepc
        addi t0, t0, 4
        csrw mepc, t0
        mret
    ";
    let body = |op: &str| {
        format!(
            "li t0, 0x400\n csrw mtvec, t0\n li s1, {CALLS}\nloop:\n {op}\n \
             addi s1, s1, -1\n bnez s1, loop\n ebreak\n{handler}"
        )
    };
    let mut with = Core::new(std_config(), NoHooks);
    let with_cycles = {
        run_to_halt(&mut with, &body("ecall"), 10_000_000);
        with.state.perf.cycles
    };
    let mut without = Core::new(std_config(), NoHooks);
    let without_cycles = {
        run_to_halt(&mut without, &body("nop"), 10_000_000);
        without.state.perf.cycles
    };
    per_op(with_cycles, without_cycles, CALLS)
}

/// Structured results for tests and the report.
#[derive(Clone, Copy, Debug)]
pub struct TransitionResults {
    /// Metal with decode replacement (the design point).
    pub metal: f64,
    /// Metal without the decode-replacement fast path.
    pub metal_no_replace: f64,
    /// PALcode-style, handler warm in the I-cache.
    pub palcode_warm: f64,
    /// PALcode-style, cold dispatch.
    pub palcode_cold: f64,
    /// Trap-based ecall/mret round trip.
    pub trap: f64,
}

/// Runs all variants at the standard 15-cycle miss penalty.
#[must_use]
pub fn measure() -> TransitionResults {
    TransitionResults {
        metal: per_call(true, false, 15),
        metal_no_replace: per_call(false, false, 15),
        // PALcode has no decode-replacement hardware — that is Metal's
        // addition — so the baseline pays the full redirect.
        palcode_warm: per_call(false, true, 15),
        palcode_cold: cold_call(true, 15),
        trap: trap_round_trip(),
    }
}

/// The E1 report.
#[must_use]
pub fn report() -> String {
    let r = measure();
    let mut out = String::new();
    let _ = writeln!(out, "== E1: no-op mroutine call cost (cycles/call) ==\n");
    let _ = writeln!(out, "{:<38} {:>10}", "variant", "cyc/call");
    let _ = writeln!(
        out,
        "{:<38} {:>10.2}",
        "Metal (MRAM + decode replacement)", r.metal
    );
    let _ = writeln!(
        out,
        "{:<38} {:>10.2}",
        "Metal w/o decode replacement", r.metal_no_replace
    );
    let _ = writeln!(
        out,
        "{:<38} {:>10.2}",
        "PALcode-style (warm I-cache)", r.palcode_warm
    );
    let _ = writeln!(
        out,
        "{:<38} {:>10.2}",
        "PALcode-style (cold dispatch)", r.palcode_cold
    );
    let _ = writeln!(out, "{:<38} {:>10.2}", "trap-based (ecall + mret)", r.trap);
    let _ = writeln!(
        out,
        "\npaper anchors: Metal ~0 (\"virtually zero overhead\", §2.2);\n\
         Alpha PALcode no-op call ~18 cycles (§5).\n\
         (A Metal value at or below 0 is the decode-stage replacement\n\
         taken to its limit: menter and the no-op mroutine's mexit both\n\
         fold into replacement slots, so the loop runs as if the call\n\
         were not there — one slot cheaper than the baseline's nop.)"
    );
    let _ = writeln!(out, "\ncold PALcode dispatch vs memory miss penalty:");
    let _ = writeln!(out, "{:<14} {:>10}", "miss penalty", "cyc/call");
    for penalty in [5u32, 10, 15, 25, 40, 50] {
        let _ = writeln!(out, "{penalty:<14} {:>10.2}", cold_call(true, penalty));
    }
    let _ = writeln!(
        out,
        "\nMRAM fetch-latency ablation (collocation is the claim: latency 1):"
    );
    let _ = writeln!(out, "{:<14} {:>10}", "MRAM latency", "cyc/call");
    for latency in [1u32, 2, 4, 8] {
        let _ = writeln!(out, "{latency:<14} {:>10.2}", mram_latency_call(latency));
    }
    out
}

/// Cycles per no-op call with a de-collocated MRAM (`fetch_latency > 1`).
fn mram_latency_call(latency: u32) -> f64 {
    let build = || {
        MetalBuilder::new()
            .config(MetalConfig {
                mram: MramConfig {
                    fetch_latency: latency,
                    ..MramConfig::default()
                },
                ..MetalConfig::default()
            })
            .routine(0, "noop", "mexit")
            .build_core(std_config())
            .unwrap()
    };
    let mut with = build();
    let with_cycles = cycles(&mut with, &call_program(CALLS));
    let mut without = build();
    let without_cycles = cycles(&mut without, &nocall_program(CALLS));
    per_op(with_cycles, without_cycles, CALLS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper() {
        let r = measure();
        // Metal: virtually zero overhead.
        assert!(
            (-2.0..=1.0).contains(&r.metal),
            "Metal call should be ~free, got {:.2}",
            r.metal
        );
        // Removing decode replacement costs real cycles.
        assert!(r.metal_no_replace > r.metal + 1.0);
        // Cold PALcode dispatch is in the Alpha's ~18-cycle regime.
        assert!(
            r.palcode_cold > 10.0 && r.palcode_cold < 60.0,
            "cold PALcode should cost tens of cycles, got {:.2}",
            r.palcode_cold
        );
        // Trap path costs more than Metal.
        assert!(
            r.trap > r.metal + 4.0,
            "trap {:.2} vs metal {:.2}",
            r.trap,
            r.metal
        );
    }
}
