//! E3: custom page tables — TLB-refill cost under three designs.
//!
//! Paper §3.2: "the proximity of MRAM to the instruction fetch unit
//! enables fast exception dispatching with costs similar to microcode
//! implementations. This greatly closes the performance gap between
//! hardware and software managed TLBs."
//!
//! Measured: a guest touches `PAGES` data pages cyclically with a TLB
//! far smaller than the working set, so every touch misses. The same
//! radix page table and the same walker mcode run under:
//!
//! * **hardware walker** — the baseline core's HwWalker mode;
//! * **Metal** — the refill mroutine dispatched from MRAM;
//! * **PALcode-style** — the *same* mroutine dispatched from main
//!   memory (the conventional software-managed-TLB design).

use crate::harness::{run_to_halt, std_config};
use metal_core::{Metal, MetalBuilder};
use metal_ext::pagetable::{self, GuestPageTable};
use metal_mem::tlb::Pte;
use metal_mem::TlbConfig;
use metal_pipeline::state::{CoreConfig, TranslationMode};
use metal_pipeline::{Core, NoHooks};
use std::fmt::Write as _;

/// Data pages in the working set.
const PAGES: u32 = 32;
/// Page touches per run.
const TOUCHES: u32 = 512;
/// Base VA of the data working set.
const DATA_VA: u32 = 0x10_0000;

fn tlb_config() -> TlbConfig {
    TlbConfig {
        entries: 8, // far smaller than the working set: every touch misses
        keys: 16,
    }
}

fn core_config() -> CoreConfig {
    CoreConfig {
        tlb: tlb_config(),
        ..std_config()
    }
}

/// The touch loop: cycle through the pages TOUCHES times.
fn workload() -> String {
    format!(
        r"
        li s1, {touches}
        li s2, 0                 # page index
        li s3, {base:#x}
    loop:
        slli t1, s2, 12
        add t1, t1, s3
        lw t2, 0(t1)             # touch (misses the tiny TLB)
        addi s2, s2, 1
        li t1, {pages}
        blt s2, t1, nowrap
        li s2, 0
    nowrap:
        addi s1, s1, -1
        bnez s1, loop
        ebreak
        ",
        touches = TOUCHES,
        base = DATA_VA,
        pages = PAGES,
    )
}

/// Builds the page table in a core's RAM: identity map for the code
/// pages, and the data working set mapped to distinct frames.
fn build_tables(ram: &mut metal_mem::PhysMemory) -> u32 {
    let mut pt = GuestPageTable::new(ram, 0x40_0000, 0x50_0000);
    pt.identity_map(ram, 0, 16, Pte::R | Pte::W | Pte::X);
    for i in 0..PAGES {
        pt.map(
            ram,
            DATA_VA + i * 0x1000,
            0x20_0000 + i * 0x1000,
            Pte::R | Pte::W,
        );
    }
    pt.root
}

fn metal_variant(palcode: bool) -> u64 {
    let mut builder = pagetable::install(MetalBuilder::new());
    if palcode {
        builder = builder.palcode(0x60_0000);
    }
    let mut core: Core<Metal> = builder.build_core(core_config()).unwrap();
    let root = build_tables(&mut core.state.bus.ram);
    core.hooks.mram.data_mut()[64..68].copy_from_slice(&root.to_le_bytes());
    core.state.translation = TranslationMode::SoftTlb;
    run_to_halt(&mut core, &workload(), 100_000_000);
    core.state.perf.cycles
}

fn hw_walker_variant() -> u64 {
    let mut core = Core::new(core_config(), NoHooks);
    let root = build_tables(&mut core.state.bus.ram);
    core.state.translation = TranslationMode::HwWalker { root };
    run_to_halt(&mut core, &workload(), 100_000_000);
    core.state.perf.cycles
}

/// Ideal lower bound: the same loop with translation off.
fn bare_variant() -> u64 {
    let mut core = Core::new(core_config(), NoHooks);
    run_to_halt(&mut core, &workload(), 100_000_000);
    core.state.perf.cycles
}

/// Structured results.
#[derive(Clone, Copy, Debug)]
pub struct PagetableResults {
    /// Translation off (lower bound).
    pub bare: u64,
    /// Hardware page-table walker.
    pub hw: u64,
    /// Metal refill mroutine (MRAM dispatch).
    pub metal: u64,
    /// Same mroutine, PALcode-style dispatch.
    pub palcode: u64,
    /// Refills each variant performed (same workload: same count).
    pub refills: u64,
}

/// Runs all variants.
#[must_use]
pub fn measure() -> PagetableResults {
    let refills = u64::from(TOUCHES); // every touch misses the 8-entry TLB
    PagetableResults {
        bare: bare_variant(),
        hw: hw_walker_variant(),
        metal: metal_variant(false),
        palcode: metal_variant(true),
        refills,
    }
}

/// The E3 report.
#[must_use]
pub fn report() -> String {
    let r = measure();
    let per = |cycles: u64| (cycles as f64 - r.bare as f64) / r.refills as f64;
    let mut out = String::new();
    let _ = writeln!(out, "== E3: TLB-refill cost, custom page tables ==\n");
    let _ = writeln!(
        out,
        "workload: {TOUCHES} touches over {PAGES} pages, 8-entry TLB (every touch refills)\n"
    );
    let _ = writeln!(
        out,
        "{:<40} {:>12} {:>14}",
        "design", "total cyc", "cyc/refill"
    );
    let _ = writeln!(
        out,
        "{:<40} {:>12} {:>14}",
        "no translation (lower bound)", r.bare, "-"
    );
    let _ = writeln!(
        out,
        "{:<40} {:>12} {:>14.1}",
        "hardware walker",
        r.hw,
        per(r.hw)
    );
    let _ = writeln!(
        out,
        "{:<40} {:>12} {:>14.1}",
        "Metal mroutine walker (MRAM)",
        r.metal,
        per(r.metal)
    );
    let _ = writeln!(
        out,
        "{:<40} {:>12} {:>14.1}",
        "same mroutine, PALcode dispatch",
        r.palcode,
        per(r.palcode)
    );
    let _ = writeln!(
        out,
        "\npaper anchor: Metal \"greatly closes the performance gap between\n\
         hardware and software managed TLBs\" — the Metal column should sit\n\
         near the hardware walker, the PALcode column well above both.\n\
         gap closure: hw->palcode = {:.1} cyc, hw->metal = {:.1} cyc ({:.0}% closed)",
        per(r.palcode) - per(r.hw),
        per(r.metal) - per(r.hw),
        (1.0 - (per(r.metal) - per(r.hw)) / (per(r.palcode) - per(r.hw))) * 100.0
    );
    let _ = writeln!(out, "\nTLB-size sweep (Metal walker, cyc/touch):");
    let _ = writeln!(out, "{:<12} {:>12}", "entries", "cyc/touch");
    for entries in [4usize, 8, 16, 32, 64] {
        let mut config = core_config();
        config.tlb = TlbConfig { entries, keys: 16 };
        let mut core: Core<Metal> = pagetable::install(MetalBuilder::new())
            .build_core(config)
            .unwrap();
        let root = build_tables(&mut core.state.bus.ram);
        core.hooks.mram.data_mut()[64..68].copy_from_slice(&root.to_le_bytes());
        core.state.translation = TranslationMode::SoftTlb;
        run_to_halt(&mut core, &workload(), 100_000_000);
        let _ = writeln!(
            out,
            "{entries:<12} {:>12.1}",
            core.state.perf.cycles as f64 / f64::from(TOUCHES)
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metal_closes_the_gap() {
        let r = measure();
        assert!(r.hw < r.metal, "hardware refill is the floor");
        assert!(
            r.metal < r.palcode,
            "MRAM dispatch must beat main-memory dispatch: {} vs {}",
            r.metal,
            r.palcode
        );
        // "Greatly closes the gap": Metal recovers most of the
        // hw-vs-palcode difference.
        let gap = r.palcode as f64 - r.hw as f64;
        let remaining = r.metal as f64 - r.hw as f64;
        assert!(
            remaining < gap * 0.75,
            "Metal should close most of the gap: remaining {remaining:.0} of {gap:.0}"
        );
    }
}
