//! The experiment implementations, one module per table/figure.

pub mod hwcost_exp;
pub mod isolation_exp;
pub mod nested_exp;
pub mod pagetable_exp;
pub mod privilege_exp;
pub mod shadow_exp;
pub mod static_artifacts;
pub mod stm_exp;
pub mod transition;
pub mod uintr_exp;

/// Every experiment id the `reproduce` binary accepts.
pub const ALL: &[&str] = &[
    "table1", "figure1", "figure2", "table2", "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9",
];

/// Runs one experiment by id, returning its text report.
#[must_use]
pub fn run(id: &str) -> Option<String> {
    Some(match id {
        "table1" => static_artifacts::table1(),
        "figure1" => static_artifacts::figure1(),
        "figure2" => static_artifacts::figure2(),
        "table2" => hwcost_exp::table2_report(),
        "e1" | "e1-transition" => transition::report(),
        "e2" | "e2-privilege" => privilege_exp::report(),
        "e3" | "e3-pagetable" => pagetable_exp::report(),
        "e4" | "e4-stm" => stm_exp::report(),
        "e5" | "e5-uintr" => uintr_exp::report(),
        "e6" | "e6-isolation" => isolation_exp::report(),
        "e7" | "e7-nested" => nested_exp::report(),
        "e8" | "e8-hwcost-ablation" => hwcost_exp::ablation_report(),
        "e9" | "e9-shadowstack" => shadow_exp::report(),
        _ => return None,
    })
}
