//! Table 1, Figure 1, and Figure 2: artifacts generated from the live
//! implementation rather than measured.

use metal_ext::privilege;
use metal_hwcost::{metal_processor, MetalHwConfig, ProcessorConfig};
use std::fmt::Write as _;

/// Table 1: the Metal instructions, from the ISA definition.
#[must_use]
pub fn table1() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== Table 1: New Metal instructions ==\n");
    let _ = writeln!(
        out,
        "{:<12} {:<12} semantics",
        "instruction", "available in"
    );
    for (mnemonic, mode, semantics) in metal_isa::metal::instruction_table() {
        let _ = writeln!(out, "{mnemonic:<12} {mode:<12} {semantics}");
    }
    let _ = writeln!(
        out,
        "\nmarch.* sub-operations: {}",
        metal_isa::MarchOp::all()
            .iter()
            .map(|op| op.mnemonic())
            .collect::<Vec<_>>()
            .join(", ")
    );
    out
}

/// Figure 1: the component inventory of the Metal-enabled core (the
/// paper's figure shows the workflow and added hardware; we print the
/// live block hierarchy from the hardware model).
#[must_use]
pub fn figure1() -> String {
    let core = metal_processor(&ProcessorConfig::paper(), &MetalHwConfig::paper());
    let mut out = String::new();
    let _ = writeln!(out, "== Figure 1: Metal workflow and added components ==\n");
    let _ = writeln!(
        out,
        "workflow: boot-time loader assembles + verifies mroutines -> MRAM;\n\
         menter (decode stage) replaces itself with mroutine[0] fetched from\n\
         MRAM collocated with instruction fetch; mexit replaces itself with\n\
         the next instruction of the original stream; exceptions, interrupts\n\
         and intercepted instructions enter mroutines the same way.\n"
    );
    let _ = writeln!(out, "block hierarchy (from the hardware-cost model):\n");
    let _ = write!(out, "{}", core.tree_report());
    out
}

/// Figure 2: the kenter/kexit mroutines, from the live privilege kit,
/// exactly as installed (the paper's listing).
#[must_use]
pub fn figure2() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Figure 2: system call entry (kenter) and exit (kexit) mroutines ==\n"
    );
    let _ = writeln!(out, "# kenter (entry {}):", privilege::entries::KENTER);
    for line in privilege::kenter_src().lines() {
        let trimmed = line.trim();
        if !trimmed.is_empty() {
            let _ = writeln!(out, "    {trimmed}");
        }
    }
    let _ = writeln!(out, "\n# kexit (entry {}):", privilege::entries::KEXIT);
    for line in privilege::kexit_src().lines() {
        let trimmed = line.trim();
        if !trimmed.is_empty() {
            let _ = writeln!(out, "    {trimmed}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_lists_all_metal_instructions() {
        let t = table1();
        for mnemonic in ["menter", "mexit", "rmr", "wmr", "mld", "mst"] {
            assert!(t.contains(mnemonic), "missing {mnemonic}");
        }
    }

    #[test]
    fn figure1_shows_metal_blocks() {
        let f = figure1();
        for block in ["mram_code", "mreg_file", "entry_table", "intercept_table"] {
            assert!(f.contains(block), "missing {block}");
        }
    }

    #[test]
    fn figure2_shows_both_routines() {
        let f = figure2();
        assert!(f.contains("kenter"));
        assert!(f.contains("kexit"));
        assert!(f.contains("mexit"));
    }
}
