//! E5: user-level interrupts — delivery latency and CPU occupancy.
//!
//! Paper §3.4: DPDK/SPDK-style kernel-bypass I/O today *polls*,
//! consuming whole cores; user-level interrupts would notify the
//! application instead. Measured:
//!
//! * packet delivery latency (device IRQ → userspace ack) for Metal
//!   user-level interrupts vs. the conventional kernel-mediated path
//!   (trap to kernel, kernel posts to the user, user acks);
//! * CPU occupancy (useful-work fraction) for polling vs.
//!   interrupt-driven guests across packet inter-arrival times.

use crate::harness::std_config;
use metal_core::{Metal, MetalBuilder};
use metal_ext::uintr;
use metal_mem::devices::{map, Nic, NicHandle};
use metal_pipeline::{Core, NoHooks};
use std::fmt::Write as _;

const PACKETS: u64 = 16;

fn schedule(handle: &NicHandle, period: u64) {
    for i in 0..PACKETS {
        handle.schedule(1000 + i * period, &b"\x01\x00\x00\x00"[..]);
    }
}

fn load_and_run_uncapped<H: metal_pipeline::Hooks>(core: &mut Core<H>, src: &str) -> (u32, u64) {
    let words = metal_asm::assemble_at(src, 0).unwrap_or_else(|e| panic!("{e}"));
    let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
    core.load_segments([(0u32, bytes.as_slice())], 0);
    match core.run(200_000_000) {
        Some(metal_pipeline::HaltReason::Ebreak { code }) => (code, core.state.perf.cycles),
        other => panic!("did not complete: {other:?}"),
    }
}

/// Metal user-level interrupts: the userspace handler acks directly.
/// Returns (mean latency, work-loop iterations, total cycles).
fn metal_uintr(period: u64) -> (f64, u64, u64) {
    let mut core: Core<Metal> = uintr::install(MetalBuilder::new(), map::NIC_IRQ)
        .build_core(std_config())
        .unwrap();
    let (nic, handle) = Nic::new();
    core.state
        .bus
        .attach(map::NIC_BASE, map::WINDOW_LEN, Box::new(nic));
    schedule(&handle, period);
    let src = format!(
        r"
        li t0, 2
        csrw mie, t0
        csrrsi zero, mstatus, 8
        la a0, handler
        menter {reg}
        li s1, 0               # packets handled
        li s2, 0               # useful work counter
    work:
        addi s2, s2, 1         # 'useful work'
        li t0, {packets}
        blt s1, t0, work
        mv a0, s2
        ebreak
    handler:
        li s4, 0xF0000200
        li s5, 1
        sw s5, 12(s4)          # ack
        addi s1, s1, 1
        menter {uret}
        ",
        reg = uintr::entries::REGISTER,
        uret = uintr::entries::URET,
        packets = PACKETS,
    );
    let (work, cycles) = load_and_run_uncapped(&mut core, &src);
    let lat = mean_latency(&handle);
    (lat, u64::from(work), cycles)
}

/// Kernel-mediated: the interrupt traps to the kernel (mtvec), which
/// acks the device and posts a completion the user code consumes.
fn kernel_mediated(period: u64) -> (f64, u64, u64) {
    let mut core = Core::new(std_config(), NoHooks);
    let (nic, handle) = Nic::new();
    core.state
        .bus
        .attach(map::NIC_BASE, map::WINDOW_LEN, Box::new(nic));
    schedule(&handle, period);
    let src = format!(
        r"
        li t0, 0x400
        csrw mtvec, t0
        li t0, 2
        csrw mie, t0
        csrrsi zero, mstatus, 8
        li s1, 0
        li s2, 0
        li s6, 0x7000          # completion mailbox
        sw zero, 0(s6)
    work:
        addi s2, s2, 1
        lw t0, 0(s6)           # user polls the kernel's mailbox
        beqz t0, work_cont
        sw zero, 0(s6)
        li t0, 0xF0000200
        li t1, 1
        sw t1, 12(t0)          # userspace processes + acks the packet
        csrrsi zero, mie, 2    # unmask the line
        addi s1, s1, 1
    work_cont:
        li t0, {packets}
        blt s1, t0, work
        mv a0, s2
        ebreak

        # --- kernel interrupt handler: a real kernel entry saves the
        # whole trapframe before touching anything, dispatches, posts
        # the completion, and restores on the way out ---
        .org 0x400
        csrw mscratch, t0
        li t0, 0x7100
        sw ra, 0(t0)
        sw t1, 4(t0)
        sw t2, 8(t0)
        sw a0, 12(t0)
        sw a1, 16(t0)
        sw a2, 20(t0)
        sw a3, 24(t0)
        sw a4, 28(t0)
        sw a5, 32(t0)
        sw t3, 36(t0)
        sw t4, 40(t0)
        sw t5, 44(t0)
        sw t6, 48(t0)
        csrrci zero, mie, 2    # mask the line until userspace acks
        li t1, 0x7000
        li t2, 1
        sw t2, 0(t1)           # post the completion
        li t0, 0x7100
        lw ra, 0(t0)
        lw t1, 4(t0)
        lw t2, 8(t0)
        lw a0, 12(t0)
        lw a1, 16(t0)
        lw a2, 20(t0)
        lw a3, 24(t0)
        lw a4, 28(t0)
        lw a5, 32(t0)
        lw t3, 36(t0)
        lw t4, 40(t0)
        lw t5, 44(t0)
        lw t6, 48(t0)
        csrr t0, mscratch
        mret
        ",
        packets = PACKETS,
    );
    let (work, cycles) = load_and_run_uncapped(&mut core, &src);
    let lat = mean_latency(&handle);
    (lat, u64::from(work), cycles)
}

/// Pure polling (the DPDK model): no interrupts, the user spins on the
/// device status register.
fn polling(period: u64) -> (f64, u64, u64) {
    let mut core = Core::new(std_config(), NoHooks);
    let (nic, handle) = Nic::new();
    core.state
        .bus
        .attach(map::NIC_BASE, map::WINDOW_LEN, Box::new(nic));
    schedule(&handle, period);
    let src = format!(
        r"
        li s1, 0
        li s2, 0
        li s4, 0xF0000200
    work:
        lw t0, 0(s4)           # poll STATUS
        beqz t0, work_cont
        li t1, 1
        sw t1, 12(s4)          # ack
        addi s1, s1, 1
    work_cont:
        addi s2, s2, 1
        li t0, {packets}
        blt s1, t0, work
        mv a0, s2
        ebreak
        ",
        packets = PACKETS,
    );
    let (work, cycles) = load_and_run_uncapped(&mut core, &src);
    let lat = mean_latency(&handle);
    (lat, u64::from(work), cycles)
}

fn mean_latency(handle: &NicHandle) -> f64 {
    let completions = handle.take_completions();
    assert_eq!(completions.len() as u64, PACKETS, "all packets acked");
    completions.iter().map(|(a, d)| (d - a) as f64).sum::<f64>() / completions.len() as f64
}

/// The E5 report.
#[must_use]
pub fn report() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== E5: user-level interrupts ==\n");
    let _ = writeln!(
        out,
        "delivery latency, cycles from arrival to userspace ack ({PACKETS} packets):"
    );
    let _ = writeln!(
        out,
        "{:<10} {:>14} {:>16} {:>12}",
        "period", "Metal uintr", "kernel-mediated", "polling"
    );
    for period in [500u64, 2_000, 10_000] {
        let (m, _, _) = metal_uintr(period);
        let (k, _, _) = kernel_mediated(period);
        let (p, _, _) = polling(period);
        let _ = writeln!(out, "{period:<10} {m:>14.0} {k:>16.0} {p:>12.0}");
    }
    let _ = writeln!(
        out,
        "\nCPU occupancy: useful-work iterations per 1000 cycles (higher is\n\
         better; polling burns its budget on the device loop — the paper's\n\
         DPDK motivation):"
    );
    let _ = writeln!(
        out,
        "{:<10} {:>14} {:>12}",
        "period", "Metal uintr", "polling"
    );
    for period in [500u64, 2_000, 10_000] {
        let (_, mw, mc) = metal_uintr(period);
        let (_, pw, pc) = polling(period);
        let _ = writeln!(
            out,
            "{period:<10} {:>14.1} {:>12.1}",
            mw as f64 / mc as f64 * 1000.0,
            pw as f64 / pc as f64 * 1000.0
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metal_latency_beats_kernel_mediated() {
        let (metal, _, _) = metal_uintr(2_000);
        let (kernel, _, _) = kernel_mediated(2_000);
        assert!(
            metal < kernel,
            "direct upcall {metal:.0} vs kernel path {kernel:.0}"
        );
    }

    #[test]
    fn interrupt_driven_does_more_useful_work_per_cycle() {
        // At sparse packet rates, the interrupt-driven guest's work loop
        // is shorter per iteration (no device poll), so its useful-work
        // density is higher — the DPDK argument.
        let (_, mw, mc) = metal_uintr(10_000);
        let (_, pw, pc) = polling(10_000);
        let metal_density = mw as f64 / mc as f64;
        let poll_density = pw as f64 / pc as f64;
        assert!(
            metal_density > poll_density,
            "interrupts {metal_density:.4} vs polling {poll_density:.4}"
        );
    }
}
