//! E6: in-process isolation — vault-gate crossing cost.
//!
//! Paper §3.1: in-process isolation today needs CFI around the
//! transition code; Metal encapsulates the transition in an mroutine.
//! Measured: the cost of computing a keyed digest through the vault
//! gate vs. an ordinary function call computing the same digest on an
//! *unprotected* secret — the price of the protection.

use crate::harness::{per_op, run_to_halt, std_config};
use metal_core::{Metal, MetalBuilder};
use metal_ext::isolation;
use metal_pipeline::state::TranslationMode;
use metal_pipeline::Core;
use std::fmt::Write as _;

const CALLS: u64 = 200;
const VAULT_VA: u32 = 0x0080_0000;
const VAULT_PA: u32 = 0x4_0000;

fn vault_core() -> Core<Metal> {
    let mut config = std_config();
    config.tlb.entries = 64;
    let mut core = isolation::install(MetalBuilder::new())
        .build_core(config)
        .unwrap();
    isolation::identity_map_code(&mut core, 64);
    core.state.translation = TranslationMode::SoftTlb;
    core
}

/// Keyed digest through the vault gate, per call.
fn gated() -> f64 {
    let program = |use_gate: bool| {
        let body = if use_gate {
            "li a0, 0x1234\n menter 26".to_owned()
        } else {
            "nop\n nop".to_owned()
        };
        format!(
            r"
            li a0, {VAULT_VA:#x}
            li a1, {VAULT_PA:#x}
            menter 24
            li a0, 0x5EC0
            menter 25
            li s1, {CALLS}
        loop:
            {body}
            addi s1, s1, -1
            bnez s1, loop
            ebreak
            "
        )
    };
    let mut with = vault_core();
    run_to_halt(&mut with, &program(true), 50_000_000);
    let with_cycles = with.state.perf.cycles;
    let mut without = vault_core();
    run_to_halt(&mut without, &program(false), 50_000_000);
    per_op(with_cycles, without.state.perf.cycles, CALLS)
}

/// The same digest computed by a plain function on an unprotected
/// secret, per call.
fn unprotected() -> f64 {
    let program = |call: bool| {
        let body = if call {
            "li a0, 0x1234\n call digest".to_owned()
        } else {
            "nop\n nop".to_owned()
        };
        format!(
            r"
            li s0, 0x4000
            li t0, 0x5EC0
            sw t0, 0(s0)           # the 'secret', unprotected
            li s1, {CALLS}
        loop:
            {body}
            addi s1, s1, -1
            bnez s1, loop
            ebreak
        digest:
            lw t1, 0(s0)
            xor a0, a0, t1
            slli t0, a0, 5
            srli a0, a0, 27
            or a0, a0, t0
            xor a0, a0, t1
            ret
            "
        )
    };
    let mut with = vault_core();
    run_to_halt(&mut with, &program(true), 50_000_000);
    let with_cycles = with.state.perf.cycles;
    let mut without = vault_core();
    run_to_halt(&mut without, &program(false), 50_000_000);
    per_op(with_cycles, without.state.perf.cycles, CALLS)
}

/// The E6 report.
#[must_use]
pub fn report() -> String {
    let g = gated();
    let u = unprotected();
    let mut out = String::new();
    let _ = writeln!(out, "== E6: in-process isolation (vault gate) ==\n");
    let _ = writeln!(out, "{:<46} {:>10}", "design", "cyc/call");
    let _ = writeln!(
        out,
        "{:<46} {:>10.2}",
        "vault gate (mroutine + page-key flip)", g
    );
    let _ = writeln!(out, "{:<46} {:>10.2}", "plain call, unprotected secret", u);
    let _ = writeln!(
        out,
        "\nprotection premium: {:.2} cycles/call ({:.1}x). The unprotected\n\
         variant leaks its secret to any load in the process; the vault\n\
         blocks those with page keys and needs no CFI around the gate.",
        g - u,
        g / u
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_premium_is_bounded() {
        let g = gated();
        let u = unprotected();
        assert!(g > u, "protection costs something: {g:.2} vs {u:.2}");
        assert!(
            g - u < 60.0,
            "the gate should stay cheap (no trap, no kernel): {:.2}",
            g - u
        );
    }
}
