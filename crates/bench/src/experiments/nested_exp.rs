//! E7: nested Metal — chained interception cost.
//!
//! Paper §3.5: with layered mroutines, "instruction interception
//! proceeds in reverse, with higher layers intercepting the instruction
//! first", propagating downward when a handler reuses the instruction.
//! Measured: the cost of an intercepted store as the chain deepens from
//! zero layers (raw store) to one and two.

use crate::harness::{run_to_halt, std_config};
use metal_core::{Metal, MetalBuilder};
use metal_pipeline::Core;
use std::fmt::Write as _;

const STORES: u64 = 100;

/// A minimal forwarding handler for layer `n`: counts, re-executes the
/// store (chaining to lower layers), skips, returns.
fn chain_handler(slot: u32) -> String {
    format!(
        r"
        rmr t1, m31
        wmr m2{extra}, t1          # save return address (reentrancy)
        mld t0, {slot}(zero)
        addi t0, t0, 1
        mst t0, {slot}(zero)
        sw a1, 0(s0)               # re-execute: chains downward
        rmr t1, m2{extra}
        addi t1, t1, 4
        wmr m31, t1
        mexit
        ",
        extra = slot / 4, // distinct save registers m20/m21 per layer
        slot = 80 + slot,
    )
}

/// Terminal handler: emulates the store physically and skips.
fn terminal_handler() -> &'static str {
    r"
    mld t0, 88(zero)
    addi t0, t0, 1
    mst t0, 88(zero)
    mpst s0, a1
    rmr t1, m31
    addi t1, t1, 4
    wmr m31, t1
    mexit
    "
}

fn build(layers: usize) -> Core<Metal> {
    let mut builder = MetalBuilder::new().layers(layers.max(1));
    // Arm routine: program each layer's STORE intercept.
    let mut arm = String::new();
    for layer in 0..layers {
        let entry = 10 + layer; // handler entries 10, 11
        arm.push_str(&format!(
            "    li t2, {layer}\n    mlayer t2\n    li t0, 0x23\n    li t1, {target}\n    mintercept t0, t1\n",
            target = (entry << 1) | 1
        ));
    }
    arm.push_str("    li t0, 1\n    wmr mstatus, t0\n    mexit\n");
    builder = builder.routine(9, "arm", &arm);
    if layers >= 1 {
        builder = builder.routine(10, "l0", terminal_handler());
    }
    if layers >= 2 {
        builder = builder.routine(11, "l1", &chain_handler(4));
    }
    builder.build_core(std_config()).unwrap()
}

/// Cycles per store with `layers` interception layers armed.
fn per_store(layers: usize) -> f64 {
    let program = |arm: bool| {
        let prologue = if arm { "menter 9" } else { "nop" };
        format!(
            r"
            li s0, 0x40000
            li a1, 7
            {prologue}
            li s1, {STORES}
        loop:
            sw a1, 0(s0)
            addi s1, s1, -1
            bnez s1, loop
            ebreak
            "
        )
    };
    let mut with = build(layers.max(1));
    if layers == 0 {
        run_to_halt(&mut with, &program(false), 100_000_000);
    } else {
        run_to_halt(&mut with, &program(true), 100_000_000);
    }
    let with_cycles = with.state.perf.cycles;
    let mut base = build(1);
    run_to_halt(&mut base, &program(false), 100_000_000);
    (with_cycles as f64 - base.state.perf.cycles as f64) / STORES as f64
}

/// The E7 report.
#[must_use]
pub fn report() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== E7: nested Metal, chained interception ==\n");
    let _ = writeln!(
        out,
        "{:<34} {:>16}",
        "layers intercepting a store", "extra cyc/store"
    );
    for layers in [0usize, 1, 2] {
        let _ = writeln!(out, "{layers:<34} {:>16.1}", per_store(layers));
    }
    let _ = writeln!(
        out,
        "\neach additional layer adds roughly one handler execution: the\n\
         downward-propagation design costs linearly in chain depth, and\n\
         handlers must save m31 before re-executing (the paper's\n\
         reentrancy caveat)."
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_depth_costs_linearly() {
        let none = per_store(0);
        let one = per_store(1);
        let two = per_store(2);
        assert!(none.abs() < 2.0, "unarmed stores are free: {none:.2}");
        assert!(one > none + 3.0, "one layer costs a handler: {one:.2}");
        assert!(two > one + 3.0, "two layers cost two handlers: {two:.2}");
        // Roughly linear: the second layer costs no more than 3x the
        // first (its handler does strictly more work).
        assert!(
            two < one * 4.0,
            "chain cost should stay linear-ish: {two:.2} vs {one:.2}"
        );
    }
}
