//! E9: shadow-stack control-flow protection overhead.
//!
//! Paper §3.5: Metal offers shadow-stack style control-flow protection
//! without compiler support. Measured: a call-heavy workload (recursive
//! Fibonacci and a flat call chain) with and without the shadow stack
//! armed.

use crate::harness::{run_to_halt, std_config};
use metal_core::{Metal, MetalBuilder};
use metal_ext::shadowstack;
use metal_pipeline::Core;
use std::fmt::Write as _;

fn ss_core() -> Core<Metal> {
    shadowstack::install(MetalBuilder::new())
        .build_core(std_config())
        .unwrap()
}

/// Recursive fib(n): (calls+returns executed, cycles armed, cycles
/// bare).
fn fib_workload(n: u32) -> (u64, u64) {
    let program = |armed: bool| {
        let arm = if armed {
            format!("la a0, violation\n menter {}", shadowstack::entries::ENABLE)
        } else {
            "nop\n nop".to_owned()
        };
        format!(
            r"
            li sp, 0x8000
            {arm}
            li a0, {n}
            call fib
            ebreak
        fib:
            li t0, 2
            blt a0, t0, base
            addi sp, sp, -12
            sw ra, 0(sp)
            sw a0, 4(sp)
            addi a0, a0, -1
            call fib
            sw a0, 8(sp)
            lw a0, 4(sp)
            addi a0, a0, -2
            call fib
            lw t0, 8(sp)
            add a0, a0, t0
            lw ra, 0(sp)
            addi sp, sp, 12
            ret
        base:
            ret
        violation:
            li a0, 0xBAD
            ebreak
            "
        )
    };
    let mut armed = ss_core();
    run_to_halt(&mut armed, &program(true), 200_000_000);
    let with = armed.state.perf.cycles;
    let mut bare = ss_core();
    run_to_halt(&mut bare, &program(false), 200_000_000);
    (with, bare.state.perf.cycles)
}

/// Leaf-call chain: N calls to an empty function.
fn chain_workload(calls: u64) -> (u64, u64) {
    let program = |armed: bool| {
        let arm = if armed {
            format!("la a0, violation\n menter {}", shadowstack::entries::ENABLE)
        } else {
            "nop\n nop".to_owned()
        };
        format!(
            r"
            li sp, 0x8000
            {arm}
            li s1, {calls}
        loop:
            call leaf
            addi s1, s1, -1
            bnez s1, loop
            ebreak
        leaf:
            ret
        violation:
            li a0, 0xBAD
            ebreak
            "
        )
    };
    let mut armed = ss_core();
    run_to_halt(&mut armed, &program(true), 200_000_000);
    let with = armed.state.perf.cycles;
    let mut bare = ss_core();
    run_to_halt(&mut bare, &program(false), 200_000_000);
    (with, bare.state.perf.cycles)
}

/// The E9 report.
#[must_use]
pub fn report() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== E9: shadow-stack overhead ==\n");
    let _ = writeln!(
        out,
        "{:<26} {:>12} {:>12} {:>10}",
        "workload", "armed cyc", "bare cyc", "overhead"
    );
    for n in [8u32, 12] {
        let (with, without) = fib_workload(n);
        let _ = writeln!(
            out,
            "{:<26} {with:>12} {without:>12} {:>9.1}x",
            format!("fib({n})"),
            with as f64 / without as f64
        );
    }
    let (with, without) = chain_workload(200);
    let _ = writeln!(
        out,
        "{:<26} {with:>12} {without:>12} {:>9.1}x",
        "200 leaf calls",
        with as f64 / without as f64
    );
    let _ = writeln!(
        out,
        "\nevery call and return is emulated by an mroutine; the overhead is\n\
         the emulation cost per control transfer. A hardware shadow stack\n\
         would hide this — the paper's point is that Metal lets developers\n\
         deploy the *policy* today, in software, at microcode-level cost."
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protection_works_and_costs_bounded_overhead() {
        let (with, without) = fib_workload(10);
        assert!(with > without);
        assert!(
            (with as f64 / without as f64) < 40.0,
            "emulation should stay bounded: {with} vs {without}"
        );
    }
}
