//! A tiny self-contained microbenchmark runner (no external harness).
//!
//! Each bench target is a plain `fn main()` (`harness = false` in the
//! manifest) that calls [`bench_fn`] per case. The runner warms up,
//! doubles the iteration count until a batch runs long enough to
//! measure, then reports the *minimum* nanoseconds per iteration over
//! several batches — the minimum is the estimate least contaminated by
//! scheduler and frequency noise. For A/B comparisons (overhead
//! claims), [`bench_pair`] interleaves the two sides batch-by-batch so
//! slow drift in the host cancels instead of biasing one side.

use std::time::{Duration, Instant};

/// Re-export of the optimizer barrier benches wrap results in.
pub use std::hint::black_box;

/// Minimum wall-clock time a measured batch must take.
const MIN_BATCH: Duration = Duration::from_millis(100);

/// Upper bound on iterations per batch (cheap bodies stop doubling
/// here).
const MAX_ITERS: u64 = 1 << 22;

/// Measured batches per reported number.
const SAMPLES: u32 = 9;

/// True when `METAL_BENCH_FAST` is set (to anything but `0`): bench
/// bodies run exactly once, uncalibrated and untimed. This is the smoke
/// mode `scripts/bench_smoke.sh` uses — it proves every bench still
/// assembles, runs, and halts, without paying measurement time in CI.
#[must_use]
pub fn fast_mode() -> bool {
    std::env::var("METAL_BENCH_FAST").is_ok_and(|v| v != "0")
}

/// Doubles until one batch of `f` takes at least [`MIN_BATCH`];
/// returns the iteration count.
fn calibrate(f: &mut impl FnMut()) -> u64 {
    let mut iters: u64 = 1;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        if start.elapsed() >= MIN_BATCH || iters >= MAX_ITERS {
            return iters;
        }
        iters *= 2;
    }
}

/// One timed batch, in nanoseconds per iteration.
fn sample(f: &mut impl FnMut(), iters: u64) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// Times `f`, printing `group/name: <iters> iters, <ns> ns/iter`.
///
/// Returns the minimum measured nanoseconds per iteration so callers
/// can make comparative assertions in the same run.
pub fn bench_fn(group: &str, name: &str, mut f: impl FnMut()) -> f64 {
    if fast_mode() {
        f();
        println!("{group}/{name}: fast mode, 1 iter (unmeasured)");
        return 0.0;
    }
    for _ in 0..3 {
        f(); // warmup
    }
    let iters = calibrate(&mut f);
    let mut best = f64::INFINITY;
    for _ in 0..SAMPLES {
        best = best.min(sample(&mut f, iters));
    }
    println!("{group}/{name}: {iters} iters, {best:.1} ns/iter");
    best
}

/// The result of an interleaved A/B comparison.
pub struct Pair {
    /// Minimum ns/iter for the first body.
    pub a: f64,
    /// Minimum ns/iter for the second body.
    pub b: f64,
    /// Median over samples of `(b_i - a_i) / a_i` — the drift-robust
    /// relative cost of `b` over `a` (adjacent interleaved batches
    /// share whatever the host was doing at the time).
    pub rel_diff: f64,
}

/// Times two bodies with interleaved batches (a, b, a, b, …) at a
/// common iteration count, printing both. Use for overhead comparisons
/// where host drift between two sequential [`bench_fn`] calls would
/// swamp the effect; read the paired estimate from [`Pair::rel_diff`].
pub fn bench_pair(
    group: &str,
    name_a: &str,
    mut a: impl FnMut(),
    name_b: &str,
    mut b: impl FnMut(),
) -> Pair {
    if fast_mode() {
        a();
        b();
        println!("{group}/{name_a} vs {name_b}: fast mode, 1 iter each (unmeasured)");
        return Pair {
            a: 0.0,
            b: 0.0,
            rel_diff: 0.0,
        };
    }
    for _ in 0..3 {
        a();
        b(); // warmup
    }
    let iters = calibrate(&mut a).max(calibrate(&mut b));
    let (mut best_a, mut best_b) = (f64::INFINITY, f64::INFINITY);
    let mut diffs = Vec::with_capacity(SAMPLES as usize);
    for _ in 0..SAMPLES {
        let sa = sample(&mut a, iters);
        let sb = sample(&mut b, iters);
        best_a = best_a.min(sa);
        best_b = best_b.min(sb);
        diffs.push((sb - sa) / sa);
    }
    diffs.sort_by(|x, y| x.total_cmp(y));
    let rel_diff = diffs[diffs.len() / 2];
    println!("{group}/{name_a}: {iters} iters, {best_a:.1} ns/iter");
    println!("{group}/{name_b}: {iters} iters, {best_b:.1} ns/iter");
    Pair {
        a: best_a,
        b: best_b,
        rel_diff,
    }
}
