//! Regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run --release -p metal-bench --bin reproduce -- all
//! cargo run --release -p metal-bench --bin reproduce -- table2 e1 e3
//! cargo run --release -p metal-bench --bin reproduce -- --metrics metrics.json e1
//! ```
//!
//! `--metrics <path>` additionally runs the canonical instrumented
//! workload and writes its unified metrics snapshot (cycles, instret,
//! stall breakdown, cache/TLB hit rates, per-mroutine transition
//! latency histograms) as a machine-readable JSON document.

use metal_bench::{experiments, harness};

fn main() {
    let mut metrics_path: Option<String> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--metrics" {
            match args.next() {
                Some(path) => metrics_path = Some(path),
                None => {
                    eprintln!("--metrics requires a file path");
                    std::process::exit(2);
                }
            }
        } else {
            ids.push(arg);
        }
    }
    let ids: Vec<&str> = if ids.is_empty() || ids.iter().any(|a| a == "all") {
        experiments::ALL.to_vec()
    } else {
        ids.iter().map(String::as_str).collect()
    };
    let mut failed = false;
    for id in ids {
        match experiments::run(id) {
            Some(report) => {
                println!("{report}");
                println!("{}", "-".repeat(72));
            }
            None => {
                eprintln!(
                    "unknown experiment {id:?}; known ids: {}",
                    experiments::ALL.join(", ")
                );
                failed = true;
            }
        }
    }
    if let Some(path) = metrics_path {
        let snapshot = harness::metrics_run();
        if let Err(e) = std::fs::write(&path, snapshot.to_json_string()) {
            eprintln!("cannot write {path}: {e}");
            failed = true;
        } else {
            println!("wrote metrics snapshot to {path}");
        }
    }
    if failed {
        std::process::exit(2);
    }
}
