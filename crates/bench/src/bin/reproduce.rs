//! Regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run --release -p metal-bench --bin reproduce -- all
//! cargo run --release -p metal-bench --bin reproduce -- table2 e1 e3
//! ```

use metal_bench::experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let ids: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        experiments::ALL.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    let mut failed = false;
    for id in ids {
        match experiments::run(id) {
            Some(report) => {
                println!("{report}");
                println!("{}", "-".repeat(72));
            }
            None => {
                eprintln!(
                    "unknown experiment {id:?}; known ids: {}",
                    experiments::ALL.join(", ")
                );
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(2);
    }
}
