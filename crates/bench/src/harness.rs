//! Shared measurement helpers.

use metal_core::Metal;
use metal_mem::CacheConfig;
use metal_pipeline::state::CoreConfig;
use metal_pipeline::{Engine, HaltReason};

/// A realistic small-core memory configuration: 4 KiB caches, 15-cycle
/// miss penalty (the setting all experiments share unless they sweep
/// it).
#[must_use]
pub fn std_config() -> CoreConfig {
    CoreConfig {
        icache: CacheConfig {
            size_bytes: 4 * 1024,
            line_bytes: 32,
            hit_latency: 1,
            miss_penalty: 15,
        },
        dcache: CacheConfig {
            size_bytes: 4 * 1024,
            line_bytes: 32,
            hit_latency: 1,
            miss_penalty: 15,
        },
        ram_bytes: 16 << 20,
        ..CoreConfig::default()
    }
}

/// Assembles `src`, loads it at 0, runs to halt on either engine;
/// panics on non-`ebreak` halts (experiment programs are
/// library-internal).
pub fn run_to_halt<E: Engine>(engine: &mut E, src: &str, limit: u64) -> u32 {
    let words = metal_asm::assemble_at(src, 0).unwrap_or_else(|e| panic!("bench program: {e}"));
    let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
    engine.load_segments([(0u32, bytes.as_slice())], 0);
    match engine.run(limit) {
        Some(HaltReason::Ebreak { code }) => code,
        other => panic!("bench program did not complete: {other:?}"),
    }
}

/// Runs `src` on a fresh Metal engine built by `build` and returns
/// total cycles.
pub fn cycles_of<E: Engine<Hooks = Metal>>(build: impl Fn() -> E, src: &str) -> u64 {
    let mut engine = build();
    run_to_halt(&mut engine, src, 50_000_000);
    engine.state().perf.cycles
}

/// Formats a cycles-per-operation float.
#[must_use]
pub fn per_op(total_with: u64, total_without: u64, ops: u64) -> f64 {
    (total_with as f64 - total_without as f64) / ops as f64
}

/// Runs the canonical instrumented workload — the E1 no-op mroutine
/// call loop on the Metal design point, with full tracing enabled — and
/// returns the unified metrics snapshot: cycles, instret, the stall
/// breakdown, cache/TLB hit rates, and per-mroutine transition counts
/// with latency histograms.
#[must_use]
pub fn metrics_run() -> metal_trace::MetricsSnapshot {
    use metal_trace::{TraceConfig, TraceHandle};
    let mut core = metal_core::MetalBuilder::new()
        .routine(0, "noop", "mexit")
        .build_core(std_config())
        .expect("canonical workload builds");
    core.state
        .set_trace(TraceHandle::enabled(TraceConfig::default()));
    run_to_halt(
        &mut core,
        "li s1, 200\nloop:\n menter 0\n addi s1, s1, -1\n bnez s1, loop\n ebreak",
        10_000_000,
    );
    let mut snap = core.state.metrics_snapshot();
    core.hooks.publish_metrics(&mut snap);
    snap
}
