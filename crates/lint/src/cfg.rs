//! Control-flow graph construction over pre-decoded instructions.
//!
//! The CFG is built once per unit (a guest program or one mroutine) and
//! shared by every dataflow analysis. Blocks are maximal straight-line
//! runs; an instruction index is the unit of addressing (`pc = base +
//! 4 * idx`). Control transfers whose target lies outside the unit are
//! not edges — they are recorded as *escapes* so the structural checks
//! can report them.

use metal_isa::insn::Insn;
use metal_isa::{decode_to, DecodedInsn};

/// One basic block: instruction indices `start..end` (half-open).
#[derive(Clone, Debug)]
pub struct Block {
    /// Index of the first instruction.
    pub start: usize,
    /// One past the last instruction.
    pub end: usize,
    /// Successor block ids.
    pub succs: Vec<usize>,
}

/// A control transfer that leaves the unit.
#[derive(Clone, Copy, Debug)]
pub struct Escape {
    /// Index of the transferring instruction.
    pub idx: usize,
    /// Target address.
    pub target: u32,
}

/// The control-flow graph of one unit.
#[derive(Clone, Debug)]
pub struct Cfg {
    /// Base address of instruction 0.
    pub base: u32,
    /// Pre-decoded instructions, one per word.
    pub insns: Vec<DecodedInsn>,
    /// Basic blocks in address order (block 0 contains instruction 0).
    pub blocks: Vec<Block>,
    /// Block id containing each instruction.
    pub block_of: Vec<usize>,
    /// Per-instruction reachability from the unit entry.
    pub reachable: Vec<bool>,
    /// Direct jumps/branches whose target lies outside the unit.
    pub escapes: Vec<Escape>,
    /// Index of the last instruction when a reachable path can fall off
    /// the end of the unit.
    pub falls_off_end: Option<usize>,
}

/// How control leaves an instruction, for edge construction.
enum Exit {
    /// Continue to the next instruction.
    Fall,
    /// Unconditional direct jump.
    Jump(u32),
    /// Conditional: direct target or fallthrough.
    Branch(u32),
    /// A call that is assumed to return (direct target + fallthrough).
    Call(u32),
    /// Control leaves the unit (mexit, ret/jr, mret, ebreak, illegal).
    Stop,
}

fn exit_of(insn: &DecodedInsn, pc: u32) -> Exit {
    if insn.is_illegal() {
        return Exit::Stop;
    }
    match insn.insn {
        Insn::Jal { rd, offset } => {
            let target = pc.wrapping_add(offset as u32);
            if rd == metal_isa::Reg::ZERO {
                Exit::Jump(target)
            } else {
                // A call: over-approximate by assuming the callee returns.
                Exit::Call(target)
            }
        }
        Insn::Branch { offset, .. } => Exit::Branch(pc.wrapping_add(offset as u32)),
        // `jalr rd != x0` is a computed call: assume it returns. `jr`/`ret`
        // leave the unit.
        Insn::Jalr { rd, .. } => {
            if rd == metal_isa::Reg::ZERO {
                Exit::Stop
            } else {
                Exit::Fall
            }
        }
        Insn::Mexit | Insn::Mret | Insn::Ebreak => Exit::Stop,
        // `ecall`/`menter` transfer control but ordinarily resume after
        // the instruction (handler `mret`/`mexit` with a +4 epilogue).
        _ => Exit::Fall,
    }
}

impl Cfg {
    /// Address of instruction `idx`.
    #[must_use]
    pub fn pc_of(&self, idx: usize) -> u32 {
        self.base + 4 * idx as u32
    }

    /// Instruction index of an in-unit, word-aligned address.
    #[must_use]
    pub fn idx_of(&self, addr: u32) -> Option<usize> {
        let end = self.base + 4 * self.insns.len() as u32;
        if addr < self.base || addr >= end || !(addr - self.base).is_multiple_of(4) {
            return None;
        }
        Some(((addr - self.base) / 4) as usize)
    }

    /// Builds the CFG of `words` loaded at `base`.
    #[must_use]
    pub fn build(base: u32, words: &[u32]) -> Cfg {
        let insns: Vec<DecodedInsn> = words.iter().map(|&w| decode_to(w)).collect();
        let n = insns.len();
        let mut cfg = Cfg {
            base,
            insns,
            blocks: Vec::new(),
            block_of: vec![0; n],
            reachable: vec![false; n],
            escapes: Vec::new(),
            falls_off_end: None,
        };
        if n == 0 {
            return cfg;
        }
        // Leaders: entry, targets of in-unit transfers, instruction after
        // any control transfer.
        let mut leader = vec![false; n];
        leader[0] = true;
        for idx in 0..n {
            let pc = cfg.pc_of(idx);
            match exit_of(&cfg.insns[idx], pc) {
                Exit::Fall => {}
                Exit::Jump(t) | Exit::Branch(t) | Exit::Call(t) => {
                    if let Some(ti) = cfg.idx_of(t) {
                        leader[ti] = true;
                    } else {
                        cfg.escapes.push(Escape { idx, target: t });
                    }
                    if idx + 1 < n {
                        leader[idx + 1] = true;
                    }
                }
                Exit::Stop => {
                    if idx + 1 < n {
                        leader[idx + 1] = true;
                    }
                }
            }
            // Every control-flow instruction ends a block even when it
            // falls through (ecall, menter, jalr-call).
            if cfg.insns[idx].insn.is_control_flow() && idx + 1 < n {
                leader[idx + 1] = true;
            }
        }
        // Carve blocks.
        let mut start = 0;
        #[allow(clippy::needless_range_loop)] // `n` is a sentinel past the slice
        for idx in 1..=n {
            if idx == n || leader[idx] {
                let id = cfg.blocks.len();
                for i in start..idx {
                    cfg.block_of[i] = id;
                }
                cfg.blocks.push(Block {
                    start,
                    end: idx,
                    succs: Vec::new(),
                });
                start = idx;
            }
        }
        // Edges from each block's terminator.
        for id in 0..cfg.blocks.len() {
            let last = cfg.blocks[id].end - 1;
            let pc = cfg.pc_of(last);
            let mut succs = Vec::new();
            let mut falls = false;
            match exit_of(&cfg.insns[last], pc) {
                Exit::Fall => falls = true,
                Exit::Jump(t) => {
                    if let Some(ti) = cfg.idx_of(t) {
                        succs.push(cfg.block_of[ti]);
                    }
                }
                Exit::Branch(t) | Exit::Call(t) => {
                    if let Some(ti) = cfg.idx_of(t) {
                        succs.push(cfg.block_of[ti]);
                    }
                    falls = true;
                }
                Exit::Stop => {}
            }
            if falls {
                if last + 1 < n {
                    succs.push(cfg.block_of[last + 1]);
                } else {
                    cfg.falls_off_end = Some(last);
                }
            }
            succs.dedup();
            cfg.blocks[id].succs = succs;
        }
        // Reachability from the entry block.
        let mut seen = vec![false; cfg.blocks.len()];
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(id) = stack.pop() {
            for i in cfg.blocks[id].start..cfg.blocks[id].end {
                cfg.reachable[i] = true;
            }
            for &s in &cfg.blocks[id].succs {
                if !seen[s] {
                    seen[s] = true;
                    stack.push(s);
                }
            }
        }
        if let Some(last) = cfg.falls_off_end {
            if !cfg.reachable[last] {
                cfg.falls_off_end = None;
            }
        }
        cfg
    }

    /// Back edges `(from_block, to_block)` under a DFS from the entry:
    /// the seeds of natural loops.
    #[must_use]
    pub fn back_edges(&self) -> Vec<(usize, usize)> {
        let n = self.blocks.len();
        let mut state = vec![0u8; n]; // 0 unvisited, 1 on stack, 2 done
        let mut out = Vec::new();
        // Iterative DFS with an explicit edge stack.
        let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
        state[0] = 1;
        while let Some(&(id, next)) = stack.last() {
            if next < self.blocks[id].succs.len() {
                stack.last_mut().expect("non-empty").1 += 1;
                let s = self.blocks[id].succs[next];
                match state[s] {
                    0 => {
                        state[s] = 1;
                        stack.push((s, 0));
                    }
                    1 => out.push((id, s)),
                    _ => {}
                }
            } else {
                state[id] = 2;
                stack.pop();
            }
        }
        out
    }

    /// The natural loop of back edge `(tail, head)`: all blocks that can
    /// reach `tail` without passing through `head`, plus `head`.
    #[must_use]
    pub fn natural_loop(&self, tail: usize, head: usize) -> Vec<usize> {
        let n = self.blocks.len();
        // Predecessor lists.
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (id, b) in self.blocks.iter().enumerate() {
            for &s in &b.succs {
                preds[s].push(id);
            }
        }
        let mut in_loop = vec![false; n];
        in_loop[head] = true;
        let mut stack = vec![tail];
        while let Some(id) = stack.pop() {
            if in_loop[id] {
                continue;
            }
            in_loop[id] = true;
            for &p in &preds[id] {
                stack.push(p);
            }
        }
        (0..n).filter(|&i| in_loop[i]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metal_asm::assemble_at;

    fn cfg(src: &str, base: u32) -> Cfg {
        Cfg::build(base, &assemble_at(src, base).unwrap())
    }

    #[test]
    fn straight_line_is_one_block() {
        let c = cfg("addi a0, a0, 1\naddi a0, a0, 2\nmexit", 0);
        assert_eq!(c.blocks.len(), 1);
        assert!(c.reachable.iter().all(|&r| r));
        assert!(c.falls_off_end.is_none());
    }

    #[test]
    fn branch_splits_blocks() {
        let c = cfg("beqz a0, skip\naddi a0, a0, 1\nskip: mexit", 0);
        assert_eq!(c.blocks.len(), 3);
        assert_eq!(c.blocks[0].succs.len(), 2);
        assert!(c.reachable.iter().all(|&r| r));
    }

    #[test]
    fn code_after_jump_is_unreachable() {
        let c = cfg("j end\naddi a0, a0, 1\nend: mexit", 0);
        assert!(!c.reachable[1]);
        assert!(c.reachable[2]);
    }

    #[test]
    fn loop_has_back_edge() {
        let c = cfg("li t0, 5\nloop: addi t0, t0, -1\nbnez t0, loop\nmexit", 0);
        let backs = c.back_edges();
        assert_eq!(backs.len(), 1);
        let (tail, head) = backs[0];
        let body = c.natural_loop(tail, head);
        assert!(body.contains(&head));
    }

    #[test]
    fn escaping_jump_recorded() {
        let c = cfg("j 0x4000\nmexit", 0);
        assert_eq!(c.escapes.len(), 1);
        assert_eq!(c.escapes[0].target, 0x4000);
    }

    #[test]
    fn fallthrough_off_end_detected() {
        let c = cfg("addi a0, a0, 1\naddi a0, a0, 2", 0);
        assert_eq!(c.falls_off_end, Some(1));
    }
}
