//! Dataflow static analyzer for mcode.
//!
//! Microcode-level code demands microcode-level scrutiny: an mroutine
//! runs non-interruptibly with full machine access, so a privilege,
//! bounds, or leak bug installed into MRAM is a machine-wide bug. This
//! crate analyzes assembled programs and mroutines *before* they run:
//! it builds a CFG over pre-decoded instructions ([`cfg`]), solves
//! reaching-defs / interval / taint lattices to a fixpoint
//! ([`dataflow`], [`domains`]), and runs seven checks over the result
//! ([`checks`]):
//!
//! 1. **privilege** — Metal-only instructions reachable outside Metal
//!    mode; environment instructions inside mroutines; illegal words;
//! 2. **bounds** — statically-resolvable `mld`/`mst` offsets against
//!    the MRAM data segment;
//! 3. **retaddr** — `m31` clobbered (a non-return-address value) on a
//!    path to `mexit`;
//! 4. **leak** — secret Metal-register values escaping Metal mode
//!    unscrubbed (GPRs at `mexit`, stores to normal memory, CSRs);
//! 5. **budget** — worst-case instruction count per mroutine, with
//!    unbounded-loop detection;
//! 6. **intercept** — `mintercept` redirection cycles and selectors
//!    that capture the Metal opcode itself;
//! 7. **structure** — control flow escaping the MRAM code window,
//!    missing `mexit`, dead code, fallthrough off the segment.
//!
//! The `core` loader's install-time verification delegates here, the
//! `mlint` CLI runs the full set over `.s` files with source-span
//! diagnostics, and `metal-fuzz` validates the analyzer's soundness
//! differentially against both execution engines.

pub mod cfg;
pub mod checks;
pub mod dataflow;
pub mod domains;

pub use cfg::Cfg;

use metal_asm::Assembled;

/// Default MRAM base address; must match `metal_core::mram::MRAM_BASE`.
pub const MRAM_BASE: u32 = 0xFFF0_0000;
/// Default MRAM code-segment size; must match `MramConfig::default()`.
pub const MRAM_CODE_BYTES: u32 = 16 * 1024;
/// Default MRAM data-segment size; must match `MramConfig::default()`.
pub const MRAM_DATA_BYTES: u32 = 4 * 1024;

/// Diagnostic severity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Suspicious but not provably wrong; reported, never blocking.
    Warn,
    /// Provably violates a contract; blocks install / fails the CLI.
    Deny,
}

/// Which analysis produced a diagnostic.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Check {
    /// Mode correctness: Metal-only instructions on normal-mode paths,
    /// environment instructions in mroutines, illegal words.
    Privilege,
    /// MRAM data-segment bounds for `mld`/`mst`.
    Bounds,
    /// `m31` return-address clobbered before `mexit`.
    RetAddr,
    /// Secret Metal-register values escaping Metal mode.
    Leak,
    /// Worst-case instruction-count budget / unbounded loops.
    Budget,
    /// `mintercept` redirection issues.
    Intercept,
    /// Window escapes, missing `mexit`, dead code, fallthrough.
    Structure,
}

impl Check {
    /// Stable lower-case name, used in rendered diagnostics.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Check::Privilege => "privilege",
            Check::Bounds => "bounds",
            Check::RetAddr => "retaddr",
            Check::Leak => "leak",
            Check::Budget => "budget",
            Check::Intercept => "intercept",
            Check::Structure => "structure",
        }
    }
}

/// One finding, anchored to a PC and (when spans are available) to a
/// source line/column.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Severity.
    pub level: Level,
    /// Producing analysis.
    pub check: Check,
    /// Address of the offending instruction.
    pub pc: u32,
    /// 1-based source line, when the unit was assembled with spans.
    pub line: Option<u32>,
    /// 1-based source column, when available.
    pub col: Option<u32>,
    /// Human-readable description.
    pub message: String,
}

impl Diagnostic {
    /// Renders `file:line:col: level[check]: message (pc 0x…)`.
    #[must_use]
    pub fn render(&self, file: &str) -> String {
        let level = match self.level {
            Level::Deny => "error",
            Level::Warn => "warning",
        };
        let loc = match (self.line, self.col) {
            (Some(l), Some(c)) => format!("{file}:{l}:{c}"),
            (Some(l), None) => format!("{file}:{l}"),
            _ => file.to_owned(),
        };
        format!(
            "{loc}: {level}[{}]: {} (pc {:#010x})",
            self.check.name(),
            self.message,
            self.pc
        )
    }
}

/// Which checks to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CheckSet {
    /// Run the privilege/mode-correctness check.
    pub privilege: bool,
    /// Run the MRAM bounds check.
    pub bounds: bool,
    /// Run the `m31`-clobber check.
    pub retaddr: bool,
    /// Run the taint-leak check.
    pub leak: bool,
    /// Run the instruction-budget check.
    pub budget: bool,
    /// Run the intercept-redirection check.
    pub intercept: bool,
    /// Run the structural checks (window escapes, missing `mexit`).
    pub structure: bool,
    /// Emit dead-code / fallthrough-off-segment warnings.
    pub deadcode: bool,
}

impl CheckSet {
    /// Everything on (the `mlint` CLI default).
    #[must_use]
    pub const fn all() -> CheckSet {
        CheckSet {
            privilege: true,
            bounds: true,
            retaddr: true,
            leak: true,
            budget: true,
            intercept: true,
            structure: true,
            deadcode: true,
        }
    }

    /// The loader's historical install-time set: privilege and
    /// structural checks only, preserving `metal_core::verify` behavior
    /// exactly (dataflow warnings would reject long-standing extension
    /// idioms like computed `m31` resume addresses).
    #[must_use]
    pub const fn install() -> CheckSet {
        CheckSet {
            privilege: true,
            bounds: false,
            retaddr: false,
            leak: false,
            budget: false,
            intercept: false,
            structure: true,
            deadcode: false,
        }
    }
}

/// What kind of unit is being analyzed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnitKind {
    /// A normal-mode guest program: Metal-only instructions are the
    /// violation; environment instructions are fine.
    Program,
    /// An mroutine running in Metal mode: environment instructions are
    /// the violation; the full dataflow battery applies.
    Mroutine,
}

/// Analysis configuration for one unit.
#[derive(Clone, Copy, Debug)]
pub struct LintConfig {
    /// Unit kind.
    pub kind: UnitKind,
    /// Address of the first instruction.
    pub base: u32,
    /// MRAM code window for escape checks (mroutines). `None` uses the
    /// default MRAM geometry.
    pub window: Option<(u32, u32)>,
    /// MRAM data-segment size for the bounds check.
    pub data_bytes: u32,
    /// Whether nested `menter` is architecturally allowed (layers > 1).
    pub nested_allowed: bool,
    /// Worst-case instruction budget per invocation.
    pub budget: u64,
    /// Enabled checks.
    pub checks: CheckSet,
}

impl LintConfig {
    /// Full-check configuration for an mroutine at `base`.
    #[must_use]
    pub fn mroutine(base: u32) -> LintConfig {
        LintConfig {
            kind: UnitKind::Mroutine,
            base,
            window: None,
            data_bytes: MRAM_DATA_BYTES,
            nested_allowed: false,
            budget: 4096,
            checks: CheckSet::all(),
        }
    }

    /// Full-check configuration for a guest program at `base`.
    #[must_use]
    pub fn program(base: u32) -> LintConfig {
        LintConfig {
            kind: UnitKind::Program,
            base,
            window: None,
            data_bytes: MRAM_DATA_BYTES,
            nested_allowed: false,
            budget: 4096,
            checks: CheckSet::all(),
        }
    }

    /// The effective MRAM code window.
    #[must_use]
    pub fn code_window(&self) -> (u32, u32) {
        self.window
            .unwrap_or((MRAM_BASE, MRAM_BASE + MRAM_CODE_BYTES))
    }
}

/// Lints raw instruction words (no source spans).
#[must_use]
pub fn lint_words(words: &[u32], config: &LintConfig) -> Vec<Diagnostic> {
    checks::analyze(words, config, None).diagnostics
}

/// Lints an assembled unit, attaching source spans to diagnostics.
///
/// The words are taken by flattening the image from `config.base`.
pub fn lint_assembled(asm: &Assembled, config: &LintConfig) -> Result<Vec<Diagnostic>, String> {
    let words = asm.words(config.base)?;
    Ok(checks::analyze(&words, config, Some(asm)).diagnostics)
}

/// Assembles `src` at `config.base` and lints it with spans.
pub fn lint_source(src: &str, config: &LintConfig) -> Result<Vec<Diagnostic>, metal_asm::AsmError> {
    let asm = metal_asm::assemble(
        src,
        metal_asm::Options {
            text_base: config.base,
            data_base: config.base + 0x1_0000,
        },
    )?;
    lint_assembled(&asm, config).map_err(|msg| metal_asm::AsmError { line: 0, msg })
}

/// True if any diagnostic is [`Level::Deny`].
#[must_use]
pub fn has_denials(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.level == Level::Deny)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_includes_span_and_check() {
        let d = Diagnostic {
            level: Level::Deny,
            check: Check::Bounds,
            pc: 0xFFF0_0004,
            line: Some(2),
            col: Some(5),
            message: "out of bounds".into(),
        };
        assert_eq!(
            d.render("r.s"),
            "r.s:2:5: error[bounds]: out of bounds (pc 0xfff00004)"
        );
    }

    #[test]
    fn install_set_is_a_subset_of_all() {
        let all = CheckSet::all();
        let install = CheckSet::install();
        assert!(all.privilege && all.deadcode);
        assert!(install.privilege && install.structure);
        assert!(!install.retaddr && !install.leak && !install.deadcode);
    }
}
