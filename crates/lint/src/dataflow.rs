//! Worklist fixpoint solver, generic over a join-semilattice.
//!
//! Each analysis supplies a [`Lattice`]: an abstract state joined at
//! control-flow merges and transformed per instruction. The solver
//! iterates to a fixpoint over the block graph; lattices of unbounded
//! height (intervals) are widened after a block has been re-joined a
//! few times, which guarantees termination.

use crate::cfg::Cfg;
use metal_isa::DecodedInsn;

/// Joins per block tolerated before the solver joins with widening.
const WIDEN_AFTER: usize = 8;

/// A join-semilattice with a per-instruction transfer function.
pub trait Lattice: Clone {
    /// Joins `other` into `self`. Returns true if `self` changed. When
    /// `widen` is set the implementation must accelerate: any component
    /// that would grow goes straight to its top value.
    fn join_from(&mut self, other: &Self, widen: bool) -> bool;

    /// Applies one instruction (at index `idx`, address `pc`) to the
    /// state.
    fn transfer(&mut self, idx: usize, insn: &DecodedInsn, pc: u32);
}

/// Fixpoint result: the state at entry of each reachable block.
pub struct Solution<L> {
    /// `None` for unreachable blocks.
    pub block_in: Vec<Option<L>>,
}

impl<L: Lattice> Solution<L> {
    /// Replays the block's transfers, yielding the state *before* each
    /// instruction of block `id`. Empty for unreachable blocks.
    #[must_use]
    pub fn states_in_block(&self, cfg: &Cfg, id: usize) -> Vec<L> {
        let Some(entry) = &self.block_in[id] else {
            return Vec::new();
        };
        let block = &cfg.blocks[id];
        let mut out = Vec::with_capacity(block.end - block.start);
        let mut state = entry.clone();
        for idx in block.start..block.end {
            out.push(state.clone());
            state.transfer(idx, &cfg.insns[idx], cfg.pc_of(idx));
        }
        out
    }
}

/// Runs the worklist algorithm from `entry` at block 0.
pub fn solve<L: Lattice>(cfg: &Cfg, entry: L) -> Solution<L> {
    let n = cfg.blocks.len();
    let mut block_in: Vec<Option<L>> = vec![None; n];
    if n == 0 {
        return Solution { block_in };
    }
    block_in[0] = Some(entry);
    let mut joins = vec![0usize; n];
    let mut work = vec![0usize];
    let mut queued = vec![false; n];
    queued[0] = true;
    while let Some(id) = work.pop() {
        queued[id] = false;
        let Some(mut state) = block_in[id].clone() else {
            continue;
        };
        let block = &cfg.blocks[id];
        for idx in block.start..block.end {
            state.transfer(idx, &cfg.insns[idx], cfg.pc_of(idx));
        }
        for &succ in &block.succs {
            let changed = match &mut block_in[succ] {
                Some(existing) => {
                    joins[succ] += 1;
                    existing.join_from(&state, joins[succ] > WIDEN_AFTER)
                }
                slot @ None => {
                    *slot = Some(state.clone());
                    true
                }
            };
            if changed && !queued[succ] {
                queued[succ] = true;
                work.push(succ);
            }
        }
    }
    Solution { block_in }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metal_asm::assemble_at;

    /// A toy lattice: counts an upper bound of executed instructions,
    /// saturating — exercises widening on loops.
    #[derive(Clone, PartialEq)]
    struct Count(u64);

    impl Lattice for Count {
        fn join_from(&mut self, other: &Self, widen: bool) -> bool {
            let next = self.0.max(other.0);
            let next = if widen && next > self.0 {
                u64::MAX
            } else {
                next
            };
            let changed = next != self.0;
            self.0 = next;
            changed
        }
        fn transfer(&mut self, _idx: usize, _insn: &DecodedInsn, _pc: u32) {
            self.0 = self.0.saturating_add(1);
        }
    }

    #[test]
    fn loop_reaches_fixpoint_via_widening() {
        let words =
            assemble_at("li t0, 5\nloop: addi t0, t0, -1\nbnez t0, loop\nmexit", 0).unwrap();
        let cfg = Cfg::build(0, &words);
        let sol = solve(&cfg, Count(0));
        // Terminates, and every reachable block has a state.
        for (id, b) in sol.block_in.iter().enumerate() {
            assert!(b.is_some(), "block {id} unreachable?");
        }
    }

    #[test]
    fn unreachable_block_has_no_state() {
        let words = assemble_at("j end\naddi a0, a0, 1\nend: mexit", 0).unwrap();
        let cfg = Cfg::build(0, &words);
        let sol = solve(&cfg, Count(0));
        let dead = cfg.block_of[1];
        assert!(sol.block_in[dead].is_none());
    }
}
