//! Abstract domains: unsigned intervals, taint bits, reaching defs.
//!
//! All three are per-GPR environments solved over the same CFG by the
//! generic worklist in [`crate::dataflow`]. The interval domain is the
//! only one with unbounded height; its join widens to top on demand.

use crate::dataflow::Lattice;
use metal_isa::insn::{AluOp, Insn};
use metal_isa::reg::MregIdx;
use metal_isa::{DecodedInsn, Reg};

/// An unsigned 32-bit value range `[lo, hi]`, kept in `u64` so bounds
/// arithmetic cannot overflow.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interval {
    /// Inclusive lower bound.
    pub lo: u64,
    /// Inclusive upper bound.
    pub hi: u64,
}

const WORD: u64 = 1 << 32;

impl Interval {
    /// The full range (no information).
    pub const TOP: Interval = Interval {
        lo: 0,
        hi: WORD - 1,
    };

    /// A single known value.
    #[must_use]
    pub const fn exact(v: u32) -> Interval {
        Interval {
            lo: v as u64,
            hi: v as u64,
        }
    }

    /// The value if the range is a singleton.
    #[must_use]
    pub fn as_const(self) -> Option<u32> {
        (self.lo == self.hi).then_some(self.lo as u32)
    }

    /// True if no information is known.
    #[must_use]
    pub fn is_top(self) -> bool {
        self == Interval::TOP
    }

    /// Convex hull of two ranges.
    #[must_use]
    pub fn join(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Wrapping 32-bit addition of two ranges. Precise when neither or
    /// both ends wrap; top otherwise.
    #[must_use]
    pub fn wadd(self, other: Interval) -> Interval {
        let lo = self.lo + other.lo;
        let hi = self.hi + other.hi;
        if hi < WORD {
            Interval { lo, hi }
        } else if lo >= WORD {
            Interval {
                lo: lo - WORD,
                hi: hi - WORD,
            }
        } else {
            Interval::TOP
        }
    }

    /// Wrapping addition of a signed constant.
    #[must_use]
    pub fn add_const(self, k: i32) -> Interval {
        self.wadd(Interval::exact(k as u32))
    }
}

/// Evaluates an ALU op over intervals; precise for singletons.
fn alu_interval(op: AluOp, a: Interval, b: Interval) -> Interval {
    if let (Some(x), Some(y)) = (a.as_const(), b.as_const()) {
        return Interval::exact(op.eval(x, y));
    }
    match op {
        AluOp::Add => a.wadd(b),
        AluOp::Sub => match b.as_const() {
            Some(y) => a.add_const((y as i32).wrapping_neg()),
            None => Interval::TOP,
        },
        AluOp::And => {
            // `a & b <= min(a, b)` pointwise, so the hi bound carries.
            Interval {
                lo: 0,
                hi: a.hi.min(b.hi),
            }
        }
        AluOp::Or | AluOp::Xor => {
            // Both operands below 2^k keep the result below 2^k.
            let m = a.hi.max(b.hi);
            let hi = if m == 0 {
                0
            } else {
                (1u64 << (64 - m.leading_zeros())) - 1
            };
            Interval { lo: 0, hi }
        }
        AluOp::Srl => match b.as_const() {
            Some(s) => Interval {
                lo: a.lo >> (s & 0x1F),
                hi: a.hi >> (s & 0x1F),
            },
            None => Interval { lo: 0, hi: a.hi },
        },
        AluOp::Sll => match b.as_const() {
            Some(s) => {
                let s = s & 0x1F;
                let hi = a.hi << s;
                if hi < WORD {
                    Interval { lo: a.lo << s, hi }
                } else {
                    Interval::TOP
                }
            }
            None => Interval::TOP,
        },
        AluOp::Slt | AluOp::Sltu => Interval { lo: 0, hi: 1 },
        AluOp::Sra => Interval::TOP,
    }
}

/// Per-GPR interval environment. `x0` is pinned to zero.
#[derive(Clone, PartialEq, Eq)]
pub struct Intervals(pub [Interval; 32]);

impl Intervals {
    /// Entry state for an mroutine: caller registers unknown.
    #[must_use]
    pub fn entry() -> Intervals {
        let mut regs = [Interval::TOP; 32];
        regs[0] = Interval::exact(0);
        Intervals(regs)
    }

    /// The range of a register.
    #[must_use]
    pub fn get(&self, r: Reg) -> Interval {
        self.0[r.index()]
    }

    fn set(&mut self, r: Reg, v: Interval) {
        if r != Reg::ZERO {
            self.0[r.index()] = v;
        }
    }
}

impl Lattice for Intervals {
    fn join_from(&mut self, other: &Self, widen: bool) -> bool {
        let mut changed = false;
        for (mine, theirs) in self.0.iter_mut().zip(other.0.iter()) {
            let joined = mine.join(*theirs);
            if joined != *mine {
                *mine = if widen { Interval::TOP } else { joined };
                changed = true;
            }
        }
        changed
    }

    fn transfer(&mut self, _idx: usize, d: &DecodedInsn, pc: u32) {
        match d.insn {
            Insn::Lui { rd, imm20 } => self.set(rd, Interval::exact(imm20 << 12)),
            Insn::Auipc { rd, imm20 } => {
                self.set(rd, Interval::exact(pc.wrapping_add(imm20 << 12)));
            }
            Insn::AluImm { op, rd, rs1, imm } => {
                let a = self.get(rs1);
                self.set(rd, alu_interval(op, a, Interval::exact(imm as u32)));
            }
            Insn::Alu { op, rd, rs1, rs2 } => {
                let (a, b) = (self.get(rs1), self.get(rs2));
                self.set(rd, alu_interval(op, a, b));
            }
            Insn::MulDiv { op, rd, rs1, rs2 } => {
                let v = match (self.get(rs1).as_const(), self.get(rs2).as_const()) {
                    (Some(a), Some(b)) => Interval::exact(op.eval(a, b)),
                    _ => Interval::TOP,
                };
                self.set(rd, v);
            }
            Insn::Jal { rd, .. } | Insn::Jalr { rd, .. } => {
                self.set(rd, Interval::exact(pc.wrapping_add(4)));
            }
            _ => {
                if let Some(rd) = d.dest {
                    self.set(rd, Interval::TOP);
                }
            }
        }
    }
}

/// Taint bit: the value may derive from a secret Metal register.
pub const SECRET: u8 = 1;
/// Taint bit: the value derives from the saved return address (`m31`).
pub const RETADDR: u8 = 2;

/// Per-GPR taint environment.
#[derive(Clone, PartialEq, Eq)]
pub struct Taints(pub [u8; 32]);

impl Taints {
    /// Entry state: caller values carry no Metal-side taint.
    #[must_use]
    pub fn entry() -> Taints {
        Taints([0; 32])
    }

    /// The taint of a register.
    #[must_use]
    pub fn get(&self, r: Reg) -> u8 {
        self.0[r.index()]
    }

    fn set(&mut self, r: Reg, t: u8) {
        if r != Reg::ZERO {
            self.0[r.index()] = t;
        }
    }

    fn union_srcs(&self, d: &DecodedInsn) -> u8 {
        d.srcs.iter().flatten().fold(0, |acc, &r| acc | self.get(r))
    }
}

impl Lattice for Taints {
    fn join_from(&mut self, other: &Self, _widen: bool) -> bool {
        let mut changed = false;
        for (mine, theirs) in self.0.iter_mut().zip(other.0.iter()) {
            let joined = *mine | *theirs;
            changed |= joined != *mine;
            *mine = joined;
        }
        changed
    }

    fn transfer(&mut self, _idx: usize, d: &DecodedInsn, _pc: u32) {
        match d.insn {
            Insn::Rmr { rd, idx } => {
                let t = if idx == MregIdx::RETURN_ADDRESS {
                    RETADDR
                } else if idx.is_mreg() {
                    SECRET
                } else {
                    // MCRs carry event metadata, not stored secrets.
                    0
                };
                self.set(rd, t);
            }
            Insn::Mld { rd, .. } => self.set(rd, SECRET),
            Insn::AluImm { .. } | Insn::Alu { .. } | Insn::MulDiv { .. } => {
                if let Some(rd) = d.dest {
                    let t = self.union_srcs(d);
                    self.set(rd, t);
                }
            }
            // Loads from normal memory, upper immediates, CSR reads, and
            // link registers produce untainted values. (Known unsoundness:
            // a secret stored to normal memory and reloaded comes back
            // clean — the store itself is what the leak check flags.)
            _ => {
                if let Some(rd) = d.dest {
                    self.set(rd, 0);
                }
            }
        }
    }
}

/// Def-site bit marking the value live at unit entry (or any def the
/// bitset cannot name).
pub const DEF_ENTRY: u64 = 1 << 63;

/// Reaching definitions over the GPRs plus `m31` (slot 32). Each def
/// site is the instruction index, capped at 63 sites per unit; larger
/// units saturate into [`DEF_ENTRY`], which checks treat as unknown.
#[derive(Clone, PartialEq, Eq)]
pub struct ReachDefs(pub [u64; 33]);

/// The `m31` slot in [`ReachDefs`].
pub const M31_SLOT: usize = 32;

/// The def-site bit for instruction `idx`.
#[must_use]
pub fn def_bit(idx: usize) -> u64 {
    if idx < 63 {
        1 << idx
    } else {
        DEF_ENTRY
    }
}

impl ReachDefs {
    /// Entry state: everything defined by the caller/environment.
    #[must_use]
    pub fn entry() -> ReachDefs {
        ReachDefs([DEF_ENTRY; 33])
    }
}

impl Lattice for ReachDefs {
    fn join_from(&mut self, other: &Self, _widen: bool) -> bool {
        let mut changed = false;
        for (mine, theirs) in self.0.iter_mut().zip(other.0.iter()) {
            let joined = *mine | *theirs;
            changed |= joined != *mine;
            *mine = joined;
        }
        changed
    }

    fn transfer(&mut self, idx: usize, d: &DecodedInsn, _pc: u32) {
        if let Some(rd) = d.dest {
            self.0[rd.index()] = def_bit(idx);
        }
        if let Insn::Wmr { idx: mreg, .. } = d.insn {
            if mreg == MregIdx::RETURN_ADDRESS {
                self.0[M31_SLOT] = def_bit(idx);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::Cfg;
    use crate::dataflow::solve;
    use metal_asm::assemble_at;

    fn last_state<L: Lattice>(src: &str, entry: L) -> (Cfg, L) {
        let words = assemble_at(src, 0).unwrap();
        let cfg = Cfg::build(0, &words);
        let sol = solve(&cfg, entry);
        let last_block = cfg.block_of[cfg.insns.len() - 1];
        let states = sol.states_in_block(&cfg, last_block);
        let state = states.last().expect("last block reachable").clone();
        (cfg, state)
    }

    #[test]
    fn interval_tracks_li_and_addi() {
        let (_, iv) = last_state("li t0, 100\naddi t0, t0, 20\nmexit", Intervals::entry());
        assert_eq!(iv.get(Reg::T0).as_const(), Some(120));
    }

    #[test]
    fn interval_joins_branches() {
        let src = "li t0, 4\nbeqz a0, other\nli t0, 8\nother: mexit";
        let (_, iv) = last_state(src, Intervals::entry());
        let r = iv.get(Reg::T0);
        assert_eq!((r.lo, r.hi), (4, 8));
    }

    #[test]
    fn interval_andi_bounds() {
        let (_, iv) = last_state("andi t0, a0, 60\nmexit", Intervals::entry());
        let r = iv.get(Reg::T0);
        assert_eq!((r.lo, r.hi), (0, 60));
    }

    #[test]
    fn interval_widens_loop_counter() {
        // Counter decremented in a loop must terminate the solver.
        let src = "li t0, 5\nloop: addi t0, t0, -1\nbnez t0, loop\nmexit";
        let (_, iv) = last_state(src, Intervals::entry());
        assert!(iv.get(Reg::T0).is_top() || iv.get(Reg::T0).hi < 6);
    }

    #[test]
    fn taint_flows_through_alu() {
        let (_, t) = last_state("rmr t0, m3\naddi t1, t0, 1\nmexit", Taints::entry());
        assert_eq!(t.get(Reg::T1), SECRET);
    }

    #[test]
    fn taint_cleared_by_constant() {
        let (_, t) = last_state("rmr t0, m3\nli t0, 0\nmexit", Taints::entry());
        assert_eq!(t.get(Reg::T0), 0);
    }

    #[test]
    fn retaddr_taint_from_m31() {
        let src = "rmr t0, m31\naddi t0, t0, 4\nmexit";
        let (_, t) = last_state(src, Taints::entry());
        assert_eq!(t.get(Reg::T0), RETADDR);
    }

    #[test]
    fn mcr_reads_are_untainted() {
        let (_, t) = last_state("rmr t0, mcause\nmexit", Taints::entry());
        assert_eq!(t.get(Reg::T0), 0);
    }

    #[test]
    fn reaching_defs_track_m31_writes() {
        let src = "li t0, 16\nwmr m31, t0\nmexit";
        let (_, rd) = last_state(src, ReachDefs::entry());
        assert_eq!(rd.0[M31_SLOT], def_bit(1)); // the `wmr` at index 1
    }
}
