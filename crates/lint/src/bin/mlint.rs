//! `mlint`: dataflow static analyzer for mcode assembly files.
//!
//! ```text
//! mlint [--program|--mroutine] [--base ADDR] [--nested] [--budget N]
//!       [--data-bytes N] [--deny-warnings] FILE...
//! ```
//!
//! Each file is assembled and analyzed as one unit; diagnostics print as
//! `file:line:col: level[check]: message (pc 0x…)`. The exit code is a
//! failure when any diagnostic denies (or, with `--deny-warnings`, when
//! any diagnostic fires at all).

use std::process::ExitCode;

use metal_lint::{lint_source, Level, LintConfig, UnitKind, MRAM_BASE};
use metal_util::cli::{parse_u32, usage};

const USAGE: &str = "mlint [--program|--mroutine] [--base ADDR] [--nested] [--budget N] \
                     [--data-bytes N] [--deny-warnings] FILE...";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = LintConfig::mroutine(MRAM_BASE);
    let mut deny_warnings = false;
    let mut files = Vec::new();
    let mut base_set = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-h" | "--help" => return usage("mlint", USAGE, ""),
            "--program" => config.kind = UnitKind::Program,
            "--mroutine" => config.kind = UnitKind::Mroutine,
            "--nested" => config.nested_allowed = true,
            "--deny-warnings" => deny_warnings = true,
            "--base" => {
                let Some(v) = it.next().and_then(|s| parse_u32(s)) else {
                    return usage("mlint", USAGE, "--base needs a numeric address");
                };
                config.base = v;
                base_set = true;
            }
            "--budget" => {
                let Some(v) = it.next().and_then(|s| parse_u32(s)) else {
                    return usage("mlint", USAGE, "--budget needs a number");
                };
                config.budget = u64::from(v);
            }
            "--data-bytes" => {
                let Some(v) = it.next().and_then(|s| parse_u32(s)) else {
                    return usage("mlint", USAGE, "--data-bytes needs a number");
                };
                config.data_bytes = v;
            }
            other if other.starts_with('-') => {
                return usage("mlint", USAGE, &format!("unknown option {other}"));
            }
            file => files.push(file.to_owned()),
        }
    }
    if files.is_empty() {
        return usage("mlint", USAGE, "no input files");
    }
    // Guest programs conventionally assemble at 0 unless told otherwise.
    if config.kind == UnitKind::Program && !base_set {
        config.base = 0;
    }

    let mut failed = false;
    for file in &files {
        let src = match std::fs::read_to_string(file) {
            Ok(src) => src,
            Err(e) => {
                eprintln!("mlint: {file}: {e}");
                failed = true;
                continue;
            }
        };
        let diags = match lint_source(&src, &config) {
            Ok(diags) => diags,
            Err(e) => {
                eprintln!("mlint: {file}: {e}");
                failed = true;
                continue;
            }
        };
        for d in &diags {
            println!("{}", d.render(file));
            if d.level == Level::Deny || deny_warnings {
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
