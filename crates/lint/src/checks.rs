//! The seven lint checks, run over one unit's CFG and fixpoint states.
//!
//! Two layers coexist here. The *linear* pass reproduces the loader's
//! historical per-instruction verification (privilege and structural
//! findings with byte-identical messages, so `metal_core::verify` can
//! delegate without behavior change). The *dataflow* passes add what a
//! linear scan cannot see: statically-resolved `mld`/`mst` bounds,
//! `m31` clobbers that actually reach an `mexit`, secret values that
//! escape Metal mode, loop bounds for the instruction budget, and
//! constant-folded `mintercept` arms.

use crate::cfg::Cfg;
use crate::dataflow::{solve, Lattice, Solution};
use crate::domains::{def_bit, Intervals, ReachDefs, Taints, M31_SLOT, RETADDR, SECRET};
use crate::{Check, Diagnostic, Level, LintConfig, UnitKind};
use metal_asm::Assembled;
use metal_isa::insn::{AluOp, Cond, CsrSrc, Insn};
use metal_isa::metal::{MarchOp, MAX_MROUTINES, MENTER_INDIRECT, METAL_OPCODE};
use metal_isa::reg::MregIdx;
use metal_isa::{disassemble, InterceptSelector, Reg};

/// Everything the analyzer learned about one unit.
pub struct UnitReport {
    /// All findings, in address order per pass.
    pub diagnostics: Vec<Diagnostic>,
    /// Statically-resolved `mintercept` arms: `(selector, entry, pc)`.
    pub intercepts: Vec<(InterceptSelector, u32, u32)>,
    /// Statically-resolved nested `menter` entries: `(entry, pc)`.
    pub menter_entries: Vec<(u32, u32)>,
    /// Worst-case instruction count, when every loop is bounded.
    pub wcet: Option<u64>,
    /// `mld`/`mst` sites whose exact address could not be resolved to a
    /// constant. A unit with no bounds denial *and* zero unresolved
    /// accesses is provably in-bounds; otherwise "no denial" only means
    /// "nothing provably wrong" (the soundness harness needs the
    /// distinction).
    pub unresolved_accesses: u32,
}

/// Context shared by every check while analyzing one unit.
struct Analyzer<'a> {
    cfg: Cfg,
    config: &'a LintConfig,
    asm: Option<&'a Assembled>,
    report: UnitReport,
}

impl Analyzer<'_> {
    fn diag(&mut self, level: Level, check: Check, pc: u32, message: String) {
        let span = self.asm.and_then(|a| a.span_at(pc));
        self.report.diagnostics.push(Diagnostic {
            level,
            check,
            pc,
            line: span.map(|s| s.line),
            col: span.map(|s| s.col),
            message,
        });
    }

    /// The loader's historical linear verification pass. Message texts
    /// and ordering match `metal_core::verify::verify_routine` exactly;
    /// each finding is additionally tagged with the producing check so
    /// callers can filter.
    fn linear_mroutine_pass(&mut self) {
        let checks = self.config.checks;
        let (window_start, window_end) = self.config.code_window();
        let mut saw_exit_path = false;
        for idx in 0..self.cfg.insns.len() {
            let pc = self.cfg.pc_of(idx);
            let d = self.cfg.insns[idx];
            if d.is_illegal() {
                if checks.privilege {
                    self.diag(
                        Level::Deny,
                        Check::Privilege,
                        pc,
                        format!("illegal instruction word {:#010x}", d.word),
                    );
                }
                continue;
            }
            match d.insn {
                Insn::Ecall | Insn::Mret | Insn::Wfi if checks.privilege => {
                    self.diag(
                        Level::Deny,
                        Check::Privilege,
                        pc,
                        format!(
                            "environment instruction {:?} is not allowed in an mroutine",
                            d.insn
                        ),
                    );
                }
                Insn::Menter { entry, .. } => {
                    if !self.config.nested_allowed {
                        if checks.privilege {
                            self.diag(
                                Level::Deny,
                                Check::Privilege,
                                pc,
                                "nested menter requires a layered (nested Metal) configuration"
                                    .to_owned(),
                            );
                        }
                    } else if entry == MENTER_INDIRECT {
                        if checks.privilege {
                            self.diag(
                                Level::Warn,
                                Check::Privilege,
                                pc,
                                "indirect nested menter cannot be checked statically".to_owned(),
                            );
                        }
                    } else {
                        self.report.menter_entries.push((entry, pc));
                    }
                }
                Insn::Mexit => saw_exit_path = true,
                Insn::Jal { offset, .. } => {
                    let target = pc.wrapping_add(offset as u32);
                    if (target < window_start || target >= window_end) && checks.structure {
                        self.diag(
                            Level::Deny,
                            Check::Structure,
                            pc,
                            format!("jal target {target:#010x} leaves the mroutine code window"),
                        );
                    }
                }
                Insn::Branch { offset, .. } => {
                    let target = pc.wrapping_add(offset as u32);
                    if (target < window_start || target >= window_end) && checks.structure {
                        self.diag(
                            Level::Deny,
                            Check::Structure,
                            pc,
                            format!("branch target {target:#010x} leaves the mroutine code window"),
                        );
                    }
                }
                Insn::Jalr { .. } => {
                    if checks.structure {
                        self.diag(
                            Level::Warn,
                            Check::Structure,
                            pc,
                            "jalr target cannot be checked statically".to_owned(),
                        );
                    }
                    saw_exit_path = true; // may be a computed return
                }
                Insn::Ebreak if checks.structure => {
                    self.diag(
                        Level::Warn,
                        Check::Structure,
                        pc,
                        "ebreak halts the machine; debug use only".to_owned(),
                    );
                }
                _ => {}
            }
        }
        if !saw_exit_path && !self.cfg.insns.is_empty() && checks.structure {
            self.diag(
                Level::Warn,
                Check::Structure,
                self.config.base,
                "no mexit (or computed jump) found: the mroutine never returns".to_owned(),
            );
        } else if self.cfg.falls_off_end.is_some() && checks.deadcode {
            // Suppressed when the missing-mexit warning already fired:
            // both describe the same defect (the routine does not return
            // cleanly) and the loader surfaces exactly one finding.
            let idx = self.cfg.falls_off_end.expect("checked");
            self.diag(
                Level::Warn,
                Check::Structure,
                self.cfg.pc_of(idx),
                "control can fall through the end of the code segment".to_owned(),
            );
        }
        if checks.deadcode {
            self.dead_code_pass();
        }
    }

    /// Guest-program mode correctness: Metal-only instructions (and
    /// illegal words) on any statically-reachable path are denied;
    /// reachability is discarded when a computed jump could reach
    /// anything.
    fn program_pass(&mut self) {
        let checks = self.config.checks;
        let computed_jump = (0..self.cfg.insns.len())
            .any(|i| self.cfg.reachable[i] && matches!(self.cfg.insns[i].insn, Insn::Jalr { .. }));
        for idx in 0..self.cfg.insns.len() {
            if !self.cfg.reachable[idx] && !computed_jump {
                continue;
            }
            let pc = self.cfg.pc_of(idx);
            let d = self.cfg.insns[idx];
            if d.is_illegal() {
                if checks.privilege && self.cfg.reachable[idx] {
                    self.diag(
                        Level::Deny,
                        Check::Privilege,
                        pc,
                        format!("illegal instruction word {:#010x} is reachable", d.word),
                    );
                }
                continue;
            }
            if d.insn.metal_mode_only() && checks.privilege {
                self.diag(
                    Level::Deny,
                    Check::Privilege,
                    pc,
                    format!(
                        "Metal-only instruction `{}` is reachable outside Metal mode",
                        disassemble(&d.insn)
                    ),
                );
            }
        }
        if checks.structure {
            let escapes: Vec<_> = self
                .cfg
                .escapes
                .iter()
                .filter(|e| self.cfg.reachable[e.idx])
                .copied()
                .collect();
            for e in escapes {
                let pc = self.cfg.pc_of(e.idx);
                self.diag(
                    Level::Warn,
                    Check::Structure,
                    pc,
                    format!("jump target {:#010x} leaves the program image", e.target),
                );
            }
            if let Some(idx) = self.cfg.falls_off_end {
                self.diag(
                    Level::Warn,
                    Check::Structure,
                    self.cfg.pc_of(idx),
                    "control can fall through the end of the code segment".to_owned(),
                );
            }
        }
        if checks.deadcode && !computed_jump {
            self.dead_code_pass();
        }
    }

    /// One warning per maximal run of unreachable, legal instructions.
    fn dead_code_pass(&mut self) {
        let mut idx = 0;
        while idx < self.cfg.insns.len() {
            if self.cfg.reachable[idx] || self.cfg.insns[idx].is_illegal() {
                idx += 1;
                continue;
            }
            let start = idx;
            while idx < self.cfg.insns.len()
                && !self.cfg.reachable[idx]
                && !self.cfg.insns[idx].is_illegal()
            {
                idx += 1;
            }
            let n = idx - start;
            self.diag(
                Level::Warn,
                Check::Structure,
                self.cfg.pc_of(start),
                format!(
                    "unreachable code: {n} instruction{} can never execute",
                    if n == 1 { "" } else { "s" }
                ),
            );
        }
    }

    /// The dataflow battery: bounds, retaddr, leak, intercept. All three
    /// lattices are solved once and replayed per block.
    fn dataflow_pass(&mut self) {
        let checks = self.config.checks;
        let iv = solve(&self.cfg, Intervals::entry());
        let tn = solve(&self.cfg, Taints::entry());
        let rd = solve(&self.cfg, ReachDefs::entry());

        // First sweep: collect m31 clobber sites (a `wmr m31` whose
        // source does not derive from the saved return address).
        let mut clobbers: Vec<(usize, u32)> = Vec::new();
        let mut pending = Vec::new();
        for id in 0..self.cfg.blocks.len() {
            let taints = tn.states_in_block(&self.cfg, id);
            let ivals = iv.states_in_block(&self.cfg, id);
            if taints.is_empty() {
                continue; // unreachable block
            }
            let block = &self.cfg.blocks[id];
            for (off, idx) in (block.start..block.end).enumerate() {
                let pc = self.cfg.pc_of(idx);
                let d = self.cfg.insns[idx];
                match d.insn {
                    Insn::Mld { rs1, offset, .. } | Insn::Mst { rs1, offset, .. }
                        if checks.bounds =>
                    {
                        self.check_bounds(&ivals[off], &d.insn, rs1, offset, pc);
                    }
                    Insn::Wmr {
                        rs1,
                        idx: MregIdx::RETURN_ADDRESS,
                    } if checks.retaddr && taints[off].get(rs1) & RETADDR == 0 => {
                        clobbers.push((idx, pc));
                    }
                    Insn::Store { rs2, .. }
                        if checks.leak && taints[off].get(rs2) & SECRET != 0 =>
                    {
                        pending.push((
                            pc,
                            "secret Metal-register value stored to normal memory".to_owned(),
                        ));
                    }
                    Insn::March {
                        op: MarchOp::Mpst,
                        rs2,
                        ..
                    } if checks.leak && taints[off].get(rs2) & SECRET != 0 => {
                        pending.push((
                            pc,
                            "secret Metal-register value stored to physical memory".to_owned(),
                        ));
                    }
                    Insn::Csr {
                        src: CsrSrc::Reg(rs1),
                        ..
                    } if checks.leak && taints[off].get(rs1) & SECRET != 0 => {
                        pending.push((
                            pc,
                            "secret Metal-register value written to a CSR".to_owned(),
                        ));
                    }
                    Insn::Mexit if checks.leak => {
                        let leaked: Vec<&str> = (1..32)
                            .filter(|&r| taints[off].0[r] & SECRET != 0)
                            .map(|r| Reg::new(r as u8).expect("index < 32").abi_name())
                            .collect();
                        if !leaked.is_empty() {
                            pending.push((
                                pc,
                                format!(
                                    "register{} {} still hold{} a secret Metal-register value \
                                     at mexit",
                                    if leaked.len() == 1 { "" } else { "s" },
                                    leaked.join(", "),
                                    if leaked.len() == 1 { "s" } else { "" }
                                ),
                            ));
                        }
                    }
                    Insn::March {
                        op: MarchOp::Mintercept,
                        rs1,
                        rs2,
                        ..
                    } if checks.intercept => {
                        self.check_intercept(&ivals[off], rs1, rs2, pc);
                    }
                    _ => {}
                }
            }
        }
        for (pc, msg) in pending {
            self.diag(Level::Warn, Check::Leak, pc, msg);
        }

        // Second sweep: a clobber only matters if its definition reaches
        // an `mexit` (the architectural consumer of m31).
        if checks.retaddr && !clobbers.is_empty() {
            let mut reaches = vec![false; clobbers.len()];
            for id in 0..self.cfg.blocks.len() {
                let rdefs = rd.states_in_block(&self.cfg, id);
                if rdefs.is_empty() {
                    continue;
                }
                let block = &self.cfg.blocks[id];
                for (off, idx) in (block.start..block.end).enumerate() {
                    if !matches!(self.cfg.insns[idx].insn, Insn::Mexit) {
                        continue;
                    }
                    let live = rdefs[off].0[M31_SLOT];
                    for (ci, &(cidx, _)) in clobbers.iter().enumerate() {
                        if live & def_bit(cidx) != 0 {
                            reaches[ci] = true;
                        }
                    }
                }
            }
            for (ci, &(_, pc)) in clobbers.iter().enumerate() {
                if reaches[ci] {
                    self.diag(
                        Level::Warn,
                        Check::RetAddr,
                        pc,
                        "m31 overwritten with a non-return-address value reaches mexit; \
                         the mroutine will not resume the interrupted program"
                            .to_owned(),
                    );
                }
            }
        }

        if checks.budget {
            self.budget_pass(&iv);
        }
    }

    /// MRAM data-segment bounds for one `mld`/`mst`.
    fn check_bounds(&mut self, iv: &Intervals, insn: &Insn, rs1: Reg, offset: i32, pc: u32) {
        let mn = if matches!(insn, Insn::Mld { .. }) {
            "mld"
        } else {
            "mst"
        };
        let addr = iv.get(rs1).add_const(offset);
        if addr.is_top() {
            self.report.unresolved_accesses += 1;
            return; // nothing statically known
        }
        let data = u64::from(self.config.data_bytes);
        if addr.as_const().is_none() {
            // A range can still be denied below, but a range that passes
            // is not a proof: alignment within the range is unknown.
            self.report.unresolved_accesses += 1;
        }
        if let Some(a) = addr.as_const() {
            let a64 = u64::from(a);
            if a64 + 4 > data {
                self.diag(
                    Level::Deny,
                    Check::Bounds,
                    pc,
                    format!("{mn} offset {a:#x} is outside the {data}-byte MRAM data segment"),
                );
            } else if a % 4 != 0 {
                self.diag(
                    Level::Deny,
                    Check::Bounds,
                    pc,
                    format!("{mn} offset {a:#x} is not 4-byte aligned"),
                );
            }
        } else if addr.lo + 4 > data {
            self.diag(
                Level::Deny,
                Check::Bounds,
                pc,
                format!(
                    "{mn} offsets {:#x}..={:#x} are outside the {data}-byte MRAM data segment",
                    addr.lo, addr.hi
                ),
            );
        } else if addr.hi + 4 > data {
            self.diag(
                Level::Warn,
                Check::Bounds,
                pc,
                format!(
                    "{mn} offset may reach {:#x}, beyond the {data}-byte MRAM data segment",
                    addr.hi
                ),
            );
        }
    }

    /// Constant-folds one `mintercept` arm.
    fn check_intercept(&mut self, iv: &Intervals, rs1: Reg, rs2: Reg, pc: u32) {
        let (sel, arg) = (iv.get(rs1).as_const(), iv.get(rs2).as_const());
        let (Some(sel), Some(arg)) = (sel, arg) else {
            self.diag(
                Level::Warn,
                Check::Intercept,
                pc,
                "mintercept selector or target cannot be resolved statically".to_owned(),
            );
            return;
        };
        let selector = InterceptSelector::decode(sel);
        let entry = arg >> 1;
        let enabled = arg & 1 != 0;
        if u64::from(entry) >= MAX_MROUTINES as u64 {
            self.diag(
                Level::Deny,
                Check::Intercept,
                pc,
                format!("mintercept target entry {entry} exceeds the {MAX_MROUTINES}-slot table"),
            );
            return;
        }
        let opcode = match selector {
            InterceptSelector::OpcodeClass { opcode } | InterceptSelector::Exact { opcode, .. } => {
                opcode
            }
        };
        if opcode == METAL_OPCODE {
            self.diag(
                Level::Warn,
                Check::Intercept,
                pc,
                format!(
                    "intercept selector {selector} captures the Metal opcode itself; \
                     menter would recurse through the intercept table"
                ),
            );
        }
        if enabled {
            self.report.intercepts.push((selector, entry, pc));
        }
    }

    /// Worst-case instruction count: every reachable block's length,
    /// multiplied by the trip bound of each loop containing it.
    fn budget_pass(&mut self, iv: &Solution<Intervals>) {
        let backs = self.cfg.back_edges();
        // (blocks of the loop, trip bound) per back edge.
        let mut loops: Vec<(Vec<usize>, Option<u64>)> = Vec::new();
        for &(tail, head) in &backs {
            let body = self.cfg.natural_loop(tail, head);
            let bound = self.loop_bound(iv, &body, head);
            if bound.is_none() {
                let pc = self.cfg.pc_of(self.cfg.blocks[head].start);
                self.diag(
                    Level::Warn,
                    Check::Budget,
                    pc,
                    format!(
                        "loop at {pc:#010x} has no statically-derivable trip bound; \
                         worst-case instruction count is unbounded"
                    ),
                );
            }
            loops.push((body, bound));
        }
        let mut wcet: Option<u64> = Some(0);
        for (id, block) in self.cfg.blocks.iter().enumerate() {
            if !self.cfg.reachable[block.start] {
                continue;
            }
            let mut mult: Option<u64> = Some(1);
            for (body, bound) in &loops {
                if body.contains(&id) {
                    mult = match (mult, bound) {
                        (Some(m), Some(b)) => Some(m.saturating_mul((*b).max(1))),
                        _ => None,
                    };
                }
            }
            let len = (block.end - block.start) as u64;
            wcet = match (wcet, mult) {
                (Some(w), Some(m)) => Some(w.saturating_add(len.saturating_mul(m))),
                _ => None,
            };
        }
        if let Some(w) = wcet {
            if w > self.config.budget {
                self.diag(
                    Level::Deny,
                    Check::Budget,
                    self.config.base,
                    format!(
                        "worst-case instruction count {w} exceeds the budget of {}",
                        self.config.budget
                    ),
                );
            }
        }
        self.report.wcet = wcet;
    }

    /// Bounds the trips of the natural loop `body` headed at `head`:
    /// recognizes a single in-loop `addi r, r, -c` counter paired with a
    /// `bnez r` / `beqz r` exit, seeded by the counter's interval on
    /// entry to the loop.
    fn loop_bound(&self, iv: &Solution<Intervals>, body: &[usize], head: usize) -> Option<u64> {
        // The exit test: a conditional branch in the loop comparing some
        // register against x0.
        let mut counter: Option<Reg> = None;
        for &id in body {
            let last = self.cfg.blocks[id].end - 1;
            if let Insn::Branch {
                cond: Cond::Ne | Cond::Eq,
                rs1,
                rs2: Reg::ZERO,
                ..
            } = self.cfg.insns[last].insn
            {
                // One edge must leave the loop for this to be an exit.
                let leaves = self.cfg.blocks[id].succs.iter().any(|s| !body.contains(s))
                    || self.cfg.blocks[id].succs.len() < 2;
                if leaves {
                    counter = Some(rs1);
                    break;
                }
            }
        }
        let r = counter?;
        // Exactly one in-loop definition of the counter, a constant
        // decrement.
        let mut step: Option<u64> = None;
        for &id in body {
            let block = &self.cfg.blocks[id];
            for idx in block.start..block.end {
                let d = self.cfg.insns[idx];
                if d.dest != Some(r) {
                    continue;
                }
                match d.insn {
                    Insn::AluImm {
                        op: AluOp::Add,
                        rd,
                        rs1,
                        imm,
                    } if rd == r && rs1 == r && imm < 0 => {
                        if step.is_some() {
                            return None; // multiple defs
                        }
                        step = Some(imm.unsigned_abs() as u64);
                    }
                    _ => return None,
                }
            }
        }
        let c = step?;
        // Initial value: join of the counter's range over all out-states
        // of the head's non-loop predecessors.
        let mut init: Option<crate::domains::Interval> = None;
        for (pid, block) in self.cfg.blocks.iter().enumerate() {
            if body.contains(&pid) || !block.succs.contains(&head) {
                continue;
            }
            let states = iv.states_in_block(&self.cfg, pid);
            let Some(last) = states.last() else {
                continue;
            };
            let mut out = last.clone();
            out.transfer(
                block.end - 1,
                &self.cfg.insns[block.end - 1],
                self.cfg.pc_of(block.end - 1),
            );
            let range = out.get(r);
            init = Some(match init {
                Some(acc) => acc.join(range),
                None => range,
            });
        }
        let init = init?;
        if init.is_top() {
            return None;
        }
        if c == 1 {
            Some(init.hi)
        } else {
            // A stride > 1 only provably hits zero from a known multiple.
            let v = u64::from(init.as_const()?);
            (v % c == 0).then_some(v / c)
        }
    }
}

/// Runs every enabled check over `words` at `config.base`.
#[must_use]
pub fn analyze(words: &[u32], config: &LintConfig, asm: Option<&Assembled>) -> UnitReport {
    let cfg = Cfg::build(config.base, words);
    let mut a = Analyzer {
        cfg,
        config,
        asm,
        report: UnitReport {
            diagnostics: Vec::new(),
            intercepts: Vec::new(),
            menter_entries: Vec::new(),
            wcet: None,
            unresolved_accesses: 0,
        },
    };
    match config.kind {
        UnitKind::Mroutine => {
            a.linear_mroutine_pass();
            let c = config.checks;
            if c.bounds || c.retaddr || c.leak || c.budget || c.intercept {
                a.dataflow_pass();
            }
        }
        UnitKind::Program => a.program_pass(),
    }
    a.report
}

/// Cross-routine redirection analysis over per-unit reports.
///
/// Each element pairs an mroutine's entry number with its report. An
/// edge `a -> b` exists when routine `a` arms an intercept targeting
/// entry `b` or nest-enters `b` directly; cycles mean an intercepted
/// instruction (or nested entry) can bounce between mroutines forever.
#[must_use]
pub fn cross_routine(units: &[(u32, &UnitReport)]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let entries: Vec<u32> = units.iter().map(|&(e, _)| e).collect();
    // Adjacency by position in `units`, plus the arming pc per edge.
    let mut edges: Vec<Vec<(usize, u32)>> = vec![Vec::new(); units.len()];
    for (i, &(_, report)) in units.iter().enumerate() {
        let targets = report
            .intercepts
            .iter()
            .map(|&(_, entry, pc)| (entry, pc))
            .chain(report.menter_entries.iter().copied());
        for (entry, pc) in targets {
            match entries.iter().position(|&e| e == entry) {
                Some(j) => edges[i].push((j, pc)),
                None => diags.push(Diagnostic {
                    level: Level::Warn,
                    check: Check::Intercept,
                    pc,
                    line: None,
                    col: None,
                    message: format!(
                        "redirection targets entry {entry}, which is not among the \
                         analyzed mroutines"
                    ),
                }),
            }
        }
    }
    // DFS cycle detection; report the back edge's arming site.
    let n = units.len();
    let mut state = vec![0u8; n];
    for root in 0..n {
        if state[root] != 0 {
            continue;
        }
        let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
        state[root] = 1;
        while let Some(&(id, next)) = stack.last() {
            if next < edges[id].len() {
                stack.last_mut().expect("non-empty").1 += 1;
                let (j, pc) = edges[id][next];
                match state[j] {
                    0 => {
                        state[j] = 1;
                        stack.push((j, 0));
                    }
                    1 => diags.push(Diagnostic {
                        level: Level::Deny,
                        check: Check::Intercept,
                        pc,
                        line: None,
                        col: None,
                        message: format!(
                            "mroutine redirection cycle: entry {} redirects to entry {}, \
                             which reaches entry {} again",
                            entries[id], entries[j], entries[id]
                        ),
                    }),
                    _ => {}
                }
            } else {
                state[id] = 2;
                stack.pop();
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lint_words, MRAM_BASE};
    use metal_asm::assemble_at;

    const BASE: u32 = MRAM_BASE + 0x100;

    fn lint(src: &str) -> Vec<Diagnostic> {
        let words = assemble_at(src, BASE).unwrap();
        lint_words(&words, &LintConfig::mroutine(BASE))
    }

    fn report(src: &str) -> UnitReport {
        let words = assemble_at(src, BASE).unwrap();
        analyze(&words, &LintConfig::mroutine(BASE), None)
    }

    fn has(diags: &[Diagnostic], check: Check, level: Level) -> bool {
        diags.iter().any(|d| d.check == check && d.level == level)
    }

    #[test]
    fn oob_mst_denied() {
        let d = lint("li t0, 4096\nmst a0, 0(t0)\nmexit");
        assert!(has(&d, Check::Bounds, Level::Deny), "{d:?}");
    }

    #[test]
    fn in_bounds_mst_clean() {
        let d = lint("li t0, 128\nmst a0, 0(t0)\nmexit");
        assert!(!has(&d, Check::Bounds, Level::Deny), "{d:?}");
        assert!(!has(&d, Check::Bounds, Level::Warn), "{d:?}");
    }

    #[test]
    fn misaligned_mld_denied() {
        let d = lint("li t0, 6\nmld a0, 0(t0)\nmexit");
        assert!(has(&d, Check::Bounds, Level::Deny), "{d:?}");
    }

    #[test]
    fn masked_index_bounded_clean() {
        // andi clamps the index below the segment size: provably fine.
        let d = lint("andi t0, a0, 0xFC\nmld a1, 0(t0)\nmexit");
        assert!(d.iter().all(|x| x.check != Check::Bounds), "{d:?}");
    }

    #[test]
    fn range_straddling_segment_warns() {
        // 0..=8176 after shifting could reach past 4096: warn, not deny.
        let d = lint("andi t0, a0, 0x7FC\nslli t0, t0, 2\nmld a1, 0(t0)\nmexit");
        assert!(has(&d, Check::Bounds, Level::Warn), "{d:?}");
        assert!(!has(&d, Check::Bounds, Level::Deny), "{d:?}");
    }

    #[test]
    fn m31_clobber_reaching_mexit_flagged() {
        let d = lint("li t0, 0x100\nwmr m31, t0\nmexit");
        assert!(has(&d, Check::RetAddr, Level::Warn), "{d:?}");
    }

    #[test]
    fn m31_advance_idiom_clean() {
        // The skip-intercepted idiom: m31 += 4 keeps the RETADDR taint.
        let d = lint("rmr t0, m31\naddi t0, t0, 4\nwmr m31, t0\nmexit");
        assert!(!has(&d, Check::RetAddr, Level::Warn), "{d:?}");
    }

    #[test]
    fn m31_clobber_without_mexit_not_flagged() {
        // The clobbered value never reaches an mexit.
        let d = lint("li t0, 0x100\nwmr m31, t0\nrmr t1, m31\nebreak");
        assert!(!has(&d, Check::RetAddr, Level::Warn), "{d:?}");
    }

    #[test]
    fn leaky_routine_flagged_clean_twin_passes() {
        let leaky = lint("rmr t0, m0\nmexit");
        assert!(has(&leaky, Check::Leak, Level::Warn), "{leaky:?}");
        let clean = lint("rmr t0, m0\nli t0, 0\nmexit");
        assert!(!has(&clean, Check::Leak, Level::Warn), "{clean:?}");
    }

    #[test]
    fn secret_store_to_normal_memory_flagged() {
        let d = lint("rmr t0, m3\nsw t0, 0(a0)\nmexit");
        assert!(has(&d, Check::Leak, Level::Warn), "{d:?}");
    }

    #[test]
    fn secret_kept_in_mram_clean() {
        let d = lint("rmr t0, m3\nmst t0, 0(zero)\nli t0, 0\nmexit");
        assert!(!has(&d, Check::Leak, Level::Warn), "{d:?}");
    }

    #[test]
    fn bounded_loop_has_wcet() {
        let r = report("li t0, 5\nloop: addi t0, t0, -1\nbnez t0, loop\nmexit");
        let w = r.wcet.expect("bounded");
        // 1 (li) + 5 iterations of 2 + 1 (mexit), give or take block
        // accounting: must be finite and past the trip count.
        assert!((10..100).contains(&w), "wcet {w}");
        assert!(!has(&r.diagnostics, Check::Budget, Level::Warn));
    }

    #[test]
    fn data_dependent_loop_warns_unbounded() {
        let r = report("loop: addi t0, t0, -1\nbnez t0, loop\nmexit");
        assert!(r.wcet.is_none());
        assert!(
            has(&r.diagnostics, Check::Budget, Level::Warn),
            "{:?}",
            r.diagnostics
        );
    }

    #[test]
    fn budget_overrun_denied() {
        let words = assemble_at(
            "li t0, 5000\nloop: addi t0, t0, -1\nbnez t0, loop\nmexit",
            BASE,
        )
        .unwrap();
        let config = LintConfig::mroutine(BASE); // budget 4096
        let r = analyze(&words, &config, None);
        assert!(
            has(&r.diagnostics, Check::Budget, Level::Deny),
            "{:?}",
            r.diagnostics
        );
    }

    #[test]
    fn const_intercept_arm_recorded() {
        // Selector: opcode class 0x23 (STORE); target entry 3, enabled.
        let r = report("li t0, 0x23\nli t1, 7\nmintercept t0, t1\nmexit");
        assert_eq!(r.intercepts.len(), 1);
        let (sel, entry, _) = r.intercepts[0];
        assert_eq!(entry, 3);
        assert!(sel.matches(0x0000_0023));
    }

    #[test]
    fn metal_opcode_selector_warns() {
        let d = lint("li t0, 0x0B\nli t1, 3\nmintercept t0, t1\nmexit");
        assert!(has(&d, Check::Intercept, Level::Warn), "{d:?}");
    }

    #[test]
    fn unresolvable_intercept_warns() {
        let d = lint("mintercept a0, a1\nmexit");
        assert!(has(&d, Check::Intercept, Level::Warn), "{d:?}");
    }

    #[test]
    fn intercept_cycle_detected() {
        // Routine 1 arms an intercept into entry 2 and vice versa.
        let r1 = report("li t0, 0x23\nli t1, 5\nmintercept t0, t1\nmexit"); // -> entry 2
        let r2 = report("li t0, 0x23\nli t1, 3\nmintercept t0, t1\nmexit"); // -> entry 1
        let diags = cross_routine(&[(1, &r1), (2, &r2)]);
        assert!(has(&diags, Check::Intercept, Level::Deny), "{diags:?}");
    }

    #[test]
    fn intercept_unknown_target_warns() {
        let r1 = report("li t0, 0x23\nli t1, 9\nmintercept t0, t1\nmexit"); // -> entry 4
        let diags = cross_routine(&[(1, &r1)]);
        assert!(has(&diags, Check::Intercept, Level::Warn), "{diags:?}");
    }

    #[test]
    fn program_metal_insn_denied_only_when_reachable() {
        let words = assemble_at("addi a0, a0, 1\nrmr t0, m3\necall", 0).unwrap();
        let d = lint_words(&words, &LintConfig::program(0));
        assert!(has(&d, Check::Privilege, Level::Deny), "{d:?}");

        let dead = assemble_at("j skip\nrmr t0, m3\nskip: ecall", 0).unwrap();
        let d = lint_words(&dead, &LintConfig::program(0));
        assert!(!has(&d, Check::Privilege, Level::Deny), "{d:?}");
    }

    #[test]
    fn program_menter_is_legal() {
        let words = assemble_at("menter 2\necall", 0).unwrap();
        let d = lint_words(&words, &LintConfig::program(0));
        assert!(!has(&d, Check::Privilege, Level::Deny), "{d:?}");
    }

    #[test]
    fn dead_code_warned_in_mroutine() {
        let d = lint("j done\naddi a0, a0, 1\ndone: mexit");
        assert!(
            d.iter().any(|x| x.message.contains("unreachable code")),
            "{d:?}"
        );
    }

    #[test]
    fn legacy_messages_preserved() {
        let d = lint("ecall\nmexit");
        assert_eq!(
            d[0].message,
            "environment instruction Ecall is not allowed in an mroutine"
        );
        let d = lint("addi t0, t0, 1");
        assert!(d
            .iter()
            .any(|x| x.message == "no mexit (or computed jump) found: the mroutine never returns"));
    }
}
