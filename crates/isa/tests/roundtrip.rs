//! Property tests: encode/decode are mutually inverse on canonical
//! instructions, and decode never panics on arbitrary words.

use metal_isa::insn::{AluOp, Cond, CsrOp, CsrSrc, Insn, LoadOp, MulOp, StoreOp};
use metal_isa::metal::{MarchOp, MENTER_INDIRECT};
use metal_isa::reg::{MregIdx, Reg};
use metal_isa::{decode, encode, try_encode};
use metal_util::Rng;

fn rand_reg(rng: &mut Rng) -> Reg {
    Reg::new(rng.range_u32(0, 32) as u8).unwrap()
}

fn rand_cond(rng: &mut Rng) -> Cond {
    *rng.pick(&[Cond::Eq, Cond::Ne, Cond::Lt, Cond::Ge, Cond::Ltu, Cond::Geu])
}

fn rand_alu_reg_op(rng: &mut Rng) -> AluOp {
    *rng.pick(&[
        AluOp::Add,
        AluOp::Sub,
        AluOp::Sll,
        AluOp::Slt,
        AluOp::Sltu,
        AluOp::Xor,
        AluOp::Srl,
        AluOp::Sra,
        AluOp::Or,
        AluOp::And,
    ])
}

fn rand_alu_imm(rng: &mut Rng) -> Insn {
    // sub-immediate has no encoding; shifts take 5-bit amounts.
    let op = loop {
        let op = rand_alu_reg_op(rng);
        if op != AluOp::Sub {
            break op;
        }
    };
    let imm = rng.range_i32(-2048, 2048);
    let imm = match op {
        AluOp::Sll | AluOp::Srl | AluOp::Sra => imm.rem_euclid(32),
        _ => imm,
    };
    Insn::AluImm {
        op,
        rd: rand_reg(rng),
        rs1: rand_reg(rng),
        imm,
    }
}

fn rand_insn(rng: &mut Rng) -> Insn {
    match rng.range_u32(0, 21) {
        0 => Insn::Lui {
            rd: rand_reg(rng),
            imm20: rng.range_u32(0, 1 << 20),
        },
        1 => Insn::Auipc {
            rd: rand_reg(rng),
            imm20: rng.range_u32(0, 1 << 20),
        },
        2 => Insn::Jal {
            rd: rand_reg(rng),
            offset: rng.range_i32(-(1 << 20), 1 << 20) & !1,
        },
        3 => Insn::Jalr {
            rd: rand_reg(rng),
            rs1: rand_reg(rng),
            offset: rng.range_i32(-2048, 2048),
        },
        4 => Insn::Branch {
            cond: rand_cond(rng),
            rs1: rand_reg(rng),
            rs2: rand_reg(rng),
            offset: rng.range_i32(-4096, 4096) & !1,
        },
        5 => Insn::Load {
            op: *rng.pick(&[LoadOp::Lb, LoadOp::Lh, LoadOp::Lw, LoadOp::Lbu, LoadOp::Lhu]),
            rd: rand_reg(rng),
            rs1: rand_reg(rng),
            offset: rng.range_i32(-2048, 2048),
        },
        6 => Insn::Store {
            op: *rng.pick(&[StoreOp::Sb, StoreOp::Sh, StoreOp::Sw]),
            rs2: rand_reg(rng),
            rs1: rand_reg(rng),
            offset: rng.range_i32(-2048, 2048),
        },
        7 => rand_alu_imm(rng),
        8 => Insn::Alu {
            op: rand_alu_reg_op(rng),
            rd: rand_reg(rng),
            rs1: rand_reg(rng),
            rs2: rand_reg(rng),
        },
        9 => Insn::MulDiv {
            op: MulOp::from_funct3(rng.range_u32(0, 8)).unwrap(),
            rd: rand_reg(rng),
            rs1: rand_reg(rng),
            rs2: rand_reg(rng),
        },
        10 => Insn::Csr {
            op: *rng.pick(&[CsrOp::Rw, CsrOp::Rs, CsrOp::Rc]),
            rd: rand_reg(rng),
            csr: rng.range_u32(0, 1 << 12) as u16,
            src: if rng.chance() {
                CsrSrc::Reg(rand_reg(rng))
            } else {
                CsrSrc::Imm(rng.range_u32(0, 32) as u8)
            },
        },
        11 => Insn::Ecall,
        12 => Insn::Ebreak,
        13 => Insn::Mret,
        14 => Insn::Wfi,
        15 => Insn::Fence,
        16 => {
            let entry = if rng.chance() {
                MENTER_INDIRECT
            } else {
                rng.range_u32(0, 64)
            };
            // rs1 is canonicalized away for direct entries.
            let rs1 = if entry == MENTER_INDIRECT {
                rand_reg(rng)
            } else {
                Reg::ZERO
            };
            Insn::Menter { rs1, entry }
        }
        17 => Insn::Mexit,
        18 => Insn::Rmr {
            rd: rand_reg(rng),
            idx: MregIdx::from_field(rng.range_u32(0, 0x40A)),
        },
        19 => Insn::Wmr {
            rs1: rand_reg(rng),
            idx: MregIdx::from_field(rng.range_u32(0, 0x40A)),
        },
        _ => match rng.range_u32(0, 3) {
            0 => Insn::Mld {
                rd: rand_reg(rng),
                rs1: rand_reg(rng),
                offset: rng.range_i32(-2048, 2048),
            },
            1 => Insn::Mst {
                rs2: rand_reg(rng),
                rs1: rand_reg(rng),
                offset: rng.range_i32(-2048, 2048),
            },
            // Canonicalize unused register fields the way decode does.
            _ => decode(encode(&Insn::March {
                op: *rng.pick(&MarchOp::all()),
                rd: rand_reg(rng),
                rs1: rand_reg(rng),
                rs2: rand_reg(rng),
            }))
            .unwrap(),
        },
    }
}

/// Every canonical instruction encodes, and decoding the encoding
/// yields the instruction back.
#[test]
fn encode_decode_roundtrip() {
    let mut rng = Rng::new(0x15a0_0001);
    for _ in 0..2048 {
        let insn = rand_insn(&mut rng);
        let word = encode(&insn);
        assert_eq!(decode(word), Ok(insn), "word {word:#010x}");
    }
}

/// Decoding is total (never panics) and re-encoding a successfully
/// decoded word reproduces the canonical semantics:
/// decode(encode(decode(w))) == decode(w).
#[test]
fn decode_is_stable() {
    let mut rng = Rng::new(0x15a0_0002);
    for _ in 0..4096 {
        let word = rng.next_u32();
        if let Ok(insn) = decode(word) {
            if let Ok(reencoded) = try_encode(&insn) {
                assert_eq!(decode(reencoded), Ok(insn), "word {word:#010x}");
            }
        }
    }
}

/// The disassembly of any canonical instruction is non-empty ASCII.
#[test]
fn disasm_never_empty() {
    let mut rng = Rng::new(0x15a0_0003);
    for _ in 0..2048 {
        let insn = rand_insn(&mut rng);
        let text = metal_isa::disassemble(&insn);
        assert!(!text.is_empty());
        assert!(text.is_ascii());
    }
}
