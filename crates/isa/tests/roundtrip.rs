//! Property tests: encode/decode are mutually inverse on canonical
//! instructions, and decode never panics on arbitrary words.

use metal_isa::insn::{AluOp, Cond, CsrOp, CsrSrc, Insn, LoadOp, MulOp, StoreOp};
use metal_isa::metal::{MarchOp, MENTER_INDIRECT};
use metal_isa::reg::{MregIdx, Reg};
use metal_isa::{decode, encode, try_encode};
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(|n| Reg::new(n).unwrap())
}

fn arb_cond() -> impl Strategy<Value = Cond> {
    prop_oneof![
        Just(Cond::Eq),
        Just(Cond::Ne),
        Just(Cond::Lt),
        Just(Cond::Ge),
        Just(Cond::Ltu),
        Just(Cond::Geu),
    ]
}

fn arb_alu_reg_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Sll),
        Just(AluOp::Slt),
        Just(AluOp::Sltu),
        Just(AluOp::Xor),
        Just(AluOp::Srl),
        Just(AluOp::Sra),
        Just(AluOp::Or),
        Just(AluOp::And),
    ]
}

fn arb_alu_imm() -> impl Strategy<Value = Insn> {
    (arb_alu_reg_op(), arb_reg(), arb_reg(), -2048i32..2048).prop_filter_map(
        "sub-immediate has no encoding",
        |(op, rd, rs1, imm)| {
            let imm = match op {
                AluOp::Sub => return None,
                AluOp::Sll | AluOp::Srl | AluOp::Sra => imm.rem_euclid(32),
                _ => imm,
            };
            Some(Insn::AluImm { op, rd, rs1, imm })
        },
    )
}

fn arb_mul_op() -> impl Strategy<Value = MulOp> {
    (0u32..8).prop_map(|f3| MulOp::from_funct3(f3).unwrap())
}

fn arb_march_op() -> impl Strategy<Value = MarchOp> {
    proptest::sample::select(MarchOp::all().to_vec())
}

fn arb_insn() -> impl Strategy<Value = Insn> {
    prop_oneof![
        (arb_reg(), 0u32..(1 << 20)).prop_map(|(rd, imm20)| Insn::Lui { rd, imm20 }),
        (arb_reg(), 0u32..(1 << 20)).prop_map(|(rd, imm20)| Insn::Auipc { rd, imm20 }),
        (arb_reg(), -(1i32 << 20)..(1 << 20))
            .prop_map(|(rd, half)| Insn::Jal { rd, offset: half & !1 }),
        (arb_reg(), arb_reg(), -2048i32..2048)
            .prop_map(|(rd, rs1, offset)| Insn::Jalr { rd, rs1, offset }),
        (arb_cond(), arb_reg(), arb_reg(), -4096i32..4096).prop_map(
            |(cond, rs1, rs2, off)| Insn::Branch { cond, rs1, rs2, offset: off & !1 }
        ),
        (
            prop_oneof![
                Just(LoadOp::Lb),
                Just(LoadOp::Lh),
                Just(LoadOp::Lw),
                Just(LoadOp::Lbu),
                Just(LoadOp::Lhu)
            ],
            arb_reg(),
            arb_reg(),
            -2048i32..2048
        )
            .prop_map(|(op, rd, rs1, offset)| Insn::Load { op, rd, rs1, offset }),
        (
            prop_oneof![Just(StoreOp::Sb), Just(StoreOp::Sh), Just(StoreOp::Sw)],
            arb_reg(),
            arb_reg(),
            -2048i32..2048
        )
            .prop_map(|(op, rs2, rs1, offset)| Insn::Store { op, rs2, rs1, offset }),
        arb_alu_imm(),
        (arb_alu_reg_op(), arb_reg(), arb_reg(), arb_reg())
            .prop_map(|(op, rd, rs1, rs2)| Insn::Alu { op, rd, rs1, rs2 }),
        (arb_mul_op(), arb_reg(), arb_reg(), arb_reg())
            .prop_map(|(op, rd, rs1, rs2)| Insn::MulDiv { op, rd, rs1, rs2 }),
        (
            prop_oneof![Just(CsrOp::Rw), Just(CsrOp::Rs), Just(CsrOp::Rc)],
            arb_reg(),
            0u16..(1 << 12),
            prop_oneof![
                arb_reg().prop_map(CsrSrc::Reg),
                (0u8..32).prop_map(CsrSrc::Imm)
            ]
        )
            .prop_map(|(op, rd, csr, src)| Insn::Csr { op, rd, csr, src }),
        Just(Insn::Ecall),
        Just(Insn::Ebreak),
        Just(Insn::Mret),
        Just(Insn::Wfi),
        Just(Insn::Fence),
        (arb_reg(), prop_oneof![(0u32..64), Just(MENTER_INDIRECT)]).prop_map(|(rs1, entry)| {
            // rs1 is canonicalized away for direct entries.
            let rs1 = if entry == MENTER_INDIRECT { rs1 } else { Reg::ZERO };
            Insn::Menter { rs1, entry }
        }),
        Just(Insn::Mexit),
        (arb_reg(), 0u16..0x40A).prop_map(|(rd, idx)| Insn::Rmr {
            rd,
            idx: MregIdx::from_field(u32::from(idx))
        }),
        (arb_reg(), 0u16..0x40A).prop_map(|(rs1, idx)| Insn::Wmr {
            rs1,
            idx: MregIdx::from_field(u32::from(idx))
        }),
        (arb_reg(), arb_reg(), -2048i32..2048)
            .prop_map(|(rd, rs1, offset)| Insn::Mld { rd, rs1, offset }),
        (arb_reg(), arb_reg(), -2048i32..2048)
            .prop_map(|(rs2, rs1, offset)| Insn::Mst { rs2, rs1, offset }),
        (arb_march_op(), arb_reg(), arb_reg(), arb_reg()).prop_map(|(op, rd, rs1, rs2)| {
            // Canonicalize unused register fields the way decode does.
            decode(encode(&Insn::March { op, rd, rs1, rs2 })).unwrap()
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2048))]

    /// Every canonical instruction encodes, and decoding the encoding
    /// yields the instruction back.
    #[test]
    fn encode_decode_roundtrip(insn in arb_insn()) {
        let word = encode(&insn);
        prop_assert_eq!(decode(word), Ok(insn));
    }

    /// Decoding is total (never panics) and re-encoding a successfully
    /// decoded word reproduces the canonical semantics: decode(encode(
    /// decode(w))) == decode(w).
    #[test]
    fn decode_is_stable(word in any::<u32>()) {
        if let Ok(insn) = decode(word) {
            if let Ok(reencoded) = try_encode(&insn) {
                prop_assert_eq!(decode(reencoded), Ok(insn));
            }
        }
    }

    /// The disassembly of any canonical instruction is non-empty and
    /// starts with a known mnemonic character.
    #[test]
    fn disasm_never_empty(insn in arb_insn()) {
        let text = metal_isa::disassemble(&insn);
        prop_assert!(!text.is_empty());
        prop_assert!(text.is_ascii());
    }
}
