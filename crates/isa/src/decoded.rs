//! Pre-decoded instruction form: decode work done once per word.
//!
//! Both execution engines historically paid a full [`decode`] on every
//! fetch — once per cycle on the pipelined core's ID stage, once per
//! step on the reference interpreter. [`DecodedInsn`] is the compact
//! micro-op the shared decode cache stores instead: the original word,
//! the decoded [`Insn`], the pre-extracted destination and source
//! registers, and a [`DispatchTag`] that classifies the instruction for
//! the hazard logic without re-inspecting the enum.
//!
//! [`decode_to`] is *infallible*: a word with no legal decoding yields
//! [`DispatchTag::Illegal`] (with [`Insn::NOP`] as a harmless payload),
//! so the illegal-instruction trap is raised where the word would
//! execute, exactly as with the fallible [`decode`] path — the original
//! word is preserved for `mtval`.

use crate::decode::decode;
use crate::insn::Insn;
use crate::metal::MarchOp;
use crate::reg::Reg;

/// Coarse classification of a decoded word, chosen so the pipeline's
/// hazard predicates are tag-derivable:
///
/// * the load-use hazard set is exactly [`DispatchTag::Load`];
/// * "may still fault after EX" (the decode-sensitivity interlock) is
///   [`DispatchTag::may_fault`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DispatchTag {
    /// Register-to-register work with no memory access or control
    /// transfer (ALU, CSR, fences, `rmr`/`wmr`, non-memory `march.*`).
    Simple,
    /// A GPR load (`lb`..`lw`, `mld`): the source of the load-use
    /// hazard; faults at its MEM stage.
    Load,
    /// A memory store (`sb`..`sw`, `mst`): faults at its MEM stage.
    Store,
    /// Physical memory access (`march.mpld`/`march.mpst`): faults at
    /// execute, after leaving the decode stage.
    PhysMem,
    /// Control flow (jumps, branches, `ecall`/`ebreak`/`mret`/`wfi`,
    /// `menter`/`mexit`).
    Control,
    /// No legal decoding: raises an illegal-instruction exception when
    /// it reaches the decode stage.
    Illegal,
}

impl DispatchTag {
    /// True for instructions whose destination participates in the
    /// load-use hazard (value available only after MEM).
    #[inline]
    #[must_use]
    pub const fn is_load(self) -> bool {
        matches!(self, DispatchTag::Load)
    }

    /// True if the instruction can still raise a trap after leaving EX —
    /// the hazard that gates decode-stage side effects (Metal mode
    /// transitions must not commit while an older instruction can still
    /// fault, or exceptions become imprecise).
    #[inline]
    #[must_use]
    pub const fn may_fault(self) -> bool {
        matches!(
            self,
            DispatchTag::Load | DispatchTag::Store | DispatchTag::PhysMem
        )
    }
}

/// A pre-decoded instruction: the unit the decode cache stores and the
/// pipeline latches carry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DecodedInsn {
    /// The original instruction word (kept for `mtval`, the decode hook,
    /// and re-encoding).
    pub word: u32,
    /// The decoded instruction ([`Insn::NOP`] when `tag` is
    /// [`DispatchTag::Illegal`]).
    pub insn: Insn,
    /// Dispatch classification (see [`DispatchTag`]).
    pub tag: DispatchTag,
    /// Pre-extracted destination register (`None` for `x0` or no
    /// destination), equal to `insn.dest()`.
    pub dest: Option<Reg>,
    /// Pre-extracted source registers, equal to `insn.sources()`.
    pub srcs: [Option<Reg>; 2],
}

impl DecodedInsn {
    /// Wraps an already-decoded instruction, pre-extracting operands.
    #[must_use]
    pub fn from_insn(word: u32, insn: Insn) -> DecodedInsn {
        DecodedInsn {
            word,
            insn,
            tag: tag_of(&insn),
            dest: insn.dest(),
            srcs: insn.sources(),
        }
    }

    /// The pre-decoded form of a word with no legal decoding.
    #[must_use]
    pub fn illegal(word: u32) -> DecodedInsn {
        DecodedInsn {
            word,
            insn: Insn::NOP,
            tag: DispatchTag::Illegal,
            dest: None,
            srcs: [None, None],
        }
    }

    /// True if this word had no legal decoding.
    #[inline]
    #[must_use]
    pub const fn is_illegal(&self) -> bool {
        matches!(self.tag, DispatchTag::Illegal)
    }
}

fn tag_of(insn: &Insn) -> DispatchTag {
    match insn {
        Insn::Load { .. } | Insn::Mld { .. } => DispatchTag::Load,
        Insn::Store { .. } | Insn::Mst { .. } => DispatchTag::Store,
        Insn::March {
            op: MarchOp::Mpld | MarchOp::Mpst,
            ..
        } => DispatchTag::PhysMem,
        _ if insn.is_control_flow() => DispatchTag::Control,
        Insn::Wfi => DispatchTag::Control,
        _ => DispatchTag::Simple,
    }
}

/// Decodes a word into its cacheable pre-decoded form. Never fails:
/// illegal words get [`DispatchTag::Illegal`] and trap where they would
/// have executed.
#[must_use]
pub fn decode_to(word: u32) -> DecodedInsn {
    match decode(word) {
        Ok(insn) => DecodedInsn::from_insn(word, insn),
        Err(_) => DecodedInsn::illegal(word),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;
    use crate::insn::{AluOp, LoadOp, StoreOp};

    #[test]
    fn decode_to_matches_decode() {
        for word in [
            0x02A0_0513u32, // addi a0, zero, 42
            0x0000_0073,    // ecall
            0x3020_0073,    // mret
            0x0000_0013,    // nop
        ] {
            let d = decode_to(word);
            assert_eq!(d.word, word);
            assert_eq!(Ok(d.insn), decode(word));
            assert_eq!(d.dest, d.insn.dest());
            assert_eq!(d.srcs, d.insn.sources());
        }
    }

    #[test]
    fn illegal_words_are_tagged_not_errors() {
        for word in [0x0000_0000u32, 0xFFFF_FFFF, 0x0000_700B] {
            let d = decode_to(word);
            assert!(d.is_illegal());
            assert_eq!(d.word, word, "word preserved for mtval");
            assert_eq!(d.insn, Insn::NOP);
            assert_eq!(d.dest, None);
        }
    }

    #[test]
    fn load_use_hazard_set_is_tag_derivable() {
        let load = encode(&Insn::Load {
            op: LoadOp::Lw,
            rd: Reg::A0,
            rs1: Reg::A1,
            offset: 0,
        });
        let mld = encode(&Insn::Mld {
            rd: Reg::A0,
            rs1: Reg::A1,
            offset: 0,
        });
        assert!(decode_to(load).tag.is_load());
        assert!(decode_to(mld).tag.is_load());
        let alu = encode(&Insn::AluImm {
            op: AluOp::Add,
            rd: Reg::A0,
            rs1: Reg::A1,
            imm: 1,
        });
        assert!(!decode_to(alu).tag.is_load());
    }

    #[test]
    fn may_fault_set_is_tag_derivable() {
        let cases: [(Insn, bool); 6] = [
            (
                Insn::Load {
                    op: LoadOp::Lw,
                    rd: Reg::A0,
                    rs1: Reg::A1,
                    offset: 0,
                },
                true,
            ),
            (
                Insn::Store {
                    op: StoreOp::Sw,
                    rs2: Reg::A0,
                    rs1: Reg::A1,
                    offset: 0,
                },
                true,
            ),
            (
                Insn::Mst {
                    rs2: Reg::A0,
                    rs1: Reg::A1,
                    offset: 0,
                },
                true,
            ),
            (
                Insn::March {
                    op: MarchOp::Mpld,
                    rd: Reg::A0,
                    rs1: Reg::A1,
                    rs2: Reg::ZERO,
                },
                true,
            ),
            (
                Insn::March {
                    op: MarchOp::Mtlbiall,
                    rd: Reg::ZERO,
                    rs1: Reg::ZERO,
                    rs2: Reg::ZERO,
                },
                false,
            ),
            (Insn::Ecall, false),
        ];
        for (insn, expect) in cases {
            let d = decode_to(encode(&insn));
            assert_eq!(d.tag.may_fault(), expect, "{insn:?}");
        }
    }

    #[test]
    fn control_flow_tagged() {
        let jal = encode(&Insn::Jal {
            rd: Reg::RA,
            offset: 8,
        });
        assert_eq!(decode_to(jal).tag, DispatchTag::Control);
    }
}
