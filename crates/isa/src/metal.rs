//! The Metal instruction extension: opcode layout, architectural-feature
//! sub-operations, Metal control registers, and interception selectors.
//!
//! Metal occupies the *custom-0* major opcode (`0001011`, 0x0B) and is
//! discriminated by `funct3` (paper Table 1 plus the architectural-feature
//! group the paper leaves to the processor vendor, §2.3):
//!
//! | funct3 | mnemonic | availability |
//! |--------|----------------|---------------------------|
//! | 000    | `menter`       | normal mode (unprivileged) |
//! | 001    | `mexit`        | Metal mode only            |
//! | 010    | `rmr`          | Metal mode only            |
//! | 011    | `wmr`          | Metal mode only            |
//! | 100    | `mld`          | Metal mode only            |
//! | 101    | `mst`          | Metal mode only            |
//! | 110    | `march.*`      | Metal mode only            |
//! | 111    | reserved       | always traps               |

use crate::reg::MregIdx;
use core::fmt;

/// Major opcode of every Metal instruction (RISC-V *custom-0*).
pub const METAL_OPCODE: u32 = 0x0B;

/// `funct3` discriminators within the Metal major opcode.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u32)]
pub enum MetalOpcode {
    /// Enter Metal mode at an mroutine entry.
    Menter = 0b000,
    /// Exit Metal mode; resume at the address in `m31`.
    Mexit = 0b001,
    /// Read a Metal register or control register into a GPR.
    Rmr = 0b010,
    /// Write a GPR into a Metal register or control register.
    Wmr = 0b011,
    /// Load a word from the MRAM data segment.
    Mld = 0b100,
    /// Store a word to the MRAM data segment.
    Mst = 0b101,
    /// Architectural-feature sub-operation (see [`MarchOp`]).
    March = 0b110,
}

impl MetalOpcode {
    /// Decodes a funct3 field; `0b111` is reserved and returns `None`.
    #[must_use]
    pub const fn from_funct3(funct3: u32) -> Option<MetalOpcode> {
        match funct3 & 0x7 {
            0b000 => Some(MetalOpcode::Menter),
            0b001 => Some(MetalOpcode::Mexit),
            0b010 => Some(MetalOpcode::Rmr),
            0b011 => Some(MetalOpcode::Wmr),
            0b100 => Some(MetalOpcode::Mld),
            0b101 => Some(MetalOpcode::Mst),
            0b110 => Some(MetalOpcode::March),
            _ => None,
        }
    }
}

/// Immediate value in `menter` that selects register-indirect entry:
/// `menter rs1, MENTER_INDIRECT` enters the mroutine whose entry number is
/// in `rs1` instead of in the immediate.
pub const MENTER_INDIRECT: u32 = 0xFFF;

/// Maximum number of mroutine entries the MRAM entry table supports
/// (paper §2: "a small RAM (MRAM) to store up to 64 mroutines").
pub const MAX_MROUTINES: usize = 64;

/// Architectural-feature sub-operations (`funct3 = 110`), selected by
/// `funct7`. These are the features the prototype processor exposes to
/// Metal (paper §2.3): direct physical memory access, TLB modification,
/// page keys, address-space IDs, interception control, and interrupt
/// delivery control.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u32)]
pub enum MarchOp {
    /// `mpld rd, rs1`: load a word from *physical* address `rs1`,
    /// bypassing the MMU.
    Mpld = 0x00,
    /// `mpst rs1, rs2`: store word `rs2` to *physical* address `rs1`.
    Mpst = 0x01,
    /// `mtlbw rs1, rs2`: write a TLB entry. `rs1` is the virtual address
    /// (VPN in bits 31:12); `rs2` is a PTE-format word (PPN in 31:12,
    /// flags in 11:0). The entry is tagged with the current ASID.
    Mtlbw = 0x02,
    /// `mtlbi rs1`: invalidate the TLB entry matching virtual address
    /// `rs1` under the current ASID. With `rs1 = x0`, flushes all entries
    /// of the current ASID.
    Mtlbi = 0x03,
    /// `mtlbp rd, rs1`: probe the TLB for virtual address `rs1`; `rd`
    /// receives the PTE-format entry, or 0 if there is no match.
    Mtlbp = 0x04,
    /// `masid rs1`: set the current address-space ID.
    Masid = 0x05,
    /// `mpkey rs1, rs2`: set the permission mask for page key `rs1` to
    /// `rs2` (bit 0 = read allowed, bit 1 = write allowed).
    Mpkey = 0x06,
    /// `mintercept rs1, rs2`: program the instruction-interception table.
    /// `rs1` is an [`InterceptSelector`] word; `rs2` is
    /// `(mroutine entry << 1) | enable`.
    Mintercept = 0x07,
    /// `mipend rd`: read the pending-interrupt bitmap.
    Mipend = 0x08,
    /// `miack rs1`: acknowledge (clear) interrupt line `rs1`.
    Miack = 0x09,
    /// `mlayer rs1`: switch the active nested-Metal layer.
    Mlayer = 0x0A,
    /// `mtlbiall`: flush the entire TLB (all ASIDs).
    Mtlbiall = 0x0B,
    /// `mscrub rd`: attempt hardware-assisted repair of the fault
    /// recorded at the last machine-check delivery (golden-copy
    /// refresh for MRAM, syndrome correction for SECDED-protected
    /// MRegs). `rd` receives 1 if the word was repaired, 0 if the
    /// fault is unrepairable.
    Mscrub = 0x0C,
}

impl MarchOp {
    /// Decodes a funct7 field.
    #[must_use]
    pub const fn from_funct7(funct7: u32) -> Option<MarchOp> {
        match funct7 {
            0x00 => Some(MarchOp::Mpld),
            0x01 => Some(MarchOp::Mpst),
            0x02 => Some(MarchOp::Mtlbw),
            0x03 => Some(MarchOp::Mtlbi),
            0x04 => Some(MarchOp::Mtlbp),
            0x05 => Some(MarchOp::Masid),
            0x06 => Some(MarchOp::Mpkey),
            0x07 => Some(MarchOp::Mintercept),
            0x08 => Some(MarchOp::Mipend),
            0x09 => Some(MarchOp::Miack),
            0x0A => Some(MarchOp::Mlayer),
            0x0B => Some(MarchOp::Mtlbiall),
            0x0C => Some(MarchOp::Mscrub),
            _ => None,
        }
    }

    /// Assembler mnemonic.
    #[must_use]
    pub const fn mnemonic(self) -> &'static str {
        match self {
            MarchOp::Mpld => "mpld",
            MarchOp::Mpst => "mpst",
            MarchOp::Mtlbw => "mtlbw",
            MarchOp::Mtlbi => "mtlbi",
            MarchOp::Mtlbp => "mtlbp",
            MarchOp::Masid => "masid",
            MarchOp::Mpkey => "mpkey",
            MarchOp::Mintercept => "mintercept",
            MarchOp::Mipend => "mipend",
            MarchOp::Miack => "miack",
            MarchOp::Mlayer => "mlayer",
            MarchOp::Mtlbiall => "mtlbiall",
            MarchOp::Mscrub => "mscrub",
        }
    }

    /// All defined sub-operations.
    #[must_use]
    pub const fn all() -> [MarchOp; 13] {
        [
            MarchOp::Mpld,
            MarchOp::Mpst,
            MarchOp::Mtlbw,
            MarchOp::Mtlbi,
            MarchOp::Mtlbp,
            MarchOp::Masid,
            MarchOp::Mpkey,
            MarchOp::Mintercept,
            MarchOp::Mipend,
            MarchOp::Miack,
            MarchOp::Mlayer,
            MarchOp::Mtlbiall,
            MarchOp::Mscrub,
        ]
    }
}

/// First `rmr`/`wmr` index that names a Metal control register rather than
/// one of `m0..m31`.
pub const MCR_BASE: u16 = 0x400;

/// Metal control registers, read and written with `rmr`/`wmr` using
/// indices at or above [`MCR_BASE`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum Mcr {
    /// Cause of the event that entered the current mroutine
    /// (see `metal-core`'s `EntryCause` encoding).
    Mcause = 0x400,
    /// Faulting virtual address for memory exceptions.
    Mbadaddr = 0x401,
    /// The intercepted instruction word (valid when entered via intercept).
    Minsn = 0x402,
    /// Metal status: bit 0 = intercept master enable; bits 8..16 = active
    /// nested layer.
    Mstatus = 0x403,
    /// Current address-space ID (read-only mirror of `masid`).
    MasidCur = 0x404,
    /// Free-running cycle counter (read-only).
    Mclock = 0x405,
    /// Entry number of the currently executing mroutine (read-only).
    Mentry = 0x406,
    /// Pending-interrupt bitmap (read-only mirror of `mipend`).
    Mipending = 0x407,
    /// Instructions-retired counter (read-only).
    Minstret = 0x408,
    /// Scratch control register (free use by mroutines).
    Mscratch = 0x409,
    /// Recovery abort: a machine-check recovery mroutine writes a
    /// nonzero value here to declare the fault uncorrectable and halt
    /// the machine (write-sensitive; reads as 0).
    Mabort = 0x40A,
}

impl Mcr {
    /// Decodes an `rmr`/`wmr` index field.
    #[must_use]
    pub const fn from_index(idx: MregIdx) -> Option<Mcr> {
        match idx.field() {
            0x400 => Some(Mcr::Mcause),
            0x401 => Some(Mcr::Mbadaddr),
            0x402 => Some(Mcr::Minsn),
            0x403 => Some(Mcr::Mstatus),
            0x404 => Some(Mcr::MasidCur),
            0x405 => Some(Mcr::Mclock),
            0x406 => Some(Mcr::Mentry),
            0x407 => Some(Mcr::Mipending),
            0x408 => Some(Mcr::Minstret),
            0x409 => Some(Mcr::Mscratch),
            0x40A => Some(Mcr::Mabort),
            _ => None,
        }
    }

    /// The `rmr`/`wmr` index naming this control register.
    #[must_use]
    pub const fn index(self) -> MregIdx {
        MregIdx::from_field(self as u16 as u32)
    }

    /// Assembler name.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Mcr::Mcause => "mcause",
            Mcr::Mbadaddr => "mbadaddr",
            Mcr::Minsn => "minsn",
            Mcr::Mstatus => "mstatus",
            Mcr::MasidCur => "masid_cur",
            Mcr::Mclock => "mclock",
            Mcr::Mentry => "mentry",
            Mcr::Mipending => "mipending",
            Mcr::Minstret => "minstret",
            Mcr::Mscratch => "mscratch",
            Mcr::Mabort => "mabort",
        }
    }

    /// True if `wmr` to this register is ignored (read-only registers).
    #[must_use]
    pub const fn read_only(self) -> bool {
        matches!(
            self,
            Mcr::MasidCur | Mcr::Mclock | Mcr::Mentry | Mcr::Mipending | Mcr::Minstret
        )
    }

    /// All defined control registers.
    #[must_use]
    pub const fn all() -> [Mcr; 11] {
        [
            Mcr::Mcause,
            Mcr::Mbadaddr,
            Mcr::Minsn,
            Mcr::Mstatus,
            Mcr::MasidCur,
            Mcr::Mclock,
            Mcr::Mentry,
            Mcr::Mipending,
            Mcr::Minstret,
            Mcr::Mscratch,
            Mcr::Mabort,
        ]
    }

    /// Parses an assembler name.
    #[must_use]
    pub fn parse(name: &str) -> Option<Mcr> {
        Mcr::all().into_iter().find(|m| m.name() == name)
    }
}

/// Selector word for `mintercept`, describing *which* instructions an
/// interception rule matches (paper §2.3: "our implementation allows
/// intercepting any instruction with an mroutine").
///
/// Encoding of the selector register value:
///
/// * bit 31 = 0: **opcode-class** match. Bits 6:0 give the major opcode;
///   every instruction with that major opcode is intercepted.
/// * bit 31 = 1: **exact** match. Bits 6:0 = major opcode, bits 9:7 =
///   funct3, bits 16:10 = funct7, bit 30 = "funct7 matters".
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum InterceptSelector {
    /// Match every instruction with the given major opcode.
    OpcodeClass {
        /// Major opcode (7 bits).
        opcode: u32,
    },
    /// Match instructions with a specific opcode and funct3 (and
    /// optionally funct7).
    Exact {
        /// Major opcode (7 bits).
        opcode: u32,
        /// The funct3 field (3 bits).
        funct3: u32,
        /// If `Some`, the funct7 field must also match.
        funct7: Option<u32>,
    },
}

impl InterceptSelector {
    /// Encodes the selector into the `rs1` register value for `mintercept`.
    #[must_use]
    pub const fn encode(self) -> u32 {
        match self {
            InterceptSelector::OpcodeClass { opcode } => opcode & 0x7F,
            InterceptSelector::Exact {
                opcode,
                funct3,
                funct7,
            } => {
                let base = (1 << 31) | (opcode & 0x7F) | ((funct3 & 0x7) << 7);
                match funct7 {
                    Some(f7) => base | (1 << 30) | ((f7 & 0x7F) << 10),
                    None => base,
                }
            }
        }
    }

    /// Decodes a selector register value.
    #[must_use]
    pub const fn decode(word: u32) -> InterceptSelector {
        if word & (1 << 31) == 0 {
            InterceptSelector::OpcodeClass {
                opcode: word & 0x7F,
            }
        } else {
            let funct7 = if word & (1 << 30) != 0 {
                Some((word >> 10) & 0x7F)
            } else {
                None
            };
            InterceptSelector::Exact {
                opcode: word & 0x7F,
                funct3: (word >> 7) & 0x7,
                funct7,
            }
        }
    }

    /// True if the selector matches the given raw instruction word.
    #[must_use]
    pub const fn matches(self, insn_word: u32) -> bool {
        let opc = insn_word & 0x7F;
        match self {
            InterceptSelector::OpcodeClass { opcode } => opc == opcode,
            InterceptSelector::Exact {
                opcode,
                funct3,
                funct7,
            } => {
                if opc != opcode || (insn_word >> 12) & 0x7 != funct3 {
                    return false;
                }
                match funct7 {
                    Some(f7) => (insn_word >> 25) & 0x7F == f7,
                    None => true,
                }
            }
        }
    }
}

impl fmt::Display for InterceptSelector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterceptSelector::OpcodeClass { opcode } => write!(f, "class[{opcode:#04x}]"),
            InterceptSelector::Exact {
                opcode,
                funct3,
                funct7: Some(f7),
            } => write!(f, "exact[{opcode:#04x}.{funct3}.{f7:#04x}]"),
            InterceptSelector::Exact { opcode, funct3, .. } => {
                write!(f, "exact[{opcode:#04x}.{funct3}]")
            }
        }
    }
}

/// Rows of the paper's Table 1 (plus the vendor architectural-feature
/// group), for documentation and the `reproduce -- table1` harness.
#[must_use]
pub fn instruction_table() -> Vec<(&'static str, &'static str, &'static str)> {
    vec![
        (
            "menter",
            "normal mode",
            "Enter Metal mode at an mroutine entry; m31 <- return address",
        ),
        (
            "mexit",
            "Metal mode",
            "Exit Metal mode and resume execution at the address in m31",
        ),
        ("rmr", "Metal mode", "Read Metal register / control register"),
        ("wmr", "Metal mode", "Write Metal register / control register"),
        ("mld", "Metal mode", "Load word from the MRAM data segment"),
        ("mst", "Metal mode", "Store word to the MRAM data segment"),
        (
            "march.*",
            "Metal mode",
            "Vendor architectural features: physical memory, TLB, ASIDs, page keys, interception, interrupts",
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metal_opcode_funct3_roundtrip() {
        for f3 in 0..7u32 {
            let op = MetalOpcode::from_funct3(f3).expect("0..7 are defined");
            assert_eq!(op as u32, f3);
        }
        assert_eq!(MetalOpcode::from_funct3(7), None);
    }

    #[test]
    fn march_funct7_roundtrip() {
        for op in MarchOp::all() {
            assert_eq!(MarchOp::from_funct7(op as u32), Some(op));
        }
        assert_eq!(MarchOp::from_funct7(0x7F), None);
    }

    #[test]
    fn mcr_index_roundtrip() {
        for mcr in Mcr::all() {
            assert_eq!(Mcr::from_index(mcr.index()), Some(mcr));
            assert_eq!(Mcr::parse(mcr.name()), Some(mcr));
        }
        assert_eq!(Mcr::from_index(MregIdx::from_field(0x4FF)), None);
    }

    #[test]
    fn selector_class_matches_whole_opcode() {
        let sel = InterceptSelector::OpcodeClass { opcode: 0x03 };
        // lw a0, 0(a1) = opcode 0x03.
        assert!(sel.matches(0x0005_A503));
        // sw uses opcode 0x23.
        assert!(!sel.matches(0x00A5_A023));
        assert_eq!(InterceptSelector::decode(sel.encode()), sel);
    }

    #[test]
    fn selector_exact_funct3() {
        let sel = InterceptSelector::Exact {
            opcode: 0x03,
            funct3: 0b010,
            funct7: None,
        };
        assert!(sel.matches(0x0005_A503)); // lw
        assert!(!sel.matches(0x0005_8503)); // lb (funct3=000)
        assert_eq!(InterceptSelector::decode(sel.encode()), sel);
    }

    #[test]
    fn selector_exact_funct7() {
        let sel = InterceptSelector::Exact {
            opcode: 0x33,
            funct3: 0b000,
            funct7: Some(0x20),
        };
        assert!(sel.matches(0x40B5_0533)); // sub a0,a0,a1
        assert!(!sel.matches(0x00B5_0533)); // add a0,a0,a1
        assert_eq!(InterceptSelector::decode(sel.encode()), sel);
    }

    #[test]
    fn instruction_table_matches_paper_count() {
        // Table 1 lists 6 Metal instructions; we add the vendor march group.
        assert_eq!(instruction_table().len(), 7);
    }
}
