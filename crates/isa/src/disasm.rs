//! Disassembler: [`Insn`] → assembler text.
//!
//! The output is re-parseable by `metal-asm`, which the round-trip
//! property tests rely on: `parse(disassemble(i)) == i` for every
//! decodable instruction.

use crate::insn::{AluOp, CsrOp, CsrSrc, Insn};
use crate::metal::{MarchOp, MENTER_INDIRECT};

/// Renders one instruction as assembler text (no label resolution:
/// branch/jump targets appear as numeric byte offsets like `beq a0, a1, .+8`).
#[must_use]
pub fn disassemble(insn: &Insn) -> String {
    match *insn {
        Insn::Lui { rd, imm20 } => format!("lui {rd}, {imm20:#x}"),
        Insn::Auipc { rd, imm20 } => format!("auipc {rd}, {imm20:#x}"),
        Insn::Jal { rd, offset } => format!("jal {rd}, .{offset:+}"),
        Insn::Jalr { rd, rs1, offset } => format!("jalr {rd}, {offset}({rs1})"),
        Insn::Branch {
            cond,
            rs1,
            rs2,
            offset,
        } => format!("{} {rs1}, {rs2}, .{offset:+}", cond.mnemonic()),
        Insn::Load {
            op,
            rd,
            rs1,
            offset,
        } => format!("{} {rd}, {offset}({rs1})", op.mnemonic()),
        Insn::Store {
            op,
            rs2,
            rs1,
            offset,
        } => format!("{} {rs2}, {offset}({rs1})", op.mnemonic()),
        Insn::AluImm { op, rd, rs1, imm } => {
            let mn = match op {
                AluOp::Add => "addi",
                AluOp::Sll => "slli",
                AluOp::Slt => "slti",
                AluOp::Sltu => "sltiu",
                AluOp::Xor => "xori",
                AluOp::Srl => "srli",
                AluOp::Sra => "srai",
                AluOp::Or => "ori",
                AluOp::And => "andi",
                AluOp::Sub => "subi?",
            };
            format!("{mn} {rd}, {rs1}, {imm}")
        }
        Insn::Alu { op, rd, rs1, rs2 } => format!("{} {rd}, {rs1}, {rs2}", op.mnemonic()),
        Insn::MulDiv { op, rd, rs1, rs2 } => format!("{} {rd}, {rs1}, {rs2}", op.mnemonic()),
        Insn::Csr { op, rd, csr, src } => {
            let base = match op {
                CsrOp::Rw => "csrrw",
                CsrOp::Rs => "csrrs",
                CsrOp::Rc => "csrrc",
            };
            let csr_txt = crate::csr::name(csr)
                .map(str::to_owned)
                .unwrap_or_else(|| format!("{csr:#x}"));
            match src {
                CsrSrc::Reg(rs1) => format!("{base} {rd}, {csr_txt}, {rs1}"),
                CsrSrc::Imm(imm) => format!("{base}i {rd}, {csr_txt}, {imm}"),
            }
        }
        Insn::Ecall => "ecall".to_owned(),
        Insn::Ebreak => "ebreak".to_owned(),
        Insn::Mret => "mret".to_owned(),
        Insn::Wfi => "wfi".to_owned(),
        Insn::Fence => "fence".to_owned(),
        Insn::Menter { rs1, entry } => {
            if entry == MENTER_INDIRECT {
                format!("menter {rs1}")
            } else {
                format!("menter {entry}")
            }
        }
        Insn::Mexit => "mexit".to_owned(),
        Insn::Rmr { rd, idx } => format!("rmr {rd}, {idx}"),
        Insn::Wmr { rs1, idx } => format!("wmr {idx}, {rs1}"),
        Insn::Mld { rd, rs1, offset } => format!("mld {rd}, {offset}({rs1})"),
        Insn::Mst { rs2, rs1, offset } => format!("mst {rs2}, {offset}({rs1})"),
        Insn::March { op, rd, rs1, rs2 } => match op {
            MarchOp::Mpld | MarchOp::Mtlbp => format!("{} {rd}, {rs1}", op.mnemonic()),
            MarchOp::Mipend | MarchOp::Mscrub => format!("{} {rd}", op.mnemonic()),
            MarchOp::Mpst | MarchOp::Mtlbw | MarchOp::Mpkey | MarchOp::Mintercept => {
                format!("{} {rs1}, {rs2}", op.mnemonic())
            }
            MarchOp::Mtlbi | MarchOp::Masid | MarchOp::Miack | MarchOp::Mlayer => {
                format!("{} {rs1}", op.mnemonic())
            }
            MarchOp::Mtlbiall => op.mnemonic().to_owned(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::{Cond, LoadOp};
    use crate::reg::{MregIdx, Reg};

    #[test]
    fn disasm_samples() {
        assert_eq!(
            disassemble(&Insn::Load {
                op: LoadOp::Lw,
                rd: Reg::A0,
                rs1: Reg::SP,
                offset: -4
            }),
            "lw a0, -4(sp)"
        );
        assert_eq!(
            disassemble(&Insn::Branch {
                cond: Cond::Ne,
                rs1: Reg::A0,
                rs2: Reg::ZERO,
                offset: 8
            }),
            "bne a0, zero, .+8"
        );
        assert_eq!(
            disassemble(&Insn::Menter {
                rs1: Reg::ZERO,
                entry: 7
            }),
            "menter 7"
        );
        assert_eq!(
            disassemble(&Insn::Rmr {
                rd: Reg::A0,
                idx: MregIdx::mreg(0).unwrap()
            }),
            "rmr a0, m0"
        );
        assert_eq!(
            disassemble(&Insn::Wmr {
                rs1: Reg::T0,
                idx: crate::metal::Mcr::Mstatus.index()
            }),
            "wmr mstatus, t0"
        );
    }
}
