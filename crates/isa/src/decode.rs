//! Instruction decoding: 32-bit instruction word → [`Insn`].

use crate::encode::{branch_offset, jal_offset, opcodes};
use crate::insn::{AluOp, Cond, CsrOp, CsrSrc, Insn, LoadOp, MulOp, StoreOp};
use crate::metal::{MarchOp, MetalOpcode, METAL_OPCODE};
use crate::reg::{MregIdx, Reg};
use crate::sign_extend;
use core::fmt;

/// A word with no legal decoding. The processor raises an
/// illegal-instruction exception when it fetches one.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct DecodeError {
    /// The offending instruction word.
    pub word: u32,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "illegal instruction word {:#010x}", self.word)
    }
}

impl std::error::Error for DecodeError {}

#[inline]
fn rd(word: u32) -> Reg {
    Reg::from_field(word >> 7)
}

#[inline]
fn rs1(word: u32) -> Reg {
    Reg::from_field(word >> 15)
}

#[inline]
fn rs2(word: u32) -> Reg {
    Reg::from_field(word >> 20)
}

#[inline]
fn funct3(word: u32) -> u32 {
    (word >> 12) & 0x7
}

#[inline]
fn funct7(word: u32) -> u32 {
    (word >> 25) & 0x7F
}

#[inline]
fn imm_i(word: u32) -> i32 {
    sign_extend(word >> 20, 12)
}

#[inline]
fn imm_s(word: u32) -> i32 {
    sign_extend(((word >> 25) << 5) | ((word >> 7) & 0x1F), 12)
}

/// Decodes an instruction word.
///
/// Returns [`DecodeError`] for any word with no legal decoding; the
/// pipeline converts that into an illegal-instruction exception.
pub fn decode(word: u32) -> Result<Insn, DecodeError> {
    let err = Err(DecodeError { word });
    let opcode = word & 0x7F;
    match opcode {
        opcodes::LUI => Ok(Insn::Lui {
            rd: rd(word),
            imm20: word >> 12,
        }),
        opcodes::AUIPC => Ok(Insn::Auipc {
            rd: rd(word),
            imm20: word >> 12,
        }),
        opcodes::JAL => Ok(Insn::Jal {
            rd: rd(word),
            offset: jal_offset(word),
        }),
        opcodes::JALR => {
            if funct3(word) != 0 {
                return err;
            }
            Ok(Insn::Jalr {
                rd: rd(word),
                rs1: rs1(word),
                offset: imm_i(word),
            })
        }
        opcodes::BRANCH => {
            let Some(cond) = Cond::from_funct3(funct3(word)) else {
                return err;
            };
            Ok(Insn::Branch {
                cond,
                rs1: rs1(word),
                rs2: rs2(word),
                offset: branch_offset(word),
            })
        }
        opcodes::LOAD => {
            let Some(op) = LoadOp::from_funct3(funct3(word)) else {
                return err;
            };
            Ok(Insn::Load {
                op,
                rd: rd(word),
                rs1: rs1(word),
                offset: imm_i(word),
            })
        }
        opcodes::STORE => {
            let Some(op) = StoreOp::from_funct3(funct3(word)) else {
                return err;
            };
            Ok(Insn::Store {
                op,
                rs2: rs2(word),
                rs1: rs1(word),
                offset: imm_s(word),
            })
        }
        opcodes::OP_IMM => {
            let f3 = funct3(word);
            let op = match f3 {
                0b000 => AluOp::Add,
                0b001 => {
                    if funct7(word) != 0 {
                        return err;
                    }
                    AluOp::Sll
                }
                0b010 => AluOp::Slt,
                0b011 => AluOp::Sltu,
                0b100 => AluOp::Xor,
                0b101 => match funct7(word) {
                    0x00 => AluOp::Srl,
                    0x20 => AluOp::Sra,
                    _ => return err,
                },
                0b110 => AluOp::Or,
                0b111 => AluOp::And,
                _ => unreachable!("funct3 is 3 bits"),
            };
            let imm = match op {
                AluOp::Sll | AluOp::Srl | AluOp::Sra => ((word >> 20) & 0x1F) as i32,
                _ => imm_i(word),
            };
            Ok(Insn::AluImm {
                op,
                rd: rd(word),
                rs1: rs1(word),
                imm,
            })
        }
        opcodes::OP => {
            let f3 = funct3(word);
            match funct7(word) {
                0x00 => {
                    let op = match f3 {
                        0b000 => AluOp::Add,
                        0b001 => AluOp::Sll,
                        0b010 => AluOp::Slt,
                        0b011 => AluOp::Sltu,
                        0b100 => AluOp::Xor,
                        0b101 => AluOp::Srl,
                        0b110 => AluOp::Or,
                        0b111 => AluOp::And,
                        _ => unreachable!("funct3 is 3 bits"),
                    };
                    Ok(Insn::Alu {
                        op,
                        rd: rd(word),
                        rs1: rs1(word),
                        rs2: rs2(word),
                    })
                }
                0x20 => {
                    let op = match f3 {
                        0b000 => AluOp::Sub,
                        0b101 => AluOp::Sra,
                        _ => return err,
                    };
                    Ok(Insn::Alu {
                        op,
                        rd: rd(word),
                        rs1: rs1(word),
                        rs2: rs2(word),
                    })
                }
                0x01 => {
                    let Some(op) = MulOp::from_funct3(f3) else {
                        return err;
                    };
                    Ok(Insn::MulDiv {
                        op,
                        rd: rd(word),
                        rs1: rs1(word),
                        rs2: rs2(word),
                    })
                }
                _ => err,
            }
        }
        opcodes::MISC_MEM => {
            if funct3(word) == 0 {
                Ok(Insn::Fence)
            } else {
                err
            }
        }
        opcodes::SYSTEM => {
            let f3 = funct3(word);
            match f3 {
                0b000 => {
                    if rd(word) != Reg::ZERO || rs1(word) != Reg::ZERO {
                        return err;
                    }
                    match word >> 20 {
                        0x000 => Ok(Insn::Ecall),
                        0x001 => Ok(Insn::Ebreak),
                        0x302 => Ok(Insn::Mret),
                        0x105 => Ok(Insn::Wfi),
                        _ => err,
                    }
                }
                0b001..=0b011 => {
                    let op = match f3 {
                        0b001 => CsrOp::Rw,
                        0b010 => CsrOp::Rs,
                        _ => CsrOp::Rc,
                    };
                    Ok(Insn::Csr {
                        op,
                        rd: rd(word),
                        csr: (word >> 20) as u16,
                        src: CsrSrc::Reg(rs1(word)),
                    })
                }
                0b101..=0b111 => {
                    let op = match f3 {
                        0b101 => CsrOp::Rw,
                        0b110 => CsrOp::Rs,
                        _ => CsrOp::Rc,
                    };
                    Ok(Insn::Csr {
                        op,
                        rd: rd(word),
                        csr: (word >> 20) as u16,
                        src: CsrSrc::Imm(((word >> 15) & 0x1F) as u8),
                    })
                }
                _ => err,
            }
        }
        METAL_OPCODE => {
            let Some(mop) = MetalOpcode::from_funct3(funct3(word)) else {
                return err;
            };
            match mop {
                MetalOpcode::Menter => {
                    let entry = word >> 20;
                    if entry != crate::metal::MENTER_INDIRECT
                        && entry as usize >= crate::metal::MAX_MROUTINES
                    {
                        return err;
                    }
                    // rs1 only matters for the indirect form; canonicalize
                    // it away otherwise (hardware ignores the field).
                    let rs1 = if entry == crate::metal::MENTER_INDIRECT {
                        rs1(word)
                    } else {
                        Reg::ZERO
                    };
                    Ok(Insn::Menter { rs1, entry })
                }
                MetalOpcode::Mexit => Ok(Insn::Mexit),
                MetalOpcode::Rmr => Ok(Insn::Rmr {
                    rd: rd(word),
                    idx: MregIdx::from_field(word >> 20),
                }),
                MetalOpcode::Wmr => Ok(Insn::Wmr {
                    rs1: rs1(word),
                    idx: MregIdx::from_field(word >> 20),
                }),
                MetalOpcode::Mld => Ok(Insn::Mld {
                    rd: rd(word),
                    rs1: rs1(word),
                    offset: imm_i(word),
                }),
                MetalOpcode::Mst => Ok(Insn::Mst {
                    rs2: rs2(word),
                    rs1: rs1(word),
                    offset: imm_s(word),
                }),
                MetalOpcode::March => {
                    let Some(op) = MarchOp::from_funct7(funct7(word)) else {
                        return err;
                    };
                    // Canonicalize: zero the register fields this sub-op
                    // ignores, so decode -> encode is idempotent and the
                    // disassembly (which omits unused operands) re-parses
                    // to the same word.
                    let has_rd = matches!(
                        op,
                        MarchOp::Mpld | MarchOp::Mtlbp | MarchOp::Mipend | MarchOp::Mscrub
                    );
                    let has_rs1 =
                        !matches!(op, MarchOp::Mipend | MarchOp::Mtlbiall | MarchOp::Mscrub);
                    let has_rs2 = matches!(
                        op,
                        MarchOp::Mpst | MarchOp::Mtlbw | MarchOp::Mpkey | MarchOp::Mintercept
                    );
                    Ok(Insn::March {
                        op,
                        rd: if has_rd { rd(word) } else { Reg::ZERO },
                        rs1: if has_rs1 { rs1(word) } else { Reg::ZERO },
                        rs2: if has_rs2 { rs2(word) } else { Reg::ZERO },
                    })
                }
            }
        }
        _ => err,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;

    #[test]
    fn decode_known_words() {
        assert_eq!(
            decode(0x02A0_0513),
            Ok(Insn::AluImm {
                op: AluOp::Add,
                rd: Reg::A0,
                rs1: Reg::ZERO,
                imm: 42
            })
        );
        assert_eq!(decode(0x0000_0073), Ok(Insn::Ecall));
        assert_eq!(decode(0x3020_0073), Ok(Insn::Mret));
        assert_eq!(
            decode(0x0000_0013),
            Ok(Insn::NOP),
            "canonical nop decodes to Insn::NOP"
        );
    }

    #[test]
    fn illegal_words_rejected() {
        assert!(decode(0x0000_0000).is_err(), "all-zero word is illegal");
        assert!(decode(0xFFFF_FFFF).is_err(), "all-ones word is illegal");
        // BRANCH with funct3 = 010 (undefined condition).
        assert!(decode(0x0000_2063).is_err());
        // Metal funct3 = 111 is reserved.
        assert!(decode(0x0000_700B).is_err());
    }

    #[test]
    fn metal_roundtrip() {
        let insns = [
            Insn::Menter {
                rs1: Reg::ZERO,
                entry: 5,
            },
            Insn::Menter {
                rs1: Reg::A0,
                entry: crate::metal::MENTER_INDIRECT,
            },
            Insn::Mexit,
            Insn::Rmr {
                rd: Reg::A0,
                idx: MregIdx::mreg(31).unwrap(),
            },
            Insn::Wmr {
                rs1: Reg::A0,
                idx: crate::metal::Mcr::Mcause.index(),
            },
            Insn::Mld {
                rd: Reg::T0,
                rs1: Reg::T1,
                offset: -8,
            },
            Insn::Mst {
                rs2: Reg::T0,
                rs1: Reg::T1,
                offset: 12,
            },
            Insn::March {
                op: MarchOp::Mtlbw,
                rd: Reg::ZERO,
                rs1: Reg::A0,
                rs2: Reg::A1,
            },
        ];
        for insn in insns {
            assert_eq!(decode(encode(&insn)), Ok(insn), "{insn:?}");
        }
    }

    #[test]
    fn shift_immediate_upper_bits_checked() {
        // slli with funct7 = 0x20 is illegal.
        let bad = 0x4000_1013 | (1 << 20);
        assert!(decode(bad).is_err());
    }
}
