//! General-purpose and Metal register names.

use core::fmt;

/// One of the 32 general-purpose registers `x0..x31`.
///
/// The wrapped index is guaranteed to be in `0..32`; constructing a `Reg`
/// goes through [`Reg::new`] (fallible) or the named constants.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(u8);

impl Reg {
    /// Hard-wired zero register `x0`.
    pub const ZERO: Reg = Reg(0);
    /// Return address `x1`.
    pub const RA: Reg = Reg(1);
    /// Stack pointer `x2`.
    pub const SP: Reg = Reg(2);
    /// Global pointer `x3`.
    pub const GP: Reg = Reg(3);
    /// Thread pointer `x4`.
    pub const TP: Reg = Reg(4);
    /// Temporary `x5`.
    pub const T0: Reg = Reg(5);
    /// Temporary `x6`.
    pub const T1: Reg = Reg(6);
    /// Temporary `x7`.
    pub const T2: Reg = Reg(7);
    /// Saved register / frame pointer `x8`.
    pub const S0: Reg = Reg(8);
    /// Saved register `x9`.
    pub const S1: Reg = Reg(9);
    /// Argument / return value `x10`.
    pub const A0: Reg = Reg(10);
    /// Argument / return value `x11`.
    pub const A1: Reg = Reg(11);
    /// Argument `x12`.
    pub const A2: Reg = Reg(12);
    /// Argument `x13`.
    pub const A3: Reg = Reg(13);
    /// Argument `x14`.
    pub const A4: Reg = Reg(14);
    /// Argument `x15`.
    pub const A5: Reg = Reg(15);
    /// Argument `x16`.
    pub const A6: Reg = Reg(16);
    /// Argument `x17` (syscall number in the mini-kernel ABI).
    pub const A7: Reg = Reg(17);
    /// Saved register `x18`.
    pub const S2: Reg = Reg(18);
    /// Saved register `x19`.
    pub const S3: Reg = Reg(19);
    /// Saved register `x20`.
    pub const S4: Reg = Reg(20);
    /// Saved register `x21`.
    pub const S5: Reg = Reg(21);
    /// Saved register `x22`.
    pub const S6: Reg = Reg(22);
    /// Saved register `x23`.
    pub const S7: Reg = Reg(23);
    /// Saved register `x24`.
    pub const S8: Reg = Reg(24);
    /// Saved register `x25`.
    pub const S9: Reg = Reg(25);
    /// Saved register `x26`.
    pub const S10: Reg = Reg(26);
    /// Saved register `x27`.
    pub const S11: Reg = Reg(27);
    /// Temporary `x28`.
    pub const T3: Reg = Reg(28);
    /// Temporary `x29`.
    pub const T4: Reg = Reg(29);
    /// Temporary `x30`.
    pub const T5: Reg = Reg(30);
    /// Temporary `x31`.
    pub const T6: Reg = Reg(31);

    /// Creates a register from a raw index, returning `None` if out of range.
    #[inline]
    #[must_use]
    pub const fn new(index: u8) -> Option<Reg> {
        if index < 32 {
            Some(Reg(index))
        } else {
            None
        }
    }

    /// Creates a register from the low 5 bits of an encoded field.
    #[inline]
    #[must_use]
    pub const fn from_field(field: u32) -> Reg {
        Reg((field & 0x1F) as u8)
    }

    /// The raw index in `0..32`.
    #[inline]
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw index as a `u32` encoding field.
    #[inline]
    #[must_use]
    pub const fn field(self) -> u32 {
        self.0 as u32
    }

    /// The ABI name (`zero`, `ra`, `sp`, …).
    #[must_use]
    pub const fn abi_name(self) -> &'static str {
        ABI_NAMES[self.0 as usize]
    }

    /// Parses either an `xN` numeric name or an ABI name (including `fp`).
    #[must_use]
    pub fn parse(name: &str) -> Option<Reg> {
        if let Some(num) = name.strip_prefix('x') {
            if let Ok(n) = num.parse::<u8>() {
                return Reg::new(n);
            }
        }
        if name == "fp" {
            return Some(Reg::S0);
        }
        ABI_NAMES
            .iter()
            .position(|&abi| abi == name)
            .map(|i| Reg(i as u8))
    }

    /// Iterates over all 32 registers in index order.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0u8..32).map(Reg)
    }
}

const ABI_NAMES: [&str; 32] = [
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3", "a4",
    "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11", "t3", "t4",
    "t5", "t6",
];

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abi_name())
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}/{}", self.0, self.abi_name())
    }
}

/// Index of a Metal register `m0..m31` or a Metal control register.
///
/// Values `0..32` name the Metal register file; values at or above
/// [`crate::metal::MCR_BASE`] name Metal control registers. The `rmr`/`wmr`
/// instructions carry this index in their 12-bit immediate field.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MregIdx(u16);

impl MregIdx {
    /// Metal register `m31`: receives the return address on `menter`.
    pub const RETURN_ADDRESS: MregIdx = MregIdx(31);

    /// Creates an index for Metal register `mN`.
    #[inline]
    #[must_use]
    pub const fn mreg(n: u8) -> Option<MregIdx> {
        if n < 32 {
            Some(MregIdx(n as u16))
        } else {
            None
        }
    }

    /// Creates an index from a raw 12-bit immediate field.
    #[inline]
    #[must_use]
    pub const fn from_field(field: u32) -> MregIdx {
        MregIdx((field & 0xFFF) as u16)
    }

    /// The raw 12-bit field value.
    #[inline]
    #[must_use]
    pub const fn field(self) -> u32 {
        self.0 as u32
    }

    /// True if this index names one of `m0..m31` (not a control register).
    #[inline]
    #[must_use]
    pub const fn is_mreg(self) -> bool {
        self.0 < 32
    }

    /// The Metal register number if this is `m0..m31`.
    #[inline]
    #[must_use]
    pub const fn mreg_index(self) -> Option<usize> {
        if self.is_mreg() {
            Some(self.0 as usize)
        } else {
            None
        }
    }
}

impl fmt::Display for MregIdx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_mreg() {
            write!(f, "m{}", self.0)
        } else {
            match crate::metal::Mcr::from_index(*self) {
                Some(mcr) => f.write_str(mcr.name()),
                None => write!(f, "mcr:{:#x}", self.0),
            }
        }
    }
}

impl fmt::Debug for MregIdx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_roundtrip_names() {
        for r in Reg::all() {
            assert_eq!(Reg::parse(r.abi_name()), Some(r));
            assert_eq!(Reg::parse(&format!("x{}", r.index())), Some(r));
        }
    }

    #[test]
    fn reg_parse_fp_alias() {
        assert_eq!(Reg::parse("fp"), Some(Reg::S0));
        assert_eq!(Reg::parse("s0"), Some(Reg::S0));
    }

    #[test]
    fn reg_rejects_out_of_range() {
        assert_eq!(Reg::new(32), None);
        assert_eq!(Reg::parse("x32"), None);
        assert_eq!(Reg::parse("q7"), None);
        assert_eq!(Reg::parse(""), None);
    }

    #[test]
    fn reg_from_field_masks() {
        assert_eq!(Reg::from_field(0x25), Reg::T0);
    }

    #[test]
    fn mreg_index_classification() {
        assert!(MregIdx::mreg(0).unwrap().is_mreg());
        assert!(MregIdx::mreg(31).unwrap().is_mreg());
        assert_eq!(MregIdx::mreg(32), None);
        assert!(!MregIdx::from_field(0x400).is_mreg());
        assert_eq!(MregIdx::mreg(7).unwrap().mreg_index(), Some(7));
        assert_eq!(MregIdx::from_field(0x400).mreg_index(), None);
    }

    #[test]
    fn mreg_display() {
        assert_eq!(MregIdx::mreg(31).unwrap().to_string(), "m31");
        assert_eq!(MregIdx::RETURN_ADDRESS.to_string(), "m31");
    }
}
