//! The decoded instruction type and its operand enums.

use crate::metal::MarchOp;
use crate::reg::{MregIdx, Reg};

/// Branch conditions (`funct3` of the BRANCH major opcode).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u32)]
pub enum Cond {
    /// `beq`: branch if equal.
    Eq = 0b000,
    /// `bne`: branch if not equal.
    Ne = 0b001,
    /// `blt`: branch if less than (signed).
    Lt = 0b100,
    /// `bge`: branch if greater or equal (signed).
    Ge = 0b101,
    /// `bltu`: branch if less than (unsigned).
    Ltu = 0b110,
    /// `bgeu`: branch if greater or equal (unsigned).
    Geu = 0b111,
}

impl Cond {
    /// Decodes a funct3 field.
    #[must_use]
    pub const fn from_funct3(f3: u32) -> Option<Cond> {
        match f3 {
            0b000 => Some(Cond::Eq),
            0b001 => Some(Cond::Ne),
            0b100 => Some(Cond::Lt),
            0b101 => Some(Cond::Ge),
            0b110 => Some(Cond::Ltu),
            0b111 => Some(Cond::Geu),
            _ => None,
        }
    }

    /// Evaluates the condition on two operand values.
    #[must_use]
    pub const fn eval(self, a: u32, b: u32) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => (a as i32) < (b as i32),
            Cond::Ge => (a as i32) >= (b as i32),
            Cond::Ltu => a < b,
            Cond::Geu => a >= b,
        }
    }

    /// Assembler mnemonic.
    #[must_use]
    pub const fn mnemonic(self) -> &'static str {
        match self {
            Cond::Eq => "beq",
            Cond::Ne => "bne",
            Cond::Lt => "blt",
            Cond::Ge => "bge",
            Cond::Ltu => "bltu",
            Cond::Geu => "bgeu",
        }
    }
}

/// Load operations (width and sign-extension).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u32)]
pub enum LoadOp {
    /// `lb`: signed byte.
    Lb = 0b000,
    /// `lh`: signed half-word.
    Lh = 0b001,
    /// `lw`: word.
    Lw = 0b010,
    /// `lbu`: unsigned byte.
    Lbu = 0b100,
    /// `lhu`: unsigned half-word.
    Lhu = 0b101,
}

impl LoadOp {
    /// Decodes a funct3 field.
    #[must_use]
    pub const fn from_funct3(f3: u32) -> Option<LoadOp> {
        match f3 {
            0b000 => Some(LoadOp::Lb),
            0b001 => Some(LoadOp::Lh),
            0b010 => Some(LoadOp::Lw),
            0b100 => Some(LoadOp::Lbu),
            0b101 => Some(LoadOp::Lhu),
            _ => None,
        }
    }

    /// Access width in bytes.
    #[must_use]
    pub const fn bytes(self) -> u32 {
        match self {
            LoadOp::Lb | LoadOp::Lbu => 1,
            LoadOp::Lh | LoadOp::Lhu => 2,
            LoadOp::Lw => 4,
        }
    }

    /// Assembler mnemonic.
    #[must_use]
    pub const fn mnemonic(self) -> &'static str {
        match self {
            LoadOp::Lb => "lb",
            LoadOp::Lh => "lh",
            LoadOp::Lw => "lw",
            LoadOp::Lbu => "lbu",
            LoadOp::Lhu => "lhu",
        }
    }
}

/// Store operations (width).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u32)]
pub enum StoreOp {
    /// `sb`: byte.
    Sb = 0b000,
    /// `sh`: half-word.
    Sh = 0b001,
    /// `sw`: word.
    Sw = 0b010,
}

impl StoreOp {
    /// Decodes a funct3 field.
    #[must_use]
    pub const fn from_funct3(f3: u32) -> Option<StoreOp> {
        match f3 {
            0b000 => Some(StoreOp::Sb),
            0b001 => Some(StoreOp::Sh),
            0b010 => Some(StoreOp::Sw),
            _ => None,
        }
    }

    /// Access width in bytes.
    #[must_use]
    pub const fn bytes(self) -> u32 {
        match self {
            StoreOp::Sb => 1,
            StoreOp::Sh => 2,
            StoreOp::Sw => 4,
        }
    }

    /// Assembler mnemonic.
    #[must_use]
    pub const fn mnemonic(self) -> &'static str {
        match self {
            StoreOp::Sb => "sb",
            StoreOp::Sh => "sh",
            StoreOp::Sw => "sw",
        }
    }
}

/// Register-register and register-immediate ALU operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Addition (`add`/`addi`).
    Add,
    /// Subtraction (`sub`; register form only).
    Sub,
    /// Logical shift left.
    Sll,
    /// Set if less than, signed.
    Slt,
    /// Set if less than, unsigned.
    Sltu,
    /// Bitwise exclusive or.
    Xor,
    /// Logical shift right.
    Srl,
    /// Arithmetic shift right.
    Sra,
    /// Bitwise or.
    Or,
    /// Bitwise and.
    And,
}

impl AluOp {
    /// Evaluates the operation.
    #[must_use]
    pub const fn eval(self, a: u32, b: u32) -> u32 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Sll => a.wrapping_shl(b & 0x1F),
            AluOp::Slt => ((a as i32) < (b as i32)) as u32,
            AluOp::Sltu => (a < b) as u32,
            AluOp::Xor => a ^ b,
            AluOp::Srl => a.wrapping_shr(b & 0x1F),
            AluOp::Sra => ((a as i32).wrapping_shr(b & 0x1F)) as u32,
            AluOp::Or => a | b,
            AluOp::And => a & b,
        }
    }

    /// funct3 for the OP/OP-IMM encodings.
    #[must_use]
    pub const fn funct3(self) -> u32 {
        match self {
            AluOp::Add | AluOp::Sub => 0b000,
            AluOp::Sll => 0b001,
            AluOp::Slt => 0b010,
            AluOp::Sltu => 0b011,
            AluOp::Xor => 0b100,
            AluOp::Srl | AluOp::Sra => 0b101,
            AluOp::Or => 0b110,
            AluOp::And => 0b111,
        }
    }

    /// Register-form mnemonic (`add`, `sub`, …).
    #[must_use]
    pub const fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Sll => "sll",
            AluOp::Slt => "slt",
            AluOp::Sltu => "sltu",
            AluOp::Xor => "xor",
            AluOp::Srl => "srl",
            AluOp::Sra => "sra",
            AluOp::Or => "or",
            AluOp::And => "and",
        }
    }
}

/// RV32M multiply/divide operations (`funct3` with `funct7 = 0000001`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u32)]
pub enum MulOp {
    /// `mul`: low 32 bits of the product.
    Mul = 0b000,
    /// `mulh`: high 32 bits of signed*signed.
    Mulh = 0b001,
    /// `mulhsu`: high 32 bits of signed*unsigned.
    Mulhsu = 0b010,
    /// `mulhu`: high 32 bits of unsigned*unsigned.
    Mulhu = 0b011,
    /// `div`: signed division.
    Div = 0b100,
    /// `divu`: unsigned division.
    Divu = 0b101,
    /// `rem`: signed remainder.
    Rem = 0b110,
    /// `remu`: unsigned remainder.
    Remu = 0b111,
}

impl MulOp {
    /// Decodes a funct3 field.
    #[must_use]
    pub const fn from_funct3(f3: u32) -> Option<MulOp> {
        match f3 {
            0b000 => Some(MulOp::Mul),
            0b001 => Some(MulOp::Mulh),
            0b010 => Some(MulOp::Mulhsu),
            0b011 => Some(MulOp::Mulhu),
            0b100 => Some(MulOp::Div),
            0b101 => Some(MulOp::Divu),
            0b110 => Some(MulOp::Rem),
            0b111 => Some(MulOp::Remu),
            _ => None,
        }
    }

    /// Evaluates the operation with RISC-V division-by-zero and overflow
    /// semantics (no trap; defined result values).
    #[must_use]
    pub const fn eval(self, a: u32, b: u32) -> u32 {
        match self {
            MulOp::Mul => a.wrapping_mul(b),
            MulOp::Mulh => (((a as i32 as i64) * (b as i32 as i64)) >> 32) as u32,
            MulOp::Mulhsu => (((a as i32 as i64) * (b as u64 as i64)) >> 32) as u32,
            MulOp::Mulhu => (((a as u64) * (b as u64)) >> 32) as u32,
            MulOp::Div => {
                if b == 0 {
                    u32::MAX
                } else if a == 0x8000_0000 && b == u32::MAX {
                    a
                } else {
                    ((a as i32) / (b as i32)) as u32
                }
            }
            MulOp::Divu => match a.checked_div(b) {
                Some(q) => q,
                None => u32::MAX,
            },
            MulOp::Rem => {
                if b == 0 {
                    a
                } else if a == 0x8000_0000 && b == u32::MAX {
                    0
                } else {
                    ((a as i32) % (b as i32)) as u32
                }
            }
            MulOp::Remu => match a.checked_rem(b) {
                Some(r) => r,
                None => a,
            },
        }
    }

    /// Assembler mnemonic.
    #[must_use]
    pub const fn mnemonic(self) -> &'static str {
        match self {
            MulOp::Mul => "mul",
            MulOp::Mulh => "mulh",
            MulOp::Mulhsu => "mulhsu",
            MulOp::Mulhu => "mulhu",
            MulOp::Div => "div",
            MulOp::Divu => "divu",
            MulOp::Rem => "rem",
            MulOp::Remu => "remu",
        }
    }
}

/// CSR access operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CsrOp {
    /// Atomic read/write.
    Rw,
    /// Atomic read and set bits.
    Rs,
    /// Atomic read and clear bits.
    Rc,
}

/// Source operand of a CSR instruction: a register or a 5-bit immediate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CsrSrc {
    /// Register form (`csrrw` etc.).
    Reg(Reg),
    /// Immediate form (`csrrwi` etc.), zero-extended 5-bit value.
    Imm(u8),
}

/// A decoded instruction.
///
/// Immediates are stored in *semantic* form: branch/jump offsets are byte
/// offsets relative to the instruction's own address; `Lui`/`Auipc` store
/// the raw 20-bit upper-immediate field.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Insn {
    /// `lui rd, imm20`: load upper immediate (`rd = imm20 << 12`).
    Lui {
        /// Destination register.
        rd: Reg,
        /// Upper 20-bit immediate field (`0..2^20`).
        imm20: u32,
    },
    /// `auipc rd, imm20`: `rd = pc + (imm20 << 12)`.
    Auipc {
        /// Destination register.
        rd: Reg,
        /// Upper 20-bit immediate field (`0..2^20`).
        imm20: u32,
    },
    /// `jal rd, offset`: jump and link.
    Jal {
        /// Link register.
        rd: Reg,
        /// Byte offset from this instruction, even, within ±1 MiB.
        offset: i32,
    },
    /// `jalr rd, offset(rs1)`: indirect jump and link.
    Jalr {
        /// Link register.
        rd: Reg,
        /// Base register.
        rs1: Reg,
        /// Byte offset added to `rs1`.
        offset: i32,
    },
    /// Conditional branch.
    Branch {
        /// Condition.
        cond: Cond,
        /// First comparand.
        rs1: Reg,
        /// Second comparand.
        rs2: Reg,
        /// Byte offset from this instruction, even, within ±4 KiB.
        offset: i32,
    },
    /// Memory load.
    Load {
        /// Width/signedness.
        op: LoadOp,
        /// Destination register.
        rd: Reg,
        /// Base register.
        rs1: Reg,
        /// Byte offset.
        offset: i32,
    },
    /// Memory store.
    Store {
        /// Width.
        op: StoreOp,
        /// Value register.
        rs2: Reg,
        /// Base register.
        rs1: Reg,
        /// Byte offset.
        offset: i32,
    },
    /// Register-immediate ALU operation (`addi`, `slti`, shifts, …).
    /// `Sub` is not valid here.
    AluImm {
        /// Operation.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// Source register.
        rs1: Reg,
        /// Sign-extended 12-bit immediate (shift amount for shifts).
        imm: i32,
    },
    /// Register-register ALU operation.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// First source.
        rs1: Reg,
        /// Second source.
        rs2: Reg,
    },
    /// RV32M multiply/divide.
    MulDiv {
        /// Operation.
        op: MulOp,
        /// Destination register.
        rd: Reg,
        /// First source.
        rs1: Reg,
        /// Second source.
        rs2: Reg,
    },
    /// CSR read-modify-write.
    Csr {
        /// Operation.
        op: CsrOp,
        /// Destination register (receives the old CSR value).
        rd: Reg,
        /// CSR address (12 bits).
        csr: u16,
        /// Source operand.
        src: CsrSrc,
    },
    /// `ecall`: environment call (traps).
    Ecall,
    /// `ebreak`: breakpoint (traps).
    Ebreak,
    /// `mret`: return from a baseline (non-Metal) trap handler.
    Mret,
    /// `wfi`: wait for interrupt.
    Wfi,
    /// `fence`: memory ordering; a no-op in this in-order model.
    Fence,
    /// `menter rs1, entry`: enter Metal mode (paper Table 1).
    Menter {
        /// Entry-number register (used when `entry == MENTER_INDIRECT`).
        rs1: Reg,
        /// Immediate entry number, or [`crate::metal::MENTER_INDIRECT`].
        entry: u32,
    },
    /// `mexit`: leave Metal mode, resume at the address in `m31`.
    Mexit,
    /// `rmr rd, idx`: read Metal register / control register.
    Rmr {
        /// Destination GPR.
        rd: Reg,
        /// Metal register or MCR index.
        idx: MregIdx,
    },
    /// `wmr rs1, idx`: write Metal register / control register.
    Wmr {
        /// Source GPR.
        rs1: Reg,
        /// Metal register or MCR index.
        idx: MregIdx,
    },
    /// `mld rd, offset(rs1)`: load a word from the MRAM data segment.
    Mld {
        /// Destination GPR.
        rd: Reg,
        /// Base register (MRAM data-segment offset).
        rs1: Reg,
        /// Additional byte offset.
        offset: i32,
    },
    /// `mst rs2, offset(rs1)`: store a word to the MRAM data segment.
    Mst {
        /// Value register.
        rs2: Reg,
        /// Base register (MRAM data-segment offset).
        rs1: Reg,
        /// Additional byte offset.
        offset: i32,
    },
    /// Architectural-feature operation (Metal mode only).
    March {
        /// Sub-operation.
        op: MarchOp,
        /// Destination register (for `mpld`, `mtlbp`, `mipend`).
        rd: Reg,
        /// First source.
        rs1: Reg,
        /// Second source.
        rs2: Reg,
    },
}

impl Insn {
    /// A canonical no-op (`addi x0, x0, 0`).
    pub const NOP: Insn = Insn::AluImm {
        op: AluOp::Add,
        rd: Reg::ZERO,
        rs1: Reg::ZERO,
        imm: 0,
    };

    /// The destination register written by this instruction, if any.
    /// `x0` destinations are reported as `None` (writes to `x0` are
    /// discarded, so nothing depends on them).
    #[must_use]
    pub fn dest(&self) -> Option<Reg> {
        let rd = match *self {
            Insn::Lui { rd, .. }
            | Insn::Auipc { rd, .. }
            | Insn::Jal { rd, .. }
            | Insn::Jalr { rd, .. }
            | Insn::Load { rd, .. }
            | Insn::AluImm { rd, .. }
            | Insn::Alu { rd, .. }
            | Insn::MulDiv { rd, .. }
            | Insn::Csr { rd, .. }
            | Insn::Rmr { rd, .. }
            | Insn::Mld { rd, .. } => rd,
            Insn::March {
                op: MarchOp::Mpld | MarchOp::Mtlbp | MarchOp::Mipend | MarchOp::Mscrub,
                rd,
                ..
            } => rd,
            _ => return None,
        };
        (rd != Reg::ZERO).then_some(rd)
    }

    /// The GPRs read by this instruction (up to two).
    #[must_use]
    pub fn sources(&self) -> [Option<Reg>; 2] {
        fn nz(r: Reg) -> Option<Reg> {
            (r != Reg::ZERO).then_some(r)
        }
        match *self {
            Insn::Jalr { rs1, .. }
            | Insn::Load { rs1, .. }
            | Insn::AluImm { rs1, .. }
            | Insn::Wmr { rs1, .. }
            | Insn::Mld { rs1, .. }
            | Insn::Menter { rs1, .. } => [nz(rs1), None],
            Insn::Branch { rs1, rs2, .. }
            | Insn::Store { rs1, rs2, .. }
            | Insn::Alu { rs1, rs2, .. }
            | Insn::MulDiv { rs1, rs2, .. }
            | Insn::Mst { rs1, rs2, .. } => [nz(rs1), nz(rs2)],
            Insn::Csr { src, .. } => match src {
                CsrSrc::Reg(rs1) => [nz(rs1), None],
                CsrSrc::Imm(_) => [None, None],
            },
            Insn::March { op, rs1, rs2, .. } => match op {
                MarchOp::Mpld
                | MarchOp::Mtlbi
                | MarchOp::Mtlbp
                | MarchOp::Masid
                | MarchOp::Miack
                | MarchOp::Mlayer => [nz(rs1), None],
                MarchOp::Mpst | MarchOp::Mtlbw | MarchOp::Mpkey | MarchOp::Mintercept => {
                    [nz(rs1), nz(rs2)]
                }
                MarchOp::Mipend | MarchOp::Mtlbiall | MarchOp::Mscrub => [None, None],
            },
            _ => [None, None],
        }
    }

    /// True if this is a memory access through the MMU (a candidate for
    /// load/store interception and page faults).
    #[must_use]
    pub fn is_mem_access(&self) -> bool {
        matches!(self, Insn::Load { .. } | Insn::Store { .. })
    }

    /// True if this instruction can redirect control flow.
    #[must_use]
    pub fn is_control_flow(&self) -> bool {
        matches!(
            self,
            Insn::Jal { .. }
                | Insn::Jalr { .. }
                | Insn::Branch { .. }
                | Insn::Ecall
                | Insn::Ebreak
                | Insn::Mret
                | Insn::Menter { .. }
                | Insn::Mexit
        )
    }

    /// True if this is a Metal-extension instruction (any `funct3` of the
    /// custom-0 opcode).
    #[must_use]
    pub fn is_metal(&self) -> bool {
        matches!(
            self,
            Insn::Menter { .. }
                | Insn::Mexit
                | Insn::Rmr { .. }
                | Insn::Wmr { .. }
                | Insn::Mld { .. }
                | Insn::Mst { .. }
                | Insn::March { .. }
        )
    }

    /// True if this Metal instruction is legal *only* in Metal mode
    /// (everything except `menter`, per paper Table 1).
    #[must_use]
    pub fn metal_mode_only(&self) -> bool {
        self.is_metal() && !matches!(self, Insn::Menter { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cond_eval() {
        assert!(Cond::Eq.eval(5, 5));
        assert!(Cond::Ne.eval(5, 6));
        assert!(Cond::Lt.eval(-1i32 as u32, 0));
        assert!(!Cond::Ltu.eval(-1i32 as u32, 0));
        assert!(Cond::Ge.eval(0, -1i32 as u32));
        assert!(Cond::Geu.eval(-1i32 as u32, 0));
    }

    #[test]
    fn alu_eval_shifts_mask_amount() {
        assert_eq!(AluOp::Sll.eval(1, 33), 2);
        assert_eq!(AluOp::Srl.eval(0x8000_0000, 31), 1);
        assert_eq!(AluOp::Sra.eval(0x8000_0000, 31), 0xFFFF_FFFF);
    }

    #[test]
    fn muldiv_riscv_edge_semantics() {
        assert_eq!(MulOp::Div.eval(7, 0), u32::MAX);
        assert_eq!(MulOp::Rem.eval(7, 0), 7);
        assert_eq!(MulOp::Div.eval(0x8000_0000, u32::MAX), 0x8000_0000);
        assert_eq!(MulOp::Rem.eval(0x8000_0000, u32::MAX), 0);
        assert_eq!(MulOp::Mulh.eval(0x8000_0000, 2), 0xFFFF_FFFF);
        assert_eq!(MulOp::Mulhu.eval(0x8000_0000, 2), 1);
    }

    #[test]
    fn dest_ignores_x0() {
        let insn = Insn::AluImm {
            op: AluOp::Add,
            rd: Reg::ZERO,
            rs1: Reg::A0,
            imm: 1,
        };
        assert_eq!(insn.dest(), None);
        assert_eq!(Insn::NOP.dest(), None);
    }

    #[test]
    fn sources_of_store() {
        let insn = Insn::Store {
            op: StoreOp::Sw,
            rs2: Reg::A1,
            rs1: Reg::SP,
            offset: 4,
        };
        assert_eq!(insn.sources(), [Some(Reg::SP), Some(Reg::A1)]);
    }

    #[test]
    fn metal_mode_only_excludes_menter() {
        let menter = Insn::Menter {
            rs1: Reg::ZERO,
            entry: 3,
        };
        assert!(menter.is_metal());
        assert!(!menter.metal_mode_only());
        assert!(Insn::Mexit.metal_mode_only());
    }

    #[test]
    fn march_dest_only_for_value_producing_ops() {
        let tlbw = Insn::March {
            op: MarchOp::Mtlbw,
            rd: Reg::A0,
            rs1: Reg::A1,
            rs2: Reg::A2,
        };
        assert_eq!(tlbw.dest(), None);
        let pld = Insn::March {
            op: MarchOp::Mpld,
            rd: Reg::A0,
            rs1: Reg::A1,
            rs2: Reg::ZERO,
        };
        assert_eq!(pld.dest(), Some(Reg::A0));
    }
}
