//! CSR addresses used by the *baseline* (non-Metal) processor.
//!
//! The baseline core handles traps the conventional way — a trap vector,
//! cause/EPC registers, and `mret` — which is exactly what Metal replaces
//! with mroutine delegation. Keeping both lets the benchmarks compare the
//! two dispatch mechanisms on the same pipeline.

/// Machine status: bit 3 = MIE (global interrupt enable), bit 7 = MPIE.
pub const MSTATUS: u16 = 0x300;
/// Trap vector base address.
pub const MTVEC: u16 = 0x305;
/// Scratch register for trap handlers.
pub const MSCRATCH: u16 = 0x340;
/// Exception program counter.
pub const MEPC: u16 = 0x341;
/// Trap cause.
pub const MCAUSE: u16 = 0x342;
/// Faulting address / bad instruction value.
pub const MTVAL: u16 = 0x343;
/// Interrupt-pending bitmap.
pub const MIP: u16 = 0x344;
/// Interrupt-enable bitmap.
pub const MIE: u16 = 0x304;
/// Cycle counter, low word (read-only).
pub const CYCLE: u16 = 0xC00;
/// Instructions-retired counter, low word (read-only).
pub const INSTRET: u16 = 0xC02;
/// Cycle counter, high word (read-only).
pub const CYCLEH: u16 = 0xC80;
/// Instructions-retired counter, high word (read-only).
pub const INSTRETH: u16 = 0xC82;

/// `mstatus` bit: machine interrupt enable.
pub const MSTATUS_MIE: u32 = 1 << 3;
/// `mstatus` bit: previous interrupt enable (stacked by traps).
pub const MSTATUS_MPIE: u32 = 1 << 7;

/// Bit set in `mcause` for interrupts (as opposed to exceptions).
pub const CAUSE_INTERRUPT_BIT: u32 = 1 << 31;

/// Returns the symbolic name of a CSR address, if known.
#[must_use]
pub fn name(csr: u16) -> Option<&'static str> {
    Some(match csr {
        MSTATUS => "mstatus",
        MTVEC => "mtvec",
        MSCRATCH => "mscratch",
        MEPC => "mepc",
        MCAUSE => "mcause",
        MTVAL => "mtval",
        MIP => "mip",
        MIE => "mie",
        CYCLE => "cycle",
        INSTRET => "instret",
        CYCLEH => "cycleh",
        INSTRETH => "instreth",
        _ => return None,
    })
}

/// Parses a symbolic CSR name.
#[must_use]
pub fn parse(s: &str) -> Option<u16> {
    Some(match s {
        "mstatus" => MSTATUS,
        "mtvec" => MTVEC,
        "mscratch" => MSCRATCH,
        "mepc" => MEPC,
        "mcause" => MCAUSE,
        "mtval" => MTVAL,
        "mip" => MIP,
        "mie" => MIE,
        "cycle" => CYCLE,
        "instret" => INSTRET,
        "cycleh" => CYCLEH,
        "instreth" => INSTRETH,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_parse_roundtrip() {
        for csr in [
            MSTATUS, MTVEC, MSCRATCH, MEPC, MCAUSE, MTVAL, MIP, MIE, CYCLE, INSTRET, CYCLEH,
            INSTRETH,
        ] {
            let n = name(csr).expect("known CSR has a name");
            assert_eq!(parse(n), Some(csr));
        }
        assert_eq!(name(0x123), None);
        assert_eq!(parse("nope"), None);
    }
}
