//! Instruction encoding: [`Insn`] → 32-bit instruction word.

use crate::insn::{AluOp, CsrOp, CsrSrc, Insn};
use crate::metal::METAL_OPCODE;
use crate::reg::Reg;
use crate::{fits_simm, sign_extend};
use core::fmt;

/// Major opcodes of the base ISA.
pub mod opcodes {
    /// `lui`.
    pub const LUI: u32 = 0x37;
    /// `auipc`.
    pub const AUIPC: u32 = 0x17;
    /// `jal`.
    pub const JAL: u32 = 0x6F;
    /// `jalr`.
    pub const JALR: u32 = 0x67;
    /// Conditional branches.
    pub const BRANCH: u32 = 0x63;
    /// Loads.
    pub const LOAD: u32 = 0x03;
    /// Stores.
    pub const STORE: u32 = 0x23;
    /// Register-immediate ALU.
    pub const OP_IMM: u32 = 0x13;
    /// Register-register ALU and RV32M.
    pub const OP: u32 = 0x33;
    /// `fence`.
    pub const MISC_MEM: u32 = 0x0F;
    /// `ecall`/`ebreak`/`mret`/`wfi`/CSR.
    pub const SYSTEM: u32 = 0x73;
}

/// An [`Insn`] value that has no valid encoding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EncodeError {
    /// An immediate or offset does not fit its field (field name, value).
    ImmOutOfRange(&'static str, i64),
    /// A branch or jump offset is odd.
    MisalignedOffset(i64),
    /// `AluImm` with [`AluOp::Sub`] (no `subi` exists).
    SubImmediate,
    /// Shift amount outside `0..32`.
    BadShamt(i64),
    /// `menter` entry number out of range (and not the indirect marker).
    BadEntry(u32),
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::ImmOutOfRange(field, v) => {
                write!(f, "immediate {v} does not fit field {field}")
            }
            EncodeError::MisalignedOffset(v) => write!(f, "control-flow offset {v} is odd"),
            EncodeError::SubImmediate => f.write_str("subtract-immediate has no encoding"),
            EncodeError::BadShamt(v) => write!(f, "shift amount {v} outside 0..32"),
            EncodeError::BadEntry(v) => write!(f, "mroutine entry {v} outside the entry table"),
        }
    }
}

impl std::error::Error for EncodeError {}

#[inline]
fn r_type(opcode: u32, funct3: u32, funct7: u32, rd: Reg, rs1: Reg, rs2: Reg) -> u32 {
    opcode
        | (rd.field() << 7)
        | (funct3 << 12)
        | (rs1.field() << 15)
        | (rs2.field() << 20)
        | (funct7 << 25)
}

#[inline]
fn i_type(opcode: u32, funct3: u32, rd: Reg, rs1: Reg, imm12: u32) -> u32 {
    opcode | (rd.field() << 7) | (funct3 << 12) | (rs1.field() << 15) | ((imm12 & 0xFFF) << 20)
}

#[inline]
fn s_type(opcode: u32, funct3: u32, rs1: Reg, rs2: Reg, imm12: u32) -> u32 {
    opcode
        | ((imm12 & 0x1F) << 7)
        | (funct3 << 12)
        | (rs1.field() << 15)
        | (rs2.field() << 20)
        | (((imm12 >> 5) & 0x7F) << 25)
}

#[inline]
fn b_type(opcode: u32, funct3: u32, rs1: Reg, rs2: Reg, offset: i32) -> u32 {
    let imm = offset as u32;
    opcode
        | (((imm >> 11) & 1) << 7)
        | (((imm >> 1) & 0xF) << 8)
        | (funct3 << 12)
        | (rs1.field() << 15)
        | (rs2.field() << 20)
        | (((imm >> 5) & 0x3F) << 25)
        | (((imm >> 12) & 1) << 31)
}

#[inline]
fn u_type(opcode: u32, rd: Reg, imm20: u32) -> u32 {
    opcode | (rd.field() << 7) | ((imm20 & 0xF_FFFF) << 12)
}

#[inline]
fn j_type(opcode: u32, rd: Reg, offset: i32) -> u32 {
    let imm = offset as u32;
    opcode
        | (rd.field() << 7)
        | (((imm >> 12) & 0xFF) << 12)
        | (((imm >> 11) & 1) << 20)
        | (((imm >> 1) & 0x3FF) << 21)
        | (((imm >> 20) & 1) << 31)
}

/// Encodes an instruction, validating immediate ranges.
///
/// This is the checked form used by the assembler; [`encode`] is the
/// panicking convenience wrapper.
pub fn try_encode(insn: &Insn) -> Result<u32, EncodeError> {
    use opcodes::*;
    let check_i = |imm: i32, field: &'static str| -> Result<u32, EncodeError> {
        if fits_simm(imm as i64, 12) {
            Ok(imm as u32)
        } else {
            Err(EncodeError::ImmOutOfRange(field, imm as i64))
        }
    };
    match *insn {
        Insn::Lui { rd, imm20 } => {
            if imm20 >= 1 << 20 {
                return Err(EncodeError::ImmOutOfRange("imm20", imm20 as i64));
            }
            Ok(u_type(LUI, rd, imm20))
        }
        Insn::Auipc { rd, imm20 } => {
            if imm20 >= 1 << 20 {
                return Err(EncodeError::ImmOutOfRange("imm20", imm20 as i64));
            }
            Ok(u_type(AUIPC, rd, imm20))
        }
        Insn::Jal { rd, offset } => {
            if offset % 2 != 0 {
                return Err(EncodeError::MisalignedOffset(offset as i64));
            }
            if !fits_simm(offset as i64, 21) {
                return Err(EncodeError::ImmOutOfRange("jal offset", offset as i64));
            }
            Ok(j_type(JAL, rd, offset))
        }
        Insn::Jalr { rd, rs1, offset } => Ok(i_type(
            JALR,
            0b000,
            rd,
            rs1,
            check_i(offset, "jalr offset")?,
        )),
        Insn::Branch {
            cond,
            rs1,
            rs2,
            offset,
        } => {
            if offset % 2 != 0 {
                return Err(EncodeError::MisalignedOffset(offset as i64));
            }
            if !fits_simm(offset as i64, 13) {
                return Err(EncodeError::ImmOutOfRange("branch offset", offset as i64));
            }
            Ok(b_type(BRANCH, cond as u32, rs1, rs2, offset))
        }
        Insn::Load {
            op,
            rd,
            rs1,
            offset,
        } => Ok(i_type(
            LOAD,
            op as u32,
            rd,
            rs1,
            check_i(offset, "load offset")?,
        )),
        Insn::Store {
            op,
            rs2,
            rs1,
            offset,
        } => Ok(s_type(
            STORE,
            op as u32,
            rs1,
            rs2,
            check_i(offset, "store offset")?,
        )),
        Insn::AluImm { op, rd, rs1, imm } => match op {
            AluOp::Sub => Err(EncodeError::SubImmediate),
            AluOp::Sll | AluOp::Srl | AluOp::Sra => {
                if !(0..32).contains(&imm) {
                    return Err(EncodeError::BadShamt(imm as i64));
                }
                let funct7 = if op == AluOp::Sra { 0x20 } else { 0x00 };
                Ok(i_type(
                    OP_IMM,
                    op.funct3(),
                    rd,
                    rs1,
                    (funct7 << 5) | imm as u32,
                ))
            }
            _ => Ok(i_type(
                OP_IMM,
                op.funct3(),
                rd,
                rs1,
                check_i(imm, "alu imm")?,
            )),
        },
        Insn::Alu { op, rd, rs1, rs2 } => {
            let funct7 = match op {
                AluOp::Sub | AluOp::Sra => 0x20,
                _ => 0x00,
            };
            Ok(r_type(OP, op.funct3(), funct7, rd, rs1, rs2))
        }
        Insn::MulDiv { op, rd, rs1, rs2 } => Ok(r_type(OP, op as u32, 0x01, rd, rs1, rs2)),
        Insn::Csr { op, rd, csr, src } => {
            if csr >= 1 << 12 {
                return Err(EncodeError::ImmOutOfRange("csr", csr as i64));
            }
            let (funct3, field) = match (op, src) {
                (CsrOp::Rw, CsrSrc::Reg(r)) => (0b001, r.field()),
                (CsrOp::Rs, CsrSrc::Reg(r)) => (0b010, r.field()),
                (CsrOp::Rc, CsrSrc::Reg(r)) => (0b011, r.field()),
                (CsrOp::Rw, CsrSrc::Imm(i)) => (0b101, u32::from(i)),
                (CsrOp::Rs, CsrSrc::Imm(i)) => (0b110, u32::from(i)),
                (CsrOp::Rc, CsrSrc::Imm(i)) => (0b111, u32::from(i)),
            };
            if field >= 32 {
                return Err(EncodeError::ImmOutOfRange("csr uimm", field as i64));
            }
            Ok(i_type(
                SYSTEM,
                funct3,
                rd,
                Reg::from_field(field),
                u32::from(csr),
            ))
        }
        Insn::Ecall => Ok(i_type(SYSTEM, 0, Reg::ZERO, Reg::ZERO, 0x000)),
        Insn::Ebreak => Ok(i_type(SYSTEM, 0, Reg::ZERO, Reg::ZERO, 0x001)),
        Insn::Mret => Ok(i_type(SYSTEM, 0, Reg::ZERO, Reg::ZERO, 0x302)),
        Insn::Wfi => Ok(i_type(SYSTEM, 0, Reg::ZERO, Reg::ZERO, 0x105)),
        Insn::Fence => Ok(i_type(MISC_MEM, 0, Reg::ZERO, Reg::ZERO, 0)),
        Insn::Menter { rs1, entry } => {
            if entry != crate::metal::MENTER_INDIRECT
                && entry as usize >= crate::metal::MAX_MROUTINES
            {
                return Err(EncodeError::BadEntry(entry));
            }
            Ok(i_type(METAL_OPCODE, 0b000, Reg::ZERO, rs1, entry))
        }
        Insn::Mexit => Ok(i_type(METAL_OPCODE, 0b001, Reg::ZERO, Reg::ZERO, 0)),
        Insn::Rmr { rd, idx } => Ok(i_type(METAL_OPCODE, 0b010, rd, Reg::ZERO, idx.field())),
        Insn::Wmr { rs1, idx } => Ok(i_type(METAL_OPCODE, 0b011, Reg::ZERO, rs1, idx.field())),
        Insn::Mld { rd, rs1, offset } => Ok(i_type(
            METAL_OPCODE,
            0b100,
            rd,
            rs1,
            check_i(offset, "mld offset")?,
        )),
        Insn::Mst { rs2, rs1, offset } => Ok(s_type(
            METAL_OPCODE,
            0b101,
            rs1,
            rs2,
            check_i(offset, "mst offset")?,
        )),
        Insn::March { op, rd, rs1, rs2 } => {
            Ok(r_type(METAL_OPCODE, 0b110, op as u32, rd, rs1, rs2))
        }
    }
}

/// Encodes an instruction.
///
/// # Panics
///
/// Panics if the instruction has no valid encoding (see [`EncodeError`]);
/// use [`try_encode`] for the fallible form.
#[must_use]
pub fn encode(insn: &Insn) -> u32 {
    match try_encode(insn) {
        Ok(word) => word,
        Err(e) => panic!("unencodable instruction {insn:?}: {e}"),
    }
}

/// Extracts the B-type branch offset from an instruction word.
#[must_use]
pub fn branch_offset(word: u32) -> i32 {
    let imm = ((word >> 7) & 1) << 11
        | ((word >> 8) & 0xF) << 1
        | ((word >> 25) & 0x3F) << 5
        | ((word >> 31) & 1) << 12;
    sign_extend(imm, 13)
}

/// Extracts the J-type jump offset from an instruction word.
#[must_use]
pub fn jal_offset(word: u32) -> i32 {
    let imm = ((word >> 21) & 0x3FF) << 1
        | ((word >> 20) & 1) << 11
        | ((word >> 12) & 0xFF) << 12
        | ((word >> 31) & 1) << 20;
    sign_extend(imm, 21)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::{Cond, LoadOp, StoreOp};

    #[test]
    fn known_encodings_match_riscv() {
        // Cross-checked against riscv-tools output.
        // addi a0, zero, 42
        assert_eq!(
            encode(&Insn::AluImm {
                op: AluOp::Add,
                rd: Reg::A0,
                rs1: Reg::ZERO,
                imm: 42
            }),
            0x02A0_0513
        );
        // lw a0, 0(a1)
        assert_eq!(
            encode(&Insn::Load {
                op: LoadOp::Lw,
                rd: Reg::A0,
                rs1: Reg::A1,
                offset: 0
            }),
            0x0005_A503
        );
        // sw a0, 4(sp)
        assert_eq!(
            encode(&Insn::Store {
                op: StoreOp::Sw,
                rs2: Reg::A0,
                rs1: Reg::SP,
                offset: 4
            }),
            0x00A1_2223
        );
        // ecall
        assert_eq!(encode(&Insn::Ecall), 0x0000_0073);
        // mret
        assert_eq!(encode(&Insn::Mret), 0x3020_0073);
        // sub a0, a0, a1
        assert_eq!(
            encode(&Insn::Alu {
                op: AluOp::Sub,
                rd: Reg::A0,
                rs1: Reg::A0,
                rs2: Reg::A1
            }),
            0x40B5_0533
        );
        // srai a0, a0, 3
        assert_eq!(
            encode(&Insn::AluImm {
                op: AluOp::Sra,
                rd: Reg::A0,
                rs1: Reg::A0,
                imm: 3
            }),
            0x4035_5513
        );
    }

    #[test]
    fn branch_offset_roundtrip() {
        for off in [-4096, -2, 0, 2, 16, 4094] {
            let word = encode(&Insn::Branch {
                cond: Cond::Eq,
                rs1: Reg::A0,
                rs2: Reg::A1,
                offset: off,
            });
            assert_eq!(branch_offset(word), off, "offset {off}");
        }
    }

    #[test]
    fn jal_offset_roundtrip() {
        for off in [-1048576, -2, 0, 2, 2048, 1048574] {
            let word = encode(&Insn::Jal {
                rd: Reg::RA,
                offset: off,
            });
            assert_eq!(jal_offset(word), off, "offset {off}");
        }
    }

    #[test]
    fn rejects_out_of_range() {
        assert!(matches!(
            try_encode(&Insn::AluImm {
                op: AluOp::Add,
                rd: Reg::A0,
                rs1: Reg::A0,
                imm: 2048
            }),
            Err(EncodeError::ImmOutOfRange(..))
        ));
        assert!(matches!(
            try_encode(&Insn::Branch {
                cond: Cond::Eq,
                rs1: Reg::A0,
                rs2: Reg::A1,
                offset: 3
            }),
            Err(EncodeError::MisalignedOffset(3))
        ));
        assert!(matches!(
            try_encode(&Insn::AluImm {
                op: AluOp::Sub,
                rd: Reg::A0,
                rs1: Reg::A0,
                imm: 1
            }),
            Err(EncodeError::SubImmediate)
        ));
        assert!(matches!(
            try_encode(&Insn::AluImm {
                op: AluOp::Sll,
                rd: Reg::A0,
                rs1: Reg::A0,
                imm: 32
            }),
            Err(EncodeError::BadShamt(32))
        ));
        assert!(matches!(
            try_encode(&Insn::Menter {
                rs1: Reg::ZERO,
                entry: 64
            }),
            Err(EncodeError::BadEntry(64))
        ));
    }

    #[test]
    fn menter_indirect_encodes() {
        let insn = Insn::Menter {
            rs1: Reg::A0,
            entry: crate::metal::MENTER_INDIRECT,
        };
        assert!(try_encode(&insn).is_ok());
    }
}
