//! ISA definition for the Metal RISC processor.
//!
//! The base instruction set is RV32IM-compatible (plus the Zicsr subset and
//! `mret`/`wfi`), and the Metal extension occupies the *custom-0* major
//! opcode (`0001011`). This crate is the single source of truth for
//! instruction encoding: the assembler, the pipelined core, the functional
//! reference interpreter, and the disassembler all consume the [`Insn`]
//! type defined here.
//!
//! # Examples
//!
//! ```
//! use metal_isa::insn::AluOp;
//! use metal_isa::{decode, encode, Insn, Reg};
//!
//! let insn = Insn::AluImm { op: AluOp::Add, rd: Reg::A0, rs1: Reg::ZERO, imm: 42 };
//! let word = encode(&insn);
//! assert_eq!(decode(word), Ok(insn));
//! ```

pub mod csr;
pub mod decode;
pub mod decoded;
pub mod disasm;
pub mod encode;
pub mod insn;
pub mod metal;
pub mod reg;

pub use decode::{decode, DecodeError};
pub use decoded::{decode_to, DecodedInsn, DispatchTag};
pub use disasm::disassemble;
pub use encode::{encode, try_encode, EncodeError};
pub use insn::Insn;
pub use metal::{InterceptSelector, MarchOp, Mcr, MetalOpcode};
pub use reg::{MregIdx, Reg};

/// Width of the architecture's integer registers, in bits.
pub const XLEN: u32 = 32;

/// Size of one instruction in bytes. The ISA has no compressed extension.
pub const INSN_BYTES: u32 = 4;

/// Sign-extend the low `bits` bits of `value` to a full 32-bit signed value.
///
/// # Panics
///
/// Panics if `bits` is 0 or greater than 32.
#[inline]
#[must_use]
pub fn sign_extend(value: u32, bits: u32) -> i32 {
    assert!((1..=32).contains(&bits), "bits must be in 1..=32");
    let shift = 32 - bits;
    ((value << shift) as i32) >> shift
}

/// Returns true if `value` fits in a signed immediate of `bits` bits.
#[inline]
#[must_use]
pub fn fits_simm(value: i64, bits: u32) -> bool {
    let min = -(1i64 << (bits - 1));
    let max = (1i64 << (bits - 1)) - 1;
    value >= min && value <= max
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_extend_basics() {
        assert_eq!(sign_extend(0xFFF, 12), -1);
        assert_eq!(sign_extend(0x7FF, 12), 2047);
        assert_eq!(sign_extend(0x800, 12), -2048);
        assert_eq!(sign_extend(0, 12), 0);
        assert_eq!(sign_extend(0xFFFF_FFFF, 32), -1);
        assert_eq!(sign_extend(1, 1), -1);
    }

    #[test]
    fn fits_simm_bounds() {
        assert!(fits_simm(2047, 12));
        assert!(!fits_simm(2048, 12));
        assert!(fits_simm(-2048, 12));
        assert!(!fits_simm(-2049, 12));
        assert!(fits_simm(0, 1));
    }

    #[test]
    #[should_panic(expected = "bits must be in 1..=32")]
    fn sign_extend_rejects_zero_bits() {
        let _ = sign_extend(0, 0);
    }
}
