//! A small deterministic PRNG (SplitMix64) for randomized tests.
//!
//! Not cryptographic. The point is reproducibility: every test fixes its
//! seed, so a failure always reproduces with the same inputs.

/// SplitMix64: 64 bits of state, full-period, passes BigCrush for the
/// purposes of test-case generation.
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Rng {
        Rng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 32-bit value.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is 0.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        // Multiply-shift; bias is negligible for test generation.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform `u32` in `[lo, hi)`.
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        lo + self.below(u64::from(hi - lo)) as u32
    }

    /// Uniform `i32` in `[lo, hi)`.
    pub fn range_i32(&mut self, lo: i32, hi: i32) -> i32 {
        let span = (hi as i64 - lo as i64) as u64;
        (i64::from(lo) + self.below(span) as i64) as i32
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        lo + self.below((hi - lo) as u64) as usize
    }

    /// A fair coin.
    pub fn chance(&mut self) -> bool {
        self.next_u64() & 1 != 0
    }

    /// Uniformly picks one element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.range_usize(0, items.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = Rng::new(7);
        for bound in [1u64, 2, 3, 10, 1000] {
            for _ in 0..200 {
                assert!(rng.below(bound) < bound);
            }
        }
    }

    #[test]
    fn ranges_cover_endpoints() {
        let mut rng = Rng::new(1);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..1000 {
            match rng.range_i32(-2, 2) {
                -2 => seen_lo = true,
                1 => seen_hi = true,
                v => assert!((-2..2).contains(&v)),
            }
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn pick_is_uniformish() {
        let mut rng = Rng::new(3);
        let items = [0usize, 1, 2, 3];
        let mut counts = [0u32; 4];
        for _ in 0..4000 {
            counts[*rng.pick(&items)] += 1;
        }
        for c in counts {
            assert!(c > 500, "skewed counts {counts:?}");
        }
    }
}
