//! A minimal JSON value: writer for metrics/trace export, reader for
//! validating exported files in tests.
//!
//! Object keys keep insertion order on write; duplicate keys on read keep
//! the last value (matching serde_json's default). Numbers are `f64`,
//! which covers every value the simulator exports (counters stay well
//! under 2^53).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true`/`false`.
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Sorted by key (reads are order-insensitive anyway).
    Obj(BTreeMap<String, Json>),
}

/// Where and why parsing failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the error.
    pub at: usize,
    /// Human-readable reason.
    pub reason: &'static str,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.reason)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage is an error).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError {
                at: pos,
                reason: "trailing characters after document",
            });
        }
        Ok(value)
    }

    /// The value under `key`, if this is an object that has it.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The number, if this is one.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Serializes the value compactly.
    #[must_use]
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Writes a JSON number: integers without a fraction, non-finite values
/// as `null` (JSON has no NaN/Infinity).
pub fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

/// Writes a JSON string literal with escaping.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str, reason: &'static str) -> Result<(), JsonError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(JsonError { at: *pos, reason })
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    let Some(&b) = bytes.get(*pos) else {
        return Err(JsonError {
            at: *pos,
            reason: "unexpected end of input",
        });
    };
    match b {
        b'n' => expect(bytes, pos, "null", "expected null").map(|()| Json::Null),
        b't' => expect(bytes, pos, "true", "expected true").map(|()| Json::Bool(true)),
        b'f' => expect(bytes, pos, "false", "expected false").map(|()| Json::Bool(false)),
        b'"' => parse_string(bytes, pos).map(Json::Str),
        b'[' => parse_array(bytes, pos),
        b'{' => parse_object(bytes, pos),
        b'-' | b'0'..=b'9' => parse_number(bytes, pos),
        _ => Err(JsonError {
            at: *pos,
            reason: "unexpected character",
        }),
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|n| n.is_finite())
        .map(Json::Num)
        .ok_or(JsonError {
            at: start,
            reason: "malformed number",
        })
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    let start = *pos;
    *pos += 1; // opening quote
    let mut out = String::new();
    loop {
        let Some(&b) = bytes.get(*pos) else {
            return Err(JsonError {
                at: start,
                reason: "unterminated string",
            });
        };
        match b {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                let esc = bytes.get(*pos + 1).copied().ok_or(JsonError {
                    at: *pos,
                    reason: "unterminated escape",
                })?;
                *pos += 2;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = bytes.get(*pos..*pos + 4).ok_or(JsonError {
                            at: *pos,
                            reason: "truncated \\u escape",
                        })?;
                        let code = std::str::from_utf8(hex)
                            .ok()
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or(JsonError {
                                at: *pos,
                                reason: "bad \\u escape",
                            })?;
                        *pos += 4;
                        // Surrogate pairs are not needed for our files;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                    }
                    _ => {
                        return Err(JsonError {
                            at: *pos - 1,
                            reason: "unknown escape",
                        })
                    }
                }
            }
            _ => {
                // Consume one UTF-8 scalar.
                let s = std::str::from_utf8(&bytes[*pos..]).map_err(|_| JsonError {
                    at: *pos,
                    reason: "invalid UTF-8",
                })?;
                let c = s.chars().next().expect("non-empty by guard above");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => {
                return Err(JsonError {
                    at: *pos,
                    reason: "expected ',' or ']'",
                })
            }
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    *pos += 1; // '{'
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(JsonError {
                at: *pos,
                reason: "expected object key",
            });
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(JsonError {
                at: *pos,
                reason: "expected ':'",
            });
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => {
                return Err(JsonError {
                    at: *pos,
                    reason: "expected ',' or '}'",
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_values() {
        let text = r#"{"a":1,"b":[true,false,null,"x\n"],"c":{"d":-2.5}}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_f64), Some(1.0));
        assert_eq!(
            v.get("b").and_then(Json::as_array).map(<[Json]>::len),
            Some(4)
        );
        assert_eq!(
            v.get("c").and_then(|c| c.get("d")).and_then(Json::as_f64),
            Some(-2.5)
        );
        // Reparse of the serialization is identical.
        assert_eq!(Json::parse(&v.to_string_compact()).unwrap(), v);
    }

    #[test]
    fn escapes_roundtrip() {
        let v = Json::Str("a\"b\\c\nd\u{1}".to_owned());
        let text = v.to_string_compact();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("123 trailing").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
    }

    #[test]
    fn integers_write_without_fraction() {
        let mut s = String::new();
        write_num(&mut s, 42.0);
        assert_eq!(s, "42");
        let mut s = String::new();
        write_num(&mut s, 0.5);
        assert_eq!(s, "0.5");
    }
}
