//! Dependency-free support utilities shared across the workspace.
//!
//! The simulator builds in hermetic environments with no access to a
//! crates.io mirror, so anything that would conventionally be an external
//! dependency lives here instead:
//!
//! * [`rng`] — a small deterministic PRNG used by the randomized
//!   ("property") tests in place of a property-testing framework.
//! * [`json`] — a minimal JSON writer and reader, enough for metrics
//!   snapshots and Chrome trace-event files.
//! * [`cli`] — the argument-parsing helpers shared by the `msim`,
//!   `masm`, and `mdis` binaries.

pub mod cli;
pub mod json;
pub mod rng;

pub use json::{Json, JsonError};
pub use rng::Rng;
