//! Argument-parsing helpers shared by the `msim`, `masm`, and `mdis`
//! binaries, so number syntax and usage/exit conventions stay identical
//! across tools.

use std::process::ExitCode;

/// Parses a decimal or `0x`-prefixed hexadecimal number.
#[must_use]
pub fn parse_num(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// [`parse_num`] narrowed to `u32` (rejects out-of-range values rather
/// than truncating).
#[must_use]
pub fn parse_u32(s: &str) -> Option<u32> {
    parse_num(s).and_then(|v| u32::try_from(v).ok())
}

/// Prints a `tool: message` error line and returns the failure exit
/// code — the standard way for the CLI tools to reject bad input
/// without panicking.
#[must_use]
pub fn fail(tool: &str, message: &str) -> ExitCode {
    eprintln!("{tool}: {message}");
    ExitCode::FAILURE
}

/// Prints the standard usage/exit combination: an optional error line
/// (`tool: error`), the usage line, and the conventional exit code —
/// success for `-h`-style calls (empty error), failure otherwise.
#[must_use]
pub fn usage(tool: &str, usage_line: &str, err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("{tool}: {err}");
    }
    eprintln!("usage: {usage_line}");
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn number_syntax() {
        assert_eq!(parse_num("42"), Some(42));
        assert_eq!(parse_num("0x10"), Some(16));
        assert_eq!(
            parse_num("0xFFFF_FFFF".replace('_', "").as_str()),
            Some(0xFFFF_FFFF)
        );
        assert_eq!(parse_num("nope"), None);
        assert_eq!(parse_num("0xZZ"), None);
    }

    #[test]
    fn u32_narrowing() {
        assert_eq!(parse_u32("0xFFFFFFFF"), Some(u32::MAX));
        assert_eq!(parse_u32("0x1FFFFFFFF"), None);
    }
}
