//! In-process isolation with page keys (paper §3.1).
//!
//! "Applications can use multiple privilege levels internally to
//! implement in-process isolation to protect sensitive data. For
//! example, isolating sensitive cryptographic keys in OpenSSL from the
//! rest of the application. On modern processors, in-process isolation
//! usually requires a form of control flow integrity (CFI) to protect
//! the transition code. However, recent works show that CFI is
//! inherently unsafe. Metal enables developers to safely encapsulate
//! the transition code without CFI."
//!
//! The vault here is that encapsulation: a secret lives in a page tagged
//! with a page key whose permission mask is normally *zero* — no load
//! or store in the application can touch it, no matter how control flow
//! is hijacked. The only code that ever enables the key runs inside
//! non-interruptible mroutines, which disable it again before `mexit`.
//! The transition code cannot be jumped into halfway: entering an
//! mroutine is only possible through `menter`, which always starts at
//! the entry point.
//!
//! Kit state: the vault page's VA is in MRAM data word [`DATA_BASE`];
//! the key number is [`VAULT_KEY`].

use metal_core::MetalBuilder;
use metal_mem::tlb::Pte;
use metal_pipeline::Core;

/// Entry numbers for the isolation kit.
pub mod entries {
    /// Configure the vault: `a0` = vault page VA, `a1` = backing PA.
    pub const VAULT_INIT: u8 = 24;
    /// Store a secret word: `a0` = value.
    pub const VAULT_STORE: u8 = 25;
    /// Use the secret without revealing it: `a0` = message,
    /// returns `a0` = keyed digest.
    pub const VAULT_USE: u8 = 26;
}

/// Page key reserved for the vault.
pub const VAULT_KEY: u32 = 5;
/// MRAM-data word holding the vault page VA.
pub const DATA_BASE: u32 = 192;

/// Configures the vault mapping and locks the key.
#[must_use]
pub fn vault_init_src() -> String {
    format!(
        r"
    # vault_init(a0 = va, a1 = pa): map the vault page with the vault
    # key and revoke all key permissions.
    li t0, {base}
    mst a0, 0(t0)
    # PTE: pa | key | V|R|W.
    li t0, 0xFFFFF000
    and t1, a1, t0
    ori t1, t1, 0x7
    li t0, {keybits}
    or t1, t1, t0
    mtlbw a0, t1
    li t0, {key}
    mpkey t0, zero             # no access outside the vault mroutines
    mexit
    ",
        base = DATA_BASE,
        key = VAULT_KEY,
        keybits = VAULT_KEY << 5,
    )
}

/// Stores `a0` into the vault.
#[must_use]
pub fn vault_store_src() -> String {
    format!(
        r"
    li t0, {key}
    li t1, 3
    mpkey t0, t1               # enable read+write inside the mroutine
    li t0, {base}
    mld t1, 0(t0)
    sw a0, 0(t1)               # the only store that can reach the page
    li t0, {key}
    mpkey t0, zero             # lock again before returning
    li a0, 0
    mexit
    ",
        key = VAULT_KEY,
        base = DATA_BASE,
    )
}

/// Computes a keyed digest of `a0` without revealing the secret.
#[must_use]
pub fn vault_use_src() -> String {
    format!(
        r"
    li t0, {key}
    li t1, 1
    mpkey t0, t1               # read-only inside the mroutine
    li t0, {base}
    mld t1, 0(t0)
    lw t1, 0(t1)               # the secret
    li t0, {key}
    mpkey t0, zero
    # 'HMAC': digest = rotl(secret ^ msg, 5) ^ secret (toy, but the
    # secret never leaves the mroutine in recoverable form for the demo)
    xor a0, a0, t1
    slli t0, a0, 5
    srli a0, a0, 27
    or a0, a0, t0
    xor a0, a0, t1
    mexit
    ",
        key = VAULT_KEY,
        base = DATA_BASE,
    )
}

/// Installs the isolation kit.
#[must_use]
pub fn install(builder: MetalBuilder) -> MetalBuilder {
    builder
        .routine(entries::VAULT_INIT, "vault_init", &vault_init_src())
        .routine(entries::VAULT_STORE, "vault_store", &vault_store_src())
        .routine(entries::VAULT_USE, "vault_use", &vault_use_src())
}

/// The digest the vault computes, for test oracles.
#[must_use]
pub fn expected_digest(secret: u32, msg: u32) -> u32 {
    (secret ^ msg).rotate_left(5) ^ secret
}

/// Host-side helper: identity-map `pages` starting at VA 0 so a guest
/// can run under `SoftTlb` with the vault page protected.
pub fn identity_map_code(core: &mut Core<metal_core::Metal>, pages: u32) {
    for i in 0..pages {
        let addr = i * 0x1000;
        core.state.tlb.install(
            addr,
            Pte::new(addr, Pte::V | Pte::R | Pte::W | Pte::X | Pte::G),
            0,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::run_guest;
    use metal_pipeline::state::{CoreConfig, TranslationMode};
    use metal_pipeline::{HaltReason, TrapCause};

    const VAULT_VA: u32 = 0x0080_0000;
    const VAULT_PA: u32 = 0x4_0000;

    fn core() -> Core<metal_core::Metal> {
        let mut core = install(MetalBuilder::new())
            .build_core(CoreConfig {
                tlb: metal_mem::TlbConfig {
                    entries: 64,
                    keys: 16,
                },
                ..CoreConfig::default()
            })
            .unwrap();
        identity_map_code(&mut core, 32);
        core.state.translation = TranslationMode::SoftTlb;
        core
    }

    fn init_prologue() -> String {
        format!("li a0, {VAULT_VA:#x}\n li a1, {VAULT_PA:#x}\n menter 24\n")
    }

    #[test]
    fn secret_usable_but_not_readable() {
        let mut core = core();
        let src = format!(
            r"
            {init}
            li a0, 0x5EC0         # store the secret
            menter 25
            li a0, 0x1234         # digest a message
            menter 26
            ebreak
            ",
            init = init_prologue()
        );
        let halt = run_guest(&mut core, &src, 100_000);
        assert_eq!(
            halt,
            Some(HaltReason::Ebreak {
                code: expected_digest(0x5EC0, 0x1234)
            })
        );
    }

    #[test]
    fn direct_read_blocked_by_key() {
        let mut core = core();
        let src = format!(
            r"
            li t0, 0x200
            csrw mtvec, t0
            {init}
            li a0, 0x5EC0
            menter 25
            li s0, {VAULT_VA:#x}
            lw a0, 0(s0)          # hijacked code tries to read the vault
            ebreak
            .org 0x200
            csrr a0, mcause
            ebreak
            ",
            init = init_prologue()
        );
        let halt = run_guest(&mut core, &src, 100_000);
        assert_eq!(
            halt,
            Some(HaltReason::Ebreak {
                code: TrapCause::LoadKeyViolation.code()
            })
        );
    }

    #[test]
    fn direct_write_blocked_by_key() {
        let mut core = core();
        let src = format!(
            r"
            li t0, 0x200
            csrw mtvec, t0
            {init}
            li s0, {VAULT_VA:#x}
            li t0, 0x666
            sw t0, 0(s0)          # overwrite attempt
            ebreak
            .org 0x200
            csrr a0, mcause
            ebreak
            ",
            init = init_prologue()
        );
        let halt = run_guest(&mut core, &src, 100_000);
        assert_eq!(
            halt,
            Some(HaltReason::Ebreak {
                code: TrapCause::StoreKeyViolation.code()
            })
        );
    }

    #[test]
    fn key_locked_again_after_vault_use() {
        let mut core = core();
        let src = format!(
            r"
            li t0, 0x200
            csrw mtvec, t0
            {init}
            li a0, 1
            menter 25
            li a0, 2
            menter 26             # key enabled and re-locked inside
            li s0, {VAULT_VA:#x}
            lw a0, 0(s0)          # still blocked afterwards
            ebreak
            .org 0x200
            csrr a0, mcause
            ebreak
            ",
            init = init_prologue()
        );
        let halt = run_guest(&mut core, &src, 100_000);
        assert_eq!(
            halt,
            Some(HaltReason::Ebreak {
                code: TrapCause::LoadKeyViolation.code()
            })
        );
    }
}
