//! Control-flow protection: a shadow stack in MRAM (paper §3.5).
//!
//! "Metal can offer similar application control flow protection as
//! existing techniques such as shadow stacks and control flow
//! integrity. … applications can store cryptographic keys inside Metal
//! registers or MRAM." Here the protected state is the shadow stack
//! itself: it lives in the MRAM data segment, which no load or store in
//! the application can reach — only the call/return mroutines touch it.
//!
//! Calls (`jal ra, …`) and returns (`jalr x0, 0(ra)`) are intercepted
//! and *emulated*: a call pushes the return address onto the shadow
//! stack and redirects; a return pops and compares — a mismatch (e.g. a
//! smashed stack slot) diverts to the registered violation handler
//! instead of the attacker's target.
//!
//! Supported shapes: `jal` with `rd ∈ {x0, x1}` and `jalr` with
//! `rd = x0, rs1 = ra` (return) or `rd = ra` (indirect call). Anything
//! else diverts to the violation handler (a real deployment would
//! extend the emulation, not fault).
//!
//! MRAM data layout (offset [`DATA_BASE`]): violation handler PC,
//! shadow SP (count), then [`STACK_SLOTS`] return-address slots.

use crate::machine::read_reg_stubs;
use metal_core::MetalBuilder;

/// Entry numbers for the shadow-stack kit.
pub mod entries {
    /// Arm protection: `a0` = violation-handler PC.
    pub const ENABLE: u8 = 28;
    /// Disarm protection.
    pub const DISABLE: u8 = 29;
    /// Intercepted-`jal` handler.
    pub const CALL: u8 = 30;
    /// Intercepted-`jalr` handler.
    pub const RET: u8 = 31;
}

/// MRAM-data base of this kit's state.
pub const DATA_BASE: u32 = 608;
/// Capacity of the shadow stack.
pub const STACK_SLOTS: u32 = 64;

const VIOL_SLOT: u32 = DATA_BASE;
const SP_SLOT: u32 = DATA_BASE + 4;
const STACK_BASE: u32 = DATA_BASE + 8;

/// Arms interception of `jal` (opcode 0x6F) and `jalr` (0x67).
#[must_use]
pub fn enable_src() -> String {
    format!(
        r"
    li t0, {viol}
    mst a0, 0(t0)              # violation handler
    li t1, {sp}
    mst zero, 0(t1)            # empty shadow stack
    li t0, 0x6F
    li t1, {call_target}
    mintercept t0, t1
    li t0, 0x67
    li t1, {ret_target}
    mintercept t0, t1
    li t0, 1
    wmr mstatus, t0
    mexit
    ",
        viol = VIOL_SLOT,
        sp = SP_SLOT,
        call_target = (u32::from(entries::CALL) << 1) | 1,
        ret_target = (u32::from(entries::RET) << 1) | 1,
    )
}

/// Disarms the interception rules.
#[must_use]
pub fn disable_src() -> &'static str {
    r"
    li t0, 0x6F
    mintercept t0, zero
    li t0, 0x67
    mintercept t0, zero
    mexit
    "
}

/// The intercepted-`jal` handler: emulate, pushing calls.
#[must_use]
pub fn call_src() -> String {
    format!(
        r"
    wmr m6, t0
    wmr m7, t1
    wmr m8, t2
    wmr m10, t3
    rmr t0, minsn
    # J-type immediate into t3.
    srai t3, t0, 11
    li t2, 0xFFF00000
    and t3, t3, t2             # offset[20] + sign
    li t2, 0xFF000
    and t1, t0, t2
    or t3, t3, t1              # offset[19:12]
    srli t1, t0, 20
    andi t1, t1, 1
    slli t1, t1, 11
    or t3, t3, t1              # offset[11]
    srli t1, t0, 21
    andi t1, t1, 0x3FF
    slli t1, t1, 1
    or t3, t3, t1              # offset[10:1]
    rmr t1, m31
    add t3, t3, t1             # t3 = target
    # Dispatch on rd.
    srli t0, t0, 7
    andi t0, t0, 31
    beqz t0, do_jump           # jal x0: plain jump
    addi t0, t0, -1
    bnez t0, violation         # only ra-linking calls are emulated
    # Call: ra = pc + 4, push it on the shadow stack.
    rmr t1, m31
    addi t1, t1, 4
    mv ra, t1
    li t0, {sp}
    mld t2, 0(t0)
    li t0, {slots}
    bge t2, t0, violation      # shadow overflow
    slli t0, t2, 2
    addi t0, t0, {stack}
    mst t1, 0(t0)
    addi t2, t2, 1
    li t0, {sp}
    mst t2, 0(t0)
do_jump:
    wmr m31, t3
    rmr t0, m6
    rmr t1, m7
    rmr t2, m8
    rmr t3, m10
    mexit
violation:
    li t3, {viol}
    mld t3, 0(t3)
    wmr m31, t3
    rmr t0, m6
    rmr t1, m7
    rmr t2, m8
    rmr t3, m10
    mexit
    ",
        sp = SP_SLOT,
        slots = STACK_SLOTS,
        stack = STACK_BASE,
        viol = VIOL_SLOT,
    )
}

/// The intercepted-`jalr` handler: pop-and-verify returns, push
/// indirect calls.
#[must_use]
pub fn ret_src() -> String {
    format!(
        r"
    wmr m6, t0
    wmr m7, t1
    wmr m8, t2
    wmr m10, t3
    wmr m11, t4
    wmr m12, t5
    rmr t0, minsn
    # rs1 value via the read stubs -> t2.
    srli t0, t0, 15
    andi t0, t0, 31
    slli t0, t0, 3
    la t1, rs1_table
    add t1, t1, t0
    jr t1
{rs1_stubs}
rs1_done:
    rmr t0, minsn
    srai t1, t0, 20            # I-imm
    add t2, t2, t1
    andi t3, t2, -2            # t3 = target (bit 0 cleared)
    # Dispatch on rd.
    srli t1, t0, 7
    andi t1, t1, 31
    beqz t1, maybe_return
    addi t1, t1, -1
    bnez t1, violation
    # Indirect call (rd = ra): link and push like jal.
    rmr t1, m31
    addi t1, t1, 4
    mv ra, t1
    li t0, {sp}
    mld t2, 0(t0)
    li t0, {slots}
    bge t2, t0, violation
    slli t0, t2, 2
    addi t0, t0, {stack}
    mst t1, 0(t0)
    addi t2, t2, 1
    li t0, {sp}
    mst t2, 0(t0)
    j do_jump
maybe_return:
    # rd = x0: treat rs1 = ra as a protected return, else plain jump.
    rmr t0, minsn
    srli t0, t0, 15
    andi t0, t0, 31
    addi t0, t0, -1
    bnez t0, do_jump           # jr through another register
    # Pop and verify.
    li t0, {sp}
    mld t1, 0(t0)
    beqz t1, violation         # underflow
    addi t1, t1, -1
    mst t1, 0(t0)
    slli t0, t1, 2
    addi t0, t0, {stack}
    mld t0, 0(t0)              # expected return address
    bne t0, t3, violation      # smashed return address
do_jump:
    wmr m31, t3
    rmr t0, m6
    rmr t1, m7
    rmr t2, m8
    rmr t3, m10
    rmr t4, m11
    rmr t5, m12
    mexit
violation:
    li t3, {viol}
    mld t3, 0(t3)
    wmr m31, t3
    rmr t0, m6
    rmr t1, m7
    rmr t2, m8
    rmr t3, m10
    rmr t4, m11
    rmr t5, m12
    mexit
    ",
        sp = SP_SLOT,
        slots = STACK_SLOTS,
        stack = STACK_BASE,
        viol = VIOL_SLOT,
        rs1_stubs = read_reg_stubs("rs1_table", "rs1_done"),
    )
}

/// Installs the shadow-stack kit.
#[must_use]
pub fn install(builder: MetalBuilder) -> MetalBuilder {
    builder
        .routine(entries::ENABLE, "ss_enable", &enable_src())
        .routine(entries::DISABLE, "ss_disable", disable_src())
        .routine(entries::CALL, "ss_call", &call_src())
        .routine(entries::RET, "ss_ret", &ret_src())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::run_guest;
    use metal_pipeline::state::CoreConfig;
    use metal_pipeline::{Core, HaltReason};

    fn core() -> Core<metal_core::Metal> {
        install(MetalBuilder::new())
            .build_core(CoreConfig::default())
            .unwrap()
    }

    #[test]
    fn normal_calls_and_returns_work() {
        let mut core = core();
        let halt = run_guest(
            &mut core,
            r"
            li sp, 0x8000
            la a0, violation
            menter 28
            li a0, 5
            call double
            call double
            menter 29
            ebreak            # a0 = 20
        double:
            slli a0, a0, 1
            ret
        violation:
            li a0, 0xBAD
            ebreak
            ",
            100_000,
        );
        assert_eq!(halt, Some(HaltReason::Ebreak { code: 20 }));
        assert_eq!(core.hooks.stats.intercepts, 4, "2 calls + 2 returns");
    }

    #[test]
    fn nested_and_recursive_calls() {
        let mut core = core();
        let halt = run_guest(
            &mut core,
            r"
            li sp, 0x8000
            la a0, violation
            menter 28
            li a0, 6
            call fib
            menter 29
            ebreak
        fib:
            li t0, 2
            blt a0, t0, fib_base
            addi sp, sp, -12
            sw ra, 0(sp)
            sw a0, 4(sp)
            addi a0, a0, -1
            call fib
            sw a0, 8(sp)
            lw a0, 4(sp)
            addi a0, a0, -2
            call fib
            lw t0, 8(sp)
            add a0, a0, t0
            lw ra, 0(sp)
            addi sp, sp, 12
            ret
        fib_base:
            ret
        violation:
            li a0, 0xBAD
            ebreak
            ",
            2_000_000,
        );
        assert_eq!(halt, Some(HaltReason::Ebreak { code: 8 }), "fib(6) = 8");
    }

    #[test]
    fn smashed_return_address_detected() {
        let mut core = core();
        let halt = run_guest(
            &mut core,
            r"
            li sp, 0x8000
            la a0, violation
            menter 28
            call victim
            li a0, 1
            ebreak
        victim:
            addi sp, sp, -4
            sw ra, 0(sp)
            # ... attacker overwrites the saved return address ...
            la t0, attacker_target
            sw t0, 0(sp)
            lw ra, 0(sp)
            addi sp, sp, 4
            ret                    # shadow mismatch -> violation
        attacker_target:
            li a0, 0x666
            ebreak
        violation:
            li a0, 0xBAD
            ebreak
            ",
            100_000,
        );
        assert_eq!(
            halt,
            Some(HaltReason::Ebreak { code: 0xBAD }),
            "the hijacked return must divert to the violation handler"
        );
    }

    #[test]
    fn indirect_calls_supported() {
        let mut core = core();
        let halt = run_guest(
            &mut core,
            r"
            li sp, 0x8000
            la a0, violation
            menter 28
            li a0, 3
            la s1, triple
            jalr s1                # indirect call via s1
            menter 29
            ebreak
        triple:
            slli t0, a0, 1
            add a0, a0, t0
            ret
        violation:
            li a0, 0xBAD
            ebreak
            ",
            100_000,
        );
        assert_eq!(halt, Some(HaltReason::Ebreak { code: 9 }));
    }

    #[test]
    fn plain_jumps_pass_through() {
        let mut core = core();
        let halt = run_guest(
            &mut core,
            r"
            la a0, violation
            menter 28
            li a0, 1
            j skip
            li a0, 2
        skip:
            menter 29
            ebreak
        violation:
            li a0, 0xBAD
            ebreak
            ",
            100_000,
        );
        assert_eq!(halt, Some(HaltReason::Ebreak { code: 1 }));
    }
}
