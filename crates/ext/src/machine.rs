//! Shared machinery for assembling guest programs and running them on a
//! Metal-enabled core.

use metal_asm::{assemble, Options};
use metal_core::Metal;
use metal_pipeline::{Engine, HaltReason};
use std::collections::BTreeMap;

/// Default layout of a guest system image.
pub mod layout {
    /// Reset / user text base.
    pub const TEXT_BASE: u32 = 0x0000;
    /// Guest data base.
    pub const DATA_BASE: u32 = 0x2_0000;
    /// Kernel text base (used by the mini kernel).
    pub const KERNEL_BASE: u32 = 0x1_0000;
    /// Kernel syscall table (word-sized handler pointers).
    pub const SYSCALL_TABLE: u32 = 0x400;
    /// Top of the user stack.
    pub const USER_STACK_TOP: u32 = 0x1_F000;
    /// Top of the kernel stack.
    pub const KERNEL_STACK_TOP: u32 = 0xF000;
}

/// An assembled guest binary: segments plus its symbol table.
#[derive(Clone, Debug)]
pub struct GuestBinary {
    /// `(base, bytes)` segments to load into RAM.
    pub segments: Vec<(u32, Vec<u8>)>,
    /// Symbols defined by the source.
    pub symbols: BTreeMap<String, i64>,
    /// Entry point (the `_start` symbol, or the text base).
    pub entry: u32,
}

impl GuestBinary {
    /// Looks up a symbol address.
    #[must_use]
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.symbols.get(name).map(|&v| v as u32)
    }

    /// Loads the binary into either engine and points fetch at the entry.
    pub fn load_into<E: Engine<Hooks = Metal>>(&self, engine: &mut E) {
        engine.load_segments(
            self.segments.iter().map(|(b, d)| (*b, d.as_slice())),
            self.entry,
        );
    }
}

/// Assembles a guest program with the standard layout (text at
/// [`layout::TEXT_BASE`], data at [`layout::DATA_BASE`]).
pub fn assemble_guest(src: &str) -> Result<GuestBinary, metal_asm::AsmError> {
    assemble_guest_at(src, layout::TEXT_BASE, layout::DATA_BASE)
}

/// Assembles a guest program with explicit section bases.
pub fn assemble_guest_at(
    src: &str,
    text_base: u32,
    data_base: u32,
) -> Result<GuestBinary, metal_asm::AsmError> {
    let out = assemble(
        src,
        Options {
            text_base,
            data_base,
        },
    )?;
    let entry = out.symbol("_start").unwrap_or(text_base);
    Ok(GuestBinary {
        segments: out
            .segments
            .iter()
            .map(|s| (s.base, s.data.clone()))
            .collect(),
        symbols: out.symbols.clone(),
        entry,
    })
}

/// Assembles, loads, and runs a guest program; returns the halt reason.
///
/// # Panics
///
/// Panics if the source does not assemble (these are library-internal
/// programs; failure is a bug, not input error).
pub fn run_guest<E: Engine<Hooks = Metal>>(
    engine: &mut E,
    src: &str,
    max_cycles: u64,
) -> Option<HaltReason> {
    let binary = assemble_guest(src).unwrap_or_else(|e| panic!("guest program: {e}"));
    binary.load_into(engine);
    engine.run(max_cycles)
}

/// Generates a 32-way register-read dispatch table: computed jumps
/// indexed by register number land on `mv t2, xN`.
///
/// Contract: a handler using these stubs saves `t0..t2` into `m6..m8`
/// and `t3..t5` into `m10..m12` in its prologue (and restores them
/// before `mexit`), and never clobbers `t6`. The stubs read the saved
/// copies for those six registers and the live register otherwise.
/// This is the classic microcode technique for dynamic register access;
/// several kits share it.
#[must_use]
pub fn read_reg_stubs(label: &str, done: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{label}:");
    for i in 0..32 {
        match i {
            5 => drop(writeln!(out, "    rmr t2, m6\n    j {done}")),
            6 => drop(writeln!(out, "    rmr t2, m7\n    j {done}")),
            7 => drop(writeln!(out, "    rmr t2, m8\n    j {done}")),
            28 => drop(writeln!(out, "    rmr t2, m10\n    j {done}")),
            29 => drop(writeln!(out, "    rmr t2, m11\n    j {done}")),
            30 => drop(writeln!(out, "    rmr t2, m12\n    j {done}")),
            _ => drop(writeln!(out, "    mv t2, x{i}\n    j {done}")),
        }
    }
    out
}

/// Generates a 32-way register-write dispatch table (`mv xN, t2`), the
/// counterpart of [`read_reg_stubs`] under the same save contract.
#[must_use]
pub fn write_reg_stubs(label: &str, done: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{label}:");
    for i in 0..32 {
        match i {
            0 => drop(writeln!(out, "    nop\n    j {done}")),
            5 => drop(writeln!(out, "    wmr m6, t2\n    j {done}")),
            6 => drop(writeln!(out, "    wmr m7, t2\n    j {done}")),
            7 => drop(writeln!(out, "    wmr m8, t2\n    j {done}")),
            28 => drop(writeln!(out, "    wmr m10, t2\n    j {done}")),
            29 => drop(writeln!(out, "    wmr m11, t2\n    j {done}")),
            30 => drop(writeln!(out, "    wmr m12, t2\n    j {done}")),
            _ => drop(writeln!(out, "    mv x{i}, t2\n    j {done}")),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use metal_core::MetalBuilder;
    use metal_pipeline::state::CoreConfig;

    #[test]
    fn assemble_guest_finds_start() {
        let binary = assemble_guest("nop\n_start:\n li a0, 3\n ebreak").unwrap();
        assert_eq!(binary.entry, 4);
        assert_eq!(binary.symbol("_start"), Some(4));
    }

    #[test]
    fn run_guest_executes_from_start() {
        let mut core = MetalBuilder::new()
            .routine(0, "noop", "mexit")
            .build_core(CoreConfig::default())
            .unwrap();
        let halt = run_guest(
            &mut core,
            "li a0, 1\n ebreak\n_start:\n li a0, 42\n ebreak",
            10_000,
        );
        assert_eq!(halt, Some(HaltReason::Ebreak { code: 42 }));
    }
}
