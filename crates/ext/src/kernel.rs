//! The mini kernel: syscall table, console output, and boot code.
//!
//! A small operating system written in guest assembly, protected by the
//! [`crate::privilege`] kit rather than by a hardware privilege mode —
//! the point of paper §3.1. Users enter with `menter KENTER` (syscall
//! number in `a0`, argument in `a1`); the kernel returns with
//! `menter KEXIT`.

use crate::machine::layout;
use crate::privilege;
use metal_core::MetalBuilder;

/// Syscall numbers.
pub mod sys {
    /// Write the byte in `a1` to the console; returns 0.
    pub const PUTC: u32 = 0;
    /// Return the process ID (always 1 here).
    pub const GETPID: u32 = 1;
    /// Yield (a no-op for the single-process kernel); returns 0.
    pub const YIELD: u32 = 2;
    /// Exit with code `a1` (halts the simulation).
    pub const EXIT: u32 = 3;
    /// Number of syscalls.
    pub const COUNT: u32 = 4;
}

/// Marker exit code the kernel uses for privilege violations.
pub const VIOLATION_EXIT: u32 = 0xFFF;

/// Builds the full system source: boot code, syscall table, kernel
/// handlers, and the caller-provided user program (which must define
/// `user_main:` and runs at ring 1).
#[must_use]
pub fn system_source(user_src: &str) -> String {
    format!(
        r"
_start:
        li sp, {kstack:#x}
        la a0, kfault
        menter {set_violation}          # register the violation handler
        la ra, user_main
        menter {kexit}                  # drop to ring 1 and start the user

        # ---- syscall table ----
        .org {table:#x}
        .word sys_putc
        .word sys_getpid
        .word sys_yield
        .word sys_exit

        # ---- kernel text ----
        .org {kernel:#x}
sys_putc:
        li t2, 0xF0000000
        sw a1, 0(t2)
        li a0, 0
        menter {kexit}
sys_getpid:
        li a0, 1
        menter {kexit}
sys_yield:
        li a0, 0
        menter {kexit}
sys_exit:
        mv a0, a1
        ebreak
kfault:
        li a0, {violation:#x}
        ebreak

        # ---- user program ----
        .org {user_base:#x}
{user_src}
        ",
        kstack = layout::KERNEL_STACK_TOP,
        set_violation = privilege::entries::SET_VIOLATION,
        kexit = privilege::entries::KEXIT,
        table = layout::SYSCALL_TABLE,
        kernel = layout::KERNEL_BASE,
        violation = VIOLATION_EXIT,
        user_base = layout::KERNEL_BASE + 0x1000,
    )
}

/// A builder with the privilege kit installed (the kernel's mroutines).
#[must_use]
pub fn builder() -> MetalBuilder {
    privilege::install(MetalBuilder::new())
}

/// A user-side syscall stub: `syscall(N)` with `a1` already loaded.
#[must_use]
pub fn syscall_stub(number: u32) -> String {
    format!("li a0, {number}\n menter {}\n", privilege::entries::KENTER)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::run_guest;
    use metal_mem::devices::{map, Console};
    use metal_pipeline::state::CoreConfig;
    use metal_pipeline::HaltReason;

    fn boot(user_src: &str) -> (Option<HaltReason>, Vec<u8>, metal_core::MetalStats) {
        let mut core = builder().build_core(CoreConfig::default()).unwrap();
        let (console, out) = Console::new();
        core.state
            .bus
            .attach(map::CONSOLE_BASE, map::WINDOW_LEN, Box::new(console));
        let halt = run_guest(&mut core, &system_source(user_src), 1_000_000);
        let bytes = out.lock().clone();
        (halt, bytes, core.hooks.stats)
    }

    #[test]
    fn hello_via_syscalls() {
        let user = r"
user_main:
        li a1, 'H'
        li a0, 0
        menter 0            # putc
        li a1, 'i'
        li a0, 0
        menter 0
        li a0, 1
        menter 0            # getpid
        mv a1, a0
        li a0, 3
        menter 0            # exit(pid)
        ";
        let (halt, console, stats) = boot(user);
        assert_eq!(halt, Some(HaltReason::Ebreak { code: 1 }));
        assert_eq!(console, b"Hi");
        // boot set_violation + boot kexit (2), two putc and one getpid
        // kenter+kexit pairs (6), and the exit kenter (1).
        assert_eq!(stats.menters, 9);
    }

    #[test]
    fn user_cannot_fake_kexit() {
        let user = r"
user_main:
        la ra, target
        menter 1            # kexit from ring 1: violation
target:
        li a1, 0
        li a0, 3
        menter 0
        ";
        let (halt, _, _) = boot(user);
        assert_eq!(
            halt,
            Some(HaltReason::Ebreak {
                code: VIOLATION_EXIT
            })
        );
    }

    #[test]
    fn exit_code_propagates() {
        let user = r"
user_main:
        li a1, 42
        li a0, 3
        menter 0            # exit(42)
        ";
        let (halt, _, _) = boot(user);
        assert_eq!(halt, Some(HaltReason::Ebreak { code: 42 }));
    }
}
