//! User-level interrupts (paper §3.4).
//!
//! "Metal supports user level interrupt by handling the processor's
//! interrupt delivery. When an interrupt occurs, Metal invokes specific
//! mroutines to optionally redirect the interrupt to processes running
//! at lower privilege levels. The mroutines ensure that the target
//! process to receive the interrupt is currently running on the core
//! and interrupt the process without changing the privilege level."
//!
//! The dispatch mroutine here is that redirect: a delegated device
//! interrupt is turned into an upcall to a *userspace* handler with no
//! kernel transition at all. The interrupt line is masked for the
//! duration (the device stays level-asserted until the handler acks
//! it); the handler finishes with the `uret` mroutine, which unmasks the
//! line and resumes the interrupted code. The dispatcher preserves
//! `t0..t2` in Metal registers, so the user handler may clobber them
//! freely — a sigreturn-free upcall ABI.
//!
//! MRAM data layout (offset [`DATA_BASE`]):
//!
//! | offset | contents |
//! |--------|----------|
//! | +0     | user handler PC (0 = unregistered) |
//! | +4     | saved resume PC |
//! | +8     | masked `mie` bit |
//! | +12    | delivery counter |

use metal_core::MetalBuilder;

/// Entry numbers for the user-interrupt kit.
pub mod entries {
    /// The delegated-interrupt dispatcher.
    pub const DISPATCH: u8 = 20;
    /// Register the user handler (`a0` = PC; 0 unregisters).
    pub const REGISTER: u8 = 21;
    /// Return from a user handler (unmask + resume).
    pub const URET: u8 = 22;
    /// Read the delivery counter into `a0`.
    pub const COUNT: u8 = 23;
}

/// MRAM-data base of this kit's state.
pub const DATA_BASE: u32 = 128;

/// The dispatcher: runs on a delegated interrupt.
#[must_use]
pub fn dispatch_src() -> String {
    format!(
        r"
    # User-interrupt dispatch.
    wmr m14, t0
    wmr m15, t1
    wmr m16, t2
    li t2, {base}
    mld t1, 0(t2)              # user handler PC
    beqz t1, unregistered
    # Mask the interrupting line (mcause detail byte holds it).
    rmr t0, mcause
    srli t0, t0, 8
    andi t0, t0, 31
    li t2, 1
    sll t2, t2, t0
    csrrc zero, mie, t2        # mask
    li t0, {base}
    mst t2, 8(t0)              # remember the masked bit
    # Save the resume PC and count the delivery.
    rmr t2, m31
    mst t2, 4(t0)
    mld t2, 12(t0)
    addi t2, t2, 1
    mst t2, 12(t0)
    # Upcall: the user handler runs at the interrupted privilege level.
    wmr m31, t1
    rmr t0, m14
    rmr t1, m15
    rmr t2, m16
    mexit
unregistered:
    # No handler: mask the line entirely so the device cannot storm, and
    # resume the interrupted code.
    rmr t0, mcause
    srli t0, t0, 8
    andi t0, t0, 31
    li t2, 1
    sll t2, t2, t0
    csrrc zero, mie, t2
    rmr t0, m14
    rmr t1, m15
    rmr t2, m16
    mexit
    ",
        base = DATA_BASE
    )
}

/// Registers the user handler (`a0` = PC).
#[must_use]
pub fn register_src() -> String {
    format!("li t0, {base}\n mst a0, 0(t0)\n mexit", base = DATA_BASE)
}

/// Returns from the user handler: unmask the line, restore the
/// dispatcher-saved scratch registers, resume the interrupted code.
#[must_use]
pub fn uret_src() -> String {
    format!(
        r"
    li t0, {base}
    mld t1, 8(t0)
    csrrs zero, mie, t1        # unmask
    mld t1, 4(t0)
    wmr m31, t1
    rmr t0, m14
    rmr t1, m15
    rmr t2, m16
    mexit
    ",
        base = DATA_BASE
    )
}

/// Reads the delivery counter into `a0`.
#[must_use]
pub fn count_src() -> String {
    format!("li t0, {base}\n mld a0, 12(t0)\n mexit", base = DATA_BASE)
}

/// Installs the kit, delegating `irq_line` to the dispatcher.
#[must_use]
pub fn install(builder: MetalBuilder, irq_line: u8) -> MetalBuilder {
    builder
        .routine(entries::DISPATCH, "uintr_dispatch", &dispatch_src())
        .routine(entries::REGISTER, "uintr_register", &register_src())
        .routine(entries::URET, "uintr_ret", &uret_src())
        .routine(entries::COUNT, "uintr_count", &count_src())
        .delegate_interrupt(irq_line, entries::DISPATCH)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::run_guest;
    use metal_mem::devices::{map, Nic};
    use metal_pipeline::state::CoreConfig;
    use metal_pipeline::{Core, HaltReason};

    fn nic_core() -> (Core<metal_core::Metal>, metal_mem::devices::NicHandle) {
        let mut core = install(MetalBuilder::new(), map::NIC_IRQ)
            .build_core(CoreConfig::default())
            .unwrap();
        let (nic, handle) = Nic::new();
        core.state
            .bus
            .attach(map::NIC_BASE, map::WINDOW_LEN, Box::new(nic));
        (core, handle)
    }

    /// Guest: enable the NIC line, register a handler, and spin doing
    /// "work" until two packets have been received; the handler reads a
    /// data word per packet and acks the device directly from userspace.
    const GUEST: &str = r"
        li t0, 2               # NIC line = bit 1
        csrw mie, t0
        csrrsi zero, mstatus, 8
        la a0, handler
        menter 21              # register user handler
        li s1, 0               # packets seen
        li s2, 0               # work counter
    work:
        addi s2, s2, 1
        li t0, 2
        blt s1, t0, work
        menter 23              # deliveries -> a0
        slli a0, a0, 16
        or a0, a0, s3          # a0 = count<<16 | last word
        ebreak
    handler:
        li s4, 0xF0000200      # NIC window
        lw s3, 8(s4)           # DATA word
        li s5, 1
        sw s5, 12(s4)          # ACK
        addi s1, s1, 1
        menter 22              # uret
    ";

    #[test]
    fn packets_delivered_to_userspace() {
        let (mut core, handle) = nic_core();
        handle.schedule(200, &b"\x2A\x00\x00\x00"[..]);
        handle.schedule(600, &b"\x07\x00\x00\x00"[..]);
        let halt = run_guest(&mut core, GUEST, 100_000);
        assert_eq!(
            halt,
            Some(HaltReason::Ebreak {
                code: (2 << 16) | 7
            }),
            "stats: {:?}",
            core.hooks.stats
        );
        assert_eq!(core.hooks.stats.delegated_interrupts, 2);
        let completions = handle.take_completions();
        assert_eq!(completions.len(), 2);
        for (arrival, ack) in completions {
            assert!(
                ack - arrival < 200,
                "delivery latency should be small: {arrival} -> {ack}"
            );
        }
    }

    #[test]
    fn unregistered_interrupt_masks_line() {
        let (mut core, handle) = nic_core();
        handle.schedule(50, &b"x"[..]);
        let halt = run_guest(
            &mut core,
            r"
            li t0, 2
            csrw mie, t0
            csrrsi zero, mstatus, 8
            li s2, 0
        work:
            addi s2, s2, 1
            li t0, 3000
            blt s2, t0, work
            menter 23
            ebreak
            ",
            1_000_000,
        );
        // The kit counter only counts upcalls; the unregistered path
        // masks the line without counting.
        assert_eq!(halt, Some(HaltReason::Ebreak { code: 0 }));
        assert_eq!(core.hooks.stats.delegated_interrupts, 1);
    }

    #[test]
    fn handler_clobbering_scratch_is_safe() {
        let (mut core, handle) = nic_core();
        handle.schedule(100, &b"y"[..]);
        let halt = run_guest(
            &mut core,
            r"
            li t0, 2
            csrw mie, t0
            csrrsi zero, mstatus, 8
            la a0, handler
            menter 21
            li t0, 1000        # app state in scratch registers
            li t1, 2000
            li t2, 3000
            li s1, 0
        wait:
            beqz s1, wait
            add a0, t0, t1
            add a0, a0, t2     # must still be 6000
            ebreak
        handler:
            li t0, 0xDEAD      # clobber everything the ABI allows
            li t1, 0xDEAD
            li t2, 0xDEAD
            li s4, 0xF0000200
            li s5, 1
            sw s5, 12(s4)      # ACK
            addi s1, s1, 1
            menter 22
            ",
            1_000_000,
        );
        assert_eq!(halt, Some(HaltReason::Ebreak { code: 6000 }));
    }
}
