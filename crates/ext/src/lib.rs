//! Architectural extensions built on Metal — the paper's §3 applications.
//!
//! Each module packages mcode (mroutine assembly), its entry-number
//! assignments, and host-side helpers to install and drive it:
//!
//! * [`privilege`] — user-defined privilege levels: the `kenter`/`kexit`
//!   syscall gate of paper Figure 2, plus N-ring generalization (§3.1).
//! * [`kernel`] — the mini kernel the privilege model protects: syscall
//!   table, console output, fault handling.
//! * [`pagetable`] — custom page tables: an x86-style radix walker in
//!   the page-fault mroutine (§3.2), with trap-based and hardware-walker
//!   baselines for comparison.
//! * [`stm`] — software transactional memory via load/store
//!   interception, closely following TL2 (§3.3).
//! * [`uintr`] — user-level interrupts: delegated device interrupts
//!   redirected to a userspace handler without kernel involvement
//!   (§3.4).
//! * [`isolation`] — in-process isolation with page keys: protecting a
//!   secret without CFI (§3.1).
//! * [`shadowstack`] — control-flow protection by intercepting
//!   calls/returns (§3.5).
//! * [`capability`] — a toy hardware-capability model in mroutines
//!   (§3.5).
//! * [`enclave`] — a minimal security-enclave loader: a trusted
//!   execution layer above the OS (§3.5).
//! * [`vmm`] — a trap-and-emulate virtualization sketch on the lowest
//!   nested layer (§3.5).
//! * [`sched`] — a preemptive multi-process scheduler: timer-delegated
//!   context switch plus ASID-tagged address spaces.
//!
//! Entry-number map (the MRAM entry table has 64 slots, paper §2):
//!
//! | entries | owner |
//! |---------|-------|
//! | 0..8    | privilege + kernel |
//! | 8..12   | pagetable |
//! | 12..20  | stm |
//! | 20..24  | uintr |
//! | 24..28  | isolation |
//! | 28..32  | shadowstack |
//! | 32..40  | capability |
//! | 40..44  | enclave |
//! | 44..47  | sched |
//! | 48..51  | vmm |
//!
//! MRAM **data-segment** map (4 KiB, kit-partitioned):
//!
//! | bytes      | owner |
//! |------------|-------|
//! | 0..64      | privilege (violation handler, ring gates) |
//! | 64..128    | pagetable (root, OS handler) |
//! | 128..192   | uintr |
//! | 192..256   | isolation |
//! | 256..320   | enclave |
//! | 320..608   | capability (handler, count, 16-slot table) |
//! | 608..896   | shadowstack (handler, SP, 64 slots) |
//! | 896..1024  | sched (bounce slots, current pid, quantum) |
//! | 3200..3264 | vmm (shadow mtvec, fault handler) |
//! | 1024..3200 | stm (clock, lock-table base, 4 contexts) |

pub mod capability;
pub mod enclave;
pub mod isolation;
pub mod kernel;
pub mod machine;
pub mod pagetable;
pub mod privilege;
pub mod sched;
pub mod shadowstack;
pub mod stm;
pub mod uintr;
pub mod vmm;

pub use machine::{assemble_guest, run_guest, GuestBinary};
