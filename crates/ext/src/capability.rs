//! Hardware capabilities in mroutines (paper §3.5).
//!
//! "The IBM System/38 and Intel iAPX 432 processors implement
//! capabilities in hardware using microcode. … Similar to prior
//! systems, Metal can support capabilities by writing mroutines to
//! create and manipulate domains and capabilities."
//!
//! A capability here is an unforgeable handle to a bounded region of
//! physical memory with read/write permissions. The capability table
//! lives in the MRAM data segment, unreachable from application loads
//! and stores; applications hold only small integer indices, and every
//! dereference is bounds- and permission-checked inside an mroutine.
//!
//! Table entry layout (16 bytes per slot, [`MAX_CAPS`] slots at
//! [`DATA_BASE`]): base, length, permissions (bit 0 read / bit 1
//! write), valid flag.

use metal_core::MetalBuilder;

/// Entry numbers for the capability kit.
pub mod entries {
    /// Mint a capability: `a0` = base, `a1` = len, `a2` = perms;
    /// returns `a0` = index, or -1 if the table is full.
    pub const CREATE: u8 = 32;
    /// Load through a capability: `a0` = index, `a1` = offset;
    /// returns `a0` = value (diverts to the fault label on violation).
    pub const LOAD: u8 = 33;
    /// Store through a capability: `a0` = index, `a1` = offset,
    /// `a2` = value.
    pub const STORE: u8 = 34;
    /// Revoke: `a0` = index.
    pub const REVOKE: u8 = 35;
    /// Register the violation handler: `a0` = PC.
    pub const SET_HANDLER: u8 = 36;
}

/// MRAM-data base of the capability table.
pub const DATA_BASE: u32 = 320;
/// Number of capability slots.
pub const MAX_CAPS: u32 = 16;

const HANDLER_SLOT: u32 = DATA_BASE;
const COUNT_SLOT: u32 = DATA_BASE + 4;
const TABLE: u32 = DATA_BASE + 8;

/// Common violation epilogue: jump to the registered handler.
fn violation_tail() -> String {
    format!(
        r"
violation:
    li t0, {handler}
    mld t0, 0(t0)
    wmr m31, t0
    mexit
    ",
        handler = HANDLER_SLOT
    )
}

/// Mints a capability.
#[must_use]
pub fn create_src() -> String {
    format!(
        r"
    li t0, {count}
    mld t1, 0(t0)
    li t2, {max}
    bge t1, t2, full
    # slot address = TABLE + 16 * index
    slli t2, t1, 4
    addi t2, t2, {table}
    mst a0, 0(t2)              # base
    mst a1, 4(t2)              # len
    mst a2, 8(t2)              # perms
    li t0, 1
    mst t0, 12(t2)             # valid
    li t0, {count}
    addi t2, t1, 1
    mst t2, 0(t0)
    mv a0, t1                  # return the index
    mexit
full:
    li a0, -1
    mexit
    ",
        count = COUNT_SLOT,
        max = MAX_CAPS,
        table = TABLE,
    )
}

/// Shared check: validates `a0` (index) and `a1` (offset) against the
/// table for permission bit `perm_bit`, leaving the physical address in
/// `t2`. Emitted inline into the load/store mroutines.
fn check_body(perm_bit: u32) -> String {
    format!(
        r"
    li t0, {max}
    bgeu a0, t0, violation     # index out of range
    slli t2, a0, 4
    addi t2, t2, {table}
    mld t0, 12(t2)
    beqz t0, violation         # revoked / never minted
    mld t0, 8(t2)
    andi t0, t0, {perm_bit}
    beqz t0, violation         # permission missing
    mld t0, 4(t2)
    bgeu a1, t0, violation     # offset >= len (also blocks wrap-around)
    addi t1, a1, 4
    bltu t0, t1, violation     # offset + 4 > len
    mld t0, 0(t2)
    add t2, t0, a1             # physical address
    ",
        max = MAX_CAPS,
        table = TABLE,
        perm_bit = perm_bit,
    )
}

/// Loads through a capability.
#[must_use]
pub fn load_src() -> String {
    format!(
        "{check}\n    mpld a0, t2\n    mexit\n{tail}",
        check = check_body(1),
        tail = violation_tail()
    )
}

/// Stores through a capability.
#[must_use]
pub fn store_src() -> String {
    format!(
        "{check}\n    mpst t2, a2\n    li a0, 0\n    mexit\n{tail}",
        check = check_body(2),
        tail = violation_tail()
    )
}

/// Revokes a capability.
#[must_use]
pub fn revoke_src() -> String {
    format!(
        r"
    li t0, {max}
    bgeu a0, t0, violation
    slli t2, a0, 4
    addi t2, t2, {table}
    mst zero, 12(t2)
    li a0, 0
    mexit
{tail}
    ",
        max = MAX_CAPS,
        table = TABLE,
        tail = violation_tail(),
    )
}

/// Registers the violation handler.
#[must_use]
pub fn set_handler_src() -> String {
    format!("li t0, {HANDLER_SLOT}\n mst a0, 0(t0)\n mexit")
}

/// Installs the capability kit.
#[must_use]
pub fn install(builder: MetalBuilder) -> MetalBuilder {
    builder
        .routine(entries::CREATE, "cap_create", &create_src())
        .routine(entries::LOAD, "cap_load", &load_src())
        .routine(entries::STORE, "cap_store", &store_src())
        .routine(entries::REVOKE, "cap_revoke", &revoke_src())
        .routine(entries::SET_HANDLER, "cap_set_handler", &set_handler_src())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::run_guest;
    use metal_pipeline::state::CoreConfig;
    use metal_pipeline::{Core, HaltReason};

    fn core() -> Core<metal_core::Metal> {
        install(MetalBuilder::new())
            .build_core(CoreConfig::default())
            .unwrap()
    }

    const PROLOGUE: &str = r"
        la a0, violation
        menter 36
    ";
    const EPILOGUE: &str = r"
    violation:
        li a0, 0xBAD
        ebreak
    ";

    #[test]
    fn mint_store_load_roundtrip() {
        let mut core = core();
        let src = format!(
            r"
            {PROLOGUE}
            li a0, 0x40000
            li a1, 64
            li a2, 3
            menter 32          # create -> cap 0
            mv s1, a0
            mv a0, s1
            li a1, 8
            li a2, 777
            menter 34          # store cap[8] = 777
            mv a0, s1
            li a1, 8
            menter 33          # load cap[8]
            ebreak
            {EPILOGUE}
            "
        );
        let halt = run_guest(&mut core, &src, 100_000);
        assert_eq!(halt, Some(HaltReason::Ebreak { code: 777 }));
    }

    #[test]
    fn bounds_enforced() {
        let mut core = core();
        let src = format!(
            r"
            {PROLOGUE}
            li a0, 0x40000
            li a1, 64
            li a2, 3
            menter 32
            li a1, 64          # one past the end (64..68 > len)
            menter 33
            li a0, 1
            ebreak
            {EPILOGUE}
            "
        );
        let halt = run_guest(&mut core, &src, 100_000);
        assert_eq!(halt, Some(HaltReason::Ebreak { code: 0xBAD }));
    }

    #[test]
    fn write_permission_enforced() {
        let mut core = core();
        let src = format!(
            r"
            {PROLOGUE}
            li a0, 0x40000
            li a1, 64
            li a2, 1           # read-only
            menter 32
            li a1, 0
            li a2, 5
            menter 34          # store through a read-only cap
            li a0, 1
            ebreak
            {EPILOGUE}
            "
        );
        let halt = run_guest(&mut core, &src, 100_000);
        assert_eq!(halt, Some(HaltReason::Ebreak { code: 0xBAD }));
    }

    #[test]
    fn revocation_kills_the_handle() {
        let mut core = core();
        let src = format!(
            r"
            {PROLOGUE}
            li a0, 0x40000
            li a1, 64
            li a2, 3
            menter 32
            mv s1, a0
            mv a0, s1
            menter 35          # revoke
            mv a0, s1
            li a1, 0
            menter 33          # load via the dead handle
            li a0, 1
            ebreak
            {EPILOGUE}
            "
        );
        let halt = run_guest(&mut core, &src, 100_000);
        assert_eq!(halt, Some(HaltReason::Ebreak { code: 0xBAD }));
    }

    #[test]
    fn forged_index_rejected() {
        let mut core = core();
        let src = format!(
            r"
            {PROLOGUE}
            li a0, 12          # never minted
            li a1, 0
            menter 33
            li a0, 1
            ebreak
            {EPILOGUE}
            "
        );
        let halt = run_guest(&mut core, &src, 100_000);
        assert_eq!(halt, Some(HaltReason::Ebreak { code: 0xBAD }));
    }

    #[test]
    fn table_capacity_enforced() {
        let mut core = core();
        let src = format!(
            r"
            {PROLOGUE}
            li s1, 0
            li s2, 17          # one more than MAX_CAPS
        mint:
            li a0, 0x40000
            li a1, 16
            li a2, 3
            menter 32
            mv s3, a0          # last result
            addi s1, s1, 1
            blt s1, s2, mint
            mv a0, s3          # the 17th mint must return -1
            ebreak
            {EPILOGUE}
            "
        );
        let halt = run_guest(&mut core, &src, 1_000_000);
        assert_eq!(halt, Some(HaltReason::Ebreak { code: u32::MAX }));
    }
}
