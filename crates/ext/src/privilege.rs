//! User-defined privilege levels (paper §3.1).
//!
//! "Metal enables new OS privilege separation models beyond the basic
//! user mode vs. kernel mode distinction." Metal itself defines only
//! normal vs. Metal mode; *software* defines the rings: the current ring
//! lives in Metal register `m0`, transitions are mroutines, and every
//! privileged mroutine begins with a ring check that redirects violators
//! to a kernel-registered handler ("a privilege check that triggers an
//! exception if violated").
//!
//! The two-ring model reproduces paper Figure 2: `kenter` takes a system
//! call number in `a0`, saves the userspace return address in `ra`,
//! computes the kernel entry point through the syscall table, and jumps
//! there; `kexit` returns to the address in `ra`. The N-ring
//! generalization adds ring-call gates registered per ring.
//!
//! Register conventions (documented ABI, as in the paper's use of `t0`
//! and `ra`):
//!
//! * `m0` — current ring (0 = most privileged/kernel).
//! * `m1`/`m2` — caller return address / caller ring across `ring_call`.
//! * `kenter` clobbers `t0`, `t1`; the syscall number is consumed from
//!   `a0`; results return in `a0`.
//!
//! MRAM data-segment layout for this kit:
//!
//! * word 0 — privilege-violation handler address.
//! * words `8 + 4*r` — ring-call gate PC for ring `r` (r < 8).

use crate::machine::layout;
use metal_core::MetalBuilder;

/// Entry numbers for the privilege kit.
pub mod entries {
    /// `kenter`: user → kernel syscall transition (paper Fig. 2).
    pub const KENTER: u8 = 0;
    /// `kexit`: kernel → user return (paper Fig. 2).
    pub const KEXIT: u8 = 1;
    /// Register the privilege-violation handler (ring 0 only).
    pub const SET_VIOLATION: u8 = 2;
    /// Read the current ring into `a0`.
    pub const RING_GET: u8 = 3;
    /// Call into a more-privileged ring through its gate.
    pub const RING_CALL: u8 = 4;
    /// Return outward from a ring call.
    pub const RING_RETURN: u8 = 5;
    /// Register a ring's gate PC (ring 0 only).
    pub const SET_GATE: u8 = 6;
}

/// Ring number for the kernel.
pub const KERNEL_RING: u32 = 0;
/// Ring number for userspace in the two-ring model.
pub const USER_RING: u32 = 1;

/// The `kenter` mroutine (paper Figure 2, adapted to this ISA).
#[must_use]
pub fn kenter_src() -> String {
    format!(
        r"
        # kenter: system call entry. a0 = syscall number.
        rmr ra, m31            # save the userspace return address in ra
        wmr m0, zero           # ring := 0 (kernel)
        slli t0, a0, 2
        li t1, {table:#x}
        add t0, t0, t1
        lw t0, 0(t0)           # t0 = syscall handler address (the table
                               # is kernel-pinned memory: cached, mapped)
        wmr m31, t0
        mexit                  # jump to the kernel entry point
        ",
        table = layout::SYSCALL_TABLE
    )
}

/// The `kexit` mroutine (paper Figure 2): return to userspace at `ra`.
#[must_use]
pub fn kexit_src() -> String {
    format!(
        r"
        # kexit: return to userspace. Kernel only.
        rmr t0, m0
        bnez t0, viol
        li t0, {user_ring}
        wmr m0, t0             # ring := user
        wmr m31, ra
        mexit
    viol:
        mld t0, 0(zero)        # privilege-violation handler
        wmr m31, t0
        mexit
        ",
        user_ring = USER_RING
    )
}

/// Registers the violation handler (`a0` = handler PC). Ring 0 only.
#[must_use]
pub fn set_violation_src() -> &'static str {
    r"
    rmr t0, m0
    bnez t0, viol
    mst a0, 0(zero)
    mexit
viol:
    mld t0, 0(zero)
    wmr m31, t0
    mexit
    "
}

/// Reads the current ring into `a0`.
#[must_use]
pub fn ring_get_src() -> &'static str {
    "rmr a0, m0\n mexit"
}

/// Calls into a more-privileged ring: `a0` = target ring. The target's
/// registered gate receives control; the caller's ring and return
/// address are stashed in `m2`/`m1` for [`entries::RING_RETURN`].
#[must_use]
pub fn ring_call_src() -> &'static str {
    r"
    rmr t0, m0
    bge a0, t0, viol       # target must be strictly more privileged
    wmr m2, t0             # caller ring
    rmr t1, m31
    wmr m1, t1             # caller return address
    wmr m0, a0             # now running at the target ring
    slli t0, a0, 2
    addi t0, t0, 8
    mld t0, 0(t0)          # gate PC for the target ring
    wmr m31, t0
    mexit
viol:
    mld t0, 0(zero)
    wmr m31, t0
    mexit
    "
}

/// Returns outward from a ring call to the stashed caller.
#[must_use]
pub fn ring_return_src() -> &'static str {
    r"
    rmr t0, m0
    rmr t1, m2
    blt t1, t0, viol       # may only return to a less-privileged caller
    wmr m0, t1
    rmr t1, m1
    wmr m31, t1
    mexit
viol:
    mld t0, 0(zero)
    wmr m31, t0
    mexit
    "
}

/// Registers a ring's gate PC: `a0` = ring, `a1` = PC. Ring 0 only.
#[must_use]
pub fn set_gate_src() -> &'static str {
    r"
    rmr t0, m0
    bnez t0, viol
    slli t0, a0, 2
    addi t0, t0, 8
    mst a1, 0(t0)
    mexit
viol:
    mld t0, 0(zero)
    wmr m31, t0
    mexit
    "
}

/// Installs the privilege kit's mroutines into a builder.
#[must_use]
pub fn install(builder: MetalBuilder) -> MetalBuilder {
    builder
        .routine(entries::KENTER, "kenter", &kenter_src())
        .routine(entries::KEXIT, "kexit", &kexit_src())
        .routine(entries::SET_VIOLATION, "set_violation", set_violation_src())
        .routine(entries::RING_GET, "ring_get", ring_get_src())
        .routine(entries::RING_CALL, "ring_call", ring_call_src())
        .routine(entries::RING_RETURN, "ring_return", ring_return_src())
        .routine(entries::SET_GATE, "set_gate", set_gate_src())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::run_guest;
    use metal_pipeline::state::CoreConfig;
    use metal_pipeline::HaltReason;

    fn core() -> metal_pipeline::Core<metal_core::Metal> {
        install(MetalBuilder::new())
            .build_core(CoreConfig::default())
            .unwrap()
    }

    #[test]
    fn kit_assembles_and_installs() {
        let core = core();
        for entry in [0u8, 1, 2, 3, 4, 5, 6] {
            assert!(core.hooks.mram.entry(entry).is_some(), "entry {entry}");
        }
    }

    #[test]
    fn boot_ring_is_kernel() {
        let mut core = core();
        let halt = run_guest(&mut core, "menter 3\n ebreak", 10_000);
        assert_eq!(halt, Some(HaltReason::Ebreak { code: KERNEL_RING }));
    }

    #[test]
    fn kexit_drops_to_user_ring() {
        let mut core = core();
        let halt = run_guest(
            &mut core,
            r"
            la a0, kfault
            menter 2           # register violation handler
            la ra, user
            menter 1           # kexit -> user code at ring 1
        kfault:
            li a0, 0xdead
            ebreak
        user:
            menter 3           # ring_get
            ebreak
            ",
            10_000,
        );
        assert_eq!(halt, Some(HaltReason::Ebreak { code: USER_RING }));
    }

    #[test]
    fn user_cannot_kexit() {
        let mut core = core();
        let halt = run_guest(
            &mut core,
            r"
            la a0, kfault
            menter 2
            la ra, user
            menter 1           # drop to ring 1
        kfault:
            li a0, 0xdead
            ebreak
        user:
            la ra, evil        # try to 'return to userspace' again
            menter 1           # kexit from ring 1: privilege violation
        evil:
            li a0, 0xbad
            ebreak
            ",
            10_000,
        );
        assert_eq!(
            halt,
            Some(HaltReason::Ebreak { code: 0xdead }),
            "violation must land in the registered handler"
        );
    }

    #[test]
    fn ring_call_gates_inward_transitions() {
        let mut core = core();
        let halt = run_guest(
            &mut core,
            r"
            la a0, kfault
            menter 2
            li a0, 0
            la a1, ring0_gate
            menter 6           # set_gate(ring 0, ring0_gate)
            la ra, user
            menter 1           # drop to ring 1
        kfault:
            li a0, 0xdead
            ebreak
        ring0_gate:
            # Runs at ring 0 on behalf of the user; return 7.
            li a0, 7
            menter 5           # ring_return
        user:
            li a0, 0
            menter 4           # ring_call(0) -> gate -> back here
            ebreak
            ",
            10_000,
        );
        assert_eq!(halt, Some(HaltReason::Ebreak { code: 7 }));
    }

    #[test]
    fn ring_call_rejects_same_or_outward_ring() {
        let mut core = core();
        let halt = run_guest(
            &mut core,
            r"
            la a0, kfault
            menter 2
            la ra, user
            menter 1
        kfault:
            li a0, 0xdead
            ebreak
        user:
            li a0, 1           # target == current ring: not allowed
            menter 4
            ebreak
            ",
            10_000,
        );
        assert_eq!(halt, Some(HaltReason::Ebreak { code: 0xdead }));
    }
}
