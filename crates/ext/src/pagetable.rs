//! Custom page tables (paper §3.2).
//!
//! "OSes can implement custom memory management data structures with
//! Metal. … We implement a radix tree based page table using direct
//! physical memory access and exception handling provided by the
//! processor. In a few lines of assembly, we walk an x86-style radix
//! tree on page fault. We populate the processor's TLB mappings from
//! the page table. If the page is not present or the access violates
//! the page protection, we deliver the exception to the OS."
//!
//! The refill mroutine below is exactly that walk: page faults are
//! delegated to it; it probes the TLB first (an existing entry means a
//! *protection* violation → deliver to the OS), walks the two-level
//! radix tree with `mpld`, installs the leaf PTE with `mtlbw`, and
//! retries the faulting instruction by `mexit` (m31 already holds the
//! faulting PC).
//!
//! Delivery convention: when the walk fails, the OS handler registered
//! via [`entries::SET_OS_HANDLER`] is entered in normal mode with
//! `t0` = faulting address and `t1` = Metal entry cause; the
//! application's original `t0`/`t1` are retrievable with
//! [`entries::GET_SAVED`].
//!
//! MRAM data layout for this kit:
//!
//! * word 64 — physical address of the page-table root.
//! * word 68 — OS fault-handler PC.
//!
//! (See the crate-level MRAM data-segment map for kit placement.)
//!
//! Experiment E3 compares this refill against (a) the hardware walker
//! ([`metal_pipeline::state::TranslationMode::HwWalker`]) and (b) the
//! *same* mcode dispatched PALcode-style from main memory — isolating
//! the MRAM-collocation claim ("the proximity of MRAM to the
//! instruction fetch unit enables fast exception dispatching").

use metal_core::MetalBuilder;
use metal_mem::tlb::Pte;
use metal_mem::walker::Walker;
use metal_mem::PhysMemory;
use metal_pipeline::trap::TrapCause;

/// Entry numbers for the page-table kit.
pub mod entries {
    /// The page-fault refill walker.
    pub const REFILL: u8 = 8;
    /// Set the page-table root (`a0` = physical root).
    pub const SET_ROOT: u8 = 9;
    /// Set the OS fault handler (`a0` = PC).
    pub const SET_OS_HANDLER: u8 = 10;
    /// Retrieve the saved `t0`/`t1` into `a0`/`a1` (OS handler use).
    pub const GET_SAVED: u8 = 11;
}

/// The radix-walk refill mroutine. Scratch GPRs are preserved in Metal
/// registers `m3`/`m4` so the faulting application resumes unperturbed.
#[must_use]
pub fn refill_src() -> &'static str {
    r"
    # Page-fault refill: walk the x86-style radix tree.
    wmr m3, t0
    wmr m4, t1
    rmr t0, mbadaddr
    # An existing TLB entry means the access violated permissions, not
    # a missing translation: deliver to the OS.
    mtlbp t1, t0
    bnez t1, deliver
    # Directory entry: root + 4 * (va >> 22).
    mld t1, 64(zero)
    srli t0, t0, 22
    slli t0, t0, 2
    add t0, t0, t1
    mpld t0, t0
    andi t1, t0, 1
    beqz t1, deliver
    # Leaf entry: (dir & ~0xFFF) + 4 * ((va >> 12) & 0x3FF).
    li t1, 0xFFFFF000
    and t0, t0, t1
    rmr t1, mbadaddr
    srli t1, t1, 12
    andi t1, t1, 0x3FF
    slli t1, t1, 2
    add t0, t0, t1
    mpld t0, t0
    andi t1, t0, 1
    beqz t1, deliver
    # Install and retry the faulting instruction.
    rmr t1, mbadaddr
    mtlbw t1, t0
    rmr t0, m3
    rmr t1, m4
    mexit
deliver:
    # Not present or protection violation: enter the OS fault handler
    # with t0 = faulting va, t1 = entry cause (originals stay in m3/m4).
    mld t0, 68(zero)
    wmr m31, t0
    rmr t0, mbadaddr
    rmr t1, mcause
    mexit
    "
}

/// `a0` = physical root: records it and flushes stale translations.
#[must_use]
pub fn set_root_src() -> &'static str {
    "mst a0, 64(zero)\n mtlbiall\n mexit"
}

/// `a0` = OS fault-handler PC.
#[must_use]
pub fn set_os_handler_src() -> &'static str {
    "mst a0, 68(zero)\n mexit"
}

/// Retrieves the refill walker's saved `t0`/`t1` into `a0`/`a1`.
#[must_use]
pub fn get_saved_src() -> &'static str {
    "rmr a0, m3\n rmr a1, m4\n mexit"
}

/// Installs the kit: the mroutines plus delegation of all three
/// page-fault causes to the refill walker.
#[must_use]
pub fn install(builder: MetalBuilder) -> MetalBuilder {
    builder
        .routine(entries::REFILL, "pt_refill", refill_src())
        .routine(entries::SET_ROOT, "pt_set_root", set_root_src())
        .routine(entries::SET_OS_HANDLER, "pt_set_os", set_os_handler_src())
        .routine(entries::GET_SAVED, "pt_get_saved", get_saved_src())
        .delegate_exception(TrapCause::InsnPageFault, entries::REFILL)
        .delegate_exception(TrapCause::LoadPageFault, entries::REFILL)
        .delegate_exception(TrapCause::StorePageFault, entries::REFILL)
}

/// Host-side builder for a guest page table (the structure the OS would
/// maintain; the same x86-style layout [`Walker`] understands).
#[derive(Debug)]
pub struct GuestPageTable {
    /// Physical address of the root directory page.
    pub root: u32,
    next_page: u32,
    limit: u32,
}

impl GuestPageTable {
    /// Creates a page table whose root and leaf tables are allocated
    /// from `[base, limit)` (page-aligned region of guest RAM).
    ///
    /// # Panics
    ///
    /// Panics if `base` is not page-aligned or the region is empty.
    #[must_use]
    pub fn new(mem: &mut PhysMemory, base: u32, limit: u32) -> GuestPageTable {
        assert_eq!(base & 0xFFF, 0, "page-table region must be page-aligned");
        assert!(base + 0x1000 <= limit, "page-table region too small");
        // Zero the root page.
        for i in 0..1024 {
            mem.write_u32(base + i * 4, 0).expect("root page in RAM");
        }
        GuestPageTable {
            root: base,
            next_page: base + 0x1000,
            limit,
        }
    }

    /// Maps `va -> pa` with PTE `flags` (V is implied).
    ///
    /// # Panics
    ///
    /// Panics if the region runs out of leaf-table pages.
    pub fn map(&mut self, mem: &mut PhysMemory, va: u32, pa: u32, flags: u32) {
        let walker = Walker::new(self.root);
        let limit = self.limit;
        let next = &mut self.next_page;
        let mut alloc = || {
            let page = *next;
            assert!(page + 0x1000 <= limit, "page-table region exhausted");
            *next += 0x1000;
            page
        };
        walker
            .map(mem, va, pa, flags, &mut alloc)
            .expect("page-table pages lie in RAM");
    }

    /// Maps `count` pages starting at `va` to identical physical pages.
    pub fn identity_map(&mut self, mem: &mut PhysMemory, va: u32, count: u32, flags: u32) {
        for i in 0..count {
            let addr = va + i * 0x1000;
            self.map(mem, addr, addr, flags);
        }
    }

    /// Unmaps `va` by clearing its leaf entry (if present).
    pub fn unmap(&mut self, mem: &mut PhysMemory, va: u32) {
        let dir_addr = self.root + Walker::dir_index(va) * 4;
        let dir = Pte(mem.read_u32(dir_addr).unwrap_or(0));
        if !dir.valid() {
            return;
        }
        let leaf_addr = dir.phys_base() + Walker::table_index(va) * 4;
        let _ = mem.write_u32(leaf_addr, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::run_guest;
    use metal_pipeline::state::{CoreConfig, TranslationMode};
    use metal_pipeline::{Core, HaltReason};

    fn setup() -> Core<metal_core::Metal> {
        let mut core = install(MetalBuilder::new())
            .build_core(CoreConfig {
                ram_bytes: 8 << 20,
                ..CoreConfig::default()
            })
            .unwrap();
        // Build a guest page table at 4 MiB.
        let mut pt = GuestPageTable::new(&mut core.state.bus.ram, 0x40_0000, 0x48_0000);
        // Identity-map code/data pages (fetch must keep working) and a
        // data page window at 0x20000; map 0x80000 -> 0x9000 read-only.
        pt.identity_map(&mut core.state.bus.ram, 0x0, 16, Pte::R | Pte::W | Pte::X);
        pt.identity_map(&mut core.state.bus.ram, 0x2_0000, 4, Pte::R | Pte::W);
        pt.map(&mut core.state.bus.ram, 0x8_0000, 0x9000, Pte::R);
        let root = pt.root;
        // Prime the kit's MRAM data directly (the SET_ROOT mroutine does
        // the same from guest code; exercised in its own test).
        core.hooks.mram.data_mut()[64..68].copy_from_slice(&root.to_le_bytes());
        core.state.translation = TranslationMode::SoftTlb;
        core
    }

    #[test]
    fn refill_on_demand_and_retry() {
        let mut core = setup();
        let halt = run_guest(
            &mut core,
            r"
            li s0, 0x20000
            li t0, 77
            sw t0, 0(s0)       # store fault -> walk -> retry
            lw a0, 0(s0)
            ebreak
            ",
            100_000,
        );
        assert_eq!(halt, Some(HaltReason::Ebreak { code: 77 }));
        assert!(
            core.hooks.stats.delegated_exceptions >= 2,
            "fetch + data refills: {:?}",
            core.hooks.stats
        );
    }

    #[test]
    fn refill_preserves_application_registers() {
        let mut core = setup();
        let halt = run_guest(
            &mut core,
            r"
            li t0, 1111
            li t1, 2222
            li s0, 0x21000
            sw t0, 0(s0)       # faults; refill must preserve t0/t1
            lw a0, 0(s0)
            sub a0, a0, t1
            add a0, a0, t1
            ebreak
            ",
            100_000,
        );
        assert_eq!(halt, Some(HaltReason::Ebreak { code: 1111 }));
    }

    #[test]
    fn read_only_mapping_enforced() {
        let mut core = setup();
        let halt = run_guest(
            &mut core,
            r"
            la a0, os_fault
            menter 10          # set OS handler
            li s0, 0x80000
            lw a0, 0(s0)       # read OK (maps to 0x9000)
            sw a0, 0(s0)       # write: protection -> OS handler
            li a0, 0
            ebreak
        os_fault:
            # t0 = faulting va (delivery convention)
            mv a0, t0
            ebreak
            ",
            100_000,
        );
        assert_eq!(halt, Some(HaltReason::Ebreak { code: 0x8_0000 }));
    }

    #[test]
    fn unmapped_page_delivered_to_os() {
        let mut core = setup();
        let halt = run_guest(
            &mut core,
            r"
            la a0, os_fault
            menter 10
            li s0, 0x700000    # never mapped
            lw a0, 0(s0)
            li a0, 0
            ebreak
        os_fault:
            menter 11          # get_saved: a0/a1 = app's t0/t1
            mv a0, t0          # faulting va
            ebreak
            ",
            100_000,
        );
        assert_eq!(halt, Some(HaltReason::Ebreak { code: 0x70_0000 }));
    }

    #[test]
    fn guest_pagetable_host_walker_agrees() {
        let mut mem = PhysMemory::new(1 << 20);
        let mut pt = GuestPageTable::new(&mut mem, 0x4_0000, 0x8_0000);
        pt.map(&mut mem, 0x1234_5000, 0x6000, Pte::R | Pte::W);
        let walker = Walker::new(pt.root);
        let (result, _) = walker.walk(&mem, 0x1234_5678).unwrap();
        match result {
            metal_mem::walker::WalkResult::Mapped(pte) => {
                assert_eq!(pte.phys_base(), 0x6000);
            }
            other => panic!("expected mapping, got {other:?}"),
        }
        pt.unmap(&mut mem, 0x1234_5000);
        let (result, _) = walker.walk(&mem, 0x1234_5678).unwrap();
        assert!(matches!(
            result,
            metal_mem::walker::WalkResult::NotMapped { level: 1 }
        ));
    }

    #[test]
    fn set_root_mroutine_flushes() {
        let mut core = setup();
        let halt = run_guest(
            &mut core,
            r"
            li s0, 0x20000
            li t0, 5
            sw t0, 0(s0)       # populate a TLB entry via refill
            li a0, 0x400000    # same root, but SET_ROOT must flush
            menter 9
            lw a0, 0(s0)       # refaults, rewalks
            ebreak
            ",
            100_000,
        );
        assert_eq!(halt, Some(HaltReason::Ebreak { code: 5 }));
        assert!(core.hooks.stats.delegated_exceptions >= 3);
    }
}
