//! Software transactional memory via instruction interception (§3.3).
//!
//! "We intercept all memory access instructions within a transaction
//! and invoke tread and twrite instead, which perform and record the
//! memory accesses. Upon tcommit, all accessed memory addresses within
//! the transaction are inspected for conflict. The benefit of using
//! Metal is that neither compilers nor developers need to replace loads
//! and stores with calls into an STM library. Instead, Metal turns on
//! and off interception of loads and stores at runtime. … Our
//! implementation is under 100 instructions and closely resembles TL2."
//!
//! This kit implements that design:
//!
//! * `tstart` arms interception of the LOAD and STORE opcode classes
//!   and snapshots the global version clock.
//! * Intercepted loads run the `tread` mroutine: read-after-write
//!   buffering against the write set, versioned-lock sampling into the
//!   read set (TL2's read-set logging), and emulation of the original
//!   `lw` (the destination register is decoded from `minsn` and written
//!   through a register-dispatch stub table — the classic microcode
//!   technique for dynamic register access).
//! * Intercepted stores run `twrite`: the store is buffered in the
//!   write set (lazy versioning), not performed.
//! * `tcommit` validates the read set against the lock table, bumps the
//!   global clock, writes the buffered stores back, publishes the new
//!   version, and disarms interception. `a0 = 1` on success, `0` on
//!   abort (the write set is discarded).
//! * `tsuspend`/`tresume` disarm/re-arm interception so a scheduler can
//!   interleave transactions from different logical threads, each with
//!   its own context area.
//!
//! Only word-sized accesses (`lw`/`sw`) are transactional; other widths
//! abort the transaction (recorded in the context's abort flag).
//!
//! # Memory layout
//!
//! The **lock table** (versioned locks, TL2 style) lives in guest
//! physical memory: [`LOCK_TABLE_SLOTS`] word-sized locks; a location's
//! lock is `lock_table + 4 * ((addr >> 2) & (SLOTS-1))`. Lock word
//! format: `version << 1 | locked`.
//!
//! **MRAM data** holds the global clock and per-context state:
//!
//! | offset | contents |
//! |--------|----------|
//! | 1024   | global version clock |
//! | 1028   | lock-table physical base |
//! | 1152 + 512*ctx | context: status (0 idle / 1 active / 2 aborted) |
//! | +4     | read version (clock snapshot) |
//! | +8     | read-set count |
//! | +12    | write-set count |
//! | +16…   | read set: [`READ_SET_MAX`] × (lock addr, observed word) |
//! | +272…  | write set: [`WRITE_SET_MAX`] × (addr, value) |
//!
//! The active context's MRAM-data base lives in Metal register `m5`
//! while a transaction runs.

use crate::machine::{read_reg_stubs, write_reg_stubs};
use metal_core::MetalBuilder;

/// Entry numbers for the STM kit.
pub mod entries {
    /// Begin a transaction (`a0` = context id).
    pub const TSTART: u8 = 12;
    /// Intercepted-load handler.
    pub const TREAD: u8 = 13;
    /// Intercepted-store handler.
    pub const TWRITE: u8 = 14;
    /// Commit; `a0` = 1 on success, 0 on abort.
    pub const TCOMMIT: u8 = 15;
    /// Abort explicitly; `a0` = 0.
    pub const TABORT: u8 = 16;
    /// Disarm interception (scheduler switching away).
    pub const TSUSPEND: u8 = 17;
    /// Re-arm interception (`a0` = context id to resume).
    pub const TRESUME: u8 = 18;
    /// Set the lock-table physical base (`a0`).
    pub const SET_LOCKTAB: u8 = 19;
}

/// Number of word locks in the lock table (power of two).
pub const LOCK_TABLE_SLOTS: u32 = 256;
/// Maximum read-set entries per transaction.
pub const READ_SET_MAX: u32 = 32;
/// Maximum write-set entries per transaction.
pub const WRITE_SET_MAX: u32 = 16;
/// MRAM-data offset of context 0.
pub const CTX_BASE: u32 = 1152;
/// Bytes per context.
pub const CTX_SIZE: u32 = 512;
/// Number of contexts the MRAM data segment accommodates.
pub const MAX_CONTEXTS: u32 = 4;

// Context-relative offsets.
const CTX_STATUS: u32 = 0;
const CTX_RV: u32 = 4;
const CTX_RCOUNT: u32 = 8;
const CTX_WCOUNT: u32 = 12;
const CTX_RSET: u32 = 16;
const CTX_WSET: u32 = CTX_RSET + READ_SET_MAX * 8;

/// `tstart`: `a0` = context id.
#[must_use]
pub fn tstart_src() -> String {
    format!(
        r"
    # tstart(ctx): snapshot the clock, clear the sets, arm interception.
    slli t0, a0, 9             # ctx * CTX_SIZE
    addi t0, t0, {ctx_base}
    wmr m5, t0                 # m5 = context MRAM-data base
    li t1, 1
    mst t1, {status}(t0)       # status = active
    mld t1, 1024(zero)         # global clock
    mst t1, {rv}(t0)           # read version
    mst zero, {rcount}(t0)
    mst zero, {wcount}(t0)
    # Arm interception of the LOAD and STORE opcode classes.
    li t0, 0x03
    li t1, {tread_target}
    mintercept t0, t1
    li t0, 0x23
    li t1, {twrite_target}
    mintercept t0, t1
    li t0, 1
    wmr mstatus, t0            # master enable
    mexit
    ",
        ctx_base = CTX_BASE,
        status = CTX_STATUS,
        rv = CTX_RV,
        rcount = CTX_RCOUNT,
        wcount = CTX_WCOUNT,
        tread_target = (u32::from(entries::TREAD) << 1) | 1,
        twrite_target = (u32::from(entries::TWRITE) << 1) | 1,
    )
}

/// `tread`: the intercepted-load handler.
#[must_use]
pub fn tread_src() -> String {
    format!(
        r"
    # tread: emulate an intercepted load transactionally. All scratch
    # registers are saved in Metal registers: the handler is transparent.
    wmr m6, t0
    wmr m7, t1
    wmr m8, t2
    wmr m10, t3
    wmr m11, t4
    wmr m12, t5
    rmr t0, minsn
    # Only lw (funct3 = 010) is transactional.
    srli t1, t0, 12
    andi t1, t1, 7
    addi t1, t1, -2
    bnez t1, abort_mark
    # rs1 value via the read stubs.
    srli t0, t0, 15
    andi t0, t0, 31
    slli t0, t0, 3
    la t1, rr_table
    add t1, t1, t0
    jr t1
{rr_stubs}
rr_done:
    # effective address = rs1 + sext(imm12)
    rmr t0, minsn
    srai t0, t0, 20
    add t2, t2, t0             # t2 = ea
    # Read-after-write: scan the write set newest-first.
    rmr t0, m5
    mld t1, {wcount}(t0)
    beqz t1, no_raw
raw_loop:
    addi t1, t1, -1
    rmr t0, m5
    slli t3, t1, 3
    add t0, t0, t3
    mld t3, {wset}(t0)         # buffered address
    bne t3, t2, raw_next
    mld t1, {wset4}(t0)        # buffered value
    j write_rd
raw_next:
    bnez t1, raw_loop
no_raw:
    # Sample the versioned lock for the read set.
    li t0, {mask}
    srli t1, t2, 2
    and t1, t1, t0
    slli t1, t1, 2
    mld t0, 1024+4(zero)       # lock-table base
    add t1, t1, t0             # lock address
    mpld t0, t1                # lock word
    andi t3, t0, 1
    bnez t3, abort_mark        # locked: conflict
    # Append (lock addr, observed word) to the read set.
    rmr t3, m5
    mld t4, {rcount}(t3)
    li t5, {rmax}
    bge t4, t5, abort_mark     # read set full
    slli t5, t4, 3
    add t5, t5, t3
    mst t1, {rset}(t5)
    mst t0, {rset4}(t5)
    addi t4, t4, 1
    mst t4, {rcount}(t3)
    # Perform the actual (translated) load.
    lw t1, 0(t2)
    j write_rd
abort_mark:
    rmr t0, m5
    li t1, 2
    mst t1, {status}(t0)       # aborted; commit will fail
    li t1, 0                   # emulate with value 0 so code proceeds
write_rd:
    # t1 = value; write the destination register via the stubs.
    rmr t0, minsn
    srli t0, t0, 7
    andi t0, t0, 31
    slli t0, t0, 3
    mv t2, t1
    la t1, wr_table
    add t1, t1, t0
    jr t1
{wr_stubs}
wr_done:
    # Skip the intercepted instruction and restore scratch.
    rmr t0, m31
    addi t0, t0, 4
    wmr m31, t0
    rmr t0, m6
    rmr t1, m7
    rmr t2, m8
    rmr t3, m10
    rmr t4, m11
    rmr t5, m12
    mexit
    ",
        wcount = CTX_WCOUNT,
        wset = CTX_WSET,
        wset4 = CTX_WSET + 4,
        mask = LOCK_TABLE_SLOTS - 1,
        rcount = CTX_RCOUNT,
        rmax = READ_SET_MAX,
        rset = CTX_RSET,
        rset4 = CTX_RSET + 4,
        status = CTX_STATUS,
        rr_stubs = read_reg_stubs("rr_table", "rr_done"),
        wr_stubs = write_reg_stubs("wr_table", "wr_done"),
    )
}

/// `twrite`: the intercepted-store handler (lazy versioning: buffer the
/// store in the write set).
#[must_use]
pub fn twrite_src() -> String {
    format!(
        r"
    # twrite: buffer an intercepted store (fully transparent).
    wmr m6, t0
    wmr m7, t1
    wmr m8, t2
    wmr m10, t3
    wmr m11, t4
    wmr m12, t5
    rmr t0, minsn
    srli t1, t0, 12
    andi t1, t1, 7
    addi t1, t1, -2
    bnez t1, abort_mark        # only sw is transactional
    # rs1 value.
    srli t0, t0, 15
    andi t0, t0, 31
    slli t0, t0, 3
    la t1, rs1_table
    add t1, t1, t0
    jr t1
{rs1_stubs}
rs1_done:
    # S-type immediate.
    rmr t0, minsn
    srai t1, t0, 25
    slli t1, t1, 5
    srli t0, t0, 7
    andi t0, t0, 31
    or t1, t1, t0
    add t2, t2, t1             # ea
    wmr m9, t2                 # stash ea
    # rs2 value (the store data).
    rmr t0, minsn
    srli t0, t0, 20
    andi t0, t0, 31
    slli t0, t0, 3
    la t1, rs2_table
    add t1, t1, t0
    jr t1
{rs2_stubs}
rs2_done:
    # t2 = value; search the write set for ea (update in place).
    rmr t4, m9                 # ea
    rmr t3, m5
    mld t1, {wcount}(t3)
    beqz t1, ws_append
ws_loop:
    addi t1, t1, -1
    slli t5, t1, 3
    add t5, t5, t3
    mld t0, {wset}(t5)
    bne t0, t4, ws_next
    mst t2, {wset4}(t5)        # update buffered value
    j finish
ws_next:
    bnez t1, ws_loop
ws_append:
    mld t1, {wcount}(t3)
    li t0, {wmax}
    bge t1, t0, abort_mark     # write set full
    slli t5, t1, 3
    add t5, t5, t3
    mst t4, {wset}(t5)
    mst t2, {wset4}(t5)
    addi t1, t1, 1
    mst t1, {wcount}(t3)
    j finish
abort_mark:
    rmr t0, m5
    li t1, 2
    mst t1, {status}(t0)
finish:
    rmr t0, m31
    addi t0, t0, 4
    wmr m31, t0
    rmr t0, m6
    rmr t1, m7
    rmr t2, m8
    rmr t3, m10
    rmr t4, m11
    rmr t5, m12
    mexit
    ",
        wcount = CTX_WCOUNT,
        wset = CTX_WSET,
        wset4 = CTX_WSET + 4,
        wmax = WRITE_SET_MAX,
        status = CTX_STATUS,
        rs1_stubs = read_reg_stubs("rs1_table", "rs1_done"),
        rs2_stubs = read_reg_stubs("rs2_table", "rs2_done"),
    )
}

/// `tcommit`: validate, write back, publish. `a0` = 1 success / 0 abort.
#[must_use]
pub fn tcommit_src() -> String {
    format!(
        r"
    # tcommit.
    # Disarm interception first: commit's own accesses are raw.
    li t0, 0x03
    mintercept t0, zero
    li t0, 0x23
    mintercept t0, zero
    rmr t3, m5
    mld t0, {status}(t3)
    addi t0, t0, -1
    bnez t0, fail              # not active (aborted or idle)
    # Validate the read set: every sampled lock word must be unchanged.
    mld t1, {rcount}(t3)
    beqz t1, validated
val_loop:
    addi t1, t1, -1
    slli t2, t1, 3
    add t2, t2, t3
    mld t4, {rset}(t2)         # lock address
    mld t5, {rset4}(t2)        # observed word
    mpld t4, t4                # current word
    bne t4, t5, fail
    bnez t1, val_loop
validated:
    # Bump the global clock: wv = clock + 1.
    mld t1, 1024(zero)
    addi t1, t1, 1
    mst t1, 1024(zero)
    slli t1, t1, 1             # new lock word: wv << 1 (unlocked)
    # Write back the write set and publish the new version.
    mld t2, {wcount}(t3)
    beqz t2, done_ok
wb_loop:
    addi t2, t2, -1
    slli t4, t2, 3
    add t4, t4, t3
    mld t5, {wset}(t4)         # address
    mld t6, {wset4}(t4)        # value
    sw t6, 0(t5)               # translated store of the real data
    # Publish the version on the lock.
    li t6, {mask}
    srli t5, t5, 2
    and t5, t5, t6
    slli t5, t5, 2
    mld t6, 1024+4(zero)
    add t5, t5, t6
    mpst t5, t1
    bnez t2, wb_loop
done_ok:
    mst zero, {status}(t3)     # idle
    li a0, 1
    mexit
fail:
    mst zero, {status}(t3)
    li a0, 0
    mexit
    ",
        status = CTX_STATUS,
        rcount = CTX_RCOUNT,
        rset = CTX_RSET,
        rset4 = CTX_RSET + 4,
        wcount = CTX_WCOUNT,
        wset = CTX_WSET,
        wset4 = CTX_WSET + 4,
        mask = LOCK_TABLE_SLOTS - 1,
    )
}

/// `tabort`: discard the transaction. `a0` = 0.
#[must_use]
pub fn tabort_src() -> &'static str {
    r"
    li t0, 0x03
    mintercept t0, zero
    li t0, 0x23
    mintercept t0, zero
    rmr t0, m5
    mst zero, 0(t0)            # status = idle
    li a0, 0
    mexit
    "
}

/// `tsuspend`: disarm interception (scheduler switching away).
#[must_use]
pub fn tsuspend_src() -> &'static str {
    r"
    li t0, 0x03
    mintercept t0, zero
    li t0, 0x23
    mintercept t0, zero
    mexit
    "
}

/// `tresume`: `a0` = context id; re-arm interception for it.
#[must_use]
pub fn tresume_src() -> String {
    format!(
        r"
    slli t0, a0, 9
    addi t0, t0, {ctx_base}
    wmr m5, t0
    li t0, 0x03
    li t1, {tread_target}
    mintercept t0, t1
    li t0, 0x23
    li t1, {twrite_target}
    mintercept t0, t1
    li t0, 1
    wmr mstatus, t0
    mexit
    ",
        ctx_base = CTX_BASE,
        tread_target = (u32::from(entries::TREAD) << 1) | 1,
        twrite_target = (u32::from(entries::TWRITE) << 1) | 1,
    )
}

/// `set_locktab`: `a0` = lock-table physical base.
#[must_use]
pub fn set_locktab_src() -> &'static str {
    "mst a0, 1028(zero)\n mexit"
}

/// Installs the STM kit.
#[must_use]
pub fn install(builder: MetalBuilder) -> MetalBuilder {
    builder
        .routine(entries::TSTART, "tstart", &tstart_src())
        .routine(entries::TREAD, "tread", &tread_src())
        .routine(entries::TWRITE, "twrite", &twrite_src())
        .routine(entries::TCOMMIT, "tcommit", &tcommit_src())
        .routine(entries::TABORT, "tabort", tabort_src())
        .routine(entries::TSUSPEND, "tsuspend", tsuspend_src())
        .routine(entries::TRESUME, "tresume", &tresume_src())
        .routine(entries::SET_LOCKTAB, "set_locktab", set_locktab_src())
}

/// Instruction counts per mroutine (for the paper's "<100 instructions"
/// claim — our handlers are larger because dynamic register access costs
/// a 32-way stub table per operand; the *logic* stays TL2-shaped).
#[must_use]
pub fn instruction_counts() -> Vec<(&'static str, usize)> {
    let count = |src: &str| {
        metal_asm::assemble_at(src, metal_core::MRAM_BASE)
            .map(|w| w.len())
            .unwrap_or(0)
    };
    vec![
        ("tstart", count(&tstart_src())),
        ("tread", count(&tread_src())),
        ("twrite", count(&twrite_src())),
        ("tcommit", count(&tcommit_src())),
        ("tabort", count(tabort_src())),
        ("tsuspend", count(tsuspend_src())),
        ("tresume", count(&tresume_src())),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::run_guest;
    use metal_pipeline::state::CoreConfig;
    use metal_pipeline::{Core, HaltReason};

    /// Lock table in guest RAM.
    const LOCKTAB: u32 = 0x6_0000;

    fn core() -> Core<metal_core::Metal> {
        let mut core = install(MetalBuilder::new())
            .build_core(CoreConfig {
                ram_bytes: 1 << 20,
                ..CoreConfig::default()
            })
            .unwrap();
        core.hooks.mram.data_mut()[1028..1032].copy_from_slice(&LOCKTAB.to_le_bytes());
        core
    }

    #[test]
    fn kit_installs() {
        let core = core();
        for e in 12u8..=19 {
            assert!(core.hooks.mram.entry(e).is_some(), "entry {e}");
        }
    }

    #[test]
    fn transaction_commits_and_is_atomic() {
        let mut core = core();
        let halt = run_guest(
            &mut core,
            r"
            li s0, 0x40000
            li t0, 5
            sw t0, 0(s0)           # pre-transaction value (raw store)
            li a0, 0
            menter 12              # tstart(ctx 0)
            lw a1, 0(s0)           # transactional read: 5
            addi a1, a1, 1
            sw a1, 0(s0)           # buffered write: 6
            lw a2, 0(s0)           # read-after-write: 6
            menter 15              # tcommit
            beqz a0, failed
            lw a3, 0(s0)           # committed value visible raw: 6
            slli a0, a2, 8
            or a0, a0, a3          # a0 = (raw 6 << 8) | 6 = 0x606
            ebreak
        failed:
            li a0, 0xF
            ebreak
            ",
            1_000_000,
        );
        assert_eq!(halt, Some(HaltReason::Ebreak { code: 0x606 }));
        assert!(core.hooks.stats.intercepts >= 3);
    }

    #[test]
    fn writes_invisible_until_commit() {
        let mut core = core();
        let halt = run_guest(
            &mut core,
            r"
            li s0, 0x40000
            li t0, 11
            sw t0, 0(s0)
            li a0, 0
            menter 12              # tstart
            li a1, 99
            sw a1, 0(s0)           # buffered
            menter 17              # tsuspend: interception off
            lw a2, 0(s0)           # raw read: still 11
            li a0, 0
            menter 18              # tresume
            menter 16              # tabort
            lw a3, 0(s0)           # raw: still 11
            slli a0, a2, 8
            or a0, a0, a3          # 11<<8 | 11 = 0xB0B
            ebreak
            ",
            1_000_000,
        );
        assert_eq!(halt, Some(HaltReason::Ebreak { code: 0xB0B }));
    }

    #[test]
    fn interleaved_conflict_aborts_first_committer_loses() {
        // TL2 semantics with two interleaved logical transactions on one
        // core: T1 reads X, then T0 runs fully (writes X, commits,
        // bumping X's lock version); when T1 commits, its read-set
        // validation fails.
        let mut core = core();
        let halt = run_guest(
            &mut core,
            r"
            li s0, 0x40000
            li t0, 1
            sw t0, 0(s0)
            # --- T1 (ctx 1) starts and reads X ---
            li a0, 1
            menter 12              # tstart(1)
            lw s1, 0(s0)           # T1 reads X = 1 (read set samples lock)
            menter 17              # suspend T1
            # --- T0 (ctx 0) runs fully ---
            li a0, 0
            menter 12              # tstart(0)
            lw a1, 0(s0)
            addi a1, a1, 10
            sw a1, 0(s0)
            menter 15              # tcommit(0): success, version bumps
            mv s2, a0              # s2 = 1
            # --- back to T1: write and try to commit ---
            li a0, 1
            menter 18              # tresume(1)
            addi s1, s1, 100
            sw s1, 0(s0)
            menter 15              # tcommit(1): must fail validation
            mv s3, a0              # s3 = 0
            lw a2, 0(s0)           # memory holds T0's 11, not T1's 101
            slli a0, s2, 12
            slli s3, s3, 8
            or a0, a0, s3
            or a0, a0, a2          # 1<<12 | 0<<8 | 11 = 0x100B
            ebreak
            ",
            1_000_000,
        );
        assert_eq!(halt, Some(HaltReason::Ebreak { code: 0x100B }));
    }

    #[test]
    fn non_word_access_aborts() {
        let mut core = core();
        let halt = run_guest(
            &mut core,
            r"
            li s0, 0x40000
            li a0, 0
            menter 12
            lb a1, 0(s0)           # byte access: transaction aborted
            menter 15              # tcommit -> 0
            ebreak
            ",
            1_000_000,
        );
        assert_eq!(halt, Some(HaltReason::Ebreak { code: 0 }));
    }

    #[test]
    fn instruction_counts_reported() {
        let counts = instruction_counts();
        for (name, n) in &counts {
            assert!(*n > 0, "{name} failed to assemble");
        }
        // The core TL2 logic (excluding the three 64-instruction
        // register-dispatch stub tables in tread and the two in twrite)
        // matches the paper's "under 100 instructions" scale.
        let total: usize = counts.iter().map(|(_, n)| n).sum();
        let stubs = 4 * 64; // four stub tables, 2 insns per register
                            // The paper reports "under 100 instructions"; our handlers carry
                            // full register save/restore and the word-size guard, landing at
                            // ~230 logic instructions plus the dispatch stubs. Same order of
                            // magnitude; EXPERIMENTS.md records the exact numbers.
        assert!(
            total - stubs < 260,
            "TL2 logic should stay small: total {total}, stubs {stubs}"
        );
    }
}
