//! A preemptive two-process scheduler in mcode.
//!
//! The paper's larger claim is that Metal enables *new OS designs*: the
//! processor delegates interrupt delivery and exposes ASIDs, and the OS
//! composes them. This kit is that composition — a complete preemptive
//! scheduler with per-process address spaces, written entirely as
//! mroutines:
//!
//! * the timer interrupt is delegated to the **context-switch
//!   mroutine**, which saves all 31 GPRs and the interrupted PC into
//!   the outgoing process's PCB (via physical stores — no translation,
//!   no faults, non-interruptible), restores the incoming PCB, switches
//!   the **ASID** with `masid`, re-arms the timer through MMIO, and
//!   `mexit`s straight into the other process;
//! * both processes run at the *same virtual addresses* in different
//!   address spaces — the TLB's ASID tagging (paper §2.3) keeps them
//!   apart with no page-table walk on switch.
//!
//! PCBs live in physical memory at [`PCB_BASE`] (`PCB_SIZE` bytes per
//! process: x1..x31 at `reg*4`, PC at offset 128). MRAM data words at
//! [`DATA_BASE`] hold bounce slots for the two address-register
//! temporaries, the current process index, and the time quantum.

use metal_core::MetalBuilder;
use metal_mem::devices::map::{TIMER_BASE, TIMER_IRQ};
use std::fmt::Write as _;

/// Entry numbers for the scheduler kit.
pub mod entries {
    /// Timer-delegated context switch.
    pub const SWITCH: u8 = 44;
    /// Configure: `a0` = quantum in cycles (also arms the timer).
    pub const INIT: u8 = 45;
    /// Start process 0 (restores its PCB and enters it).
    pub const START: u8 = 46;
}

/// Physical base of the PCB array.
pub const PCB_BASE: u32 = 0x7_0000;
/// Bytes per PCB.
pub const PCB_SIZE: u32 = 256;
/// PCB offset of the saved PC.
pub const PCB_PC: u32 = 128;
/// MRAM-data base for this kit.
pub const DATA_BASE: u32 = 896;

const BOUNCE_T5: u32 = DATA_BASE;
const BOUNCE_T6: u32 = DATA_BASE + 4;
const CURRENT: u32 = DATA_BASE + 8;
const QUANTUM: u32 = DATA_BASE + 12;

/// ASID assigned to process `pid`.
#[must_use]
pub fn asid_of(pid: u32) -> u32 {
    pid + 1
}

/// Emits the restore half: load every GPR from the PCB whose base is in
/// `t6`, set the ASID for `pid_reg`… the caller has already placed the
/// PCB base in `t6` and the target pid in `t4`.
fn emit_restore(out: &mut String) {
    let _ = writeln!(
        out,
        "    # restore: ASID first, then every GPR from PCB(t6)"
    );
    let _ = writeln!(out, "    addi t5, t4, 1");
    let _ = writeln!(out, "    masid t5                  # asid = pid + 1");
    let _ = writeln!(out, "    addi t5, t6, {PCB_PC}");
    let _ = writeln!(out, "    mpld t5, t5");
    let _ = writeln!(out, "    wmr m31, t5               # resume PC");
    // Restore x1..x31 except the two address temporaries (t5 = x30,
    // t6 = x31), which must come last.
    for i in 1..=31u32 {
        if i == 30 || i == 31 {
            continue;
        }
        let _ = writeln!(out, "    addi t5, t6, {}", i * 4);
        let _ = writeln!(out, "    mpld x{i}, t5");
    }
    let _ = writeln!(out, "    addi t5, t6, {}", 30 * 4);
    let _ = writeln!(out, "    mpld t5, t5               # x30 last-but-one");
    let _ = writeln!(out, "    addi t6, t6, {}", 31 * 4);
    let _ = writeln!(out, "    mpld t6, t6               # x31 last");
    let _ = writeln!(out, "    mexit");
}

/// The context-switch mroutine source.
#[must_use]
pub fn switch_src() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "    # context switch: save current, load next, swap ASIDs."
    );
    // Bounce the two address temporaries into MRAM data (x0-based, so
    // nothing is clobbered before it is saved).
    let _ = writeln!(out, "    mst t5, {BOUNCE_T5}(zero)");
    let _ = writeln!(out, "    mst t6, {BOUNCE_T6}(zero)");
    // t6 = PCB base of the current process.
    let _ = writeln!(out, "    mld t6, {CURRENT}(zero)");
    let _ = writeln!(out, "    slli t6, t6, 8            # * PCB_SIZE");
    let _ = writeln!(out, "    li t5, {PCB_BASE}");
    let _ = writeln!(out, "    add t6, t6, t5");
    // Save every GPR except the two temporaries.
    for i in 1..=31u32 {
        if i == 30 || i == 31 {
            continue;
        }
        let _ = writeln!(out, "    addi t5, t6, {}", i * 4);
        let _ = writeln!(out, "    mpst t5, x{i}");
    }
    // Save the bounced t5/t6 and the interrupted PC.
    let _ = writeln!(out, "    mld t0, {BOUNCE_T5}(zero)");
    let _ = writeln!(out, "    addi t5, t6, {}", 30 * 4);
    let _ = writeln!(out, "    mpst t5, t0");
    let _ = writeln!(out, "    mld t0, {BOUNCE_T6}(zero)");
    let _ = writeln!(out, "    addi t5, t6, {}", 31 * 4);
    let _ = writeln!(out, "    mpst t5, t0");
    let _ = writeln!(out, "    rmr t0, m31");
    let _ = writeln!(out, "    addi t5, t6, {PCB_PC}");
    let _ = writeln!(out, "    mpst t5, t0");
    // Flip the current process and re-arm the timer.
    let _ = writeln!(out, "    mld t4, {CURRENT}(zero)");
    let _ = writeln!(out, "    xori t4, t4, 1");
    let _ = writeln!(out, "    mst t4, {CURRENT}(zero)");
    let _ = writeln!(out, "    rmr t0, mclock");
    let _ = writeln!(out, "    mld t1, {QUANTUM}(zero)");
    let _ = writeln!(out, "    add t0, t0, t1");
    let _ = writeln!(out, "    li t5, {}", TIMER_BASE + 8);
    let _ = writeln!(
        out,
        "    mpst t5, t0               # cmp = now + quantum (rearms)"
    );
    // t6 = PCB base of the incoming process (pid in t4).
    let _ = writeln!(out, "    slli t6, t4, 8");
    let _ = writeln!(out, "    li t5, {PCB_BASE}");
    let _ = writeln!(out, "    add t6, t6, t5");
    emit_restore(&mut out);
    out
}

/// The `sched_init` mroutine: `a0` = quantum. Records it, resets the
/// current process, and arms the timer.
#[must_use]
pub fn init_src() -> String {
    format!(
        r"
    mst a0, {QUANTUM}(zero)
    mst zero, {CURRENT}(zero)
    rmr t0, mclock
    add t0, t0, a0
    li t1, {cmp}
    mpst t1, t0               # cmp = now + quantum
    li t0, 1
    li t1, {ctrl}
    mpst t1, t0               # enable the timer
    mexit
    ",
        cmp = TIMER_BASE + 8,
        ctrl = TIMER_BASE + 16,
    )
}

/// The `sched_start` mroutine: enter process 0 from boot.
#[must_use]
pub fn start_src() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "    li t4, 0                  # pid 0");
    let _ = writeln!(out, "    li t6, {PCB_BASE}");
    emit_restore(&mut out);
    out
}

/// Installs the scheduler kit, delegating the timer interrupt to the
/// switch mroutine.
#[must_use]
pub fn install(builder: MetalBuilder) -> MetalBuilder {
    builder
        .routine(entries::SWITCH, "sched_switch", &switch_src())
        .routine(entries::INIT, "sched_init", &init_src())
        .routine(entries::START, "sched_start", &start_src())
        .delegate_interrupt(TIMER_IRQ, entries::SWITCH)
}

/// Host-side helper: writes a PCB (initial PC and stack pointer).
pub fn write_pcb(ram: &mut metal_mem::PhysMemory, pid: u32, pc: u32, sp: u32) {
    let base = PCB_BASE + pid * PCB_SIZE;
    for i in 0..32 {
        ram.write_u32(base + i * 4, 0).expect("PCB in RAM");
    }
    ram.write_u32(base + 2 * 4, sp).expect("PCB in RAM"); // x2 = sp
    ram.write_u32(base + PCB_PC, pc).expect("PCB in RAM");
}

#[cfg(test)]
mod tests {
    use super::*;
    use metal_mem::devices::{map, Timer};
    use metal_mem::tlb::Pte;
    use metal_pipeline::state::{CoreConfig, TranslationMode};
    use metal_pipeline::{Core, HaltReason};

    /// Shared virtual layout: both processes run at VA 0x10000 with a
    /// counter page at VA 0x20000 — mapped to different frames per ASID.
    const CODE_VA: u32 = 0x1_0000;
    const DATA_VA: u32 = 0x2_0000;
    const P0_CODE_PA: u32 = 0x3_0000;
    const P1_CODE_PA: u32 = 0x3_4000;
    const P0_DATA_PA: u32 = 0x3_8000;
    const P1_DATA_PA: u32 = 0x3_C000;

    fn setup() -> Core<metal_core::Metal> {
        let mut core = install(MetalBuilder::new())
            .build_core(CoreConfig {
                tlb: metal_mem::TlbConfig {
                    entries: 64,
                    keys: 16,
                },
                ..CoreConfig::default()
            })
            .unwrap();
        core.state
            .bus
            .attach(map::TIMER_BASE, map::WINDOW_LEN, Box::new(Timer::new()));
        // Boot pages: global identity.
        for i in 0..8 {
            let addr = i * 0x1000;
            core.state.tlb.install(
                addr,
                Pte::new(addr, Pte::V | Pte::R | Pte::W | Pte::X | Pte::G),
                0,
            );
        }
        // Per-process mappings: same VAs, different frames, per ASID.
        for (pid, code_pa, data_pa) in [(0u32, P0_CODE_PA, P0_DATA_PA), (1, P1_CODE_PA, P1_DATA_PA)]
        {
            let asid = asid_of(pid) as u16;
            core.state
                .tlb
                .install(CODE_VA, Pte::new(code_pa, Pte::V | Pte::R | Pte::X), asid);
            core.state
                .tlb
                .install(DATA_VA, Pte::new(data_pa, Pte::V | Pte::R | Pte::W), asid);
        }
        core.state.translation = TranslationMode::SoftTlb;
        core
    }

    fn load_process(core: &mut Core<metal_core::Metal>, pa: u32, src: &str) {
        let words = metal_asm::assemble_at(src, CODE_VA).unwrap();
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        core.state.bus.ram.load(pa, &bytes).unwrap();
    }

    #[test]
    fn preemptive_round_robin_with_isolated_address_spaces() {
        let mut core = setup();
        // Process 0: count to 2000 at DATA_VA, then ebreak with the
        // *other* process's progress unknown to it.
        let p0 = format!(
            r"
            li s0, {DATA_VA:#x}
        loop:
            lw t0, 0(s0)
            addi t0, t0, 1
            sw t0, 0(s0)
            li t1, 2000
            blt t0, t1, loop
            mv a0, t0
            ebreak
            "
        );
        // Process 1: counts forever at the same VA.
        let p1 = format!(
            r"
            li s0, {DATA_VA:#x}
        loop:
            lw t0, 0(s0)
            addi t0, t0, 1
            sw t0, 0(s0)
            j loop
            "
        );
        load_process(&mut core, P0_CODE_PA, &p0);
        load_process(&mut core, P1_CODE_PA, &p1);
        write_pcb(&mut core.state.bus.ram, 0, CODE_VA, 0);
        write_pcb(&mut core.state.bus.ram, 1, CODE_VA, 0);

        // Boot: enable the timer line, set a 500-cycle quantum, start.
        let boot = format!(
            r"
            li t0, 1
            csrw mie, t0
            csrrsi zero, mstatus, 8
            li a0, 500
            menter {init}
            menter {start}
            ",
            init = entries::INIT,
            start = entries::START,
        );
        let words = metal_asm::assemble_at(&boot, 0).unwrap();
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        core.load_segments([(0u32, bytes.as_slice())], 0);
        let halt = core.run(10_000_000);
        assert_eq!(halt, Some(HaltReason::Ebreak { code: 2000 }), "{halt:?}");

        // Both processes made progress in *separate* frames at the same VA.
        let p0_count = core.state.bus.ram.read_u32(P0_DATA_PA).unwrap();
        let p1_count = core.state.bus.ram.read_u32(P1_DATA_PA).unwrap();
        assert_eq!(p0_count, 2000);
        assert!(
            p1_count > 100,
            "process 1 must have been scheduled: {p1_count}"
        );
        assert!(
            core.hooks.stats.delegated_interrupts >= 4,
            "several preemptions: {:?}",
            core.hooks.stats
        );
    }

    #[test]
    fn context_switch_preserves_all_registers() {
        let mut core = setup();
        // Process 0 fills many registers with known values, spins for a
        // few quanta, then checks every one of them.
        let p0 = format!(
            r"
            li s0, {DATA_VA:#x}
            li s1, 0x1111
            li s2, 0x2222
            li s3, 0x3333
            li s4, 0x4444
            li s5, 0x5555
            li t3, 0x6666
            li t4, 0x7777
            li t5, 0x8888
            li t6, 0x9999
            li ra, 0xAAAA
            li gp, 0xBBBB
            li tp, 0xCCCC
            li a7, 3200       # spin long enough for several switches
        spin:
            addi a7, a7, -1
            bnez a7, spin
            li a0, 0
            li t0, 0x1111
            bne s1, t0, fail
            li t0, 0x2222
            bne s2, t0, fail
            li t0, 0x3333
            bne s3, t0, fail
            li t0, 0x4444
            bne s4, t0, fail
            li t0, 0x5555
            bne s5, t0, fail
            li t0, 0x6666
            bne t3, t0, fail
            li t0, 0x7777
            bne t4, t0, fail
            li t0, 0x8888
            bne t5, t0, fail
            li t0, 0x9999
            bne t6, t0, fail
            li t0, 0xAAAA
            bne ra, t0, fail
            li t0, 0xBBBB
            bne gp, t0, fail
            li t0, 0xCCCC
            bne tp, t0, fail
            li a0, 1
        fail:
            ebreak
            "
        );
        // Process 1 deliberately trashes every register it can.
        let p1 = r"
        loop:
            li s1, -1
            li s2, -1
            li s3, -1
            li s4, -1
            li s5, -1
            li t3, -1
            li t4, -1
            li t5, -1
            li t6, -1
            li ra, -1
            li gp, -1
            li tp, -1
            j loop
        ";
        load_process(&mut core, P0_CODE_PA, &p0);
        load_process(&mut core, P1_CODE_PA, p1);
        write_pcb(&mut core.state.bus.ram, 0, CODE_VA, 0);
        write_pcb(&mut core.state.bus.ram, 1, CODE_VA, 0);
        let boot = format!(
            "li t0, 1\n csrw mie, t0\n csrrsi zero, mstatus, 8\n li a0, 400\n menter {}\n menter {}",
            entries::INIT,
            entries::START
        );
        let words = metal_asm::assemble_at(&boot, 0).unwrap();
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        core.load_segments([(0u32, bytes.as_slice())], 0);
        let halt = core.run(10_000_000);
        assert!(
            core.hooks.stats.delegated_interrupts >= 2,
            "need switches to make the test meaningful: {:?}",
            core.hooks.stats
        );
        assert_eq!(
            halt,
            Some(HaltReason::Ebreak { code: 1 }),
            "all registers must survive preemption"
        );
    }
}
