//! A minimal security enclave (paper §3.5).
//!
//! "Metal's flexibility in defining privilege levels enables developers
//! to implement enclave extensions. Developers create a trusted
//! execution layer that runs at a higher privilege level than the host
//! OS. After Metal loads and verifies an enclave, the enclave runs in
//! the trusted execution layer which the host OS cannot access."
//!
//! The kit implements the SGX-shaped lifecycle in mroutines:
//!
//! * **create** measures the enclave region (a simple rolling checksum
//!   over its words — the stand-in for a cryptographic hash) and locks
//!   the region's page behind a page key with no permissions. From that
//!   point the host OS can neither read nor tamper with enclave memory.
//! * **enter** unlocks the key, records the caller, and transfers to
//!   the enclave's entry point; the enclave runs as ordinary code but
//!   is the only code that can touch its pages.
//! * **exit** re-locks the key and returns to the recorded caller.
//! * **measure** re-computes the measurement for attestation.
//!
//! Kit state (MRAM data at [`DATA_BASE`]): region VA, region length,
//! measurement, caller return PC.

use metal_core::MetalBuilder;

/// Entry numbers for the enclave kit.
pub mod entries {
    /// Create: `a0` = region VA (page-aligned), `a1` = length in bytes,
    /// `a2` = backing PA; returns `a0` = measurement.
    pub const CREATE: u8 = 40;
    /// Enter: `a0` = argument passed through to the enclave.
    pub const ENTER: u8 = 41;
    /// Exit: `a0` = enclave return value, passed back to the caller.
    pub const EXIT: u8 = 42;
    /// Measure (attestation): returns `a0` = current measurement.
    pub const MEASURE: u8 = 43;
}

/// Page key reserved for enclave memory.
pub const ENCLAVE_KEY: u32 = 6;
/// MRAM-data base of the kit's state.
pub const DATA_BASE: u32 = 256;

const VA_SLOT: u32 = DATA_BASE;
const LEN_SLOT: u32 = DATA_BASE + 4;
const MEAS_SLOT: u32 = DATA_BASE + 8;
const CALLER_SLOT: u32 = DATA_BASE + 12;
const PA_SLOT: u32 = DATA_BASE + 16;

/// The measurement loop, shared by create and measure: a rolling
/// checksum `m = rotl(m, 1) ^ word` over the region (via physical
/// access, so it works regardless of the key state).
fn measure_body() -> String {
    format!(
        r"
    li t3, {pa_slot}
    mld t0, 0(t3)              # t0 = cursor (physical)
    li t3, {len_slot}
    mld t1, 0(t3)
    add t1, t1, t0             # t1 = end
    li t2, 0                   # t2 = measurement
meas_loop:
    bgeu t0, t1, meas_done
    mpld t3, t0
    slli t4, t2, 1
    srli t2, t2, 31
    or t2, t2, t4              # rotl(m, 1)
    xor t2, t2, t3
    addi t0, t0, 4
    j meas_loop
meas_done:
    ",
        pa_slot = PA_SLOT,
        len_slot = LEN_SLOT,
    )
}

/// Creates the enclave over one page.
#[must_use]
pub fn create_src() -> String {
    format!(
        r"
    # create(a0 = va, a1 = len, a2 = pa)
    li t3, {va_slot}
    mst a0, 0(t3)
    li t3, {len_slot}
    mst a1, 0(t3)
    li t3, {pa_slot}
    mst a2, 0(t3)
    # Map the page with the enclave key, R|W|X.
    li t3, 0xFFFFF000
    and t4, a2, t3
    ori t4, t4, 0xF            # V|R|W|X
    li t3, {keybits}
    or t4, t4, t3
    mtlbw a0, t4
    # Lock the key: the host OS cannot touch enclave memory now.
    li t3, {key}
    mpkey t3, zero
{measure}
    li t3, {meas_slot}
    mst t2, 0(t3)
    mv a0, t2
    mexit
    ",
        va_slot = VA_SLOT,
        len_slot = LEN_SLOT,
        pa_slot = PA_SLOT,
        meas_slot = MEAS_SLOT,
        key = ENCLAVE_KEY,
        keybits = ENCLAVE_KEY << 5,
        measure = measure_body(),
    )
}

/// Enters the enclave.
#[must_use]
pub fn enter_src() -> String {
    format!(
        r"
    # enter(a0 = argument): unlock, record caller, jump to the region.
    rmr t0, m31
    li t1, {caller_slot}
    mst t0, 0(t1)
    li t0, {key}
    li t1, 3
    mpkey t0, t1               # enclave pages now readable/writable
    li t1, {va_slot}
    mld t1, 0(t1)
    wmr m31, t1                # entry point = region start
    mexit
    ",
        caller_slot = CALLER_SLOT,
        key = ENCLAVE_KEY,
        va_slot = VA_SLOT,
    )
}

/// Exits the enclave.
#[must_use]
pub fn exit_src() -> String {
    format!(
        r"
    # exit(a0 = return value): re-lock and return to the caller.
    li t0, {key}
    mpkey t0, zero
    li t1, {caller_slot}
    mld t1, 0(t1)
    wmr m31, t1
    mexit
    ",
        key = ENCLAVE_KEY,
        caller_slot = CALLER_SLOT,
    )
}

/// Recomputes the measurement (attestation).
#[must_use]
pub fn measure_src() -> String {
    format!("{}\n    mv a0, t2\n    mexit", measure_body())
}

/// Installs the enclave kit.
#[must_use]
pub fn install(builder: MetalBuilder) -> MetalBuilder {
    builder
        .routine(entries::CREATE, "enclave_create", &create_src())
        .routine(entries::ENTER, "enclave_enter", &enter_src())
        .routine(entries::EXIT, "enclave_exit", &exit_src())
        .routine(entries::MEASURE, "enclave_measure", &measure_src())
}

/// Host-side oracle for the measurement.
#[must_use]
pub fn expected_measurement(words: &[u32]) -> u32 {
    words.iter().fold(0u32, |m, &w| m.rotate_left(1) ^ w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::run_guest;
    use metal_mem::tlb::Pte;
    use metal_pipeline::state::{CoreConfig, TranslationMode};
    use metal_pipeline::{Core, HaltReason, TrapCause};

    /// Enclave page: VA == PA for simplicity.
    const ENC_PAGE: u32 = 0x0060_0000 & 0xFFFFF000;
    const ENC_PA: u32 = 0x6_0000;

    fn core_with_enclave(enclave_asm: &str) -> Core<metal_core::Metal> {
        let mut core = install(MetalBuilder::new())
            .build_core(CoreConfig {
                ram_bytes: 8 << 20,
                tlb: metal_mem::TlbConfig {
                    entries: 64,
                    keys: 16,
                },
                ..CoreConfig::default()
            })
            .unwrap();
        // Identity map the OS code pages, globally.
        for i in 0..32 {
            let addr = i * 0x1000;
            core.state.tlb.install(
                addr,
                Pte::new(addr, Pte::V | Pte::R | Pte::W | Pte::X | Pte::G),
                0,
            );
        }
        core.state.translation = TranslationMode::SoftTlb;
        // Load the enclave image at its physical backing.
        let words = metal_asm::assemble_at(enclave_asm, ENC_PAGE).unwrap();
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        core.state.bus.ram.load(ENC_PA, &bytes).unwrap();
        core
    }

    /// An enclave that adds 100 to its argument and exits. The enclave
    /// page is executable only through the key, so entering it via the
    /// kit works while a direct OS jump faults.
    const ENCLAVE: &str = r"
        addi a0, a0, 100
        menter 42          # enclave exit
    ";

    fn create_prologue() -> String {
        format!("li a0, {ENC_PAGE:#x}\n li a1, 4096\n li a2, {ENC_PA:#x}\n menter 40\n")
    }

    #[test]
    fn enclave_runs_and_returns() {
        let mut core = core_with_enclave(ENCLAVE);
        let src = format!(
            r"
            {create}
            li a0, 5
            menter 41          # enter
            ebreak             # a0 = 105
            ",
            create = create_prologue()
        );
        let halt = run_guest(&mut core, &src, 200_000);
        assert_eq!(halt, Some(HaltReason::Ebreak { code: 105 }));
    }

    #[test]
    fn os_cannot_read_enclave_memory() {
        let mut core = core_with_enclave(ENCLAVE);
        let src = format!(
            r"
            li t0, 0x200
            csrw mtvec, t0
            {create}
            li s0, {ENC_PAGE:#x}
            lw a0, 0(s0)       # OS snooping attempt
            ebreak
            .org 0x200
            csrr a0, mcause
            ebreak
            ",
            create = create_prologue()
        );
        let halt = run_guest(&mut core, &src, 200_000);
        assert_eq!(
            halt,
            Some(HaltReason::Ebreak {
                code: TrapCause::LoadKeyViolation.code()
            })
        );
    }

    #[test]
    fn measurement_matches_oracle_and_detects_tamper() {
        let mut core = core_with_enclave(ENCLAVE);
        let words = metal_asm::assemble_at(ENCLAVE, ENC_PAGE).unwrap();
        let mut padded = words.clone();
        padded.resize(1024, 0); // 4096-byte region measured in full
        let expected = expected_measurement(&padded);
        let src = format!(
            r"
            {create}
            mv s1, a0          # measurement from create
            menter 43          # measure again
            bne a0, s1, fail
            ebreak             # a0 = measurement
        fail:
            li a0, 1
            ebreak
            ",
            create = create_prologue()
        );
        let halt = run_guest(&mut core, &src, 2_000_000);
        assert_eq!(halt, Some(HaltReason::Ebreak { code: expected }));
    }

    #[test]
    fn tamper_changes_measurement() {
        let mut core = core_with_enclave(ENCLAVE);
        let src = format!(
            r"
            {create}
            ebreak             # a0 = measurement at create time
            ",
            create = create_prologue()
        );
        let halt = run_guest(&mut core, &src, 2_000_000);
        let Some(HaltReason::Ebreak { code: original }) = halt else {
            panic!("unexpected halt {halt:?}");
        };
        // Host-level tamper (e.g. malicious DMA bypassing the key).
        core.state
            .bus
            .ram
            .write_u32(ENC_PA + 64, 0xBAD0_C0DE)
            .unwrap();
        let src2 = "menter 43\n ebreak";
        let binary = crate::machine::assemble_guest(src2).unwrap();
        core.state.halted = None;
        binary.load_into(&mut core);
        let halt2 = core.run(2_000_000);
        let Some(HaltReason::Ebreak { code: after }) = halt2 else {
            panic!("unexpected halt {halt2:?}");
        };
        assert_ne!(original, after, "attestation must detect the tamper");
    }
}
