//! A trap-and-emulate virtualization sketch (paper §3.5).
//!
//! "Developers can use Metal to implement virtualization. … Privileged
//! instructions can be intercepted and trapped by Metal for proper
//! handling." This kit demonstrates the core hypervisor mechanism on
//! the lowest nested-Metal layer: the VMM intercepts the guest's CSR
//! instructions and *virtualizes* the trap vector — the guest reads
//! back exactly what it wrote, while the real `mtvec` (owned by the
//! host) never changes. This is the same trap-and-emulate structure
//! the IBM zSeries implements in Millicode and the Alpha hypervisor in
//! PALcode (paper §3.5/§5).
//!
//! Scope: the demo traps the `csrrw`/`csrrs` register shapes and
//! virtualizes `csrw mtvec, rs` and `csrr rd, mtvec` (what a guest boot
//! path uses); any other trapped CSR instruction diverts to the
//! registered VMM fault handler — a real hypervisor would widen the
//! emulation case by case, exactly as the paper suggests.
//!
//! MRAM data (offset [`DATA_BASE`]): shadow `mtvec`, VMM fault-handler
//! PC.

use crate::machine::{read_reg_stubs, write_reg_stubs};
use metal_core::MetalBuilder;

/// Entry numbers for the VMM kit.
pub mod entries {
    /// Arm interception of the SYSTEM opcode class on layer 0:
    /// `a0` = VMM fault-handler PC.
    pub const ARM: u8 = 48;
    /// The CSR trap-and-emulate handler.
    pub const CSR_EMUL: u8 = 49;
    /// Read the shadow `mtvec` into `a0` (host/VMM inspection).
    pub const SHADOW_GET: u8 = 50;
}

/// MRAM-data base for this kit.
pub const DATA_BASE: u32 = 3200;

const SHADOW_MTVEC: u32 = DATA_BASE;
const FAULT_SLOT: u32 = DATA_BASE + 4;

/// CSR address of `mtvec` (the virtualized register).
const MTVEC: u32 = 0x305;

/// Arms the interception rule.
#[must_use]
pub fn arm_src() -> String {
    format!(
        r"
    li t0, {fault}
    mst a0, 0(t0)              # VMM fault handler
    mlayer zero                # program layer 0 (the VMM layer)
    # Exact selectors: only the csrrw and csrrs shapes trap. ecall,
    # ebreak, mret and the immediate CSR forms stay native.
    li t0, {sel_csrrw}
    li t1, {target}
    mintercept t0, t1
    li t0, {sel_csrrs}
    mintercept t0, t1
    li t0, 1
    wmr mstatus, t0
    mexit
    ",
        fault = FAULT_SLOT,
        sel_csrrw = (1u32 << 31) | 0x73 | (1 << 7),
        sel_csrrs = (1u32 << 31) | 0x73 | (2 << 7),
        target = (u32::from(entries::CSR_EMUL) << 1) | 1,
    )
}

/// The trap-and-emulate handler.
#[must_use]
pub fn csr_emul_src() -> String {
    format!(
        r"
    # VMM CSR emulation. Transparent: scratch saved in Metal registers.
    wmr m6, t0
    wmr m7, t1
    wmr m8, t2
    wmr m10, t3
    wmr m11, t4
    wmr m12, t5
    rmr t0, minsn
    # csr address = bits 31:20
    srli t1, t0, 20
    li t3, {mtvec}
    bne t1, t3, unhandled
    # funct3 selects the shape.
    srli t1, t0, 12
    andi t1, t1, 7
    addi t3, t1, -1
    beqz t3, emul_write        # csrrw (csrw)
    addi t3, t1, -2
    beqz t3, emul_read         # csrrs; treat as csrr if rs1 == x0
    j unhandled
emul_write:
    # rs1 value via the read stubs -> t2; shadow_mtvec = t2.
    srli t0, t0, 15
    andi t0, t0, 31
    slli t0, t0, 3
    la t1, rs1_table
    add t1, t1, t0
    jr t1
{rs1_stubs}
rs1_done:
    li t0, {shadow}
    mst t2, 0(t0)
    j finish
emul_read:
    rmr t0, minsn
    srli t1, t0, 15
    andi t1, t1, 31
    bnez t1, unhandled         # only the csrr shape (rs1 == x0)
    # rd = shadow_mtvec via the write stubs.
    li t1, {shadow}
    mld t2, 0(t1)
    srli t0, t0, 7
    andi t0, t0, 31
    slli t0, t0, 3
    la t1, rd_table
    add t1, t1, t0
    jr t1
{rd_stubs}
rd_done:
    j finish
unhandled:
    li t3, {fault}
    mld t3, 0(t3)
    wmr m31, t3
    rmr t0, m6
    rmr t1, m7
    rmr t2, m8
    rmr t3, m10
    rmr t4, m11
    rmr t5, m12
    mexit
finish:
    rmr t0, m31
    addi t0, t0, 4
    wmr m31, t0                # skip the emulated instruction
    rmr t0, m6
    rmr t1, m7
    rmr t2, m8
    rmr t3, m10
    rmr t4, m11
    rmr t5, m12
    mexit
    ",
        mtvec = MTVEC,
        shadow = SHADOW_MTVEC,
        fault = FAULT_SLOT,
        rs1_stubs = read_reg_stubs("rs1_table", "rs1_done"),
        rd_stubs = write_reg_stubs("rd_table", "rd_done"),
    )
}

/// Reads the shadow `mtvec` into `a0`.
#[must_use]
pub fn shadow_get_src() -> String {
    format!("li t0, {SHADOW_MTVEC}\n mld a0, 0(t0)\n mexit")
}

/// Installs the VMM kit. Requires a layered builder (`layers >= 2`) so
/// guest-facing kits can sit above the VMM.
#[must_use]
pub fn install(builder: MetalBuilder) -> MetalBuilder {
    builder
        .layers(2)
        .routine(entries::ARM, "vmm_arm", &arm_src())
        .routine(entries::CSR_EMUL, "vmm_csr", &csr_emul_src())
        .routine(entries::SHADOW_GET, "vmm_shadow_get", &shadow_get_src())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::run_guest;
    use metal_pipeline::state::CoreConfig;
    use metal_pipeline::{Core, HaltReason};

    fn core() -> Core<metal_core::Metal> {
        install(MetalBuilder::new())
            .build_core(CoreConfig::default())
            .unwrap()
    }

    #[test]
    fn guest_csr_writes_are_virtualized() {
        let mut core = core();
        let halt = run_guest(
            &mut core,
            r"
            la a0, vmm_fault
            menter 48          # arm the VMM
            # --- guest OS boot path ---
            li t5, 0x1230
            csrw mtvec, t5     # intercepted + emulated
            csrr a0, mtvec     # intercepted + emulated: reads 0x1230
            ebreak
        vmm_fault:
            li a0, 0xBAD
            ebreak
            ",
            1_000_000,
        );
        assert_eq!(halt, Some(HaltReason::Ebreak { code: 0x1230 }));
        // The guest saw its value, but the *real* mtvec never changed.
        assert_eq!(core.state.csr.mtvec, 0, "host mtvec must be untouched");
        assert_eq!(core.hooks.stats.intercepts, 2);
    }

    #[test]
    fn shadow_state_visible_to_the_vmm() {
        let mut core = core();
        let halt = run_guest(
            &mut core,
            r"
            la a0, vmm_fault
            menter 48
            li t5, 0xBEE0
            csrw mtvec, t5
            menter 50          # VMM-side: read the shadow
            ebreak
        vmm_fault:
            li a0, 0xBAD
            ebreak
            ",
            1_000_000,
        );
        assert_eq!(halt, Some(HaltReason::Ebreak { code: 0xBEE0 }));
    }

    #[test]
    fn unhandled_privileged_instruction_faults_to_vmm() {
        let mut core = core();
        let halt = run_guest(
            &mut core,
            r"
            la a0, vmm_fault
            menter 48
            csrw mscratch, t5  # not virtualized: diverts to the VMM
            li a0, 1
            ebreak
        vmm_fault:
            li a0, 0xBAD
            ebreak
            ",
            1_000_000,
        );
        assert_eq!(halt, Some(HaltReason::Ebreak { code: 0xBAD }));
    }

    #[test]
    fn guest_registers_survive_emulation() {
        let mut core = core();
        let halt = run_guest(
            &mut core,
            r"
            la a0, vmm_fault
            menter 48
            li t0, 111
            li t1, 222
            li t2, 333
            li t3, 444
            li t5, 0x40
            csrw mtvec, t5
            add a0, t0, t1
            add a0, a0, t2
            add a0, a0, t3     # 1110
            ebreak
        vmm_fault:
            li a0, 0xBAD
            ebreak
            ",
            1_000_000,
        );
        assert_eq!(halt, Some(HaltReason::Ebreak { code: 1110 }));
    }
}
